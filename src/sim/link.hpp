/// \file
/// \brief Registered point-to-point links: the C++ analog of an AXI channel
///        behind a spill register.
#pragma once

#include "sim/check.hpp"
#include "sim/component.hpp"
#include "sim/context.hpp"
#include "sim/ring.hpp"
#include "sim/types.hpp"

#include <array>
#include <memory>
#include <string>
#include <utility>

namespace realm::sim {

/// Typed, allocation-free drain hook: a plain function pointer plus a user
/// pointer and one immediate argument. Replaces the former
/// `std::function<void()>` pop hook, whose captured state (context, pool,
/// delay, mode) exceeded the small-buffer optimization and heap-allocated
/// per link — three times per NI staging channel. The user object must
/// outlive the link, exactly as the captured references had to.
struct PopHook {
    using Fn = void (*)(void* user, std::uint32_t arg);
    Fn fn = nullptr;
    void* user = nullptr;
    std::uint32_t arg = 0;

    explicit operator bool() const noexcept { return fn != nullptr; }
    void operator()() const { fn(user, arg); }
};

/// Single-producer / single-consumer FIFO with *registered* timing:
/// an element pushed at cycle N becomes poppable at cycle N+1.
///
/// This reproduces the behaviour of a valid/ready channel followed by one
/// register stage. With the default capacity of 2 (a "spill register" /
/// `axi_cut` in RTL terms) the link sustains one transfer per cycle under
/// backpressure-free operation regardless of the order in which producer
/// and consumer are evaluated within the cycle, so simulations are
/// order-independent and deterministic.
///
/// Storage is a fixed-capacity ring buffer, inline for the ubiquitous
/// depth-2 spill register (the whole link lives in one cache-friendly
/// block; deeper links allocate their ring once at construction — never on
/// the push/pop hot path). Entries carry no per-entry cycle stamp: FIFO
/// order makes stamps monotone, so "pushed before the current cycle" is
/// equivalent to "not among the entries pushed at the most recent push
/// cycle", which two counters track exactly.
///
/// Producer protocol:   `if (link.can_push()) link.push(flit);`
/// Consumer protocol:   `if (link.can_pop())  f = link.pop();`
/// A producer must treat a full link as backpressure (AXI `ready` low) and
/// hold the flit; a consumer may `front()` without popping to make
/// combinational decisions (AXI `valid`-gated logic).
template <typename T>
class Link {
public:
    /// Timing discipline of the link.
    enum class Timing {
        kRegistered, ///< push at N -> poppable at N+1 (a register stage)
        kPassthrough ///< push at N -> poppable at N *if the consumer is
                     ///< evaluated after the producer* (combinational wire;
                     ///< construction order fixes evaluation order)
    };

    /// Ring slots stored inside the link object itself; larger capacities
    /// fall back to one heap block allocated at construction.
    static constexpr std::size_t kInlineCapacity = 2;

    /// \param ctx       Simulation context providing the clock.
    /// \param capacity  Buffer depth; >= 2 for full-throughput pipes,
    ///                  1 models an unbuffered register (half throughput
    ///                  under sustained traffic).
    explicit Link(const SimContext& ctx, std::size_t capacity = 2, std::string name = {},
                  Timing timing = Timing::kRegistered)
        : ctx_{&ctx}, capacity_{capacity}, timing_{timing}, name_{std::move(name)} {
        REALM_EXPECTS(capacity_ >= 1, "link capacity must be at least 1");
        if (capacity_ > kInlineCapacity) {
            heap_ = std::make_unique<T[]>(capacity_);
        }
    }

    Link(const Link&) = delete;
    Link& operator=(const Link&) = delete;

    /// True when the producer may push this cycle.
    [[nodiscard]] bool can_push() const noexcept { return size_ < capacity_; }

    /// Pushes a flit; it becomes visible to the consumer next cycle.
    void push(T value) {
        REALM_EXPECTS(can_push(), "push into full link " + name_);
        // Conditional wrap, not `%`: the divisor is a runtime value, and an
        // idiv per push is measurable on contended-mesh runs.
        std::size_t tail = head_ + size_;
        if (tail >= capacity_) { tail -= capacity_; }
        slot(tail) = std::move(value);
        ++size_;
        const Cycle now = ctx_->now();
        if (last_push_cycle_ != now) {
            last_push_cycle_ = now;
            recent_ = 0;
        }
        ++recent_;
        ++total_pushed_;
        if (wake_on_push_ != nullptr) {
            // Registered flits are observable one cycle after the push, so
            // that is the earliest the consumer could make progress.
            wake_on_push_->wake(timing_ == Timing::kPassthrough ? now : now + 1);
        }
    }

    /// True when the consumer can pop a flit this cycle (for registered
    /// links: the head entry was pushed in an earlier cycle).
    [[nodiscard]] bool can_pop() const noexcept { return ready_size() > 0; }

    /// Peeks at the head flit without consuming it.
    [[nodiscard]] const T& front() const {
        REALM_EXPECTS(can_pop(), "front of empty/not-ready link " + name_);
        return slot(head_);
    }

    /// Consumes and returns the head flit.
    T pop() {
        REALM_EXPECTS(can_pop(), "pop from empty/not-ready link " + name_);
        T v = std::move(slot(head_));
        if (++head_ == capacity_) { head_ = 0; }
        --size_;
        ++total_popped_;
        if (on_pop_) { on_pop_(); }
        return v;
    }

    /// Discards all buffered flits (reset).
    void clear() noexcept {
        head_ = 0;
        size_ = 0;
        recent_ = 0;
        last_push_cycle_ = kNoCycle;
    }

    /// Scheduler wake-up wiring (activity-aware kernel): component woken
    /// whenever a flit is pushed — wire the consumer here so it may declare
    /// itself idle while the link is empty. (Producers never sleep while
    /// backpressured, so there is no pop-side wake hook.)
    void set_wake_on_push(Component* c) noexcept { wake_on_push_ = c; }

    /// Drain hook: invoked after every successful pop. The NoC's credited
    /// flow control uses this to return end-to-end credits when a staged
    /// flit leaves the network-interface buffer toward its subordinate.
    /// Note `clear()` bypasses the hook — credit state must be reset
    /// alongside the link by whoever owns both.
    void set_on_pop(PopHook hook) noexcept { on_pop_ = hook; }

    /// \name Introspection
    ///@{
    [[nodiscard]] std::size_t occupancy() const noexcept { return size_; }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::uint64_t total_pushed() const noexcept { return total_pushed_; }
    [[nodiscard]] std::uint64_t total_popped() const noexcept { return total_popped_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    ///@}

private:
    /// Entries poppable this cycle: everything except the entries pushed at
    /// the most recent push cycle when that cycle has not elapsed yet (all
    /// ready entries sit at the head — stamps are monotone in a FIFO).
    /// While the clock sits at `last_push_cycle_`, pops only ever remove
    /// ready entries, so `recent_ <= size_` holds in monotone operation;
    /// the clamp covers a context reset rewinding the clock under the link
    /// (stale `recent_`/`last_push_cycle_` from the old timeline), where
    /// the conservative answer is "nothing new is ready".
    [[nodiscard]] std::size_t ready_size() const noexcept {
        // Empty first: the single most common outcome across a fabric's
        // links, and the only one that avoids chasing `ctx_` for the clock.
        const std::size_t n = size_;
        if (n == 0 || timing_ == Timing::kPassthrough) { return n; }
        if (last_push_cycle_ < ctx_->now()) { return n; }
        return recent_ <= n ? n - recent_ : 0;
    }

    [[nodiscard]] T& slot(std::size_t pos) noexcept {
        return capacity_ <= kInlineCapacity ? inline_[pos] : heap_[pos];
    }
    [[nodiscard]] const T& slot(std::size_t pos) const noexcept {
        return capacity_ <= kInlineCapacity ? inline_[pos] : heap_[pos];
    }

    // Hot scalars first and adjacent — `can_push`/`can_pop` polling across a
    // fabric's links touches exactly these; the name and the lifetime
    // counters stay out of that cache line.
    const SimContext* ctx_;
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    /// Entries pushed at `last_push_cycle_` (the only ones possibly not yet
    /// poppable); together these replace the former per-entry stamps.
    std::size_t recent_ = 0;
    Cycle last_push_cycle_ = kNoCycle;
    Timing timing_ = Timing::kRegistered;
    Component* wake_on_push_ = nullptr;
    PopHook on_pop_{};
    std::uint64_t total_pushed_ = 0;
    std::uint64_t total_popped_ = 0;
    std::array<T, kInlineCapacity> inline_{};
    std::unique_ptr<T[]> heap_;
    std::string name_;
};

/// FIFO whose entries become poppable at an arbitrary future cycle; completion
/// stays in push order (the head blocks younger entries). Used to model
/// fixed/variable-latency service pipelines, e.g. SRAM access or DRAM banks.
/// Backed by a contiguous `FlatRing` (entries keep their individual ready
/// stamps — unlike `Link`, readiness here is not monotone with push order).
template <typename T>
class TimedQueue {
public:
    explicit TimedQueue(const SimContext& ctx, std::string name = {})
        : ctx_{&ctx}, name_{std::move(name)} {}

    /// Enqueues `value`, poppable no earlier than `ready_at`.
    void push(T value, Cycle ready_at) {
        entries_.push_back(Entry{std::move(value), ready_at});
    }

    [[nodiscard]] bool can_pop() const noexcept {
        return !entries_.empty() && entries_.front().ready_at <= ctx_->now();
    }

    [[nodiscard]] const T& front() const {
        REALM_EXPECTS(can_pop(), "front of not-ready timed queue " + name_);
        return entries_.front().value;
    }

    T pop() {
        REALM_EXPECTS(can_pop(), "pop from not-ready timed queue " + name_);
        T v = std::move(entries_.front().value);
        entries_.pop_front();
        return v;
    }

    void clear() noexcept { entries_.clear(); }

    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
    [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

private:
    struct Entry {
        T value;
        Cycle ready_at;
    };

    const SimContext* ctx_;
    std::string name_;
    FlatRing<Entry> entries_;
};

} // namespace realm::sim
