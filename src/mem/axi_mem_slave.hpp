/// \file
/// \brief Generic AXI4 memory subordinate: turns bursts into backend accesses.
#pragma once

#include "axi/channel.hpp"
#include "mem/backend.hpp"

#include "sim/component.hpp"
#include "sim/link.hpp"
#include "sim/stats.hpp"

#include <cstdint>
#include <deque>
#include <memory>

namespace realm::mem {

/// Configuration of an `AxiMemSlave`.
struct AxiMemSlaveConfig {
    std::uint32_t max_outstanding_reads = 8;
    std::uint32_t max_outstanding_writes = 8;
    /// Subtracted from flit addresses before hitting the backend, so the
    /// same backend image can be mapped at any bus address.
    axi::Addr base = 0;
};

/// AXI4 subordinate serving a `MemoryBackend`.
///
/// Timing: an accepted AR is serviced after `backend.access_latency(...)`
/// cycles, then streams one R beat per cycle, in acceptance order. Writes
/// apply data as W beats arrive and respond with B `access_latency` cycles
/// after the last beat, in acceptance order. Read and write datapaths are
/// independent, as the R and W channels are in AXI4.
class AxiMemSlave : public sim::Component {
public:
    AxiMemSlave(sim::SimContext& ctx, std::string name, axi::AxiChannel& channel,
                std::unique_ptr<MemoryBackend> backend, AxiMemSlaveConfig config = {});

    void reset() override;
    void tick() override;

    [[nodiscard]] MemoryBackend& backend() noexcept { return *backend_; }
    [[nodiscard]] std::uint64_t reads_served() const noexcept { return reads_served_; }
    [[nodiscard]] std::uint64_t writes_served() const noexcept { return writes_served_; }
    [[nodiscard]] std::uint64_t beats_served() const noexcept { return beats_served_; }

private:
    struct ReadJob {
        axi::ArFlit ar;
        sim::Cycle ready_at = 0;
        std::uint32_t next_beat = 0;
    };
    struct WriteJob {
        axi::AwFlit aw;
        std::uint32_t beats_seen = 0;
        bool data_complete = false;
        sim::Cycle resp_ready_at = 0;
    };

    void accept_requests();
    void serve_reads();
    void serve_writes();
    void update_activity();

    axi::SubordinateView port_;
    std::unique_ptr<MemoryBackend> backend_;
    AxiMemSlaveConfig config_;

    std::deque<ReadJob> read_jobs_;
    std::deque<WriteJob> write_jobs_;

    std::uint64_t reads_served_ = 0;
    std::uint64_t writes_served_ = 0;
    std::uint64_t beats_served_ = 0;
};

} // namespace realm::mem
