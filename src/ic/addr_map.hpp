/// \file
/// \brief System address map: decodes bus addresses to subordinate ports.
#pragma once

#include "axi/types.hpp"

#include "sim/check.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace realm::ic {

/// One mapping rule: [base, base+size) -> subordinate port index.
struct AddrRule {
    axi::Addr base = 0;
    std::uint64_t size = 0;
    std::uint32_t port = 0;
    std::string label;

    [[nodiscard]] axi::Addr end() const noexcept { return base + size; }
    [[nodiscard]] bool contains(axi::Addr addr) const noexcept {
        return addr >= base && addr < end();
    }
};

/// Ordered rule list with first-match decode. Rules must not overlap
/// (checked at insertion) so decode results are unambiguous.
class AddrMap {
public:
    AddrMap() = default;

    AddrMap& add(axi::Addr base, std::uint64_t size, std::uint32_t port,
                 std::string label = {}) {
        REALM_EXPECTS(size > 0, "address rule must have non-zero size");
        for (const AddrRule& r : rules_) {
            const bool disjoint = base + size <= r.base || base >= r.end();
            REALM_EXPECTS(disjoint, "address rule overlaps existing rule " + r.label);
        }
        rules_.push_back(AddrRule{base, size, port, std::move(label)});
        return *this;
    }

    /// Port serving `addr`, or nullopt when the address is unmapped.
    [[nodiscard]] std::optional<std::uint32_t> decode(axi::Addr addr) const noexcept {
        for (const AddrRule& r : rules_) {
            if (r.contains(addr)) { return r.port; }
        }
        return std::nullopt;
    }

    /// The rule covering `addr`, if any (for diagnostics).
    [[nodiscard]] const AddrRule* rule_for(axi::Addr addr) const noexcept {
        for (const AddrRule& r : rules_) {
            if (r.contains(addr)) { return &r; }
        }
        return nullptr;
    }

    [[nodiscard]] const std::vector<AddrRule>& rules() const noexcept { return rules_; }

private:
    std::vector<AddrRule> rules_;
};

} // namespace realm::ic
