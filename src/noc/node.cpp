#include "noc/node.hpp"

#include "sim/check.hpp"

#include <utility>

namespace realm::noc {

NocNode::NocNode(sim::SimContext& ctx, std::string name, std::uint8_t node_id,
                 ic::AddrMap map, axi::AxiChannel* local_mgr,
                 std::vector<axi::AxiChannel*> egress, sim::Link<NocPacket>& req_in,
                 sim::Link<NocPacket>& req_out, sim::Link<NocPacket>& rsp_in,
                 sim::Link<NocPacket>& rsp_out)
    : Component{ctx, std::move(name)},
      id_{node_id},
      map_{std::move(map)},
      local_mgr_{local_mgr},
      egress_{std::move(egress)},
      req_in_{&req_in},
      req_out_{&req_out},
      rsp_in_{&rsp_in},
      rsp_out_{&rsp_out} {
    // Activity-aware kernel wiring: everything this node consumes wakes it.
    // Each ring link has exactly one consumer (the next node downstream), so
    // claiming the push hook here is safe.
    req_in.set_wake_on_push(this);
    rsp_in.set_wake_on_push(this);
    if (local_mgr_ != nullptr) { local_mgr_->wake_subordinate_on_request(*this); }
    for (axi::AxiChannel* ch : egress_) {
        if (ch != nullptr) { ch->wake_manager_on_response(*this); }
    }
}

void NocNode::reset() {
    w_dest_.clear();
    w_beats_left_.clear();
    w_in_flight_.clear();
    r_in_flight_.clear();
    rsp_rr_ = 0;
    injected_ = 0;
    ejected_ = 0;
    forwarded_ = 0;
    ring_stalls_ = 0;
}

bool NocNode::try_eject(const NocPacket& pkt, bool request_ring) {
    if (request_ring) {
        REALM_EXPECTS(pkt.src < egress_.size() && egress_[pkt.src] != nullptr,
                      name() + ": request ejected at a node without a subordinate");
        axi::AxiChannel& ch = *egress_[pkt.src];
        if (const auto* aw = std::get_if<axi::AwFlit>(&pkt.flit)) {
            if (!ch.aw.can_push()) { return false; }
            ch.aw.push(*aw);
            return true;
        }
        if (const auto* w = std::get_if<axi::WFlit>(&pkt.flit)) {
            if (!ch.w.can_push()) { return false; }
            ch.w.push(*w);
            return true;
        }
        const auto* ar = std::get_if<axi::ArFlit>(&pkt.flit);
        REALM_EXPECTS(ar != nullptr, name() + ": malformed request packet");
        if (!ch.ar.can_push()) { return false; }
        ch.ar.push(*ar);
        return true;
    }
    // Response destined for the local manager.
    REALM_EXPECTS(local_mgr_ != nullptr,
                  name() + ": response ejected at a node without a manager");
    if (const auto* b = std::get_if<axi::BFlit>(&pkt.flit)) {
        if (!local_mgr_->b.can_push()) { return false; }
        if (auto it = w_in_flight_.find(b->id); it != w_in_flight_.end() &&
                                                it->second.count > 0) {
            --it->second.count;
        }
        local_mgr_->b.push(*b);
        return true;
    }
    const auto* r = std::get_if<axi::RFlit>(&pkt.flit);
    REALM_EXPECTS(r != nullptr, name() + ": malformed response packet");
    if (!local_mgr_->r.can_push()) { return false; }
    if (r->last) {
        if (auto it = r_in_flight_.find(r->id); it != r_in_flight_.end() &&
                                                it->second.count > 0) {
            --it->second.count;
        }
    }
    local_mgr_->r.push(*r);
    return true;
}

void NocNode::ring_hop(sim::Link<NocPacket>& in, sim::Link<NocPacket>& out,
                       bool request_ring) {
    if (!in.can_pop()) { return; }
    const NocPacket& pkt = in.front();
    if (pkt.dest == id_) {
        if (try_eject(pkt, request_ring)) {
            (void)in.pop();
            ++ejected_;
        } else {
            ++ring_stalls_;
        }
        return;
    }
    if (out.can_push()) {
        out.push(in.pop());
        ++forwarded_;
    } else {
        ++ring_stalls_;
    }
}

void NocNode::inject_requests() {
    if (local_mgr_ == nullptr || !req_out_->can_push()) { return; }
    axi::AxiChannel& mgr = *local_mgr_;

    // One request packet per cycle. AW before its data; W-continuation
    // before new reads (a starving AR simply means the write stream owns
    // the ring slot this cycle).
    if (mgr.aw.can_pop()) {
        const axi::AwFlit& head = mgr.aw.front();
        const auto dest_opt = map_.decode(head.addr);
        REALM_EXPECTS(dest_opt.has_value(), name() + ": unmapped NoC address");
        const auto dest = static_cast<std::uint8_t>(*dest_opt);
        const auto it = w_in_flight_.find(head.id);
        const bool ordering_ok = it == w_in_flight_.end() || it->second.count == 0 ||
                                 it->second.dest == dest;
        if (ordering_ok) {
            axi::AwFlit aw = mgr.aw.pop();
            auto& fl = w_in_flight_[aw.id];
            fl.dest = dest;
            ++fl.count;
            w_dest_.push_back(dest);
            w_beats_left_.push_back(aw.beats());
            req_out_->push(NocPacket{id_, dest, aw});
            ++injected_;
            return;
        }
    }
    if (!w_dest_.empty() && mgr.w.can_pop()) {
        axi::WFlit w = mgr.w.pop();
        req_out_->push(NocPacket{id_, w_dest_.front(), w});
        ++injected_;
        if (--w_beats_left_.front() == 0) {
            REALM_ENSURES(w.last, name() + ": W burst ended without WLAST");
            w_dest_.pop_front();
            w_beats_left_.pop_front();
        }
        return;
    }
    if (mgr.ar.can_pop()) {
        const axi::ArFlit& head = mgr.ar.front();
        const auto dest_opt = map_.decode(head.addr);
        REALM_EXPECTS(dest_opt.has_value(), name() + ": unmapped NoC address");
        const auto dest = static_cast<std::uint8_t>(*dest_opt);
        const auto it = r_in_flight_.find(head.id);
        const bool ordering_ok = it == r_in_flight_.end() || it->second.count == 0 ||
                                 it->second.dest == dest;
        if (!ordering_ok) { return; }
        axi::ArFlit ar = mgr.ar.pop();
        auto& fl = r_in_flight_[ar.id];
        fl.dest = dest;
        ++fl.count;
        req_out_->push(NocPacket{id_, dest, ar});
        ++injected_;
    }
}

void NocNode::inject_responses() {
    if (egress_.empty() || !rsp_out_->can_push()) { return; }
    // Round-robin over the sources whose responses wait at our subordinate.
    const auto n = static_cast<std::uint32_t>(egress_.size());
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t src = (rsp_rr_ + 1 + i) % n;
        axi::AxiChannel* ch = egress_[src];
        if (ch == nullptr) { continue; }
        if (ch->b.can_pop()) {
            rsp_out_->push(NocPacket{id_, static_cast<std::uint8_t>(src), ch->b.pop()});
            ++injected_;
            rsp_rr_ = src;
            return;
        }
        if (ch->r.can_pop()) {
            rsp_out_->push(NocPacket{id_, static_cast<std::uint8_t>(src), ch->r.pop()});
            ++injected_;
            rsp_rr_ = src;
            return;
        }
    }
}

void NocNode::tick() {
    ring_hop(*rsp_in_, *rsp_out_, /*request_ring=*/false);
    ring_hop(*req_in_, *req_out_, /*request_ring=*/true);
    inject_responses();
    inject_requests();
    update_activity();
}

void NocNode::update_activity() {
    // Conservative idle contract: every tick is a no-op iff nothing this
    // node consumes holds a flit. Uses `empty()`, not `can_pop()`: a flit
    // pushed this cycle is not yet poppable but does need us next cycle.
    // Pending W routing state (`w_dest_`) and same-ID ordering stalls only
    // progress on new flits, all of which arrive through wired links.
    if (!req_in_->empty() || !rsp_in_->empty()) { return; }
    if (local_mgr_ != nullptr && !local_mgr_->requests_empty()) { return; }
    for (const axi::AxiChannel* ch : egress_) {
        if (ch != nullptr && !ch->responses_empty()) { return; }
    }
    idle_forever();
}

} // namespace realm::noc
