/// \file
/// \brief Baseline comparison (Section II related work): the AXI burst
///        equalizer (ABE, [12]) vs the full AXI-REALM unit.
///
/// The ABE enforces a nominal burst size and an outstanding cap — enough to
/// restore round-robin *fairness* — but it has no credits (no bandwidth
/// shares, no isolation) and no write buffer (no stall-DoS protection).
/// Three columns: unregulated, ABE, and REALM with a 25 % DMA budget, all
/// against the same 256-beat interference DMA.
#include "mem/axi_mem_slave.hpp"
#include "mem/llc.hpp"
#include "realm/burst_equalizer.hpp"
#include "realm/realm_unit.hpp"
#include "ic/xbar.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/workload.hpp"

#include <cstdio>
#include <memory>

namespace {

using namespace realm;

enum class Mode { kNone, kEqualizer, kRealm };

struct Outcome {
    double core_lat_mean = 0;
    sim::Cycle core_lat_max = 0;
    double dma_bw = 0;
};

Outcome run(Mode mode) {
    sim::SimContext ctx;
    // Shared memory behind a 2-manager crossbar.
    axi::AxiChannel core_xbar{ctx, "core_xbar"};
    axi::AxiChannel dma_xbar{ctx, "dma_xbar", 2, /*resp_passthrough=*/mode == Mode::kRealm};
    axi::AxiChannel mem_ch{ctx, "mem"};
    mem::AxiMemSlave mem{ctx, "mem", mem_ch, std::make_unique<mem::SramBackend>(1, 1),
                         mem::AxiMemSlaveConfig{4, 4, 0}};
    ic::AddrMap map;
    map.add(0x0, 0x10'0000, 0, "mem");
    ic::AxiXbar xbar{ctx,
                     "xbar",
                     {&core_xbar, &dma_xbar},
                     {&mem_ch},
                     map,
                     ic::XbarConfig{}};

    // The DMA port's regulation stage depends on the mode.
    axi::AxiChannel dma_up{ctx, "dma_up"};
    std::unique_ptr<rt::BurstEqualizer> abe;
    std::unique_ptr<rt::RealmUnit> realm;
    axi::AxiChannel* dma_port = &dma_up;
    switch (mode) {
    case Mode::kNone: dma_port = &dma_xbar; break;
    case Mode::kEqualizer:
        abe = std::make_unique<rt::BurstEqualizer>(ctx, "abe", dma_up, dma_xbar,
                                                   rt::BurstEqualizerConfig{1, 4});
        break;
    case Mode::kRealm: {
        rt::RealmUnitConfig rcfg;
        rcfg.fragment_beats = 1;
        realm = std::make_unique<rt::RealmUnit>(ctx, "realm", dma_up, dma_xbar, rcfg);
        // One 2048-byte parent per 1000-cycle period (the credit must cover
        // a whole parent, which is charged at acceptance): ~2 B/cycle.
        realm->set_region(0, rt::RegionConfig{0x0, 0x10'0000, 2500, 1000});
        break;
    }
    }

    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 256;
    traffic::DmaEngine dma{ctx, "dma", *dma_port, dcfg};
    dma.push_job(traffic::DmaJob{0x8'0000, 0xC'0000, 0x4000, true});
    ctx.run(2000);

    traffic::StreamWorkload wl{{.base = 0x0, .bytes = 0x4000, .op_bytes = 8,
                                .stride_bytes = 8, .repeat = 2}};
    traffic::CoreModel core{ctx, "core", core_xbar, wl};
    const sim::Cycle t0 = ctx.now();
    const std::uint64_t dma0 = dma.bytes_read();
    ctx.run_until([&] { return core.done(); }, 10'000'000);

    Outcome out;
    out.core_lat_mean = core.load_latency().mean();
    out.core_lat_max = core.load_latency().max();
    out.dma_bw = static_cast<double>(dma.bytes_read() - dma0) /
                 static_cast<double>(ctx.now() - t0);
    return out;
}

} // namespace

int main() {
    std::puts("== Baseline: ABE burst equalizer [12] vs AXI-REALM ==");
    std::puts("(same 256-beat interference DMA against a latency-sensitive core)\n");

    const Outcome none = run(Mode::kNone);
    const Outcome abe = run(Mode::kEqualizer);
    const Outcome realm = run(Mode::kRealm);

    std::printf("%-26s %14s %14s %14s\n", "", "unregulated", "ABE (frag 1)",
                "REALM (2B/cyc)");
    std::printf("%-26s %14.1f %14.1f %14.1f\n", "core load lat (mean)", none.core_lat_mean,
                abe.core_lat_mean, realm.core_lat_mean);
    std::printf("%-26s %14llu %14llu %14llu\n", "core load lat (max)",
                static_cast<unsigned long long>(none.core_lat_max),
                static_cast<unsigned long long>(abe.core_lat_max),
                static_cast<unsigned long long>(realm.core_lat_max));
    std::printf("%-26s %14.2f %14.2f %14.2f\n", "DMA bandwidth [B/cyc]", none.dma_bw,
                abe.dma_bw, realm.dma_bw);

    std::puts("\nthe equalizer restores fairness (latency collapses) but cannot cap the");
    std::puts("aggressor's bandwidth share; REALM's credits additionally hold the DMA");
    std::puts("near its reserved share — the delta is exactly the M&R unit.");
    return 0;
}
