/// \file
/// \brief Declarative scenario engine: one struct describes a whole
///        experiment on the Cheshire-like SoC — topology, REALM regulation,
///        memory preload, traffic mix, and run length — and `run_scenario`
///        executes it in a private `SimContext`.
///
/// This replaces the hand-built setup previously duplicated across
/// `bench/fig6_common.hpp`, the ablation benches, and the examples. Every
/// field maps to a knob one of those harnesses used; sweeps are just
/// vectors of configs (see registry.hpp) and are embarrassingly parallel
/// because a scenario owns all of its simulation state.
#pragma once

#include "mon/txn_monitor.hpp"
#include "scenario/topology.hpp"
#include "sim/context.hpp"
#include "soc/cheshire_soc.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/injector.hpp"
#include "traffic/susan.hpp"
#include "traffic/workload.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace realm::scenario {

/// Per-REALM-unit regulation programmed through the guarded register file
/// by the boot master (order: core unit first, then DSA units).
struct RegionPlan {
    std::uint64_t budget_bytes = 1ULL << 30;
    std::uint64_t period_cycles = 1ULL << 20;
    std::uint32_t fragment_beats = axi::kMaxBurstBeats;
};

/// The latency-sensitive workload replayed on the core port.
struct VictimConfig {
    enum class Kind : std::uint8_t {
        kSusan,  ///< MiBench Susan trace (the paper's Figure 6 victim)
        kStream, ///< sequential stream kernel
        kRandom, ///< uniform-random accesses, seeded from the derived seed
    };
    Kind kind = Kind::kSusan;
    traffic::SusanConfig susan{};
    traffic::StreamWorkload::Config stream{};
    traffic::RandomWorkload::Config random{};
};

/// One interference DMA engine, attached to a DSA port.
struct InterferenceConfig {
    traffic::DmaConfig dma{};
    axi::Addr src = 0x8010'0000;
    axi::Addr dst = 0x7000'0000; ///< SPM by default
    std::uint64_t bytes = 0x4000;
    bool loop = true;
    /// Ground truth for the monitoring plane: marks this engine as a DoS
    /// attacker so detector verdicts can be scored (see mon/detector.hpp).
    /// Result-affecting only through the hash (keeps attack/benign cells
    /// from aliasing in a resume cache); the engine itself ignores it.
    bool hostile = false;
    /// When set, the port drives a programmable `InjectorEngine` decoded
    /// from this genome instead of the DMA engine: `src`/`dst`/`bytes`
    /// become the read/write walk windows, `dma`/`loop` are ignored, and
    /// the engine's RNG is seeded from the scenario seed and the
    /// interference index. Genome bytes are hashed (config digest v7), so
    /// searched points resume exactly like grid points.
    std::optional<traffic::InjectorGenome> genome;
};

/// Online transaction-monitoring & telemetry plane (src/mon/). When enabled,
/// every manager port — the victim core and each interference DMA — gets a
/// pass-through `mon::TxnMonitor` spliced in front of its fabric port. The
/// monitor hop adds one cycle each way (like `AxiLatencyProbe`), so the flag
/// is result-affecting and hashed.
struct MonitorConfig {
    bool enabled = false;
    /// Detection/pathology thresholds; hashed when `enabled`.
    mon::TxnMonitorConfig thresholds{};
    /// Row cap for the per-manager distribution table in `--report`.
    /// Host-side display knob only — *excluded* from `config_hash`.
    std::uint32_t report_managers = 8;
};

/// DRAM span seeded with `value(offset) = offset * multiplier` (u64 every
/// 8 bytes) and optionally installed hot in the LLC.
struct PreloadSpan {
    axi::Addr base = 0;
    std::uint64_t bytes = 0;
    std::uint64_t multiplier = 1;
    bool warm = true;
};

/// One row of the cycle-attribution profile (`ScenarioConfig::profile`):
/// wall time and executed ticks charged to one (component type, shard).
struct ProfileRow {
    std::string type;  ///< demangled component type
    unsigned shard = 0;
    std::uint64_t components = 0; ///< instances in the bucket
    std::uint64_t ticks = 0;      ///< executed ticks attributed
    std::uint64_t nanos = 0;      ///< wall time attributed
};

/// How the mesh fabric's tiles are distributed over the spatial shards.
/// Host-side load-balancing only: every partition yields bit-identical
/// simulated results (all inter-tile paths are edge-registered), so the
/// policy is *excluded* from `config_hash` like `shard_workers`.
enum class PartitionPolicy : std::uint8_t {
    kStripe,   ///< contiguous column stripes (the historical default)
    kBalanced, ///< greedy weight balance over per-tile cost estimates
};

[[nodiscard]] constexpr const char* to_string(PartitionPolicy p) noexcept {
    switch (p) {
    case PartitionPolicy::kStripe: return "stripe";
    case PartitionPolicy::kBalanced: return "balanced";
    }
    return "?";
}

/// A complete experiment description.
struct ScenarioConfig {
    std::string name = "scenario";

    /// Fabric selector: the Cheshire crossbar SoC (default) or a ring NoC
    /// with per-node roles and REALM placement (see topology.hpp).
    TopologyConfig topology{};
    /// Crossbar SoC parameters (used when `topology.kind == kCheshire`).
    soc::SocConfig soc{};
    /// Boot-flow regulation; empty skips the boot script entirely.
    std::vector<RegionPlan> boot_plans;
    /// Enables the throttling unit on every DSA-side REALM unit after boot.
    bool throttle_dsa = false;
    /// Programs a monitor-only (unregulated) region over the LLC span on
    /// the core-side REALM unit — free observability without any budget.
    bool monitor_llc_on_core = false;

    VictimConfig victim{};
    /// Interference DMAs, attached to DSA ports 0..n-1 (n <= soc.num_dsa).
    std::vector<InterferenceConfig> interference;
    /// Monitoring & telemetry plane (per-manager monitors + detection).
    MonitorConfig monitors{};
    std::vector<PreloadSpan> preload;

    /// Interference spin-up before the victim starts (applied only when
    /// there is interference), reproducing the "steady-state disturbance"
    /// precondition of the Figure 6 runs.
    sim::Cycle warmup_cycles = 3000;
    sim::Cycle max_cycles = 60'000'000;
    /// Extra cycles simulated after the victim finishes — an idle-heavy
    /// tail that showcases (and tests) the activity-aware kernel.
    sim::Cycle cooldown_cycles = 0;

    sim::Scheduler scheduler = sim::Scheduler::kActivity;
    /// Spatial shards the simulation kernel partitions the fabric into
    /// (mesh column stripes; every other fabric stays on shard 0). Shards
    /// tick concurrently and exchange cross-shard flits at the cycle edge;
    /// results are bit-identical for every value (see sim/context.hpp).
    unsigned shards = 1;
    /// Worker-thread override for the sharded kernel (0 = autodetect from
    /// `hardware_concurrency()`). Host-side only — results are bit-identical
    /// for every value, so it is *excluded* from `config_hash`. Tests force
    /// > 1 to exercise the concurrent barrier path on single-core hosts.
    unsigned shard_workers = 0;
    /// Tile -> shard assignment policy for the mesh fabric (ignored
    /// elsewhere). Host-side only and *excluded* from `config_hash`: any
    /// partition is bit-identical (see `noc::NocMesh::shard_of_node`).
    PartitionPolicy partition = PartitionPolicy::kStripe;
    /// Explicit tile -> shard map override (one entry per mesh node, each
    /// < `shards`). Overrides `partition` when non-empty; used by the
    /// partition-invariance tests to pin pathological maps. Unhashed.
    std::vector<unsigned> tile_shards;
    /// Profile rows (from a previous `profile` run of a comparable config)
    /// driving the balanced partitioner's per-tile weight model; empty
    /// falls back to the static tile-degree model. Unhashed.
    std::vector<ProfileRow> partition_profile;
    /// Per-point RNG seed; sweep factories fill this via `sim::derive_seed`
    /// so parallel runs are reproducible regardless of thread count.
    std::uint64_t seed = 0;
    /// Arms the cycle-attribution profiler (`sim::Profiler`): the run's wall
    /// time is charged to (component type, shard) buckets and returned in
    /// `ScenarioResult::profile`. Host-side observability only — ticking the
    /// profiled loop is bit-identical to the plain one — so it is *excluded*
    /// from `config_hash`, like `shard_workers`.
    bool profile = false;
};

/// Everything the benches and examples report, from one scenario run.
struct ScenarioResult {
    std::string label;
    std::uint64_t seed = 0;
    bool boot_ok = true;
    bool timed_out = false;

    /// \name Victim-observed performance
    ///@{
    std::uint64_t run_cycles = 0; ///< victim start -> victim done
    std::uint64_t ops = 0;
    double load_lat_mean = 0;
    sim::Cycle load_lat_min = 0;
    sim::Cycle load_lat_max = 0;
    sim::Cycle load_lat_p99 = 0;
    double store_lat_mean = 0;
    sim::Cycle store_lat_max = 0;
    ///@}

    /// \name Interference-side observability (DSA port 0)
    ///@{
    std::uint64_t dma_bytes = 0;  ///< read during the victim window
    double dma_read_bw = 0;       ///< bytes/cycle over the victim window
    std::uint64_t dma_depletions = 0;
    std::uint64_t dma_isolation_cycles = 0;
    std::uint64_t dma_throttle_stalls = 0;
    std::uint64_t dma_cut_through = 0; ///< write-buffer cut-through bursts
    std::uint64_t xbar_w_stalls = 0;   ///< fabric W-channel starvation (crossbar:
                                       ///< LLC port; ring: memory-node muxes)
    std::uint64_t fabric_hops = 0;     ///< ring packets forwarded (0 on crossbar)
    std::uint64_t dma_mr_bytes_total = 0;  ///< DSA-side M&R: bytes moved
    double dma_mr_read_lat_mean = 0;       ///< DSA-side M&R: read latency
    ///@}

    /// \name Core-side M&R observability (with `monitor_llc_on_core`)
    ///@{
    double core_mr_read_lat_mean = 0;
    sim::Cycle core_mr_write_lat_max = 0;
    ///@}

    /// \name Monitoring & telemetry plane (with `cfg.monitors.enabled`)
    ///
    /// All values are integers so a `--json` dump round-trips exactly; the
    /// `mgr_*` vectors are columnar per-manager telemetry with manager 0 the
    /// victim core and manager 1+i interference DMA i. Latency quantiles come
    /// from the monitors' merged read+write QuantileSketches (per-shard by
    /// construction, merged single-threaded at harvest — bit-identical for
    /// every shard count).
    ///@{
    bool mon_enabled = false;
    std::uint64_t mon_lat_p50 = 0;  ///< fabric-wide merged P50
    std::uint64_t mon_lat_p99 = 0;  ///< fabric-wide merged P99
    std::uint64_t mon_lat_p999 = 0; ///< fabric-wide merged P99.9
    std::uint64_t mon_timeouts = 0;
    std::uint64_t mon_orphan_rsp = 0;
    std::uint64_t mon_orphan_req = 0;
    std::uint64_t mon_stall_events = 0;
    std::uint64_t mon_wgap_events = 0;
    std::uint64_t mon_true_positives = 0;  ///< hostile managers flagged
    std::uint64_t mon_false_positives = 0; ///< benign managers flagged
    std::uint64_t mon_false_negatives = 0; ///< hostile managers missed
    std::uint64_t mon_first_detect = 0;    ///< fastest time-to-detect (cycles; 0 = none)
    std::vector<std::uint64_t> mgr_p50;
    std::vector<std::uint64_t> mgr_p99;
    std::vector<std::uint64_t> mgr_p999;
    std::vector<std::uint64_t> mgr_flagged; ///< 0/1 detector verdict
    std::vector<std::uint64_t> mgr_signals; ///< mon::Signal bitmask
    std::vector<std::uint64_t> mgr_hostile; ///< 0/1 ground truth
    std::vector<std::uint64_t> mgr_detect;  ///< per-manager time-to-detect (0 = none)
    std::vector<std::uint64_t> mgr_occ_milli; ///< mean outstanding bursts x1000
    ///@}

    /// \name Host-side simulation performance
    ///@{
    std::uint64_t ticks_executed = 0;
    std::uint64_t ticks_skipped = 0;
    sim::Cycle fast_forwarded_cycles = 0;
    sim::Cycle simulated_cycles = 0;
    double wall_seconds = 0;
    /// Per-shard slices of the tick counters (size == cfg.shards) — the
    /// load-balance picture of the sharded kernel.
    std::vector<std::uint64_t> shard_ticks_executed;
    std::vector<std::uint64_t> shard_ticks_skipped;
    /// Cycle-attribution profile, heaviest bucket first (empty unless
    /// `cfg.profile`).
    std::vector<ProfileRow> profile;
    ///@}

    [[nodiscard]] double cycles_per_op() const noexcept {
        return ops == 0 ? 0.0
                        : static_cast<double>(run_cycles) / static_cast<double>(ops);
    }
};

/// Runs one scenario end to end in a fresh simulation context.
/// \param label  Result label (defaults to `cfg.name`).
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& cfg,
                                          std::string label = {});

/// Stable 64-bit digest of every result-affecting field of a config (labels
/// and names excluded). Two configs hash equal iff a run of one reproduces
/// the other bit for bit, so sweep runners can skip points whose hash is
/// already present in a previous `--json` dump (sweep-level resume). The
/// digest is versioned: extending `ScenarioConfig` bumps it for everyone.
[[nodiscard]] std::uint64_t config_hash(const ScenarioConfig& cfg);

} // namespace realm::scenario
