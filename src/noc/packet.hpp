/// \file
/// \brief Packet format of the AXI-carrying ring NoC (Figure 1b of the
///        paper shows REALM units in front of a NoC with AXI4 interfaces).
#pragma once

#include "axi/flit.hpp"

#include <cstdint>
#include <variant>

namespace realm::noc {

/// One AXI channel beat in flight on the network. Request packets (AW/W/AR)
/// travel on the request ring, response packets (B/R) on the response ring;
/// the two-ring split makes the request-response protocol deadlock-free
/// under backpressure.
struct NocPacket {
    std::uint8_t src = 0;  ///< injecting node
    std::uint8_t dest = 0; ///< ejecting node
    std::variant<axi::AwFlit, axi::WFlit, axi::BFlit, axi::ArFlit, axi::RFlit> flit;

    [[nodiscard]] bool is_request() const noexcept {
        return std::holds_alternative<axi::AwFlit>(flit) ||
               std::holds_alternative<axi::WFlit>(flit) ||
               std::holds_alternative<axi::ArFlit>(flit);
    }
};

} // namespace realm::noc
