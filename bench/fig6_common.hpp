/// \file
/// \brief Shared experiment harness for the Figure 6 reproductions: Susan on
///        the core model under DSA-DMA interference on the Cheshire-like SoC.
#pragma once

#include "soc/cheshire_soc.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/susan.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>

namespace realm::bench {

/// One experiment point.
struct Fig6Config {
    bool dma_active = true;
    std::uint32_t dma_fragment = 256;        ///< REALM granularity on the DSA port
    std::uint64_t dma_budget_bytes = 1ULL << 30;  ///< per period
    std::uint64_t core_budget_bytes = 1ULL << 30;
    std::uint64_t period_cycles = 1ULL << 20; ///< "very large" unless stated
    bool throttle = false;
    /// LLC descriptor-initiation interval (see `mem::LlcConfig`); 1 is the
    /// latency-faithful calibration, 2 reproduces the paper's frag-1
    /// performance figure at the cost of latency fidelity (see
    /// EXPERIMENTS.md).
    sim::Cycle llc_request_interval = 1;
    std::uint64_t max_cycles = 60'000'000;
};

struct Fig6Result {
    std::uint64_t run_cycles = 0;   ///< Susan start -> core done
    std::uint64_t ops = 0;
    double load_lat_mean = 0;
    sim::Cycle load_lat_max = 0;
    sim::Cycle load_lat_min = 0;
    double dma_read_bw = 0;         ///< bytes/cycle pulled from the LLC
    std::uint64_t dma_bytes = 0;
    std::uint64_t dma_depletions = 0;

    [[nodiscard]] double cycles_per_op() const {
        return ops == 0 ? 0.0
                        : static_cast<double>(run_cycles) / static_cast<double>(ops);
    }
};

/// Runs Susan-on-core once under the given regulation configuration.
/// The DMA double-buffers 256-beat bursts between the LLC and the SPM, the
/// paper's worst-case disturbance.
inline Fig6Result run_fig6_point(const Fig6Config& cfg,
                                 const traffic::SusanConfig& susan_cfg) {
    sim::SimContext ctx;
    soc::SocConfig scfg;
    scfg.llc.max_outstanding = 4;
    scfg.llc.request_interval = cfg.llc_request_interval;
    soc::CheshireSoc soc{ctx, scfg};

    // Seed DRAM with the Susan image and the DMA's source block; warm the LLC
    // over everything the experiment touches (paper: "assuming the LLC is
    // hot").
    traffic::SusanTraceGenerator gen{susan_cfg};
    const auto& img = gen.input_image();
    for (std::size_t i = 0; i < img.size(); ++i) {
        soc.dram_image().write_u8(susan_cfg.image_base + i, img[i]);
    }
    constexpr axi::Addr kDmaSrc = 0x8010'0000;
    constexpr std::uint64_t kDmaBlock = 0x4000; // 16 KiB double-buffered block
    for (axi::Addr a = 0; a < kDmaBlock; a += 8) {
        soc.dram_image().write_u64(kDmaSrc + a, a * 0x9E3779B9ULL);
    }
    soc.warm_llc(susan_cfg.image_base, img.size());
    soc.warm_llc(susan_cfg.out_base, img.size());
    soc.warm_llc(susan_cfg.lut_base, 4096);
    soc.warm_llc(kDmaSrc, kDmaBlock);

    // Boot-flow configuration through the guarded register file.
    soc.queue_boot_script({
        soc::CheshireSoc::BootRegionPlan{cfg.core_budget_bytes, cfg.period_cycles, 256},
        soc::CheshireSoc::BootRegionPlan{cfg.dma_budget_bytes, cfg.period_cycles,
                                         cfg.dma_fragment},
    });
    if (cfg.throttle) { soc.dsa_realm(0).set_throttle(true); }
    if (!ctx.run_until([&] { return soc.boot_master().done(); }, 10000)) {
        std::fprintf(stderr, "boot script did not complete\n");
        return {};
    }

    // Interference source.
    std::unique_ptr<traffic::DmaEngine> dma;
    if (cfg.dma_active) {
        traffic::DmaConfig dcfg;
        dcfg.burst_beats = 256;
        dcfg.num_buffers = 4;
        dcfg.max_outstanding_reads = 4;
        dcfg.max_outstanding_writes = 4;
        dma = std::make_unique<traffic::DmaEngine>(ctx, "dsa_dma", soc.dsa_port(0), dcfg);
        dma->push_job(traffic::DmaJob{kDmaSrc, 0x7000'0000, kDmaBlock, /*loop=*/true});
        ctx.run(3000); // reach steady-state interference before measuring
    }

    // Victim workload.
    traffic::TraceWorkload wl{gen.take_ops()};
    traffic::CoreModel core{ctx, "cva6", soc.core_port(), wl};
    const sim::Cycle start = ctx.now();
    const std::uint64_t dma_bytes_before = dma ? dma->bytes_read() : 0;
    if (!ctx.run_until([&] { return core.done(); }, cfg.max_cycles)) {
        std::fprintf(stderr, "experiment timed out after %llu cycles\n",
                     static_cast<unsigned long long>(cfg.max_cycles));
    }

    Fig6Result res;
    res.run_cycles = core.finish_cycle() - start;
    res.ops = core.loads_retired() + core.stores_retired();
    res.load_lat_mean = core.load_latency().mean();
    res.load_lat_max = core.load_latency().max();
    res.load_lat_min = core.load_latency().min();
    if (dma) {
        res.dma_bytes = dma->bytes_read() - dma_bytes_before;
        res.dma_read_bw = res.run_cycles == 0
                              ? 0.0
                              : static_cast<double>(res.dma_bytes) /
                                    static_cast<double>(res.run_cycles);
        res.dma_depletions = soc.dsa_realm(0).mr().region(0).depletion_events;
    }
    return res;
}

/// Default Susan configuration for the Figure 6 benches.
inline traffic::SusanConfig fig6_susan() {
    traffic::SusanConfig s;
    s.width = 64;
    s.height = 48;
    s.mask_radius = 2;
    return s;
}

} // namespace realm::bench
