#include "cfg/axi_to_reg.hpp"

#include "sim/check.hpp"

#include <cstring>
#include <utility>

namespace realm::cfg {

AxiToReg::AxiToReg(sim::SimContext& ctx, std::string name, axi::AxiChannel& channel,
                   RegTarget& target, axi::Addr base)
    : Component{ctx, std::move(name)}, port_{channel}, target_{&target}, base_{base} {
    channel.wake_subordinate_on_request(*this);
}

void AxiToReg::reset() {
    write_pending_ = false;
    err_read_beats_ = 0;
    reads_ = 0;
    writes_ = 0;
    errors_ = 0;
}

void AxiToReg::tick() {
    step_datapath();
    // Sleep when only a new request flit (or the W data of a pending write,
    // also a request-side push) can create work. An error-burst R stream or
    // a backpressured response keeps us awake.
    if (err_read_beats_ == 0 && port_.channel().requests_empty()) { idle_forever(); }
}

void AxiToReg::step_datapath() {
    // --- Write path: AW, then one W beat per cycle, B after the last. ---
    if (!write_pending_ && port_.has_aw()) {
        pending_aw_ = port_.recv_aw();
        write_pending_ = true;
    }
    if (write_pending_ && port_.has_w() && port_.can_send_b()) {
        const axi::WFlit w = port_.recv_w();
        axi::BFlit b;
        b.id = pending_aw_.id;
        if (pending_aw_.len != 0) {
            // Config space accepts no bursts: swallow the data, error once.
            b.resp = axi::Resp::kSlvErr;
        } else {
            RegReq req;
            req.addr = pending_aw_.addr - base_;
            req.write = true;
            req.tid = pending_aw_.id;
            // Registers are 32-bit on a 64-bit bus: pick the lane addressed.
            const std::size_t lane = static_cast<std::size_t>(pending_aw_.addr % 8) & 4U;
            std::uint32_t v = 0;
            std::memcpy(&v, w.data.bytes.data() + lane, sizeof v);
            req.wdata = v;
            const RegRsp rsp = target_->reg_access(req);
            b.resp = rsp.error ? axi::Resp::kSlvErr : axi::Resp::kOkay;
            ++writes_;
        }
        if (w.last) {
            if (b.resp != axi::Resp::kOkay) { ++errors_; }
            port_.send_b(b);
            write_pending_ = false;
        }
    }

    // --- Read path: one R beat per cycle. ---
    if (err_read_beats_ > 0) {
        if (port_.can_send_r()) {
            axi::RFlit r;
            r.id = err_read_id_;
            r.resp = axi::Resp::kSlvErr;
            --err_read_beats_;
            r.last = err_read_beats_ == 0;
            port_.send_r(r);
        }
        return;
    }
    if (port_.has_ar() && port_.can_send_r()) {
        const axi::ArFlit ar = port_.recv_ar();
        if (ar.len != 0) {
            // Burst read of config space: SLVERR every beat, starting now.
            ++errors_;
            err_read_id_ = ar.id;
            err_read_beats_ = ar.beats();
            axi::RFlit r;
            r.id = ar.id;
            r.resp = axi::Resp::kSlvErr;
            --err_read_beats_;
            r.last = err_read_beats_ == 0;
            port_.send_r(r);
            return;
        }
        RegReq req;
        req.addr = ar.addr - base_;
        req.write = false;
        req.tid = ar.id;
        const RegRsp rsp = target_->reg_access(req);
        axi::RFlit r;
        r.id = ar.id;
        r.last = true;
        r.resp = rsp.error ? axi::Resp::kSlvErr : axi::Resp::kOkay;
        if (rsp.error) { ++errors_; }
        const std::size_t lane = static_cast<std::size_t>(ar.addr % 8) & 4U;
        std::memcpy(r.data.bytes.data() + lane, &rsp.rdata, sizeof rsp.rdata);
        ++reads_;
        port_.send_r(r);
    }
}

} // namespace realm::cfg
