/// \file
/// \brief Adversarial interference search: random + (μ+λ) evolutionary
///        optimization over `InjectorGenome`s against one scenario cell.
///
/// The DoS matrix enumerates hand-written aggressors; this module *searches*
/// the attacker space instead, maximizing the victim's P99 load latency (the
/// sketch-backed `ScenarioResult::load_lat_p99`) for a fixed (fabric,
/// routing, defense) cell. Every candidate genome becomes an ordinary
/// scenario point — labelled `inj:<hex>`, hashed by `config_hash` — so the
/// sweep runner's JSON dump doubles as the search checkpoint: killing a
/// search and re-running with `--resume` replays cached evaluations from the
/// per-point hash and simulates only the tail. The whole search is a pure
/// function of (base config, options, checkpoint contents): fixed seed ⇒
/// identical generation history and winner, regardless of thread count.
#pragma once

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "traffic/injector.hpp"

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace realm::scenario {

struct SearchOptions {
    /// Total genomes scored (cached checkpoint hits included), so a resumed
    /// search converges to the same history a straight-through run produces.
    std::size_t budget = 32;
    std::size_t population = 8; ///< λ: candidates per generation
    std::size_t parents = 4;    ///< μ: elite pool offspring are bred from
    std::uint64_t seed = 1;     ///< search-RNG seed (mutation / crossover)
    unsigned threads = 1;       ///< sweep-runner workers per generation
    /// `write_json` dump reused as the checkpoint: evaluations whose
    /// `config_hash` already appears there are replayed, not re-simulated,
    /// and the file is rewritten after every generation. Empty = no
    /// checkpointing.
    std::string checkpoint_path;
};

/// One scored genome, in evaluation order.
struct SearchEval {
    traffic::InjectorGenome genome;
    ScenarioResult result;
    std::uint64_t objective = 0; ///< `search_objective(result)`
    bool reused = false;         ///< replayed from the checkpoint
};

/// Everything one search run produced.
struct SearchOutcome {
    std::vector<SearchEval> history; ///< evaluation order, `budget` entries
    std::size_t best = 0;            ///< index into `history`
    std::size_t fresh = 0;           ///< evaluations actually simulated
    std::size_t reused = 0;          ///< evaluations replayed from checkpoint

    [[nodiscard]] const SearchEval& winner() const { return history[best]; }
};

/// The scalar the search maximizes: victim P99 load latency, read from the
/// monitors' merged quantile sketches (exact u64; ranks identically whether
/// a result was simulated or parsed back from a checkpoint).
[[nodiscard]] inline std::uint64_t search_objective(const ScenarioResult& r) noexcept {
    return r.load_lat_p99;
}

/// Rebinds one matrix cell to a searched attacker: every interference entry
/// of `base` keeps its port, windows, and `hostile` flag but swaps its DMA
/// program for `g`; the point is renamed to the genome's replayable label.
/// Seeds and shard counts are untouched, so re-running the returned config
/// reproduces the searched evaluation bit for bit.
[[nodiscard]] ScenarioConfig genome_scenario(const ScenarioConfig& base,
                                             const traffic::InjectorGenome& g);

/// Hand-seeded starting population: genome transcriptions of the enumerated
/// hog / overdraft / wstall aggressors, so generation 0 already matches the
/// grid's attack repertoire and search can only improve on it.
[[nodiscard]] std::vector<traffic::InjectorGenome> attack_seed_genomes();

/// Runs the search against one cell. Generation 0 is `attack_seed_genomes`
/// plus random fill; later generations breed from the top-μ of all history
/// (crossover + per-gene mutation), truncated so the final generation lands
/// exactly on `budget`. Ranking is (objective desc, load_lat_max desc,
/// label asc) — exact integer keys only, so cached and fresh evaluations
/// order identically.
[[nodiscard]] SearchOutcome search_worst_case(const ScenarioConfig& base,
                                              const SearchOptions& options);

/// Inputs of the search-report section that are not in the outcome itself.
struct SearchSummary {
    std::string sweep;        ///< enumerated sweep the base cell came from
    std::string base_label;   ///< label of the searched cell
    std::string worst_enumerated_label; ///< grid's worst cell by objective
    std::uint64_t worst_enumerated_p99 = 0;
    std::uint64_t budget = 0;
    std::uint64_t seed = 0;
};

/// Writes the "worst found vs worst enumerated" markdown section: the two
/// P99s side by side, the winning genome's label (replayable) and decoded
/// parameters, and the top evaluations. Pure function of its arguments —
/// golden-tested like `write_report`, but deliberately a separate writer so
/// existing reports stay byte-identical when search is off.
void write_search_report(std::ostream& os, const SearchSummary& summary,
                         const SearchOutcome& outcome);

} // namespace realm::scenario
