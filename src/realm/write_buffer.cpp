#include "realm/write_buffer.hpp"

#include "sim/check.hpp"

namespace realm::rt {

WriteBuffer::WriteBuffer(std::uint32_t depth_beats, bool enabled)
    : depth_{depth_beats}, enabled_{enabled} {
    REALM_EXPECTS(depth_ >= 1, "write buffer depth must be at least one beat");
}

void WriteBuffer::reset() {
    entries_.clear();
    buffered_unsent_ = 0;
    cut_through_ = 0;
}

void WriteBuffer::queue_children(const axi::AwFlit& parent,
                                 std::span<const axi::BurstDescriptor> children) {
    REALM_EXPECTS(!children.empty(), "write must have at least one child");
    for (std::size_t i = 0; i < children.size(); ++i) {
        Entry e;
        e.aw = parent;
        e.aw.addr = children[i].addr;
        e.aw.len = children[i].len;
        e.beats_total = children[i].beats();
        e.parent_last = i + 1 == children.size();
        // A burst that cannot fit must stream through: the buffer cannot
        // provide stall protection for it.
        e.cut_through = !enabled_ || e.beats_total > depth_;
        if (e.cut_through) { ++cut_through_; }
        entries_.push_back(std::move(e));
    }
}

WriteBuffer::Entry* WriteBuffer::fill_target() noexcept {
    for (Entry& e : entries_) {
        if (e.beats_buffered < e.beats_total) { return &e; }
    }
    return nullptr;
}

bool WriteBuffer::can_accept_beat() const noexcept {
    // Find the entry the next beat belongs to.
    for (const Entry& e : entries_) {
        if (e.beats_buffered < e.beats_total) {
            if (e.cut_through) { return true; } // data flows straight through
            return buffered_unsent_ < depth_;
        }
    }
    return false; // no entry expecting data (W would lead AW)
}

void WriteBuffer::accept_beat(const axi::WFlit& beat) {
    Entry* e = fill_target();
    REALM_EXPECTS(e != nullptr, "W beat with no queued write burst");
    REALM_EXPECTS(e->cut_through || buffered_unsent_ < depth_, "write buffer overflow");
    axi::WFlit stored = beat;
    ++e->beats_buffered;
    // Re-gate last at the child boundary; verify the parent's last beat
    // lands on the final child's final beat.
    const bool child_last = e->beats_buffered == e->beats_total;
    REALM_ENSURES(beat.last == (child_last && e->parent_last),
                  "parent WLAST out of position");
    stored.last = child_last;
    e->data.push_back(stored);
    ++buffered_unsent_;
}

bool WriteBuffer::has_aw_to_send() const noexcept {
    for (const Entry& e : entries_) {
        if (e.aw_sent) { continue; }
        if (e.cut_through) {
            // Forward the AW immediately: without buffering we cannot (and
            // need not) delay the address phase.
            return true;
        }
        return e.beats_buffered == e.beats_total;
    }
    return false;
}

axi::AwFlit WriteBuffer::pop_aw() {
    for (Entry& e : entries_) {
        if (e.aw_sent) { continue; }
        REALM_EXPECTS(e.cut_through || e.beats_buffered == e.beats_total,
                      "AW released before its data is complete");
        e.aw_sent = true;
        return e.aw;
    }
    REALM_UNREACHABLE("pop_aw with nothing to send");
}

bool WriteBuffer::has_w_to_send() const noexcept {
    if (entries_.empty()) { return false; }
    const Entry& e = entries_.front();
    return e.aw_sent && !e.data.empty();
}

axi::WFlit WriteBuffer::pop_w() {
    REALM_EXPECTS(has_w_to_send(), "no W beat ready");
    Entry& e = entries_.front();
    axi::WFlit f = e.data.front();
    e.data.pop_front();
    ++e.beats_sent;
    --buffered_unsent_;
    if (e.beats_sent == e.beats_total) {
        REALM_ENSURES(f.last, "entry drained without child WLAST");
        entries_.pop_front();
    }
    return f;
}

} // namespace realm::rt
