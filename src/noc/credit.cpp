#include "noc/credit.hpp"

#include <utility>

namespace realm::noc {

void NocFlowConfig::validate() const {
    if (mode == FlowControl::kProvisioned) { return; }
    REALM_EXPECTS(flits_per_packet >= 1, "flits_per_packet must be >= 1");
    // NocPacket::flits is 8-bit; a longer worm would silently truncate at
    // packetization and leak credits at ejection.
    REALM_EXPECTS(flits_per_packet <= 255, "flits_per_packet must fit 8 bits");
    REALM_EXPECTS(vc_depth >= flits_per_packet,
                  "vc_depth must hold at least one whole worm");
    REALM_EXPECTS(e2e_credits >= flits_per_packet + 1,
                  "e2e_credits must exceed one worm plus its header");
}

void NocLink::push(NocPacket pkt) {
    REALM_EXPECTS(can_push(pkt.flits), "push into busy/full NoC link " + name());
    if (fc_.mode == FlowControl::kCredited) {
        buffered_flits_ += pkt.flits;
        REALM_ENSURES(buffered_flits_ <= fc_.vc_depth,
                      name() + ": VC buffer exceeds its configured depth");
        if (buffered_flits_ > peak_flits_) { peak_flits_ = buffered_flits_; }
        // The worm's tail leaves the sender `flits` cycles after the header;
        // the channel is busy until then.
        busy_until_ = ctx_->now() + pkt.flits;
    }
    link_.push(std::move(pkt));
}

NocPacket NocLink::pop() {
    NocPacket pkt = link_.pop();
    if (fc_.mode == FlowControl::kCredited) {
        REALM_ENSURES(buffered_flits_ >= pkt.flits, "NoC link flit underflow");
        buffered_flits_ -= pkt.flits;
    }
    return pkt;
}

namespace {
/// Legacy provisioned staging depth: deep enough to cover the in-flight W
/// beats of one source under the crossbar-style mux reservation (see the
/// `NocRing` class comment). Only reachable under `FlowControl::kProvisioned`.
constexpr std::size_t kProvisionedEgressDepth = 1024;
} // namespace

std::size_t staging_depth(const NocFlowConfig& fc) {
    return fc.mode == FlowControl::kCredited ? fc.e2e_credits
                                             : kProvisionedEgressDepth;
}

void wire_credit_returns(axi::AxiChannel& egress, CreditPool& pool,
                         const NocFlowConfig& fc) {
    const std::uint32_t data_flits = fc.packet_flits(/*data_carrying=*/true);
    egress.aw.set_on_pop([&pool] { pool.release(1); });
    egress.ar.set_on_pop([&pool] { pool.release(1); });
    egress.w.set_on_pop([&pool, data_flits] { pool.release(data_flits); });
}

std::uint32_t staged_request_flits(const axi::AxiChannel& egress,
                                   const NocFlowConfig& fc) {
    const std::uint32_t data_flits = fc.packet_flits(/*data_carrying=*/true);
    return static_cast<std::uint32_t>(egress.aw.occupancy()) +
           static_cast<std::uint32_t>(egress.ar.occupancy()) +
           static_cast<std::uint32_t>(egress.w.occupancy()) * data_flits;
}

void check_staging_invariants(const axi::AxiChannel& egress, const CreditPool& pool,
                              const NocFlowConfig& fc) {
    const std::uint32_t staged = staged_request_flits(egress, fc);
    REALM_ENSURES(staged <= fc.e2e_credits,
                  "NI staging exceeds its end-to-end credit pool");
    REALM_ENSURES(staged <= pool.in_flight(),
                  "staged flits without matching in-flight credits");
}

} // namespace realm::noc
