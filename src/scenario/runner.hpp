/// \file
/// \brief Parallel sweep runner: executes independent scenario points on a
///        thread pool and renders text tables / machine-readable JSON.
///
/// Each point runs in its own `SimContext` (a scenario owns all simulation
/// state) with an RNG seed derived from the sweep name and point index, so
/// results are bit-identical for every thread count, including 1.
#pragma once

#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"

#include <ostream>
#include <string>
#include <vector>

namespace realm::scenario {

struct RunnerOptions {
    /// Worker threads; 0 picks `std::thread::hardware_concurrency()`.
    unsigned threads = 1;
};

class ScenarioRunner {
public:
    explicit ScenarioRunner(RunnerOptions options = {}) : options_{options} {}

    /// Runs every point of the sweep; results are returned in point order
    /// regardless of completion order.
    [[nodiscard]] std::vector<ScenarioResult> run(const Sweep& sweep) const;

    /// Runs a bare list of configs (labels default to each config's name).
    [[nodiscard]] std::vector<ScenarioResult>
    run(const std::vector<ScenarioConfig>& configs) const;

    [[nodiscard]] const RunnerOptions& options() const noexcept { return options_; }

private:
    [[nodiscard]] std::vector<ScenarioResult>
    run_points(const std::vector<const ScenarioConfig*>& configs,
               const std::vector<std::string>& labels) const;

    RunnerOptions options_;
};

/// Writes the sweep's results as a JSON document:
/// `{"sweep": ..., "points": [{label, seed, metrics...}, ...]}`.
void write_json(std::ostream& os, const Sweep& sweep,
                const std::vector<ScenarioResult>& results);

/// Convenience: `write_json` to a file; returns false on I/O failure.
bool write_json_file(const std::string& path, const Sweep& sweep,
                     const std::vector<ScenarioResult>& results);

} // namespace realm::scenario
