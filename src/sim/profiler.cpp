#include "sim/profiler.hpp"

#include <algorithm>
#include <cstdlib>

#if defined(__GNUG__)
#include <cxxabi.h>
#endif

namespace realm::sim {

namespace {

std::string demangle(const std::string& raw) {
#if defined(__GNUG__)
    int status = 0;
    char* out = abi::__cxa_demangle(raw.c_str(), nullptr, nullptr, &status);
    if (status == 0 && out != nullptr) {
        std::string s{out};
        std::free(out);
        return s;
    }
#endif
    return raw;
}

} // namespace

void Profiler::begin_partition() {
    for (Key& k : keys_) { k.components = 0; }
}

std::uint32_t Profiler::intern(const std::type_info& type, unsigned shard) {
    const char* raw = type.name();
    for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (keys_[i].shard == shard && keys_[i].raw_type == raw) {
            ++keys_[i].components;
            return static_cast<std::uint32_t>(i);
        }
    }
    keys_.push_back(Key{raw, shard, 1});
    buckets_.push_back(Bucket{});
    return static_cast<std::uint32_t>(keys_.size() - 1);
}

void Profiler::reset() {
    keys_.clear();
    buckets_.clear();
}

std::vector<Profiler::Row> Profiler::rows() const {
    std::vector<Row> rows;
    rows.reserve(keys_.size());
    for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (buckets_[i].ticks == 0 && keys_[i].components == 0) { continue; }
        Row r;
        r.type = demangle(keys_[i].raw_type);
        r.shard = keys_[i].shard;
        r.components = keys_[i].components;
        r.ticks = buckets_[i].ticks;
        r.nanos = buckets_[i].nanos;
        rows.push_back(std::move(r));
    }
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
        if (a.nanos != b.nanos) { return a.nanos > b.nanos; }
        if (a.shard != b.shard) { return a.shard < b.shard; }
        return a.type < b.type;
    });
    return rows;
}

} // namespace realm::sim
