/// \file
/// \brief Programmable interference injector: parameterized pattern
///        primitives driven by a compact genome.
///
/// The DoS matrix enumerates three hand-written aggressors (hog / overdraft
/// / wstall). SafeTI's lesson (arXiv:2308.11528) is that interference
/// testing is only as strong as its pattern diversity, so this module makes
/// the aggressor itself *searchable*: an `InjectorGenome` is a fixed-width
/// byte vector whose every value decodes — totally, no illegal points — into
/// a combination of pattern primitives:
///
///   - bursty on/off duty cycles,
///   - strided / pointer-chase / random address walks,
///   - read-storm and write-stall phases (AW reserved, data trickled),
///   - mixed AW:AR ratios,
///   - burst-size ramps.
///
/// `InjectorEngine` executes a genome on a manager port as protocol-legal
/// AXI4 traffic (checker-clean by construction: bursts clamped to the span
/// and the 4 KiB boundary, W beats in AW order, WLAST exact). Traffic is a
/// pure function of (genome, seed): bit-identical streams on replay, which
/// is what lets the adversarial search harness (scenario/search.hpp) treat
/// genomes as scenario points with ordinary `config_hash` resume keys.
#pragma once

#include "axi/channel.hpp"

#include "sim/component.hpp"
#include "sim/rng.hpp"

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace realm::traffic {

/// Fixed-width parameter vector of one interference pattern. Every byte
/// value is legal; decoding is total and deterministic, so random mutation
/// can never produce an invalid attacker.
struct InjectorGenome {
    static constexpr std::size_t kGenes = 12;

    /// Gene roles (index into `genes`).
    enum Gene : std::size_t {
        kReadBeats = 0,   ///< read burst length: 1 + g in [1, 256]
        kWriteBeats = 1,  ///< write burst length: 1 + g in [1, 256]
        kWriteRatio = 2,  ///< AW:AR mix: g*17/256 in [0, 16] (writes per 16)
        kWalk = 3,        ///< g % 3: strided / pointer-chase / random
        kStride = 4,      ///< stride: 1 << (g % 9) bus-widths in [1, 256]
        kDutyOn = 5,      ///< on-phase: 64 << (g % 5) cycles in [64, 1024]
        kDutyOff = 6,     ///< off-phase: (g % 8) * 64 cycles (0 = always on)
        kWStall = 7,      ///< cycles between W beats: g % 65 in [0, 64]
        kHeadDelay = 8,   ///< AW -> first W reserve window: (g % 4) * 32
        kOutstanding = 9, ///< per-direction outstanding bursts: 1 + g % 4
        kRamp = 10,       ///< beats added per issued burst: g % 32 (wraps)
        kSpanShift = 11,  ///< address window: span >> (g % 4)
    };

    std::array<std::uint8_t, kGenes> genes{};

    friend bool operator==(const InjectorGenome& a, const InjectorGenome& b) {
        return a.genes == b.genes;
    }
};

/// Address-walk mode of a decoded genome.
enum class InjectorWalk : std::uint8_t { kStrided, kChase, kRandom };

[[nodiscard]] constexpr const char* to_string(InjectorWalk w) noexcept {
    switch (w) {
    case InjectorWalk::kStrided: return "strided";
    case InjectorWalk::kChase: return "chase";
    case InjectorWalk::kRandom: return "random";
    }
    return "?";
}

/// Fully decoded pattern parameters. Produced by `decode_genome`; every
/// field is in its documented legal range for any input genome.
struct InjectorParams {
    std::uint32_t read_beats = 1;     ///< [1, 256]
    std::uint32_t write_beats = 1;    ///< [1, 256]
    std::uint32_t write_ratio16 = 0;  ///< [0, 16] writes per 16 bursts
    InjectorWalk walk = InjectorWalk::kStrided;
    std::uint32_t stride_beats = 1;   ///< [1, 256] bus-widths between bursts
    std::uint32_t on_cycles = 64;     ///< [64, 1024]
    std::uint32_t off_cycles = 0;     ///< [0, 448]; 0 = always on
    std::uint32_t w_stall_cycles = 0; ///< [0, 64] cycles between W beats
    std::uint32_t head_delay = 0;     ///< [0, 96] cycles AW -> first W beat
    std::uint32_t max_outstanding = 1; ///< [1, 4] per direction
    std::uint32_t ramp_step = 0;      ///< [0, 31] beats added per burst
    std::uint32_t span_shift = 0;     ///< [0, 3]: window = span >> shift
};

/// Decodes a genome. Total: every byte vector maps to legal parameters.
[[nodiscard]] InjectorParams decode_genome(const InjectorGenome& g) noexcept;

/// Encodes a genome as a replayable scenario label: `inj:` followed by
/// `2 * kGenes` lowercase hex digits. `parse_injector_label` inverts it;
/// the round-trip is exact, so a searched winner can be re-run as a fixed
/// scenario from its reported label alone.
[[nodiscard]] std::string to_label(const InjectorGenome& g);
[[nodiscard]] std::optional<InjectorGenome> parse_injector_label(std::string_view label);

struct InjectorConfig {
    std::uint32_t bus_bytes = 8;
    InjectorGenome genome{};
    /// Read bursts walk `[read_base, read_base + span_bytes)`; write bursts
    /// walk `[write_base, write_base + span_bytes)` (shrunk by the genome's
    /// span-shift gene). Both spans must be bus-aligned.
    axi::Addr read_base = 0;
    axi::Addr write_base = 0;
    std::uint64_t span_bytes = 0x1000;
    /// Seeds the random-walk / mix RNG; traffic is a pure function of
    /// (genome, seed, port timing), bit-identical on replay.
    std::uint64_t seed = 1;
    std::uint8_t qos = 0;
};

/// Executes one genome on a manager port, forever (interference engines run
/// until the scenario ends; there is no job queue). Reads are independent
/// requests; write data is synthesized, so a write-stall genome reserves
/// the W channel exactly like the stalling-manager DoS of the paper.
class InjectorEngine : public sim::Component {
public:
    InjectorEngine(sim::SimContext& ctx, std::string name, axi::AxiChannel& port,
                   InjectorConfig config = {});

    void reset() override;
    void tick() override;

    [[nodiscard]] const InjectorParams& params() const noexcept { return params_; }

    /// \name Statistics
    ///@{
    [[nodiscard]] std::uint64_t bytes_read() const noexcept { return bytes_read_; }
    [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_; }
    [[nodiscard]] std::uint64_t reads_issued() const noexcept { return reads_issued_; }
    [[nodiscard]] std::uint64_t writes_issued() const noexcept { return writes_issued_; }
    ///@}

private:
    enum class WSlot : std::uint8_t { kFree, kStreaming, kAwaitB };

    /// One write burst whose W beats are still owed, in AW order.
    struct PendingWrite {
        std::uint32_t id = 0;
        std::uint32_t beats = 0;
        std::uint32_t sent = 0;
        sim::Cycle first_w_at = 0; ///< reserve window: AW time + head_delay
    };

    [[nodiscard]] bool duty_on() const noexcept;
    /// Next burst address in the window, clamping `beats` to the window end
    /// and the AXI 4 KiB boundary, then advancing the walk.
    [[nodiscard]] axi::Addr next_addr(bool write, std::uint32_t& beats);
    void collect_r();
    void collect_b();
    void stream_w();
    void issue();
    void redraw_kind();

    axi::ManagerView port_;
    InjectorConfig cfg_;
    InjectorParams params_;
    sim::Rng rng_;

    sim::Cycle start_cycle_ = sim::kNoCycle; ///< duty-cycle phase anchor
    bool next_is_write_ = false;

    std::vector<std::uint32_t> read_left_; ///< R beats owed per read ID (0 = free)
    std::vector<WSlot> write_slot_;
    std::deque<PendingWrite> w_queue_;
    sim::Cycle next_w_at_ = 0;

    std::uint64_t read_offset_ = 0;  ///< walk state, bytes into the window
    std::uint64_t write_offset_ = 0;
    std::uint32_t cur_read_beats_ = 1;  ///< ramped burst lengths
    std::uint32_t cur_write_beats_ = 1;

    std::uint64_t bytes_read_ = 0;
    std::uint64_t bytes_written_ = 0;
    std::uint64_t reads_issued_ = 0;
    std::uint64_t writes_issued_ = 0;
};

} // namespace realm::traffic
