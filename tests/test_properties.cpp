/// Parameterized property sweeps across modules: WRAP address math, Susan
/// trace invariants over configurations, the full register map, multi-beat
/// core operations, and cut-through writes under regulation.
#include "axi/builder.hpp"
#include "axi/burst.hpp"
#include "cfg/realm_regfile.hpp"
#include "mem/axi_mem_slave.hpp"
#include "realm/realm_unit.hpp"
#include "traffic/core.hpp"
#include "traffic/susan.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

#include <set>

namespace realm {
namespace {

using test::collect_b;
using test::collect_read_burst;
using test::step_until;

// --- WRAP burst math over every legal configuration --------------------------

class WrapSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WrapSweep, BeatsStayInWindowAndCoverIt) {
    const auto [len, size, offset_beats] = GetParam();
    const auto bb = axi::bytes_per_beat(static_cast<std::uint8_t>(size));
    const axi::Addr base = 0x4000;
    const axi::Addr addr = base + static_cast<axi::Addr>(offset_beats) * bb;
    const axi::BurstDescriptor desc{addr, static_cast<std::uint8_t>(len),
                                    static_cast<std::uint8_t>(size), axi::Burst::kWrap};
    if (static_cast<std::uint32_t>(offset_beats) >= desc.beats()) { GTEST_SKIP(); }
    ASSERT_TRUE(axi::is_legal(desc));

    const axi::Addr window = desc.total_bytes();
    const axi::Addr boundary = axi::wrap_boundary(desc);
    EXPECT_EQ(boundary % window, 0U) << "window must be naturally aligned";

    std::set<axi::Addr> seen;
    for (std::uint32_t i = 0; i < desc.beats(); ++i) {
        const axi::Addr a = axi::beat_address(desc, i);
        EXPECT_GE(a, boundary);
        EXPECT_LT(a, boundary + window);
        EXPECT_EQ(a % bb, 0U);
        seen.insert(a);
    }
    EXPECT_EQ(seen.size(), desc.beats()) << "every beat addresses a distinct slot";
    EXPECT_EQ(axi::beat_address(desc, 0), addr);
}

INSTANTIATE_TEST_SUITE_P(AllWrapShapes, WrapSweep,
                         ::testing::Combine(::testing::Values(1, 3, 7, 15),
                                            ::testing::Values(0, 2, 3),
                                            ::testing::Values(0, 1, 3, 7, 15)));

// --- Susan trace invariants over configurations ------------------------------

class SusanSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SusanSweep, TraceInvariantsHold) {
    const auto [width, radius, cache_bytes] = GetParam();
    traffic::SusanConfig cfg;
    cfg.width = static_cast<std::uint32_t>(width);
    cfg.height = static_cast<std::uint32_t>(width) * 3 / 4;
    cfg.mask_radius = static_cast<std::uint32_t>(radius);
    cfg.filter_cache_bytes = static_cast<std::uint32_t>(cache_bytes);
    traffic::SusanTraceGenerator gen{cfg};

    EXPECT_GT(gen.emitted_loads(), 0U);
    EXPECT_GT(gen.emitted_stores(), 0U);
    const std::uint32_t d = 2 * cfg.mask_radius + 1;
    EXPECT_EQ(gen.total_taps(),
              std::uint64_t{cfg.width - 2 * cfg.mask_radius} *
                  (cfg.height - 2 * cfg.mask_radius) * d * d);

    // Every access must target one of the three declared regions, aligned.
    const std::uint64_t image_bytes = std::uint64_t{cfg.width} * cfg.height;
    for (const traffic::MemOp& op : gen.ops()) {
        EXPECT_EQ(op.addr % 8, 0U);
        const bool in_image =
            op.addr >= cfg.image_base && op.addr < cfg.image_base + image_bytes + 8;
        const bool in_out =
            op.addr >= cfg.out_base && op.addr < cfg.out_base + image_bytes + 8;
        const bool in_lut = op.addr >= cfg.lut_base && op.addr < cfg.lut_base + 1024;
        ASSERT_TRUE(in_image || in_out || in_lut) << "stray address " << std::hex
                                                  << op.addr;
        if (op.kind == traffic::MemOp::Kind::kStore) {
            EXPECT_TRUE(in_out) << "stores go to the output image only";
        }
    }

    // A smaller filter cache can only increase interconnect traffic.
    traffic::SusanConfig smaller = cfg;
    smaller.filter_cache_bytes = cfg.filter_cache_bytes / 2;
    traffic::SusanTraceGenerator gen_small{smaller};
    EXPECT_GE(gen_small.emitted_loads(), gen.emitted_loads());
}

INSTANTIATE_TEST_SUITE_P(Configs, SusanSweep,
                         ::testing::Combine(::testing::Values(32, 48, 64),
                                            ::testing::Values(1, 2, 3),
                                            ::testing::Values(256, 512, 2048)));

// --- Register map walk --------------------------------------------------------

TEST(RegMapWalk, EveryDocumentedRegisterReadsWithoutError) {
    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down", 2, true};
    mem::AxiMemSlave slave{ctx, "mem", down, std::make_unique<mem::SramBackend>(1, 1),
                           mem::AxiMemSlaveConfig{8, 8, 0}};
    rt::RealmUnit unit{ctx, "u0", up, down, {}};
    cfg::RealmRegFile rf{{&unit}};
    using RF = cfg::RealmRegFile;

    const auto rd = [&](axi::Addr a) {
        return rf.reg_access(cfg::RegReq{a, false, 0, 0});
    };
    EXPECT_FALSE(rd(RF::kNumUnitsOffset).error);
    EXPECT_FALSE(rd(RF::kNumRegionsOffset).error);
    for (const axi::Addr off : {RF::kCtrl, RF::kFragment, RF::kStatus, RF::kReadsAcc,
                                RF::kWritesAcc, RF::kIsoCycles}) {
        EXPECT_FALSE(rd(RF::unit_reg(0, off)).error) << "unit reg 0x" << std::hex << off;
    }
    for (std::uint32_t region = 0; region < 2; ++region) {
        for (const axi::Addr off :
             {RF::kStartLo, RF::kStartHi, RF::kEndLo, RF::kEndHi, RF::kBudgetLo,
              RF::kBudgetHi, RF::kPeriodLo, RF::kPeriodHi, RF::kBytesPeriod, RF::kTxnCount,
              RF::kRdLatAvg, RF::kRdLatMax, RF::kWrLatAvg, RF::kWrLatMax, RF::kCredit}) {
            EXPECT_FALSE(rd(RF::region_reg(0, region, off)).error)
                << "region " << region << " reg 0x" << std::hex << off;
        }
    }
    // Writable registers accept writes; read-only ones reject them.
    const auto wr = [&](axi::Addr a, std::uint32_t v) {
        return rf.reg_access(cfg::RegReq{a, true, v, 0});
    };
    EXPECT_FALSE(wr(RF::unit_reg(0, RF::kCtrl), 1).error);
    EXPECT_FALSE(wr(RF::region_reg(0, 0, RF::kBudgetLo), 42).error);
    EXPECT_TRUE(wr(RF::unit_reg(0, RF::kStatus), 1).error);
    EXPECT_TRUE(wr(RF::region_reg(0, 0, RF::kTxnCount), 1).error);
    EXPECT_TRUE(wr(RF::region_reg(0, 0, RF::kCredit), 1).error);
}

// --- Multi-beat core operations ----------------------------------------------

TEST(CoreMultiBeat, CacheLineOpsIssueBursts) {
    sim::SimContext ctx;
    axi::AxiChannel ch{ctx, "core"};
    mem::AxiMemSlave slave{ctx, "mem", ch, std::make_unique<mem::SramBackend>(1, 1),
                           mem::AxiMemSlaveConfig{8, 8, 0}};
    traffic::StreamWorkload wl{{.base = 0,
                                .bytes = 1024,
                                .op_bytes = 64, // cache-line granularity
                                .stride_bytes = 64,
                                .store_ratio16 = 8}};
    traffic::CoreModel core{ctx, "core", ch, wl};
    step_until(ctx, [&] { return core.done(); }, 50000);
    EXPECT_EQ(core.loads_retired() + core.stores_retired(), 16U);
    // 64 B on an 8 B bus = 8 beats; latency must reflect burst streaming.
    EXPECT_GE(core.load_latency().mean(), 10.0);
}

// --- Cut-through writes under an active budget --------------------------------

TEST(CutThroughRegulated, OversizedBurstStillChargedAndRegulated) {
    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down", 2, true};
    mem::AxiMemSlave slave{ctx, "mem", down, std::make_unique<mem::SramBackend>(1, 1),
                           mem::AxiMemSlaveConfig{16, 16, 0}};
    rt::RealmUnitConfig cfg;
    cfg.write_buffer_depth = 4; // smaller than the bursts below
    rt::RealmUnit unit{ctx, "realm", up, down, cfg};
    unit.set_region(0, rt::RegionConfig{0x0, 0x10000, 256, 2000});

    // 32-beat write (256 B): consumes the whole budget, exceeds the buffer.
    test::push_write_burst(ctx, up, 1, 0x0, 32, 8);
    const axi::BFlit b = collect_b(ctx, up);
    EXPECT_EQ(b.resp, axi::Resp::kOkay);
    EXPECT_GT(unit.write_buffer().cut_through_bursts(), 0U);
    EXPECT_EQ(unit.state(), rt::RealmState::kIsolatedBudget)
        << "cut-through data still debits the budget";
}

} // namespace
} // namespace realm
