#include "mon/txn_monitor.hpp"

#include "sim/check.hpp"

#include <algorithm>
#include <utility>

namespace realm::mon {

TxnMonitor::TxnMonitor(sim::SimContext& ctx, std::string name, axi::AxiChannel& upstream,
                       axi::AxiChannel& downstream, TxnMonitorConfig config)
    : Component{ctx, std::move(name)}, up_{upstream}, down_{downstream}, cfg_{config} {
    REALM_EXPECTS(cfg_.timeout_cycles > 0, "monitor timeout must be positive");
    REALM_EXPECTS(cfg_.stall_cycles > 0, "monitor stall threshold must be positive");
    REALM_EXPECTS(cfg_.window_cycles > 0, "monitor window must be positive");
    upstream.wake_subordinate_on_request(*this);
    downstream.wake_manager_on_response(*this);
    attach_cycle_ = now();
    window_start_ = now();
    last_w_cycle_ = now();
    occ_last_cycle_ = now();
}

void TxnMonitor::reset() {
    write_open_.clear();
    read_open_.clear();
    r_bytes_per_beat_.clear();
    w_bursts_.clear();
    last_w_cycle_ = now();
    w_gap_flagged_ = false;
    read_sketch_.reset();
    write_sketch_.reset();
    aw_count_ = 0;
    ar_count_ = 0;
    bytes_read_ = 0;
    bytes_written_ = 0;
    timeouts_ = 0;
    orphan_responses_ = 0;
    orphan_requests_ = 0;
    stall_events_ = 0;
    w_gap_events_ = 0;
    held_cycles_ = 0;
    next_timeout_deadline_ = sim::kNoCycle;
    for (int i = 0; i < 3; ++i) {
        held_streak_start_[i] = sim::kNoCycle;
        held_streak_reported_[i] = false;
    }
    attach_cycle_ = now();
    window_start_ = now();
    window_bytes_ = 0;
    window_held_ = 0;
    occ_count_ = 0;
    occ_last_cycle_ = now();
    window_occ_ = 0;
    occ_integral_total_ = 0;
    occ_avg_milli_ = 0;
    signals_ = kSignalNone;
    first_detect_ = sim::kNoCycle;
    finalized_ = false;
}

void TxnMonitor::tick() {
    roll_windows();
    forward_flits();
    check_timeouts();
    check_w_gap();
    account_held();
    update_activity();
}

std::deque<TxnMonitor::Outstanding>& TxnMonitor::open_fifo(std::vector<OpenQueue>& open,
                                                           axi::IdT id) {
    for (OpenQueue& q : open) {
        if (q.id == id) { return q.fifo; }
    }
    open.push_back({id, {}});
    return open.back().fifo;
}

std::deque<TxnMonitor::Outstanding>* TxnMonitor::find_fifo(std::vector<OpenQueue>& open,
                                                           axi::IdT id) {
    for (OpenQueue& q : open) {
        if (q.id == id) { return &q.fifo; }
    }
    return nullptr;
}

void TxnMonitor::forward_flits() {
    if (up_.has_aw() && down_.can_send_aw()) {
        axi::AwFlit f = up_.recv_aw();
        accrue_occupancy(now());
        ++occ_count_;
        open_fifo(write_open_, f.id).push_back({now(), false});
        next_timeout_deadline_ = std::min(next_timeout_deadline_, now() + cfg_.timeout_cycles);
        if (w_bursts_.empty()) {
            last_w_cycle_ = now(); // the burst's W clock starts at AW accept
            w_gap_flagged_ = false;
        }
        w_bursts_.push_back({f.beats(), f.descriptor().beat_bytes()});
        ++aw_count_;
        down_.send_aw(f);
    }
    if (up_.has_w() && down_.can_send_w()) {
        axi::WFlit f = up_.recv_w();
        std::uint32_t beat_bytes = axi::kMaxDataBytes;
        if (!w_bursts_.empty()) {
            WBurst& burst = w_bursts_.front();
            beat_bytes = burst.beat_bytes;
            last_w_cycle_ = now();
            w_gap_flagged_ = false;
            if (--burst.beats_left == 0) {
                w_bursts_.pop_front();
                // A write stops counting toward occupancy at W-last:
                // occupancy measures *demand* (request/data phase), and a
                // victim queueing on late B responses behind someone else's
                // attack must not inherit the attacker's signature.
                accrue_occupancy(now());
                --occ_count_;
            }
        }
        bytes_written_ += beat_bytes;
        window_bytes_ += beat_bytes;
        down_.send_w(f);
    }
    if (up_.has_ar() && down_.can_send_ar()) {
        axi::ArFlit f = up_.recv_ar();
        accrue_occupancy(now());
        ++occ_count_;
        open_fifo(read_open_, f.id).push_back({now(), false});
        next_timeout_deadline_ = std::min(next_timeout_deadline_, now() + cfg_.timeout_cycles);
        const std::uint32_t beat_bytes = f.descriptor().beat_bytes();
        bool known = false;
        for (auto& [id, bytes] : r_bytes_per_beat_) {
            if (id == f.id) {
                bytes = beat_bytes;
                known = true;
                break;
            }
        }
        if (!known) { r_bytes_per_beat_.emplace_back(f.id, beat_bytes); }
        ++ar_count_;
        down_.send_ar(f);
    }
    if (down_.channel().b.can_pop() && up_.channel().b.can_push()) {
        axi::BFlit f = down_.channel().b.pop();
        std::deque<Outstanding>* fifo = find_fifo(write_open_, f.id);
        if (fifo != nullptr && !fifo->empty()) {
            write_sketch_.record(now() - fifo->front().issued);
            fifo->pop_front();
        } else {
            ++orphan_responses_; // B with no matching outstanding AW
        }
        up_.channel().b.push(f);
    }
    if (down_.channel().r.can_pop() && up_.channel().r.can_push()) {
        axi::RFlit f = down_.channel().r.pop();
        std::uint32_t beat_bytes = axi::kMaxDataBytes;
        for (const auto& [id, bytes] : r_bytes_per_beat_) {
            if (id == f.id) {
                beat_bytes = bytes;
                break;
            }
        }
        bytes_read_ += beat_bytes;
        window_bytes_ += beat_bytes;
        if (f.last) {
            std::deque<Outstanding>* fifo = find_fifo(read_open_, f.id);
            if (fifo != nullptr && !fifo->empty()) {
                read_sketch_.record(now() - fifo->front().issued);
                fifo->pop_front();
                accrue_occupancy(now());
                --occ_count_;
            } else {
                ++orphan_responses_; // R-last with no matching outstanding AR
            }
        }
        up_.channel().r.push(f);
    }
}

void TxnMonitor::check_timeouts() {
    if (now() < next_timeout_deadline_) { return; }
    next_timeout_deadline_ = sim::kNoCycle;
    for (auto* open : {&write_open_, &read_open_}) {
        for (OpenQueue& queue : *open) {
            for (Outstanding& txn : queue.fifo) {
                if (txn.timed_out) { continue; }
                const sim::Cycle deadline = txn.issued + cfg_.timeout_cycles;
                if (now() >= deadline) {
                    txn.timed_out = true; // flagged once; completion still records latency
                    ++timeouts_;
                } else {
                    next_timeout_deadline_ = std::min(next_timeout_deadline_, deadline);
                }
            }
        }
    }
}

void TxnMonitor::check_w_gap() {
    if (w_bursts_.empty() || w_gap_flagged_) { return; }
    if (up_.has_w()) { return; }         // data queued at the boundary: not a gap
    if (!down_.can_send_w()) { return; } // fabric would not accept a beat anyway
    const sim::Cycle deadline = last_w_cycle_ + cfg_.stall_cycles;
    if (now() >= deadline) {
        ++w_gap_events_;
        w_gap_flagged_ = true; // once per gap; the next W beat re-arms
        flag(kSignalWGap, deadline);
    }
}

void TxnMonitor::account_held() {
    const bool held[3] = {
        up_.has_aw() && !down_.can_send_aw(),
        up_.has_w() && !down_.can_send_w(),
        up_.has_ar() && !down_.can_send_ar(),
    };
    bool any = false;
    for (int i = 0; i < 3; ++i) {
        if (held[i]) {
            any = true;
            if (held_streak_start_[i] == sim::kNoCycle) {
                held_streak_start_[i] = now();
                held_streak_reported_[i] = false;
            }
            if (!held_streak_reported_[i] &&
                now() - held_streak_start_[i] + 1 >= cfg_.stall_cycles) {
                ++stall_events_; // one event per streak crossing the threshold
                held_streak_reported_[i] = true;
            }
        } else {
            held_streak_start_[i] = sim::kNoCycle;
            held_streak_reported_[i] = false;
        }
    }
    if (any) {
        ++held_cycles_;
        ++window_held_;
    }
}

void TxnMonitor::roll_windows() {
    while (now() >= window_start_ + cfg_.window_cycles) {
        close_window(window_start_ + cfg_.window_cycles);
    }
}

void TxnMonitor::accrue_occupancy(sim::Cycle to) {
    // `to` never precedes the last accrual: events accrue at now(), and
    // roll_windows() runs first in tick(), so an unclosed window boundary is
    // always past the previous tick's events.
    window_occ_ += occ_count_ * (to - occ_last_cycle_);
    occ_last_cycle_ = to;
}

void TxnMonitor::close_window(sim::Cycle end_cycle) {
    accrue_occupancy(end_cycle);
    const double window = static_cast<double>(cfg_.window_cycles);
    if (static_cast<double>(window_bytes_) >= cfg_.bw_threshold * window) {
        flag(kSignalBandwidth, end_cycle);
    }
    if (static_cast<double>(window_held_) >= cfg_.held_threshold * window) {
        flag(kSignalBackpressure, end_cycle);
    }
    if (static_cast<double>(window_occ_) >= cfg_.occ_threshold * window) {
        flag(kSignalOccupancy, end_cycle);
    }
    window_bytes_ = 0;
    window_held_ = 0;
    occ_integral_total_ += window_occ_;
    window_occ_ = 0;
    window_start_ = end_cycle;
}

void TxnMonitor::flag(std::uint8_t signal, sim::Cycle at) {
    signals_ |= signal;
    if (first_detect_ == sim::kNoCycle || at < first_detect_) { first_detect_ = at; }
}

void TxnMonitor::finalize() {
    if (finalized_) { return; }
    finalized_ = true;
    roll_windows();
    // Trailing partial window: evaluate against the full-window thresholds
    // (conservative -- a partial window must already exceed the full budget).
    close_window(now());
    for (const auto* open : {&write_open_, &read_open_}) {
        for (const OpenQueue& queue : *open) { orphan_requests_ += queue.fifo.size(); }
    }
    const sim::Cycle active = now() > attach_cycle_ ? now() - attach_cycle_ : 1;
    occ_avg_milli_ = occ_integral_total_ * 1000 / active;
}

void TxnMonitor::update_activity() {
    // Like the probe: never sleep while a flit is buffered in the hop
    // (downstream backpressure clears without a wake hook), and rely on the
    // push hooks for new work. Beyond that, the monitor has deadline-driven
    // work of its own -- pending timeout checks and an open W-production gap
    // -- so it sleeps *until* the earliest deadline instead of forever.
    // Window closes need no deadline: they are evaluated lazily and dated
    // deterministically at the window boundary.
    if (!up_.channel().requests_empty()) { return; }
    if (!down_.channel().responses_empty()) { return; }
    sim::Cycle wake = sim::kNoCycle;
    if (!w_bursts_.empty() && !w_gap_flagged_) {
        wake = std::min(wake, last_w_cycle_ + cfg_.stall_cycles);
    }
    wake = std::min(wake, next_timeout_deadline_);
    if (wake == sim::kNoCycle) {
        idle_forever();
    } else {
        idle_until(std::max(wake, now() + 1));
    }
}

} // namespace realm::mon
