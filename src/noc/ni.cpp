#include "noc/ni.hpp"

#include "sim/check.hpp"

namespace realm::noc {

void NocNi::reset() {
    w_dest_.clear();
    w_beats_left_.clear();
    w_in_flight_.clear();
    r_in_flight_.clear();
    rsp_rr_ = 0;
    std::fill(req_seq_.begin(), req_seq_.end(), 0);
    std::fill(rsp_seq_.begin(), rsp_seq_.end(), 0);
    for (Reorder& ro : req_reorder_) {
        ro.expected = 0;
        ro.stash.clear();
    }
    for (Reorder& ro : rsp_reorder_) {
        ro.expected = 0;
        ro.stash.clear();
    }
    arena_.clear(); // every stash index was just dropped
    rsp_stash_srcs_.clear();
}

void NocNi::update_rsp_stash_index(NodeId src) {
    const bool nonempty = !rsp_reorder_[src].stash.empty();
    const auto it =
        std::lower_bound(rsp_stash_srcs_.begin(), rsp_stash_srcs_.end(), src);
    const bool present = it != rsp_stash_srcs_.end() && *it == src;
    if (nonempty && !present) {
        rsp_stash_srcs_.insert(it, src);
    } else if (!nonempty && present) {
        rsp_stash_srcs_.erase(it);
    }
}

void NocNi::deliver_request(const NocPacket& pkt, axi::AxiChannel& ch) {
    // The injector held credits for this flit, so the staging space exists
    // by construction; a full lane here is a credit leak.
    if (const auto* aw = std::get_if<axi::AwFlit>(&pkt.flit)) {
        REALM_ENSURES(ch.aw.can_push(),
                      owner_ + ": credited request ejection backpressured");
        ch.aw.push(*aw);
        return;
    }
    if (const auto* w = std::get_if<axi::WFlit>(&pkt.flit)) {
        REALM_ENSURES(ch.w.can_push(),
                      owner_ + ": credited request ejection backpressured");
        ch.w.push(*w);
        return;
    }
    const auto* ar = std::get_if<axi::ArFlit>(&pkt.flit);
    REALM_EXPECTS(ar != nullptr, owner_ + ": malformed request packet");
    REALM_ENSURES(ch.ar.can_push(),
                  owner_ + ": credited request ejection backpressured");
    ch.ar.push(*ar);
}

bool NocNi::try_eject_request(const NocPacket& pkt,
                              const std::vector<axi::AxiChannel*>& egress) {
    REALM_EXPECTS(pkt.src < egress.size() && egress[pkt.src] != nullptr,
                  owner_ + ": request ejected at a node without a subordinate");
    axi::AxiChannel& ch = *egress[pkt.src];
    Reorder& ro = req_reorder_[pkt.src];
    if (pkt.seq != ro.expected) {
        // Early arrival on a faster path: hold it (its credits stay in
        // flight) until the injection-order predecessors catch up.
        const bool inserted = ro.stash_insert(arena_, pkt.seq, pkt);
        REALM_ENSURES(inserted, owner_ + ": duplicate request sequence number");
        return true;
    }
    deliver_request(pkt, ch);
    ++ro.expected;
    // Close any gap the stash already covers, in injection order
    // (request delivery never backpressures, so this drains fully).
    drain_stash(arena_, ro, [&](const NocPacket& p) {
        deliver_request(p, ch);
        return true;
    });
    return true;
}

void NocNi::release_response_credits(const NocPacket& pkt) {
    // The response credits stay in flight until the delivery into the
    // manager channel actually happens (which may lag the arrival when the
    // packet sat in the reorder stash).
    CreditPool& pool = book_->rsp(pkt.dest, pkt.src);
    if (deferred_credits_) {
        // The pool's taker (the subordinate NI at pkt.src) may tick on a
        // different shard: stage the return for the cycle-edge flush.
        if (pool.stage_empty()) { ctx_->note_edge_dirty(pool); }
        pool.stage_release(ctx_->now() + fc_.credit_return_delay, pkt.flits);
    } else if (fc_.credit_return_delay == 0) {
        pool.release(pkt.flits);
    } else {
        pool.release_at(ctx_->now() + fc_.credit_return_delay, pkt.flits);
    }
}

bool NocNi::deliver_response(const NocPacket& pkt, axi::AxiChannel& mgr) {
    if (const auto* b = std::get_if<axi::BFlit>(&pkt.flit)) {
        if (!mgr.b.can_push()) { return false; }
        if (InFlight* fl = find_in_flight_mut(w_in_flight_, b->id);
            fl != nullptr && fl->count > 0) {
            --fl->count;
        }
        mgr.b.push(*b);
    } else {
        const auto* r = std::get_if<axi::RFlit>(&pkt.flit);
        REALM_EXPECTS(r != nullptr, owner_ + ": malformed response packet");
        if (!mgr.r.can_push()) { return false; }
        if (r->last) {
            if (InFlight* fl = find_in_flight_mut(r_in_flight_, r->id);
                fl != nullptr && fl->count > 0) {
                --fl->count;
            }
        }
        mgr.r.push(*r);
    }
    release_response_credits(pkt);
    return true;
}

void NocNi::drain_response_stash(axi::AxiChannel* local_mgr) {
    if (local_mgr == nullptr || rsp_stash_srcs_.empty()) { return; }
    // Iterate a snapshot (ascending source): draining rewrites the index.
    const std::vector<NodeId> srcs = rsp_stash_srcs_;
    for (const NodeId src : srcs) {
        Reorder& ro = rsp_reorder_[src];
        drain_stash(arena_, ro, [&](const NocPacket& p) {
            return deliver_response(p, *local_mgr);
        });
        update_rsp_stash_index(src);
    }
}

bool NocNi::try_eject_response(const NocPacket& pkt, axi::AxiChannel* local_mgr) {
    REALM_EXPECTS(local_mgr != nullptr,
                  owner_ + ": response ejected at a node without a manager");
    Reorder& ro = rsp_reorder_[pkt.src];
    if (pkt.seq != ro.expected) {
        const bool inserted = ro.stash_insert(arena_, pkt.seq, pkt);
        REALM_ENSURES(inserted, owner_ + ": duplicate response sequence number");
        update_rsp_stash_index(pkt.src);
        return true;
    }
    if (!deliver_response(pkt, *local_mgr)) { return false; }
    ++ro.expected;
    drain_stash(arena_, ro, [&](const NocPacket& p) {
        return deliver_response(p, *local_mgr);
    });
    update_rsp_stash_index(pkt.src);
    return true;
}

} // namespace realm::noc
