#include "sim/context.hpp"

#include "sim/check.hpp"
#include "sim/component.hpp"
#include "sim/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <iostream>
#include <thread>

namespace realm::sim {

namespace {
/// Shard currently ticking on this thread; indexes the context's edge-dirty
/// lists. 0 outside the tick phase (main thread, construction, tests).
thread_local unsigned t_current_shard = 0;

/// One polite busy-wait iteration (PAUSE/YIELD keep the spin off the
/// sibling hyperthread's back and out of the store buffer's way).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Busy-waits up to `iters` relax iterations for `ready`; returns whether it
/// became true. Callers park on a condition variable when this fails — the
/// spin covers the common case (all workers arrive within the cost of a few
/// cache misses) without committing anyone to burning a core.
template <typename Pred>
inline bool spin_briefly(int iters, const Pred& ready) {
    for (int i = 0; i < iters; ++i) {
        if (ready()) { return true; }
        cpu_relax();
    }
    return ready();
}
} // namespace

/// Worker pool + epoch barrier for the parallel tick phase. The main thread
/// acts as worker 0; `threads` handle the rest.
///
/// The previous implementation took a mutex and two condition variables
/// through four lock/notify rounds per cycle — every worker slept and was
/// futex-woken every cycle, pure overhead at mesh scale, where a cycle's
/// worth of shard work is a few microseconds. Now one release/acquire pair
/// each way, with waiters spinning instead of sleeping:
///
///  - **go** (monotone epoch; the generalization of a sense-reversing flag):
///    the main thread pre-sets `pending`, then publishes the new epoch with
///    a release increment. A worker acquire-spins until the epoch moves,
///    which also makes every pre-cycle write (edge flushes, `now_`) visible.
///  - **pending** (arrival counter): each worker retires with a release
///    decrement; the main thread acquire-spins to zero, which makes every
///    shard's writes visible before the edge flush. No ABA: the epoch only
///    advances after `pending` hit zero, and a worker touches `pending`
///    exactly once per observed epoch.
///
/// Spinning is only the fast path. A waiter whose spin budget runs out parks
/// on a condition variable; to keep that provably free of lost wakeups, the
/// epoch publish and the last arrival's notify happen under `mu` (held for
/// nanoseconds — never across shard work — so the multicore fast path only
/// adds an uncontended lock/unlock per cycle and never syscalls). On an
/// oversubscribed host (fewer cores than workers — think a 1-core CI
/// runner) spinning would burn the very core the other side needs: there
/// `spin_budget` is zero and every handoff parks immediately, recovering
/// the blocking behaviour of the old barrier. Measured on a 1-core host,
/// the spin-only variant of this barrier was ~100x slower than parking.
/// `alignas` keeps the two hot lines — publish and arrival — from
/// false-sharing each other or the pool vector.
struct SimContext::Workers {
    unsigned total = 0;  ///< workers including the main thread
    int spin_budget = 0; ///< relax iterations before a waiter parks
    alignas(64) std::atomic<std::uint64_t> go{0};
    alignas(64) std::atomic<unsigned> pending{0};
    alignas(64) std::atomic<bool> stop{false};
    std::mutex mu;                ///< guards epoch publish + arrival notify
    std::condition_variable cv_go;   ///< workers park here awaiting an epoch
    std::condition_variable cv_done; ///< main parks here awaiting arrivals
    std::vector<std::thread> threads;
};

SimContext::SimContext() = default;

SimContext::~SimContext() { stop_workers(); }

void SimContext::register_component(Component& c) {
    c.shard_ = build_shard_;
    components_.push_back(&c);
    partition_dirty_ = true;
    next_active_hint_.store(0, std::memory_order_relaxed); // active immediately
}

void SimContext::unregister_component(Component& c) noexcept {
    const auto it = std::find(components_.begin(), components_.end(), &c);
    if (it != components_.end()) {
        components_.erase(it);
        partition_dirty_ = true;
    }
}

void SimContext::set_shards(unsigned n) {
    shards_ = std::max(1U, n);
    build_shard_ = std::min(build_shard_, shards_ - 1);
    partition_dirty_ = true;
}

void SimContext::reset() {
    now_ = 0;
    next_active_hint_.store(0, std::memory_order_relaxed);
    std::fill(shard_ticks_executed_.begin(), shard_ticks_executed_.end(), 0);
    std::fill(shard_ticks_skipped_.begin(), shard_ticks_skipped_.end(), 0);
    fast_forwarded_ = 0;
    for (Component* c : components_) {
        c->wake(0); // forget idle declarations made against the old timeline
        c->reset();
    }
}

std::uint64_t SimContext::ticks_executed() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : shard_ticks_executed_) { sum += v; }
    return sum;
}

std::uint64_t SimContext::ticks_skipped() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : shard_ticks_skipped_) { sum += v; }
    return sum;
}

std::uint64_t SimContext::shard_ticks_executed(unsigned shard) const noexcept {
    return shard < shard_ticks_executed_.size() ? shard_ticks_executed_[shard] : 0;
}

std::uint64_t SimContext::shard_ticks_skipped(unsigned shard) const noexcept {
    return shard < shard_ticks_skipped_.size() ? shard_ticks_skipped_[shard] : 0;
}

void SimContext::note_edge_dirty(EdgeFlushable& e) const {
    edge_dirty_[t_current_shard].push_back(&e);
    // Relaxed: the flag is read single-threaded at the cycle edge, after
    // the join barrier ordered this store.
    edge_any_dirty_.store(true, std::memory_order_relaxed);
}

void SimContext::ensure_partition() {
    if (!partition_dirty_) { return; }
    const unsigned n = shards_;
    shard_lists_.assign(n, {});
    for (Component* c : components_) {
        shard_lists_[std::min(c->shard_, n - 1)].push_back(c);
    }
    // Counters survive repartitioning (components register incrementally
    // while a scenario is being built). When the shard count shrinks,
    // trailing per-shard state folds into shard 0 instead of being dropped:
    // totals stay exact and pending edge flushes are never stranded.
    if (n < shard_ticks_executed_.size()) {
        for (std::size_t s = n; s < shard_ticks_executed_.size(); ++s) {
            shard_ticks_executed_[0] += shard_ticks_executed_[s];
            shard_ticks_skipped_[0] += shard_ticks_skipped_[s];
        }
    }
    shard_ticks_executed_.resize(n, 0);
    shard_ticks_skipped_.resize(n, 0);
    if (n < edge_dirty_.size()) {
        for (std::size_t s = n; s < edge_dirty_.size(); ++s) {
            edge_dirty_[0].insert(edge_dirty_[0].end(), edge_dirty_[s].begin(),
                                  edge_dirty_[s].end());
        }
    }
    edge_dirty_.resize(n);
    if (profiler_ != nullptr) {
        // Resolve each component's (type, shard) bucket once, here, so the
        // profiled tick loop is a plain indexed increment. Counts rebuild
        // per partition; accumulated samples survive (begin_partition).
        profiler_->begin_partition();
        shard_buckets_.assign(n, {});
        for (unsigned s = 0; s < n; ++s) {
            shard_buckets_[s].reserve(shard_lists_[s].size());
            for (Component* c : shard_lists_[s]) {
                shard_buckets_[s].push_back(profiler_->intern(typeid(*c), s));
            }
        }
    } else {
        shard_buckets_.clear();
    }
    partition_dirty_ = false;
}

void SimContext::tick_shard_span(unsigned shard, Cycle count) {
    if (profiler_ != nullptr) {
        tick_shard_span_profiled(shard, count);
        return;
    }
    t_current_shard = shard;
    tl_tick_ctx_ = this;
    const std::vector<Component*>& list = shard_lists_[shard];
    const Cycle end = now_ + count;
    if (scheduler_ == Scheduler::kTickAll) {
        for (Cycle at = now_; at < end; ++at) {
            tl_tick_now_ = at;
            for (Component* c : list) { c->tick(); }
        }
        shard_ticks_executed_[shard] +=
            static_cast<std::uint64_t>(list.size()) * count;
        tl_tick_ctx_ = nullptr;
        t_current_shard = 0;
        return;
    }
    std::uint64_t executed = 0;
    std::uint64_t skipped = 0;
    Cycle hint = kNoCycle;
    for (Cycle at = now_; at < end;) {
        tl_tick_now_ = at;
        hint = kNoCycle;
        std::uint64_t ran = 0;
        for (Component* c : list) {
            const Cycle wake = c->wake_cycle();
            if (wake > at) {
                ++skipped;
                hint = std::min(hint, wake);
                continue;
            }
            c->tick();
            ++ran;
            const Cycle after = c->wake_cycle();
            hint = std::min(hint, after > at ? after : at + 1);
        }
        executed += ran;
        // Intra-batch fast-forward: a walk that executed nothing proves
        // every component of this shard sleeps until `hint` — exact, since
        // within a batch only the shard itself wakes its components
        // (cross-shard wakes land at the batch-edge flush). Jumping is a
        // per-shard no-op skip, so it never perturbs the simulated state.
        at = (ran == 0 && hint > at + 1) ? std::min(hint, end) : at + 1;
    }
    shard_ticks_executed_[shard] += executed;
    shard_ticks_skipped_[shard] += skipped;
    note_wake(hint); // fold the shard-local hint (atomic min)
    tl_tick_ctx_ = nullptr;
    t_current_shard = 0;
}

// Same walk as tick_shard_span with chained clock samples: the end stamp of
// one executed tick is the start stamp of the next, so attribution costs one
// `steady_clock` call per executed tick (skip-scan time is charged to the
// following executed tick — negligible and documented). Buckets are keyed
// by shard, so concurrent shards never write the same counter.
void SimContext::tick_shard_span_profiled(unsigned shard, Cycle count) {
    t_current_shard = shard;
    tl_tick_ctx_ = this;
    const std::vector<Component*>& list = shard_lists_[shard];
    const std::vector<std::uint32_t>& buckets = shard_buckets_[shard];
    const bool activity = scheduler_ == Scheduler::kActivity;
    const Cycle end = now_ + count;
    std::uint64_t executed = 0;
    std::uint64_t skipped = 0;
    Cycle hint = kNoCycle;
    auto last = std::chrono::steady_clock::now();
    for (Cycle at = now_; at < end;) {
        tl_tick_now_ = at;
        hint = kNoCycle;
        std::uint64_t ran = 0;
        for (std::size_t i = 0; i < list.size(); ++i) {
            Component* c = list[i];
            if (activity) {
                const Cycle wake = c->wake_cycle();
                if (wake > at) {
                    ++skipped;
                    hint = std::min(hint, wake);
                    continue;
                }
            }
            c->tick();
            ++ran;
            const auto stamp = std::chrono::steady_clock::now();
            Profiler::Bucket& b = profiler_->bucket(buckets[i]);
            ++b.ticks;
            b.nanos += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(stamp - last)
                    .count());
            last = stamp;
            if (activity) {
                const Cycle after = c->wake_cycle();
                hint = std::min(hint, after > at ? after : at + 1);
            }
        }
        executed += ran;
        at = (activity && ran == 0 && hint > at + 1) ? std::min(hint, end)
                                                     : at + 1;
    }
    shard_ticks_executed_[shard] += executed;
    if (activity) {
        shard_ticks_skipped_[shard] += skipped;
        note_wake(hint);
    }
    tl_tick_ctx_ = nullptr;
    t_current_shard = 0;
}

void SimContext::flush_edges() {
    // Nothing staged — the overwhelmingly common case for the pre-tick
    // flush and, outside cross-shard traffic bursts, the post-tick one.
    if (!edge_any_dirty_.load(std::memory_order_relaxed)) { return; }
    // Single-threaded, shard-major, registration order within each shard:
    // a deterministic total order, though no staged effect depends on it
    // (each edge object has a single staging shard and flushing only makes
    // next-cycle state visible).
    for (std::vector<EdgeFlushable*>& list : edge_dirty_) {
        for (EdgeFlushable* e : list) { e->flush_edge(now_); }
        list.clear();
    }
    edge_any_dirty_.store(false, std::memory_order_relaxed);
}

void SimContext::start_workers(unsigned count) {
    if (workers_ && workers_->total == count) { return; }
    stop_workers();
    workers_ = std::make_unique<Workers>();
    workers_->total = count;
    // Spinning only pays when every participant has a core to spin on;
    // oversubscribed, a spinning waiter starves the thread it is waiting
    // for, so park immediately instead.
    workers_->spin_budget =
        count <= std::max(1U, std::thread::hardware_concurrency()) ? 4096 : 0;
    workers_->threads.reserve(count - 1);
    for (unsigned i = 1; i < count; ++i) {
        workers_->threads.emplace_back([this, i, count] { worker_main(i, count); });
    }
}

void SimContext::stop_workers() noexcept {
    if (!workers_) { return; }
    {
        const std::lock_guard<std::mutex> lk(workers_->mu);
        workers_->stop.store(true, std::memory_order_release);
    }
    workers_->cv_go.notify_all();
    for (std::thread& th : workers_->threads) { th.join(); }
    workers_.reset();
}

void SimContext::worker_main(unsigned worker_index, unsigned worker_count) {
    std::uint64_t seen = 0;
    for (;;) {
        const auto released = [&] {
            return workers_->stop.load(std::memory_order_acquire) ||
                   workers_->go.load(std::memory_order_acquire) != seen;
        };
        if (!spin_briefly(workers_->spin_budget, released)) {
            // Park. The publisher advances `go` under `mu`, so the predicate
            // cannot flip between our check and the wait — no lost wakeup.
            std::unique_lock<std::mutex> lk(workers_->mu);
            workers_->cv_go.wait(lk, released);
        }
        if (workers_->stop.load(std::memory_order_acquire)) { return; }
        // At most one epoch beyond `seen` can be in flight (the main thread
        // waits for full arrival before publishing the next), so the
        // current value is exactly the epoch we were released for.
        seen = workers_->go.load(std::memory_order_relaxed);
        // `batch_len_` (like every pre-epoch write) was published by the
        // release increment of `go` and is stable for the whole epoch.
        const Cycle batch = batch_len_;
        const unsigned n = static_cast<unsigned>(shard_lists_.size());
        for (unsigned s = worker_index; s < n; s += worker_count) {
            tick_shard_span(s, batch);
        }
        if (workers_->pending.fetch_sub(1, std::memory_order_release) == 1) {
            // Last arrival. Taking `mu` (empty critical section) orders this
            // decrement against the main thread's park decision, so either
            // main sees pending==0 before sleeping or the notify lands after
            // it slept — never between.
            { const std::lock_guard<std::mutex> lk(workers_->mu); }
            workers_->cv_done.notify_one();
        }
    }
}

void SimContext::step() { step_batch(1); }

void SimContext::step_batch(Cycle count) {
    ensure_partition();
    // Apply any work staged outside the tick phase (tests pushing into
    // edge-mode links between steps); normally a no-op.
    flush_edges();

    const unsigned nshards = static_cast<unsigned>(shard_lists_.size());
    if (scheduler_ == Scheduler::kActivity) {
        // Rebuild the fast-forward hint while walking the lists anyway.
        // Wakes fired *during* a tick (link pushes, job submissions)
        // re-lower the hint through note_wake, so components earlier in the
        // order that were already passed over this batch are still picked
        // up next batch.
        next_active_hint_.store(kNoCycle, std::memory_order_relaxed);
    }
    if (nshards <= 1) {
        tick_shard_span(0, count);
    } else {
        unsigned workers = shard_workers_override_ != 0
                               ? shard_workers_override_
                               : std::max(1U, std::thread::hardware_concurrency());
        workers = std::min(workers, nshards);
        if (workers <= 1) {
            // Not enough cores to go parallel: multiplex the shards on this
            // thread, each walking the whole batch in turn. Bit-identical
            // to the concurrent path — within a batch shards are
            // independent, so walking them batch-major instead of
            // cycle-major is unobservable.
            for (unsigned s = 0; s < nshards; ++s) { tick_shard_span(s, count); }
        } else {
            start_workers(workers);
            // Pre-set the arrival counter and the batch length, then
            // publish the epoch: the release increment makes `pending`,
            // `batch_len_` (and every pre-batch write) visible to the
            // acquire-spinning workers. Publishing under `mu` pairs with
            // the parked-worker wait; spinning workers never touch the
            // lock. One barrier round trip now covers `count` cycles — the
            // conservative-lookahead batching win.
            batch_len_ = count;
            workers_->pending.store(workers - 1, std::memory_order_relaxed);
            {
                const std::lock_guard<std::mutex> lk(workers_->mu);
                workers_->go.fetch_add(1, std::memory_order_release);
            }
            workers_->cv_go.notify_all();
            for (unsigned s = 0; s < nshards; s += workers) {
                tick_shard_span(s, count);
            }
            // Join: the acquire on zero orders every shard's writes before
            // the edge flush below.
            const auto arrived = [&] {
                return workers_->pending.load(std::memory_order_acquire) == 0;
            };
            if (!spin_briefly(workers_->spin_budget, arrived)) {
                std::unique_lock<std::mutex> lk(workers_->mu);
                workers_->cv_done.wait(lk, arrived);
            }
        }
    }
    now_ += count;
    // Exchange cross-shard state at the batch edge: staged flits/credits
    // mature against the new `now_` (each stamped with its staging cycle),
    // and consumers are woken for their first poppable cycle.
    flush_edges();
}

bool SimContext::try_fast_forward(Cycle limit) {
    if (scheduler_ != Scheduler::kActivity) { return false; }
    const Cycle hint = next_active_hint_.load(std::memory_order_relaxed);
    if (hint <= now_) { return false; } // someone may need this cycle
    const Cycle target = std::min(hint, limit);
    if (target <= now_) { return false; }
    fast_forwarded_ += target - now_;
    now_ = target;
    return true;
}

void SimContext::run(Cycle cycles) {
    const Cycle end = now_ + cycles;
    while (now_ < end) {
        if (try_fast_forward(end)) { continue; }
        step_batch(std::min<Cycle>(lookahead_, end - now_));
    }
}

bool SimContext::run_until(const std::function<bool()>& done, Cycle max_cycles) {
    REALM_EXPECTS(done != nullptr, "run_until requires a predicate");
    // The predicate is evaluated at batch boundaries, so with lookahead k
    // the loop may overshoot the trigger by up to k-1 cycles — benign for
    // component-state predicates (the state it reads is exact) and
    // deterministic for a fixed configuration, hence identical at every
    // shard count.
    const Cycle end = now_ + max_cycles;
    while (now_ < end) {
        if (done()) { return true; }
        if (try_fast_forward(end)) { continue; }
        step_batch(std::min<Cycle>(lookahead_, end - now_));
    }
    return done();
}

namespace {
const char* level_name(LogLevel level) {
    switch (level) {
    case LogLevel::kNone: return "none";
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
    }
    return "?";
}
} // namespace

void SimContext::log(LogLevel level, const std::string& who, const std::string& message) const {
    if (!log_enabled(level)) { return; }
    // now() (not now_): components log from inside a batch walk, where the
    // thread-local tick clock holds the cycle actually being evaluated.
    std::cerr << '[' << now() << "] " << level_name(level) << ' ' << who << ": " << message
              << '\n';
}

} // namespace realm::sim
