#include "sim/context.hpp"

#include "sim/check.hpp"
#include "sim/component.hpp"

#include <algorithm>
#include <condition_variable>
#include <iostream>
#include <mutex>
#include <thread>

namespace realm::sim {

namespace {
/// Shard currently ticking on this thread; indexes the context's edge-dirty
/// lists. 0 outside the tick phase (main thread, construction, tests).
thread_local unsigned t_current_shard = 0;
} // namespace

/// Worker pool + two-phase barrier for the parallel tick phase. The main
/// thread acts as worker 0; `count` spawned threads handle the rest.
/// Condition variables rather than pure spinning: correctness (and CI
/// determinism) must not depend on the host actually having a core per
/// worker.
struct SimContext::Workers {
    std::mutex m;
    std::condition_variable cv_go;
    std::condition_variable cv_done;
    std::uint64_t epoch = 0;
    unsigned pending = 0;
    unsigned total = 0; ///< workers including the main thread
    bool stop = false;
    std::vector<std::thread> threads;
};

SimContext::SimContext() = default;

SimContext::~SimContext() { stop_workers(); }

void SimContext::register_component(Component& c) {
    c.shard_ = build_shard_;
    components_.push_back(&c);
    partition_dirty_ = true;
    next_active_hint_.store(0, std::memory_order_relaxed); // active immediately
}

void SimContext::unregister_component(Component& c) noexcept {
    const auto it = std::find(components_.begin(), components_.end(), &c);
    if (it != components_.end()) {
        components_.erase(it);
        partition_dirty_ = true;
    }
}

void SimContext::set_shards(unsigned n) {
    shards_ = std::max(1U, n);
    build_shard_ = std::min(build_shard_, shards_ - 1);
    partition_dirty_ = true;
}

void SimContext::reset() {
    now_ = 0;
    next_active_hint_.store(0, std::memory_order_relaxed);
    std::fill(shard_ticks_executed_.begin(), shard_ticks_executed_.end(), 0);
    std::fill(shard_ticks_skipped_.begin(), shard_ticks_skipped_.end(), 0);
    fast_forwarded_ = 0;
    for (Component* c : components_) {
        c->wake(0); // forget idle declarations made against the old timeline
        c->reset();
    }
}

std::uint64_t SimContext::ticks_executed() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : shard_ticks_executed_) { sum += v; }
    return sum;
}

std::uint64_t SimContext::ticks_skipped() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : shard_ticks_skipped_) { sum += v; }
    return sum;
}

std::uint64_t SimContext::shard_ticks_executed(unsigned shard) const noexcept {
    return shard < shard_ticks_executed_.size() ? shard_ticks_executed_[shard] : 0;
}

std::uint64_t SimContext::shard_ticks_skipped(unsigned shard) const noexcept {
    return shard < shard_ticks_skipped_.size() ? shard_ticks_skipped_[shard] : 0;
}

void SimContext::note_edge_dirty(EdgeFlushable& e) const {
    edge_dirty_[t_current_shard].push_back(&e);
}

void SimContext::ensure_partition() {
    if (!partition_dirty_) { return; }
    const unsigned n = shards_;
    shard_lists_.assign(n, {});
    for (Component* c : components_) {
        shard_lists_[std::min(c->shard_, n - 1)].push_back(c);
    }
    // Counters survive repartitioning (components register incrementally
    // while a scenario is being built). When the shard count shrinks,
    // trailing per-shard state folds into shard 0 instead of being dropped:
    // totals stay exact and pending edge flushes are never stranded.
    if (n < shard_ticks_executed_.size()) {
        for (std::size_t s = n; s < shard_ticks_executed_.size(); ++s) {
            shard_ticks_executed_[0] += shard_ticks_executed_[s];
            shard_ticks_skipped_[0] += shard_ticks_skipped_[s];
        }
    }
    shard_ticks_executed_.resize(n, 0);
    shard_ticks_skipped_.resize(n, 0);
    if (n < edge_dirty_.size()) {
        for (std::size_t s = n; s < edge_dirty_.size(); ++s) {
            edge_dirty_[0].insert(edge_dirty_[0].end(), edge_dirty_[s].begin(),
                                  edge_dirty_[s].end());
        }
    }
    edge_dirty_.resize(n);
    partition_dirty_ = false;
}

void SimContext::tick_shard(unsigned shard) {
    t_current_shard = shard;
    const std::vector<Component*>& list = shard_lists_[shard];
    if (scheduler_ == Scheduler::kTickAll) {
        for (Component* c : list) { c->tick(); }
        shard_ticks_executed_[shard] += list.size();
        t_current_shard = 0;
        return;
    }
    std::uint64_t executed = 0;
    std::uint64_t skipped = 0;
    Cycle hint = kNoCycle;
    for (Component* c : list) {
        const Cycle wake = c->wake_cycle();
        if (wake > now_) {
            ++skipped;
            hint = std::min(hint, wake);
            continue;
        }
        c->tick();
        ++executed;
        const Cycle after = c->wake_cycle();
        hint = std::min(hint, after > now_ ? after : now_ + 1);
    }
    shard_ticks_executed_[shard] += executed;
    shard_ticks_skipped_[shard] += skipped;
    note_wake(hint); // fold the shard-local hint (atomic min)
    t_current_shard = 0;
}

void SimContext::flush_edges() {
    // Single-threaded, shard-major, registration order within each shard:
    // a deterministic total order, though no staged effect depends on it
    // (each edge object has a single staging shard and flushing only makes
    // next-cycle state visible).
    for (std::vector<EdgeFlushable*>& list : edge_dirty_) {
        for (EdgeFlushable* e : list) { e->flush_edge(now_); }
        list.clear();
    }
}

void SimContext::start_workers(unsigned count) {
    if (workers_ && workers_->total == count) { return; }
    stop_workers();
    workers_ = std::make_unique<Workers>();
    workers_->total = count;
    workers_->threads.reserve(count - 1);
    for (unsigned i = 1; i < count; ++i) {
        workers_->threads.emplace_back([this, i, count] { worker_main(i, count); });
    }
}

void SimContext::stop_workers() noexcept {
    if (!workers_) { return; }
    {
        const std::lock_guard<std::mutex> lk{workers_->m};
        workers_->stop = true;
    }
    workers_->cv_go.notify_all();
    for (std::thread& th : workers_->threads) { th.join(); }
    workers_.reset();
}

void SimContext::worker_main(unsigned worker_index, unsigned worker_count) {
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk{workers_->m};
            workers_->cv_go.wait(
                lk, [&] { return workers_->stop || workers_->epoch != seen; });
            if (workers_->stop) { return; }
            seen = workers_->epoch;
        }
        const unsigned n = static_cast<unsigned>(shard_lists_.size());
        for (unsigned s = worker_index; s < n; s += worker_count) { tick_shard(s); }
        {
            const std::lock_guard<std::mutex> lk{workers_->m};
            --workers_->pending;
        }
        workers_->cv_done.notify_one();
    }
}

void SimContext::step() {
    ensure_partition();
    // Apply any work staged outside the tick phase (tests pushing into
    // edge-mode links between steps); normally a no-op.
    flush_edges();

    const unsigned nshards = static_cast<unsigned>(shard_lists_.size());
    if (scheduler_ == Scheduler::kActivity) {
        // Rebuild the fast-forward hint while walking the lists anyway.
        // Wakes fired *during* a tick (link pushes, job submissions)
        // re-lower the hint through note_wake, so components earlier in the
        // order that were already passed over this cycle are still picked
        // up next cycle.
        next_active_hint_.store(kNoCycle, std::memory_order_relaxed);
    }
    if (nshards <= 1) {
        tick_shard(0);
    } else {
        unsigned workers = shard_workers_override_ != 0
                               ? shard_workers_override_
                               : std::max(1U, std::thread::hardware_concurrency());
        workers = std::min(workers, nshards);
        if (workers <= 1) {
            // Not enough cores to go parallel: multiplex the shards on this
            // thread. Bit-identical to the concurrent path — cross-shard
            // effects are edge-registered either way.
            for (unsigned s = 0; s < nshards; ++s) { tick_shard(s); }
        } else {
            start_workers(workers);
            {
                const std::lock_guard<std::mutex> lk{workers_->m};
                ++workers_->epoch;
                workers_->pending = workers - 1;
            }
            workers_->cv_go.notify_all();
            for (unsigned s = 0; s < nshards; s += workers) { tick_shard(s); }
            std::unique_lock<std::mutex> lk{workers_->m};
            workers_->cv_done.wait(lk, [&] { return workers_->pending == 0; });
        }
    }
    ++now_;
    // Exchange cross-shard state at the cycle edge: staged flits/credits
    // become poppable at the new `now_`, and consumers are woken for it.
    flush_edges();
}

bool SimContext::try_fast_forward(Cycle limit) {
    if (scheduler_ != Scheduler::kActivity) { return false; }
    const Cycle hint = next_active_hint_.load(std::memory_order_relaxed);
    if (hint <= now_) { return false; } // someone may need this cycle
    const Cycle target = std::min(hint, limit);
    if (target <= now_) { return false; }
    fast_forwarded_ += target - now_;
    now_ = target;
    return true;
}

void SimContext::run(Cycle cycles) {
    const Cycle end = now_ + cycles;
    while (now_ < end) {
        if (try_fast_forward(end)) { continue; }
        step();
    }
}

bool SimContext::run_until(const std::function<bool()>& done, Cycle max_cycles) {
    REALM_EXPECTS(done != nullptr, "run_until requires a predicate");
    const Cycle end = now_ + max_cycles;
    while (now_ < end) {
        if (done()) { return true; }
        if (try_fast_forward(end)) { continue; }
        step();
    }
    return done();
}

namespace {
const char* level_name(LogLevel level) {
    switch (level) {
    case LogLevel::kNone: return "none";
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
    }
    return "?";
}
} // namespace

void SimContext::log(LogLevel level, const std::string& who, const std::string& message) const {
    if (!log_enabled(level)) { return; }
    std::cerr << '[' << now_ << "] " << level_name(level) << ' ' << who << ": " << message
              << '\n';
}

} // namespace realm::sim
