/// \file
/// \brief Minimal 32-bit register bus (modeled after PULP's regbus).
///
/// Configuration accesses are rare and not performance-critical; targets
/// are synchronous callables, and the `AxiToReg` adapter provides the AXI
/// handshake timing in front of them.
#pragma once

#include "axi/types.hpp"

#include <cstdint>

namespace realm::cfg {

/// One register access.
struct RegReq {
    axi::Addr addr = 0;     ///< byte address, 4-byte aligned
    bool write = false;
    std::uint32_t wdata = 0;
    axi::IdT tid = 0;       ///< transaction ID of the issuing manager
};

/// Access result.
struct RegRsp {
    std::uint32_t rdata = 0;
    bool error = false;

    [[nodiscard]] static RegRsp ok(std::uint32_t data = 0) noexcept {
        return RegRsp{data, false};
    }
    [[nodiscard]] static RegRsp err() noexcept { return RegRsp{0, true}; }
};

/// Anything that terminates register accesses.
class RegTarget {
public:
    virtual ~RegTarget() = default;
    virtual RegRsp reg_access(const RegReq& req) = 0;
};

} // namespace realm::cfg
