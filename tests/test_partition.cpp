/// Partition-invariance and partitioner unit tests.
///
/// The sharded mesh kernel promises that the tile -> shard map is a pure
/// host-side load-balancing decision: *any* map — column stripes, the greedy
/// balanced assignment, or an adversarially scrambled one — produces
/// bit-identical simulated results, at every link latency. The fuzz test
/// below drives a 4x4 mesh DoS cell (monitors on, so the telemetry plane is
/// compared too) under randomized and pathological maps and compares every
/// semantic result field against the single-shard reference.
#include "scenario/partition.hpp"
#include "scenario/registry.hpp"
#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace realm {
namespace {

// --- Partitioner unit tests --------------------------------------------------

TEST(BalancedPartition, IsDeterministicAndCoversAllShards) {
    const std::vector<double> weights{3.0, 1.0, 2.0, 1.0, 3.0, 2.0, 1.0, 1.0};
    const std::vector<unsigned> a = scenario::balanced_partition(weights, 4);
    const std::vector<unsigned> b = scenario::balanced_partition(weights, 4);
    EXPECT_EQ(a, b) << "same weights must always yield the same partition";
    ASSERT_EQ(a.size(), weights.size());
    // 14 total weight over 4 shards: every shard must receive work.
    std::vector<double> load(4, 0.0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_LT(a[i], 4U);
        load[a[i]] += weights[i];
    }
    for (unsigned s = 0; s < 4; ++s) { EXPECT_GT(load[s], 0.0) << "shard " << s; }
    // Greedy LPT on this instance balances within the largest tile weight.
    const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
    EXPECT_LE(*hi - *lo, 3.0);
}

TEST(BalancedPartition, SingleShardMapsEverythingToZero) {
    const std::vector<unsigned> map =
        scenario::balanced_partition({1.0, 2.0, 3.0}, 1);
    EXPECT_EQ(map, (std::vector<unsigned>{0, 0, 0}));
}

TEST(BalancedPartition, TileWeightsFollowRoles) {
    const std::vector<scenario::RingNodeSpec> specs =
        scenario::make_mesh_roles(4, 4, 2, 2);
    const std::vector<double> w =
        scenario::tile_weights(specs, scenario::TileWeightModel{});
    ASSERT_EQ(w.size(), 16U);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        switch (specs[i].role) {
        case scenario::RingRole::kPassthrough:
            EXPECT_DOUBLE_EQ(w[i], 1.0);
            break;
        case scenario::RingRole::kMemory:
            EXPECT_GT(w[i], 1.0) << "memory tiles carry the slave + mux";
            break;
        case scenario::RingRole::kVictim:
        case scenario::RingRole::kInterference:
            EXPECT_GT(w[i], 1.0) << "manager tiles carry an engine";
            break;
        }
    }
}

TEST(BalancedPartition, WeightModelDerivesFromProfileRows) {
    // Routers at 100 ns/tick, memory slaves at 400 ns/tick: the derived
    // subordinate weight must be the measured 4x ratio, while categories
    // absent from the profile keep their static defaults.
    std::vector<scenario::ProfileRow> rows;
    rows.push_back({"realm::noc::MeshRouter", 0, 16, 1000, 100'000});
    rows.push_back({"realm::mem::AxiMemSlave", 1, 2, 500, 200'000});
    const scenario::TileWeightModel m = scenario::weight_model_from_profile(rows);
    EXPECT_DOUBLE_EQ(m.router, 1.0);
    EXPECT_DOUBLE_EQ(m.subordinate, 4.0);
    EXPECT_DOUBLE_EQ(m.manager, scenario::TileWeightModel{}.manager);
    EXPECT_DOUBLE_EQ(m.realm, scenario::TileWeightModel{}.realm);
}

TEST(BalancedPartition, EmptyOrRouterlessProfileKeepsStaticModel) {
    const scenario::TileWeightModel empty =
        scenario::weight_model_from_profile({});
    EXPECT_DOUBLE_EQ(empty.subordinate, scenario::TileWeightModel{}.subordinate);
    std::vector<scenario::ProfileRow> rows;
    rows.push_back({"realm::mem::AxiMemSlave", 0, 2, 500, 200'000});
    const scenario::TileWeightModel routerless =
        scenario::weight_model_from_profile(rows);
    EXPECT_DOUBLE_EQ(routerless.subordinate,
                     scenario::TileWeightModel{}.subordinate);
}

TEST(BalancedPartition, ExplicitTileShardsOverridePolicy) {
    scenario::ScenarioConfig cfg;
    cfg.partition = scenario::PartitionPolicy::kBalanced;
    cfg.tile_shards = {0, 1, 0, 1};
    const std::vector<scenario::RingNodeSpec> specs =
        scenario::make_mesh_roles(2, 2, 0, 2);
    EXPECT_EQ(scenario::mesh_tile_shards(cfg, specs, 2), cfg.tile_shards);
    cfg.tile_shards.clear();
    cfg.partition = scenario::PartitionPolicy::kStripe;
    EXPECT_TRUE(scenario::mesh_tile_shards(cfg, specs, 2).empty())
        << "stripe policy must fall through to the fabric default";
}

// --- Randomized partition invariance -----------------------------------------

/// A `mesh-dos-smoke` attack cell reshaped to a 4x4 mesh with the
/// monitoring plane enabled — the same cell the genome fuzz drives, chosen
/// because it exercises contention, regulation, and telemetry at once.
scenario::ScenarioConfig mesh4x4_cell(std::uint32_t link_latency) {
    scenario::Sweep sweep = scenario::make_sweep("mesh-dos-smoke");
    for (scenario::SweepPoint& p : sweep.points) {
        if (p.config.interference.empty()) { continue; }
        scenario::ScenarioConfig cfg = p.config;
        cfg.topology.mesh.rows = 4;
        cfg.topology.mesh.cols = 4;
        cfg.topology.mesh.nodes = scenario::make_mesh_roles(4, 4, 2, 2);
        cfg.topology.mesh.link_latency = link_latency;
        cfg.monitors.enabled = true;
        cfg.victim.stream.repeat = 1;
        return cfg;
    }
    ADD_FAILURE() << "mesh-dos-smoke has no attack cells";
    return scenario::ScenarioConfig{};
}

void expect_partition_invariant(const scenario::ScenarioResult& ref,
                                const scenario::ScenarioResult& got) {
    EXPECT_EQ(got.run_cycles, ref.run_cycles);
    EXPECT_EQ(got.ops, ref.ops);
    EXPECT_EQ(got.load_lat_mean, ref.load_lat_mean);
    EXPECT_EQ(got.load_lat_p99, ref.load_lat_p99);
    EXPECT_EQ(got.load_lat_max, ref.load_lat_max);
    EXPECT_EQ(got.store_lat_max, ref.store_lat_max);
    EXPECT_EQ(got.dma_bytes, ref.dma_bytes);
    EXPECT_EQ(got.fabric_hops, ref.fabric_hops);
    EXPECT_EQ(got.xbar_w_stalls, ref.xbar_w_stalls);
    EXPECT_EQ(got.simulated_cycles, ref.simulated_cycles);
    EXPECT_EQ(got.mon_lat_p50, ref.mon_lat_p50);
    EXPECT_EQ(got.mon_lat_p99, ref.mon_lat_p99);
    EXPECT_EQ(got.mgr_p99, ref.mgr_p99);
    EXPECT_EQ(got.mgr_flagged, ref.mgr_flagged);
    EXPECT_EQ(got.mgr_detect, ref.mgr_detect);
}

class PartitionInvariance : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PartitionInvariance, RandomTileMapsAreBitIdentical) {
    const std::uint32_t latency = GetParam();
    const scenario::ScenarioResult ref =
        scenario::run_scenario(mesh4x4_cell(latency));
    ASSERT_FALSE(ref.timed_out);
    ASSERT_GT(ref.fabric_hops, 0U);

    const auto run_with_map = [&](std::vector<unsigned> map, unsigned shards,
                                  const char* what) {
        scenario::ScenarioConfig cfg = mesh4x4_cell(latency);
        cfg.shards = shards;
        cfg.shard_workers = 2; // concurrent barrier even on small hosts
        cfg.tile_shards = std::move(map);
        SCOPED_TRACE(testing::Message() << what << " link_latency=" << latency
                                        << " shards=" << shards);
        expect_partition_invariant(ref, scenario::run_scenario(cfg));
    };

    // Pathological maps first: everything on one shard (three shards idle),
    // and a singleton shard owning exactly one tile.
    run_with_map(std::vector<unsigned>(16, 0), 4, "all-on-shard-0");
    {
        std::vector<unsigned> singleton(16, 0);
        singleton[5] = 3;
        run_with_map(std::move(singleton), 4, "singleton-shard");
    }
    // Randomized maps, seeded deterministically per link latency.
    sim::Rng rng{sim::derive_seed("partition-fuzz", latency)};
    for (int trial = 0; trial < 3; ++trial) {
        std::vector<unsigned> map(16);
        for (unsigned& s : map) {
            s = static_cast<unsigned>(rng.uniform(0, 3));
        }
        run_with_map(std::move(map), 4, "random-map");
    }
}

INSTANTIATE_TEST_SUITE_P(LinkLatencies, PartitionInvariance,
                         ::testing::Values(1U, 2U, 4U));

} // namespace
} // namespace realm
