/// \file
/// \brief Reproduces **Table II**: area contributions of AXI-REALM's
///        sub-blocks as a function of its parameterization (GE @ 1 GHz).
///
/// Prints the published linear-model coefficients verbatim, then evaluates
/// the model over the same parameter ranges the paper swept (address/data
/// width 32..64 bit, 2..16 pending transactions, 256..8192 bit of write-
/// buffer storage) so integrators can read off absolute areas directly.
#include "area/area_model.hpp"

#include <cstdio>

int main() {
    using namespace realm::area;

    std::puts("== Table II: per-block area laws (GE = const + sum coeff * param) ==\n");
    std::printf("%-26s %10s %10s %10s %12s %10s %-14s\n", "block", "GE/addr-b", "GE/data-b",
                "GE/pend", "GE/64b-word", "const GE", "multiplicity");
    for (const BlockLaw& law : kTable2) {
        const char* mult = law.mult == BlockLaw::Multiplicity::kPerSystem ? "per-system"
                           : law.mult == BlockLaw::Multiplicity::kPerUnit ? "per-unit"
                                                                          : "per-unit&reg";
        std::printf("%-26s %10.1f %10.1f %10.1f %12.1f %10.1f %-14s\n", law.name,
                    law.per_addr_bit, law.per_data_bit, law.per_pending,
                    law.per_storage_word64, law.constant, mult);
    }

    std::puts("\n-- model evaluation: one REALM unit over the swept ranges --");
    std::printf("%-6s %-6s %-8s %-8s %12s\n", "addr", "data", "pending", "wbuf", "unit[kGE]");
    for (const std::uint32_t addr : {32U, 48U, 64U}) {
        for (const std::uint32_t pending : {2U, 8U, 16U}) {
            for (const std::uint32_t depth : {4U, 16U, 64U}) {
                RealmParams p;
                p.addr_width_bits = addr;
                p.data_width_bits = addr; // swept together in the paper
                p.num_pending = pending;
                p.buffer_depth = depth;
                std::printf("%-6u %-6u %-8u %-8u %12.2f\n", addr, addr, pending, depth,
                            realm_unit_ge(p) / 1000.0);
            }
        }
    }

    std::puts("\n-- per-block breakdown at the Cheshire configuration --");
    RealmParams p;
    p.num_pending = 8;
    p.buffer_depth = 16;
    p.num_regions = 2;
    p.num_units = 3;
    std::printf("%-26s %12s %10s %12s\n", "block", "GE/instance", "instances", "total GE");
    double total = 0;
    for (const BlockArea& b : system_breakdown(p)) {
        std::printf("%-26s %12.1f %10u %12.1f\n", b.name.c_str(), b.instance_ge,
                    b.instances, b.total_ge);
        total += b.total_ge;
    }
    std::printf("%-26s %12s %10s %12.1f  (= %.1f kGE)\n", "system total", "", "", total,
                total / 1000.0);

    std::puts("\n-- optional-feature savings (paper: the splitter can be dropped for");
    std::puts("   single-word managers) --");
    RealmParams minimal = p;
    minimal.splitter_present = false;
    std::printf("unit with splitter:    %8.2f kGE\n", realm_unit_ge(p) / 1000.0);
    std::printf("unit without splitter: %8.2f kGE (-%.1f %%)\n",
                realm_unit_ge(minimal) / 1000.0,
                100.0 * (1.0 - realm_unit_ge(minimal) / realm_unit_ge(p)));
    return 0;
}
