/// \file
/// \brief Fundamental type aliases for the cycle-driven simulation kernel.
#pragma once

#include <cstdint>

namespace realm::sim {

/// Simulation time, measured in clock cycles of the single system clock.
using Cycle = std::uint64_t;

/// Sentinel for "no cycle" / "not yet happened".
inline constexpr Cycle kNoCycle = ~std::uint64_t{0};

} // namespace realm::sim
