/// \file
/// \brief Channel payloads ("flits") for the five AXI4 channels.
#pragma once

#include "axi/burst.hpp"
#include "axi/types.hpp"

#include "sim/types.hpp"

#include <cstdint>

namespace realm::axi {

/// Write-address channel beat.
struct AwFlit {
    IdT id = 0;
    Addr addr = 0;
    std::uint8_t len = 0;   ///< beats - 1
    std::uint8_t size = 3;  ///< log2 bytes/beat (3 = 64-bit bus default)
    Burst burst = Burst::kIncr;
    bool lock = false;      ///< exclusive access
    std::uint8_t cache = 0x2; ///< modifiable by default
    std::uint8_t prot = 0;
    std::uint8_t qos = 0;
    std::uint32_t user = 0;
    /// Model-side metadata (not wires): cycle the originating manager issued
    /// the transaction; carried along for end-to-end latency bookkeeping.
    sim::Cycle issued_at = sim::kNoCycle;

    [[nodiscard]] BurstDescriptor descriptor() const noexcept {
        return BurstDescriptor{addr, len, size, burst};
    }
    [[nodiscard]] std::uint32_t beats() const noexcept { return std::uint32_t{len} + 1; }
};

/// Write-data channel beat. AXI4 W beats carry no ID; they arrive in AW
/// order per manager.
struct WFlit {
    Payload data{};
    Strb strb = ~Strb{0};
    bool last = false;
    std::uint32_t user = 0;
};

/// Write-response channel beat.
struct BFlit {
    IdT id = 0;
    Resp resp = Resp::kOkay;
    std::uint32_t user = 0;
};

/// Read-address channel beat.
struct ArFlit {
    IdT id = 0;
    Addr addr = 0;
    std::uint8_t len = 0;
    std::uint8_t size = 3;
    Burst burst = Burst::kIncr;
    bool lock = false;
    std::uint8_t cache = 0x2;
    std::uint8_t prot = 0;
    std::uint8_t qos = 0;
    std::uint32_t user = 0;
    sim::Cycle issued_at = sim::kNoCycle;

    [[nodiscard]] BurstDescriptor descriptor() const noexcept {
        return BurstDescriptor{addr, len, size, burst};
    }
    [[nodiscard]] std::uint32_t beats() const noexcept { return std::uint32_t{len} + 1; }
};

/// Read-data channel beat.
struct RFlit {
    IdT id = 0;
    Payload data{};
    Resp resp = Resp::kOkay;
    bool last = false;
    std::uint32_t user = 0;
};

} // namespace realm::axi
