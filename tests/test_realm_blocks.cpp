/// Unit tests for the REALM sub-blocks: granular burst splitter, write
/// buffer, M&R unit, isolation block.
#include "realm/isolation.hpp"
#include "realm/mr_unit.hpp"
#include "realm/splitter.hpp"
#include "realm/write_buffer.hpp"

#include "axi/builder.hpp"

#include <gtest/gtest.h>

namespace realm::rt {
namespace {

// --- GranularBurstSplitter ---------------------------------------------------

TEST(Splitter, PassesShortBurstsIntact) {
    GranularBurstSplitter sp{16, 4};
    sp.accept_read(axi::make_ar(1, 0x1000, 8, 3));
    ASSERT_TRUE(sp.has_child_ar());
    const axi::ArFlit child = sp.pop_child_ar();
    EXPECT_EQ(child.len, 7);
    EXPECT_FALSE(sp.has_child_ar());
    EXPECT_EQ(sp.bursts_passed_intact(), 1U);
}

TEST(Splitter, FragmentsLongRead) {
    GranularBurstSplitter sp{16, 4};
    sp.accept_read(axi::make_ar(1, 0x1000, 64, 3));
    int children = 0;
    axi::Addr expected_addr = 0x1000;
    while (sp.has_child_ar()) {
        const axi::ArFlit child = sp.pop_child_ar();
        EXPECT_EQ(child.addr, expected_addr);
        EXPECT_EQ(child.len, 15);
        expected_addr += 16 * 8;
        ++children;
    }
    EXPECT_EQ(children, 4);
    EXPECT_EQ(sp.fragments_created(), 4U);
}

TEST(Splitter, GatesChildRLastUntilParentEnd) {
    GranularBurstSplitter sp{4, 4};
    sp.accept_read(axi::make_ar(9, 0x0, 8, 3)); // 2 children of 4 beats
    while (sp.has_child_ar()) { (void)sp.pop_child_ar(); }
    int parent_lasts = 0;
    for (int child = 0; child < 2; ++child) {
        for (int beat = 0; beat < 4; ++beat) {
            axi::RFlit r;
            r.id = 9;
            r.last = beat == 3; // child-level last
            const auto out = sp.process_r(r);
            parent_lasts += out.flit.last ? 1 : 0;
            EXPECT_EQ(out.parent_completed, child == 1 && beat == 3);
        }
    }
    EXPECT_EQ(parent_lasts, 1) << "exactly one parent RLAST";
    EXPECT_EQ(sp.reads_in_flight(), 0U);
}

TEST(Splitter, CoalescesWriteResponses) {
    GranularBurstSplitter sp{8, 4};
    const auto children = sp.accept_write(axi::make_aw(3, 0x0, 24, 3)); // 3 children
    ASSERT_EQ(children.size(), 3U);
    axi::BFlit child_b;
    child_b.id = 3;
    child_b.resp = axi::Resp::kOkay;
    EXPECT_FALSE(sp.process_b(child_b).has_value());
    child_b.resp = axi::Resp::kSlvErr;
    EXPECT_FALSE(sp.process_b(child_b).has_value());
    child_b.resp = axi::Resp::kOkay;
    const auto parent = sp.process_b(child_b);
    ASSERT_TRUE(parent.has_value());
    EXPECT_EQ(parent->id, 3U);
    EXPECT_EQ(parent->resp, axi::Resp::kSlvErr) << "worst child response wins";
    EXPECT_EQ(sp.writes_in_flight(), 0U);
}

TEST(Splitter, InterleavedIdsTrackedIndependently) {
    GranularBurstSplitter sp{2, 8};
    sp.accept_read(axi::make_ar(1, 0x0, 4, 3));   // 2 children
    sp.accept_read(axi::make_ar(2, 0x100, 2, 3)); // 1 child
    while (sp.has_child_ar()) { (void)sp.pop_child_ar(); }
    // Interleave R beats of the two parents (legal across IDs).
    axi::RFlit r1;
    r1.id = 1;
    axi::RFlit r2;
    r2.id = 2;
    r1.last = false;
    (void)sp.process_r(r1);
    r2.last = false;
    (void)sp.process_r(r2);
    r2.last = true;
    const auto done2 = sp.process_r(r2);
    EXPECT_TRUE(done2.parent_completed);
    r1.last = true;
    (void)sp.process_r(r1);
    r1.last = false;
    (void)sp.process_r(r1);
    r1.last = true;
    const auto done1 = sp.process_r(r1);
    EXPECT_TRUE(done1.parent_completed);
}

TEST(Splitter, NonModifiableShortBurstNotSplit) {
    GranularBurstSplitter sp{1, 4};
    axi::ArFlit ar = axi::make_ar(1, 0x0, 16, 3);
    ar.cache = 0x0; // non-modifiable
    sp.accept_read(ar);
    const axi::ArFlit child = sp.pop_child_ar();
    EXPECT_EQ(child.len, 15) << "non-modifiable <= 16 beats must pass intact";
    EXPECT_FALSE(sp.has_child_ar());
}

TEST(Splitter, ReconfigRequiresDrained) {
    GranularBurstSplitter sp{16, 4};
    sp.accept_read(axi::make_ar(1, 0x0, 32, 3));
    EXPECT_THROW(sp.set_granularity(4), sim::ContractViolation);
}

TEST(Splitter, CapacityLimitsParents) {
    GranularBurstSplitter sp{16, 2};
    sp.accept_read(axi::make_ar(1, 0x0, 4, 3));
    sp.accept_read(axi::make_ar(1, 0x100, 4, 3));
    EXPECT_FALSE(sp.can_accept_read());
    EXPECT_THROW(sp.accept_read(axi::make_ar(1, 0x200, 4, 3)), sim::ContractViolation);
}

/// Parameterized sweep: all (parent length, granularity) combinations keep
/// the exactly-one-parent-RLAST invariant.
class SplitterSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplitterSweep, ParentCompletionInvariant) {
    const auto [beats, gran] = GetParam();
    GranularBurstSplitter sp{static_cast<std::uint32_t>(gran), 4};
    sp.accept_read(axi::make_ar(5, 0x2000, static_cast<std::uint32_t>(beats), 3));
    std::vector<std::uint32_t> child_lens;
    while (sp.has_child_ar()) { child_lens.push_back(sp.pop_child_ar().beats()); }
    std::uint32_t total = 0;
    for (const auto l : child_lens) { total += l; }
    EXPECT_EQ(total, static_cast<std::uint32_t>(beats));

    int parent_lasts = 0;
    for (const std::uint32_t len : child_lens) {
        for (std::uint32_t b = 0; b < len; ++b) {
            axi::RFlit r;
            r.id = 5;
            r.last = b + 1 == len;
            parent_lasts += sp.process_r(r).flit.last ? 1 : 0;
        }
    }
    EXPECT_EQ(parent_lasts, 1);
    EXPECT_EQ(sp.reads_in_flight(), 0U);
}

INSTANTIATE_TEST_SUITE_P(BeatsGranularity, SplitterSweep,
                         ::testing::Combine(::testing::Values(1, 2, 5, 16, 100, 256),
                                            ::testing::Values(1, 3, 8, 64, 256)));

// --- WriteBuffer --------------------------------------------------------------

axi::WFlit beat(bool last, std::uint8_t tag = 0) {
    axi::WFlit w;
    w.last = last;
    w.data.bytes[0] = tag;
    return w;
}

TEST(WriteBuffer, HoldsAwUntilDataComplete) {
    WriteBuffer wb{16};
    const axi::AwFlit aw = axi::make_aw(1, 0x0, 4, 3);
    const std::vector<axi::BurstDescriptor> children{aw.descriptor()};
    wb.queue_children(aw, children);
    EXPECT_FALSE(wb.has_aw_to_send()) << "no data yet -> AW must be held";
    wb.accept_beat(beat(false, 1));
    wb.accept_beat(beat(false, 2));
    wb.accept_beat(beat(false, 3));
    EXPECT_FALSE(wb.has_aw_to_send());
    wb.accept_beat(beat(true, 4));
    ASSERT_TRUE(wb.has_aw_to_send());
    (void)wb.pop_aw();
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(wb.has_w_to_send());
        const axi::WFlit w = wb.pop_w();
        EXPECT_EQ(w.data.bytes[0], i + 1);
        EXPECT_EQ(w.last, i == 3);
    }
    EXPECT_TRUE(wb.empty());
}

TEST(WriteBuffer, RegatesChildLast) {
    // Parent of 4 beats fragmented into 2 children of 2: parent WLAST on
    // beat 3 only; children get their own last flags.
    WriteBuffer wb{16};
    axi::AwFlit aw = axi::make_aw(1, 0x0, 4, 3);
    const auto children = axi::fragment_burst(aw.descriptor(), 2);
    wb.queue_children(aw, children);
    wb.accept_beat(beat(false));
    wb.accept_beat(beat(false)); // child 0 complete (parent not last here)
    wb.accept_beat(beat(false));
    wb.accept_beat(beat(true)); // parent last == child 1 last
    int lasts = 0;
    while (wb.has_aw_to_send() || wb.has_w_to_send()) {
        if (wb.has_aw_to_send()) { (void)wb.pop_aw(); }
        if (wb.has_w_to_send()) { lasts += wb.pop_w().last ? 1 : 0; }
    }
    EXPECT_EQ(lasts, 2) << "each child carries its own WLAST";
}

TEST(WriteBuffer, BackpressuresWhenFull) {
    WriteBuffer wb{2};
    const axi::AwFlit aw = axi::make_aw(1, 0x0, 2, 3);
    // Two bursts queued; capacity 2 beats.
    wb.queue_children(aw, std::vector<axi::BurstDescriptor>{aw.descriptor()});
    wb.queue_children(aw, std::vector<axi::BurstDescriptor>{aw.descriptor()});
    ASSERT_TRUE(wb.can_accept_beat());
    wb.accept_beat(beat(false));
    wb.accept_beat(beat(true)); // first burst complete, fills the buffer
    EXPECT_FALSE(wb.can_accept_beat()) << "capacity reached";
    (void)wb.pop_aw();
    (void)wb.pop_w();
    EXPECT_TRUE(wb.can_accept_beat()) << "draining frees space";
}

TEST(WriteBuffer, CutThroughForOversizedBurst) {
    WriteBuffer wb{4};
    const axi::AwFlit aw = axi::make_aw(1, 0x0, 8, 3); // burst > depth
    wb.queue_children(aw, std::vector<axi::BurstDescriptor>{aw.descriptor()});
    EXPECT_EQ(wb.cut_through_bursts(), 1U);
    EXPECT_TRUE(wb.has_aw_to_send()) << "cut-through forwards the AW immediately";
    (void)wb.pop_aw();
    wb.accept_beat(beat(false));
    EXPECT_TRUE(wb.has_w_to_send()) << "data streams as it arrives";
}

TEST(WriteBuffer, DisabledActsAsCutThrough) {
    WriteBuffer wb{16, /*enabled=*/false};
    const axi::AwFlit aw = axi::make_aw(1, 0x0, 2, 3);
    wb.queue_children(aw, std::vector<axi::BurstDescriptor>{aw.descriptor()});
    EXPECT_TRUE(wb.has_aw_to_send());
    EXPECT_EQ(wb.cut_through_bursts(), 1U);
}

TEST(WriteBuffer, TwoAwsPipelined) {
    // Entry 1's AW may be emitted while entry 0 still streams data (the
    // paper's two-AW buffer).
    WriteBuffer wb{16};
    const axi::AwFlit aw = axi::make_aw(1, 0x0, 2, 3);
    wb.queue_children(aw, std::vector<axi::BurstDescriptor>{aw.descriptor()});
    wb.queue_children(aw, std::vector<axi::BurstDescriptor>{aw.descriptor()});
    wb.accept_beat(beat(false));
    wb.accept_beat(beat(true));
    wb.accept_beat(beat(false));
    wb.accept_beat(beat(true));
    (void)wb.pop_aw(); // entry 0 AW
    ASSERT_TRUE(wb.has_aw_to_send()) << "second AW available while first streams";
    (void)wb.pop_aw();
    int w_beats = 0;
    while (wb.has_w_to_send()) {
        (void)wb.pop_w();
        ++w_beats;
    }
    EXPECT_EQ(w_beats, 4);
}

// --- MonitorRegulationUnit ----------------------------------------------------

RegionConfig make_region(axi::Addr start, axi::Addr end, std::uint64_t budget,
                         sim::Cycle period) {
    RegionConfig r;
    r.start = start;
    r.end = end;
    r.budget_bytes = budget;
    r.period_cycles = period;
    return r;
}

TEST(MrUnit, ChargesAndDepletes) {
    MonitorRegulationUnit mr{2};
    mr.configure_region(0, make_region(0x0, 0x10000, 256, 1000), 0);
    EXPECT_TRUE(mr.admission_open());
    mr.charge(0x100, 200);
    EXPECT_TRUE(mr.admission_open());
    mr.charge(0x200, 100); // credit now -44
    EXPECT_FALSE(mr.admission_open());
    EXPECT_TRUE(mr.budget_exhausted());
    EXPECT_EQ(mr.region(0).depletion_events, 1U);
}

TEST(MrUnit, PeriodReplenishesWithOverdraftRepayment) {
    MonitorRegulationUnit mr{1};
    mr.configure_region(0, make_region(0x0, 0x10000, 100, 50), 0);
    mr.charge(0x0, 160); // credit -60
    EXPECT_TRUE(mr.budget_exhausted());
    mr.tick(50); // one period: credit -60+100 = 40 (overdraft repaid)
    EXPECT_TRUE(mr.admission_open());
    EXPECT_EQ(mr.region(0).credit, 40);
    mr.tick(100); // credit min(100, 40+100) = 100: no banking beyond budget
    EXPECT_EQ(mr.region(0).credit, 100);
}

TEST(MrUnit, RegionDecodeSelectsByAddress) {
    MonitorRegulationUnit mr{2};
    mr.configure_region(0, make_region(0x0000, 0x1000, 100, 100), 0);
    mr.configure_region(1, make_region(0x1000, 0x2000, 100, 100), 0);
    EXPECT_EQ(mr.region_of(0x0800), 0U);
    EXPECT_EQ(mr.region_of(0x1800), 1U);
    EXPECT_FALSE(mr.region_of(0x5000).has_value());
    mr.charge(0x1800, 64);
    EXPECT_EQ(mr.region(1).bytes_total, 64U);
    EXPECT_EQ(mr.region(0).bytes_total, 0U);
}

TEST(MrUnit, UnmatchedTrafficUnregulated) {
    MonitorRegulationUnit mr{1};
    mr.configure_region(0, make_region(0x0, 0x1000, 10, 100), 0);
    mr.charge(0x9000, 1000000); // outside all regions
    EXPECT_TRUE(mr.admission_open());
    EXPECT_EQ(mr.unmatched_txns(), 1U);
}

TEST(MrUnit, OnlyDepletedRegionIsolates) {
    MonitorRegulationUnit mr{2};
    mr.configure_region(0, make_region(0x0, 0x1000, 1000, 100), 0);
    mr.configure_region(1, make_region(0x1000, 0x2000, 100, 100), 0);
    mr.charge(0x1000, 150);
    EXPECT_TRUE(mr.budget_exhausted()) << "one depleted region isolates the manager";
}

TEST(MrUnit, ThrottleScalesOutstandingWithCredit) {
    MonitorRegulationUnit mr{1};
    mr.configure_region(0, make_region(0x0, 0x10000, 1000, 1000), 0);
    mr.set_throttle_enabled(true);
    EXPECT_EQ(mr.allowed_outstanding(8), 8U);
    mr.charge(0x0, 500);
    EXPECT_EQ(mr.allowed_outstanding(8), 4U);
    mr.charge(0x0, 400); // 10 % left
    EXPECT_EQ(mr.allowed_outstanding(8), 1U);
    mr.set_throttle_enabled(false);
    EXPECT_EQ(mr.allowed_outstanding(8), 8U);
}

TEST(MrUnit, BandwidthReadoutTracksPeriod) {
    MonitorRegulationUnit mr{1};
    mr.configure_region(0, make_region(0x0, 0x10000, 4096, 1000), 0);
    mr.charge(0x0, 512);
    EXPECT_DOUBLE_EQ(mr.region(0).current_bandwidth(64), 8.0);
    mr.tick(1000);
    EXPECT_EQ(mr.region(0).bytes_this_period, 0U) << "period boundary clears the window";
    EXPECT_EQ(mr.region(0).bytes_total, 512U) << "lifetime counter survives";
}

TEST(MrUnit, LatencyStatsPerRegion) {
    MonitorRegulationUnit mr{2};
    mr.configure_region(0, make_region(0x0, 0x1000, 0, 0), 0);
    mr.record_completion(0U, 12, false);
    mr.record_completion(0U, 20, false);
    mr.record_completion(0U, 40, true);
    EXPECT_EQ(mr.region(0).read_latency.count(), 2U);
    EXPECT_EQ(mr.region(0).read_latency.max(), 20U);
    EXPECT_EQ(mr.region(0).write_latency.max(), 40U);
}

// --- IsolationBlock -----------------------------------------------------------

TEST(Isolation, TracksOutstandingAndCauses) {
    IsolationBlock iso;
    EXPECT_TRUE(iso.may_accept());
    iso.on_read_accepted();
    iso.on_write_accepted();
    iso.raise(IsolationCause::kUser);
    EXPECT_FALSE(iso.may_accept());
    EXPECT_FALSE(iso.fully_isolated()) << "outstanding still draining";
    iso.on_read_completed();
    iso.on_write_completed();
    EXPECT_TRUE(iso.fully_isolated());
    iso.clear(IsolationCause::kUser);
    EXPECT_TRUE(iso.may_accept());
}

TEST(Isolation, MultipleCausesIndependent) {
    IsolationBlock iso;
    iso.raise(IsolationCause::kBudget);
    iso.raise(IsolationCause::kUser);
    iso.clear(IsolationCause::kBudget);
    EXPECT_FALSE(iso.may_accept()) << "user cause still active";
    EXPECT_TRUE(iso.cause_active(IsolationCause::kUser));
    EXPECT_FALSE(iso.cause_active(IsolationCause::kBudget));
}

} // namespace
} // namespace realm::rt

// --- BurstEqualizer (ABE baseline) --------------------------------------------

#include "mem/axi_mem_slave.hpp"
#include "realm/burst_equalizer.hpp"

namespace realm::rt {
namespace {

TEST(BurstEqualizer, FragmentsAndCompletesRoundTrips) {
    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down"};
    mem::AxiMemSlave slave{ctx, "mem", down, std::make_unique<mem::SramBackend>(1, 1),
                           mem::AxiMemSlaveConfig{8, 8, 0}};
    BurstEqualizer abe{ctx, "abe", up, down, BurstEqualizerConfig{4, 4}};

    // 16-beat read -> 4 children downstream, one upstream completion.
    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(1, 0x0, 16, 3));
    int beats = 0;
    while (beats < 16) {
        ASSERT_TRUE(ctx.run_until([&] { return mgr.has_r(); }, 10000));
        const axi::RFlit r = mgr.recv_r();
        ++beats;
        EXPECT_EQ(r.last, beats == 16);
    }
    EXPECT_EQ(abe.splitter().fragments_created(), 4U);

    // 8-beat write -> 2 children, one coalesced B.
    mgr.send_aw(axi::make_aw(2, 0x100, 8, 3));
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(ctx.run_until([&] { return mgr.can_send_w(); }, 10000));
        axi::WFlit w;
        w.last = i == 7;
        mgr.send_w(w);
    }
    ASSERT_TRUE(ctx.run_until([&] { return mgr.has_b(); }, 10000));
    EXPECT_EQ(mgr.recv_b().id, 2U);
    ASSERT_TRUE(ctx.run_until([&] { return abe.outstanding() == 0; }, 100));
}

TEST(BurstEqualizer, OutstandingCapEnforced) {
    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down"};
    mem::AxiMemSlave slave{ctx, "mem", down, std::make_unique<mem::SramBackend>(30, 30),
                           mem::AxiMemSlaveConfig{8, 8, 0}};
    BurstEqualizer abe{ctx, "abe", up, down, BurstEqualizerConfig{16, 2}};
    axi::ManagerView mgr{up};
    // Three reads against a slow memory; the third must wait for the cap.
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(ctx.run_until([&] { return mgr.can_send_ar(); }, 1000));
        mgr.send_ar(axi::make_ar(1, static_cast<axi::Addr>(i) * 0x100, 1, 3));
    }
    ctx.run(10);
    EXPECT_LE(abe.outstanding(), 2U);
    int beats = 0;
    while (beats < 3) {
        ASSERT_TRUE(ctx.run_until([&] { return mgr.has_r(); }, 10000));
        (void)mgr.recv_r();
        ++beats;
    }
}

} // namespace
} // namespace realm::rt
