/// \file
/// \brief Granular burst splitter (Figure 3a of the paper).
///
/// Fragments incoming bursts to a runtime-configurable granularity so that
/// burst-granular round-robin arbiters downstream cannot let one manager's
/// long bursts starve another's fine-granular traffic. Pure bookkeeping
/// class — the owning `RealmUnit` moves the flits; this class decides how
/// bursts fragment, gates child R.last flags, and coalesces child write
/// responses back into one parent response.
///
/// AXI4 rules honored (see `axi::is_fragmentable`): FIXED and WRAP bursts,
/// exclusive accesses, and non-modifiable bursts of <= 16 beats pass intact.
#pragma once

#include "axi/burst.hpp"
#include "axi/flit.hpp"

#include "sim/types.hpp"

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

namespace realm::rt {

class GranularBurstSplitter {
public:
    /// \param granularity_beats  child burst length cap, in [1, 256];
    ///        256 effectively disables fragmentation.
    /// \param max_parents        outstanding parent bursts per direction.
    explicit GranularBurstSplitter(std::uint32_t granularity_beats = axi::kMaxBurstBeats,
                                   std::uint32_t max_parents = 8);

    void reset();

    /// \name Configuration
    ///@{
    void set_granularity(std::uint32_t beats);
    [[nodiscard]] std::uint32_t granularity() const noexcept { return granularity_; }
    ///@}

    /// \name Read path
    ///@{
    [[nodiscard]] bool can_accept_read() const noexcept;
    /// Accepts a parent AR; its children become available via `pop_child_ar`.
    void accept_read(const axi::ArFlit& parent);
    [[nodiscard]] bool has_child_ar() const noexcept { return !child_ar_queue_.empty(); }
    axi::ArFlit pop_child_ar();

    struct ProcessedR {
        axi::RFlit flit;        ///< beat to forward upstream (last re-gated)
        bool parent_completed;  ///< true on the parent's final beat
    };
    /// Consumes one child R beat (in per-ID order) and re-gates `last`.
    ProcessedR process_r(const axi::RFlit& beat);
    ///@}

    /// \name Write path (data transport lives in `WriteBuffer`)
    ///@{
    [[nodiscard]] bool can_accept_write() const noexcept;
    /// Accepts a parent AW, returning the child burst descriptors in order.
    std::vector<axi::BurstDescriptor> accept_write(const axi::AwFlit& parent);
    /// Consumes one child B; returns the coalesced parent B (worst child
    /// response wins) once all children responded, nullopt otherwise.
    std::optional<axi::BFlit> process_b(const axi::BFlit& child);
    ///@}

    /// \name Introspection
    ///@{
    [[nodiscard]] std::uint32_t reads_in_flight() const noexcept { return reads_in_flight_; }
    [[nodiscard]] std::uint32_t writes_in_flight() const noexcept { return writes_in_flight_; }
    [[nodiscard]] std::uint64_t fragments_created() const noexcept { return fragments_created_; }
    [[nodiscard]] std::uint64_t bursts_passed_intact() const noexcept { return passed_intact_; }
    ///@}

private:
    struct ParentRead {
        axi::ArFlit parent;
        std::vector<axi::BurstDescriptor> children;
        std::uint32_t child_index = 0;
        std::uint32_t beat_in_child = 0;
    };
    struct ParentWrite {
        axi::AwFlit parent;
        std::uint32_t children_total = 0;
        std::uint32_t children_done = 0;
        axi::Resp merged = axi::Resp::kExOkay;
    };

    [[nodiscard]] std::vector<axi::BurstDescriptor>
    fragment(const axi::BurstDescriptor& desc, std::uint8_t cache, bool lock);

    std::uint32_t granularity_;
    std::uint32_t max_parents_;

    std::unordered_map<axi::IdT, std::deque<ParentRead>> reads_;
    std::unordered_map<axi::IdT, std::deque<ParentWrite>> writes_;
    std::deque<axi::ArFlit> child_ar_queue_;

    std::uint32_t reads_in_flight_ = 0;
    std::uint32_t writes_in_flight_ = 0;
    std::uint64_t fragments_created_ = 0;
    std::uint64_t passed_intact_ = 0;
};

} // namespace realm::rt
