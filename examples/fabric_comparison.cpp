/// \file
/// \brief One DoS cell, three fabrics, two transports: the
///        interconnect-agnostic claim as a side-by-side table.
///
/// Runs the same 2-attacker hog cell — identical victim, identical attacker
/// DMAs, identical REALM programming — on the Cheshire crossbar, an 8-node
/// ring, and a 2x4 mesh, undefended and budget-defended, using the smoke
/// sweeps from the registry. The NoC fabrics run each cell under *both*
/// flow-control models: the legacy provisioned transport (single-beat
/// packets, 1024-flit staging) and the credited transport (wormhole worms,
/// per-VC credits, end-to-end NI credits), so the worst-cell latencies of
/// the two models sit side by side. The absolute numbers differ per fabric
/// and per transport (an LLC in front of DRAM vs. flat SRAM NoC nodes;
/// serialization makes head-of-line blocking visible), but the *story* is
/// the same everywhere: the undefended cell wrecks the victim's tail
/// latency, the budgeted cell restores it. That is Figure 1 of the paper,
/// executable.
#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

#include <cstdio>
#include <utility>
#include <vector>

using namespace realm;
using namespace realm::scenario;

namespace {

/// Applies one flow-control model to every NoC point of a sweep.
void set_flow(Sweep& sweep, noc::FlowControl mode) {
    for (SweepPoint& p : sweep.points) {
        p.config.topology.ring.flow_control = mode;
        p.config.topology.mesh.flow_control = mode;
    }
}

void print_rows(const char* fabric, const char* flow,
                const std::vector<ScenarioResult>& results) {
    for (const ScenarioResult& r : results) {
        std::printf("%-10s %-12s %-18s %10.2f %10llu %12.2f %10llu\n", fabric, flow,
                    r.label.c_str(), r.load_lat_mean,
                    static_cast<unsigned long long>(worst_case_victim_latency(r)),
                    r.dma_read_bw, static_cast<unsigned long long>(r.fabric_hops));
    }
}

} // namespace

int main() {
    std::puts("== The same DoS cell on three fabrics, two NoC transports ==\n");
    std::printf("%-10s %-12s %-18s %10s %10s %12s %10s\n", "fabric", "flow", "cell",
                "lat_mean", "lat_max", "dma[B/cyc]", "hops");

    const ScenarioRunner runner{RunnerOptions{.threads = 2}};
    const std::pair<const char*, const char*> fabrics[] = {
        {"crossbar", "xbar-dos-smoke"},
        {"ring", "ring-dos-smoke"},
        {"mesh", "mesh-dos-smoke"},
    };
    for (const auto& [fabric, sweep_name] : fabrics) {
        Sweep sweep = make_sweep(sweep_name);
        // Points 4 and 5 of every smoke sweep: 2atk/hog/none and
        // 2atk/hog/budget (same labels across fabrics by construction).
        Sweep pair;
        pair.name = sweep.name;
        pair.points = {sweep.points.at(4), sweep.points.at(5)};
        const bool is_noc = pair.points[0].config.topology.kind != TopologyKind::kCheshire;
        if (!is_noc) {
            // The crossbar has no NoC transport to select; say so instead
            // of printing an empty column.
            print_rows(fabric, "n/a", runner.run(pair));
            continue;
        }
        for (const noc::FlowControl mode :
             {noc::FlowControl::kProvisioned, noc::FlowControl::kCredited}) {
            Sweep variant = pair;
            set_flow(variant, mode);
            print_rows(fabric, noc::to_string(mode), runner.run(variant));
        }
    }

    std::puts("\nthe same RegionPlan tames the same attackers on a crossbar, a ring,");
    std::puts("and an XY-routed mesh, under both the provisioned and the credited");
    std::puts("transport — regulation composes with the fabric, not against it. The");
    std::puts("credited rows surface the wormhole head-of-line blocking the 1024-flit");
    std::puts("provisioned staging used to hide. Full matrices: scenario_sweep");
    std::puts("{xbar,ring,mesh}-dos-matrix --report PATH.md renders the reviewable");
    std::puts("attacker x mode tables; --diff BASELINE.json gates regressions.");
    return 0;
}
