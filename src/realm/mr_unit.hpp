/// \file
/// \brief Monitoring & Regulation (M&R) unit: the credit engine of AXI-REALM.
///
/// Tracks per-region transferred bytes against a budget that replenishes on
/// a configurable period, decides when the manager must be isolated, and
/// collects the observability statistics (bandwidth, latency, interference
/// proxies) the paper exposes for budget/period selection.
#pragma once

#include "axi/types.hpp"

#include "sim/stats.hpp"
#include "sim/types.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace realm::rt {

/// Runtime configuration of one subordinate address region.
struct RegionConfig {
    axi::Addr start = 0;
    axi::Addr end = ~axi::Addr{0};   ///< exclusive
    std::uint64_t budget_bytes = 0;  ///< credit granted per period (0 = unregulated)
    sim::Cycle period_cycles = 0;    ///< replenish interval (0 = unregulated)

    [[nodiscard]] bool regulated() const noexcept {
        return budget_bytes != 0 && period_cycles != 0;
    }
    [[nodiscard]] bool contains(axi::Addr addr) const noexcept {
        return addr >= start && addr < end;
    }
};

/// Live bookkeeping of one region (a "bookkeeping unit" in Figure 4).
struct RegionState {
    RegionConfig config;
    std::int64_t credit = 0;          ///< remaining budget; <= 0 means depleted
    sim::Cycle period_start = 0;
    std::uint64_t bytes_this_period = 0;
    std::uint64_t bytes_total = 0;
    std::uint64_t txns_total = 0;
    std::uint64_t periods_elapsed = 0;
    std::uint64_t depletion_events = 0;
    sim::LatencyStat read_latency;
    sim::LatencyStat write_latency;

    /// Bytes/cycle within the current period (the register-file bandwidth
    /// readout the paper describes as "trivially retrievable").
    [[nodiscard]] double current_bandwidth(sim::Cycle now) const noexcept {
        const sim::Cycle elapsed = now - period_start;
        return elapsed == 0 ? 0.0
                            : static_cast<double>(bytes_this_period) /
                                  static_cast<double>(elapsed);
    }
};

class MonitorRegulationUnit {
public:
    explicit MonitorRegulationUnit(std::uint32_t num_regions);

    /// \name Configuration (via the protected register file)
    ///@{
    void configure_region(std::uint32_t index, const RegionConfig& config, sim::Cycle now);
    [[nodiscard]] std::uint32_t num_regions() const noexcept {
        return static_cast<std::uint32_t>(regions_.size());
    }
    void set_throttle_enabled(bool enabled) noexcept { throttle_enabled_ = enabled; }
    [[nodiscard]] bool throttle_enabled() const noexcept { return throttle_enabled_; }
    ///@}

    /// Advances period timers; replenishes credits on period boundaries.
    void tick(sim::Cycle now);

    /// Earliest upcoming credit-replenish boundary across regulated regions
    /// (`kNoCycle` when nothing is regulated). The only cycle-driven event
    /// in the M&R unit, so a unit with empty channels may sleep until then.
    [[nodiscard]] sim::Cycle next_replenish_cycle() const noexcept;

    /// Region containing `addr`, if any.
    [[nodiscard]] std::optional<std::uint32_t> region_of(axi::Addr addr) const noexcept;

    /// True when no regulated region is depleted (new transactions may pass).
    [[nodiscard]] bool admission_open() const noexcept;

    /// True when at least one regulated region has exhausted its credit —
    /// the condition that isolates the manager until replenishment.
    [[nodiscard]] bool budget_exhausted() const noexcept { return !admission_open(); }

    /// Debits `bytes` against the region containing `addr` (called at
    /// transaction acceptance, fragment granularity).
    void charge(axi::Addr addr, std::uint64_t bytes);

    /// Records a completed transaction's latency for the region statistics.
    void record_completion(std::optional<std::uint32_t> region, sim::Cycle latency,
                          bool is_write);

    /// Outstanding-transaction cap from the throttling unit: scales linearly
    /// with the most-depleted regulated region's remaining credit, clamped
    /// to [1, max_pending]. With throttling off, returns max_pending.
    [[nodiscard]] std::uint32_t allowed_outstanding(std::uint32_t max_pending) const noexcept;

    /// \name Observability
    ///@{
    [[nodiscard]] const RegionState& region(std::uint32_t index) const {
        return regions_.at(index);
    }
    [[nodiscard]] std::uint64_t unmatched_txns() const noexcept { return unmatched_txns_; }
    [[nodiscard]] std::uint64_t isolation_cycles() const noexcept { return isolation_cycles_; }
    void note_isolated_cycle() noexcept { ++isolation_cycles_; }
    ///@}

    void reset(sim::Cycle now);

private:
    std::vector<RegionState> regions_;
    bool throttle_enabled_ = false;
    std::uint64_t unmatched_txns_ = 0;
    std::uint64_t isolation_cycles_ = 0;
};

} // namespace realm::rt
