/// \file
/// \brief Opt-in cycle-attribution profiler: where does the wall time of a
///        simulation go, per component type and per shard?
///
/// The kernel's perf work (sharding, data layout) has so far been steered by
/// whole-run numbers — `sim_cycles_per_sec` and the micro benches. This
/// profiler closes the attribution gap: with `SimContext::set_profiler`
/// armed, every executed tick is timed and charged to a (component type,
/// shard) bucket, so a sweep can report "62% of the wall time is
/// `MeshRouter` ticks on shard 2" instead of a single aggregate.
///
/// Cost model: **zero overhead when off** — the tick loop takes one
/// predictable branch per shard per cycle to select the unprofiled path.
/// When on, the profiled loop chains `steady_clock` samples (one clock call
/// per executed tick, not two: the end of tick N is the start of tick N+1),
/// and buckets are keyed by shard, so concurrent shards never share a
/// counter — no atomics on the sample path.
#pragma once

#include "sim/types.hpp"

#include <cstdint>
#include <string>
#include <typeinfo>
#include <vector>

namespace realm::sim {

/// Tick/wall-time accumulator, attached to a `SimContext` via
/// `set_profiler`. Buckets are interned during partitioning (single
/// threaded); the tick phase only increments pre-resolved bucket counters.
class Profiler {
public:
    /// One (component type, shard) accumulator. `ticks`/`nanos` are written
    /// by exactly one shard's tick loop — disjoint buckets, no sharing.
    struct Bucket {
        std::uint64_t ticks = 0;
        std::uint64_t nanos = 0;
    };

    /// Harvested view of one bucket, with the type name demangled.
    struct Row {
        std::string type;     ///< component type (demangled)
        unsigned shard = 0;
        std::uint64_t components = 0; ///< instances in this bucket
        std::uint64_t ticks = 0;      ///< executed ticks attributed
        std::uint64_t nanos = 0;      ///< wall time attributed
    };

    /// Starts a (re)partition: component counts are rebuilt from the
    /// upcoming `intern` calls, while tick/time counters keep accumulating
    /// across repartitions.
    void begin_partition();

    /// Resolves the bucket index for one component instance (called once
    /// per component per partition, single-threaded). Increments the
    /// bucket's instance count.
    [[nodiscard]] std::uint32_t intern(const std::type_info& type, unsigned shard);

    /// Hot-path accessor for the tick loop. Indices come from `intern` and
    /// stay valid until the next `begin_partition`.
    [[nodiscard]] Bucket& bucket(std::uint32_t index) noexcept {
        return buckets_[index];
    }

    /// Drops all samples and bucket definitions.
    void reset();

    /// Aggregated samples, heaviest (by nanos) first. Demangles type names;
    /// call at harvest time, not on the hot path.
    [[nodiscard]] std::vector<Row> rows() const;

private:
    struct Key {
        std::string raw_type; ///< mangled `type_info::name()`
        unsigned shard = 0;
        std::uint64_t components = 0;
    };

    std::vector<Key> keys_;
    std::vector<Bucket> buckets_;
};

} // namespace realm::sim
