/// \file
/// \brief Scenario: a malicious accelerator mounts a write-stall
///        denial-of-service attack; AXI-REALM detects and mitigates it.
///
/// Three acts:
///   1. the attack — the rogue DMA reserves write bandwidth at AW time and
///      trickles its data, starving a victim's writes (write buffer off);
///   2. detection — the victim-side M&R unit's latency statistics expose
///      the interference without any bus analyzer;
///   3. mitigation — the write buffer withholds AWs until data is complete,
///      and, for a persistently hostile manager, user-commanded isolation
///      cuts it off entirely.
///
/// Acts 1 and 2 are declarative scenario runs; act 3 drives the register
/// interface by hand (isolation is a runtime intervention, not a config).
#include "scenario/scenario.hpp"
#include "soc/cheshire_soc.hpp"
#include "traffic/dma.hpp"

#include <cstdio>

using namespace realm;
using namespace realm::scenario;

namespace {
constexpr axi::Addr kDram = 0x8000'0000;

traffic::DmaConfig attacker_config() {
    traffic::DmaConfig cfg;
    cfg.burst_beats = 8;
    cfg.reserve_before_data = true; // claim W bandwidth before data exists
    cfg.w_stall_cycles = 64;        // ...then trickle one beat per 64 cycles
    return cfg;
}

ScenarioConfig attack_scenario(bool write_buffer_enabled) {
    ScenarioConfig cfg;
    cfg.name = write_buffer_enabled ? "dos/wbuf-on" : "dos/wbuf-off";
    cfg.soc.realm.write_buffer_enabled = write_buffer_enabled;
    cfg.preload.push_back(PreloadSpan{kDram, 0x10000, 1, /*warm=*/true});
    // Victim-side monitoring needs a region over the LLC span.
    cfg.monitor_llc_on_core = true;

    InterferenceConfig attacker;
    attacker.dma = attacker_config();
    attacker.src = kDram + 0x8000;
    attacker.dst = kDram + 0xC000;
    attacker.bytes = 0x4000;
    cfg.interference.push_back(attacker);

    cfg.victim.kind = VictimConfig::Kind::kStream;
    cfg.victim.stream = {.base = kDram, .bytes = 0x2000, .op_bytes = 8,
                         .stride_bytes = 8, .store_ratio16 = 16};
    cfg.warmup_cycles = 500;
    cfg.max_cycles = 10'000'000;
    return cfg;
}
} // namespace

int main() {
    std::puts("=== Act 1: the attack (write buffer disabled) ===");
    const ScenarioResult attack = run_scenario(attack_scenario(false));
    std::printf("  victim store latency: mean %.1f, max %llu cycles "
                "(M&R write-latency max: %llu)\n",
                attack.store_lat_mean,
                static_cast<unsigned long long>(attack.store_lat_max),
                static_cast<unsigned long long>(attack.core_mr_write_lat_max));
    std::printf("  -> interconnect W channel starved; victim crawls at %.0fx the\n"
                "     unloaded store latency\n\n",
                attack.store_lat_mean / 6.0);

    std::puts("=== Act 2 & 3: write buffer on; then isolate the rogue manager ===");
    const ScenarioResult guarded = run_scenario(attack_scenario(true));
    std::printf("  victim store latency: mean %.1f, max %llu cycles "
                "(M&R write-latency max: %llu)\n",
                guarded.store_lat_mean,
                static_cast<unsigned long long>(guarded.store_lat_max),
                static_cast<unsigned long long>(guarded.core_mr_write_lat_max));
    std::printf("  -> the write buffer holds the attacker's AWs until data is\n"
                "     complete: xbar W-stall cycles = %llu\n\n",
                static_cast<unsigned long long>(guarded.xbar_w_stalls));

    // Act 3: the supervisor decides the manager is hostile and cuts it off.
    // This is a runtime intervention on a live SoC, so we drive it by hand.
    std::puts("  supervisor: isolating the rogue manager...");
    sim::SimContext ctx;
    soc::CheshireSoc soc{ctx, soc::SocConfig{}};
    for (axi::Addr a = 0; a < 0x10000; a += 8) {
        soc.dram_image().write_u64(kDram + a, a);
    }
    soc.warm_llc(kDram, 0x10000);
    traffic::DmaEngine attacker{ctx, "attacker", soc.dsa_port(0), attacker_config()};
    attacker.push_job(traffic::DmaJob{kDram + 0x8000, kDram + 0xC000, 0x4000, true});
    ctx.run(500);
    soc.dsa_realm(0).set_user_isolation(true);
    ctx.run_until([&] { return soc.dsa_realm(0).fully_isolated(); }, 1'000'000);
    std::printf("  DSA unit state: %s (outstanding drained, new traffic blocked)\n",
                rt::to_string(soc.dsa_realm(0).state()));
    const std::uint64_t before = attacker.bytes_read();
    ctx.run(5000);
    std::printf("  attacker progress while isolated: %llu bytes\n",
                static_cast<unsigned long long>(attacker.bytes_read() - before));
    return 0;
}
