/// Composition patterns beyond the reference SoC: one REALM unit regulating
/// a whole *cluster* of managers (mux upstream of the unit), and the LLC
/// miss engine under combined core + DMA load with a cold cache.
#include "ic/mux.hpp"
#include "mem/axi_mem_slave.hpp"
#include "mem/llc.hpp"
#include "realm/realm_unit.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/workload.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

namespace realm {
namespace {

using test::step_until;

TEST(ClusterRegulation, OneUnitBudgetsTwoMuxedManagers) {
    // Figure 1 shows one REALM unit per manager port — but nothing stops an
    // integrator from regulating an aggregated cluster: two cores share a
    // mux whose output runs through a single REALM unit. The combined
    // cluster bandwidth must respect the one budget.
    sim::SimContext ctx;
    axi::AxiChannel c0{ctx, "c0"};
    axi::AxiChannel c1{ctx, "c1"};
    axi::AxiChannel cluster{ctx, "cluster"};
    axi::AxiChannel down{ctx, "down", 2, /*resp_passthrough=*/true};

    // Memory first so the unit's response pass-through sees its pushes.
    mem::AxiMemSlave mem{ctx, "mem", down, std::make_unique<mem::SramBackend>(1, 1),
                         mem::AxiMemSlaveConfig{8, 8, 0}};
    ic::AxiMux mux{ctx, "mux", {&c0, &c1}, cluster};
    rt::RealmUnit unit{ctx, "realm.cluster", cluster, down, {}};

    unit.set_region(0, rt::RegionConfig{0x0, 0x10000, 800, 1000}); // 0.8 B/cyc

    traffic::StreamWorkload wl0{{.base = 0x0, .bytes = 0x2000, .op_bytes = 8,
                                 .stride_bytes = 8, .repeat = 100}};
    traffic::StreamWorkload wl1{{.base = 0x4000, .bytes = 0x2000, .op_bytes = 8,
                                 .stride_bytes = 8, .repeat = 100}};
    traffic::CoreModel core0{ctx, "core0", c0, wl0};
    traffic::CoreModel core1{ctx, "core1", c1, wl1};

    const sim::Cycle horizon = 30000;
    ctx.run(horizon);
    const double cluster_bw = static_cast<double>(unit.mr().region(0).bytes_total) /
                              static_cast<double>(horizon);
    EXPECT_LE(cluster_bw, 0.8 * 1.3) << "one budget must cap the whole cluster";
    EXPECT_GT(cluster_bw, 0.5);
    // Both members made progress (the mux round-robin stays fair inside the
    // cluster's budget).
    EXPECT_GT(core0.loads_retired(), 100U);
    EXPECT_GT(core1.loads_retired(), 100U);
    const auto diff = core0.loads_retired() > core1.loads_retired()
                          ? core0.loads_retired() - core1.loads_retired()
                          : core1.loads_retired() - core0.loads_retired();
    EXPECT_LT(diff, core0.loads_retired() / 4);
}

TEST(ColdLlcStress, MissEngineServesMixedLoadCorrectly) {
    // Cold LLC, small enough that the working set thrashes: every actor's
    // traffic exercises refills and dirty writebacks concurrently, and all
    // data must still be correct end-to-end.
    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down"};
    mem::LlcConfig lcfg;
    lcfg.sets = 8;
    lcfg.ways = 2; // 1 KiB cache vs 16 KiB working set
    mem::Llc llc{ctx, "llc", up, down, lcfg};
    mem::AxiMemSlave dram{ctx, "dram", down, std::make_unique<mem::DramBackend>(),
                          mem::AxiMemSlaveConfig{8, 8, 0}};
    auto& store = static_cast<mem::DramBackend&>(dram.backend()).store();
    for (axi::Addr a = 0; a < 0x4000; a += 8) { store.write_u64(a, ~a * 3); }

    // Write a strided pattern through the cache, then read everything back.
    traffic::StreamWorkload writes{{.base = 0x0,
                                    .bytes = 0x4000,
                                    .op_bytes = 8,
                                    .stride_bytes = 264, // hostile to the 8 sets
                                    .store_ratio16 = 16}};
    traffic::CoreModel writer{ctx, "writer", up, writes};
    step_until(ctx, [&] { return writer.done(); }, 2'000'000);
    EXPECT_GT(llc.misses(), 10U);
    EXPECT_GT(llc.writebacks(), 5U);

    // Read back through fresh cache misses and verify the written pattern
    // (CoreModel stores a deterministic address-derived byte pattern; byte 0
    // equals the beat address's low byte).
    traffic::StreamWorkload reads{{.base = 0x0, .bytes = 0x4000, .op_bytes = 8,
                                   .stride_bytes = 264}};
    traffic::CoreModel reader{ctx, "reader", up, reads};
    step_until(ctx, [&] { return reader.done(); }, 2'000'000);
    EXPECT_EQ(reader.loads_retired(), writer.stores_retired());

    // Spot-check memory state: flush-resistant verification via the DRAM
    // image + dirty lines still resident. Addresses written with stores get
    // the core's pattern; untouched addresses keep the seed.
    bool any_written = false;
    for (axi::Addr a = 0; a < 0x4000; a += 264) {
        const axi::Addr word = a & ~axi::Addr{7};
        if (llc.contains(word)) { continue; } // still dirty in cache
        const std::uint64_t v = store.read_u64(word);
        EXPECT_NE(v, ~word * 3) << "written-back line must differ from the seed";
        any_written = true;
    }
    EXPECT_TRUE(any_written);
}

} // namespace
} // namespace realm
