/// \file
/// \brief Storage + timing backends plugged into the AXI memory subordinate.
#pragma once

#include "axi/types.hpp"
#include "mem/sparse_memory.hpp"
#include "sim/types.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace realm::mem {

/// Storage and service-timing model behind an `AxiMemSlave`.
/// `access_latency` may mutate internal timing state (e.g. DRAM row
/// buffers); it is called once per accepted burst at acceptance time.
class MemoryBackend {
public:
    virtual ~MemoryBackend() = default;

    virtual void read(axi::Addr addr, std::span<std::uint8_t> out) = 0;
    virtual void write(axi::Addr addr, std::span<const std::uint8_t> in, axi::Strb strb) = 0;

    /// Cycles from burst acceptance to first data beat (read) or from last
    /// write beat to response (write).
    virtual sim::Cycle access_latency(axi::Addr addr, std::uint32_t beats, bool is_write,
                                      sim::Cycle now) = 0;

    /// Post-reset hook (row buffers etc.). Storage contents are preserved,
    /// matching hardware reset behaviour.
    virtual void reset_timing() {}
};

/// Fixed-latency on-chip SRAM / scratchpad.
class SramBackend final : public MemoryBackend {
public:
    explicit SramBackend(sim::Cycle read_latency = 1, sim::Cycle write_latency = 1)
        : read_latency_{read_latency}, write_latency_{write_latency} {}

    void read(axi::Addr addr, std::span<std::uint8_t> out) override { store_.read(addr, out); }
    void write(axi::Addr addr, std::span<const std::uint8_t> in, axi::Strb strb) override {
        store_.write(addr, in, strb);
    }
    sim::Cycle access_latency(axi::Addr, std::uint32_t, bool is_write, sim::Cycle) override {
        return is_write ? write_latency_ : read_latency_;
    }

    [[nodiscard]] SparseMemory& store() noexcept { return store_; }
    [[nodiscard]] const SparseMemory& store() const noexcept { return store_; }

private:
    SparseMemory store_;
    sim::Cycle read_latency_;
    sim::Cycle write_latency_;
};

/// Timing parameters of the banked row-buffer DRAM model.
struct DramTiming {
    sim::Cycle row_hit = 12;      ///< CAS-only access.
    sim::Cycle row_miss = 36;     ///< Precharge + activate + CAS.
    std::uint32_t banks = 8;      ///< Interleaved on row-sized stripes.
    std::uint32_t row_bytes = 2048;
};

/// DRAM with per-bank open-row tracking and bank-busy serialization. The
/// controller services requests in order (FCFS), which is pessimistic but
/// predictable — appropriate for a real-time evaluation substrate.
class DramBackend final : public MemoryBackend {
public:
    explicit DramBackend(DramTiming timing = {});

    void read(axi::Addr addr, std::span<std::uint8_t> out) override { store_.read(addr, out); }
    void write(axi::Addr addr, std::span<const std::uint8_t> in, axi::Strb strb) override {
        store_.write(addr, in, strb);
    }
    sim::Cycle access_latency(axi::Addr addr, std::uint32_t beats, bool is_write,
                              sim::Cycle now) override;
    void reset_timing() override;

    [[nodiscard]] SparseMemory& store() noexcept { return store_; }
    [[nodiscard]] std::uint64_t row_hits() const noexcept { return row_hits_; }
    [[nodiscard]] std::uint64_t row_misses() const noexcept { return row_misses_; }

private:
    SparseMemory store_;
    DramTiming timing_;
    std::vector<std::int64_t> open_row_;  ///< -1 = closed
    std::vector<sim::Cycle> bank_free_at_;
    std::uint64_t row_hits_ = 0;
    std::uint64_t row_misses_ = 0;
};

} // namespace realm::mem
