/// \file
/// \brief Manager isolation block (ingress stage of the REALM unit).
///
/// Cuts a manager off from the memory system while letting already-granted
/// transactions complete. Isolation triggers (paper, Section III-A):
/// budget depletion, reconfiguration of intrusive parameters, or a
/// user/hypervisor command.
#pragma once

#include <cstdint>

namespace realm::rt {

/// Why the manager is (being) isolated; multiple causes may be active.
enum class IsolationCause : std::uint8_t {
    kUser = 1U << 0,     ///< commanded through the configuration interface
    kBudget = 1U << 1,   ///< a region's budget is depleted
    kReconfig = 1U << 2, ///< draining for an intrusive parameter change
};

class IsolationBlock {
public:
    void reset() noexcept {
        causes_ = 0;
        outstanding_reads_ = 0;
        outstanding_writes_ = 0;
    }

    /// \name Cause management
    ///@{
    void raise(IsolationCause cause) noexcept { causes_ |= static_cast<std::uint8_t>(cause); }
    void clear(IsolationCause cause) noexcept {
        causes_ &= static_cast<std::uint8_t>(~static_cast<std::uint8_t>(cause));
    }
    [[nodiscard]] bool cause_active(IsolationCause cause) const noexcept {
        return (causes_ & static_cast<std::uint8_t>(cause)) != 0;
    }
    [[nodiscard]] bool any_cause() const noexcept { return causes_ != 0; }
    ///@}

    /// New transactions may enter the memory system.
    [[nodiscard]] bool may_accept() const noexcept { return causes_ == 0; }

    /// Isolation has fully taken effect: no transaction is in flight.
    [[nodiscard]] bool fully_isolated() const noexcept {
        return any_cause() && outstanding() == 0;
    }

    /// \name Outstanding-transaction tracking
    ///@{
    void on_read_accepted() noexcept { ++outstanding_reads_; }
    void on_read_completed() noexcept {
        if (outstanding_reads_ > 0) { --outstanding_reads_; }
    }
    void on_write_accepted() noexcept { ++outstanding_writes_; }
    void on_write_completed() noexcept {
        if (outstanding_writes_ > 0) { --outstanding_writes_; }
    }
    [[nodiscard]] std::uint32_t outstanding_reads() const noexcept { return outstanding_reads_; }
    [[nodiscard]] std::uint32_t outstanding_writes() const noexcept {
        return outstanding_writes_;
    }
    [[nodiscard]] std::uint32_t outstanding() const noexcept {
        return outstanding_reads_ + outstanding_writes_;
    }
    ///@}

private:
    std::uint8_t causes_ = 0;
    std::uint32_t outstanding_reads_ = 0;
    std::uint32_t outstanding_writes_ = 0;
};

} // namespace realm::rt
