/// \file
/// \brief Credit-based flow control for the NoC transport layer: wormhole
///        flit links with per-VC credits, and end-to-end credit pools
///        between injecting and ejecting network interfaces.
///
/// The credited transport *enforces* every buffer bound (the legacy
/// provisioned transport and its assumed 1024-flit staging are gone — the
/// credited numbers are the tracked baseline):
///
///  - **Wormhole worms.** A data-carrying packet (W / R beat) serializes
///    into `flits_per_packet` flits (header + payload sized from the AXI
///    beat width); address/response packets (AW / AR / B) are single-flit
///    headers. A link transmits one flit per cycle, so a worm occupies its
///    link for `flits` cycles — the head-of-line blocking the AXI-REALM RTL
///    work measures on real interconnects, now visible in the DoS matrix.
///  - **Per-VC link credits.** Each link buffers at most `vc_depth` flits
///    per virtual channel at the receiver; `NocLink` asserts the bound on
///    every push. The request and response networks are disjoint physical
///    links; a link carries one VC by default, two under the O1TURN
///    routing policy (one per route class — see noc/routing.hpp).
///  - **End-to-end credits.** An injecting NI may only send a request worm
///    toward subordinate node D while it holds `flits` credits from D's
///    pool; credits return when the target NI's staging drains into the
///    egress mux. Ejection therefore *never* backpressures the network
///    (asserted). Responses use a separate pool per (manager, subordinate)
///    pair, so the request/response split keeps its deadlock-freedom
///    argument. With `credit_return_delay > 0` a returning credit rides
///    the response network for that many cycles instead of materializing
///    at the drain point instantaneously — the pool tracks the pending
///    returns, and conservation (held + in flight == capacity) stays
///    asserted on every transition.
#pragma once

#include "axi/channel.hpp"
#include "noc/packet.hpp"

#include "sim/check.hpp"
#include "sim/link.hpp"

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace realm::noc {

/// Flow-control knobs shared by every NoC fabric (ring and mesh).
struct NocFlowConfig {
    /// Flits per data-carrying packet (W / R beat): header + payload flits,
    /// i.e. the AXI beat width over the link phit width. AW / AR / B
    /// packets are single-flit headers.
    std::uint32_t flits_per_packet = 4;
    /// Receiver buffer depth of one link VC, in flits. Must hold at least
    /// one whole worm (`vc_depth >= flits_per_packet`).
    std::uint32_t vc_depth = 8;
    /// End-to-end credit pool per (source node, target NI) pair, in flits.
    /// Bounds the per-source staging occupancy at a subordinate NI (request
    /// pool) and the in-flight responses toward a manager NI (response
    /// pool). Must exceed one worm plus its header
    /// (`e2e_credits >= flits_per_packet + 1`) so an AW parked in staging
    /// can never starve its own data beats.
    std::uint32_t e2e_credits = 32;
    /// Cycles a returning end-to-end credit spends riding the response
    /// network before the injector may reuse it (0 = instantaneous release
    /// at the drain point, the historical behaviour). Sharpens the
    /// round-trip-limited throughput numbers without touching any buffer
    /// bound: a pending return still counts as in flight.
    std::uint32_t credit_return_delay = 0;

    /// Flit count of a request/response packet under this config.
    [[nodiscard]] std::uint32_t packet_flits(bool data_carrying) const noexcept {
        return data_carrying ? flits_per_packet : 1;
    }

    void validate() const;
};

/// One end-to-end credit pool: a counted reservation of `capacity` flits of
/// buffer space at a receiving NI. `in_flight + available == capacity` is
/// asserted on every transition, so a leak or double-release trips
/// immediately instead of showing up as a hung sweep hours later. Credits
/// released with `release_at` stay in flight (riding the response network)
/// until their ready cycle; `settle(now)` matures them.
class CreditPool {
public:
    explicit CreditPool(std::uint32_t capacity = 0) : capacity_{capacity},
                                                      available_{capacity} {}

    [[nodiscard]] bool can_take(std::uint32_t flits) const noexcept {
        return available_ >= flits;
    }
    void take(std::uint32_t flits) {
        REALM_EXPECTS(can_take(flits), "credit take without available credits");
        available_ -= flits;
    }
    /// Immediate release (zero return delay): the flits are reusable now.
    void release(std::uint32_t flits) {
        REALM_ENSURES(flits <= in_flight() - pending_total_,
                      "credit release exceeds in-flight credits");
        available_ += flits;
    }
    /// Delayed release: the credits stay in flight until `ready_at`
    /// (returns ride the response network), then mature on `settle`.
    void release_at(sim::Cycle ready_at, std::uint32_t flits) {
        REALM_ENSURES(flits <= in_flight() - pending_total_,
                      "credit release exceeds in-flight credits");
        pending_.push_back(Pending{ready_at, flits});
        pending_total_ += flits;
    }
    /// Matures every pending return whose ready cycle has arrived. Returns
    /// are queued in release order and delays are uniform, so the queue
    /// head is always the earliest.
    void settle(sim::Cycle now) {
        while (!pending_.empty() && pending_.front().ready_at <= now) {
            available_ += pending_.front().flits;
            pending_total_ -= pending_.front().flits;
            pending_.pop_front();
        }
    }

    [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::uint32_t available() const noexcept { return available_; }
    /// Credits not reusable by the injector: taken by in-network/staged
    /// worms *plus* pending returns still riding the response network.
    [[nodiscard]] std::uint32_t in_flight() const noexcept {
        return capacity_ - available_;
    }
    /// The pending-return share of `in_flight()`.
    [[nodiscard]] std::uint32_t pending_returns() const noexcept {
        return pending_total_;
    }

    /// Conservation invariant: credits in flight + credits held equal the
    /// configured pool, and pending returns never exceed what is in flight.
    /// Structurally true of the counters; asserting it (rather than
    /// sampling) documents and pins the contract.
    void check_conserved() const {
        REALM_ENSURES(available_ <= capacity_, "credit pool over-released");
        REALM_ENSURES(in_flight() + available_ == capacity_,
                      "credit conservation violated");
        REALM_ENSURES(pending_total_ <= in_flight(),
                      "pending credit returns exceed in-flight credits");
    }

private:
    struct Pending {
        sim::Cycle ready_at = 0;
        std::uint32_t flits = 0;
    };

    std::uint32_t capacity_ = 0;
    std::uint32_t available_ = 0;
    std::uint32_t pending_total_ = 0;
    std::deque<Pending> pending_;
};

/// Every end-to-end pool of one fabric: request pools indexed by
/// (target subordinate node, source manager node) and response pools by
/// (target manager node, source subordinate node). Kept separate so the
/// request/response protocol split stays deadlock-free under credit
/// exhaustion.
class CreditBook {
public:
    CreditBook(std::uint8_t num_nodes, const NocFlowConfig& fc)
        : n_{num_nodes},
          req_(static_cast<std::size_t>(num_nodes) * num_nodes,
               CreditPool{fc.e2e_credits}),
          rsp_(static_cast<std::size_t>(num_nodes) * num_nodes,
               CreditPool{fc.e2e_credits}) {}

    [[nodiscard]] CreditPool& req(std::uint8_t dest, std::uint8_t src) {
        return req_[index(dest, src)];
    }
    [[nodiscard]] CreditPool& rsp(std::uint8_t dest, std::uint8_t src) {
        return rsp_[index(dest, src)];
    }
    [[nodiscard]] const CreditPool& req(std::uint8_t dest, std::uint8_t src) const {
        return req_[index(dest, src)];
    }
    [[nodiscard]] const CreditPool& rsp(std::uint8_t dest, std::uint8_t src) const {
        return rsp_[index(dest, src)];
    }

    [[nodiscard]] std::uint8_t num_nodes() const noexcept { return n_; }

    /// Asserts conservation on every pool.
    void check_conserved() const {
        for (const CreditPool& p : req_) { p.check_conserved(); }
        for (const CreditPool& p : rsp_) { p.check_conserved(); }
    }

private:
    [[nodiscard]] std::size_t index(std::uint8_t dest, std::uint8_t src) const {
        REALM_EXPECTS(dest < n_ && src < n_, "credit pool index out of range");
        return static_cast<std::size_t>(dest) * n_ + src;
    }

    std::uint8_t n_;
    std::vector<CreditPool> req_;
    std::vector<CreditPool> rsp_;
};

/// One NoC link: a physical wormhole channel carrying `num_vcs` virtual
/// channels. The channel transmits one flit per cycle (a worm of `n` flits
/// occupies it for `n` cycles — wormhole serialization; the header still
/// forwards with the usual one-cycle hop latency) and each VC buffers at
/// most `vc_depth` flits at the receiver, asserted on every push. A packet
/// rides the VC named by its route class (`NocPacket::vc`); VCs hold
/// private buffers, so a blocked worm in one class never holds buffer
/// space another class waits on — the O1TURN deadlock-freedom requirement
/// (see noc/routing.hpp).
class NocLink {
public:
    NocLink(const sim::SimContext& ctx, std::string name, const NocFlowConfig& fc,
            std::uint8_t num_vcs = 1)
        : ctx_{&ctx}, fc_{fc}, name_{std::move(name)} {
        REALM_EXPECTS(num_vcs >= 1, "a NoC link needs at least one VC");
        buffered_.assign(num_vcs, 0);
        peak_.assign(num_vcs, 0);
        vcs_.reserve(num_vcs);
        for (std::uint8_t v = 0; v < num_vcs; ++v) {
            vcs_.push_back(std::make_unique<sim::Link<NocPacket>>(
                ctx, fc.vc_depth, name_));
        }
    }

    /// True when a packet of `flits` flits may start transmission on VC
    /// `vc` this cycle: the physical channel is not serializing an earlier
    /// worm and that VC holds enough free flit slots at the receiver.
    [[nodiscard]] bool can_push(std::uint32_t flits, std::uint8_t vc = 0) const {
        return ctx_->now() >= busy_until_ && vcs_.at(vc)->can_push() &&
               buffered_[vc] + flits <= fc_.vc_depth;
    }
    [[nodiscard]] bool can_push(const NocPacket& pkt) const {
        return can_push(pkt.flits, pkt.vc);
    }

    void push(NocPacket pkt);

    [[nodiscard]] bool can_pop(std::uint8_t vc = 0) const {
        return vcs_.at(vc)->can_pop();
    }
    [[nodiscard]] const NocPacket& front(std::uint8_t vc = 0) const {
        return vcs_.at(vc)->front();
    }
    NocPacket pop(std::uint8_t vc = 0);

    [[nodiscard]] bool empty() const noexcept {
        for (const auto& vc : vcs_) {
            if (!vc->empty()) { return false; }
        }
        return true;
    }
    void set_wake_on_push(sim::Component* c) noexcept {
        for (const auto& vc : vcs_) { vc->set_wake_on_push(c); }
    }

    /// \name Introspection (routing adaptivity, tests, benches)
    ///@{
    [[nodiscard]] std::uint8_t num_vcs() const noexcept {
        return static_cast<std::uint8_t>(vcs_.size());
    }
    [[nodiscard]] std::uint32_t buffered_flits(std::uint8_t vc = 0) const {
        return buffered_.at(vc);
    }
    [[nodiscard]] std::uint32_t peak_buffered_flits(std::uint8_t vc = 0) const {
        return peak_.at(vc);
    }
    [[nodiscard]] const NocFlowConfig& flow() const noexcept { return fc_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    ///@}

    /// Asserts the per-VC occupancy bound (tests call this every cycle;
    /// pushes already enforce it inline).
    void check_bounded() const {
        for (const std::uint32_t b : buffered_) {
            REALM_ENSURES(b <= fc_.vc_depth,
                          name_ + ": VC buffer exceeds its configured depth");
        }
    }

private:
    const sim::SimContext* ctx_;
    NocFlowConfig fc_;
    std::string name_;
    std::vector<std::unique_ptr<sim::Link<NocPacket>>> vcs_;
    std::vector<std::uint32_t> buffered_;
    std::vector<std::uint32_t> peak_;
    sim::Cycle busy_until_ = 0;
};

/// \name Staging helpers shared by the ring and mesh assemblies
///@{
/// Entries per staging lane: the end-to-end pool bounds staging at
/// `e2e_credits` single-flit entries per lane.
[[nodiscard]] std::size_t staging_depth(const NocFlowConfig& fc);

/// Wires the end-to-end credit returns of one per-source staging channel:
/// the pool's flits come back as the egress mux drains the lanes — after
/// `credit_return_delay` cycles on the response network when configured.
void wire_credit_returns(const sim::SimContext& ctx, axi::AxiChannel& egress,
                         CreditPool& pool, const NocFlowConfig& fc);

/// Flits currently staged in one per-source egress channel's request lanes,
/// weighted by worm length (a staged W beat holds its whole worm's buffer
/// space). Used by the fabric invariant checkers.
[[nodiscard]] std::uint32_t staged_request_flits(const axi::AxiChannel& egress,
                                                 const NocFlowConfig& fc);

/// Asserts one (target NI, source) staging against its end-to-end pool:
/// staged flits (lane occupancy plus the NI's reorder stash, see `NocNi`)
/// within the configured pool, and never more than the credits actually in
/// flight (a credit is either staged at the NI, stashed for reordering, or
/// still in the network). Shared by the ring and mesh
/// `check_flow_invariants`.
void check_staging_invariants(const axi::AxiChannel& egress, const CreditPool& pool,
                              const NocFlowConfig& fc,
                              std::uint32_t stashed_flits = 0);
///@}

} // namespace realm::noc
