/// \file
/// \brief Pluggable mesh routing policies: the routing decision of a 2D
///        mesh, extracted from the router so one fabric can be measured
///        under four different routing functions.
///
/// The DoS matrix used to measure worst-case victim latency under exactly
/// one routing function (XY), which concentrates all attacker traffic on
/// the memory columns. A `RoutingPolicy` turns the routing function into a
/// knob, so every existing DoS cell becomes four comparable scenarios —
/// quantifying how much fabric freedom buys the victim under the same
/// regulation budget:
///
///  - **`kXY`** — deterministic dimension order, column first. Minimal.
///    Deadlock-free because the prohibited turns (vertical -> horizontal)
///    break every cycle in the channel-dependency graph.
///  - **`kYX`** — deterministic dimension order, row first. The mirror
///    image of XY: same argument with the dimensions swapped, but attacker
///    traffic merges along rows instead of columns, moving the contention
///    hotspot away from the memory columns.
///  - **`kO1Turn`** — each worm picks X-first or Y-first pseudo-randomly
///    (O1TURN, Seo et al.). The choice is a pure function of the packet's
///    (src, dest, seq) identity, so replays are bit-for-bit deterministic.
///    Deadlock freedom needs the classic two-virtual-channel argument: XY
///    worms ride VC 0, YX worms ride VC 1 (`route_num_vcs` returns 2), each
///    class is dimension-ordered within its own private buffers, and the
///    classes share only the physical channel's serialization window, which
///    always expires after `flits` cycles — a time bound, not a held
///    resource, so no cross-class dependency cycle exists.
///  - **`kWestFirst`** — turn-model adaptive (Glass & Ni): a packet with
///    westward distance travels *all* its west hops first; everywhere else
///    it may choose among the productive directions (east / vertical),
///    picked by per-VC occupancy of the candidate links. Deadlock-free on a
///    single VC because the only prohibited turns are the two *into* west,
///    which removes every cycle from the turn graph; minimal (only
///    productive hops are permitted), hence also livelock-free.
///
/// Ordering note (all policies). Multi-path routing can reorder packets of
/// one (source, destination) pair in flight, which would break the AXI
/// same-ID rules and the AW-before-data lane discipline at the ejecting NI.
/// The NI therefore tags every worm with a per-(pair, network) sequence
/// number and the ejection side restores injection order (see `NocNi`), so
/// every policy — adaptive ones included — preserves the request/response
/// split and the same-ID ordering rules end to end.
#pragma once

#include "noc/node_id.hpp"

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace realm::noc {

/// Mesh port directions. Node ids are row-major: node = row * cols + col;
/// kSouth increases the row, kEast increases the column.
enum class MeshDir : std::uint8_t { kNorth = 0, kEast = 1, kSouth = 2, kWest = 3 };
inline constexpr std::size_t kMeshDirs = 4;

[[nodiscard]] constexpr MeshDir opposite(MeshDir d) noexcept {
    return static_cast<MeshDir>((static_cast<std::uint8_t>(d) + 2) % kMeshDirs);
}

[[nodiscard]] constexpr const char* to_string(MeshDir d) noexcept {
    switch (d) {
    case MeshDir::kNorth: return "N";
    case MeshDir::kEast: return "E";
    case MeshDir::kSouth: return "S";
    case MeshDir::kWest: return "W";
    }
    return "?";
}

/// The routing function of a 2D mesh (see the file comment for the
/// per-policy deadlock-freedom arguments).
enum class RoutingPolicy : std::uint8_t {
    kXY,        ///< deterministic dimension order, column first
    kYX,        ///< deterministic dimension order, row first
    kO1Turn,    ///< per-worm random XY/YX, one VC per class
    kWestFirst, ///< turn-model adaptive, west hops first
};

inline constexpr std::size_t kNumRoutingPolicies = 4;

/// Every policy, in canonical order — the single list the sweeps, the
/// fabric-comparison example, and the invariant tests iterate, so a new
/// policy cannot silently drop out of any of them.
inline constexpr std::array<RoutingPolicy, kNumRoutingPolicies> kAllRoutingPolicies{
    RoutingPolicy::kXY, RoutingPolicy::kYX, RoutingPolicy::kO1Turn,
    RoutingPolicy::kWestFirst};

[[nodiscard]] constexpr const char* to_string(RoutingPolicy p) noexcept {
    switch (p) {
    case RoutingPolicy::kXY: return "xy";
    case RoutingPolicy::kYX: return "yx";
    case RoutingPolicy::kO1Turn: return "o1turn";
    case RoutingPolicy::kWestFirst: return "west-first";
    }
    return "?";
}

/// Parses a policy name (`xy` / `yx` / `o1turn` / `west-first`); nullopt on
/// anything else. Shared by the CLI `--routing` flag and the DoS-matrix
/// cell-label parser.
[[nodiscard]] std::optional<RoutingPolicy> parse_routing_policy(std::string_view s);

/// Virtual channels per mesh link under `p`: 2 for `kO1Turn` (one per route
/// class — the classic deadlock-freedom requirement), 1 otherwise.
[[nodiscard]] constexpr std::uint8_t route_num_vcs(RoutingPolicy p) noexcept {
    return p == RoutingPolicy::kO1Turn ? 2 : 1;
}

/// Route class (== VC) of a worm at injection. For `kO1Turn` a pseudo-random
/// bit derived *only* from the packet identity (src, dest, per-pair seq) —
/// no global RNG state, so replays and `--resume` re-runs are bit-for-bit
/// deterministic. Every other policy uses class 0.
[[nodiscard]] std::uint8_t route_class(RoutingPolicy p, NodeId src,
                                       NodeId dest, std::uint16_t seq) noexcept;

/// Next hop of the XY dimension-ordered route from `cur` toward `dest` on a
/// `cols`-wide row-major mesh: correct the column first (E/W), then the row
/// (S/N). Returns nullopt when `cur == dest` (eject locally). Pure function
/// of (cols, cur, dest) — paths are deterministic by construction, which the
/// routing-invariant tests assert hop by hop.
[[nodiscard]] std::optional<MeshDir> xy_next_hop(NodeId cols, NodeId cur,
                                                 NodeId dest) noexcept;

/// The YX mirror: correct the row first (S/N), then the column (E/W).
[[nodiscard]] std::optional<MeshDir> yx_next_hop(NodeId cols, NodeId cur,
                                                 NodeId dest) noexcept;

/// The permitted next hops of one packet at one router: empty means "eject
/// here", one entry is a deterministic route, two entries (west-first only)
/// are an adaptive choice the router resolves by per-VC link occupancy.
/// Every permitted hop is productive (reduces Manhattan distance), so all
/// four policies are minimal and can never take a 180-degree turn.
struct HopSet {
    std::array<MeshDir, 2> dir{};
    std::uint8_t count = 0;

    void add(MeshDir d) noexcept { dir[count++] = d; }
    [[nodiscard]] bool empty() const noexcept { return count == 0; }
};

/// Permitted hops of a packet of route class `vc_class` at node `cur`
/// heading for `dest` under policy `p`. Pure function — the invariant tests
/// enumerate it exhaustively.
[[nodiscard]] HopSet permitted_hops(RoutingPolicy p, NodeId cols,
                                    NodeId cur, NodeId dest,
                                    std::uint8_t vc_class) noexcept;

} // namespace realm::noc
