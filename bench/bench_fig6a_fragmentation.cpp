/// \file
/// \brief Reproduces **Figure 6a**: performance of Susan on the core under
///        DSA-DMA contention at varying transfer fragmentation (in beats).
///
/// Paper reference points (FPGA, CVA6 + Cheshire):
///   - single-source: core accesses served in at most 8 cycles;
///   - without reservation (= fragmentation 256): < 0.7 % of single-source
///     performance, every access delayed by >= 264 cycles;
///   - fragmentation 1: 68.2 % of single-source performance, access latency
///     below 10 cycles (one cycle from the REALM unit, one from residual
///     interference).
#include "fig6_common.hpp"

#include <cstdio>
#include <vector>

int main() {
    using namespace realm::bench;
    const auto susan = fig6_susan();

    std::puts("== Figure 6a: Susan under DSA-DMA contention vs fragmentation size ==");
    std::puts("(DMA: double-buffered 256-beat bursts LLC<->SPM, equal unconstrained");
    std::puts(" budgets, very large period -- isolating the fragmentation effect)\n");

    // Baseline: single source (no DMA traffic at all).
    Fig6Config base_cfg;
    base_cfg.dma_active = false;
    const Fig6Result base = run_fig6_point(base_cfg, susan);

    std::printf("%-18s %12s %8s %9s %9s %9s %10s\n", "configuration", "cycles", "perf%",
                "lat_mean", "lat_max", "lat_min", "dma[B/cyc]");
    std::printf("%-18s %12llu %8.1f %9.2f %9llu %9llu %10s\n", "single-source",
                static_cast<unsigned long long>(base.run_cycles), 100.0,
                base.load_lat_mean, static_cast<unsigned long long>(base.load_lat_max),
                static_cast<unsigned long long>(base.load_lat_min), "-");

    const std::vector<std::uint32_t> fragments = {256, 128, 64, 32, 16, 8, 4, 2, 1};
    for (const std::uint32_t frag : fragments) {
        Fig6Config cfg;
        cfg.dma_fragment = frag;
        const Fig6Result r = run_fig6_point(cfg, susan);
        const double perf = 100.0 * static_cast<double>(base.run_cycles) /
                            static_cast<double>(r.run_cycles);
        char label[32];
        std::snprintf(label, sizeof label, frag == 256 ? "no-reserv. (256)" : "frag %u",
                      frag);
        std::printf("%-18s %12llu %8.1f %9.2f %9llu %9llu %10.2f\n", label,
                    static_cast<unsigned long long>(r.run_cycles), perf, r.load_lat_mean,
                    static_cast<unsigned long long>(r.load_lat_max),
                    static_cast<unsigned long long>(r.load_lat_min), r.dma_read_bw);
    }

    std::puts("\npaper reference: without reservation < 0.7 % @ >= 264 cycles/access;");
    std::puts("fragmentation 1 -> 68.2 % of single-source @ < 10 cycles/access.");

    // Alternative calibration: a slower LLC descriptor pipeline (initiation
    // interval 2) lands on the paper's frag-1 *performance* figure while its
    // access latencies run higher than the paper's; see EXPERIMENTS.md for
    // the discussion of why both cannot hold simultaneously in a pure
    // blocking-load model.
    std::puts("\n-- alternative LLC calibration (descriptor interval 2) --");
    std::printf("%-18s %12s %8s %9s %9s\n", "configuration", "cycles", "perf%",
                "lat_mean", "lat_max");
    Fig6Config base2;
    base2.dma_active = false;
    base2.llc_request_interval = 2;
    const Fig6Result b2 = run_fig6_point(base2, susan);
    std::printf("%-18s %12llu %8.1f %9.2f %9llu\n", "single-source",
                static_cast<unsigned long long>(b2.run_cycles), 100.0, b2.load_lat_mean,
                static_cast<unsigned long long>(b2.load_lat_max));
    for (const std::uint32_t frag : {256U, 8U, 2U, 1U}) {
        Fig6Config cfg;
        cfg.dma_fragment = frag;
        cfg.llc_request_interval = 2;
        const Fig6Result r = run_fig6_point(cfg, susan);
        const double perf =
            100.0 * static_cast<double>(b2.run_cycles) / static_cast<double>(r.run_cycles);
        char label[32];
        std::snprintf(label, sizeof label, frag == 256 ? "no-reserv. (256)" : "frag %u",
                      frag);
        std::printf("%-18s %12llu %8.1f %9.2f %9llu\n", label,
                    static_cast<unsigned long long>(r.run_cycles), perf, r.load_lat_mean,
                    static_cast<unsigned long long>(r.load_lat_max));
    }
    return 0;
}
