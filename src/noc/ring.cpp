#include "noc/ring.hpp"

#include "sim/check.hpp"

#include <algorithm>
#include <utility>

namespace realm::noc {

NocRing::NocRing(sim::SimContext& ctx, std::string name, NodeId num_nodes,
                 ic::AddrMap node_map, std::vector<NodeId> subordinate_nodes,
                 NocFlowConfig flow)
    : flow_{flow}, sub_index_(num_nodes, -1) {
    REALM_EXPECTS(num_nodes >= 2, "a ring needs at least two nodes");
    flow_.validate();
    for (const NodeId s : subordinate_nodes) {
        REALM_EXPECTS(s < num_nodes, "subordinate node out of range");
    }
    book_ = std::make_unique<CreditBook>(num_nodes, flow_);

    // Channels and links first (plain objects, no tick order concerns).
    for (NodeId i = 0; i < num_nodes; ++i) {
        mgr_ports_.push_back(std::make_unique<axi::AxiChannel>(
            ctx, name + ".mgr" + std::to_string(i)));
        req_links_.push_back(std::make_unique<NocLink>(
            ctx, name + ".req" + std::to_string(i), flow_));
        rsp_links_.push_back(std::make_unique<NocLink>(
            ctx, name + ".rsp" + std::to_string(i), flow_));
    }
    egress_.resize(num_nodes);
    for (const NodeId s : subordinate_nodes) {
        std::vector<axi::AxiChannel*> egress_raw;
        for (NodeId src = 0; src < num_nodes; ++src) {
            egress_[s].push_back(std::make_unique<axi::AxiChannel>(
                ctx, name + ".eg" + std::to_string(s) + "_" + std::to_string(src),
                staging_depth(flow_)));
            wire_credit_returns(ctx, *egress_[s].back(), book_->req(s, src),
                                flow_);
            egress_raw.push_back(egress_[s].back().get());
        }
        sub_index_[s] = static_cast<int>(sub_ports_.size());
        sub_ports_.push_back(std::make_unique<axi::AxiChannel>(
            ctx, name + ".sub" + std::to_string(s)));
        muxes_.push_back(std::make_unique<ic::AxiMux>(ctx, name + ".mux" + std::to_string(s),
                                                      std::move(egress_raw),
                                                      *sub_ports_.back()));
    }

    // Nodes last; link i feeds node (i+1) and node i drives link i.
    for (NodeId i = 0; i < num_nodes; ++i) {
        std::vector<axi::AxiChannel*> egress_raw;
        for (const auto& ch : egress_[i]) { egress_raw.push_back(ch.get()); }
        const NodeId prev = static_cast<NodeId>((i + num_nodes - 1) % num_nodes);
        nodes_.push_back(std::make_unique<NocNode>(
            ctx, name + ".node" + std::to_string(i), i, num_nodes, node_map,
            mgr_ports_[i].get(), std::move(egress_raw), *req_links_[prev],
            *req_links_[i], *rsp_links_[prev], *rsp_links_[i], flow_, book_.get()));
    }
}

axi::AxiChannel& NocRing::subordinate_port(NodeId node) {
    REALM_EXPECTS(node < sub_index_.size() && sub_index_[node] >= 0,
                  "node hosts no subordinate");
    return *sub_ports_[static_cast<std::size_t>(sub_index_[node])];
}

std::uint64_t NocRing::total_forwarded() const noexcept {
    std::uint64_t total = 0;
    for (const auto& n : nodes_) { total += n->forwarded(); }
    return total;
}

std::uint64_t NocRing::total_ring_stalls() const noexcept {
    std::uint64_t total = 0;
    for (const auto& n : nodes_) { total += n->ring_stall_cycles(); }
    return total;
}

std::uint64_t NocRing::total_mux_w_stalls() const noexcept {
    std::uint64_t total = 0;
    for (const auto& m : muxes_) { total += m->w_stall_cycles(); }
    return total;
}

void NocRing::check_flow_invariants() const {
    book_->check_conserved();
    for (const auto& link : req_links_) { link->check_bounded(); }
    for (const auto& link : rsp_links_) { link->check_bounded(); }
    for (std::size_t s = 0; s < egress_.size(); ++s) {
        for (std::size_t src = 0; src < egress_[s].size(); ++src) {
            // The ring is single-path, so the NI reorder stash is always
            // empty; pass it anyway to keep the invariant honest.
            check_staging_invariants(
                *egress_[s][src],
                book_->req(static_cast<NodeId>(s), static_cast<NodeId>(src)),
                flow_,
                nodes_[s]->ni().stashed_request_flits(
                    static_cast<NodeId>(src)));
        }
    }
}

} // namespace realm::noc
