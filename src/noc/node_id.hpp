/// \file
/// \brief NoC node identifier, shared by packets, routing, and fabrics.
#pragma once

#include <cstdint>

namespace realm::noc {

/// Node index on the fabric (row-major for meshes). 16 bits: the sharded
/// kernel targets 32x32 meshes (1024 nodes), past the old 8-bit ceiling.
using NodeId = std::uint16_t;

} // namespace realm::noc
