/// \file
/// \brief Cheshire-like SoC assembly (Figure 5 of the paper).
///
/// Managers: a HWRoT-style config master, one core port (attach a
/// `traffic::CoreModel`), and N DSA DMA ports (attach `traffic::DmaEngine`s)
/// — the core and DSA ports each sit behind a REALM unit when
/// `realm_present`. Subordinates: the LLC (fronting DRAM), a scratchpad
/// SPM, the guarded REALM configuration space, and a DECERR default
/// subordinate, all on one burst-granular round-robin AXI4 crossbar.
#pragma once

#include "axi/channel.hpp"
#include "cfg/axi_to_reg.hpp"
#include "cfg/bus_guard.hpp"
#include "cfg/realm_regfile.hpp"
#include "ic/xbar.hpp"
#include "mem/axi_mem_slave.hpp"
#include "mem/backend.hpp"
#include "mem/error_slave.hpp"
#include "mem/llc.hpp"
#include "realm/realm_unit.hpp"
#include "soc/config_master.hpp"

#include "sim/context.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace realm::soc {

struct SocConfig {
    std::uint32_t bus_bytes = 8;
    std::uint32_t num_dsa = 1;        ///< DSA DMA manager ports
    bool realm_present = true;        ///< wire REALM units on core + DSA ports

    /// \name Memory map
    ///@{
    axi::Addr cfg_base = 0x0200'0000;
    std::uint64_t cfg_size = 0x1'0000;
    axi::Addr spm_base = 0x7000'0000;
    std::uint64_t spm_size = 0x8'0000;     ///< 512 KiB scratchpad
    axi::Addr dram_base = 0x8000'0000;
    std::uint64_t dram_size = 0x1000'0000; ///< 256 MiB behind the LLC
    ///@}

    mem::LlcConfig llc;
    mem::DramTiming dram;
    rt::RealmUnitConfig realm; ///< template applied to every REALM unit
    /// Crossbar arbitration policy (kQosPriority gives the related-work
    /// baseline; see `bench_baseline_qos`).
    ic::XbarArbitration arbitration = ic::XbarArbitration::kRoundRobin;
};

class CheshireSoc {
public:
    CheshireSoc(sim::SimContext& ctx, SocConfig config = {});

    CheshireSoc(const CheshireSoc&) = delete;
    CheshireSoc& operator=(const CheshireSoc&) = delete;

    /// \name Manager-side attachment points
    ///@{
    /// Channel the core model drives (upstream of its REALM unit).
    [[nodiscard]] axi::AxiChannel& core_port() noexcept { return *core_port_; }
    /// Channel DSA DMA engine `i` drives.
    [[nodiscard]] axi::AxiChannel& dsa_port(std::size_t i) { return *dsa_ports_.at(i); }
    [[nodiscard]] ConfigMaster& boot_master() noexcept { return *boot_master_; }
    ///@}

    /// \name REALM units (only when `realm_present`)
    ///@{
    [[nodiscard]] bool realm_present() const noexcept { return cfg_.realm_present; }
    [[nodiscard]] rt::RealmUnit& core_realm() { return *realm_units_.at(0); }
    [[nodiscard]] rt::RealmUnit& dsa_realm(std::size_t i) { return *realm_units_.at(1 + i); }
    [[nodiscard]] std::size_t num_realm_units() const noexcept { return realm_units_.size(); }
    ///@}

    /// \name Subordinates & infrastructure
    ///@{
    [[nodiscard]] mem::Llc& llc() noexcept { return *llc_; }
    [[nodiscard]] mem::SparseMemory& dram_image() noexcept {
        return static_cast<mem::DramBackend&>(dram_slave_->backend()).store();
    }
    [[nodiscard]] mem::SparseMemory& spm_image() noexcept {
        return static_cast<mem::SramBackend&>(spm_slave_->backend()).store();
    }
    [[nodiscard]] cfg::BusGuard& guard() noexcept { return *guard_; }
    [[nodiscard]] cfg::RealmRegFile& regfile() noexcept { return *regfile_; }
    [[nodiscard]] ic::AxiXbar& xbar() noexcept { return *xbar_; }
    [[nodiscard]] mem::ErrorSlave& error_slave() noexcept { return *err_slave_; }
    [[nodiscard]] const SocConfig& config() const noexcept { return cfg_; }
    ///@}

    /// Pre-loads the LLC with DRAM contents over [base, base+bytes): the
    /// paper's hot-LLC precondition.
    void warm_llc(axi::Addr base, std::uint64_t bytes);

    /// Queues the boot-flow configuration script on the boot master: claim
    /// the guard, then program fragmentation + one region (covering the LLC
    /// address span) with `budget`/`period` on every unit.
    struct BootRegionPlan {
        std::uint64_t budget_bytes = 0;
        std::uint64_t period_cycles = 0;
        std::uint32_t fragment_beats = axi::kMaxBurstBeats;
    };
    void queue_boot_script(const std::vector<BootRegionPlan>& per_unit_plans);

private:
    sim::SimContext* ctx_;
    SocConfig cfg_;

    // Channels (construction order fixes component evaluation order; see
    // RealmUnit's one-cycle-latency contract).
    std::unique_ptr<axi::AxiChannel> core_port_;
    std::vector<std::unique_ptr<axi::AxiChannel>> dsa_ports_;
    std::unique_ptr<axi::AxiChannel> hwrot_port_;
    std::vector<std::unique_ptr<axi::AxiChannel>> realm_down_; ///< realm -> xbar
    std::unique_ptr<axi::AxiChannel> llc_up_;   ///< xbar -> LLC
    std::unique_ptr<axi::AxiChannel> llc_down_; ///< LLC -> DRAM slave
    std::unique_ptr<axi::AxiChannel> spm_ch_;
    std::unique_ptr<axi::AxiChannel> cfg_ch_;
    std::unique_ptr<axi::AxiChannel> err_ch_;

    // Components.
    std::unique_ptr<ConfigMaster> boot_master_;
    std::unique_ptr<mem::Llc> llc_;
    std::unique_ptr<mem::AxiMemSlave> dram_slave_;
    std::unique_ptr<mem::AxiMemSlave> spm_slave_;
    std::unique_ptr<cfg::RealmRegFile> regfile_;
    std::unique_ptr<cfg::BusGuard> guard_;
    std::unique_ptr<cfg::AxiToReg> cfg_adapter_;
    std::unique_ptr<mem::ErrorSlave> err_slave_;
    std::unique_ptr<ic::AxiXbar> xbar_;
    std::vector<std::unique_ptr<rt::RealmUnit>> realm_units_;
};

} // namespace realm::soc
