/// \file
/// \brief Cycle-driven simulation context: clock, component registry, run loop.
#pragma once

#include "sim/types.hpp"

#include <functional>
#include <string>
#include <vector>

namespace realm::sim {

class Component;

/// Severity levels for the cycle-stamped simulation log.
enum class LogLevel { kNone = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Owns simulation time and the (non-owning) list of components to evaluate
/// each cycle.
///
/// Timing contract: during `step()` every component observes `now() == N`;
/// values pushed into a `Link` at cycle N become visible to consumers at
/// N+1 (registered semantics). After all components ticked, time advances.
///
/// Components register themselves on construction (in construction order,
/// which fixes the intra-cycle evaluation order and makes runs fully
/// deterministic) and must outlive no longer than the context.
class SimContext {
public:
    SimContext() = default;
    SimContext(const SimContext&) = delete;
    SimContext& operator=(const SimContext&) = delete;

    /// Current simulation time in cycles.
    [[nodiscard]] Cycle now() const noexcept { return now_; }

    /// Adds a component to the per-cycle evaluation list.
    void register_component(Component& c);

    /// Removes a component (called from Component's destructor).
    void unregister_component(Component& c) noexcept;

    /// Resets simulation time to zero and calls `reset()` on every component.
    void reset();

    /// Advances the simulation by exactly one cycle.
    void step();

    /// Advances the simulation by `cycles` cycles.
    void run(Cycle cycles);

    /// Runs until `done()` returns true or `max_cycles` elapsed.
    /// \returns true iff the predicate fired (i.e. no timeout).
    bool run_until(const std::function<bool()>& done, Cycle max_cycles);

    /// \name Logging
    ///@{
    void set_log_level(LogLevel level) noexcept { log_level_ = level; }
    [[nodiscard]] LogLevel log_level() const noexcept { return log_level_; }
    [[nodiscard]] bool log_enabled(LogLevel level) const noexcept {
        return static_cast<int>(level) <= static_cast<int>(log_level_);
    }
    /// Writes a cycle-stamped line to stderr if `level` is enabled.
    void log(LogLevel level, const std::string& who, const std::string& message) const;
    ///@}

    /// Number of registered components (introspection for tests).
    [[nodiscard]] std::size_t component_count() const noexcept { return components_.size(); }

private:
    Cycle now_ = 0;
    std::vector<Component*> components_;
    LogLevel log_level_ = LogLevel::kNone;
};

} // namespace realm::sim
