/// \file
/// \brief Partitioning LLC bandwidth among three managers with per-region
///        budgets, all programmed through the guarded register file exactly
///        as a hypervisor would do it.
///
/// Two DSA DMAs and a core share the LLC. The hypervisor (boot master)
/// grants 50 % / 25 % / 12.5 % of the LLC bandwidth via budgets on a
/// 2000-cycle period and the measured per-manager bandwidth follows the
/// programmed shares. It then reprograms the shares at runtime and hands
/// the configuration space over to another manager (TID handover).
#include "cfg/realm_regfile.hpp"
#include "soc/cheshire_soc.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/workload.hpp"

#include <cstdio>

using namespace realm;

namespace {
constexpr axi::Addr kDram = 0x8000'0000;
constexpr axi::Addr kSpm = 0x7000'0000;
} // namespace

int main() {
    sim::SimContext ctx;
    soc::SocConfig scfg;
    scfg.num_dsa = 2;
    soc::CheshireSoc soc{ctx, scfg};
    for (axi::Addr a = 0; a < 0x40000; a += 8) {
        soc.dram_image().write_u64(kDram + a, a);
    }
    soc.warm_llc(kDram, 0x40000);

    // Shares of the 8 B/cycle LLC read bandwidth on a 2000-cycle period:
    //   core 50 % = 8000 B, dsa0 25 % = 4000 B, dsa1 12.5 % = 2000 B.
    constexpr std::uint64_t kPeriod = 2000;
    soc.queue_boot_script({
        soc::CheshireSoc::BootRegionPlan{8000, kPeriod, 256},
        soc::CheshireSoc::BootRegionPlan{4000, kPeriod, 16},
        soc::CheshireSoc::BootRegionPlan{2000, kPeriod, 16},
    });
    ctx.run_until([&] { return soc.boot_master().done(); }, 10000);
    std::printf("programmed shares: core 4.0, dsa0 2.0, dsa1 1.0 B/cycle (period %llu)\n\n",
                static_cast<unsigned long long>(kPeriod));

    // Saturating traffic from everyone.
    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 64;
    traffic::DmaEngine dma0{ctx, "dsa0", soc.dsa_port(0), dcfg};
    traffic::DmaEngine dma1{ctx, "dsa1", soc.dsa_port(1), dcfg};
    dma0.push_job(traffic::DmaJob{kDram + 0x10000, kSpm, 0x4000, true});
    dma1.push_job(traffic::DmaJob{kDram + 0x20000, kSpm + 0x10000, 0x4000, true});
    traffic::StreamWorkload wl{{.base = kDram,
                                .bytes = 0x8000,
                                .op_bytes = 64, // the core streams cache lines here
                                .stride_bytes = 64,
                                .repeat = 1000}};
    traffic::CoreModel core{ctx, "core", soc.core_port(), wl};

    const auto measure = [&](sim::Cycle horizon) {
        const std::uint64_t c0 = soc.core_realm().mr().region(0).bytes_total;
        const std::uint64_t d0 = soc.dsa_realm(0).mr().region(0).bytes_total;
        const std::uint64_t d1 = soc.dsa_realm(1).mr().region(0).bytes_total;
        ctx.run(horizon);
        std::printf("  core %.2f  dsa0 %.2f  dsa1 %.2f  [B/cycle at the LLC]\n",
                    static_cast<double>(soc.core_realm().mr().region(0).bytes_total - c0) /
                        static_cast<double>(horizon),
                    static_cast<double>(soc.dsa_realm(0).mr().region(0).bytes_total - d0) /
                        static_cast<double>(horizon),
                    static_cast<double>(soc.dsa_realm(1).mr().region(0).bytes_total - d1) /
                        static_cast<double>(horizon));
    };

    std::puts("measured under saturation (50/25/12.5 split):");
    measure(40000);

    // Runtime re-partition through the register file: boost dsa1 to 37.5 %.
    std::puts("\nhypervisor re-partitions: dsa1 -> 6000 B/period (37.5 %)");
    using RF = cfg::RealmRegFile;
    soc.boot_master().push_write(
        soc.config().cfg_base + RF::region_reg(2, 0, RF::kBudgetLo), 6000);
    ctx.run_until([&] { return soc.boot_master().done(); }, 10000);
    measure(40000);

    // Handover: pass config ownership to the core (its bus-level TID).
    // The crossbar widens manager IDs as id*num_mgrs + port; the core is
    // manager port 1 of 4 and the core model issues writes with ID 0.
    const axi::IdT core_bus_tid = 0 * 4 + 1;
    std::printf("\nhandover of the config space to the core (bus TID %u)\n", core_bus_tid);
    soc.boot_master().push_write(soc.config().cfg_base + cfg::BusGuard::kGuardOffset,
                                 core_bus_tid);
    ctx.run_until([&] { return soc.boot_master().done(); }, 10000);
    std::printf("guard owner is now 0x%X; boot master accesses would be rejected\n",
                soc.guard().owner());
    soc.boot_master().push_read(soc.config().cfg_base + RF::kNumUnitsOffset,
                                /*expect_error=*/true);
    ctx.run_until([&] { return soc.boot_master().done(); }, 10000);
    std::printf("boot master read after handover: %s\n",
                soc.boot_master().results().back().error ? "rejected (as expected)"
                                                         : "unexpectedly allowed");
    return 0;
}
