/// \file
/// \brief Ablation of the **write buffer** (Section III-A, Figure 3b): a
///        malicious manager reserves write bandwidth and stalls its data —
///        the Cut&Forward [14] denial-of-service vector.
///
/// Attacker: a DMA in `reserve_before_data` mode that trickles one W beat
/// every 64 cycles. Victim: a core issuing stores to the same subordinate.
/// Without the write buffer the attacker's reserved-but-starved bursts
/// stall the victim's writes behind them; with the write buffer, AWs leave
/// the REALM unit only with their data complete, so the interconnect is
/// never starved.
#include "soc/cheshire_soc.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/workload.hpp"

#include <cstdio>

namespace {

constexpr realm::axi::Addr kDram = 0x8000'0000;

struct Outcome {
    double store_lat_mean = 0;
    realm::sim::Cycle store_lat_max = 0;
    std::uint64_t victim_cycles = 0;
    std::uint64_t xbar_w_stalls = 0;
    std::uint64_t attacker_cut_through = 0;
};

Outcome run(bool write_buffer_enabled) {
    using namespace realm;
    sim::SimContext ctx;
    soc::SocConfig cfg;
    cfg.realm.write_buffer_enabled = write_buffer_enabled;
    cfg.realm.write_buffer_depth = 16;
    soc::CheshireSoc soc{ctx, cfg};
    for (axi::Addr a = 0; a < 0x10000; a += 8) {
        soc.dram_image().write_u64(kDram + a, a);
    }
    soc.warm_llc(kDram, 0x10000);

    // Attacker: cut-through AW issue + heavy W stalling, 8-beat bursts so
    // the victim repeatedly queues behind starved reservations.
    traffic::DmaConfig att;
    att.burst_beats = 8;
    att.reserve_before_data = true;
    att.w_stall_cycles = 64;
    traffic::DmaEngine attacker{ctx, "attacker", soc.dsa_port(0), att};
    attacker.push_job(traffic::DmaJob{kDram + 0x8000, kDram + 0xC000, 0x4000, true});
    ctx.run(500);

    // Victim: store stream to the same subordinate (write-through core).
    traffic::StreamWorkload wl{{.base = kDram,
                                .bytes = 0x2000,
                                .op_bytes = 8,
                                .stride_bytes = 8,
                                .store_ratio16 = 16}};
    traffic::CoreModel victim{ctx, "victim", soc.core_port(), wl};
    const sim::Cycle t0 = ctx.now();
    ctx.run_until([&] { return victim.done(); }, 10'000'000);

    Outcome out;
    out.store_lat_mean = victim.store_latency().mean();
    out.store_lat_max = victim.store_latency().max();
    out.victim_cycles = victim.finish_cycle() - t0;
    out.xbar_w_stalls = soc.xbar().w_stall_cycles(0);
    out.attacker_cut_through = soc.dsa_realm(0).write_buffer().cut_through_bursts();
    return out;
}

} // namespace

int main() {
    std::puts("== Ablation: write buffer vs the stalling-manager DoS attack ==");
    std::puts("(attacker reserves write bandwidth, then trickles data: 1 beat / 64 cyc)\n");

    const Outcome off = run(false);
    const Outcome on = run(true);

    std::printf("%-26s %14s %14s\n", "", "wbuf disabled", "wbuf enabled");
    std::printf("%-26s %14.1f %14.1f\n", "victim store lat (mean)", off.store_lat_mean,
                on.store_lat_mean);
    std::printf("%-26s %14llu %14llu\n", "victim store lat (max)",
                static_cast<unsigned long long>(off.store_lat_max),
                static_cast<unsigned long long>(on.store_lat_max));
    std::printf("%-26s %14llu %14llu\n", "victim run cycles",
                static_cast<unsigned long long>(off.victim_cycles),
                static_cast<unsigned long long>(on.victim_cycles));
    std::printf("%-26s %14llu %14llu\n", "xbar W-stall cycles",
                static_cast<unsigned long long>(off.xbar_w_stalls),
                static_cast<unsigned long long>(on.xbar_w_stalls));
    std::printf("%-26s %14llu %14llu\n", "attacker cut-throughs",
                static_cast<unsigned long long>(off.attacker_cut_through),
                static_cast<unsigned long long>(on.attacker_cut_through));

    const double speedup = static_cast<double>(off.victim_cycles) /
                           static_cast<double>(on.victim_cycles);
    std::printf("\nwrite buffer speeds the victim up by %.1fx and removes the\n", speedup);
    std::puts("interconnect starvation (paper: the buffer forwards AW and W only once");
    std::puts("the write data is fully contained within the buffer).");
    return speedup < 1.5 ? 1 : 0;
}
