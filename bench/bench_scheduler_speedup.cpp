/// \file
/// \brief Host-side performance of the activity-aware kernel vs tick-all on
///        an idle-heavy scenario: a short Susan burst followed by a 2M-cycle
///        quiescent tail (a core waiting for a timer, a DMA out of jobs — the
///        common shape of real-time frames, which are mostly idle).
///
/// The activity scheduler skips components that declared themselves idle
/// and fast-forwards the clock when everyone sleeps; tick-all evaluates
/// every component every cycle. Both produce bit-identical simulation
/// results (enforced by tests/test_scheduler.cpp).
#include "scenario/cli.hpp"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace realm::scenario;
    BenchOptions opts = parse_bench_args(argc, argv);
    if (opts.scheduler_forced) {
        std::fprintf(stderr,
                     "--scheduler is not applicable here: this bench runs both "
                     "kernels to compare them\n");
        return 2;
    }

    std::puts("== Scheduler: tick-all vs activity-aware on an idle-heavy scenario ==");
    std::puts("(small Susan run + finite DMA copy, then a 2M-cycle idle tail)\n");

    Sweep sweep = make_sweep("idle-tail");
    const auto results = run_with_options(opts, sweep);
    const ScenarioResult& tickall = results[0];
    const ScenarioResult& activity = results[1];

    std::printf("%-18s %14s %16s %16s %12s\n", "kernel", "wall [ms]", "ticks executed",
                "ticks skipped", "ff cycles");
    for (const ScenarioResult& r : results) {
        std::printf("%-18s %14.2f %16llu %16llu %12llu\n", r.label.c_str(),
                    r.wall_seconds * 1e3,
                    static_cast<unsigned long long>(r.ticks_executed),
                    static_cast<unsigned long long>(r.ticks_skipped),
                    static_cast<unsigned long long>(r.fast_forwarded_cycles));
    }

    const bool same_result = tickall.run_cycles == activity.run_cycles &&
                             tickall.ops == activity.ops &&
                             tickall.load_lat_mean == activity.load_lat_mean &&
                             tickall.load_lat_max == activity.load_lat_max;
    const double tick_speedup =
        static_cast<double>(tickall.ticks_executed) /
        static_cast<double>(activity.ticks_executed == 0 ? 1 : activity.ticks_executed);
    const double wall_speedup =
        tickall.wall_seconds / (activity.wall_seconds > 0 ? activity.wall_seconds : 1);
    std::printf("\nsimulation results identical: %s\n", same_result ? "yes" : "NO");
    std::printf("component evaluations avoided: %.1fx fewer; wall-clock speedup: %.1fx\n",
                tick_speedup, wall_speedup);
    // The tail is >= 2M idle cycles; anything short of a 2x win means the
    // activity kernel regressed.
    return same_result && wall_speedup > 2.0 ? 0 : 1;
}
