/// Unit and property tests for the AXI4 layer: burst math, fragmentation,
/// builders, and the protocol checker.
#include "axi/builder.hpp"
#include "axi/burst.hpp"
#include "axi/channel.hpp"
#include "axi/checker.hpp"
#include "axi/types.hpp"
#include "sim/check.hpp"
#include "sim/context.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace realm::axi {
namespace {

TEST(BurstMath, IncrBeatAddressesAlignAfterFirstBeat) {
    // Unaligned start: first beat keeps the raw address, later beats align.
    const BurstDescriptor d{0x1003, 3, 2, Burst::kIncr}; // 4 beats x 4 B
    EXPECT_EQ(beat_address(d, 0), 0x1003U);
    EXPECT_EQ(beat_address(d, 1), 0x1004U);
    EXPECT_EQ(beat_address(d, 2), 0x1008U);
    EXPECT_EQ(beat_address(d, 3), 0x100CU);
}

TEST(BurstMath, FixedBeatsRepeatAddress) {
    const BurstDescriptor d{0x2000, 7, 3, Burst::kFixed};
    for (std::uint32_t i = 0; i < d.beats(); ++i) {
        EXPECT_EQ(beat_address(d, i), 0x2000U);
    }
}

TEST(BurstMath, WrapWrapsAtAlignedBoundary) {
    // 4 beats x 8 B = 32 B window; start mid-window.
    const BurstDescriptor d{0x1010, 3, 3, Burst::kWrap};
    EXPECT_EQ(wrap_boundary(d), 0x1000U);
    EXPECT_EQ(beat_address(d, 0), 0x1010U);
    EXPECT_EQ(beat_address(d, 1), 0x1018U);
    EXPECT_EQ(beat_address(d, 2), 0x1000U); // wrapped
    EXPECT_EQ(beat_address(d, 3), 0x1008U);
}

TEST(BurstMath, Within4kDetectsCrossing) {
    EXPECT_TRUE(within_4k(BurstDescriptor{0x0FC0, 7, 3, Burst::kIncr}));  // ends at 0xFFF
    EXPECT_FALSE(within_4k(BurstDescriptor{0x0FC8, 7, 3, Burst::kIncr})); // crosses
    EXPECT_TRUE(within_4k(BurstDescriptor{0x0FFF, 0, 0, Burst::kIncr}));
}

TEST(BurstMath, LegalityRules) {
    EXPECT_TRUE(is_legal(BurstDescriptor{0x1000, 255, 3, Burst::kIncr}));
    EXPECT_FALSE(is_legal(BurstDescriptor{0x0FC8, 7, 3, Burst::kIncr})); // 4 KiB
    EXPECT_TRUE(is_legal(BurstDescriptor{0x1000, 15, 3, Burst::kWrap}));
    EXPECT_FALSE(is_legal(BurstDescriptor{0x1000, 5, 3, Burst::kWrap}));  // len not 2^n-1
    EXPECT_FALSE(is_legal(BurstDescriptor{0x1004, 15, 3, Burst::kWrap})); // unaligned
    EXPECT_TRUE(is_legal(BurstDescriptor{0x1000, 15, 3, Burst::kFixed}));
    EXPECT_FALSE(is_legal(BurstDescriptor{0x1000, 16, 3, Burst::kFixed})); // > 16 beats
}

TEST(BurstMath, FragmentabilityRules) {
    const BurstDescriptor incr{0x1000, 255, 3, Burst::kIncr};
    EXPECT_TRUE(is_fragmentable(incr, /*cache=*/0x2, /*lock=*/false));
    EXPECT_FALSE(is_fragmentable(incr, 0x2, /*lock=*/true)) << "exclusive access";
    const BurstDescriptor wrap{0x1000, 15, 3, Burst::kWrap};
    EXPECT_FALSE(is_fragmentable(wrap, 0x2, false));
    const BurstDescriptor short_nm{0x1000, 15, 3, Burst::kIncr};
    EXPECT_FALSE(is_fragmentable(short_nm, /*cache=*/0x0, false))
        << "non-modifiable <= 16 beats must pass intact";
    const BurstDescriptor long_nm{0x1000, 31, 3, Burst::kIncr};
    EXPECT_TRUE(is_fragmentable(long_nm, /*cache=*/0x0, false))
        << "non-modifiable > 16 beats may be split";
}

/// Property sweep: fragmentation preserves the exact beat address sequence.
class FragmentProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FragmentProperty, ChildrenCoverParentExactly) {
    const auto [len, granularity] = GetParam();
    const BurstDescriptor parent{0x10008, static_cast<std::uint8_t>(len), 3, Burst::kIncr};
    const auto children =
        fragment_burst(parent, static_cast<std::uint32_t>(granularity));

    // Child count matches the closed-form prediction.
    EXPECT_EQ(children.size(),
              fragment_count(parent, static_cast<std::uint32_t>(granularity)));

    // Concatenated child beats == parent beats, in order.
    std::vector<Addr> parent_beats;
    for (std::uint32_t i = 0; i < parent.beats(); ++i) {
        parent_beats.push_back(beat_address(parent, i));
    }
    std::vector<Addr> child_beats;
    for (const auto& c : children) {
        EXPECT_LE(c.beats(), static_cast<std::uint32_t>(granularity));
        EXPECT_EQ(c.size, parent.size);
        EXPECT_EQ(c.burst, Burst::kIncr);
        for (std::uint32_t i = 0; i < c.beats(); ++i) {
            child_beats.push_back(beat_address(c, i));
        }
    }
    EXPECT_EQ(child_beats, parent_beats);

    // Only the first child may be shorter than the granularity... actually
    // only the *last* child may be short.
    for (std::size_t i = 0; i + 1 < children.size(); ++i) {
        EXPECT_EQ(children[i].beats(), static_cast<std::uint32_t>(granularity))
            << "only the final child may be partial";
    }
}

INSTANTIATE_TEST_SUITE_P(
    LenGranularitySweep, FragmentProperty,
    ::testing::Combine(::testing::Values(0, 1, 7, 15, 16, 63, 127, 254, 255),
                       ::testing::Values(1, 2, 3, 4, 8, 16, 64, 256)));

TEST(MergeResp, WorstResponseWins) {
    EXPECT_EQ(merge_resp(Resp::kOkay, Resp::kOkay), Resp::kOkay);
    EXPECT_EQ(merge_resp(Resp::kOkay, Resp::kSlvErr), Resp::kSlvErr);
    EXPECT_EQ(merge_resp(Resp::kDecErr, Resp::kSlvErr), Resp::kDecErr);
    EXPECT_EQ(merge_resp(Resp::kExOkay, Resp::kExOkay), Resp::kExOkay);
    EXPECT_EQ(merge_resp(Resp::kExOkay, Resp::kOkay), Resp::kOkay);
}

TEST(Builder, MakeWriteBeatsSplitsPayload) {
    std::vector<std::uint8_t> payload(20);
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(i);
    }
    const auto beats = make_write_beats(payload, 3, 8);
    ASSERT_EQ(beats.size(), 3U);
    EXPECT_FALSE(beats[0].last);
    EXPECT_TRUE(beats[2].last);
    EXPECT_EQ(beats[0].data.bytes[0], 0);
    EXPECT_EQ(beats[1].data.bytes[0], 8);
    EXPECT_EQ(beats[2].data.bytes[3], 19);
}

TEST(Builder, SizeOfBusIsLog2) {
    EXPECT_EQ(size_of_bus(1), 0);
    EXPECT_EQ(size_of_bus(8), 3);
    EXPECT_EQ(size_of_bus(64), 6);
}

// --- Protocol checker ------------------------------------------------------

class CheckerFixture : public ::testing::Test {
protected:
    sim::SimContext ctx;
    AxiChannel up{ctx, "up"};
    AxiChannel down{ctx, "down"};
    AxiChecker checker{ctx, "chk", up, down, /*throw_on_violation=*/false};
};

TEST_F(CheckerFixture, CleanWritepasses) {
    ManagerView mgr{up};
    mgr.send_aw(make_aw(1, 0x1000, 2, 3));
    ctx.step();
    WFlit w0;
    w0.last = false;
    mgr.send_w(w0);
    ctx.step();
    WFlit w1;
    w1.last = true;
    mgr.send_w(w1);
    ctx.run(3);
    // Feed the response back.
    BFlit b;
    b.id = 1;
    down.b.push(b);
    ctx.run(3);
    EXPECT_EQ(checker.violation_count(), 0U);
    EXPECT_EQ(checker.completed_writes(), 1U);
}

TEST_F(CheckerFixture, WlastTooEarlyFlagged) {
    ManagerView mgr{up};
    mgr.send_aw(make_aw(1, 0x1000, 3, 3));
    ctx.step();
    WFlit w;
    w.last = true; // burst of 3 ends after 1 beat: violation
    mgr.send_w(w);
    ctx.run(3);
    EXPECT_GE(checker.violation_count(), 1U);
}

TEST_F(CheckerFixture, OrphanResponsesFlagged) {
    BFlit b;
    b.id = 9;
    down.b.push(b);
    RFlit r;
    r.id = 9;
    r.last = true;
    down.r.push(r);
    ctx.run(3);
    EXPECT_EQ(checker.violation_count(), 2U);
}

TEST_F(CheckerFixture, IllegalBurstFlagged) {
    ManagerView mgr{up};
    ArFlit bad = make_ar(1, 0x0FC8, 8, 3); // crosses 4 KiB
    mgr.send_ar(bad);
    ctx.run(3);
    EXPECT_GE(checker.violation_count(), 1U);
}

TEST_F(CheckerFixture, ThrowingModeRaises) {
    AxiChannel up2{ctx, "up2"};
    AxiChannel down2{ctx, "down2"};
    AxiChecker strict{ctx, "strict", up2, down2, /*throw_on_violation=*/true};
    BFlit b;
    b.id = 3;
    down2.b.push(b);
    EXPECT_THROW(ctx.run(3), sim::ContractViolation);
}

} // namespace
} // namespace realm::axi
