#include "realm/realm_unit.hpp"

#include "sim/check.hpp"

#include <utility>

namespace realm::rt {

RealmUnit::RealmUnit(sim::SimContext& ctx, std::string name, axi::AxiChannel& upstream,
                     axi::AxiChannel& downstream, RealmUnitConfig config)
    : Component{ctx, std::move(name)},
      up_{upstream},
      down_{downstream},
      cfg_{config},
      splitter_{config.fragment_beats, config.max_pending},
      wbuf_{config.write_buffer_depth, config.write_buffer_enabled},
      mr_{config.num_regions} {
    mr_.set_throttle_enabled(config.throttle_enabled);
    upstream.wake_subordinate_on_request(*this);
    downstream.wake_manager_on_response(*this);
}

void RealmUnit::reset() {
    splitter_.reset();
    wbuf_.reset();
    iso_.reset();
    mr_.reset(now());
    pending_fragmentation_.reset();
    pending_enabled_.reset();
    read_meta_.clear();
    write_meta_.clear();
    isolation_stalls_ = 0;
    throttle_stalls_ = 0;
    capacity_stalls_ = 0;
    reads_accepted_ = 0;
    writes_accepted_ = 0;
}

RealmState RealmUnit::state() const noexcept {
    if (!cfg_.enabled) { return RealmState::kBypass; }
    if (iso_.cause_active(IsolationCause::kUser)) {
        return iso_.outstanding() > 0 ? RealmState::kDraining : RealmState::kIsolatedUser;
    }
    if (iso_.cause_active(IsolationCause::kReconfig)) { return RealmState::kDraining; }
    if (iso_.cause_active(IsolationCause::kBudget)) { return RealmState::kIsolatedBudget; }
    return RealmState::kReady;
}

bool RealmUnit::set_fragmentation(std::uint32_t beats) {
    REALM_EXPECTS(beats >= 1 && beats <= axi::kMaxBurstBeats,
                  "fragmentation out of [1,256]");
    wake();
    if (iso_.outstanding() == 0 && wbuf_.empty()) {
        splitter_.set_granularity(beats);
        cfg_.fragment_beats = beats;
        return true;
    }
    // Intrusive while busy: isolate, drain, then apply (paper Section III-A).
    pending_fragmentation_ = beats;
    iso_.raise(IsolationCause::kReconfig);
    return false;
}

bool RealmUnit::set_enabled(bool enabled) {
    wake();
    if (enabled == cfg_.enabled) { return true; }
    if (iso_.outstanding() == 0 && wbuf_.empty()) {
        cfg_.enabled = enabled;
        return true;
    }
    pending_enabled_ = enabled;
    iso_.raise(IsolationCause::kReconfig);
    return false;
}

void RealmUnit::set_region(std::uint32_t index, const RegionConfig& region) {
    mr_.configure_region(index, region, now());
    wake(); // a fresh period/budget changes the unit's next timed event
}

void RealmUnit::set_user_isolation(bool isolate) {
    wake();
    if (isolate) {
        iso_.raise(IsolationCause::kUser);
    } else {
        iso_.clear(IsolationCause::kUser);
    }
}

void RealmUnit::apply_pending_config() {
    if (!pending_fragmentation_ && !pending_enabled_) { return; }
    if (iso_.outstanding() != 0 || !wbuf_.empty()) { return; }
    if (pending_fragmentation_) {
        splitter_.set_granularity(*pending_fragmentation_);
        cfg_.fragment_beats = *pending_fragmentation_;
        pending_fragmentation_.reset();
    }
    if (pending_enabled_) {
        cfg_.enabled = *pending_enabled_;
        pending_enabled_.reset();
    }
    iso_.clear(IsolationCause::kReconfig);
}

void RealmUnit::update_budget_isolation() {
    if (mr_.budget_exhausted()) {
        iso_.raise(IsolationCause::kBudget);
    } else {
        iso_.clear(IsolationCause::kBudget);
    }
}

void RealmUnit::bypass_tick() {
    if (up_.has_aw() && down_.can_send_aw()) { down_.send_aw(up_.recv_aw()); }
    if (up_.has_w() && down_.can_send_w()) { down_.send_w(up_.recv_w()); }
    if (up_.has_ar() && down_.can_send_ar()) { down_.send_ar(up_.recv_ar()); }
    if (down_.has_b() && up_.can_send_b()) { up_.send_b(down_.recv_b()); }
    if (down_.has_r() && up_.can_send_r()) { up_.send_r(down_.recv_r()); }
}

void RealmUnit::process_responses() {
    if (down_.has_b() && up_.can_send_b()) {
        const axi::BFlit child = down_.recv_b();
        if (const auto parent = splitter_.process_b(child)) {
            auto it = write_meta_.find(parent->id);
            REALM_ENSURES(it != write_meta_.end() && !it->second.empty(),
                          name() + ": B completion with no metadata");
            const TxnMeta meta = it->second.front();
            it->second.pop_front();
            if (it->second.empty()) { write_meta_.erase(it); }
            mr_.record_completion(meta.region, now() - meta.accepted_at, /*is_write=*/true);
            iso_.on_write_completed();
            up_.send_b(*parent);
        }
    }
    if (down_.has_r() && up_.can_send_r()) {
        const axi::RFlit beat = down_.recv_r();
        const auto processed = splitter_.process_r(beat);
        if (processed.parent_completed) {
            auto it = read_meta_.find(beat.id);
            REALM_ENSURES(it != read_meta_.end() && !it->second.empty(),
                          name() + ": R completion with no metadata");
            const TxnMeta meta = it->second.front();
            it->second.pop_front();
            if (it->second.empty()) { read_meta_.erase(it); }
            mr_.record_completion(meta.region, now() - meta.accepted_at, /*is_write=*/false);
            iso_.on_read_completed();
        }
        up_.send_r(processed.flit);
    }
}

void RealmUnit::emit_requests() {
    if (splitter_.has_child_ar() && down_.can_send_ar()) {
        down_.send_ar(splitter_.pop_child_ar());
    }
    if (wbuf_.has_aw_to_send() && down_.can_send_aw()) { down_.send_aw(wbuf_.pop_aw()); }
    if (wbuf_.has_w_to_send() && down_.can_send_w()) { down_.send_w(wbuf_.pop_w()); }
}

void RealmUnit::accept_requests() {
    // Count at most one isolated-stall per cycle even if both AR and AW wait.
    if (!iso_.may_accept() && (up_.has_ar() || up_.has_aw())) {
        ++isolation_stalls_;
        mr_.note_isolated_cycle();
    }
    // AR path.
    if (up_.has_ar()) {
        if (!iso_.may_accept()) {
            // counted above
        } else if (iso_.outstanding() >= mr_.allowed_outstanding(cfg_.max_pending)) {
            ++throttle_stalls_;
        } else if (!splitter_.can_accept_read()) {
            ++capacity_stalls_;
        } else {
            const axi::ArFlit f = up_.recv_ar();
            const auto region = mr_.region_of(f.addr);
            mr_.charge(f.addr, f.descriptor().total_bytes());
            splitter_.accept_read(f);
            read_meta_[f.id].push_back(TxnMeta{now(), region});
            iso_.on_read_accepted();
            ++reads_accepted_;
        }
    }
    // AW path.
    if (up_.has_aw()) {
        if (!iso_.may_accept()) {
            // counted above
        } else if (iso_.outstanding() >= mr_.allowed_outstanding(cfg_.max_pending)) {
            ++throttle_stalls_;
        } else if (!splitter_.can_accept_write()) {
            ++capacity_stalls_;
        } else {
            const axi::AwFlit f = up_.recv_aw();
            const auto region = mr_.region_of(f.addr);
            mr_.charge(f.addr, f.descriptor().total_bytes());
            const auto children = splitter_.accept_write(f);
            wbuf_.queue_children(f, children);
            write_meta_[f.id].push_back(TxnMeta{now(), region});
            iso_.on_write_accepted();
            ++writes_accepted_;
        }
    }
    // W data follows accepted AWs regardless of isolation state (outstanding
    // transactions are allowed to complete).
    if (up_.has_w() && wbuf_.can_accept_beat()) { wbuf_.accept_beat(up_.recv_w()); }
}

void RealmUnit::tick() {
    apply_pending_config();
    if (!cfg_.enabled) {
        bypass_tick();
        update_activity();
        return;
    }
    mr_.tick(now());
    process_responses();
    update_budget_isolation();
    // Accept before emit so a request admitted this cycle leaves this cycle:
    // the unit then adds exactly one cycle (its ingress register).
    accept_requests();
    emit_requests();
    update_activity();
}

void RealmUnit::update_activity() {
    // Flits on the upstream request side or downstream response side always
    // demand evaluation (acceptance, forwarding, isolation-stall counting).
    if (!up_.channel().requests_empty() || !down_.channel().responses_empty()) { return; }
    if (!cfg_.enabled) {
        idle_forever(); // bypass over empty channels is a pure no-op
        return;
    }
    // Un-emitted child requests are backpressured downstream; pending
    // intrusive reconfiguration polls the drain condition each cycle.
    if (pending_fragmentation_ || pending_enabled_) { return; }
    if (splitter_.has_child_ar() || wbuf_.has_aw_to_send() || wbuf_.has_w_to_send()) {
        return;
    }
    // A budget state change from this cycle's charges is applied by
    // update_budget_isolation() on the *next* tick — not yet a no-op.
    if (mr_.budget_exhausted() != iso_.cause_active(IsolationCause::kBudget)) { return; }
    // The only remaining timed event is the M&R credit replenishment. Never
    // sleep past the earliest period boundary, so `period_start` advances
    // exactly as it would under tick-all (one boundary per evaluation).
    idle_until(mr_.next_replenish_cycle());
}

} // namespace realm::rt
