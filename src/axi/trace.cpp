#include "axi/trace.hpp"

#include <ostream>
#include <utility>

namespace realm::axi {

AxiTracer::AxiTracer(sim::SimContext& ctx, std::string name, AxiChannel& upstream,
                     AxiChannel& downstream, std::size_t capacity)
    : Component{ctx, std::move(name)}, up_{upstream}, down_{downstream},
      capacity_{capacity} {
    records_.reserve(capacity_ < 4096 ? capacity_ : 4096);
    upstream.wake_subordinate_on_request(*this);
    downstream.wake_manager_on_response(*this);
}

void AxiTracer::reset() {
    records_.clear();
    total_ = 0;
    dropped_ = 0;
}

void AxiTracer::record(TraceRecord r) {
    ++total_;
    if (records_.size() >= capacity_) {
        // Ring-buffer semantics without memmove: drop the oldest half once
        // full (keeps the tail, which is what post-mortem debugging wants).
        dropped_ += records_.size() / 2;
        records_.erase(records_.begin(),
                       records_.begin() + static_cast<std::ptrdiff_t>(records_.size() / 2));
    }
    records_.push_back(r);
}

void AxiTracer::tick() {
    if (up_.has_aw() && down_.can_send_aw()) {
        const AwFlit f = up_.recv_aw();
        record(TraceRecord{now(), TraceRecord::Channel::kAw, f.id, f.addr, f.len, false,
                           Resp::kOkay});
        down_.send_aw(f);
    }
    if (up_.has_w() && down_.can_send_w()) {
        const WFlit f = up_.recv_w();
        record(TraceRecord{now(), TraceRecord::Channel::kW, 0, 0, 0, f.last, Resp::kOkay});
        down_.send_w(f);
    }
    if (up_.has_ar() && down_.can_send_ar()) {
        const ArFlit f = up_.recv_ar();
        record(TraceRecord{now(), TraceRecord::Channel::kAr, f.id, f.addr, f.len, false,
                           Resp::kOkay});
        down_.send_ar(f);
    }
    if (down_.channel().b.can_pop() && up_.channel().b.can_push()) {
        const BFlit f = down_.channel().b.pop();
        record(TraceRecord{now(), TraceRecord::Channel::kB, f.id, 0, 0, false, f.resp});
        up_.channel().b.push(f);
    }
    if (down_.channel().r.can_pop() && up_.channel().r.can_push()) {
        const RFlit f = down_.channel().r.pop();
        record(TraceRecord{now(), TraceRecord::Channel::kR, f.id, 0, 0, f.last, f.resp});
        up_.channel().r.push(f);
    }
    update_activity();
}

void AxiTracer::update_activity() {
    // Same conservative contract as the latency probe: only buffered flits
    // create work, and the push hooks wake us; a held flit (backpressure)
    // forbids sleeping because draining raises no wake.
    if (!up_.channel().requests_empty()) { return; }
    if (!down_.channel().responses_empty()) { return; }
    idle_forever();
}

void AxiTracer::write_csv(std::ostream& os) const {
    os << "cycle,channel,id,addr,len,last,resp\n";
    for (const TraceRecord& r : records_) {
        os << r.cycle << ',' << to_string(r.channel) << ',' << r.id << ',' << r.addr << ','
           << int{r.len} << ',' << (r.last ? 1 : 0) << ',' << to_string(r.resp) << '\n';
    }
}

} // namespace realm::axi
