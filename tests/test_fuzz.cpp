/// Randomized end-to-end property tests: several managers drive random
/// traffic through REALM units into a crossbar, with AXI protocol checkers
/// spliced on *both* sides of every REALM unit. Invariants, for every seed
/// and fragmentation setting:
///   - no protocol violation anywhere (parent side or fragmented side);
///   - every issued transaction completes (checker counts match);
///   - the DMA's copied block is byte-identical at the destination;
///   - regulated managers never exceed budget/period bandwidth.
#include "axi/checker.hpp"
#include "axi/probe.hpp"
#include "ic/xbar.hpp"
#include "mem/axi_mem_slave.hpp"
#include "mem/error_slave.hpp"
#include "realm/realm_unit.hpp"
#include "scenario/registry.hpp"
#include "scenario/search.hpp"
#include "scenario/topology.hpp"
#include "sim/rng.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/injector.hpp"
#include "traffic/workload.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace realm {
namespace {

struct ManagerChain {
    std::unique_ptr<axi::AxiChannel> mgr_side;    // manager -> probe
    std::unique_ptr<axi::AxiChannel> probe_out;   // probe -> realm
    std::unique_ptr<axi::AxiChannel> realm_down;  // realm -> checker (resp passthrough)
    std::unique_ptr<axi::AxiChannel> chk_out;     // checker -> xbar
    std::unique_ptr<axi::AxiLatencyProbe> probe;
    std::unique_ptr<axi::AxiChecker> checker;
    std::unique_ptr<rt::RealmUnit> realm;
};

/// Topology: manager -> latency probe -> REALM -> checker -> xbar -> SRAMs.
class FuzzBench {
public:
    FuzzBench(std::uint32_t num_managers, const rt::RealmUnitConfig& rcfg) {
        ic::AddrMap map;
        map.add(0x0000'0000, 0x10000, 0, "mem0");
        map.add(0x0001'0000, 0x10000, 1, "mem1");

        std::vector<axi::AxiChannel*> xbar_mgrs;
        for (std::uint32_t m = 0; m < num_managers; ++m) {
            auto chain = std::make_unique<ManagerChain>();
            const std::string n = "m" + std::to_string(m);
            chain->mgr_side = std::make_unique<axi::AxiChannel>(ctx, n + ".port");
            chain->probe_out = std::make_unique<axi::AxiChannel>(ctx, n + ".probe");
            chain->realm_down =
                std::make_unique<axi::AxiChannel>(ctx, n + ".down", 2, true);
            chain->chk_out = std::make_unique<axi::AxiChannel>(ctx, n + ".chk");
            chain->probe = std::make_unique<axi::AxiLatencyProbe>(
                ctx, n + ".probe", *chain->mgr_side, *chain->probe_out);
            // Checker constructed before the REALM unit so the unit's
            // response-passthrough sees same-cycle pushes.
            chain->checker = std::make_unique<axi::AxiChecker>(
                ctx, n + ".chk", *chain->realm_down, *chain->chk_out, true);
            chain->realm = std::make_unique<rt::RealmUnit>(ctx, n + ".realm",
                                                           *chain->probe_out,
                                                           *chain->realm_down, rcfg);
            xbar_mgrs.push_back(chain->chk_out.get());
            chains.push_back(std::move(chain));
        }

        mem0_ch = std::make_unique<axi::AxiChannel>(ctx, "mem0");
        mem1_ch = std::make_unique<axi::AxiChannel>(ctx, "mem1");
        err_ch = std::make_unique<axi::AxiChannel>(ctx, "err");
        mem0 = std::make_unique<mem::AxiMemSlave>(ctx, "mem0", *mem0_ch,
                                                  std::make_unique<mem::SramBackend>(2, 2),
                                                  mem::AxiMemSlaveConfig{8, 8, 0});
        mem1 = std::make_unique<mem::AxiMemSlave>(ctx, "mem1", *mem1_ch,
                                                  std::make_unique<mem::SramBackend>(5, 5),
                                                  mem::AxiMemSlaveConfig{8, 8, 0});
        err = std::make_unique<mem::ErrorSlave>(ctx, "err", *err_ch);
        ic::XbarConfig xcfg;
        xcfg.default_port = 2;
        xbar = std::make_unique<ic::AxiXbar>(
            ctx, "xbar", std::move(xbar_mgrs),
            std::vector<axi::AxiChannel*>{mem0_ch.get(), mem1_ch.get(), err_ch.get()},
            map, xcfg);
    }

    sim::SimContext ctx;
    std::vector<std::unique_ptr<ManagerChain>> chains;
    std::unique_ptr<axi::AxiChannel> mem0_ch, mem1_ch, err_ch;
    std::unique_ptr<mem::AxiMemSlave> mem0, mem1;
    std::unique_ptr<mem::ErrorSlave> err;
    std::unique_ptr<ic::AxiXbar> xbar;
};

class FuzzSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FuzzSweep, RandomTrafficKeepsAllInvariants) {
    const auto [seed, fragment] = GetParam();
    const auto useed = static_cast<std::uint64_t>(seed);
    rt::RealmUnitConfig rcfg;
    rcfg.fragment_beats = static_cast<std::uint32_t>(fragment);
    rcfg.max_pending = 8;
    FuzzBench bench{3, rcfg};

    // Managers 0/1: random cores over the two memories. Manager 2: DMA.
    traffic::RandomWorkload wl0{{.base = 0x0000,
                                 .bytes = 0x8000,
                                 .op_bytes = 8,
                                 .compute_cycles = 1,
                                 .store_ratio16 = 6,
                                 .num_ops = 300,
                                 .seed = static_cast<std::uint64_t>(seed)}};
    traffic::RandomWorkload wl1{{.base = 0x1'0000,
                                 .bytes = 0x8000,
                                 .op_bytes = 8,
                                 .compute_cycles = 0,
                                 .store_ratio16 = 3,
                                 .num_ops = 300,
                                 .seed = static_cast<std::uint64_t>(seed) + 77}};
    traffic::CoreModel core0{bench.ctx, "c0", *bench.chains[0]->mgr_side, wl0};
    traffic::CoreModel core1{bench.ctx, "c1", *bench.chains[1]->mgr_side, wl1};

    // Seed the DMA source block and copy it across memories.
    auto& src_store = static_cast<mem::SramBackend&>(bench.mem0->backend()).store();
    for (axi::Addr a = 0; a < 0x1000; a += 8) {
        src_store.write_u64(0x9000 + a, a * 1315423911ULL + useed);
    }
    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 32;
    traffic::DmaEngine dma{bench.ctx, "dma", *bench.chains[2]->mgr_side, dcfg};
    dma.push_job(traffic::DmaJob{0x9000, 0x1'9000, 0x1000, false});

    // Put a *binding* budget on the DMA so regulation paths are exercised.
    bench.chains[2]->realm->set_region(0, rt::RegionConfig{0x0, 0x2'0000, 512, 400});

    ASSERT_TRUE(bench.ctx.run_until(
        [&] { return core0.done() && core1.done() && dma.idle(); }, 1'000'000))
        << "seed " << seed << " frag " << fragment << " did not drain";

    // Invariant 1: protocol-clean on the fragmented side of every unit.
    for (const auto& chain : bench.chains) {
        EXPECT_EQ(chain->checker->violation_count(), 0U);
    }
    // Invariant 2: every issued transaction completed.
    EXPECT_EQ(core0.loads_retired() + core0.stores_retired(), 300U);
    EXPECT_EQ(core1.loads_retired() + core1.stores_retired(), 300U);
    for (const auto& chain : bench.chains) {
        EXPECT_EQ(chain->probe->aw_count(), chain->probe->write_latency().count());
        EXPECT_EQ(chain->probe->ar_count(), chain->probe->read_latency().count());
    }
    // Invariant 3: the copy arrived intact despite fragmentation + budget
    // isolation along the way.
    auto& dst_store = static_cast<mem::SramBackend&>(bench.mem1->backend()).store();
    for (axi::Addr a = 0; a < 0x1000; a += 8) {
        ASSERT_EQ(dst_store.read_u64(0x1'9000 + a), a * 1315423911ULL + useed)
            << "seed " << seed << " frag " << fragment << " offset " << a;
    }
    // Invariant 4: the budgeted DMA respected budget/period on average.
    const rt::RegionState& r = bench.chains[2]->realm->mr().region(0);
    EXPECT_GT(r.depletion_events, 0U) << "budget must actually bind in this setup";
    const double bw = static_cast<double>(r.bytes_total) /
                      static_cast<double>(bench.ctx.now());
    EXPECT_LE(bw, 512.0 / 400.0 * 1.3) << "regulated bandwidth above budget share";
}

INSTANTIATE_TEST_SUITE_P(SeedsAndFragments, FuzzSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                                            ::testing::Values(1, 4, 16, 256)));

// --- Genome fuzz on the mesh fabric ------------------------------------------

/// A `mesh-dos-smoke` attack cell reshaped to a 4x4 mesh, monitors on, with
/// both attacker ports driven by a programmable injector genome. Completing
/// at all is most of the assertion: credit conservation, reorder-stash
/// bounds, and link bookkeeping are contract-enforced (`REALM_ENSURES`
/// aborts) throughout the NoC hot path, so any violation under an arbitrary
/// pattern mix kills the run.
scenario::ScenarioConfig mesh4x4_genome_cell(const traffic::InjectorGenome& g) {
    scenario::Sweep sweep = scenario::make_sweep("mesh-dos-smoke");
    for (scenario::SweepPoint& p : sweep.points) {
        if (p.config.interference.empty()) { continue; }
        scenario::ScenarioConfig cfg = p.config;
        cfg.topology.mesh.rows = 4;
        cfg.topology.mesh.cols = 4;
        cfg.topology.mesh.nodes = scenario::make_mesh_roles(4, 4, 2, 2);
        cfg.monitors.enabled = true;
        cfg.victim.stream.repeat = 1;
        return scenario::genome_scenario(cfg, g);
    }
    ADD_FAILURE() << "mesh-dos-smoke has no attack cells";
    return scenario::ScenarioConfig{};
}

class GenomeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GenomeFuzz, RandomGenomesKeepMeshInvariants) {
    sim::Rng rng{sim::derive_seed("genome-fuzz", GetParam())};
    traffic::InjectorGenome g;
    for (std::uint8_t& gene : g.genes) {
        gene = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    const scenario::ScenarioConfig cfg = mesh4x4_genome_cell(g);
    const scenario::ScenarioResult r = scenario::run_scenario(cfg);

    EXPECT_TRUE(r.boot_ok) << cfg.name;
    EXPECT_FALSE(r.timed_out) << cfg.name;
    EXPECT_EQ(r.ops, cfg.victim.stream.bytes / cfg.victim.stream.op_bytes)
        << cfg.name << ": every victim op must retire";
    // Monitor FSM sanity: a response always matches a tracked burst, for
    // any interference pattern. Orphan *requests* are different: finalize
    // counts bursts still in flight at run end, and always-on attackers
    // legitimately leave some — but never more than their outstanding
    // capacity (2 attackers x 4 reads + 4 writes each).
    EXPECT_EQ(r.mon_orphan_rsp, 0U) << cfg.name;
    EXPECT_LE(r.mon_orphan_req, 16U) << cfg.name;
    EXPECT_EQ(r.mon_false_positives, 0U) << cfg.name;

    // Sampled subset: the sharded kernel must agree bit for bit.
    if (GetParam() < 2) {
        for (const unsigned shards : {2U, 4U}) {
            scenario::ScenarioConfig sharded = cfg;
            sharded.shards = shards;
            const scenario::ScenarioResult rs = scenario::run_scenario(sharded);
            EXPECT_EQ(rs.load_lat_p99, r.load_lat_p99) << shards << " shards";
            EXPECT_EQ(rs.load_lat_max, r.load_lat_max) << shards << " shards";
            EXPECT_EQ(rs.store_lat_max, r.store_lat_max) << shards << " shards";
            EXPECT_EQ(rs.run_cycles, r.run_cycles) << shards << " shards";
            EXPECT_EQ(rs.dma_bytes, r.dma_bytes) << shards << " shards";
            EXPECT_EQ(rs.fabric_hops, r.fabric_hops) << shards << " shards";
            EXPECT_EQ(rs.mon_lat_p99, r.mon_lat_p99) << shards << " shards";
            EXPECT_EQ(rs.mgr_p99, r.mgr_p99) << shards << " shards";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomGenomes, GenomeFuzz, ::testing::Range(0, 6));

} // namespace
} // namespace realm
