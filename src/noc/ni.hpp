/// \file
/// \brief Network-interface bookkeeping shared by every NoC router.
///
/// The ring node and the mesh router differ in how packets *move* (one lane
/// around a circle vs. XY dimension-ordered hops), but their AXI network
/// interfaces are identical: requests are packetized with an AW-before-data
/// lane discipline and AXI same-ID ordering, ejected requests land in deep
/// per-source egress staging in front of an `ic::AxiMux`, and responses are
/// injected round-robin over the sources waiting at the local subordinate.
/// `NocNi` owns exactly that state so both fabrics share one flow-control
/// implementation (and one set of bugs).
#pragma once

#include "axi/channel.hpp"
#include "ic/addr_map.hpp"
#include "noc/packet.hpp"

#include "sim/link.hpp"

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace realm::noc {

class NocNi {
public:
    explicit NocNi(std::string owner) : owner_{std::move(owner)} {}

    void reset();

    /// \name Ejection (packets whose dest is the local node)
    ///@{
    /// Delivers a request packet into the per-source egress staging toward
    /// the local subordinate's mux. Returns false on backpressure.
    bool try_eject_request(const NocPacket& pkt,
                           const std::vector<axi::AxiChannel*>& egress);
    /// Delivers a response packet to the local manager, retiring the same-ID
    /// ordering bookkeeping on B / last R. Returns false on backpressure.
    bool try_eject_response(const NocPacket& pkt, axi::AxiChannel* local_mgr);
    ///@}

    /// \name Injection (local manager / subordinate into the network)
    ///@{
    /// Injects at most one request packet from the local manager. `route`
    /// maps a destination node to the outgoing link able to accept one
    /// packet this cycle, or nullptr on backpressure (the flit is then held
    /// and retried, preserving the lane order). AW travels before its data;
    /// W continuation beats take priority over new reads; an AW or AR whose
    /// ID has in-flight transactions toward a *different* node stalls until
    /// they retire (the same rule `ic::AxiDemux` enforces).
    template <typename RouteFn>
    bool inject_requests(std::uint8_t self, axi::AxiChannel& mgr,
                         const ic::AddrMap& map, RouteFn&& route) {
        if (mgr.aw.can_pop()) {
            const axi::AwFlit& head = mgr.aw.front();
            const auto dest_opt = map.decode(head.addr);
            REALM_EXPECTS(dest_opt.has_value(), owner_ + ": unmapped NoC address");
            const auto dest = static_cast<std::uint8_t>(*dest_opt);
            const auto it = w_in_flight_.find(head.id);
            const bool ordering_ok = it == w_in_flight_.end() ||
                                     it->second.count == 0 || it->second.dest == dest;
            if (ordering_ok) {
                if (sim::Link<NocPacket>* out = route(dest)) {
                    axi::AwFlit aw = mgr.aw.pop();
                    auto& fl = w_in_flight_[aw.id];
                    fl.dest = dest;
                    ++fl.count;
                    w_dest_.push_back(dest);
                    w_beats_left_.push_back(aw.beats());
                    out->push(NocPacket{self, dest, aw});
                    return true;
                }
                return false; // hold the AW; W/AR behind it wait their turn
            }
        }
        if (!w_dest_.empty() && mgr.w.can_pop()) {
            if (sim::Link<NocPacket>* out = route(w_dest_.front())) {
                axi::WFlit w = mgr.w.pop();
                out->push(NocPacket{self, w_dest_.front(), w});
                if (--w_beats_left_.front() == 0) {
                    REALM_ENSURES(w.last, owner_ + ": W burst ended without WLAST");
                    w_dest_.pop_front();
                    w_beats_left_.pop_front();
                }
                return true;
            }
            return false;
        }
        if (mgr.ar.can_pop()) {
            const axi::ArFlit& head = mgr.ar.front();
            const auto dest_opt = map.decode(head.addr);
            REALM_EXPECTS(dest_opt.has_value(), owner_ + ": unmapped NoC address");
            const auto dest = static_cast<std::uint8_t>(*dest_opt);
            const auto it = r_in_flight_.find(head.id);
            const bool ordering_ok = it == r_in_flight_.end() ||
                                     it->second.count == 0 || it->second.dest == dest;
            if (!ordering_ok) { return false; }
            if (sim::Link<NocPacket>* out = route(dest)) {
                axi::ArFlit ar = mgr.ar.pop();
                auto& fl = r_in_flight_[ar.id];
                fl.dest = dest;
                ++fl.count;
                out->push(NocPacket{self, dest, ar});
                return true;
            }
        }
        return false;
    }

    /// Injects at most one response packet from the local subordinate,
    /// round-robin over the sources whose responses wait at the egress mux.
    /// `route` maps the response's destination (the request's source node)
    /// to the outgoing link, or nullptr on backpressure — a blocked source
    /// does not stop a routable one.
    template <typename RouteFn>
    bool inject_responses(std::uint8_t self,
                          const std::vector<axi::AxiChannel*>& egress,
                          RouteFn&& route) {
        const auto n = static_cast<std::uint32_t>(egress.size());
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t src = (rsp_rr_ + 1 + i) % n;
            axi::AxiChannel* ch = egress[src];
            if (ch == nullptr) { continue; }
            if (ch->b.can_pop()) {
                if (sim::Link<NocPacket>* out = route(static_cast<std::uint8_t>(src))) {
                    out->push(NocPacket{self, static_cast<std::uint8_t>(src), ch->b.pop()});
                    rsp_rr_ = src;
                    return true;
                }
                continue;
            }
            if (ch->r.can_pop()) {
                if (sim::Link<NocPacket>* out = route(static_cast<std::uint8_t>(src))) {
                    out->push(NocPacket{self, static_cast<std::uint8_t>(src), ch->r.pop()});
                    rsp_rr_ = src;
                    return true;
                }
            }
        }
        return false;
    }
    ///@}

private:
    std::string owner_; ///< router name, for contract messages

    /// Ingress W routing: dest node per accepted AW, in order.
    std::deque<std::uint8_t> w_dest_;
    std::deque<std::uint32_t> w_beats_left_;
    /// AXI same-ID ordering at the ingress (same rule as `ic::AxiDemux`).
    struct InFlight {
        std::uint8_t dest = 0;
        std::uint32_t count = 0;
    };
    std::unordered_map<axi::IdT, InFlight> w_in_flight_;
    std::unordered_map<axi::IdT, InFlight> r_in_flight_;
    /// Response injection round-robin over egress sources.
    std::uint32_t rsp_rr_ = 0;
};

} // namespace realm::noc
