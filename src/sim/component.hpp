/// \file
/// \brief Base class for all simulated hardware blocks.
#pragma once

#include "sim/context.hpp"
#include "sim/types.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace realm::sim {

/// A clocked hardware block. Each simulation cycle the kernel calls
/// `tick()` exactly once, in construction order.
///
/// Model style: components are Moore machines communicating through
/// registered `Link`s, so evaluation order between components never changes
/// observable behaviour (only capacity visibility, which is benign and
/// deterministic).
///
/// Activity contract (the idle-aware scheduler): a component may declare,
/// at the end of its `tick()`, that every tick before cycle C would be a
/// no-op — no state change, no statistics, no link traffic — by calling
/// `idle_until(C)` (or `idle_forever()`). The scheduler then skips it until
/// cycle C, or until something calls `wake()` (a flit pushed into a link it
/// consumes, a new job queued, a register write). Components that never
/// declare idle are evaluated every cycle, exactly as before, so opting in
/// is optional per block. Declarations must be *conservative*: waking too
/// early is always safe (the extra tick is the promised no-op); sleeping
/// through work changes behaviour.
class Component {
public:
    Component(SimContext& ctx, std::string name) : ctx_{&ctx}, name_{std::move(name)} {
        ctx_->register_component(*this);
    }
    virtual ~Component() { ctx_->unregister_component(*this); }

    Component(const Component&) = delete;
    Component& operator=(const Component&) = delete;

    /// Block instance name, used in logs and contract messages.
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// The owning simulation context.
    [[nodiscard]] SimContext& ctx() noexcept { return *ctx_; }
    [[nodiscard]] const SimContext& ctx() const noexcept { return *ctx_; }

    /// Current cycle, convenience shorthand.
    [[nodiscard]] Cycle now() const noexcept { return ctx_->now(); }

    /// Returns the block to its post-reset state.
    virtual void reset() {}

    /// Evaluates one clock cycle.
    virtual void tick() = 0;

    /// \name Scheduling (activity-aware kernel)
    ///@{
    /// First cycle at which this component needs evaluation. `<= now` means
    /// active this cycle; the default of 0 means always active.
    [[nodiscard]] Cycle wake_cycle() const noexcept { return wake_at_; }

    /// Ensures the component is evaluated no later than `cycle`. Safe to
    /// call from anywhere (links, job queues, register writes); waking an
    /// already-active component is a no-op — and skips the context's
    /// hint CAS entirely: an unchanged `wake_at_` is already folded into
    /// the fast-forward hint every step (the shard walk visits or skips
    /// every component and min-folds its wake cycle), so only a genuine
    /// lowering needs to reach the shared atomic.
    void wake(Cycle cycle) noexcept {
        if (cycle >= wake_at_) { return; }
        wake_at_ = cycle;
        ctx_->note_wake(cycle); // keep the fast-forward hint conservative
    }
    /// Ensures the component is evaluated from the current cycle on.
    void wake() noexcept { wake(ctx_->now()); }
    ///@}

    /// Shard this component is evaluated on, tagged at registration from
    /// the context's build shard (0 unless a topology spatially partitioned
    /// the design; see `SimContext::set_build_shard`).
    [[nodiscard]] unsigned shard() const noexcept { return shard_; }

protected:
    /// Declares that every `tick()` strictly before `cycle` is a no-op.
    /// Call only at the end of `tick()` (or from a state-mutating entry
    /// point that re-establishes the promise).
    void idle_until(Cycle cycle) noexcept { wake_at_ = cycle; }
    /// Declares the component dormant until someone calls `wake()`.
    void idle_forever() noexcept { wake_at_ = kNoCycle; }

    /// Cycle-stamped log line attributed to this component.
    void log(LogLevel level, const std::string& message) const {
        if (ctx_->log_enabled(level)) { ctx_->log(level, name_, message); }
    }

private:
    friend class SimContext; // writes shard_ at registration

    SimContext* ctx_;
    std::string name_;
    Cycle wake_at_ = 0;
    unsigned shard_ = 0;
};

} // namespace realm::sim
