/// \file
/// \brief 1-manager to N-subordinate AXI demultiplexer with address decode.
#pragma once

#include "axi/channel.hpp"
#include "ic/addr_map.hpp"
#include "ic/arb.hpp"

#include "sim/component.hpp"

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

namespace realm::ic {

/// Routes one manager's traffic to N subordinate ports by address.
///
/// AXI4 same-ID ordering: a request whose ID has transactions in flight to a
/// *different* subordinate is stalled until those drain (the standard
/// `axi_demux` rule); otherwise responses could be reordered. W beats follow
/// AW routing decisions in order. Unmapped addresses go to `error_port` if
/// configured, else raise a contract violation.
class AxiDemux : public sim::Component {
public:
    AxiDemux(sim::SimContext& ctx, std::string name, axi::AxiChannel& upstream,
             std::vector<axi::AxiChannel*> downstreams, AddrMap map,
             std::optional<std::uint32_t> error_port = std::nullopt);

    void reset() override;
    void tick() override;

    [[nodiscard]] std::uint64_t decode_errors() const noexcept { return decode_errors_; }
    [[nodiscard]] std::uint64_t ordering_stalls() const noexcept { return ordering_stalls_; }

private:
    struct InFlight {
        std::uint32_t port = 0;
        std::uint32_t count = 0;
    };

    [[nodiscard]] std::uint32_t route(axi::Addr addr);
    void forward_aw();
    void forward_w();
    void forward_ar();
    void collect_b();
    void collect_r();

    axi::SubordinateView up_;
    std::vector<axi::AxiChannel*> downs_;
    AddrMap map_;
    std::optional<std::uint32_t> error_port_;

    std::deque<std::uint32_t> w_route_;            ///< port per granted AW, in order
    std::deque<std::uint32_t> w_beats_left_;       ///< beats outstanding per granted AW
    std::unordered_map<axi::IdT, InFlight> w_in_flight_;
    std::unordered_map<axi::IdT, InFlight> r_in_flight_;

    RoundRobinArbiter b_arb_;
    RoundRobinArbiter r_arb_;

    std::uint64_t decode_errors_ = 0;
    std::uint64_t ordering_stalls_ = 0;
};

} // namespace realm::ic
