/// \file
/// \brief Verifies the Section III claim: "AXI-REALM delays in-flight
///        transactions by just one clock cycle."
///
/// Measures single-source read/write latency on the full SoC in three
/// wirings: no REALM units at all, REALM present in bypass, and REALM
/// present and regulating (with non-binding budgets). The regulating and
/// bypass configurations must both cost exactly one cycle over the bare
/// interconnect.
#include "soc/cheshire_soc.hpp"
#include "traffic/core.hpp"
#include "traffic/workload.hpp"

#include <cstdio>

namespace {

constexpr realm::axi::Addr kDram = 0x8000'0000;

struct Point {
    double lat_mean;
    realm::sim::Cycle lat_max;
    std::uint64_t cycles;
};

Point measure(bool realm_present, bool realm_enabled) {
    using namespace realm;
    sim::SimContext ctx;
    soc::SocConfig cfg;
    cfg.realm_present = realm_present;
    soc::CheshireSoc soc{ctx, cfg};
    for (axi::Addr a = 0; a < 0x10000; a += 8) {
        soc.dram_image().write_u64(kDram + a, a);
    }
    soc.warm_llc(kDram, 0x10000);
    if (realm_present && !realm_enabled) {
        soc.core_realm().set_enabled(false);
        soc.dsa_realm(0).set_enabled(false);
    }
    traffic::StreamWorkload wl{{.base = kDram,
                                .bytes = 0x8000,
                                .op_bytes = 8,
                                .stride_bytes = 8,
                                .store_ratio16 = 4}};
    traffic::CoreModel core{ctx, "core", soc.core_port(), wl};
    ctx.run_until([&] { return core.done(); }, 1'000'000);
    return Point{core.load_latency().mean(), core.load_latency().max(),
                 core.finish_cycle()};
}

} // namespace

int main() {
    std::puts("== Section III claim: one cycle of added request latency ==\n");
    const Point bare = measure(false, false);
    const Point bypass = measure(true, false);
    const Point active = measure(true, true);

    std::printf("%-26s %10s %8s %12s\n", "configuration", "lat_mean", "lat_max", "cycles");
    std::printf("%-26s %10.2f %8llu %12llu\n", "no REALM units", bare.lat_mean,
                static_cast<unsigned long long>(bare.lat_max),
                static_cast<unsigned long long>(bare.cycles));
    std::printf("%-26s %10.2f %8llu %12llu\n", "REALM in bypass", bypass.lat_mean,
                static_cast<unsigned long long>(bypass.lat_max),
                static_cast<unsigned long long>(bypass.cycles));
    std::printf("%-26s %10.2f %8llu %12llu\n", "REALM regulating", active.lat_mean,
                static_cast<unsigned long long>(active.lat_max),
                static_cast<unsigned long long>(active.cycles));

    const double overhead = active.lat_mean - bare.lat_mean;
    std::printf("\nmeasured overhead: %.2f cycles (paper claims exactly 1)\n", overhead);
    return overhead > 1.05 || overhead < 0.95 ? 1 : 0;
}
