/// \file
/// \brief AXI4 subordinate front-end for a register target.
///
/// Terminates single-beat AXI transactions into `RegTarget` accesses (the
/// path a core takes to program the REALM units: crossbar -> this adapter
/// -> bus guard -> register file). Errors are reported as SLVERR; bursts
/// longer than one beat are rejected (config space is register-granular).
#pragma once

#include "axi/channel.hpp"
#include "cfg/regbus.hpp"

#include "sim/component.hpp"

#include <cstdint>

namespace realm::cfg {

class AxiToReg : public sim::Component {
public:
    /// \param base  bus address of register offset 0.
    AxiToReg(sim::SimContext& ctx, std::string name, axi::AxiChannel& channel,
             RegTarget& target, axi::Addr base = 0);

    void reset() override;
    void tick() override;

    [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }
    [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
    [[nodiscard]] std::uint64_t errors() const noexcept { return errors_; }

private:
    void step_datapath();

    axi::SubordinateView port_;
    RegTarget* target_;
    axi::Addr base_;

    /// In-progress write (AW seen, waiting for the data beat).
    bool write_pending_ = false;
    axi::AwFlit pending_aw_{};
    /// Remaining SLVERR beats of a rejected burst read.
    std::uint32_t err_read_beats_ = 0;
    axi::IdT err_read_id_ = 0;

    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t errors_ = 0;
};

} // namespace realm::cfg
