/// \file
/// \brief Reproduces **Figure 6b**: performance achieved by varying the
///        budget imbalance between the core and the DMA.
///
/// Setup per the paper: fragmentation fixed at one beat (the most fair
/// setting of Figure 6a), a short period of 1000 clock cycles, and the DMA
/// budget reduced from 8 KiB (1/1 -- the full 64-bit-bus bandwidth of the
/// period) down to 1.6 KiB (1/5) in equal steps. Paper result: near-ideal
/// (> 95 %) core performance at 1/5, with the worst-case memory access
/// latency dropping from 264 to below eight cycles.
///
/// Runs through the scenario engine (`--threads N` parallelizes the sweep,
/// `--json PATH` dumps machine-readable results).
#include "scenario/cli.hpp"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace realm::scenario;
    BenchOptions opts = parse_bench_args(argc, argv);

    std::puts("== Figure 6b: Susan performance vs core/DMA budget imbalance ==");
    std::puts("(fragmentation 1, period 1000 cycles, DMA budget 8.0 -> 1.6 KiB)\n");

    Sweep sweep = make_sweep("fig6b");
    const auto results = run_with_options(opts, sweep);
    const ScenarioResult& base = results[*sweep.baseline_index];

    std::printf("%-10s %10s %12s %8s %9s %9s %10s %11s\n", "budget", "DMA[B]", "cycles",
                "perf%", "lat_mean", "lat_max", "dma[B/cyc]", "depletions");
    std::printf("%-10s %10s %12llu %8.1f %9.2f %9llu %10s %11s\n", "baseline", "-",
                static_cast<unsigned long long>(base.run_cycles), 100.0,
                base.load_lat_mean, static_cast<unsigned long long>(base.load_lat_max),
                "-", "-");
    for (std::size_t i = 1; i < results.size(); ++i) {
        const ScenarioResult& r = results[i];
        const std::uint64_t budget = sweep.points[i].config.boot_plans[1].budget_bytes;
        const double perf = 100.0 * static_cast<double>(base.run_cycles) /
                            static_cast<double>(r.run_cycles);
        std::printf("%-10s %10llu %12llu %8.1f %9.2f %9llu %10.2f %11llu\n",
                    r.label.c_str(), static_cast<unsigned long long>(budget),
                    static_cast<unsigned long long>(r.run_cycles), perf, r.load_lat_mean,
                    static_cast<unsigned long long>(r.load_lat_max), r.dma_read_bw,
                    static_cast<unsigned long long>(r.dma_depletions));
    }

    std::puts("\npaper reference: reducing the DMA budget from 1/1 to 1/5 closes the");
    std::puts("gap to the single-source scenario: > 95 % performance, worst-case");
    std::puts("access latency below eight cycles.");
    return 0;
}
