#include "ic/xbar.hpp"

#include "sim/check.hpp"

#include <utility>

namespace realm::ic {

AxiXbar::AxiXbar(sim::SimContext& ctx, std::string name, std::vector<axi::AxiChannel*> managers,
                 std::vector<axi::AxiChannel*> subordinates, AddrMap map, XbarConfig config)
    : Component{ctx, std::move(name)},
      mgrs_{std::move(managers)},
      subs_{std::move(subordinates)},
      map_{std::move(map)},
      config_{config},
      aw_arb_(subs_.size(), RoundRobinArbiter{static_cast<std::uint32_t>(mgrs_.size())}),
      ar_arb_(subs_.size(), RoundRobinArbiter{static_cast<std::uint32_t>(mgrs_.size())}),
      w_serve_(subs_.size()),
      w_route_(mgrs_.size()),
      b_arb_(mgrs_.size(), RoundRobinArbiter{static_cast<std::uint32_t>(subs_.size())}),
      r_arb_(mgrs_.size(), RoundRobinArbiter{static_cast<std::uint32_t>(subs_.size())}),
      aw_grants_(mgrs_.size(), 0),
      ar_grants_(mgrs_.size(), 0),
      w_stalls_(subs_.size(), 0) {
    REALM_EXPECTS(!mgrs_.empty() && !subs_.empty(), "xbar needs managers and subordinates");
    for (axi::AxiChannel* ch : mgrs_) { REALM_EXPECTS(ch != nullptr, "null manager channel"); }
    for (axi::AxiChannel* ch : subs_) { REALM_EXPECTS(ch != nullptr, "null subordinate"); }
    for (axi::AxiChannel* ch : mgrs_) { ch->wake_subordinate_on_request(*this); }
    for (axi::AxiChannel* ch : subs_) { ch->wake_manager_on_response(*this); }
    if (config_.default_port) {
        REALM_EXPECTS(*config_.default_port < subs_.size(), "default port out of range");
    }
}

void AxiXbar::reset() {
    for (auto& a : aw_arb_) { a.reset(); }
    for (auto& a : ar_arb_) { a.reset(); }
    for (auto& q : w_serve_) { q.clear(); }
    for (auto& q : w_route_) { q.clear(); }
    w_in_flight_.clear();
    r_in_flight_.clear();
    for (auto& a : b_arb_) { a.reset(); }
    for (auto& a : r_arb_) { a.reset(); }
    std::fill(aw_grants_.begin(), aw_grants_.end(), 0);
    std::fill(ar_grants_.begin(), ar_grants_.end(), 0);
    std::fill(w_stalls_.begin(), w_stalls_.end(), 0);
    decode_errors_ = 0;
    ordering_stalls_ = 0;
}

std::uint32_t AxiXbar::route(axi::Addr addr) {
    if (const auto port = map_.decode(addr)) { return *port; }
    REALM_EXPECTS(config_.default_port.has_value(),
                  name() + ": unmapped address with no default port");
    return *config_.default_port;
}

void AxiXbar::arbitrate_aw(std::uint32_t sub) {
    if (!subs_[sub]->aw.can_push()) { return; }
    if (w_serve_[sub].size() >= config_.max_outstanding_writes_per_sub) { return; }
    const auto requesting = [this, sub](std::uint32_t m) {
        if (!mgrs_[m]->aw.can_pop()) { return false; }
        const axi::AwFlit& head = mgrs_[m]->aw.front();
        if (route(head.addr) != sub) { return false; }
        // AXI4 same-ID ordering: hold back if this ID is in flight to a
        // different subordinate.
        const auto it = w_in_flight_.find(order_key(m, head.id));
        if (it != w_in_flight_.end() && it->second.count > 0 && it->second.port != sub) {
            ++ordering_stalls_;
            return false;
        }
        return true;
    };
    int winner = -1;
    if (config_.arbitration == XbarArbitration::kQosPriority) {
        winner = pick_by_qos(requesting,
                             [this](std::uint32_t m) { return mgrs_[m]->aw.front().qos; },
                             aw_arb_[sub]);
    } else {
        winner = aw_arb_[sub].pick(requesting);
    }
    if (winner < 0) { return; }
    const auto mgr = static_cast<std::uint32_t>(winner);
    aw_arb_[sub].commit(mgr);
    axi::AwFlit f = mgrs_[mgr]->aw.pop();
    if (!map_.decode(f.addr)) { ++decode_errors_; }
    auto& fl = w_in_flight_[order_key(mgr, f.id)];
    fl.port = sub;
    ++fl.count;
    // Reserve the subordinate's W channel for the whole burst (the DoS
    // vector of burst-based interconnects, cf. Cut&Forward [14]).
    w_serve_[sub].push_back(WGrant{mgr, f.beats()});
    w_route_[mgr].push_back(sub);
    f.id = f.id * num_managers() + mgr;
    subs_[sub]->aw.push(f);
    ++aw_grants_[mgr];
}

void AxiXbar::forward_w(std::uint32_t sub) {
    if (w_serve_[sub].empty() || !subs_[sub]->w.can_push()) { return; }
    WGrant& grant = w_serve_[sub].front();
    const std::uint32_t mgr = grant.mgr;
    // The manager must currently be sending *this* burst (its own W stream
    // is in AW order across all subordinates).
    const bool data_ready = mgrs_[mgr]->w.can_pop() && !w_route_[mgr].empty() &&
                            w_route_[mgr].front() == sub;
    if (!data_ready) {
        bool others_waiting = false;
        for (std::uint32_t m = 0; m < num_managers(); ++m) {
            if (m != mgr && mgrs_[m]->w.can_pop()) { others_waiting = true; }
        }
        if (others_waiting) { ++w_stalls_[sub]; }
        return;
    }
    axi::WFlit f = mgrs_[mgr]->w.pop();
    subs_[sub]->w.push(f);
    --grant.beats_left;
    if (grant.beats_left == 0) {
        REALM_ENSURES(f.last, name() + ": W burst finished without WLAST");
        w_serve_[sub].pop_front();
        w_route_[mgr].pop_front();
    } else {
        REALM_ENSURES(!f.last, name() + ": premature WLAST through xbar");
    }
}

void AxiXbar::arbitrate_ar(std::uint32_t sub) {
    if (!subs_[sub]->ar.can_push()) { return; }
    const auto requesting = [this, sub](std::uint32_t m) {
        if (!mgrs_[m]->ar.can_pop()) { return false; }
        const axi::ArFlit& head = mgrs_[m]->ar.front();
        if (route(head.addr) != sub) { return false; }
        const auto it = r_in_flight_.find(order_key(m, head.id));
        if (it != r_in_flight_.end() && it->second.count > 0 && it->second.port != sub) {
            ++ordering_stalls_;
            return false;
        }
        return true;
    };
    int winner = -1;
    if (config_.arbitration == XbarArbitration::kQosPriority) {
        winner = pick_by_qos(requesting,
                             [this](std::uint32_t m) { return mgrs_[m]->ar.front().qos; },
                             ar_arb_[sub]);
    } else {
        winner = ar_arb_[sub].pick(requesting);
    }
    if (winner < 0) { return; }
    const auto mgr = static_cast<std::uint32_t>(winner);
    ar_arb_[sub].commit(mgr);
    axi::ArFlit f = mgrs_[mgr]->ar.pop();
    if (!map_.decode(f.addr)) { ++decode_errors_; }
    auto& fl = r_in_flight_[order_key(mgr, f.id)];
    fl.port = sub;
    ++fl.count;
    f.id = f.id * num_managers() + mgr;
    subs_[sub]->ar.push(f);
    ++ar_grants_[mgr];
}

void AxiXbar::route_b(std::uint32_t mgr) {
    if (!mgrs_[mgr]->b.can_push()) { return; }
    const int winner = b_arb_[mgr].pick([this, mgr](std::uint32_t s) {
        return subs_[s]->b.can_pop() && subs_[s]->b.front().id % num_managers() == mgr;
    });
    if (winner < 0) { return; }
    const auto sub = static_cast<std::uint32_t>(winner);
    b_arb_[mgr].commit(sub);
    axi::BFlit f = subs_[sub]->b.pop();
    f.id /= num_managers();
    if (auto it = w_in_flight_.find(order_key(mgr, f.id));
        it != w_in_flight_.end() && it->second.count > 0) {
        --it->second.count;
    }
    mgrs_[mgr]->b.push(f);
}

void AxiXbar::route_r(std::uint32_t mgr) {
    if (!mgrs_[mgr]->r.can_push()) { return; }
    const int winner = r_arb_[mgr].pick([this, mgr](std::uint32_t s) {
        return subs_[s]->r.can_pop() && subs_[s]->r.front().id % num_managers() == mgr;
    });
    if (winner < 0) { return; }
    const auto sub = static_cast<std::uint32_t>(winner);
    r_arb_[mgr].commit(sub);
    axi::RFlit f = subs_[sub]->r.pop();
    f.id /= num_managers();
    if (f.last) {
        if (auto it = r_in_flight_.find(order_key(mgr, f.id));
            it != r_in_flight_.end() && it->second.count > 0) {
            --it->second.count;
        }
    }
    mgrs_[mgr]->r.push(f);
}

void AxiXbar::tick() {
    for (std::uint32_t s = 0; s < num_subordinates(); ++s) {
        arbitrate_aw(s);
        forward_w(s);
        arbitrate_ar(s);
    }
    for (std::uint32_t m = 0; m < num_managers(); ++m) {
        route_b(m);
        route_r(m);
    }
    update_activity();
}

void AxiXbar::update_activity() {
    // The crossbar is a pure shuttle: with no request flit on any manager
    // port and no response flit on any subordinate port, every datapath is
    // provably a no-op (granted-but-dataless write reservations included —
    // they progress only on W pushes, and `w_stalls_` needs another
    // manager's non-empty W link).
    for (const axi::AxiChannel* ch : mgrs_) {
        if (!ch->requests_empty()) { return; }
    }
    for (const axi::AxiChannel* ch : subs_) {
        if (!ch->responses_empty()) { return; }
    }
    idle_forever();
}

} // namespace realm::ic
