/// Unit tests for the simulation kernel: links, timed queues, context, RNG,
/// statistics.
#include "sim/check.hpp"
#include "sim/component.hpp"
#include "sim/context.hpp"
#include "sim/link.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace realm::sim {
namespace {

TEST(Link, RegisteredTimingHidesSameCyclePush) {
    SimContext ctx;
    Link<int> link{ctx, 2, "l"};
    EXPECT_FALSE(link.can_pop());
    link.push(42);
    EXPECT_FALSE(link.can_pop()) << "registered link must hide same-cycle pushes";
    ctx.step();
    ASSERT_TRUE(link.can_pop());
    EXPECT_EQ(link.front(), 42);
    EXPECT_EQ(link.pop(), 42);
    EXPECT_FALSE(link.can_pop());
}

TEST(Link, PassthroughVisibleSameCycle) {
    SimContext ctx;
    Link<int> link{ctx, 2, "l", Link<int>::Timing::kPassthrough};
    link.push(7);
    ASSERT_TRUE(link.can_pop());
    EXPECT_EQ(link.pop(), 7);
}

TEST(Link, CapacityBackpressure) {
    SimContext ctx;
    Link<int> link{ctx, 2, "l"};
    link.push(1);
    link.push(2);
    EXPECT_FALSE(link.can_push());
    EXPECT_THROW(link.push(3), ContractViolation);
    ctx.step();
    EXPECT_EQ(link.pop(), 1);
    EXPECT_TRUE(link.can_push());
}

TEST(Link, SustainsOneTransferPerCycle) {
    // Producer and consumer alternating on a depth-2 link must reach a
    // steady state of one item per cycle regardless of who runs first.
    SimContext ctx;
    Link<int> link{ctx, 2, "l"};
    int produced = 0;
    int consumed = 0;
    for (int cycle = 0; cycle < 100; ++cycle) {
        if (link.can_pop()) {
            link.pop();
            ++consumed;
        }
        if (link.can_push()) {
            link.push(produced);
            ++produced;
        }
        ctx.step();
    }
    EXPECT_GE(consumed, 98) << "expected ~1 item/cycle throughput";
}

TEST(Link, FifoOrderPreserved) {
    SimContext ctx;
    Link<int> link{ctx, 8, "l"};
    for (int i = 0; i < 5; ++i) { link.push(i); }
    ctx.step();
    for (int i = 0; i < 5; ++i) { EXPECT_EQ(link.pop(), i); }
}

TEST(Link, ClearDropsContents) {
    SimContext ctx;
    Link<int> link{ctx, 4, "l"};
    link.push(1);
    link.clear();
    ctx.step();
    EXPECT_FALSE(link.can_pop());
    EXPECT_EQ(link.occupancy(), 0U);
}

TEST(TimedQueue, HonorsReadyCycle) {
    SimContext ctx;
    TimedQueue<int> q{ctx, "q"};
    q.push(1, 3);
    EXPECT_FALSE(q.can_pop());
    ctx.run(3);
    ASSERT_TRUE(q.can_pop());
    EXPECT_EQ(q.pop(), 1);
}

TEST(TimedQueue, HeadBlocksYoungerEntries) {
    SimContext ctx;
    TimedQueue<int> q{ctx, "q"};
    q.push(1, 10);
    q.push(2, 0); // ready earlier but behind the head
    ctx.run(5);
    EXPECT_FALSE(q.can_pop()) << "completion must stay in order";
    ctx.run(5);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
}

class CountingComponent : public Component {
public:
    using Component::Component;
    void reset() override { resets_ = resets_ + 1; }
    void tick() override { ++ticks_; }
    int ticks_ = 0;
    int resets_ = 0;
};

TEST(SimContext, TicksComponentsInOrder) {
    SimContext ctx;
    CountingComponent a{ctx, "a"};
    CountingComponent b{ctx, "b"};
    ctx.run(5);
    EXPECT_EQ(a.ticks_, 5);
    EXPECT_EQ(b.ticks_, 5);
    EXPECT_EQ(ctx.now(), 5U);
}

TEST(SimContext, ResetRewindsTimeAndComponents) {
    SimContext ctx;
    CountingComponent a{ctx, "a"};
    ctx.run(3);
    ctx.reset();
    EXPECT_EQ(ctx.now(), 0U);
    EXPECT_EQ(a.resets_, 1);
}

TEST(SimContext, RunUntilStopsOnPredicate) {
    SimContext ctx;
    CountingComponent a{ctx, "a"};
    EXPECT_TRUE(ctx.run_until([&] { return a.ticks_ >= 4; }, 100));
    EXPECT_EQ(a.ticks_, 4);
    EXPECT_FALSE(ctx.run_until([&] { return false; }, 10));
}

TEST(SimContext, ComponentUnregistersOnDestruction) {
    SimContext ctx;
    {
        CountingComponent a{ctx, "a"};
        EXPECT_EQ(ctx.component_count(), 1U);
    }
    EXPECT_EQ(ctx.component_count(), 0U);
    ctx.step(); // must not touch the destroyed component
}

TEST(Rng, DeterministicAcrossInstances) {
    Rng a{123};
    Rng b{123};
    for (int i = 0; i < 1000; ++i) { ASSERT_EQ(a.next(), b.next()); }
}

TEST(Rng, UniformStaysInRange) {
    Rng rng{7};
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.uniform(10, 20);
        ASSERT_GE(v, 10U);
        ASSERT_LE(v, 20U);
    }
}

TEST(Rng, UniformCoversRangeRoughlyEvenly) {
    Rng rng{99};
    std::array<int, 8> histogram{};
    for (int i = 0; i < 80000; ++i) { ++histogram[rng.uniform(0, 7)]; }
    for (const int count : histogram) {
        EXPECT_GT(count, 9000);
        EXPECT_LT(count, 11000);
    }
}

TEST(LatencyStat, TracksMinMeanMax) {
    LatencyStat s;
    s.record(4);
    s.record(8);
    s.record(12);
    EXPECT_EQ(s.count(), 3U);
    EXPECT_EQ(s.min(), 4U);
    EXPECT_EQ(s.max(), 12U);
    EXPECT_DOUBLE_EQ(s.mean(), 8.0);
}

TEST(LatencyStat, QuantileApproximatesDistribution) {
    LatencyStat s;
    for (Cycle v = 1; v <= 1000; ++v) { s.record(v); }
    EXPECT_GE(s.quantile(0.99), 500U);
    EXPECT_LE(s.quantile(0.10), 255U);
}

TEST(StatSet, NamedCountersAccumulate) {
    StatSet set;
    set.counter("a") += 3;
    set.counter("a") += 2;
    set.counter("b") = 7;
    EXPECT_EQ(set.get("a"), 5U);
    EXPECT_EQ(set.get("b"), 7U);
    EXPECT_EQ(set.get("missing"), 0U);
}

TEST(Check, ViolationCarriesLocationAndMessage) {
    try {
        REALM_EXPECTS(false, "something broke");
        FAIL() << "should have thrown";
    } catch (const ContractViolation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("something broke"), std::string::npos);
        EXPECT_NE(what.find("test_sim.cpp"), std::string::npos);
    }
}

} // namespace
} // namespace realm::sim
