#include "noc/ni.hpp"

#include "sim/check.hpp"

namespace realm::noc {

void NocNi::reset() {
    w_dest_.clear();
    w_beats_left_.clear();
    w_in_flight_.clear();
    r_in_flight_.clear();
    rsp_rr_ = 0;
    req_seq_.clear();
    rsp_seq_.clear();
    req_reorder_.clear();
    rsp_reorder_.clear();
}

void NocNi::deliver_request(const NocPacket& pkt, axi::AxiChannel& ch) {
    // The injector held credits for this flit, so the staging space exists
    // by construction; a full lane here is a credit leak.
    if (const auto* aw = std::get_if<axi::AwFlit>(&pkt.flit)) {
        REALM_ENSURES(ch.aw.can_push(),
                      owner_ + ": credited request ejection backpressured");
        ch.aw.push(*aw);
        return;
    }
    if (const auto* w = std::get_if<axi::WFlit>(&pkt.flit)) {
        REALM_ENSURES(ch.w.can_push(),
                      owner_ + ": credited request ejection backpressured");
        ch.w.push(*w);
        return;
    }
    const auto* ar = std::get_if<axi::ArFlit>(&pkt.flit);
    REALM_EXPECTS(ar != nullptr, owner_ + ": malformed request packet");
    REALM_ENSURES(ch.ar.can_push(),
                  owner_ + ": credited request ejection backpressured");
    ch.ar.push(*ar);
}

bool NocNi::try_eject_request(const NocPacket& pkt,
                              const std::vector<axi::AxiChannel*>& egress) {
    REALM_EXPECTS(pkt.src < egress.size() && egress[pkt.src] != nullptr,
                  owner_ + ": request ejected at a node without a subordinate");
    axi::AxiChannel& ch = *egress[pkt.src];
    Reorder& ro = req_reorder_[pkt.src];
    if (pkt.seq != ro.expected) {
        // Early arrival on a faster path: hold it (its credits stay in
        // flight) until the injection-order predecessors catch up.
        const bool inserted = ro.stash.emplace(pkt.seq, pkt).second;
        REALM_ENSURES(inserted, owner_ + ": duplicate request sequence number");
        return true;
    }
    deliver_request(pkt, ch);
    ++ro.expected;
    // Close any gap the stash already covers, in injection order
    // (request delivery never backpressures, so this drains fully).
    drain_stash(ro, [&](const NocPacket& p) {
        deliver_request(p, ch);
        return true;
    });
    return true;
}

bool NocNi::deliver_response(const NocPacket& pkt, axi::AxiChannel& mgr) {
    if (const auto* b = std::get_if<axi::BFlit>(&pkt.flit)) {
        if (!mgr.b.can_push()) { return false; }
        if (auto it = w_in_flight_.find(b->id); it != w_in_flight_.end() &&
                                                it->second.count > 0) {
            --it->second.count;
        }
        mgr.b.push(*b);
    } else {
        const auto* r = std::get_if<axi::RFlit>(&pkt.flit);
        REALM_EXPECTS(r != nullptr, owner_ + ": malformed response packet");
        if (!mgr.r.can_push()) { return false; }
        if (r->last) {
            if (auto it = r_in_flight_.find(r->id); it != r_in_flight_.end() &&
                                                    it->second.count > 0) {
                --it->second.count;
            }
        }
        mgr.r.push(*r);
    }
    // The response credits stay in flight until the delivery into the
    // manager channel actually happens (which may lag the arrival when the
    // packet sat in the reorder stash).
    CreditPool& pool = book_->rsp(pkt.dest, pkt.src);
    if (fc_.credit_return_delay == 0) {
        pool.release(pkt.flits);
    } else {
        pool.release_at(ctx_->now() + fc_.credit_return_delay, pkt.flits);
    }
    return true;
}

void NocNi::drain_response_stash(axi::AxiChannel* local_mgr) {
    if (local_mgr == nullptr) { return; }
    for (auto& [src, ro] : rsp_reorder_) {
        drain_stash(ro, [&](const NocPacket& p) {
            return deliver_response(p, *local_mgr);
        });
    }
}

bool NocNi::try_eject_response(const NocPacket& pkt, axi::AxiChannel* local_mgr) {
    REALM_EXPECTS(local_mgr != nullptr,
                  owner_ + ": response ejected at a node without a manager");
    Reorder& ro = rsp_reorder_[pkt.src];
    if (pkt.seq != ro.expected) {
        const bool inserted = ro.stash.emplace(pkt.seq, pkt).second;
        REALM_ENSURES(inserted, owner_ + ": duplicate response sequence number");
        return true;
    }
    if (!deliver_response(pkt, *local_mgr)) { return false; }
    ++ro.expected;
    drain_stash(ro, [&](const NocPacket& p) {
        return deliver_response(p, *local_mgr);
    });
    return true;
}

} // namespace realm::noc
