/// \file
/// \brief Per-manager online transaction monitor (the monitoring plane's FSM).
///
/// A TxnMonitor is a pass-through component spliced between a manager (traffic
/// model) and the fabric port it drives, in the style of AxiLatencyProbe: it
/// forwards at most one flit per channel per cycle and adds exactly one cycle
/// per hop each way. While forwarding it tracks every outstanding AW/AR burst
/// online and maintains per-tenant counters:
///
///  - **timeouts**: a burst outstanding longer than `timeout_cycles` (flagged
///    once per burst; late completions still record their latency);
///  - **orphaned bursts**: a B/R-last response with no matching request, or a
///    request still incomplete when the run ends (`finalize()`);
///  - **protocol stalls**: a request handshake held at the monitor boundary
///    for `stall_cycles` consecutive cycles (downstream would not accept);
///  - **W-production gaps**: an accepted write burst whose manager produced no
///    W beat for `stall_cycles` cycles while the channel could take one -- the
///    signature of the W-stall DoS attack.
///
/// Completed burst latencies stream into fixed-memory QuantileSketches (one
/// read, one write), giving P50/P99/P999 for every manager at ~9 KiB each.
/// Each monitor lives on one shard of the sharded kernel; sketches are merged
/// single-threaded at harvest, so results stay bit-identical and race-free.
///
/// Detection (see mon/detector.hpp) is evaluated online over fixed windows of
/// `window_cycles`: windowed bytes/cycle >= `bw_threshold`, windowed held
/// fraction >= `held_threshold`, windowed mean outstanding bursts >=
/// `occ_threshold`, or any W-gap flags the manager. All event
/// cycles are deterministic functions of simulated history -- never of when
/// the activity-aware scheduler happened to tick the monitor -- so verdicts
/// and time-to-detect are identical across schedulers and shard counts.
#pragma once

#include "axi/channel.hpp"
#include "mon/detector.hpp"
#include "mon/quantile.hpp"
#include "sim/component.hpp"

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

namespace realm::mon {

/// Detection / pathology thresholds. All fields are result-affecting and
/// hashed into `config_hash` when monitors are enabled.
struct TxnMonitorConfig {
    /// Outstanding burst age that counts as a timeout.
    sim::Cycle timeout_cycles = 50'000;
    /// Held-handshake streak and W-production gap that count as a stall.
    /// Must stay below the W-stall attack's 64-cycle trickle to catch it.
    sim::Cycle stall_cycles = 48;
    /// Detection window length for the bandwidth / backpressure signals.
    sim::Cycle window_cycles = 1024;
    /// Windowed bytes/cycle (reads + writes) at or above this flags kSignalBandwidth.
    double bw_threshold = 6.0;
    /// Windowed held fraction at or above this flags kSignalBackpressure.
    double held_threshold = 0.75;
    /// Windowed mean in-demand bursts at or above this flags kSignalOccupancy.
    /// Reads count from AR to R-last, writes only while their W data is still
    /// being produced (AW to W-last at the boundary): waiting on a late B is
    /// congestion suffered, not fabric demand, so a victim queueing behind an
    /// attack never inherits the attacker's signature. A blocking core can
    /// never average above 1, while a buffered hog keeps its pipeline pinned
    /// full however congested the fabric gets: the gap separates them.
    double occ_threshold = 1.5;
};

class TxnMonitor : public sim::Component {
public:
    TxnMonitor(sim::SimContext& ctx, std::string name, axi::AxiChannel& upstream,
               axi::AxiChannel& downstream, TxnMonitorConfig config = {});

    void reset() override;
    void tick() override;

    /// Close the books at harvest: evaluates the trailing partial window and
    /// counts still-outstanding bursts as orphaned requests. Idempotent.
    void finalize();

    /// \name Latency telemetry
    ///@{
    [[nodiscard]] const QuantileSketch& read_sketch() const noexcept { return read_sketch_; }
    [[nodiscard]] const QuantileSketch& write_sketch() const noexcept { return write_sketch_; }
    /// Reads and writes folded into one distribution.
    [[nodiscard]] QuantileSketch combined_sketch() const {
        QuantileSketch s = read_sketch_;
        s.merge(write_sketch_);
        return s;
    }
    ///@}

    /// \name Per-tenant counters
    ///@{
    [[nodiscard]] std::uint64_t aw_count() const noexcept { return aw_count_; }
    [[nodiscard]] std::uint64_t ar_count() const noexcept { return ar_count_; }
    [[nodiscard]] std::uint64_t bytes_read() const noexcept { return bytes_read_; }
    [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_; }
    [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }
    [[nodiscard]] std::uint64_t orphan_responses() const noexcept { return orphan_responses_; }
    [[nodiscard]] std::uint64_t orphan_requests() const noexcept { return orphan_requests_; }
    [[nodiscard]] std::uint64_t stall_events() const noexcept { return stall_events_; }
    [[nodiscard]] std::uint64_t w_gap_events() const noexcept { return w_gap_events_; }
    [[nodiscard]] std::uint64_t held_cycles() const noexcept { return held_cycles_; }
    /// Time-integral of outstanding bursts since attach (burst-cycles).
    [[nodiscard]] std::uint64_t occupancy_integral() const noexcept {
        return occ_integral_total_ + window_occ_;
    }
    /// Mean outstanding bursts since attach, in 1/1000ths (set by finalize()).
    [[nodiscard]] std::uint64_t occupancy_milli() const noexcept { return occ_avg_milli_; }
    ///@}

    /// \name Detector verdict
    ///@{
    [[nodiscard]] bool flagged() const noexcept { return signals_ != kSignalNone; }
    [[nodiscard]] std::uint8_t signals() const noexcept { return signals_; }
    /// Cycles from monitor attach to the first firing signal (0 if never).
    [[nodiscard]] sim::Cycle time_to_detect() const noexcept {
        return first_detect_ == sim::kNoCycle ? 0 : first_detect_ - attach_cycle_;
    }
    ///@}

private:
    struct Outstanding {
        sim::Cycle issued = 0;
        bool timed_out = false;
    };
    struct WBurst {
        std::uint32_t beats_left = 0;
        std::uint32_t beat_bytes = 0;
    };
    /// Per-ID outstanding-burst FIFO. Managers use a handful of distinct AXI
    /// IDs, so a linear-scanned flat vector beats a hash map on the per-flit
    /// hot path (the dominant monitor cost on saturated fabrics).
    struct OpenQueue {
        axi::IdT id = 0;
        std::deque<Outstanding> fifo;
    };

    void forward_flits();
    void accrue_occupancy(sim::Cycle to);
    void account_held();
    void check_timeouts();
    void check_w_gap();
    void roll_windows();
    void close_window(sim::Cycle end_cycle);
    void flag(std::uint8_t signal, sim::Cycle at);
    void update_activity();

    axi::SubordinateView up_;
    axi::ManagerView down_;
    TxnMonitorConfig cfg_;
    sim::Cycle attach_cycle_ = 0;

    std::deque<Outstanding>& open_fifo(std::vector<OpenQueue>& open, axi::IdT id);
    std::deque<Outstanding>* find_fifo(std::vector<OpenQueue>& open, axi::IdT id);

    std::vector<OpenQueue> write_open_;
    std::vector<OpenQueue> read_open_;
    std::vector<std::pair<axi::IdT, std::uint32_t>> r_bytes_per_beat_;
    std::deque<WBurst> w_bursts_;
    sim::Cycle last_w_cycle_ = 0;
    bool w_gap_flagged_ = false;

    QuantileSketch read_sketch_;
    QuantileSketch write_sketch_;

    std::uint64_t aw_count_ = 0;
    std::uint64_t ar_count_ = 0;
    std::uint64_t bytes_read_ = 0;
    std::uint64_t bytes_written_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t orphan_responses_ = 0;
    std::uint64_t orphan_requests_ = 0;
    std::uint64_t stall_events_ = 0;
    std::uint64_t w_gap_events_ = 0;
    std::uint64_t held_cycles_ = 0;
    sim::Cycle next_timeout_deadline_ = sim::kNoCycle;

    // Held-handshake streaks per request channel: {streak start, reported}.
    sim::Cycle held_streak_start_[3] = {sim::kNoCycle, sim::kNoCycle, sim::kNoCycle};
    bool held_streak_reported_[3] = {false, false, false};

    sim::Cycle window_start_ = 0;
    std::uint64_t window_bytes_ = 0;
    std::uint64_t window_held_ = 0;

    // Outstanding-burst occupancy, integrated event-driven so the lazy
    // scheduler stays exact: the count only changes in awake cycles.
    std::uint64_t occ_count_ = 0;
    sim::Cycle occ_last_cycle_ = 0;
    std::uint64_t window_occ_ = 0;        ///< burst-cycles in the open window
    std::uint64_t occ_integral_total_ = 0; ///< burst-cycles in closed windows
    std::uint64_t occ_avg_milli_ = 0;

    std::uint8_t signals_ = kSignalNone;
    sim::Cycle first_detect_ = sim::kNoCycle;
    bool finalized_ = false;
};

} // namespace realm::mon
