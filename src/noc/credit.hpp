/// \file
/// \brief Credit-based flow control for the NoC transport layer: wormhole
///        flit links with per-VC credits, and end-to-end credit pools
///        between injecting and ejecting network interfaces.
///
/// The credited transport *enforces* every buffer bound (the legacy
/// provisioned transport and its assumed 1024-flit staging are gone — the
/// credited numbers are the tracked baseline):
///
///  - **Wormhole worms.** A data-carrying packet (W / R beat) serializes
///    into `flits_per_packet` flits (header + payload sized from the AXI
///    beat width); address/response packets (AW / AR / B) are single-flit
///    headers. A link transmits one flit per cycle, so a worm occupies its
///    link for `flits` cycles — the head-of-line blocking the AXI-REALM RTL
///    work measures on real interconnects, now visible in the DoS matrix.
///  - **Per-VC link credits.** Each link buffers at most `vc_depth` flits
///    per virtual channel at the receiver; `NocLink` asserts the bound on
///    every push. The request and response networks are disjoint physical
///    links; a link carries one VC by default, two under the O1TURN
///    routing policy (one per route class — see noc/routing.hpp).
///  - **End-to-end credits.** An injecting NI may only send a request worm
///    toward subordinate node D while it holds `flits` credits from D's
///    pool; credits return when the target NI's staging drains into the
///    egress mux. Ejection therefore *never* backpressures the network
///    (asserted). Responses use a separate pool per (manager, subordinate)
///    pair, so the request/response split keeps its deadlock-freedom
///    argument. With `credit_return_delay > 0` a returning credit rides
///    the response network for that many cycles instead of materializing
///    at the drain point instantaneously — the pool tracks the pending
///    returns, and conservation (held + in flight == capacity) stays
///    asserted on every transition.
///
/// Sharded execution (see `sim::EdgeFlushable`): links and pools that cross
/// shard boundaries run in *edge-registered* mode — producer-side writes
/// are staged thread-privately during the tick phase and committed at the
/// cycle-edge barrier. Because the registered contract already makes every
/// push visible only at N+1 (and mesh credit returns ride the response
/// network for >= 1 cycle), the commit point is unobservable: results are
/// bit-identical for every shard count, including the single-thread run.
#pragma once

#include "axi/channel.hpp"
#include "noc/packet.hpp"

#include "sim/check.hpp"
#include "sim/context.hpp"
#include "sim/link.hpp"
#include "sim/ring.hpp"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace realm::noc {

/// Flow-control knobs shared by every NoC fabric (ring and mesh).
struct NocFlowConfig {
    /// Flits per data-carrying packet (W / R beat): header + payload flits,
    /// i.e. the AXI beat width over the link phit width. AW / AR / B
    /// packets are single-flit headers.
    std::uint32_t flits_per_packet = 4;
    /// Receiver buffer depth of one link VC, in flits. Must hold at least
    /// one whole worm (`vc_depth >= flits_per_packet`).
    std::uint32_t vc_depth = 8;
    /// End-to-end credit pool per (source node, target NI) pair, in flits.
    /// Bounds the per-source staging occupancy at a subordinate NI (request
    /// pool) and the in-flight responses toward a manager NI (response
    /// pool). Must exceed one worm plus its header
    /// (`e2e_credits >= flits_per_packet + 1`) so an AW parked in staging
    /// can never starve its own data beats.
    std::uint32_t e2e_credits = 32;
    /// Cycles a returning end-to-end credit spends riding the response
    /// network before the injector may reuse it (0 = instantaneous release
    /// at the drain point, the historical behaviour; the mesh forces >= 1
    /// so credit returns are cycle-edge events the sharded kernel can
    /// commit at the barrier). Sharpens the round-trip-limited throughput
    /// numbers without touching any buffer bound: a pending return still
    /// counts as in flight.
    std::uint32_t credit_return_delay = 0;
    /// Uniform pipeline depth of every link, in cycles: a flit pushed at
    /// cycle N becomes poppable at N + link_latency. 1 is the historical
    /// registered contract (push at N, visible at N+1). Values > 1 model
    /// channel registering (AXI-REALM-style pipelined interconnects) and
    /// are the conservative lookahead of the sharded kernel: with every
    /// cross-shard channel carrying >= L cycles of modeled latency, shards
    /// may run L cycles between barriers (the mesh forces
    /// `credit_return_delay >= link_latency` so credit returns carry the
    /// same lookahead).
    std::uint32_t link_latency = 1;

    /// Flit count of a request/response packet under this config.
    [[nodiscard]] std::uint32_t packet_flits(bool data_carrying) const noexcept {
        return data_carrying ? flits_per_packet : 1;
    }

    void validate() const;
};

/// One end-to-end credit pool: a counted reservation of `capacity` flits of
/// buffer space at a receiving NI. `in_flight + available == capacity` is
/// asserted on every transition, so a leak or double-release trips
/// immediately instead of showing up as a hung sweep hours later. Credits
/// released with `release_at` stay in flight (riding the response network)
/// until their ready cycle; `settle(now)` matures them.
///
/// Cross-shard pools use `stage_release` instead of `release_at`: the
/// releasing shard appends to a pool-private staging vector (no lock — one
/// shard releases into any given pool) and the kernel commits the batch at
/// the cycle edge via `flush_edge`. The taker's `settle`/`take` run on the
/// consuming shard and never touch the staging storage, so the tick phase
/// is race-free.
class CreditPool : public sim::EdgeFlushable {
public:
    explicit CreditPool(std::uint32_t capacity = 0) : capacity_{capacity},
                                                      available_{capacity} {
        // Conservation bounds the pending queue: every pending return holds
        // >= 1 flit and pending_total_ <= in_flight <= capacity, so at most
        // `capacity` entries ever queue. Reserving that bound here keeps
        // release_at/settle allocation-free for the lifetime of the pool.
        pending_.reserve(capacity_);
    }

    [[nodiscard]] bool can_take(std::uint32_t flits) const noexcept {
        return available_ >= flits;
    }
    void take(std::uint32_t flits) {
        REALM_EXPECTS(can_take(flits), "credit take without available credits");
        available_ -= flits;
    }
    /// Immediate release (zero return delay): the flits are reusable now.
    void release(std::uint32_t flits) {
        REALM_ENSURES(flits <= in_flight() - pending_total_,
                      "credit release exceeds in-flight credits");
        available_ += flits;
    }
    /// Delayed release: the credits stay in flight until `ready_at`
    /// (returns ride the response network), then mature on `settle`.
    void release_at(sim::Cycle ready_at, std::uint32_t flits) {
        REALM_ENSURES(flits <= in_flight() - pending_total_,
                      "credit release exceeds in-flight credits");
        pending_.push_back(Pending{ready_at, flits});
        pending_total_ += flits;
    }
    /// Cross-shard release: staged thread-privately, committed into the
    /// pending queue at the cycle-edge flush. `ready_at` must be strictly
    /// past the staging cycle (the mesh forces `credit_return_delay >= 1`),
    /// so deferring the commit to the barrier is unobservable.
    void stage_release(sim::Cycle ready_at, std::uint32_t flits) {
        staged_.push_back(Pending{ready_at, flits});
    }
    [[nodiscard]] bool stage_empty() const noexcept { return staged_.empty(); }
    /// Commits staged releases (kernel barrier; single-threaded).
    void flush_edge(sim::Cycle /*now*/) override {
        for (const Pending& p : staged_) {
            REALM_ENSURES(p.flits <= in_flight() - pending_total_,
                          "credit release exceeds in-flight credits");
            pending_.push_back(p);
            pending_total_ += p.flits;
        }
        staged_.clear();
    }
    /// Matures every pending return whose ready cycle has arrived. Returns
    /// are queued in release order and delays are uniform, so the queue
    /// head is always the earliest.
    void settle(sim::Cycle now) {
        while (!pending_.empty() && pending_.front().ready_at <= now) {
            available_ += pending_.front().flits;
            pending_total_ -= pending_.front().flits;
            pending_.pop_front();
        }
    }

    /// \name Typed credit-return policy (the drain hook of the staging links)
    ///@{
    /// Fixes how drained staging flits come back to this pool: immediately
    /// (`delay == 0`), after `delay` cycles on the response network, or —
    /// with `deferred` (mesh fabrics) — staged and committed at the
    /// cycle-edge barrier so the hook is safe to fire from any shard.
    /// Stored in the pool itself so the links' pop hooks need no captured
    /// state (see `sim::PopHook`); `ctx` must outlive the pool.
    void configure_return(const sim::SimContext& ctx, std::uint32_t delay,
                          bool deferred) noexcept {
        return_ctx_ = &ctx;
        return_delay_ = delay;
        return_deferred_ = deferred;
    }
    /// Returns `flits` credits under the configured policy.
    void return_credits(std::uint32_t flits) {
        REALM_EXPECTS(return_ctx_ != nullptr,
                      "credit return without a configured policy");
        if (return_deferred_) {
            if (staged_.empty()) { return_ctx_->note_edge_dirty(*this); }
            stage_release(return_ctx_->now() + return_delay_, flits);
        } else if (return_delay_ == 0) {
            release(flits);
        } else {
            release_at(return_ctx_->now() + return_delay_, flits);
        }
    }
    /// `sim::PopHook`-shaped trampoline: `user` is the pool, `arg` the flit
    /// count of the drained packet.
    static void return_hook(void* pool, std::uint32_t flits) {
        static_cast<CreditPool*>(pool)->return_credits(flits);
    }
    ///@}

    [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::uint32_t available() const noexcept { return available_; }
    /// Credits not reusable by the injector: taken by in-network/staged
    /// worms *plus* pending returns still riding the response network.
    [[nodiscard]] std::uint32_t in_flight() const noexcept {
        return capacity_ - available_;
    }
    /// The pending-return share of `in_flight()`.
    [[nodiscard]] std::uint32_t pending_returns() const noexcept {
        return pending_total_;
    }

    /// Conservation invariant: credits in flight + credits held equal the
    /// configured pool, and pending returns never exceed what is in flight.
    /// Structurally true of the counters; asserting it (rather than
    /// sampling) documents and pins the contract.
    void check_conserved() const {
        REALM_ENSURES(available_ <= capacity_, "credit pool over-released");
        REALM_ENSURES(in_flight() + available_ == capacity_,
                      "credit conservation violated");
        REALM_ENSURES(pending_total_ <= in_flight(),
                      "pending credit returns exceed in-flight credits");
    }

private:
    struct Pending {
        sim::Cycle ready_at = 0;
        std::uint32_t flits = 0;
    };

    std::uint32_t capacity_ = 0;
    std::uint32_t available_ = 0;
    std::uint32_t pending_total_ = 0;
    /// Queued returns in one contiguous block, reserved to the conservation
    /// bound at construction (replaces a `std::deque` and its 512-byte
    /// chunk allocations on the settle hot path).
    sim::FlatRing<Pending> pending_;
    std::vector<Pending> staged_; ///< cross-shard releases awaiting the edge
    /// Return policy (see `configure_return`); unset until wired.
    const sim::SimContext* return_ctx_ = nullptr;
    std::uint32_t return_delay_ = 0;
    bool return_deferred_ = false;
};

/// Every end-to-end pool of one fabric: request pools indexed by
/// (target subordinate node, source manager node) and response pools by
/// (target manager node, source subordinate node). Kept separate so the
/// request/response protocol split stays deadlock-free under credit
/// exhaustion.
///
/// Pools materialize lazily: a 32x32 mesh would otherwise eagerly build
/// 2 x 1024^2 pools, of which the role map ever touches a few thousand
/// (managers x memories). `unordered_map` is node-based, so references
/// handed to the credit-return closures stay valid forever.
///
/// Sharded fabrics must `freeze()` the book after materializing every pool
/// their tick phase can touch (the mesh constructor touches req pools via
/// `wire_credit_returns` and rsp pools explicitly): `pool()` inserts into a
/// map shared by all shards, so lazy materialization from concurrent ticks
/// would be a data race. After `freeze()`, looking up a pool that was never
/// materialized asserts instead of inserting.
class CreditBook {
public:
    CreditBook(NodeId num_nodes, const NocFlowConfig& fc)
        : n_{num_nodes}, credits_{fc.e2e_credits} {}

    [[nodiscard]] CreditPool& req(NodeId dest, NodeId src) const {
        return pool(req_, dest, src);
    }
    [[nodiscard]] CreditPool& rsp(NodeId dest, NodeId src) const {
        return pool(rsp_, dest, src);
    }

    [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }

    /// Forbids materializing further pools: every later `req`/`rsp` call
    /// must hit an existing pool (asserted). Called once the single-threaded
    /// construction phase has touched every pool the fabric can reach, so
    /// the parallel tick phase never mutates the shared maps.
    void freeze() noexcept { frozen_ = true; }
    [[nodiscard]] bool frozen() const noexcept { return frozen_; }
    /// Number of materialized pools (tests assert a frozen book stops
    /// growing — the map must never mutate during the parallel tick phase).
    [[nodiscard]] std::size_t materialized() const noexcept {
        return req_.size() + rsp_.size();
    }

    /// Asserts conservation on every (materialized) pool.
    void check_conserved() const {
        for (const auto& [key, p] : req_) { p.check_conserved(); }
        for (const auto& [key, p] : rsp_) { p.check_conserved(); }
    }

private:
    using PoolMap = std::unordered_map<std::uint32_t, CreditPool>;

    [[nodiscard]] CreditPool& pool(PoolMap& m, NodeId dest, NodeId src) const {
        REALM_EXPECTS(dest < n_ && src < n_, "credit pool index out of range");
        const std::uint32_t key =
            (static_cast<std::uint32_t>(dest) << 16) | src;
        if (frozen_) {
            const auto it = m.find(key);
            REALM_EXPECTS(it != m.end(),
                          "credit pool lookup after freeze for a pool never "
                          "materialized during construction");
            return it->second;
        }
        return m.try_emplace(key, credits_).first->second;
    }

    NodeId n_;
    std::uint32_t credits_;
    bool frozen_ = false;
    /// Mutable: materializing an untouched pool is unobservable (it is
    /// born full), so const callers may trigger it.
    mutable PoolMap req_;
    mutable PoolMap rsp_;
};

/// One NoC link: a physical wormhole channel carrying `num_vcs` virtual
/// channels. The channel transmits one flit per cycle (a worm of `n` flits
/// occupies it for `n` cycles — wormhole serialization; the header still
/// forwards with the usual one-cycle hop latency) and each VC buffers at
/// most `vc_depth` flits at the receiver, asserted on every push. A packet
/// rides the VC named by its route class (`NocPacket::vc`); VCs hold
/// private buffers, so a blocked worm in one class never holds buffer
/// space another class waits on — the O1TURN deadlock-freedom requirement
/// (see noc/routing.hpp).
///
/// Storage: one contiguous backing array of (packet, push cycle) slots for
/// all VCs of the link — `vc_depth` slots per VC, addressed as per-VC ring
/// buffers — replacing the former per-VC heap-allocated queues. The whole
/// in-flight state of a router port is one cache-friendly block.
///
/// Modes:
///  - **Immediate** (default; ring fabric, standalone links): `push`
///    commits into the ring at once. Capacity checks see pops the moment
///    they happen — including same-cycle pops by consumers that ticked
///    earlier, which is why immediate links must never cross shards.
///  - **Edge-registered** (`edge_registered = true`; every mesh link):
///    `push` stages producer-side, the kernel commits at the cycle-edge
///    barrier (`flush_edge`), and the producer's capacity view is a
///    snapshot refreshed at the same barrier. Pushes are stamped with the
///    staging cycle, so visibility (at N + link_latency) is exactly the
///    pipelined registered contract; what changes is that a pop at cycle N
///    frees sender-visible space at the next barrier instead of
///    same-cycle — deterministic and order-independent, hence safe under
///    any shard layout (the flit exchange of the sharded kernel), at the
///    cost of a barrier period of capacity-return latency.
class NocLink : public sim::EdgeFlushable {
public:
    NocLink(const sim::SimContext& ctx, std::string name, const NocFlowConfig& fc,
            std::uint8_t num_vcs = 1, bool edge_registered = false)
        : ctx_{&ctx}, fc_{fc}, name_{std::move(name)}, edge_{edge_registered},
          cap_{fc.vc_depth} {
        REALM_EXPECTS(num_vcs >= 1, "a NoC link needs at least one VC");
        vc_.resize(num_vcs);
        slots_.resize(static_cast<std::size_t>(num_vcs) * cap_);
    }

    /// True when a packet of `flits` flits may start transmission on VC
    /// `vc` this cycle: the physical channel is not serializing an earlier
    /// worm and that VC holds enough free flit slots at the receiver (in
    /// edge mode, as of the last cycle edge).
    [[nodiscard]] bool can_push(std::uint32_t flits, std::uint8_t vc = 0) const {
        const VcState& s = vc_.at(vc);
        const std::uint32_t pkts = edge_ ? s.snap_count + s.staged_count : s.count;
        const std::uint32_t occ = edge_ ? s.snap_flits + s.staged_flits : s.flits;
        return ctx_->now() >= busy_until_ && pkts < cap_ &&
               occ + flits <= fc_.vc_depth;
    }
    [[nodiscard]] bool can_push(const NocPacket& pkt) const {
        return can_push(pkt.flits, pkt.vc);
    }

    void push(NocPacket pkt);

    [[nodiscard]] bool can_pop(std::uint8_t vc = 0) const {
        const VcState& s = vc_.at(vc);
        return s.count > 0 &&
               slot(vc, s.head).pushed_at + fc_.link_latency <= ctx_->now();
    }
    [[nodiscard]] const NocPacket& front(std::uint8_t vc = 0) const {
        REALM_EXPECTS(can_pop(vc), "front of empty NoC link " + name_);
        return slot(vc, vc_.at(vc).head).pkt;
    }
    NocPacket pop(std::uint8_t vc = 0);

    /// Consumer view: no committed packets on any VC (staged pushes are
    /// covered by the flush-time wake, so a consumer may sleep on this).
    [[nodiscard]] bool empty() const noexcept {
        for (const VcState& s : vc_) {
            if (s.count > 0) { return false; }
        }
        return true;
    }
    void set_wake_on_push(sim::Component* c) noexcept { wake_on_push_ = c; }

    /// Commits staged pushes into the rings and refreshes the producer's
    /// capacity snapshot (kernel barrier; single-threaded).
    void flush_edge(sim::Cycle now) override;

    /// \name Introspection (routing adaptivity, tests, benches)
    ///@{
    [[nodiscard]] std::uint8_t num_vcs() const noexcept {
        return static_cast<std::uint8_t>(vc_.size());
    }
    /// Producer-side occupancy: committed + own staged flits in edge mode
    /// (deterministic under any shard layout — never reads state another
    /// shard is mutating), live occupancy otherwise. The west-first
    /// adaptivity tie-break reads this.
    [[nodiscard]] std::uint32_t buffered_flits(std::uint8_t vc = 0) const {
        const VcState& s = vc_.at(vc);
        return edge_ ? s.snap_flits + s.staged_flits : s.flits;
    }
    [[nodiscard]] std::uint32_t peak_buffered_flits(std::uint8_t vc = 0) const {
        return vc_.at(vc).peak;
    }
    [[nodiscard]] const NocFlowConfig& flow() const noexcept { return fc_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    ///@}

    /// Asserts the per-VC occupancy bound (tests call this every cycle;
    /// pushes already enforce it inline).
    void check_bounded() const {
        for (const VcState& s : vc_) {
            REALM_ENSURES(s.flits + s.staged_flits <= fc_.vc_depth,
                          name_ + ": VC buffer exceeds its configured depth");
        }
    }

private:
    struct Entry {
        NocPacket pkt;
        sim::Cycle pushed_at = 0;
    };
    /// Per-VC ring state over the shared backing array. `count`/`flits` are
    /// live (consumer + flush); `snap_*` is the producer's edge snapshot;
    /// `staged_*` counts the producer's uncommitted pushes.
    struct VcState {
        std::uint32_t head = 0;
        std::uint32_t count = 0;
        std::uint32_t flits = 0;
        std::uint32_t peak = 0;
        std::uint32_t snap_count = 0;
        std::uint32_t snap_flits = 0;
        std::uint32_t staged_count = 0;
        std::uint32_t staged_flits = 0;
    };

    [[nodiscard]] Entry& slot(std::uint8_t vc, std::uint32_t pos) {
        return slots_[static_cast<std::size_t>(vc) * cap_ + pos % cap_];
    }
    [[nodiscard]] const Entry& slot(std::uint8_t vc, std::uint32_t pos) const {
        return slots_[static_cast<std::size_t>(vc) * cap_ + pos % cap_];
    }
    void commit(Entry e); ///< inserts one entry into its VC ring

    const sim::SimContext* ctx_;
    NocFlowConfig fc_;
    std::string name_;
    bool edge_;
    std::uint32_t cap_; ///< ring slots per VC (== vc_depth packets)
    std::vector<Entry> slots_;
    std::vector<VcState> vc_;
    /// Edge mode: pushes awaiting the barrier. Producer-owned during the
    /// tick phase (cleared at the barrier); the consumer must never read it.
    std::vector<Entry> staged_;
    /// Edge mode: pops since the last flush. Consumer-owned during the tick
    /// phase (cleared at the barrier); the producer must never read it.
    bool pop_dirty_ = false;
    sim::Cycle busy_until_ = 0;
    sim::Component* wake_on_push_ = nullptr;
};

/// \name Staging helpers shared by the ring and mesh assemblies
///@{
/// Entries per staging lane: the end-to-end pool bounds staging at
/// `e2e_credits` single-flit entries per lane.
[[nodiscard]] std::size_t staging_depth(const NocFlowConfig& fc);

/// Wires the end-to-end credit returns of one per-source staging channel:
/// the pool's flits come back as the egress mux drains the lanes — after
/// `credit_return_delay` cycles on the response network when configured.
/// With `deferred` (mesh fabrics), returns are staged into the pool and
/// committed at the cycle-edge barrier so they are safe to fire from any
/// shard; requires `credit_return_delay >= 1`.
void wire_credit_returns(const sim::SimContext& ctx, axi::AxiChannel& egress,
                         CreditPool& pool, const NocFlowConfig& fc,
                         bool deferred = false);

/// Flits currently staged in one per-source egress channel's request lanes,
/// weighted by worm length (a staged W beat holds its whole worm's buffer
/// space). Used by the fabric invariant checkers.
[[nodiscard]] std::uint32_t staged_request_flits(const axi::AxiChannel& egress,
                                                 const NocFlowConfig& fc);

/// Asserts one (target NI, source) staging against its end-to-end pool:
/// staged flits (lane occupancy plus the NI's reorder stash, see `NocNi`)
/// within the configured pool, and never more than the credits actually in
/// flight (a credit is either staged at the NI, stashed for reordering, or
/// still in the network). Shared by the ring and mesh
/// `check_flow_invariants`.
void check_staging_invariants(const axi::AxiChannel& egress, const CreditPool& pool,
                              const NocFlowConfig& fc,
                              std::uint32_t stashed_flits = 0);
///@}

} // namespace realm::noc
