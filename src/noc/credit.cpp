#include "noc/credit.hpp"

#include <algorithm>
#include <utility>

namespace realm::noc {

void NocFlowConfig::validate() const {
    REALM_EXPECTS(flits_per_packet >= 1, "flits_per_packet must be >= 1");
    // NocPacket::flits is 8-bit; a longer worm would silently truncate at
    // packetization and leak credits at ejection.
    REALM_EXPECTS(flits_per_packet <= 255, "flits_per_packet must fit 8 bits");
    REALM_EXPECTS(vc_depth >= flits_per_packet,
                  "vc_depth must hold at least one whole worm");
    REALM_EXPECTS(e2e_credits >= flits_per_packet + 1,
                  "e2e_credits must exceed one worm plus its header");
    REALM_EXPECTS(link_latency >= 1, "link_latency must be >= 1");
}

void NocLink::commit(Entry e) {
    VcState& s = vc_[e.pkt.vc];
    REALM_ENSURES(s.count < cap_, name_ + ": VC ring overflow");
    s.flits += e.pkt.flits;
    REALM_ENSURES(s.flits <= fc_.vc_depth,
                  name_ + ": VC buffer exceeds its configured depth");
    if (s.flits > s.peak) { s.peak = s.flits; }
    slot(e.pkt.vc, s.head + s.count) = std::move(e);
    ++s.count;
}

void NocLink::push(NocPacket pkt) {
    REALM_EXPECTS(pkt.vc < vc_.size(), "push into unknown VC of " + name_);
    REALM_EXPECTS(can_push(pkt.flits, pkt.vc),
                  "push into busy/full NoC link " + name_);
    // The worm's tail leaves the sender `flits` cycles after the header;
    // the physical channel is busy until then (shared across VCs).
    busy_until_ = ctx_->now() + pkt.flits;
    if (!edge_) {
        commit(Entry{std::move(pkt), ctx_->now()});
        if (wake_on_push_ != nullptr) {
            wake_on_push_->wake(ctx_->now() + fc_.link_latency);
        }
        return;
    }
    // Edge mode: stage producer-side, stamped with the staging cycle so
    // visibility stays exactly N + link_latency however late the barrier
    // commits it. The registration guard reads producer-owned state only
    // (`staged_` is appended here and cleared at the barrier) — a
    // cross-shard consumer's pop may register the link a second time from
    // its own shard, which is harmless because flush_edge is idempotent.
    VcState& s = vc_[pkt.vc];
    ++s.staged_count;
    s.staged_flits += pkt.flits;
    if (staged_.empty()) { ctx_->note_edge_dirty(*this); }
    staged_.push_back(Entry{std::move(pkt), ctx_->now()});
    // Keep the fast-forward hint honest without touching the (possibly
    // cross-shard) consumer: the component wake fires at the flush.
    ctx_->note_wake(ctx_->now() + fc_.link_latency);
}

NocPacket NocLink::pop(std::uint8_t vc) {
    REALM_EXPECTS(can_pop(vc), "pop from empty NoC link " + name_);
    VcState& s = vc_[vc];
    Entry& e = slot(vc, s.head);
    NocPacket pkt = std::move(e.pkt);
    REALM_ENSURES(s.flits >= pkt.flits, "NoC link flit underflow");
    s.flits -= pkt.flits;
    s.head = (s.head + 1) % cap_;
    --s.count;
    if (edge_ && !pop_dirty_) {
        // The producer's capacity snapshot must learn about this pop at the
        // next edge even if nothing gets pushed meanwhile. Guard on
        // consumer-owned state only (`pop_dirty_` is set here and cleared at
        // the barrier) — never read `staged_`, which the producer's push may
        // be appending to on another shard. If the producer registered too,
        // the duplicate flush is a no-op (flush_edge is idempotent).
        pop_dirty_ = true;
        ctx_->note_edge_dirty(*this);
    }
    return pkt;
}

// Idempotent within one edge (the link may be registered by both its
// producer and its consumer shard): the second call sees an empty staging
// vector and re-takes an unchanged snapshot.
void NocLink::flush_edge(sim::Cycle /*now*/) {
    // The consumer wakes at the earliest cycle any committed entry becomes
    // poppable (`pushed_at + link_latency`), never before: with lookahead
    // batching the barrier runs every `link_latency` cycles, so an entry
    // staged mid-batch matures strictly after this flush. At link_latency 1
    // this degenerates to the historical wake at the flush cycle itself.
    sim::Cycle first = sim::kNoCycle;
    for (Entry& e : staged_) {
        first = std::min(first, e.pushed_at);
        commit(std::move(e));
    }
    staged_.clear();
    for (VcState& s : vc_) {
        s.staged_count = 0;
        s.staged_flits = 0;
        s.snap_count = s.count;
        s.snap_flits = s.flits;
    }
    pop_dirty_ = false;
    if (first != sim::kNoCycle && wake_on_push_ != nullptr) {
        wake_on_push_->wake(first + fc_.link_latency);
    }
}

std::size_t staging_depth(const NocFlowConfig& fc) { return fc.e2e_credits; }

void wire_credit_returns(const sim::SimContext& ctx, axi::AxiChannel& egress,
                         CreditPool& pool, const NocFlowConfig& fc,
                         bool deferred) {
    REALM_EXPECTS(!deferred || fc.credit_return_delay >= 1,
                  "deferred credit returns require credit_return_delay >= 1");
    const std::uint32_t data_flits = fc.packet_flits(/*data_carrying=*/true);
    // The policy lives in the pool; the links carry only {trampoline, pool,
    // flit count} — no allocation, no type erasure (see sim::PopHook).
    pool.configure_return(ctx, fc.credit_return_delay, deferred);
    egress.aw.set_on_pop({&CreditPool::return_hook, &pool, 1});
    egress.ar.set_on_pop({&CreditPool::return_hook, &pool, 1});
    egress.w.set_on_pop({&CreditPool::return_hook, &pool, data_flits});
}

std::uint32_t staged_request_flits(const axi::AxiChannel& egress,
                                   const NocFlowConfig& fc) {
    const std::uint32_t data_flits = fc.packet_flits(/*data_carrying=*/true);
    return static_cast<std::uint32_t>(egress.aw.occupancy()) +
           static_cast<std::uint32_t>(egress.ar.occupancy()) +
           static_cast<std::uint32_t>(egress.w.occupancy()) * data_flits;
}

void check_staging_invariants(const axi::AxiChannel& egress, const CreditPool& pool,
                              const NocFlowConfig& fc,
                              std::uint32_t stashed_flits) {
    const std::uint32_t staged = staged_request_flits(egress, fc) + stashed_flits;
    REALM_ENSURES(staged <= fc.e2e_credits,
                  "NI staging exceeds its end-to-end credit pool");
    REALM_ENSURES(staged <= pool.in_flight(),
                  "staged flits without matching in-flight credits");
}

} // namespace realm::noc
