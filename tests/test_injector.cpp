/// Property tests for the programmable interference injector: every genome
/// decodes to legal parameters and a protocol-legal AXI stream (checker
/// clean, addresses in-span, bursts inside the 4 KiB boundary), the same
/// genome + seed replays bit-identical traffic, genome <-> label round-trips
/// exactly, and the detection plane stays at zero victim false positives
/// when searched attackers carry `hostile=true` ground truth.
#include "axi/checker.hpp"
#include "axi/trace.hpp"
#include "mem/axi_mem_slave.hpp"
#include "scenario/registry.hpp"
#include "scenario/search.hpp"
#include "sim/rng.hpp"
#include "traffic/injector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace realm {
namespace {

traffic::InjectorGenome genome_from(sim::Rng& rng) {
    traffic::InjectorGenome g;
    for (std::uint8_t& gene : g.genes) {
        gene = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    return g;
}

// --- Decode totality ---------------------------------------------------------

void expect_legal_params(const traffic::InjectorParams& p) {
    EXPECT_GE(p.read_beats, 1U);
    EXPECT_LE(p.read_beats, 256U);
    EXPECT_GE(p.write_beats, 1U);
    EXPECT_LE(p.write_beats, 256U);
    EXPECT_LE(p.write_ratio16, 16U);
    EXPECT_GE(p.stride_beats, 1U);
    EXPECT_LE(p.stride_beats, 256U);
    EXPECT_GE(p.on_cycles, 64U);
    EXPECT_LE(p.on_cycles, 1024U);
    EXPECT_LE(p.off_cycles, 448U);
    EXPECT_LE(p.w_stall_cycles, 64U);
    EXPECT_LE(p.head_delay, 96U);
    EXPECT_GE(p.max_outstanding, 1U);
    EXPECT_LE(p.max_outstanding, 4U);
    EXPECT_LE(p.ramp_step, 31U);
    EXPECT_LE(p.span_shift, 3U);
}

TEST(InjectorGenome, DecodeIsTotal) {
    traffic::InjectorGenome zeros;
    traffic::InjectorGenome ones;
    ones.genes.fill(0xFF);
    expect_legal_params(traffic::decode_genome(zeros));
    expect_legal_params(traffic::decode_genome(ones));
    sim::Rng rng{sim::derive_seed("decode-total", 0)};
    for (int i = 0; i < 256; ++i) {
        expect_legal_params(traffic::decode_genome(genome_from(rng)));
    }
}

TEST(InjectorGenome, LabelRoundTripsExactly) {
    sim::Rng rng{sim::derive_seed("label-roundtrip", 0)};
    for (int i = 0; i < 64; ++i) {
        const traffic::InjectorGenome g = genome_from(rng);
        const std::string label = traffic::to_label(g);
        ASSERT_EQ(label.size(), 4 + 2 * traffic::InjectorGenome::kGenes);
        const auto back = traffic::parse_injector_label(label);
        ASSERT_TRUE(back.has_value()) << label;
        EXPECT_TRUE(*back == g) << label;
    }
}

TEST(InjectorGenome, MalformedLabelsAreRejected) {
    EXPECT_FALSE(traffic::parse_injector_label("").has_value());
    EXPECT_FALSE(traffic::parse_injector_label("2atk/hog/none").has_value());
    EXPECT_FALSE(traffic::parse_injector_label("inj:").has_value());
    EXPECT_FALSE(traffic::parse_injector_label("inj:0011").has_value());
    EXPECT_FALSE( // right length, non-hex digit
        traffic::parse_injector_label("inj:zz1122334455667788990011").has_value());
    EXPECT_FALSE( // uppercase is not the canonical encoding
        traffic::parse_injector_label("inj:FF1122334455667788990011").has_value());
}

// --- Traffic legality and determinism ----------------------------------------

/// Injector -> checker -> tracer -> SRAM slave, all in a private context.
struct InjectorBench {
    InjectorBench(const traffic::InjectorGenome& g, std::uint64_t seed) {
        traffic::InjectorConfig icfg;
        icfg.genome = g;
        icfg.read_base = 0x0000;
        icfg.write_base = 0x8000;
        icfg.span_bytes = 0x2000;
        icfg.seed = seed;
        inj_out = std::make_unique<axi::AxiChannel>(ctx, "inj");
        chk_out = std::make_unique<axi::AxiChannel>(ctx, "chk");
        mem_ch = std::make_unique<axi::AxiChannel>(ctx, "mem");
        checker = std::make_unique<axi::AxiChecker>(ctx, "chk", *inj_out, *chk_out);
        tracer = std::make_unique<axi::AxiTracer>(ctx, "trace", *chk_out, *mem_ch);
        mem = std::make_unique<mem::AxiMemSlave>(
            ctx, "mem", *mem_ch, std::make_unique<mem::SramBackend>(2, 2),
            mem::AxiMemSlaveConfig{8, 8, 0});
        inj = std::make_unique<traffic::InjectorEngine>(ctx, "inj", *inj_out, icfg);
    }

    sim::SimContext ctx;
    std::unique_ptr<axi::AxiChannel> inj_out, chk_out, mem_ch;
    std::unique_ptr<axi::AxiChecker> checker;
    std::unique_ptr<axi::AxiTracer> tracer;
    std::unique_ptr<mem::AxiMemSlave> mem;
    std::unique_ptr<traffic::InjectorEngine> inj;
};

TEST(InjectorEngine, EveryGenomeDrivesALegalAxiStream) {
    sim::Rng rng{sim::derive_seed("injector-legal", 0)};
    for (int trial = 0; trial < 24; ++trial) {
        const traffic::InjectorGenome g = genome_from(rng);
        InjectorBench bench{g, sim::derive_seed("injector-legal-seed", trial)};
        bench.ctx.run(6000);

        EXPECT_EQ(bench.checker->violation_count(), 0U)
            << traffic::to_label(g);
        EXPECT_GT(bench.inj->reads_issued() + bench.inj->writes_issued(), 0U)
            << traffic::to_label(g) << ": a genome must generate traffic";
        for (const axi::TraceRecord& rec : bench.tracer->records()) {
            if (rec.channel != axi::TraceRecord::Channel::kAw &&
                rec.channel != axi::TraceRecord::Channel::kAr) {
                continue;
            }
            const bool write = rec.channel == axi::TraceRecord::Channel::kAw;
            const axi::Addr base = write ? 0x8000 : 0x0000;
            const std::uint64_t bytes = (std::uint64_t{rec.len} + 1) * 8;
            EXPECT_GE(rec.addr, base) << traffic::to_label(g);
            EXPECT_LE(rec.addr + bytes, base + 0x2000)
                << traffic::to_label(g) << ": burst leaves the window";
            EXPECT_LE((rec.addr & 4095) + bytes, 4096U)
                << traffic::to_label(g) << ": burst crosses a 4 KiB boundary";
        }
    }
}

TEST(InjectorEngine, SameGenomeAndSeedReplaysBitIdentical) {
    sim::Rng rng{sim::derive_seed("injector-replay", 0)};
    for (int trial = 0; trial < 6; ++trial) {
        const traffic::InjectorGenome g = genome_from(rng);
        InjectorBench a{g, 42};
        InjectorBench b{g, 42};
        a.ctx.run(4000);
        b.ctx.run(4000);
        const auto& ra = a.tracer->records();
        const auto& rb = b.tracer->records();
        ASSERT_EQ(ra.size(), rb.size()) << traffic::to_label(g);
        for (std::size_t i = 0; i < ra.size(); ++i) {
            EXPECT_EQ(ra[i].cycle, rb[i].cycle) << i;
            EXPECT_EQ(ra[i].channel, rb[i].channel) << i;
            EXPECT_EQ(ra[i].id, rb[i].id) << i;
            EXPECT_EQ(ra[i].addr, rb[i].addr) << i;
            EXPECT_EQ(ra[i].len, rb[i].len) << i;
            EXPECT_EQ(ra[i].last, rb[i].last) << i;
        }
    }
}

TEST(InjectorEngine, DifferentSeedsDiverge) {
    traffic::InjectorGenome g;
    g.genes[traffic::InjectorGenome::kWalk] = 2;      // random walk
    g.genes[traffic::InjectorGenome::kWriteRatio] = 128; // mixed traffic
    InjectorBench a{g, 1};
    InjectorBench b{g, 2};
    a.ctx.run(4000);
    b.ctx.run(4000);
    bool differs = a.tracer->records().size() != b.tracer->records().size();
    for (std::size_t i = 0;
         !differs && i < a.tracer->records().size(); ++i) {
        differs = a.tracer->records()[i].addr != b.tracer->records()[i].addr ||
                  a.tracer->records()[i].channel != b.tracer->records()[i].channel;
    }
    EXPECT_TRUE(differs) << "seed must steer the random-walk/mix RNG";
}

// --- Scenario plane integration ----------------------------------------------

scenario::ScenarioConfig smoke_attack_cell() {
    scenario::Sweep sweep = scenario::make_sweep("mesh-dos-smoke");
    for (scenario::SweepPoint& p : sweep.points) {
        if (!p.config.interference.empty()) { return p.config; }
    }
    ADD_FAILURE() << "mesh-dos-smoke has no attack cells";
    return scenario::ScenarioConfig{};
}

TEST(InjectorScenario, ConfigHashSeparatesGenomes) {
    const scenario::ScenarioConfig base = smoke_attack_cell();
    traffic::InjectorGenome a;
    traffic::InjectorGenome b;
    b.genes[0] = 1;
    const scenario::ScenarioConfig ca = scenario::genome_scenario(base, a);
    const scenario::ScenarioConfig cb = scenario::genome_scenario(base, b);
    EXPECT_NE(scenario::config_hash(base), scenario::config_hash(ca))
        << "genome presence must be hashed";
    EXPECT_NE(scenario::config_hash(ca), scenario::config_hash(cb))
        << "every gene byte must be hashed";
    EXPECT_EQ(scenario::config_hash(ca),
              scenario::config_hash(scenario::genome_scenario(base, a)))
        << "hashing must be deterministic";
}

TEST(InjectorScenario, SearchedAttackersKeepDetectorFalsePositiveFree) {
    // Detection-coverage pass: genome attackers inherit `hostile=true` from
    // the DoS cell, so any flagged *benign* manager (the victim) is a false
    // positive. Honest boundary: weak genomes (short duty cycles, tiny
    // bursts) can evade detection — false *negatives* are expected and
    // scored, not asserted, exactly like the random-mix sweeps.
    scenario::ScenarioConfig cfg = smoke_attack_cell();
    cfg.monitors.enabled = true;
    sim::Rng rng{sim::derive_seed("injector-detect", 0)};
    for (int trial = 0; trial < 3; ++trial) {
        const scenario::ScenarioConfig point =
            scenario::genome_scenario(cfg, genome_from(rng));
        const scenario::ScenarioResult r = scenario::run_scenario(point);
        EXPECT_EQ(r.mon_false_positives, 0U)
            << point.name << ": victim flagged as attacker";
        ASSERT_FALSE(r.mgr_hostile.empty());
        EXPECT_EQ(r.mgr_hostile[0], 0U) << "manager 0 is the victim";
        EXPECT_EQ(r.mgr_flagged[0], 0U)
            << point.name << ": victim must never be flagged";
    }
}

} // namespace
} // namespace realm
