#include "cfg/realm_regfile.hpp"

#include "sim/check.hpp"

#include <utility>

namespace realm::cfg {

namespace {

std::uint32_t lo32(std::uint64_t v) noexcept { return static_cast<std::uint32_t>(v); }
std::uint32_t hi32(std::uint64_t v) noexcept { return static_cast<std::uint32_t>(v >> 32); }

void set_lo32(std::uint64_t& v, std::uint32_t half) noexcept {
    v = (v & 0xFFFF'FFFF'0000'0000ULL) | half;
}
void set_hi32(std::uint64_t& v, std::uint32_t half) noexcept {
    v = (v & 0x0000'0000'FFFF'FFFFULL) | (std::uint64_t{half} << 32);
}

std::uint32_t saturate32(std::uint64_t v) noexcept {
    return v > 0xFFFF'FFFFULL ? 0xFFFF'FFFFU : static_cast<std::uint32_t>(v);
}

} // namespace

RealmRegFile::RealmRegFile(std::vector<rt::RealmUnit*> units) : units_{std::move(units)} {
    REALM_EXPECTS(!units_.empty(), "register file needs at least one unit");
    shadows_.resize(units_.size());
    for (std::size_t u = 0; u < units_.size(); ++u) {
        REALM_EXPECTS(units_[u] != nullptr, "null REALM unit");
        shadows_[u].resize(units_[u]->config().num_regions);
    }
}

RegRsp RealmRegFile::reg_access(const RegReq& req) {
    if (req.addr % 4 != 0) { return RegRsp::err(); }
    if (req.addr == kNumUnitsOffset) {
        return req.write ? RegRsp::err() : RegRsp::ok(num_units());
    }
    if (req.addr == kNumRegionsOffset) {
        return req.write ? RegRsp::err()
                         : RegRsp::ok(units_.front()->config().num_regions);
    }
    if (req.addr < kUnitBase) { return RegRsp::err(); }
    const axi::Addr rel = req.addr - kUnitBase;
    const auto unit = static_cast<std::uint32_t>(rel / kUnitStride);
    if (unit >= units_.size()) { return RegRsp::err(); }
    const axi::Addr offset = rel % kUnitStride;
    if (offset < kRegionBase) { return unit_access(unit, offset, req); }
    const auto region = static_cast<std::uint32_t>((offset - kRegionBase) / kRegionStride);
    if (region >= shadows_[unit].size()) { return RegRsp::err(); }
    return region_access(unit, region, (offset - kRegionBase) % kRegionStride, req);
}

RegRsp RealmRegFile::unit_access(std::uint32_t unit, axi::Addr offset, const RegReq& req) {
    rt::RealmUnit& u = *units_[unit];
    switch (offset) {
    case kCtrl: {
        if (!req.write) {
            std::uint32_t v = 0;
            v |= u.enabled() ? kCtrlEnable : 0;
            v |= u.isolation().cause_active(rt::IsolationCause::kUser) ? kCtrlIsolate : 0;
            v |= u.mr().throttle_enabled() ? kCtrlThrottle : 0;
            return RegRsp::ok(v);
        }
        u.set_enabled((req.wdata & kCtrlEnable) != 0);
        u.set_user_isolation((req.wdata & kCtrlIsolate) != 0);
        u.set_throttle((req.wdata & kCtrlThrottle) != 0);
        return RegRsp::ok();
    }
    case kFragment: {
        if (!req.write) { return RegRsp::ok(u.fragmentation()); }
        if (req.wdata < 1 || req.wdata > axi::kMaxBurstBeats) { return RegRsp::err(); }
        u.set_fragmentation(req.wdata);
        return RegRsp::ok();
    }
    case kStatus: {
        if (req.write) { return RegRsp::err(); }
        std::uint32_t v = static_cast<std::uint32_t>(u.state()) & 0xF;
        v |= u.fully_isolated() ? (1U << 4) : 0;
        v |= (u.isolation().outstanding() & 0xFFU) << 8;
        return RegRsp::ok(v);
    }
    case kReadsAcc:
        return req.write ? RegRsp::err() : RegRsp::ok(saturate32(u.reads_accepted()));
    case kWritesAcc:
        return req.write ? RegRsp::err() : RegRsp::ok(saturate32(u.writes_accepted()));
    case kIsoCycles:
        return req.write ? RegRsp::err() : RegRsp::ok(saturate32(u.mr().isolation_cycles()));
    default: return RegRsp::err();
    }
}

RegRsp RealmRegFile::region_access(std::uint32_t unit, std::uint32_t region, axi::Addr offset,
                                   const RegReq& req) {
    rt::RealmUnit& u = *units_[unit];
    RegionShadow& sh = shadows_[unit][region];
    const rt::RegionState& live = u.mr().region(region);

    const auto apply = [&] {
        rt::RegionConfig cfg;
        cfg.start = sh.start;
        cfg.end = sh.end;
        cfg.budget_bytes = sh.budget;
        cfg.period_cycles = sh.period;
        u.set_region(region, cfg);
        return RegRsp::ok();
    };

    if (req.write) {
        switch (offset) {
        case kStartLo: set_lo32(sh.start, req.wdata); return apply();
        case kStartHi: set_hi32(sh.start, req.wdata); return apply();
        case kEndLo: set_lo32(sh.end, req.wdata); return apply();
        case kEndHi: set_hi32(sh.end, req.wdata); return apply();
        case kBudgetLo: set_lo32(sh.budget, req.wdata); return apply();
        case kBudgetHi: set_hi32(sh.budget, req.wdata); return apply();
        case kPeriodLo: set_lo32(sh.period, req.wdata); return apply();
        case kPeriodHi: set_hi32(sh.period, req.wdata); return apply();
        default: return RegRsp::err(); // status registers are read-only
        }
    }
    switch (offset) {
    case kStartLo: return RegRsp::ok(lo32(live.config.start));
    case kStartHi: return RegRsp::ok(hi32(live.config.start));
    case kEndLo: return RegRsp::ok(lo32(live.config.end));
    case kEndHi: return RegRsp::ok(hi32(live.config.end));
    case kBudgetLo: return RegRsp::ok(lo32(live.config.budget_bytes));
    case kBudgetHi: return RegRsp::ok(hi32(live.config.budget_bytes));
    case kPeriodLo: return RegRsp::ok(lo32(live.config.period_cycles));
    case kPeriodHi: return RegRsp::ok(hi32(live.config.period_cycles));
    case kBytesPeriod: return RegRsp::ok(saturate32(live.bytes_this_period));
    case kTxnCount: return RegRsp::ok(saturate32(live.txns_total));
    case kRdLatAvg:
        return RegRsp::ok(static_cast<std::uint32_t>(live.read_latency.mean()));
    case kRdLatMax: return RegRsp::ok(saturate32(live.read_latency.max()));
    case kWrLatAvg:
        return RegRsp::ok(static_cast<std::uint32_t>(live.write_latency.mean()));
    case kWrLatMax: return RegRsp::ok(saturate32(live.write_latency.max()));
    case kCredit:
        return RegRsp::ok(live.credit <= 0 ? 0U
                                           : saturate32(static_cast<std::uint64_t>(live.credit)));
    default: return RegRsp::err();
    }
}

} // namespace realm::cfg
