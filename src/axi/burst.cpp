#include "axi/burst.hpp"

#include "sim/check.hpp"

namespace realm::axi {

namespace {

/// AxADDR aligned down to the beat-size boundary.
constexpr Addr aligned(Addr addr, std::uint32_t beat_bytes) noexcept {
    return addr & ~(Addr{beat_bytes} - 1);
}

} // namespace

Addr beat_address(const BurstDescriptor& desc, std::uint32_t beat_index) noexcept {
    const std::uint32_t bb = desc.beat_bytes();
    switch (desc.burst) {
    case Burst::kFixed: return desc.addr;
    case Burst::kIncr: {
        if (beat_index == 0) { return desc.addr; }
        return aligned(desc.addr, bb) + std::uint64_t{beat_index} * bb;
    }
    case Burst::kWrap: {
        // WRAP addresses are size-aligned by spec; wrap at beats*bb window.
        const Addr base = wrap_boundary(desc);
        const Addr window = std::uint64_t{desc.beats()} * bb;
        const Addr offset = (desc.addr - base + std::uint64_t{beat_index} * bb) % window;
        return base + offset;
    }
    }
    return desc.addr;
}

Addr wrap_boundary(const BurstDescriptor& desc) noexcept {
    const Addr window = std::uint64_t{desc.beats()} * desc.beat_bytes();
    return (desc.addr / window) * window;
}

bool within_4k(const BurstDescriptor& desc) noexcept {
    const Addr first = desc.burst == Burst::kFixed ? desc.addr : aligned(desc.addr, desc.beat_bytes());
    Addr last = desc.addr;
    switch (desc.burst) {
    case Burst::kFixed: last = desc.addr + desc.beat_bytes() - 1; break;
    case Burst::kIncr:
        last = aligned(desc.addr, desc.beat_bytes()) + desc.total_bytes() - 1;
        break;
    case Burst::kWrap:
        // The wrap window is naturally aligned and at most 16 beats, so it
        // never straddles 4 KiB when the size is legal.
        last = wrap_boundary(desc) + desc.total_bytes() - 1;
        break;
    }
    return (first / kAxi4BoundaryBytes) == (last / kAxi4BoundaryBytes);
}

bool is_legal(const BurstDescriptor& desc) noexcept {
    if (desc.size > 6) { return false; } // model caps the bus at 512 bit
    switch (desc.burst) {
    case Burst::kFixed:
        return desc.len <= 15; // FIXED bursts are 1..16 beats in AXI4
    case Burst::kIncr: return within_4k(desc);
    case Burst::kWrap: {
        const bool len_ok =
            desc.len == 1 || desc.len == 3 || desc.len == 7 || desc.len == 15;
        const bool addr_aligned = (desc.addr & (Addr{desc.beat_bytes()} - 1)) == 0;
        return len_ok && addr_aligned;
    }
    }
    return false;
}

bool is_fragmentable(const BurstDescriptor& desc, std::uint8_t cache, bool lock) noexcept {
    if (lock) { return false; }
    if (desc.burst != Burst::kIncr) { return false; }
    if (!is_modifiable(cache) && desc.beats() <= 16) { return false; }
    return true;
}

std::vector<BurstDescriptor> fragment_burst(const BurstDescriptor& desc,
                                            std::uint32_t granularity_beats) {
    REALM_EXPECTS(granularity_beats >= 1 && granularity_beats <= kMaxBurstBeats,
                  "fragmentation granularity out of [1,256]");
    REALM_EXPECTS(desc.burst == Burst::kIncr, "only INCR bursts can be fragmented");

    std::vector<BurstDescriptor> children;
    const std::uint32_t bb = desc.beat_bytes();
    std::uint32_t remaining = desc.beats();
    Addr next_addr = desc.addr;
    while (remaining > 0) {
        const std::uint32_t take = remaining < granularity_beats ? remaining : granularity_beats;
        BurstDescriptor child = desc;
        child.addr = next_addr;
        child.len = static_cast<std::uint8_t>(take - 1);
        children.push_back(child);
        // Successor starts at the size-aligned address after this child's
        // last beat (matches the INCR address equation).
        next_addr = aligned(next_addr, bb) + std::uint64_t{take} * bb;
        remaining -= take;
    }
    REALM_ENSURES(!children.empty(), "fragmentation must produce at least one child");
    return children;
}

std::uint32_t fragment_count(const BurstDescriptor& desc,
                             std::uint32_t granularity_beats) noexcept {
    if (granularity_beats == 0) { return 0; }
    return (desc.beats() + granularity_beats - 1) / granularity_beats;
}

} // namespace realm::axi
