/// \file
/// \brief Figure 1b of the paper: REALM units in front of a NoC.
///
/// A 6-node unidirectional ring carries AXI4 between two compute managers
/// and two memories. The same REALM unit used on the crossbar drops in
/// front of each manager port unchanged — regulation is interconnect-
/// agnostic. A bulk DMA's long bursts hog the shared memory node until its
/// REALM unit fragments and budgets them.
#include "mem/axi_mem_slave.hpp"
#include "noc/ring.hpp"
#include "realm/realm_unit.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/workload.hpp"

#include <cstdio>

using namespace realm;

int main() {
    sim::SimContext ctx;

    // Ring: node0 = core, node1 = DSA DMA, node3 = shared SRAM,
    // node5 = DSA-local SRAM; nodes 2/4 are pass-through hops.
    ic::AddrMap map;
    map.add(0x0000'0000, 0x10000, 3, "shared-mem");
    map.add(0x0010'0000, 0x10000, 5, "dsa-mem");
    noc::NocRing ring{ctx, "ring", 6, map, {3, 5}};
    mem::AxiMemSlave shared{ctx, "shared", ring.subordinate_port(3),
                            std::make_unique<mem::SramBackend>(1, 1),
                            mem::AxiMemSlaveConfig{8, 8, 0}};
    mem::AxiMemSlave dsa_mem{ctx, "dsa-mem", ring.subordinate_port(5),
                             std::make_unique<mem::SramBackend>(1, 1),
                             mem::AxiMemSlaveConfig{8, 8, 0}};
    for (axi::Addr a = 0; a < 0x10000; a += 8) {
        static_cast<mem::SramBackend&>(shared.backend()).store().write_u64(a, a);
    }

    // REALM units in front of both manager ports (constructed after the
    // ring so their response pass-through sees same-cycle pushes).
    axi::AxiChannel core_up{ctx, "core_up"};
    axi::AxiChannel dsa_up{ctx, "dsa_up"};
    rt::RealmUnit core_realm{ctx, "realm.core", core_up, ring.manager_port(0), {}};
    rt::RealmUnit dsa_realm{ctx, "realm.dsa", dsa_up, ring.manager_port(1), {}};

    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 128;
    traffic::DmaEngine dma{ctx, "dma", dsa_up, dcfg};
    dma.push_job(traffic::DmaJob{0x0, 0x10'0000, 0x4000, /*loop=*/true});

    const auto run_core = [&](const char* label) {
        traffic::StreamWorkload wl{{.base = 0x0, .bytes = 0x2000, .op_bytes = 8,
                                    .stride_bytes = 8}};
        traffic::CoreModel core{ctx, label, core_up, wl};
        ctx.run_until([&] { return core.done(); }, 10'000'000);
        std::printf("%-28s load latency mean %.1f, max %llu cycles\n", label,
                    core.load_latency().mean(),
                    static_cast<unsigned long long>(core.load_latency().max()));
    };

    std::puts("== REALM over a 6-node ring NoC (Figure 1b) ==\n");
    ctx.run(2000); // DMA reaches steady state
    run_core("uncontrolled (128-beat DMA)");

    // Regulate the DSA: fragment to 2 beats and cap at ~25 % of the shared
    // memory node's bandwidth.
    dsa_realm.set_fragmentation(2);
    dsa_realm.set_region(0, rt::RegionConfig{0x0, 0x20'0000, 2000, 1000});
    ctx.run_until([&] { return dsa_realm.state() == rt::RealmState::kReady; }, 100000);
    run_core("fragmented + budgeted DSA");

    std::printf("\nring forwarded %llu packets; DSA unit created %llu fragments,\n",
                static_cast<unsigned long long>(ring.total_forwarded()),
                static_cast<unsigned long long>(dsa_realm.splitter().fragments_created()));
    std::printf("DSA region bandwidth %.2f B/cycle (budget 2 B/cycle), %llu depletions\n",
                dsa_realm.mr().region(0).current_bandwidth(ctx.now()),
                static_cast<unsigned long long>(dsa_realm.mr().region(0).depletion_events));
    std::puts("\nthe same REALM unit regulates a NoC exactly as it does a crossbar —");
    std::puts("the paper's implementation-agnostic claim.");
    return 0;
}
