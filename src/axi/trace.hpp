/// \file
/// \brief Transaction tracer: records AXI channel activity to a CSV stream.
///
/// Observability tooling complementing the M&R unit's aggregate statistics:
/// splice an `AxiTracer` into any channel and get a per-beat, cycle-stamped
/// log for offline analysis (waveform-style debugging without a waveform
/// dump). Pass-through component, one cycle per hop like any other, and
/// idle-aware: tracing costs nothing while the channel is quiet.
#pragma once

#include "axi/channel.hpp"

#include "sim/component.hpp"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace realm::axi {

/// One recorded beat.
struct TraceRecord {
    sim::Cycle cycle = 0;
    enum class Channel : std::uint8_t { kAw, kW, kB, kAr, kR } channel = Channel::kAw;
    IdT id = 0;
    Addr addr = 0;      ///< AW/AR only
    std::uint8_t len = 0;
    bool last = false;  ///< W/R only
    Resp resp = Resp::kOkay; ///< B/R only
};

[[nodiscard]] constexpr const char* to_string(TraceRecord::Channel c) noexcept {
    switch (c) {
    case TraceRecord::Channel::kAw: return "AW";
    case TraceRecord::Channel::kW: return "W";
    case TraceRecord::Channel::kB: return "B";
    case TraceRecord::Channel::kAr: return "AR";
    case TraceRecord::Channel::kR: return "R";
    }
    return "?";
}

class AxiTracer : public sim::Component {
public:
    /// \param capacity  retained records (ring buffer; oldest dropped).
    AxiTracer(sim::SimContext& ctx, std::string name, AxiChannel& upstream,
              AxiChannel& downstream, std::size_t capacity = 65536);

    void reset() override;
    void tick() override;

    [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
        return records_;
    }
    [[nodiscard]] std::uint64_t total_recorded() const noexcept { return total_; }
    [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

    /// Writes `cycle,channel,id,addr,len,last,resp` CSV lines.
    void write_csv(std::ostream& os) const;

private:
    void record(TraceRecord r);
    void update_activity();

    SubordinateView up_;
    ManagerView down_;
    std::size_t capacity_;
    std::vector<TraceRecord> records_;
    std::uint64_t total_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace realm::axi
