/// \file
/// \brief N-manager to 1-subordinate AXI multiplexer.
///
/// Faithfully reproduces the two properties of burst-based interconnects the
/// paper builds on:
///  - arbitration is round-robin at **burst granularity**: long bursts delay
///    fine-granular competitors by up to their full length;
///  - the subordinate's W channel is **reserved at AW-grant time**: a manager
///    that wins write arbitration and then withholds data stalls every other
///    write — the denial-of-service vector the REALM write buffer closes.
#pragma once

#include "axi/channel.hpp"
#include "ic/arb.hpp"

#include "sim/component.hpp"

#include <cstdint>
#include <deque>
#include <vector>

namespace realm::ic {

class AxiMux : public sim::Component {
public:
    /// IDs are remapped as `down_id = up_id * N + manager_index` so response
    /// routing is stateless and collision-free.
    AxiMux(sim::SimContext& ctx, std::string name,
           std::vector<axi::AxiChannel*> upstreams, axi::AxiChannel& downstream);

    void reset() override;
    void tick() override;

    [[nodiscard]] std::uint32_t num_managers() const noexcept {
        return static_cast<std::uint32_t>(ups_.size());
    }
    /// Grants per manager (fairness introspection for tests/benches).
    [[nodiscard]] std::uint64_t aw_grants(std::uint32_t mgr) const {
        return aw_grant_count_.at(mgr);
    }
    [[nodiscard]] std::uint64_t ar_grants(std::uint32_t mgr) const {
        return ar_grant_count_.at(mgr);
    }
    /// Cycles the W channel spent stalled waiting for a granted manager's
    /// data while other writes were pending (DoS exposure metric).
    [[nodiscard]] std::uint64_t w_stall_cycles() const noexcept { return w_stall_cycles_; }

private:
    struct WGrant {
        std::uint32_t mgr = 0;
        std::uint32_t beats_left = 0;
    };

    void arbitrate_aw();
    void forward_w();
    void arbitrate_ar();
    void route_b();
    void route_r();
    void update_activity();

    std::vector<axi::AxiChannel*> ups_;
    axi::ManagerView down_;

    RoundRobinArbiter aw_arb_;
    RoundRobinArbiter ar_arb_;
    std::deque<WGrant> w_order_;

    std::vector<std::uint64_t> aw_grant_count_;
    std::vector<std::uint64_t> ar_grant_count_;
    std::uint64_t w_stall_cycles_ = 0;
};

} // namespace realm::ic
