/// \file
/// \brief Analytical gate-equivalent area model of AXI-REALM (paper Table II)
///        and the Cheshire SoC decomposition (paper Table I).
///
/// The paper provides, per sub-block, a constant base area plus linear
/// coefficients over the design parameters (GE at 1 GHz, GlobalFoundries
/// 12 nm, typical corner). "To estimate the area of an AXI-REALM system,
/// the individual unit's area contributions are multiplied by the parameter
/// value and summed up." This module implements exactly that model; the
/// published coefficients are kept verbatim so integrators can reproduce
/// the paper's numbers or plug in their own configuration.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace realm::area {

/// Parameterization of one AXI-REALM deployment (Table II sweep axes).
struct RealmParams {
    std::uint32_t addr_width_bits = 64; ///< evaluated 32..64 in the paper
    std::uint32_t data_width_bits = 64; ///< evaluated 32..64
    std::uint32_t num_pending = 8;      ///< evaluated 2..16
    std::uint32_t buffer_depth = 16;    ///< write-buffer elements, evaluated 2..16
    std::uint32_t num_regions = 2;
    std::uint32_t num_units = 3;        ///< REALM units sharing one config file
    /// The splitter can be dropped at design time for managers that only
    /// emit single-word transactions (paper Section III-A).
    bool splitter_present = true;
    bool write_buffer_present = true;

    /// Write-buffer storage in bits (Table II footnote f: product of buffer
    /// depth and data width; evaluated 256..8192 bit).
    [[nodiscard]] std::uint64_t storage_bits() const noexcept {
        return write_buffer_present ? std::uint64_t{buffer_depth} * data_width_bits : 0;
    }
};

/// One sub-block's linear area law: GE = constant + sum(coeff * param).
/// Coefficients are in GE per unit of the parameter noted in Table II;
/// the storage coefficient is per 64-bit word of buffer storage.
struct BlockLaw {
    const char* name;
    double per_addr_bit;
    double per_data_bit;
    double per_pending;
    double per_storage_word64;
    double constant;
    /// How many instances exist in a system of U units and R regions.
    enum class Multiplicity : std::uint8_t { kPerSystem, kPerUnit, kPerUnitRegion } mult;
};

/// The eleven columns of Table II, verbatim.
inline constexpr std::array<BlockLaw, 11> kTable2 = {{
    // --- Configuration register file ---
    {"Bus Guard", 0, 0, 0, 0, 260.6, BlockLaw::Multiplicity::kPerSystem},
    {"Burst config Register", 0, 0, 0, 0, 83.5, BlockLaw::Multiplicity::kPerUnit},
    {"C&S Register", 0, 0, 0, 0, 24.6, BlockLaw::Multiplicity::kPerUnit},
    {"Budget & Period Register", 0, 0, 0, 0, 1319.6, BlockLaw::Multiplicity::kPerUnitRegion},
    {"Region Boundary Register", 20.6, 0, 0, 0, 0, BlockLaw::Multiplicity::kPerUnitRegion},
    // --- REALM unit ---
    {"Isolate & Throttle", 3.5, 2.7, 9.0, 0, 267.1, BlockLaw::Multiplicity::kPerUnit},
    {"Burst Splitter", 49.3, 1.5, 729.4, 0, 4835.0, BlockLaw::Multiplicity::kPerUnit},
    {"Meta Buffer", 38.1, 0, 0, 0, 1309.7, BlockLaw::Multiplicity::kPerUnit},
    {"Write Buffer", 0, 0, 0, 264.4, 11.4, BlockLaw::Multiplicity::kPerUnit},
    {"Tracking counters", 0, 0, 0, 0, 1928.5, BlockLaw::Multiplicity::kPerUnitRegion},
    {"Region Decoders", 20.8, 0, 0, 0, 0, BlockLaw::Multiplicity::kPerUnitRegion},
}};

/// Area of one instance of `law` under `p`, in GE.
[[nodiscard]] double block_area_ge(const BlockLaw& law, const RealmParams& p) noexcept;

/// Per-instance contribution of every block, scaled by multiplicity,
/// grouped for reporting.
struct BlockArea {
    std::string name;
    double instance_ge;  ///< one instance
    double total_ge;     ///< all instances in the system
    std::uint32_t instances;
};
[[nodiscard]] std::vector<BlockArea> system_breakdown(const RealmParams& p);

/// Area of one REALM unit (excluding the shared config file), in GE.
[[nodiscard]] double realm_unit_ge(const RealmParams& p) noexcept;

/// Area of the shared configuration register file (incl. bus guard), GE.
[[nodiscard]] double config_file_ge(const RealmParams& p) noexcept;

/// Full system: num_units REALM units + one config file, GE.
[[nodiscard]] double system_ge(const RealmParams& p) noexcept;

// ---------------------------------------------------------------------------
// Table I: area decomposition of the Cheshire SoC (kGE, 12 nm, 1 GHz).
// ---------------------------------------------------------------------------

struct CheshireBlock {
    const char* name;
    double kge;      ///< paper-reported area
    double percent;  ///< paper-reported share of the SoC
};

inline constexpr std::array<CheshireBlock, 11> kTable1 = {{
    {"SoC (total)", 3810.0, 100.00},
    {"CVA6", 1860.0, 48.7},
    {"LLC", 1350.0, 35.5},
    {"Interconnect", 206.0, 5.41},
    {"3 RT Units", 83.6, 2.19},
    {"RT CFG", 9.8, 0.26},
    {"Peripherals", 163.0, 4.27},
    {"iDMA", 26.3, 0.69},
    {"Bootrom", 12.9, 0.34},
    {"IRQ subsys", 11.1, 0.29},
    {"Rest", 20.5, 0.54},
}};

/// Paper-reported AXI-REALM overhead on Cheshire: (RT units + CFG) / SoC.
[[nodiscard]] double paper_overhead_percent() noexcept;

/// Overhead recomputed from the Table II model at configuration `p`,
/// against the Cheshire base area (SoC minus the paper's RT contribution).
[[nodiscard]] double model_overhead_percent(const RealmParams& p) noexcept;

} // namespace realm::area
