#include "traffic/dma.hpp"

#include "axi/builder.hpp"
#include "sim/check.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace realm::traffic {

DmaEngine::DmaEngine(sim::SimContext& ctx, std::string name, axi::AxiChannel& port,
                     DmaConfig config)
    : Component{ctx, std::move(name)}, port_{port}, cfg_{config}, slots_(config.num_buffers) {
    REALM_EXPECTS(cfg_.burst_beats >= 1 && cfg_.burst_beats <= axi::kMaxBurstBeats,
                  "DMA burst length out of [1,256]");
    REALM_EXPECTS(cfg_.num_buffers >= 1, "DMA needs at least one buffer");
    for (Slot& s : slots_) {
        s.data.resize(std::size_t{cfg_.burst_beats} * cfg_.bus_bytes);
    }
}

void DmaEngine::reset() {
    jobs_.clear();
    job_offset_ = 0;
    stop_requested_ = false;
    for (Slot& s : slots_) {
        s.state = SlotState::kFree;
        s.aw_sent = false;
    }
    write_order_.clear();
    bytes_read_ = 0;
    bytes_written_ = 0;
    chunks_done_ = 0;
    read_lat_.reset();
    write_lat_.reset();
    first_activity_ = sim::kNoCycle;
}

void DmaEngine::push_job(const DmaJob& job) {
    REALM_EXPECTS(job.bytes > 0, "DMA job must move at least one byte");
    REALM_EXPECTS(job.bytes % cfg_.bus_bytes == 0, "DMA job must be bus-aligned in size");
    jobs_.push_back(job);
    wake(); // the engine may have declared itself idle with an empty queue
}

std::uint32_t DmaEngine::reads_in_flight() const noexcept {
    std::uint32_t n = 0;
    for (const Slot& s : slots_) { n += s.state == SlotState::kReading ? 1 : 0; }
    return n;
}

std::uint32_t DmaEngine::writes_in_flight() const noexcept {
    std::uint32_t n = 0;
    for (const Slot& s : slots_) {
        n += (s.state == SlotState::kWriting || s.state == SlotState::kAwaitB) ? 1 : 0;
    }
    return n;
}

bool DmaEngine::idle() const noexcept {
    if (!jobs_.empty()) { return false; }
    return std::all_of(slots_.begin(), slots_.end(),
                       [](const Slot& s) { return s.state == SlotState::kFree; });
}

void DmaEngine::issue_reads() {
    if (jobs_.empty() || reads_in_flight() >= cfg_.max_outstanding_reads ||
        !port_.can_send_ar()) {
        return;
    }
    // Find a free slot.
    auto it = std::find_if(slots_.begin(), slots_.end(),
                           [](const Slot& s) { return s.state == SlotState::kFree; });
    if (it == slots_.end()) { return; }
    const auto slot_idx = static_cast<std::uint32_t>(it - slots_.begin());
    DmaJob& job = jobs_.front();

    const std::uint64_t chunk_bytes =
        std::min<std::uint64_t>(std::uint64_t{cfg_.burst_beats} * cfg_.bus_bytes,
                                job.bytes - job_offset_);
    const auto beats = static_cast<std::uint32_t>(chunk_bytes / cfg_.bus_bytes);

    Slot& slot = *it;
    slot.state = SlotState::kReading;
    slot.src = job.src + job_offset_;
    slot.dst = job.dst + job_offset_;
    slot.beats = beats;
    slot.beats_read = 0;
    slot.beats_written = 0;
    slot.aw_sent = false;
    slot.read_issued_at = now();
    if (first_activity_ == sim::kNoCycle) { first_activity_ = now(); }

    axi::ArFlit ar =
        axi::make_ar(slot_idx, slot.src, beats, axi::size_of_bus(cfg_.bus_bytes), now());
    ar.qos = cfg_.qos;
    port_.send_ar(ar);

    if (cfg_.reserve_before_data && port_.can_send_aw()) {
        // Malicious/cut-through mode: claim write bandwidth before the data
        // exists. With `w_stall_cycles` this starves the interconnect.
        axi::AwFlit aw = axi::make_aw(slot_idx, slot.dst, beats,
                                      axi::size_of_bus(cfg_.bus_bytes), now());
        aw.qos = cfg_.qos;
        port_.send_aw(aw);
        slot.aw_sent = true;
        slot.write_issued_at = now();
        write_order_.push_back(slot_idx);
    }

    job_offset_ += chunk_bytes;
    if (job_offset_ >= job.bytes) {
        job_offset_ = 0;
        if (!job.loop || stop_requested_) { jobs_.pop_front(); }
    }
}

void DmaEngine::collect_reads() {
    if (!port_.has_r()) { return; }
    const axi::RFlit r = port_.recv_r();
    REALM_ENSURES(r.id < slots_.size(), name() + ": R beat with foreign ID");
    Slot& slot = slots_[r.id];
    REALM_ENSURES(slot.state == SlotState::kReading, name() + ": R beat for idle slot");
    std::memcpy(slot.data.data() + std::size_t{slot.beats_read} * cfg_.bus_bytes,
                r.data.bytes.data(), cfg_.bus_bytes);
    ++slot.beats_read;
    bytes_read_ += cfg_.bus_bytes;
    if (r.last) {
        REALM_ENSURES(slot.beats_read == slot.beats, name() + ": short read burst");
        read_lat_.record(now() - slot.read_issued_at);
        slot.state = slot.aw_sent ? SlotState::kWriting : SlotState::kFull;
    }
}

void DmaEngine::issue_writes() {
    if (cfg_.reserve_before_data) { return; } // AW already went with the AR
    if (writes_in_flight() >= cfg_.max_outstanding_writes || !port_.can_send_aw()) { return; }
    auto it = std::find_if(slots_.begin(), slots_.end(),
                           [](const Slot& s) { return s.state == SlotState::kFull; });
    if (it == slots_.end()) { return; }
    const auto slot_idx = static_cast<std::uint32_t>(it - slots_.begin());
    Slot& slot = *it;
    axi::AwFlit aw = axi::make_aw(slot_idx, slot.dst, slot.beats,
                                  axi::size_of_bus(cfg_.bus_bytes), now());
    aw.qos = cfg_.qos;
    port_.send_aw(aw);
    slot.aw_sent = true;
    slot.write_issued_at = now();
    slot.state = SlotState::kWriting;
    slot.next_w_at = now() + 1;
    write_order_.push_back(slot_idx);
}

void DmaEngine::stream_w_beats() {
    if (write_order_.empty() || !port_.can_send_w()) { return; }
    Slot& slot = slots_[write_order_.front()];
    const bool cut_through = slot.aw_sent && slot.state == SlotState::kReading;
    if (slot.state != SlotState::kWriting && !cut_through) { return; }
    if (slot.beats_written >= slot.beats_read) { return; } // cut-through: data lag
    if (now() < slot.next_w_at) { return; }                // stalling behaviour

    axi::WFlit w;
    std::memcpy(w.data.bytes.data(),
                slot.data.data() + std::size_t{slot.beats_written} * cfg_.bus_bytes,
                cfg_.bus_bytes);
    ++slot.beats_written;
    w.last = slot.beats_written == slot.beats;
    port_.send_w(w);
    bytes_written_ += cfg_.bus_bytes;
    slot.next_w_at = now() + 1 + cfg_.w_stall_cycles;
    if (w.last) {
        slot.state = SlotState::kAwaitB;
        write_order_.pop_front(); // next burst's W may start immediately
    }
}

void DmaEngine::collect_b() {
    if (!port_.has_b()) { return; }
    const axi::BFlit b = port_.recv_b();
    REALM_ENSURES(b.id < slots_.size(), name() + ": B with foreign ID");
    Slot& slot = slots_[b.id];
    REALM_ENSURES(slot.state == SlotState::kAwaitB, name() + ": B for slot not awaiting it");
    write_lat_.record(now() - slot.write_issued_at);
    slot.state = SlotState::kFree;
    slot.aw_sent = false;
    ++chunks_done_;
}

double DmaEngine::bandwidth() const noexcept {
    if (first_activity_ == sim::kNoCycle || now() <= first_activity_) { return 0.0; }
    return static_cast<double>(bytes_read_ + bytes_written_) /
           static_cast<double>(now() - first_activity_);
}

void DmaEngine::tick() {
    collect_reads();
    collect_b();
    stream_w_beats();
    issue_writes();
    issue_reads();
    // No queued jobs and no chunk in flight: no response can arrive and
    // nothing can be issued until push_job() wakes us.
    if (idle()) { idle_forever(); }
}

} // namespace realm::traffic
