/// \file
/// \brief Fixed-slot packet arena: the allocation discipline of the sharded
///        kernel's hot path.
///
/// The flattened NoC containers (link VC ring buffers, the NI's indexed
/// per-node arrays) hold packets by value, so the steady-state transport
/// allocates nothing. The one remaining dynamic packet container is the
/// ejection reorder stash, which only multi-path routing policies populate.
/// `PacketArena` backs it with a contiguous slot array plus an O(1)
/// free-list, so stash traffic recycles slots instead of churning the heap,
/// and every stashed packet of one NI lives in one cache-friendly slab.
///
/// Arenas are *per shard* by construction: each NI owns one, and an NI —
/// like every component — is ticked by exactly one shard of the kernel
/// (see sim/context.hpp), so no lock is ever needed. The arena starts empty
/// and grows geometrically to its high-water mark (lazily: single-path
/// policies never touch it); references are never held across `acquire`,
/// only slot indices, so growth is safe.
#pragma once

#include "noc/packet.hpp"
#include "sim/check.hpp"

#include <cstdint>
#include <utility>
#include <vector>

namespace realm::noc {

class PacketArena {
public:
    using Slot = std::uint32_t;

    PacketArena() = default;
    /// Pre-sizes the slab (optional — the arena also grows on demand).
    explicit PacketArena(Slot capacity) { reserve(capacity); }

    /// Copies `pkt` into a free slot and returns its index.
    [[nodiscard]] Slot acquire(const NocPacket& pkt) {
        if (free_.empty()) { grow(); }
        const Slot slot = free_.back();
        free_.pop_back();
        slots_[slot] = pkt;
        return slot;
    }

    /// Returns the slot to the free list (the packet value stays until the
    /// slot is reused; callers move it out first when they need it).
    void release(Slot slot) {
        REALM_EXPECTS(slot < slots_.size(), "packet arena: slot out of range");
        free_.push_back(slot);
    }

    [[nodiscard]] NocPacket& operator[](Slot slot) { return slots_[slot]; }
    [[nodiscard]] const NocPacket& operator[](Slot slot) const {
        return slots_[slot];
    }

    /// Total slots in the slab (the high-water mark of acquisitions).
    [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
    [[nodiscard]] std::size_t in_use() const noexcept {
        return slots_.size() - free_.size();
    }

    /// Grows the slab so at least `capacity` slots exist.
    void reserve(Slot capacity) {
        while (slots_.size() < capacity) { grow(); }
    }

    /// Frees every slot (the owning containers drop their indices first).
    void clear() {
        free_.clear();
        free_.reserve(slots_.size());
        for (Slot s = static_cast<Slot>(slots_.size()); s > 0; --s) {
            free_.push_back(s - 1);
        }
    }

private:
    void grow() {
        const std::size_t old = slots_.size();
        const std::size_t next = old == 0 ? 8 : old * 2;
        slots_.resize(next);
        for (std::size_t s = next; s > old; --s) {
            free_.push_back(static_cast<Slot>(s - 1));
        }
    }

    std::vector<NocPacket> slots_;
    std::vector<Slot> free_; ///< LIFO: reuse the hottest slot first
};

} // namespace realm::noc
