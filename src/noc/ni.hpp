/// \file
/// \brief Network-interface bookkeeping shared by every NoC router.
///
/// The ring node and the mesh router differ in how packets *move* (one lane
/// around a circle vs. XY dimension-ordered hops), but their AXI network
/// interfaces are identical: requests are packetized with an AW-before-data
/// lane discipline and AXI same-ID ordering, ejected requests land in
/// per-source egress staging in front of an `ic::AxiMux`, and responses are
/// injected round-robin over the sources waiting at the local subordinate.
/// `NocNi` owns exactly that state so both fabrics share one flow-control
/// implementation (and one set of bugs).
///
/// Under `FlowControl::kCredited` the NI also enforces end-to-end credits:
/// a request worm is injected only while the source holds credits from the
/// target subordinate's pool (returned when the target's staging drains
/// into the egress mux), so request ejection can never backpressure the
/// network — asserted, not provisioned. Responses draw on a separate pool
/// per (manager, subordinate) pair, bounding in-flight responses toward any
/// manager; those credits return when the response ejects into the local
/// manager channel.
#pragma once

#include "axi/channel.hpp"
#include "ic/addr_map.hpp"
#include "noc/credit.hpp"
#include "noc/packet.hpp"

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace realm::noc {

class NocNi {
public:
    /// \param book  End-to-end credit book of the fabric; required in
    ///              credited mode, ignored (may be null) otherwise.
    NocNi(std::string owner, const NocFlowConfig& fc, CreditBook* book)
        : owner_{std::move(owner)}, fc_{fc}, book_{book} {
        REALM_EXPECTS(fc_.mode == FlowControl::kProvisioned || book_ != nullptr,
                      owner_ + ": credited flow control needs a credit book");
    }

    void reset();

    /// \name Ejection (packets whose dest is the local node)
    ///@{
    /// Delivers a request packet into the per-source egress staging toward
    /// the local subordinate's mux. Returns false on backpressure — which
    /// end-to-end credits make impossible in credited mode (asserted: the
    /// injector reserved the staging space before sending).
    bool try_eject_request(const NocPacket& pkt,
                           const std::vector<axi::AxiChannel*>& egress);
    /// Delivers a response packet to the local manager, retiring the same-ID
    /// ordering bookkeeping on B / last R and returning the response's
    /// end-to-end credits. Returns false on backpressure.
    bool try_eject_response(const NocPacket& pkt, axi::AxiChannel* local_mgr);
    ///@}

    /// \name Injection (local manager / subordinate into the network)
    ///@{
    /// Injects at most one request packet from the local manager. `route`
    /// maps (destination node, worm flits) to the outgoing link able to
    /// accept that worm this cycle, or nullptr on backpressure (the flit is
    /// then held and retried, preserving the lane order). AW travels before
    /// its data; W continuation beats take priority over new reads; an AW
    /// or AR whose ID has in-flight transactions toward a *different* node
    /// stalls until they retire (the same rule `ic::AxiDemux` enforces).
    /// In credited mode every packet additionally needs end-to-end credits
    /// from the target subordinate's pool; a credit-starved head holds its
    /// lane exactly like link backpressure.
    template <typename RouteFn>
    bool inject_requests(std::uint8_t self, axi::AxiChannel& mgr,
                         const ic::AddrMap& map, RouteFn&& route) {
        const std::uint32_t data_flits = fc_.packet_flits(/*data_carrying=*/true);
        if (mgr.aw.can_pop()) {
            const axi::AwFlit& head = mgr.aw.front();
            const auto dest_opt = map.decode(head.addr);
            REALM_EXPECTS(dest_opt.has_value(), owner_ + ": unmapped NoC address");
            const auto dest = static_cast<std::uint8_t>(*dest_opt);
            const auto it = w_in_flight_.find(head.id);
            const bool ordering_ok = it == w_in_flight_.end() ||
                                     it->second.count == 0 || it->second.dest == dest;
            if (ordering_ok) {
                if (NocLink* out = req_credits_ok(self, dest, 1)
                                       ? route(dest, std::uint32_t{1})
                                       : nullptr) {
                    axi::AwFlit aw = mgr.aw.pop();
                    auto& fl = w_in_flight_[aw.id];
                    fl.dest = dest;
                    ++fl.count;
                    w_dest_.push_back(dest);
                    w_beats_left_.push_back(aw.beats());
                    req_take(self, dest, 1);
                    out->push(make_packet(self, dest, 1, aw));
                    return true;
                }
                return false; // hold the AW; W/AR behind it wait their turn
            }
        }
        if (!w_dest_.empty() && mgr.w.can_pop()) {
            const std::uint8_t dest = w_dest_.front();
            if (NocLink* out = req_credits_ok(self, dest, data_flits)
                                   ? route(dest, data_flits)
                                   : nullptr) {
                axi::WFlit w = mgr.w.pop();
                req_take(self, dest, data_flits);
                out->push(make_packet(self, dest, data_flits, w));
                if (--w_beats_left_.front() == 0) {
                    REALM_ENSURES(w.last, owner_ + ": W burst ended without WLAST");
                    w_dest_.pop_front();
                    w_beats_left_.pop_front();
                }
                return true;
            }
            return false;
        }
        if (mgr.ar.can_pop()) {
            const axi::ArFlit& head = mgr.ar.front();
            const auto dest_opt = map.decode(head.addr);
            REALM_EXPECTS(dest_opt.has_value(), owner_ + ": unmapped NoC address");
            const auto dest = static_cast<std::uint8_t>(*dest_opt);
            const auto it = r_in_flight_.find(head.id);
            const bool ordering_ok = it == r_in_flight_.end() ||
                                     it->second.count == 0 || it->second.dest == dest;
            if (!ordering_ok) { return false; }
            if (NocLink* out = req_credits_ok(self, dest, 1)
                                   ? route(dest, std::uint32_t{1})
                                   : nullptr) {
                axi::ArFlit ar = mgr.ar.pop();
                auto& fl = r_in_flight_[ar.id];
                fl.dest = dest;
                ++fl.count;
                req_take(self, dest, 1);
                out->push(make_packet(self, dest, 1, ar));
                return true;
            }
        }
        return false;
    }

    /// Injects at most one response packet from the local subordinate,
    /// round-robin over the sources whose responses wait at the egress mux.
    /// `route` maps (response destination, worm flits) to the outgoing
    /// link, or nullptr on backpressure — a blocked or credit-starved
    /// source does not stop a routable one.
    template <typename RouteFn>
    bool inject_responses(std::uint8_t self,
                          const std::vector<axi::AxiChannel*>& egress,
                          RouteFn&& route) {
        const std::uint32_t data_flits = fc_.packet_flits(/*data_carrying=*/true);
        const auto n = static_cast<std::uint32_t>(egress.size());
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t src = (rsp_rr_ + 1 + i) % n;
            axi::AxiChannel* ch = egress[src];
            if (ch == nullptr) { continue; }
            const auto dest = static_cast<std::uint8_t>(src);
            if (ch->b.can_pop()) {
                if (NocLink* out = rsp_credits_ok(self, dest, 1)
                                       ? route(dest, std::uint32_t{1})
                                       : nullptr) {
                    rsp_take(self, dest, 1);
                    out->push(make_packet(self, dest, 1, ch->b.pop()));
                    rsp_rr_ = src;
                    return true;
                }
                continue;
            }
            if (ch->r.can_pop()) {
                if (NocLink* out = rsp_credits_ok(self, dest, data_flits)
                                       ? route(dest, data_flits)
                                       : nullptr) {
                    rsp_take(self, dest, data_flits);
                    out->push(make_packet(self, dest, data_flits, ch->r.pop()));
                    rsp_rr_ = src;
                    return true;
                }
            }
        }
        return false;
    }
    ///@}

    [[nodiscard]] const NocFlowConfig& flow() const noexcept { return fc_; }

private:
    template <typename Flit>
    [[nodiscard]] NocPacket make_packet(std::uint8_t self, std::uint8_t dest,
                                        std::uint32_t flits, Flit&& flit) const {
        NocPacket pkt;
        pkt.src = self;
        pkt.dest = dest;
        pkt.flits = static_cast<std::uint8_t>(flits);
        pkt.flit = std::forward<Flit>(flit);
        return pkt;
    }

    [[nodiscard]] bool req_credits_ok(std::uint8_t self, std::uint8_t dest,
                                      std::uint32_t flits) const {
        return book_ == nullptr || book_->req(dest, self).can_take(flits);
    }
    void req_take(std::uint8_t self, std::uint8_t dest, std::uint32_t flits) {
        if (book_ != nullptr) { book_->req(dest, self).take(flits); }
    }
    [[nodiscard]] bool rsp_credits_ok(std::uint8_t self, std::uint8_t dest,
                                      std::uint32_t flits) const {
        return book_ == nullptr || book_->rsp(dest, self).can_take(flits);
    }
    void rsp_take(std::uint8_t self, std::uint8_t dest, std::uint32_t flits) {
        if (book_ != nullptr) { book_->rsp(dest, self).take(flits); }
    }

    std::string owner_; ///< router name, for contract messages
    NocFlowConfig fc_;
    CreditBook* book_; ///< fabric-owned end-to-end pools (credited mode)

    /// Ingress W routing: dest node per accepted AW, in order.
    std::deque<std::uint8_t> w_dest_;
    std::deque<std::uint32_t> w_beats_left_;
    /// AXI same-ID ordering at the ingress (same rule as `ic::AxiDemux`).
    struct InFlight {
        std::uint8_t dest = 0;
        std::uint32_t count = 0;
    };
    std::unordered_map<axi::IdT, InFlight> w_in_flight_;
    std::unordered_map<axi::IdT, InFlight> r_in_flight_;
    /// Response injection round-robin over egress sources.
    std::uint32_t rsp_rr_ = 0;
};

} // namespace realm::noc
