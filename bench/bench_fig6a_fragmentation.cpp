/// \file
/// \brief Reproduces **Figure 6a**: performance of Susan on the core under
///        DSA-DMA contention at varying transfer fragmentation (in beats).
///
/// Paper reference points (FPGA, CVA6 + Cheshire):
///   - single-source: core accesses served in at most 8 cycles;
///   - without reservation (= fragmentation 256): < 0.7 % of single-source
///     performance, every access delayed by >= 264 cycles;
///   - fragmentation 1: 68.2 % of single-source performance, access latency
///     below 10 cycles (one cycle from the REALM unit, one from residual
///     interference).
///
/// Runs through the scenario engine (`--threads N` parallelizes the sweep,
/// `--json PATH` dumps machine-readable results).
#include "scenario/cli.hpp"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace realm::scenario;
    BenchOptions opts = parse_bench_args(argc, argv);

    std::puts("== Figure 6a: Susan under DSA-DMA contention vs fragmentation size ==");
    std::puts("(DMA: double-buffered 256-beat bursts LLC<->SPM, equal unconstrained");
    std::puts(" budgets, very large period -- isolating the fragmentation effect)\n");

    Sweep sweep = make_sweep("fig6a");
    const auto results = run_with_options(opts, sweep);
    const ScenarioResult& base = results[*sweep.baseline_index];

    std::printf("%-18s %12s %8s %9s %9s %9s %10s\n", "configuration", "cycles", "perf%",
                "lat_mean", "lat_max", "lat_min", "dma[B/cyc]");
    std::printf("%-18s %12llu %8.1f %9.2f %9llu %9llu %10s\n", "single-source",
                static_cast<unsigned long long>(base.run_cycles), 100.0,
                base.load_lat_mean, static_cast<unsigned long long>(base.load_lat_max),
                static_cast<unsigned long long>(base.load_lat_min), "-");
    for (std::size_t i = 1; i < results.size(); ++i) {
        const ScenarioResult& r = results[i];
        const double perf = 100.0 * static_cast<double>(base.run_cycles) /
                            static_cast<double>(r.run_cycles);
        std::printf("%-18s %12llu %8.1f %9.2f %9llu %9llu %10.2f\n", r.label.c_str(),
                    static_cast<unsigned long long>(r.run_cycles), perf, r.load_lat_mean,
                    static_cast<unsigned long long>(r.load_lat_max),
                    static_cast<unsigned long long>(r.load_lat_min), r.dma_read_bw);
    }

    std::puts("\npaper reference: without reservation < 0.7 % @ >= 264 cycles/access;");
    std::puts("fragmentation 1 -> 68.2 % of single-source @ < 10 cycles/access.");

    // Alternative calibration: a slower LLC descriptor pipeline (initiation
    // interval 2) lands on the paper's frag-1 *performance* figure while its
    // access latencies run higher than the paper's; see EXPERIMENTS.md for
    // the discussion of why both cannot hold simultaneously in a pure
    // blocking-load model.
    std::puts("\n-- alternative LLC calibration (descriptor interval 2) --");
    Sweep alt = make_sweep("fig6a-llc2");
    BenchOptions alt_opts = opts;
    alt_opts.json_path.clear(); // the primary sweep owns the JSON dump
    const auto alt_results = run_with_options(alt_opts, alt);
    const ScenarioResult& b2 = alt_results[*alt.baseline_index];
    std::printf("%-18s %12s %8s %9s %9s\n", "configuration", "cycles", "perf%",
                "lat_mean", "lat_max");
    std::printf("%-18s %12llu %8.1f %9.2f %9llu\n", "single-source",
                static_cast<unsigned long long>(b2.run_cycles), 100.0, b2.load_lat_mean,
                static_cast<unsigned long long>(b2.load_lat_max));
    for (std::size_t i = 1; i < alt_results.size(); ++i) {
        const ScenarioResult& r = alt_results[i];
        const double perf = 100.0 * static_cast<double>(b2.run_cycles) /
                            static_cast<double>(r.run_cycles);
        std::printf("%-18s %12llu %8.1f %9.2f %9llu\n", r.label.c_str(),
                    static_cast<unsigned long long>(r.run_cycles), perf, r.load_lat_mean,
                    static_cast<unsigned long long>(r.load_lat_max));
    }
    return 0;
}
