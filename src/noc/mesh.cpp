#include "noc/mesh.hpp"

#include "sim/check.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace realm::noc {

// ---------------------------------------------------------------------------
// MeshRouter
// ---------------------------------------------------------------------------

MeshRouter::MeshRouter(sim::SimContext& ctx, std::string name, NodeId node_id,
                       NodeId cols, NodeId num_nodes, ic::AddrMap map,
                       axi::AxiChannel* local_mgr,
                       std::vector<axi::AxiChannel*> egress, Ports ports,
                       const NocFlowConfig& fc, CreditBook* book,
                       RoutingPolicy routing, bool deferred_credits)
    : Component{ctx, std::move(name)},
      id_{node_id},
      cols_{cols},
      map_{std::move(map)},
      local_mgr_{local_mgr},
      egress_{std::move(egress)},
      ports_{ports},
      routing_{routing},
      num_vcs_{route_num_vcs(routing)},
      ni_{ctx, this->name(), num_nodes, fc, book, routing, deferred_credits} {
    // Activity-aware kernel wiring: every neighbor link feeding this router
    // has exactly one consumer (this router), so claiming the push hooks is
    // safe; the local manager and egress channels follow the ring-NI scheme.
    for (std::size_t d = 0; d < kMeshDirs; ++d) {
        if (ports_.req_in[d] != nullptr) { ports_.req_in[d]->set_wake_on_push(this); }
        if (ports_.rsp_in[d] != nullptr) { ports_.rsp_in[d]->set_wake_on_push(this); }
    }
    if (local_mgr_ != nullptr) { local_mgr_->wake_subordinate_on_request(*this); }
    for (axi::AxiChannel* ch : egress_) {
        if (ch != nullptr) { ch->wake_manager_on_response(*this); }
    }
}

void MeshRouter::reset() {
    ni_.reset();
    req_rr_ = 0;
    rsp_rr_ = 0;
    req_vc_rr_.fill(0);
    rsp_vc_rr_.fill(0);
    req_out_used_.fill(false);
    rsp_out_used_.fill(false);
    injected_ = 0;
    ejected_ = 0;
    forwarded_ = 0;
    stalls_ = 0;
}

NocLink* MeshRouter::route_out(bool request_net, NodeId dest,
                               std::uint32_t flits, std::uint8_t vc) {
    const HopSet hops = permitted_hops(routing_, cols_, id_, dest, vc);
    REALM_EXPECTS(!hops.empty(),
                  name() + ": a mesh node does not route packets to itself");
    return pick_output(request_net, hops, flits, vc, std::nullopt);
}

NocLink* MeshRouter::pick_output(bool request_net, const HopSet& hops,
                                 std::uint32_t flits, std::uint8_t vc,
                                 std::optional<MeshDir> from) {
    auto& out = request_net ? ports_.req_out : ports_.rsp_out;
    auto& used = request_net ? req_out_used_ : rsp_out_used_;
    // Among the permitted (always productive, hence never reversing) hops,
    // take the one whose target VC holds the fewest buffered flits — the
    // adaptive freedom of the west-first turn model. Deterministic
    // policies permit exactly one hop, so the scan degenerates to the old
    // single-candidate check.
    NocLink* best = nullptr;
    std::size_t best_dir = 0;
    for (std::uint8_t k = 0; k < hops.count; ++k) {
        const MeshDir hop = hops.dir[k];
        if (from.has_value()) {
            // A packet arriving from direction d travels away from d; every
            // policy here is minimal, so it never turns back.
            REALM_ENSURES(hop != *from, name() + ": 180-degree turn in mesh route");
        }
        const auto h = static_cast<std::size_t>(hop);
        NocLink* o = out[h];
        REALM_ENSURES(o != nullptr, name() + ": route leaves the mesh");
        if (used[h] || !o->can_push(flits, vc)) { continue; }
        if (best == nullptr || o->buffered_flits(vc) < best->buffered_flits(vc)) {
            best = o;
            best_dir = h;
        }
    }
    if (best == nullptr) { return nullptr; }
    used[best_dir] = true; // the caller pushes unconditionally into a grant
    return best;
}

void MeshRouter::service_network(bool request_net) {
    auto& in = request_net ? ports_.req_in : ports_.rsp_in;
    auto& used = request_net ? req_out_used_ : rsp_out_used_;
    auto& rr = request_net ? req_rr_ : rsp_rr_;
    auto& vc_rr = request_net ? req_vc_rr_ : rsp_vc_rr_;
    used.fill(false);

    // Every input port may advance one packet this cycle — the first
    // movable VC head in per-port priority order; the ejection port (like
    // the ring NI) and each output port take one packet at most. Rotating
    // input priority keeps merge points fair under sustained contention;
    // the pointer only moves when a packet moved, so idle ticks stay
    // no-ops.
    bool eject_done = false;
    bool any_moved = false;
    std::uint8_t first_moved = 0;
    for (std::uint8_t k = 0; k < kMeshDirs; ++k) {
        const auto d = static_cast<std::uint8_t>((rr + k) % kMeshDirs);
        NocLink* link = in[d];
        if (link == nullptr) { continue; }
        bool port_moved = false;
        bool port_blocked = false;
        for (std::uint8_t j = 0; j < num_vcs_ && !port_moved; ++j) {
            const auto vc = static_cast<std::uint8_t>((vc_rr[d] + j) % num_vcs_);
            if (!link->can_pop(vc)) { continue; }
            const NocPacket& pkt = link->front(vc);
            const HopSet hops =
                permitted_hops(routing_, cols_, id_, pkt.dest, pkt.vc);
            if (hops.empty()) {
                if (eject_done) {
                    port_blocked = true;
                    continue;
                }
                const bool ok = request_net ? ni_.try_eject_request(pkt, egress_)
                                            : ni_.try_eject_response(pkt, local_mgr_);
                if (ok) {
                    (void)link->pop(vc);
                    ++ejected_;
                    eject_done = true;
                    port_moved = true;
                    vc_rr[d] = static_cast<std::uint8_t>((vc + 1) % num_vcs_);
                } else {
                    port_blocked = true;
                }
                continue;
            }
            if (NocLink* o = pick_output(request_net, hops, pkt.flits, pkt.vc,
                                         static_cast<MeshDir>(d))) {
                o->push(link->pop(vc));
                ++forwarded_;
                port_moved = true;
                vc_rr[d] = static_cast<std::uint8_t>((vc + 1) % num_vcs_);
            } else {
                port_blocked = true;
            }
        }
        if (port_moved) {
            if (!any_moved) {
                any_moved = true;
                first_moved = d;
            }
        } else if (port_blocked) {
            ++stalls_;
        }
    }
    if (any_moved) { rr = static_cast<std::uint8_t>((first_moved + 1) % kMeshDirs); }
}

void MeshRouter::inject_requests() {
    if (local_mgr_ == nullptr) { return; }
    if (ni_.inject_requests(id_, *local_mgr_, map_,
                            [this](NodeId dest, std::uint32_t flits,
                                   std::uint8_t vc) {
                                return route_out(/*request_net=*/true, dest, flits,
                                                 vc);
                            })) {
        ++injected_;
    }
}

void MeshRouter::inject_responses() {
    if (egress_.empty()) { return; }
    if (ni_.inject_responses(id_, egress_,
                             [this](NodeId dest, std::uint32_t flits,
                                    std::uint8_t vc) {
                                 return route_out(/*request_net=*/false, dest,
                                                  flits, vc);
                             })) {
        ++injected_;
    }
}

void MeshRouter::tick() {
    ni_.drain_response_stash(local_mgr_);
    service_network(/*request_net=*/false);
    service_network(/*request_net=*/true);
    inject_responses();
    inject_requests();
    update_activity();
}

void MeshRouter::update_activity() {
    // Conservative idle contract, same shape as the ring node: a tick is a
    // no-op iff nothing this router consumes holds a flit (`empty()`, not
    // `can_pop()` — a flit pushed this cycle needs us next cycle). Credit
    // waits (including delayed credit returns) and link serialization
    // windows enable no new work by themselves; progress always rides on a
    // held flit, which keeps us awake through the checks below.
    for (std::size_t d = 0; d < kMeshDirs; ++d) {
        if (ports_.req_in[d] != nullptr && !ports_.req_in[d]->empty()) { return; }
        if (ports_.rsp_in[d] != nullptr && !ports_.rsp_in[d]->empty()) { return; }
    }
    if (local_mgr_ != nullptr && !local_mgr_->requests_empty()) { return; }
    for (const axi::AxiChannel* ch : egress_) {
        if (ch != nullptr && !ch->responses_empty()) { return; }
    }
    // A stashed response only progresses as the local manager drains,
    // which raises no wake — never sleep on one.
    if (ni_.has_stashed_responses()) { return; }
    idle_forever();
}

// ---------------------------------------------------------------------------
// NocMesh
// ---------------------------------------------------------------------------

NocMesh::NocMesh(sim::SimContext& ctx, std::string name, NodeId rows,
                 NodeId cols, ic::AddrMap node_map,
                 std::vector<NodeId> subordinate_nodes, NocFlowConfig flow,
                 RoutingPolicy routing, std::vector<unsigned> tile_shards)
    : rows_{rows}, cols_{cols}, flow_{flow}, routing_{routing},
      tile_shards_{std::move(tile_shards)} {
    const std::uint32_t n32 = static_cast<std::uint32_t>(rows) * cols;
    REALM_EXPECTS(n32 >= 2, "a mesh needs at least two nodes");
    REALM_EXPECTS(n32 <= 65535, "node ids are 16-bit");
    // The mesh always runs the shard-safe transport — edge-registered
    // neighbor links and cycle-edge credit returns — so its behaviour never
    // depends on the shard count (including 1). Deferred returns need at
    // least one cycle of return latency; with a pipelined fabric
    // (link_latency > 1) they need the full link latency, so every
    // cross-shard channel — flit links *and* credit returns — carries the
    // conservative lookahead the batched barrier relies on.
    flow_.credit_return_delay = std::max(
        flow_.link_latency,
        std::max<std::uint32_t>(1, flow_.credit_return_delay));
    flow_.validate();
    const auto n = static_cast<NodeId>(n32);
    stripe_shards_ = std::min<unsigned>(std::max(1U, ctx.shards()),
                                        static_cast<unsigned>(cols));
    if (!tile_shards_.empty()) {
        REALM_EXPECTS(tile_shards_.size() == n32,
                      "tile_shards must map every mesh node");
        const unsigned shards = std::max(1U, ctx.shards());
        for (const unsigned s : tile_shards_) {
            REALM_EXPECTS(s < shards, "tile_shards entry out of shard range");
        }
    }
    sub_index_.assign(n, -1);
    for (const NodeId s : subordinate_nodes) {
        REALM_EXPECTS(s < n, "subordinate node out of range");
    }
    book_ = std::make_unique<CreditBook>(n, flow_);

    // Channels and links first (plain objects, no tick order concerns).
    // The routing policy fixes the per-link VC count (O1TURN needs one VC
    // per route class). Every router<->router link is edge-registered:
    // pushes stage producer-side and commit at the cycle-edge flush, which
    // is what makes cross-shard traffic order-independent within a cycle.
    const std::uint8_t vcs = route_num_vcs(routing_);
    const auto make_link = [&](std::vector<std::unique_ptr<NocLink>>& v,
                               NodeId i, const char* tag) {
        v[i] = std::make_unique<NocLink>(ctx, name + tag + std::to_string(i), flow_,
                                         vcs, /*edge_registered=*/true);
    };
    h_req_fwd_.resize(n);
    h_req_rev_.resize(n);
    h_rsp_fwd_.resize(n);
    h_rsp_rev_.resize(n);
    v_req_fwd_.resize(n);
    v_req_rev_.resize(n);
    v_rsp_fwd_.resize(n);
    v_rsp_rev_.resize(n);
    for (NodeId i = 0; i < n; ++i) {
        const sim::ShardScope scope{ctx, shard_of_node(i)};
        mgr_ports_.push_back(std::make_unique<axi::AxiChannel>(
            ctx, name + ".mgr" + std::to_string(i)));
        if (i % cols != cols - 1U) { // east neighbor exists
            make_link(h_req_fwd_, i, ".hreq_e");
            make_link(h_req_rev_, i, ".hreq_w");
            make_link(h_rsp_fwd_, i, ".hrsp_e");
            make_link(h_rsp_rev_, i, ".hrsp_w");
        }
        if (i / cols != rows - 1U) { // south neighbor exists
            make_link(v_req_fwd_, i, ".vreq_s");
            make_link(v_req_rev_, i, ".vreq_n");
            make_link(v_rsp_fwd_, i, ".vrsp_s");
            make_link(v_rsp_rev_, i, ".vrsp_n");
        }
    }
    egress_.resize(n);
    for (const NodeId s : subordinate_nodes) {
        const sim::ShardScope scope{ctx, shard_of_node(s)};
        std::vector<axi::AxiChannel*> egress_raw;
        for (NodeId src = 0; src < n; ++src) {
            egress_[s].push_back(std::make_unique<axi::AxiChannel>(
                ctx, name + ".eg" + std::to_string(s) + "_" + std::to_string(src),
                staging_depth(flow_)));
            wire_credit_returns(ctx, *egress_[s].back(), book_->req(s, src), flow_,
                                /*deferred=*/true);
            egress_raw.push_back(egress_[s].back().get());
        }
        sub_index_[s] = static_cast<int>(sub_ports_.size());
        sub_ports_.push_back(std::make_unique<axi::AxiChannel>(
            ctx, name + ".sub" + std::to_string(s)));
        muxes_.push_back(std::make_unique<ic::AxiMux>(ctx, name + ".mux" + std::to_string(s),
                                                      std::move(egress_raw),
                                                      *sub_ports_.back()));
    }

    // Pre-materialize every credit pool the tick phase can touch, then
    // freeze the book: pool lookups insert into a map shared by all shards,
    // which must only ever happen here, single-threaded. Request pools
    // (subordinate dest x any src) materialized above via
    // wire_credit_returns; response pools are (manager dest x subordinate
    // src) — responses only ever originate at subordinate nodes.
    for (NodeId d = 0; d < n; ++d) {
        for (const NodeId s : subordinate_nodes) { book_->rsp(d, s); }
    }
    book_->freeze();

    // Routers last, in node order (construction order fixes tick order).
    const auto dir = [](MeshDir d) { return static_cast<std::size_t>(d); };
    for (NodeId i = 0; i < n; ++i) {
        const sim::ShardScope scope{ctx, shard_of_node(i)};
        std::vector<axi::AxiChannel*> egress_raw;
        for (const auto& ch : egress_[i]) { egress_raw.push_back(ch.get()); }

        MeshRouter::Ports p;
        if (i % cols != cols - 1U) { // east neighbor at i+1
            p.req_out[dir(MeshDir::kEast)] = h_req_fwd_[i].get();
            p.req_in[dir(MeshDir::kEast)] = h_req_rev_[i].get();
            p.rsp_out[dir(MeshDir::kEast)] = h_rsp_fwd_[i].get();
            p.rsp_in[dir(MeshDir::kEast)] = h_rsp_rev_[i].get();
        }
        if (i % cols != 0U) { // west neighbor at i-1
            p.req_out[dir(MeshDir::kWest)] = h_req_rev_[i - 1].get();
            p.req_in[dir(MeshDir::kWest)] = h_req_fwd_[i - 1].get();
            p.rsp_out[dir(MeshDir::kWest)] = h_rsp_rev_[i - 1].get();
            p.rsp_in[dir(MeshDir::kWest)] = h_rsp_fwd_[i - 1].get();
        }
        if (i / cols != rows - 1U) { // south neighbor at i+cols
            p.req_out[dir(MeshDir::kSouth)] = v_req_fwd_[i].get();
            p.req_in[dir(MeshDir::kSouth)] = v_req_rev_[i].get();
            p.rsp_out[dir(MeshDir::kSouth)] = v_rsp_fwd_[i].get();
            p.rsp_in[dir(MeshDir::kSouth)] = v_rsp_rev_[i].get();
        }
        if (i / cols != 0U) { // north neighbor at i-cols
            p.req_out[dir(MeshDir::kNorth)] = v_req_rev_[i - cols].get();
            p.req_in[dir(MeshDir::kNorth)] = v_req_fwd_[i - cols].get();
            p.rsp_out[dir(MeshDir::kNorth)] = v_rsp_rev_[i - cols].get();
            p.rsp_in[dir(MeshDir::kNorth)] = v_rsp_fwd_[i - cols].get();
        }
        routers_.push_back(std::make_unique<MeshRouter>(
            ctx, name + ".r" + std::to_string(i), i, cols, n, node_map,
            mgr_ports_[i].get(), std::move(egress_raw), p, flow_, book_.get(),
            routing_, /*deferred_credits=*/true));
    }
}

axi::AxiChannel& NocMesh::subordinate_port(NodeId node) {
    REALM_EXPECTS(node < sub_index_.size() && sub_index_[node] >= 0,
                  "node hosts no subordinate");
    return *sub_ports_[static_cast<std::size_t>(sub_index_[node])];
}

std::uint64_t NocMesh::total_forwarded() const noexcept {
    std::uint64_t total = 0;
    for (const auto& r : routers_) { total += r->forwarded(); }
    return total;
}

std::uint64_t NocMesh::total_stalls() const noexcept {
    std::uint64_t total = 0;
    for (const auto& r : routers_) { total += r->stall_cycles(); }
    return total;
}

std::uint64_t NocMesh::total_mux_w_stalls() const noexcept {
    std::uint64_t total = 0;
    for (const auto& m : muxes_) { total += m->w_stall_cycles(); }
    return total;
}

void NocMesh::check_flow_invariants() const {
    book_->check_conserved();
    const auto check_links = [](const std::vector<std::unique_ptr<NocLink>>& v) {
        for (const auto& link : v) {
            if (link != nullptr) { link->check_bounded(); }
        }
    };
    check_links(h_req_fwd_);
    check_links(h_req_rev_);
    check_links(h_rsp_fwd_);
    check_links(h_rsp_rev_);
    check_links(v_req_fwd_);
    check_links(v_req_rev_);
    check_links(v_rsp_fwd_);
    check_links(v_rsp_rev_);
    for (std::size_t s = 0; s < egress_.size(); ++s) {
        for (std::size_t src = 0; src < egress_[s].size(); ++src) {
            check_staging_invariants(
                *egress_[s][src],
                book_->req(static_cast<NodeId>(s), static_cast<NodeId>(src)),
                flow_,
                routers_[s]->ni().stashed_request_flits(
                    static_cast<NodeId>(src)));
        }
    }
    // Response reorder stashes are bounded by the response pools: a stashed
    // response still holds its end-to-end credits. Only subordinate nodes
    // source responses (the frozen book holds exactly those pools).
    for (std::size_t d = 0; d < routers_.size(); ++d) {
        for (NodeId src = 0; src < routers_.size(); ++src) {
            if (sub_index_[src] < 0) { continue; }
            REALM_ENSURES(
                routers_[d]->ni().stashed_response_flits(src) <=
                    book_->rsp(static_cast<NodeId>(d), src).in_flight(),
                "stashed response flits without matching in-flight credits");
        }
    }
}

} // namespace realm::noc
