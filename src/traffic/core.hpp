/// \file
/// \brief In-order core model with blocking loads and a draining store buffer.
///
/// Stands in for CVA6 in the paper's evaluation: latency-sensitive,
/// fine-granular traffic. Loads block the pipeline until the last R beat
/// returns (the property that makes interconnect contention catastrophic);
/// stores retire into a small buffer drained in the background.
#pragma once

#include "axi/channel.hpp"
#include "traffic/workload.hpp"

#include "mon/quantile.hpp"
#include "sim/component.hpp"
#include "sim/stats.hpp"

#include <cstdint>
#include <deque>
#include <optional>

namespace realm::traffic {

struct CoreConfig {
    std::uint32_t bus_bytes = 8;
    axi::IdT read_id = 0;
    axi::IdT write_id = 0;
    std::uint32_t store_buffer_depth = 4;
    /// AxQOS stamped on every transaction (only meaningful on QoS-arbitrated
    /// interconnects, see `ic::XbarArbitration::kQosPriority`).
    std::uint8_t qos = 0;
};

class CoreModel : public sim::Component {
public:
    CoreModel(sim::SimContext& ctx, std::string name, axi::AxiChannel& port,
              Workload& workload, CoreConfig config = {});

    void reset() override;
    void tick() override;

    /// Program finished and all outstanding transactions retired.
    [[nodiscard]] bool done() const noexcept { return done_; }
    /// Cycle at which `done()` became true.
    [[nodiscard]] sim::Cycle finish_cycle() const noexcept { return finish_cycle_; }

    /// \name Statistics
    ///@{
    [[nodiscard]] const sim::LatencyStat& load_latency() const noexcept { return load_lat_; }
    [[nodiscard]] const sim::LatencyStat& store_latency() const noexcept { return store_lat_; }
    /// Fixed-memory load-latency distribution: quantiles overestimate by at
    /// most `mon::QuantileSketch::kRelativeErrorBound` (3.125%), a far
    /// tighter bound than the power-of-two `LatencyStat` buckets.
    [[nodiscard]] const mon::QuantileSketch& load_sketch() const noexcept { return load_sketch_; }
    [[nodiscard]] std::uint64_t loads_retired() const noexcept { return loads_; }
    [[nodiscard]] std::uint64_t stores_retired() const noexcept { return stores_; }
    [[nodiscard]] std::uint64_t compute_cycles() const noexcept { return compute_cycles_; }
    [[nodiscard]] std::uint64_t load_stall_cycles() const noexcept { return load_stalls_; }
    [[nodiscard]] std::uint64_t store_stall_cycles() const noexcept { return store_stalls_; }
    ///@}

private:
    void drain_stores();
    void collect_responses();
    void advance_program();

    axi::ManagerView port_;
    Workload* workload_;
    CoreConfig cfg_;

    /// Current op being prepared/waited on.
    std::optional<MemOp> current_;
    std::uint32_t compute_left_ = 0;
    bool waiting_load_ = false;
    sim::Cycle load_issued_at_ = 0;
    std::uint32_t load_beats_left_ = 0;

    struct PendingStore {
        MemOp op;
        bool aw_sent = false;
        std::uint32_t beats_left = 0;
        sim::Cycle issued_at = 0;
    };
    std::deque<PendingStore> store_buffer_;
    std::deque<sim::Cycle> stores_awaiting_b_;

    bool program_done_ = false;
    bool done_ = false;
    sim::Cycle finish_cycle_ = 0;

    sim::LatencyStat load_lat_;
    sim::LatencyStat store_lat_;
    mon::QuantileSketch load_sketch_;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t compute_cycles_ = 0;
    std::uint64_t load_stalls_ = 0;
    std::uint64_t store_stalls_ = 0;
};

} // namespace realm::traffic
