#include "scenario/scenario.hpp"

#include "sim/check.hpp"
#include "sim/profiler.hpp"

#include <bit>
#include <chrono>
#include <memory>
#include <type_traits>
#include <utility>

namespace realm::scenario {

namespace {

/// Builds the victim workload; for Susan this also seeds the fabric's
/// memory with the generator's input image and warms any cache over it.
std::unique_ptr<traffic::Workload> make_victim(const VictimConfig& cfg,
                                               std::uint64_t seed,
                                               TopologyHandle& topo) {
    switch (cfg.kind) {
    case VictimConfig::Kind::kSusan: {
        traffic::SusanTraceGenerator gen{cfg.susan};
        const auto& img = gen.input_image();
        for (std::size_t i = 0; i < img.size(); ++i) {
            topo.write_u8(cfg.susan.image_base + i, img[i]);
        }
        topo.warm(cfg.susan.image_base, img.size());
        topo.warm(cfg.susan.out_base, img.size());
        topo.warm(cfg.susan.lut_base, 4096);
        return std::make_unique<traffic::TraceWorkload>(gen.take_ops());
    }
    case VictimConfig::Kind::kStream:
        return std::make_unique<traffic::StreamWorkload>(cfg.stream);
    case VictimConfig::Kind::kRandom: {
        traffic::RandomWorkload::Config rnd = cfg.random;
        rnd.seed = seed; // the derived per-point seed, not a shared default
        return std::make_unique<traffic::RandomWorkload>(rnd);
    }
    }
    REALM_EXPECTS(false, "unknown victim kind");
    return nullptr;
}

} // namespace

ScenarioResult run_scenario(const ScenarioConfig& cfg, std::string label) {
    const auto wall_start = std::chrono::steady_clock::now();

    ScenarioResult res;
    res.label = label.empty() ? cfg.name : std::move(label);
    res.seed = cfg.seed;

    sim::SimContext ctx;
    ctx.set_scheduler(cfg.scheduler);
    // Shards must be set before the topology is built: fabrics read the
    // shard count to stripe their tiles, and components pick up the build
    // shard at registration.
    ctx.set_shards(cfg.shards == 0 ? 1 : cfg.shards);
    ctx.set_shard_workers(cfg.shard_workers);
    std::unique_ptr<sim::Profiler> profiler;
    if (cfg.profile) {
        profiler = std::make_unique<sim::Profiler>();
        ctx.set_profiler(profiler.get());
    }
    std::unique_ptr<TopologyHandle> topo = make_topology(ctx, cfg);
    // Lookahead batching: with every cross-shard effect carrying at least
    // `lookahead()` cycles of modeled latency, the kernel runs that many
    // cycles per barrier epoch. Set for every shard count (including 1) so
    // the flush cadence — which is semantic, see sim/context.hpp — is a pure
    // function of the config and results stay bit-identical across shards.
    ctx.set_lookahead(topo->lookahead());
    REALM_EXPECTS(cfg.interference.size() <= topo->num_interference_ports(),
                  "more interference DMAs than fabric manager ports");

    // --- Memory preconditioning -----------------------------------------
    auto victim_workload = make_victim(cfg.victim, cfg.seed, *topo);
    for (const PreloadSpan& span : cfg.preload) {
        for (std::uint64_t off = 0; off < span.bytes; off += 8) {
            topo->write_u64(span.base + off, off * span.multiplier);
        }
        if (span.warm) { topo->warm(span.base, span.bytes); }
    }

    // --- Boot-flow / fabric regulation ----------------------------------
    res.boot_ok = topo->boot(cfg.boot_plans);
    if (!res.boot_ok) { return res; }
    if (cfg.throttle_dsa) { topo->set_interference_throttle(true); }
    if (cfg.monitor_llc_on_core) { topo->set_victim_monitor(); }

    // --- Interference ----------------------------------------------------
    // With monitors enabled each manager drives a fresh channel whose far
    // side is a pass-through TxnMonitor in front of the real fabric port.
    // Monitor and channel live on the manager's shard, so the sharded kernel
    // sees one more same-shard component and stays race-free.
    const bool monitored = cfg.monitors.enabled;
    std::vector<std::unique_ptr<axi::AxiChannel>> mon_channels;
    std::vector<std::unique_ptr<mon::TxnMonitor>> monitors;
    const auto interpose = [&](axi::AxiChannel& port, const std::string& name)
        -> axi::AxiChannel& {
        if (!monitored) { return port; }
        mon_channels.push_back(std::make_unique<axi::AxiChannel>(ctx, "ch_" + name));
        monitors.push_back(std::make_unique<mon::TxnMonitor>(
            ctx, name, *mon_channels.back(), port, cfg.monitors.thresholds));
        return *mon_channels.back();
    };

    std::vector<std::unique_ptr<traffic::DmaEngine>> dmas;
    std::vector<std::unique_ptr<traffic::InjectorEngine>> injectors;
    for (std::size_t i = 0; i < cfg.interference.size(); ++i) {
        const InterferenceConfig& irq = cfg.interference[i];
        // The engine talks to its port through plain registered channels, so
        // it must tick on the same shard as the tile behind the port.
        const sim::ShardScope scope{ctx, topo->interference_shard(i)};
        axi::AxiChannel& port =
            interpose(topo->interference_port(i), "mon_dsa" + std::to_string(i));
        if (irq.genome) {
            // Genome-driven programmable injector (adversarial search plane).
            traffic::InjectorConfig icfg;
            icfg.bus_bytes = irq.dma.bus_bytes;
            icfg.genome = *irq.genome;
            icfg.read_base = irq.src;
            icfg.write_base = irq.dst;
            icfg.span_bytes = irq.bytes;
            // Per-engine seed derived from the point seed and the index, so
            // multi-attacker cells decorrelate deterministically.
            icfg.seed = sim::derive_seed("injector", cfg.seed + i);
            injectors.push_back(std::make_unique<traffic::InjectorEngine>(
                ctx, "dsa_inj" + std::to_string(i), port, icfg));
            continue;
        }
        dmas.push_back(std::make_unique<traffic::DmaEngine>(
            ctx, "dsa_dma" + std::to_string(i), port, irq.dma));
        dmas.back()->push_job(traffic::DmaJob{irq.src, irq.dst, irq.bytes, irq.loop});
    }
    if (!cfg.interference.empty() && cfg.warmup_cycles > 0) {
        ctx.run(cfg.warmup_cycles);
    }

    // --- Victim ----------------------------------------------------------
    const sim::ShardScope victim_scope{ctx, topo->victim_shard()};
    axi::AxiChannel& victim_port = interpose(topo->victim_port(), "mon_core");
    const std::size_t victim_mon = monitored ? monitors.size() - 1 : 0;
    traffic::CoreModel core{ctx, "core", victim_port, *victim_workload};
    const sim::Cycle start = ctx.now();
    // Interference-side read counter of engine 0 (DMA or injector), for the
    // victim-window bandwidth metric.
    const auto interference_bytes_read = [&]() -> std::uint64_t {
        if (!dmas.empty()) { return dmas[0]->bytes_read(); }
        return injectors.empty() ? 0 : injectors[0]->bytes_read();
    };
    const std::uint64_t dma_bytes_before = interference_bytes_read();
    res.timed_out = !ctx.run_until([&] { return core.done(); }, cfg.max_cycles);
    // On timeout the victim never finished; charge the whole window instead
    // of underflowing against a zero finish_cycle.
    const sim::Cycle victim_end = res.timed_out ? ctx.now() : core.finish_cycle();
    if (cfg.cooldown_cycles > 0) { ctx.run(cfg.cooldown_cycles); }

    // --- Harvest ---------------------------------------------------------
    res.run_cycles = victim_end - start;
    res.ops = core.loads_retired() + core.stores_retired();
    res.load_lat_mean = core.load_latency().mean();
    res.load_lat_min = core.load_latency().min();
    res.load_lat_max = core.load_latency().max();
    // P99 comes from the fixed-memory sketch: <= 3.125% overestimate
    // (QuantileSketch::kRelativeErrorBound) instead of the LatencyStat
    // histogram's power-of-two bucket edges (up to ~2x).
    res.load_lat_p99 = core.load_sketch().quantile(0.99);
    res.store_lat_mean = core.store_latency().mean();
    res.store_lat_max = core.store_latency().max();

    if (!dmas.empty() || !injectors.empty()) {
        res.dma_bytes = interference_bytes_read() - dma_bytes_before;
        res.dma_read_bw = res.run_cycles == 0
                              ? 0.0
                              : static_cast<double>(res.dma_bytes) /
                                    static_cast<double>(res.run_cycles);
        if (const rt::RealmUnit* unit = topo->interference_realm(0)) {
            res.dma_depletions = unit->mr().region(0).depletion_events;
            res.dma_isolation_cycles = unit->mr().isolation_cycles();
            res.dma_throttle_stalls = unit->throttle_stalls();
            res.dma_cut_through = unit->write_buffer().cut_through_bursts();
            res.dma_mr_bytes_total = unit->mr().region(0).bytes_total;
            res.dma_mr_read_lat_mean = unit->mr().region(0).read_latency.mean();
        }
    }
    if (const rt::RealmUnit* unit = topo->victim_realm()) {
        res.core_mr_read_lat_mean = unit->mr().region(0).read_latency.mean();
        res.core_mr_write_lat_max = unit->mr().region(0).write_latency.max();
    }
    res.xbar_w_stalls = topo->fabric_w_stalls();
    res.fabric_hops = topo->fabric_hops();

    if (monitored) {
        res.mon_enabled = true;
        // Merge order is fixed (victim, then DMA 0..n-1) and single-threaded,
        // so the fabric-wide sketch is bit-identical for every shard count.
        mon::QuantileSketch fabric;
        std::vector<mon::Verdict> verdicts;
        const auto harvest_monitor = [&](mon::TxnMonitor& m, bool hostile) {
            m.finalize();
            const mon::QuantileSketch combined = m.combined_sketch();
            fabric.merge(combined);
            res.mgr_p50.push_back(combined.quantile(0.50));
            res.mgr_p99.push_back(combined.quantile(0.99));
            res.mgr_p999.push_back(combined.quantile(0.999));
            res.mgr_flagged.push_back(m.flagged() ? 1 : 0);
            res.mgr_signals.push_back(m.signals());
            res.mgr_hostile.push_back(hostile ? 1 : 0);
            res.mgr_detect.push_back(m.time_to_detect());
            res.mgr_occ_milli.push_back(m.occupancy_milli());
            res.mon_timeouts += m.timeouts();
            res.mon_orphan_rsp += m.orphan_responses();
            res.mon_orphan_req += m.orphan_requests();
            res.mon_stall_events += m.stall_events();
            res.mon_wgap_events += m.w_gap_events();
            verdicts.push_back(
                {hostile, m.flagged(), m.signals(), m.time_to_detect()});
        };
        harvest_monitor(*monitors[victim_mon], false);
        for (std::size_t i = 0; i < cfg.interference.size(); ++i) {
            harvest_monitor(*monitors[i], cfg.interference[i].hostile);
        }
        res.mon_lat_p50 = fabric.quantile(0.50);
        res.mon_lat_p99 = fabric.quantile(0.99);
        res.mon_lat_p999 = fabric.quantile(0.999);
        const mon::DetectionScore score = mon::score_verdicts(verdicts);
        res.mon_true_positives = score.true_positives;
        res.mon_false_positives = score.false_positives;
        res.mon_false_negatives = score.false_negatives;
        res.mon_first_detect = score.first_detect;
    }

    res.ticks_executed = ctx.ticks_executed();
    res.ticks_skipped = ctx.ticks_skipped();
    for (unsigned s = 0; s < ctx.shards(); ++s) {
        res.shard_ticks_executed.push_back(ctx.shard_ticks_executed(s));
        res.shard_ticks_skipped.push_back(ctx.shard_ticks_skipped(s));
    }
    res.fast_forwarded_cycles = ctx.fast_forwarded_cycles();
    res.simulated_cycles = ctx.now();
    if (profiler) {
        ctx.set_profiler(nullptr); // detach before the context outlives it
        for (const sim::Profiler::Row& row : profiler->rows()) {
            res.profile.push_back(
                ProfileRow{row.type, row.shard, row.components, row.ticks, row.nanos});
        }
    }
    res.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();
    return res;
}

// ---------------------------------------------------------------------------
// Config digest (sweep-level resume).
// ---------------------------------------------------------------------------

namespace {

/// FNV-1a accumulator over the semantic fields of a config. Every field that
/// can change a run's result must be mixed in; cosmetic fields (name, label)
/// must not be. `kVersion` is bumped whenever the config layout or the run
/// semantics change, invalidating stale caches wholesale.
class ConfigDigest {
public:
    static constexpr std::uint64_t kVersion = 8; ///< v8: pipelined links
                                                 ///< (`link_latency`) on the
                                                 ///< NoC fabrics

    ConfigDigest() { mix(kVersion); }

    template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
    void mix(T v) noexcept {
        const auto word = static_cast<std::uint64_t>(v);
        for (int i = 0; i < 8; ++i) {
            h_ ^= (word >> (8 * i)) & 0xFF;
            h_ *= 0x100000001b3ULL;
        }
    }
    void mix(double v) noexcept { mix(std::bit_cast<std::uint64_t>(v)); }

    [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

private:
    std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

void mix_realm(ConfigDigest& d, const rt::RealmUnitConfig& r) {
    d.mix(r.enabled);
    d.mix(r.fragment_beats);
    d.mix(r.max_pending);
    d.mix(r.write_buffer_depth);
    d.mix(r.write_buffer_enabled);
    d.mix(r.throttle_enabled);
    d.mix(r.num_regions);
}

void mix_noc(ConfigDigest& d, const NocTopologyConfig& noc) {
    d.mix(noc.nodes.size());
    for (const RingNodeSpec& n : noc.nodes) {
        d.mix(static_cast<std::uint64_t>(n.role));
        d.mix(n.realm);
        d.mix(n.realm_config.has_value());
        if (n.realm_config) { mix_realm(d, *n.realm_config); }
    }
    d.mix(noc.mem_base);
    d.mix(noc.mem_span_bytes);
    d.mix(noc.mem_stride);
    d.mix(noc.mem_access_latency);
    d.mix(noc.mem_max_outstanding);
    // Flow-control and routing fields (v4): different transport knobs or
    // routing policies must never alias in a resume cache.
    d.mix(noc.flits_per_packet);
    d.mix(noc.vc_depth);
    d.mix(noc.e2e_credits);
    d.mix(noc.credit_return_delay);
    // Pipelined links (v8): link_latency changes every flit's arrival cycle,
    // so it is semantic on both NoC fabrics. The batching it enables is not
    // (bit-identical for every shard count / partition), so `partition`,
    // `tile_shards`, and `partition_profile` stay out of the hash.
    d.mix(noc.link_latency);
    d.mix(static_cast<std::uint64_t>(noc.routing));
    mix_realm(d, noc.realm);
}

} // namespace

std::uint64_t config_hash(const ScenarioConfig& cfg) {
    ConfigDigest d;

    d.mix(static_cast<std::uint64_t>(cfg.topology.kind));
    d.mix(cfg.topology.ring.num_nodes);
    mix_noc(d, cfg.topology.ring);
    d.mix(cfg.topology.mesh.rows);
    d.mix(cfg.topology.mesh.cols);
    mix_noc(d, cfg.topology.mesh);

    d.mix(cfg.soc.bus_bytes);
    d.mix(cfg.soc.num_dsa);
    d.mix(cfg.soc.realm_present);
    d.mix(cfg.soc.cfg_base);
    d.mix(cfg.soc.cfg_size);
    d.mix(cfg.soc.spm_base);
    d.mix(cfg.soc.spm_size);
    d.mix(cfg.soc.dram_base);
    d.mix(cfg.soc.dram_size);
    d.mix(cfg.soc.llc.line_bytes);
    d.mix(cfg.soc.llc.ways);
    d.mix(cfg.soc.llc.sets);
    d.mix(cfg.soc.llc.bus_bytes);
    d.mix(cfg.soc.llc.hit_latency);
    d.mix(cfg.soc.llc.request_interval);
    d.mix(cfg.soc.llc.max_outstanding);
    d.mix(cfg.soc.dram.row_hit);
    d.mix(cfg.soc.dram.row_miss);
    d.mix(cfg.soc.dram.banks);
    d.mix(cfg.soc.dram.row_bytes);
    mix_realm(d, cfg.soc.realm);
    d.mix(static_cast<std::uint64_t>(cfg.soc.arbitration));

    d.mix(cfg.boot_plans.size());
    for (const RegionPlan& p : cfg.boot_plans) {
        d.mix(p.budget_bytes);
        d.mix(p.period_cycles);
        d.mix(p.fragment_beats);
    }
    d.mix(cfg.throttle_dsa);
    d.mix(cfg.monitor_llc_on_core);

    d.mix(static_cast<std::uint64_t>(cfg.victim.kind));
    const traffic::SusanConfig& su = cfg.victim.susan;
    d.mix(su.width);
    d.mix(su.height);
    d.mix(su.mask_radius);
    d.mix(su.threshold);
    d.mix(su.image_base);
    d.mix(su.out_base);
    d.mix(su.lut_base);
    d.mix(su.filter_cache_bytes);
    d.mix(su.filter_line_bytes);
    d.mix(su.compute_quarter_cycles_per_tap);
    d.mix(su.filtered_load_quarter_cycles);
    d.mix(su.image_seed);
    d.mix(su.max_ops);
    const traffic::StreamWorkload::Config& st = cfg.victim.stream;
    d.mix(st.base);
    d.mix(st.bytes);
    d.mix(st.op_bytes);
    d.mix(st.stride_bytes);
    d.mix(st.compute_cycles);
    d.mix(st.store_ratio16);
    d.mix(st.repeat);
    const traffic::RandomWorkload::Config& rd = cfg.victim.random;
    d.mix(rd.base);
    d.mix(rd.bytes);
    d.mix(rd.op_bytes);
    d.mix(rd.compute_cycles);
    d.mix(rd.store_ratio16);
    d.mix(rd.num_ops);
    // rd.seed is overwritten by cfg.seed in run_scenario; cfg.seed is mixed.

    d.mix(cfg.interference.size());
    for (const InterferenceConfig& irq : cfg.interference) {
        d.mix(irq.dma.bus_bytes);
        d.mix(irq.dma.burst_beats);
        d.mix(irq.dma.num_buffers);
        d.mix(irq.dma.max_outstanding_reads);
        d.mix(irq.dma.max_outstanding_writes);
        d.mix(irq.dma.w_stall_cycles);
        d.mix(irq.dma.reserve_before_data);
        d.mix(irq.dma.qos);
        d.mix(irq.src);
        d.mix(irq.dst);
        d.mix(irq.bytes);
        d.mix(irq.loop);
        d.mix(irq.hostile);
        // Injector genomes (v7): a searched point is one genome away from
        // its grid sibling, so every gene byte is semantic.
        d.mix(irq.genome.has_value());
        if (irq.genome) {
            for (const std::uint8_t gene : irq.genome->genes) { d.mix(gene); }
        }
    }
    // Monitoring plane (v6): the monitor hop changes timing and the verdicts
    // land in the result, so the enable flag and every threshold are
    // semantic. `report_managers` is a host-side display knob and stays out.
    d.mix(cfg.monitors.enabled);
    d.mix(cfg.monitors.thresholds.timeout_cycles);
    d.mix(cfg.monitors.thresholds.stall_cycles);
    d.mix(cfg.monitors.thresholds.window_cycles);
    d.mix(cfg.monitors.thresholds.bw_threshold);
    d.mix(cfg.monitors.thresholds.held_threshold);
    d.mix(cfg.monitors.thresholds.occ_threshold);
    d.mix(cfg.preload.size());
    for (const PreloadSpan& span : cfg.preload) {
        d.mix(span.base);
        d.mix(span.bytes);
        d.mix(span.multiplier);
        d.mix(span.warm);
    }

    d.mix(cfg.warmup_cycles);
    d.mix(cfg.max_cycles);
    d.mix(cfg.cooldown_cycles);
    d.mix(static_cast<std::uint64_t>(cfg.scheduler));
    // Mixed although results are shard-invariant: a resume cache keyed on
    // the hash must distinguish the points of a shard-scaling sweep.
    d.mix(cfg.shards);
    d.mix(cfg.seed);
    return d.value();
}

} // namespace realm::scenario
