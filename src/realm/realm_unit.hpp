/// \file
/// \brief The AXI-REALM unit (Figure 2 of the paper): isolation block,
///        granular burst splitter, write buffer and M&R unit, orchestrated
///        by a small FSM, placed between one manager and the interconnect.
///
/// Timing: the unit adds exactly **one cycle** to the request path and none
/// to the response path, matching the paper ("AXI-REALM delays in-flight
/// transactions by just one clock cycle"). For this to hold the downstream
/// channel must be constructed with `resp_passthrough = true` and the unit
/// registered *after* the component driving the downstream response
/// channels (the crossbar). `connect_realm_unit` in soc/ does this.
#pragma once

#include "axi/channel.hpp"
#include "realm/isolation.hpp"
#include "realm/mr_unit.hpp"
#include "realm/splitter.hpp"
#include "realm/write_buffer.hpp"

#include "sim/component.hpp"

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

namespace realm::rt {

/// Design-time parameters (the paper's Table II sweep axes).
struct RealmUnitConfig {
    bool enabled = true;             ///< start in regulation mode (else bypass)
    std::uint32_t fragment_beats = axi::kMaxBurstBeats;
    std::uint32_t max_pending = 8;   ///< outstanding transactions per direction
    std::uint32_t write_buffer_depth = 16;
    bool write_buffer_enabled = true;
    bool throttle_enabled = false;
    std::uint32_t num_regions = 2;
};

/// FSM state exposed through the status register.
enum class RealmState : std::uint8_t {
    kBypass,         ///< unit disabled, traffic passes unmodified
    kReady,          ///< regulating, manager admitted
    kIsolatedBudget, ///< a region depleted its budget; waiting for the period
    kDraining,       ///< isolation/reconfiguration commanded, outstanding draining
    kIsolatedUser,   ///< user-commanded isolation in full effect
};

[[nodiscard]] constexpr const char* to_string(RealmState s) noexcept {
    switch (s) {
    case RealmState::kBypass: return "BYPASS";
    case RealmState::kReady: return "READY";
    case RealmState::kIsolatedBudget: return "ISOLATED_BUDGET";
    case RealmState::kDraining: return "DRAINING";
    case RealmState::kIsolatedUser: return "ISOLATED_USER";
    }
    return "?";
}

class RealmUnit : public sim::Component {
public:
    RealmUnit(sim::SimContext& ctx, std::string name, axi::AxiChannel& upstream,
              axi::AxiChannel& downstream, RealmUnitConfig config = {});

    void reset() override;
    void tick() override;

    /// \name Runtime configuration (driven by the protected register file)
    ///@{
    /// Requests a new fragmentation granularity. Intrusive: applied
    /// immediately when idle, otherwise the unit drains first. Returns true
    /// if applied immediately.
    bool set_fragmentation(std::uint32_t beats);
    /// Enables/disables the whole unit (intrusive, drains first).
    bool set_enabled(bool enabled);
    void set_region(std::uint32_t index, const RegionConfig& region);
    void set_throttle(bool enabled) {
        mr_.set_throttle_enabled(enabled);
        wake();
    }
    /// Commands (or releases) manager isolation.
    void set_user_isolation(bool isolate);
    ///@}

    /// \name Status
    ///@{
    [[nodiscard]] RealmState state() const noexcept;
    [[nodiscard]] bool fully_isolated() const noexcept { return iso_.fully_isolated(); }
    [[nodiscard]] std::uint32_t fragmentation() const noexcept {
        return splitter_.granularity();
    }
    [[nodiscard]] bool enabled() const noexcept { return cfg_.enabled; }
    [[nodiscard]] const RealmUnitConfig& config() const noexcept { return cfg_; }
    ///@}

    /// \name Sub-block access (observability / tests)
    ///@{
    [[nodiscard]] const MonitorRegulationUnit& mr() const noexcept { return mr_; }
    [[nodiscard]] MonitorRegulationUnit& mr() noexcept { return mr_; }
    [[nodiscard]] const GranularBurstSplitter& splitter() const noexcept { return splitter_; }
    [[nodiscard]] const WriteBuffer& write_buffer() const noexcept { return wbuf_; }
    [[nodiscard]] const IsolationBlock& isolation() const noexcept { return iso_; }
    ///@}

    /// \name Stall accounting (interference observability)
    ///@{
    [[nodiscard]] std::uint64_t isolation_stalls() const noexcept { return isolation_stalls_; }
    [[nodiscard]] std::uint64_t throttle_stalls() const noexcept { return throttle_stalls_; }
    [[nodiscard]] std::uint64_t capacity_stalls() const noexcept { return capacity_stalls_; }
    [[nodiscard]] std::uint64_t reads_accepted() const noexcept { return reads_accepted_; }
    [[nodiscard]] std::uint64_t writes_accepted() const noexcept { return writes_accepted_; }
    ///@}

private:
    struct TxnMeta {
        sim::Cycle accepted_at = 0;
        std::optional<std::uint32_t> region;
    };

    void bypass_tick();
    void process_responses();
    void apply_pending_config();
    void update_budget_isolation();
    void emit_requests();
    void accept_requests();
    void update_activity();

    axi::SubordinateView up_;
    axi::ManagerView down_;
    RealmUnitConfig cfg_;

    GranularBurstSplitter splitter_;
    WriteBuffer wbuf_;
    IsolationBlock iso_;
    MonitorRegulationUnit mr_;

    std::optional<std::uint32_t> pending_fragmentation_;
    std::optional<bool> pending_enabled_;

    std::unordered_map<axi::IdT, std::deque<TxnMeta>> read_meta_;
    std::unordered_map<axi::IdT, std::deque<TxnMeta>> write_meta_;

    std::uint64_t isolation_stalls_ = 0;
    std::uint64_t throttle_stalls_ = 0;
    std::uint64_t capacity_stalls_ = 0;
    std::uint64_t reads_accepted_ = 0;
    std::uint64_t writes_accepted_ = 0;
};

} // namespace realm::rt
