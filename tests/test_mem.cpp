/// Unit tests for the memory subsystem: sparse store, backends, AXI memory
/// subordinate, error subordinate, and the LLC.
#include "axi/builder.hpp"
#include "axi/channel.hpp"
#include "mem/axi_mem_slave.hpp"
#include "mem/backend.hpp"
#include "mem/error_slave.hpp"
#include "mem/llc.hpp"
#include "mem/sparse_memory.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

namespace realm::mem {
namespace {

using test::collect_b;
using test::collect_read_burst;
using test::push_write_burst;
using test::step_until;

TEST(SparseMemory, ReadsZeroWithoutAllocating) {
    SparseMemory m;
    std::array<std::uint8_t, 16> buf{0xFF};
    m.read(0x1234, buf);
    for (const auto b : buf) { EXPECT_EQ(b, 0); }
    EXPECT_EQ(m.page_count(), 0U);
}

TEST(SparseMemory, WriteReadRoundTrip) {
    SparseMemory m;
    m.write_u64(0x1000, 0xDEADBEEFCAFEF00DULL);
    EXPECT_EQ(m.read_u64(0x1000), 0xDEADBEEFCAFEF00DULL);
    EXPECT_EQ(m.read_u8(0x1000), 0x0D);
}

TEST(SparseMemory, CrossPageAccess) {
    SparseMemory m;
    std::array<std::uint8_t, 64> in{};
    for (std::size_t i = 0; i < in.size(); ++i) { in[i] = static_cast<std::uint8_t>(i + 1); }
    const axi::Addr addr = SparseMemory::kPageBytes - 32; // straddles two pages
    m.write(addr, in);
    std::array<std::uint8_t, 64> out{};
    m.read(addr, out);
    EXPECT_EQ(in, out);
    EXPECT_EQ(m.page_count(), 2U);
}

TEST(SparseMemory, StrobeMasksBytes) {
    SparseMemory m;
    m.write_u64(0x100, 0x1111111111111111ULL);
    std::array<std::uint8_t, 8> in{};
    in.fill(0xFF);
    m.write(0x100, in, 0x0F); // low four lanes only
    EXPECT_EQ(m.read_u64(0x100), 0x11111111FFFFFFFFULL);
}

TEST(DramBackend, RowHitFasterThanMiss) {
    DramBackend d{DramTiming{10, 40, 8, 2048}};
    const sim::Cycle first = d.access_latency(0x0, 8, false, 0);
    const sim::Cycle second = d.access_latency(0x40, 8, false, 100);
    EXPECT_EQ(first, 40U) << "cold row must pay the miss latency";
    EXPECT_EQ(second, 10U) << "open row must pay only CAS";
    EXPECT_EQ(d.row_hits(), 1U);
    EXPECT_EQ(d.row_misses(), 1U);
}

TEST(DramBackend, BankBusySerializes) {
    DramBackend d{DramTiming{10, 40, 8, 2048}};
    (void)d.access_latency(0x0, 8, false, 0); // bank 0 busy until ~48
    const sim::Cycle lat = d.access_latency(0x100, 8, false, 1);
    EXPECT_GT(lat, 10U) << "second access to the same bank must queue";
}

TEST(DramBackend, DifferentBanksDoNotSerialize) {
    DramBackend d{DramTiming{10, 40, 8, 2048}};
    (void)d.access_latency(0x0, 8, false, 0);
    const sim::Cycle lat = d.access_latency(2048, 8, false, 1); // next bank stripe
    EXPECT_EQ(lat, 40U) << "cold row in an idle bank pays only its own miss";
}

class MemSlaveFixture : public ::testing::Test {
protected:
    sim::SimContext ctx;
    axi::AxiChannel ch{ctx, "mem"};
    AxiMemSlave slave{ctx, "sram", ch, std::make_unique<SramBackend>(2, 1),
                      AxiMemSlaveConfig{4, 4, 0}};
};

TEST_F(MemSlaveFixture, WriteThenReadBack) {
    push_write_burst(ctx, ch, /*id=*/1, 0x1000, /*beats=*/4, /*beat_bytes=*/8, 0x10);
    const axi::BFlit b = collect_b(ctx, ch);
    EXPECT_EQ(b.id, 1U);
    EXPECT_EQ(b.resp, axi::Resp::kOkay);

    axi::ManagerView mgr{ch};
    mgr.send_ar(axi::make_ar(2, 0x1000, 4, 3));
    const axi::RFlit last = collect_read_burst(ctx, ch, 4);
    EXPECT_EQ(last.id, 2U);
    // Fill pattern from push_write_burst: fill + beat + lane.
    EXPECT_EQ(last.data.bytes[0], 0x10 + 3);
}

TEST_F(MemSlaveFixture, ReadLatencyMatchesBackend) {
    axi::ManagerView mgr{ch};
    const sim::Cycle t0 = ctx.now();
    mgr.send_ar(axi::make_ar(1, 0x0, 1, 3));
    step_until(ctx, [&] { return mgr.has_r(); });
    // 1 cycle link + accept + 2 cycles SRAM read latency + 1 cycle link.
    EXPECT_GE(ctx.now() - t0, 4U);
    EXPECT_LE(ctx.now() - t0, 6U);
}

TEST_F(MemSlaveFixture, StreamsOneBeatPerCycle) {
    axi::ManagerView mgr{ch};
    mgr.send_ar(axi::make_ar(1, 0x0, 8, 3));
    step_until(ctx, [&] { return mgr.has_r(); });
    const sim::Cycle first = ctx.now();
    (void)mgr.recv_r();
    for (int i = 0; i < 7; ++i) {
        step_until(ctx, [&] { return mgr.has_r(); });
        (void)mgr.recv_r();
    }
    EXPECT_EQ(ctx.now() - first, 7U) << "8 beats must stream back-to-back";
}

TEST_F(MemSlaveFixture, PipelinesIndependentReads) {
    axi::ManagerView mgr{ch};
    mgr.send_ar(axi::make_ar(1, 0x0, 4, 3));
    ctx.step();
    mgr.send_ar(axi::make_ar(2, 0x100, 4, 3));
    (void)collect_read_burst(ctx, ch, 4);
    const sim::Cycle between = ctx.now();
    (void)collect_read_burst(ctx, ch, 4);
    EXPECT_LE(ctx.now() - between, 6U) << "second burst should be nearly ready";
}

TEST(ErrorSlave, RespondsDecErrToEverything) {
    sim::SimContext ctx;
    axi::AxiChannel ch{ctx, "err"};
    ErrorSlave err{ctx, "err", ch};

    push_write_burst(ctx, ch, 5, 0xDEAD0000, 2, 8);
    const axi::BFlit b = collect_b(ctx, ch);
    EXPECT_EQ(b.resp, axi::Resp::kDecErr);
    EXPECT_EQ(b.id, 5U);

    axi::ManagerView mgr{ch};
    mgr.send_ar(axi::make_ar(6, 0xDEAD0000, 3, 3));
    const axi::RFlit r = collect_read_burst(ctx, ch, 3);
    EXPECT_EQ(r.resp, axi::Resp::kDecErr);
    EXPECT_EQ(err.errors_returned(), 2U);
}

class LlcFixture : public ::testing::Test {
protected:
    LlcFixture() {
        // Small cache so eviction paths are reachable: 4 sets x 2 ways x 64 B.
        LlcConfig cfg;
        cfg.sets = 4;
        cfg.ways = 2;
        cfg.line_bytes = 64;
        cfg.bus_bytes = 8;
        cfg.hit_latency = 2;
        llc = std::make_unique<Llc>(ctx, "llc", up, down, cfg);
        dram = std::make_unique<AxiMemSlave>(ctx, "dram", down,
                                             std::make_unique<DramBackend>(),
                                             AxiMemSlaveConfig{8, 8, 0});
    }

    SparseMemory& dram_store() {
        return static_cast<DramBackend&>(dram->backend()).store();
    }

    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down"};
    std::unique_ptr<Llc> llc;
    std::unique_ptr<AxiMemSlave> dram;
};

TEST_F(LlcFixture, ColdMissFetchesFromDram) {
    dram_store().write_u64(0x1000, 0xABCD'1234'5678'9876ULL);
    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(1, 0x1000, 1, 3));
    const axi::RFlit r = collect_read_burst(ctx, up, 1);
    std::uint64_t v = 0;
    std::memcpy(&v, r.data.bytes.data(), 8);
    EXPECT_EQ(v, 0xABCD'1234'5678'9876ULL);
    EXPECT_EQ(llc->misses(), 1U);
    EXPECT_TRUE(llc->contains(0x1000));
}

TEST_F(LlcFixture, WarmHitIsFast) {
    dram_store().write_u64(0x2000, 42);
    llc->warm_range(0x2000, 64, dram_store());
    ASSERT_TRUE(llc->contains(0x2000));
    axi::ManagerView mgr{up};
    const sim::Cycle t0 = ctx.now();
    mgr.send_ar(axi::make_ar(1, 0x2000, 1, 3));
    const axi::RFlit r = collect_read_burst(ctx, up, 1);
    std::uint64_t v = 0;
    std::memcpy(&v, r.data.bytes.data(), 8);
    EXPECT_EQ(v, 42U);
    EXPECT_LE(ctx.now() - t0, 6U);
    EXPECT_EQ(llc->misses(), 0U);
}

TEST_F(LlcFixture, WriteAllocateAndWritebackOnEviction) {
    // Write to a cold line: write-allocate fetches it first.
    push_write_burst(ctx, up, 1, 0x3000, 1, 8, 0x55);
    (void)collect_b(ctx, up);
    EXPECT_EQ(llc->misses(), 1U);

    // Evict it by filling the set: lines mapping to the same set are
    // line_bytes * sets = 256 B apart; 2 ways -> third line evicts.
    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(2, 0x3000 + 256, 1, 3));
    (void)collect_read_burst(ctx, up, 1);
    mgr.send_ar(axi::make_ar(2, 0x3000 + 512, 1, 3));
    (void)collect_read_burst(ctx, up, 1);
    EXPECT_EQ(llc->writebacks(), 1U) << "dirty victim must be written back";
    // The dirty data must have landed in DRAM (pattern 0x55 + lane from
    // push_write_burst).
    EXPECT_EQ(dram_store().read_u8(0x3000), 0x55);
}

TEST_F(LlcFixture, HotSingleBeatReadsPipelineBackToBack) {
    dram_store().write_u64(0x0, 1);
    llc->warm_range(0x0, 256, dram_store());
    axi::ManagerView mgr{up};
    // Queue several single-beat reads; they must stream ~1 beat/cycle.
    for (int i = 0; i < 4; ++i) {
        step_until(ctx, [&] { return mgr.can_send_ar(); });
        mgr.send_ar(axi::make_ar(1, static_cast<axi::Addr>(i * 8), 1, 3));
        ctx.step();
    }
    step_until(ctx, [&] { return mgr.has_r(); });
    const sim::Cycle first = ctx.now();
    int beats = 1;
    (void)mgr.recv_r();
    while (beats < 4) {
        step_until(ctx, [&] { return mgr.has_r(); });
        (void)mgr.recv_r();
        ++beats;
    }
    EXPECT_LE(ctx.now() - first, 6U) << "hits must pipeline, not serialize";
}

TEST_F(LlcFixture, LongBurstOccupiesReadStream) {
    dram_store().write_u64(0x0, 1);
    llc->warm_range(0x0, 4 * 64, dram_store());
    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(1, 0x0, 32, 3)); // 32-beat burst
    ctx.step();
    mgr.send_ar(axi::make_ar(2, 0x8, 1, 3)); // queued behind it
    // Collect the long burst then the single.
    int long_beats = 0;
    while (long_beats < 32) {
        step_until(ctx, [&] { return mgr.has_r(); });
        const axi::RFlit r = mgr.recv_r();
        if (r.id == 1) { ++long_beats; }
    }
    const sim::Cycle long_done = ctx.now();
    step_until(ctx, [&] { return mgr.has_r(); });
    EXPECT_LE(ctx.now() - long_done, 3U)
        << "the queued single beat must follow right after the long burst";
}

} // namespace
} // namespace realm::mem
