/// \file
/// \brief Profile-guided deterministic mesh partitioning.
///
/// The sharded kernel splits the mesh into spatial shards; any tile -> shard
/// map yields bit-identical simulated results (every inter-tile path is
/// edge-registered and a tile's components always co-shard), so the map is a
/// pure host-side load-balancing decision. The default column stripe ignores
/// that role placement concentrates work: memory tiles run a subordinate
/// plus an egress mux, manager tiles run a core/DMA plus (usually) a REALM
/// unit, pass-through tiles run a bare router. This module estimates a
/// per-tile weight — either from a static role model or from the
/// cycle-attribution profiler's measured nanos-per-tick — and balances the
/// tiles over the shards with a deterministic greedy (LPT) assignment.
#pragma once

#include "scenario/scenario.hpp"

#include <vector>

namespace realm::scenario {

/// Relative per-tile cost contributions, in units of one router tick.
/// The static defaults encode the tile-degree intuition (a memory tile
/// services every requester, a manager tile adds an engine and a REALM
/// unit); `weight_model_from_profile` replaces them with measured ratios.
struct TileWeightModel {
    double router = 1.0;      ///< every tile: the router + NI
    double manager = 1.5;     ///< victim / interference tile: traffic engine
    double subordinate = 2.0; ///< memory tile: slave model + egress mux
    double realm = 0.75;      ///< REALM unit in front of a manager port
};

/// Derives a weight model from cycle-attribution profile rows (see
/// `ScenarioConfig::profile`): each category's weight is its measured mean
/// nanos per executed tick, normalized to the router's. Categories absent
/// from the profile (or a profile without router rows) keep the static
/// defaults, so a partial profile degrades gracefully.
[[nodiscard]] TileWeightModel
weight_model_from_profile(const std::vector<ProfileRow>& rows);

/// Per-tile weights for a resolved role layout under `model`.
[[nodiscard]] std::vector<double>
tile_weights(const std::vector<RingNodeSpec>& specs, const TileWeightModel& model);

/// Greedy longest-processing-time balance: tiles sorted by weight
/// (descending, ties by lower node id) are assigned to the currently
/// lightest shard (ties by lower shard index). Deterministic for a given
/// weight vector, so a fixed config always produces the same partition.
[[nodiscard]] std::vector<unsigned>
balanced_partition(const std::vector<double>& weights, unsigned shards);

/// The tile -> shard map `run_scenario` hands to `noc::NocMesh`:
/// `cfg.tile_shards` verbatim when non-empty (test override), empty — the
/// fabric's default column stripe — for `kStripe` or a single shard, and the
/// greedy balance over `tile_weights` otherwise (profile-guided when
/// `cfg.partition_profile` is non-empty).
[[nodiscard]] std::vector<unsigned>
mesh_tile_shards(const ScenarioConfig& cfg, const std::vector<RingNodeSpec>& specs,
                 unsigned shards);

} // namespace realm::scenario
