/// Unit tests for the interconnect: arbiter, mux (W reservation + fairness),
/// demux (routing + ordering), and the full crossbar.
#include "axi/builder.hpp"
#include "axi/channel.hpp"
#include "ic/addr_map.hpp"
#include "ic/arb.hpp"
#include "ic/demux.hpp"
#include "ic/mux.hpp"
#include "ic/xbar.hpp"
#include "mem/axi_mem_slave.hpp"
#include "mem/error_slave.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

namespace realm::ic {
namespace {

using test::collect_b;
using test::collect_read_burst;
using test::push_write_burst;
using test::step_until;

TEST(AddrMap, FirstMatchDecode) {
    AddrMap map;
    map.add(0x1000, 0x1000, 0, "a").add(0x2000, 0x1000, 1, "b");
    EXPECT_EQ(map.decode(0x1000), 0U);
    EXPECT_EQ(map.decode(0x1FFF), 0U);
    EXPECT_EQ(map.decode(0x2000), 1U);
    EXPECT_FALSE(map.decode(0x3000).has_value());
}

TEST(AddrMap, RejectsOverlap) {
    AddrMap map;
    map.add(0x1000, 0x1000, 0);
    EXPECT_THROW(map.add(0x1800, 0x1000, 1), sim::ContractViolation);
    EXPECT_NO_THROW(map.add(0x2000, 0x1000, 1)); // adjacent is fine
}

TEST(RoundRobinArbiter, RotatesFairly) {
    RoundRobinArbiter arb{3};
    std::array<int, 3> grants{};
    for (int i = 0; i < 30; ++i) {
        const int w = arb.pick([](std::uint32_t) { return true; });
        ASSERT_GE(w, 0);
        arb.commit(static_cast<std::uint32_t>(w));
        ++grants[static_cast<std::size_t>(w)];
    }
    EXPECT_EQ(grants[0], 10);
    EXPECT_EQ(grants[1], 10);
    EXPECT_EQ(grants[2], 10);
}

TEST(RoundRobinArbiter, SkipsIdleRequesters) {
    RoundRobinArbiter arb{4};
    const int w = arb.pick([](std::uint32_t i) { return i == 2; });
    EXPECT_EQ(w, 2);
    EXPECT_EQ(arb.pick([](std::uint32_t) { return false; }), -1);
}

class MuxFixture : public ::testing::Test {
protected:
    MuxFixture() {
        mgr_chs = {&m0, &m1};
        mux = std::make_unique<AxiMux>(ctx, "mux", mgr_chs, down);
        slave = std::make_unique<mem::AxiMemSlave>(
            ctx, "mem", down, std::make_unique<mem::SramBackend>(1, 1),
            mem::AxiMemSlaveConfig{8, 8, 0});
    }

    sim::SimContext ctx;
    axi::AxiChannel m0{ctx, "m0"};
    axi::AxiChannel m1{ctx, "m1"};
    axi::AxiChannel down{ctx, "down"};
    std::vector<axi::AxiChannel*> mgr_chs;
    std::unique_ptr<AxiMux> mux;
    std::unique_ptr<mem::AxiMemSlave> slave;
};

TEST_F(MuxFixture, RoutesResponsesByRemappedId) {
    axi::ManagerView v0{m0};
    axi::ManagerView v1{m1};
    v0.send_ar(axi::make_ar(3, 0x0, 1, 3));
    v1.send_ar(axi::make_ar(3, 0x100, 1, 3));
    (void)collect_read_burst(ctx, m0, 1);
    (void)collect_read_burst(ctx, m1, 1);
    // IDs must come back un-remapped.
    EXPECT_EQ(mux->ar_grants(0), 1U);
    EXPECT_EQ(mux->ar_grants(1), 1U);
}

TEST_F(MuxFixture, WChannelReservedByGrantedManager) {
    // m0 wins AW arbitration but withholds its data; m1's write must not
    // make progress (the DoS vector the write buffer closes).
    axi::ManagerView v0{m0};
    v0.send_aw(axi::make_aw(1, 0x0, 4, 3));
    ctx.run(3);
    push_write_burst(ctx, m1, 2, 0x100, 1, 8);
    ctx.run(20);
    EXPECT_FALSE(axi::ManagerView{m1}.has_b())
        << "m1's write must be stuck behind m0's reserved W channel";
    EXPECT_GT(mux->w_stall_cycles(), 10U);

    // m0 finally delivers; both writes then complete in order.
    axi::WFlit w;
    for (int i = 0; i < 4; ++i) {
        step_until(ctx, [&] { return v0.can_send_w(); });
        w.last = i == 3;
        v0.send_w(w);
    }
    (void)collect_b(ctx, m0);
    (void)collect_b(ctx, m1);
}

TEST_F(MuxFixture, FairReadArbitrationUnderLoad) {
    // Both managers continuously issue single-beat reads; grants must split
    // evenly under round-robin.
    axi::ManagerView v0{m0};
    axi::ManagerView v1{m1};
    int recv0 = 0;
    int recv1 = 0;
    for (int cycle = 0; cycle < 400; ++cycle) {
        if (v0.can_send_ar()) { v0.send_ar(axi::make_ar(0, 0x0, 1, 3)); }
        if (v1.can_send_ar()) { v1.send_ar(axi::make_ar(0, 0x80, 1, 3)); }
        if (v0.has_r()) {
            (void)v0.recv_r();
            ++recv0;
        }
        if (v1.has_r()) {
            (void)v1.recv_r();
            ++recv1;
        }
        ctx.step();
    }
    EXPECT_GT(recv0, 100);
    EXPECT_GT(recv1, 100);
    EXPECT_NEAR(recv0, recv1, 4);
}

class DemuxFixture : public ::testing::Test {
protected:
    DemuxFixture() {
        AddrMap map;
        map.add(0x0000, 0x1000, 0, "s0").add(0x1000, 0x1000, 1, "s1");
        demux = std::make_unique<AxiDemux>(ctx, "demux", up,
                                           std::vector<axi::AxiChannel*>{&s0, &s1, &err},
                                           map, /*error_port=*/2U);
        slave0 = std::make_unique<mem::AxiMemSlave>(
            ctx, "mem0", s0, std::make_unique<mem::SramBackend>(1, 1),
            mem::AxiMemSlaveConfig{8, 8, 0});
        slave1 = std::make_unique<mem::AxiMemSlave>(
            ctx, "mem1", s1, std::make_unique<mem::SramBackend>(6, 6),
            mem::AxiMemSlaveConfig{8, 8, 0x1000});
        error = std::make_unique<mem::ErrorSlave>(ctx, "err", err);
    }

    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel s0{ctx, "s0"};
    axi::AxiChannel s1{ctx, "s1"};
    axi::AxiChannel err{ctx, "err"};
    std::unique_ptr<AxiDemux> demux;
    std::unique_ptr<mem::AxiMemSlave> slave0;
    std::unique_ptr<mem::AxiMemSlave> slave1;
    std::unique_ptr<mem::ErrorSlave> error;
};

TEST_F(DemuxFixture, RoutesByAddress) {
    push_write_burst(ctx, up, 1, 0x0100, 1, 8, 0x11);
    (void)collect_b(ctx, up);
    push_write_burst(ctx, up, 1, 0x1100, 1, 8, 0x22);
    (void)collect_b(ctx, up);
    EXPECT_EQ(static_cast<mem::SramBackend&>(slave0->backend()).store().read_u8(0x100), 0x11);
    EXPECT_EQ(static_cast<mem::SramBackend&>(slave1->backend()).store().read_u8(0x100), 0x22);
}

TEST_F(DemuxFixture, UnmappedGoesToErrorPort) {
    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(1, 0x5000, 1, 3));
    const axi::RFlit r = collect_read_burst(ctx, up, 1);
    EXPECT_EQ(r.resp, axi::Resp::kDecErr);
    EXPECT_EQ(demux->decode_errors(), 1U);
}

TEST_F(DemuxFixture, SameIdToDifferentPortStalls) {
    // Same ID first to the slow subordinate then to the fast one: the demux
    // must hold the second read so responses cannot reorder.
    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(7, 0x1000, 1, 3)); // slow (6-cycle) subordinate
    ctx.step();
    mgr.send_ar(axi::make_ar(7, 0x0000, 1, 3)); // fast subordinate
    const axi::RFlit first = collect_read_burst(ctx, up, 1);
    EXPECT_GT(demux->ordering_stalls(), 0U);
    (void)first;
    (void)collect_read_burst(ctx, up, 1);
}

TEST_F(DemuxFixture, DifferentIdsProceedConcurrently) {
    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(1, 0x1000, 1, 3)); // slow
    ctx.step();
    mgr.send_ar(axi::make_ar(2, 0x0000, 1, 3)); // fast, different ID
    step_until(ctx, [&] { return mgr.has_r(); });
    EXPECT_EQ(mgr.peek_r().id, 2U) << "fast read with a different ID may overtake";
}

class XbarFixture : public ::testing::Test {
protected:
    XbarFixture() {
        AddrMap map;
        map.add(0x0000, 0x1000, 0, "s0").add(0x1000, 0x1000, 1, "s1");
        XbarConfig xcfg;
        xcfg.default_port = 2;
        xbar = std::make_unique<AxiXbar>(
            ctx, "xbar", std::vector<axi::AxiChannel*>{&m0, &m1},
            std::vector<axi::AxiChannel*>{&s0, &s1, &err}, map, xcfg);
        slave0 = std::make_unique<mem::AxiMemSlave>(
            ctx, "mem0", s0, std::make_unique<mem::SramBackend>(1, 1),
            mem::AxiMemSlaveConfig{8, 8, 0});
        slave1 = std::make_unique<mem::AxiMemSlave>(
            ctx, "mem1", s1, std::make_unique<mem::SramBackend>(1, 1),
            mem::AxiMemSlaveConfig{8, 8, 0x1000});
        error = std::make_unique<mem::ErrorSlave>(ctx, "err", err);
    }

    sim::SimContext ctx;
    axi::AxiChannel m0{ctx, "m0"};
    axi::AxiChannel m1{ctx, "m1"};
    axi::AxiChannel s0{ctx, "s0"};
    axi::AxiChannel s1{ctx, "s1"};
    axi::AxiChannel err{ctx, "err"};
    std::unique_ptr<AxiXbar> xbar;
    std::unique_ptr<mem::AxiMemSlave> slave0;
    std::unique_ptr<mem::AxiMemSlave> slave1;
    std::unique_ptr<mem::ErrorSlave> error;
};

TEST_F(XbarFixture, ConcurrentDisjointTraffic) {
    // m0 -> s0 and m1 -> s1 must not interfere.
    push_write_burst(ctx, m0, 1, 0x0000, 2, 8, 0x10);
    push_write_burst(ctx, m1, 1, 0x1000, 2, 8, 0x20);
    (void)collect_b(ctx, m0);
    (void)collect_b(ctx, m1);
    EXPECT_EQ(static_cast<mem::SramBackend&>(slave0->backend()).store().read_u8(0), 0x10);
    EXPECT_EQ(static_cast<mem::SramBackend&>(slave1->backend()).store().read_u8(0), 0x20);
}

TEST_F(XbarFixture, ReadDataRoutedToIssuer) {
    static_cast<mem::SramBackend&>(slave0->backend()).store().write_u64(0x20, 111);
    static_cast<mem::SramBackend&>(slave1->backend()).store().write_u64(0x20, 222);
    axi::ManagerView v0{m0};
    axi::ManagerView v1{m1};
    v0.send_ar(axi::make_ar(4, 0x0020, 1, 3));
    v1.send_ar(axi::make_ar(4, 0x1020, 1, 3));
    const axi::RFlit r0 = collect_read_burst(ctx, m0, 1);
    const axi::RFlit r1 = collect_read_burst(ctx, m1, 1);
    std::uint64_t v = 0;
    std::memcpy(&v, r0.data.bytes.data(), 8);
    EXPECT_EQ(v, 111U);
    std::memcpy(&v, r1.data.bytes.data(), 8);
    EXPECT_EQ(v, 222U);
    EXPECT_EQ(r0.id, 4U);
    EXPECT_EQ(r1.id, 4U);
}

TEST_F(XbarFixture, UnmappedUsesDefaultPort) {
    axi::ManagerView v0{m0};
    v0.send_ar(axi::make_ar(1, 0x8000, 1, 3));
    const axi::RFlit r = collect_read_burst(ctx, m0, 1);
    EXPECT_EQ(r.resp, axi::Resp::kDecErr);
    EXPECT_EQ(xbar->decode_errors(), 1U);
}

TEST_F(XbarFixture, BurstGranularArbitrationDelaysCompetitor) {
    // m0 issues a 64-beat read; m1's single-beat read to the same
    // subordinate must wait for the whole burst (the paper's problem).
    axi::ManagerView v0{m0};
    axi::ManagerView v1{m1};
    v0.send_ar(axi::make_ar(1, 0x0, 64, 3));
    ctx.run(4); // let the burst win arbitration and start
    const sim::Cycle t0 = ctx.now();
    v1.send_ar(axi::make_ar(1, 0x80, 1, 3));
    // Keep draining m0's beats (else backpressure stalls the stream) while
    // waiting for m1's single beat.
    bool m1_served = false;
    for (int i = 0; i < 2000 && !m1_served; ++i) {
        if (v0.has_r()) { (void)v0.recv_r(); }
        if (v1.has_r()) {
            (void)v1.recv_r();
            m1_served = true;
        }
        ctx.step();
    }
    ASSERT_TRUE(m1_served);
    EXPECT_GT(ctx.now() - t0, 50U)
        << "single-beat read must wait out the in-flight 64-beat burst";
}

TEST_F(XbarFixture, WriteReservationBlocksOtherWriters) {
    // m0 granted first but silent; m1's write to the same subordinate stalls.
    axi::ManagerView v0{m0};
    v0.send_aw(axi::make_aw(1, 0x0, 4, 3));
    ctx.run(3);
    push_write_burst(ctx, m1, 1, 0x40, 1, 8);
    ctx.run(30);
    EXPECT_FALSE(axi::ManagerView{m1}.has_b());
    EXPECT_GT(xbar->w_stall_cycles(0), 10U);
    // Deliver m0's data; both complete.
    for (int i = 0; i < 4; ++i) {
        step_until(ctx, [&] { return v0.can_send_w(); });
        axi::WFlit w;
        w.last = i == 3;
        v0.send_w(w);
    }
    (void)collect_b(ctx, m0);
    (void)collect_b(ctx, m1);
}

TEST_F(XbarFixture, GrantCountsBalanceUnderSymmetricLoad) {
    axi::ManagerView v0{m0};
    axi::ManagerView v1{m1};
    for (int cycle = 0; cycle < 300; ++cycle) {
        if (v0.can_send_ar()) { v0.send_ar(axi::make_ar(0, 0x0, 1, 3)); }
        if (v1.can_send_ar()) { v1.send_ar(axi::make_ar(0, 0x8, 1, 3)); }
        if (v0.has_r()) { (void)v0.recv_r(); }
        if (v1.has_r()) { (void)v1.recv_r(); }
        ctx.step();
    }
    const auto g0 = xbar->ar_grants(0);
    const auto g1 = xbar->ar_grants(1);
    EXPECT_GT(g0, 50U);
    EXPECT_NEAR(static_cast<double>(g0), static_cast<double>(g1), 3.0);
}

} // namespace
} // namespace realm::ic

namespace realm::ic {
namespace {

class QosXbarFixture : public ::testing::Test {
protected:
    QosXbarFixture() {
        AddrMap map;
        map.add(0x0000, 0x10000, 0, "s0");
        XbarConfig xcfg;
        xcfg.arbitration = XbarArbitration::kQosPriority;
        xbar = std::make_unique<AxiXbar>(ctx, "xbar",
                                         std::vector<axi::AxiChannel*>{&m0, &m1},
                                         std::vector<axi::AxiChannel*>{&s0}, map, xcfg);
        // Slow subordinate so requests queue at the crossbar.
        slave = std::make_unique<mem::AxiMemSlave>(
            ctx, "mem", s0, std::make_unique<mem::SramBackend>(4, 4),
            mem::AxiMemSlaveConfig{1, 1, 0});
    }

    sim::SimContext ctx;
    axi::AxiChannel m0{ctx, "m0"};
    axi::AxiChannel m1{ctx, "m1"};
    axi::AxiChannel s0{ctx, "s0"};
    std::unique_ptr<AxiXbar> xbar;
    std::unique_ptr<mem::AxiMemSlave> slave;
};

TEST_F(QosXbarFixture, HighPriorityWinsContendedGrants) {
    axi::ManagerView v0{m0};
    axi::ManagerView v1{m1};
    int served0 = 0;
    int served1 = 0;
    for (int cycle = 0; cycle < 600; ++cycle) {
        if (v0.can_send_ar()) {
            axi::ArFlit ar = axi::make_ar(0, 0x0, 1, 3);
            ar.qos = 0;
            v0.send_ar(ar);
        }
        if (v1.can_send_ar()) {
            axi::ArFlit ar = axi::make_ar(0, 0x8, 1, 3);
            ar.qos = 7;
            v1.send_ar(ar);
        }
        if (v0.has_r()) {
            (void)v0.recv_r();
            ++served0;
        }
        if (v1.has_r()) {
            (void)v1.recv_r();
            ++served1;
        }
        ctx.step();
    }
    EXPECT_GT(served1, 5 * std::max(served0, 1))
        << "strict priority must dominate the oversubscribed subordinate";
}

TEST_F(QosXbarFixture, EqualPrioritiesStillRotate) {
    axi::ManagerView v0{m0};
    axi::ManagerView v1{m1};
    int served0 = 0;
    int served1 = 0;
    for (int cycle = 0; cycle < 600; ++cycle) {
        if (v0.can_send_ar()) { v0.send_ar(axi::make_ar(0, 0x0, 1, 3)); }
        if (v1.can_send_ar()) { v1.send_ar(axi::make_ar(0, 0x8, 1, 3)); }
        if (v0.has_r()) {
            (void)v0.recv_r();
            ++served0;
        }
        if (v1.has_r()) {
            (void)v1.recv_r();
            ++served1;
        }
        ctx.step();
    }
    EXPECT_GT(served0, 10);
    EXPECT_NEAR(served0, served1, 3) << "equal QoS must degrade to round-robin";
}

} // namespace
} // namespace realm::ic
