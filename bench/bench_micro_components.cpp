/// \file
/// \brief google-benchmark micro-benchmarks: simulation throughput of the
///        individual substrates and of the full SoC (host-side performance,
///        cycles simulated per wall second).
#include "axi/builder.hpp"
#include "axi/channel.hpp"
#include "ic/xbar.hpp"
#include "noc/arena.hpp"
#include "noc/credit.hpp"
#include "noc/routing.hpp"
#include "mem/axi_mem_slave.hpp"
#include "mem/llc.hpp"
#include "mon/quantile.hpp"
#include "mon/txn_monitor.hpp"
#include "realm/splitter.hpp"
#include "scenario/topology.hpp"
#include "scenario/scenario.hpp"
#include "soc/cheshire_soc.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/injector.hpp"
#include "traffic/susan.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace realm;

void BM_LinkTransfer(benchmark::State& state) {
    sim::SimContext ctx;
    sim::Link<axi::RFlit> link{ctx, 2, "l"};
    axi::RFlit flit;
    for (auto _ : state) {
        if (link.can_push()) { link.push(flit); }
        if (link.can_pop()) { benchmark::DoNotOptimize(link.pop()); }
        ctx.step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ctx.now()));
    state.counters["cycles/s"] =
        benchmark::Counter(static_cast<double>(ctx.now()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LinkTransfer);

void BM_CreditedLinkCycle(benchmark::State& state) {
    // Host-side cost of the credited wormhole link: a producer streaming
    // 4-flit R worms through one VC against a consumer draining every
    // cycle — flit accounting, serialization window, and occupancy assert
    // all on the hot path.
    sim::SimContext ctx;
    noc::NocFlowConfig fc; // defaults: credited, 4 flits/worm, vc_depth 8
    noc::NocLink link{ctx, "credited", fc};
    noc::NocPacket worm;
    worm.flits = static_cast<std::uint8_t>(fc.flits_per_packet);
    worm.flit = axi::RFlit{};
    for (auto _ : state) {
        if (link.can_push(worm)) { link.push(worm); }
        if (link.can_pop()) { benchmark::DoNotOptimize(link.pop()); }
        ctx.step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ctx.now()));
    state.counters["cycles/s"] =
        benchmark::Counter(static_cast<double>(ctx.now()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CreditedLinkCycle);

void BM_BurstFragmentation(benchmark::State& state) {
    const auto granularity = static_cast<std::uint32_t>(state.range(0));
    const axi::BurstDescriptor desc{0x1000, 255, 3, axi::Burst::kIncr};
    for (auto _ : state) {
        benchmark::DoNotOptimize(axi::fragment_burst(desc, granularity));
    }
}
BENCHMARK(BM_BurstFragmentation)->Arg(1)->Arg(16)->Arg(256);

void BM_SplitterReadPath(benchmark::State& state) {
    rt::GranularBurstSplitter sp{static_cast<std::uint32_t>(state.range(0)), 8};
    for (auto _ : state) {
        sp.accept_read(axi::make_ar(1, 0x0, 256, 3));
        while (sp.has_child_ar()) { benchmark::DoNotOptimize(sp.pop_child_ar()); }
        axi::RFlit beat;
        beat.id = 1;
        for (std::uint32_t child = 0; child < 256 / state.range(0); ++child) {
            for (std::uint32_t b = 0; b + 1 < static_cast<std::uint32_t>(state.range(0));
                 ++b) {
                beat.last = false;
                benchmark::DoNotOptimize(sp.process_r(beat));
            }
            beat.last = true;
            benchmark::DoNotOptimize(sp.process_r(beat));
        }
    }
}
BENCHMARK(BM_SplitterReadPath)->Arg(1)->Arg(4)->Arg(64);

void BM_SramSlaveCycle(benchmark::State& state) {
    sim::SimContext ctx;
    axi::AxiChannel ch{ctx, "m"};
    mem::AxiMemSlave slave{ctx, "mem", ch, std::make_unique<mem::SramBackend>(1, 1),
                           mem::AxiMemSlaveConfig{8, 8, 0}};
    axi::ManagerView mgr{ch};
    for (auto _ : state) {
        if (mgr.can_send_ar()) { mgr.send_ar(axi::make_ar(1, ctx.now() % 4096, 1, 3)); }
        if (mgr.has_r()) { benchmark::DoNotOptimize(mgr.recv_r()); }
        ctx.step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ctx.now()));
    state.counters["cycles/s"] =
        benchmark::Counter(static_cast<double>(ctx.now()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SramSlaveCycle);

void BM_QuantileSketch(benchmark::State& state) {
    // Record cost of the fixed-memory HDR sketch: the per-completed-burst
    // price every monitored manager pays. The LCG spreads samples across the
    // log-linear buckets so the branch history is realistic.
    mon::QuantileSketch sketch;
    std::uint64_t lcg = 0x9E3779B97F4A7C15ULL;
    for (auto _ : state) {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        sketch.record((lcg >> 33) % 100'000);
    }
    benchmark::DoNotOptimize(sketch.quantile(0.99));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QuantileSketch);

void BM_TxnMonitorTick(benchmark::State& state) {
    // Steady-state per-cycle cost of the pass-through monitor: a manager
    // pipelining 1-beat reads against an SRAM slave behind the monitor hop,
    // so every cycle forwards flits, matches bursts and rolls windows.
    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down"};
    mon::TxnMonitor monitor{ctx, "mon", up, down, mon::TxnMonitorConfig{}};
    mem::AxiMemSlave slave{ctx, "mem", down, std::make_unique<mem::SramBackend>(1, 1),
                           mem::AxiMemSlaveConfig{8, 8, 0}};
    axi::ManagerView mgr{up};
    for (auto _ : state) {
        if (mgr.can_send_ar()) { mgr.send_ar(axi::make_ar(1, ctx.now() % 4096, 1, 3)); }
        if (mgr.has_r()) { benchmark::DoNotOptimize(mgr.recv_r()); }
        ctx.step();
    }
    monitor.finalize();
    benchmark::DoNotOptimize(monitor.read_sketch().count());
    state.SetItemsProcessed(static_cast<std::int64_t>(ctx.now()));
    state.counters["cycles/s"] =
        benchmark::Counter(static_cast<double>(ctx.now()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TxnMonitorTick);

void BM_InjectorTick(benchmark::State& state) {
    // Steady-state per-cycle cost of the programmable injector: a dense
    // always-on genome (max outstanding, mixed reads/writes, random walk)
    // hammering an SRAM slave, so every cycle issues, streams W beats, and
    // collects responses — the injector's hot path during a search.
    sim::SimContext ctx;
    axi::AxiChannel ch{ctx, "inj"};
    traffic::InjectorConfig icfg;
    icfg.genome.genes[traffic::InjectorGenome::kReadBeats] = 31;
    icfg.genome.genes[traffic::InjectorGenome::kWriteBeats] = 31;
    icfg.genome.genes[traffic::InjectorGenome::kWriteRatio] = 128;
    icfg.genome.genes[traffic::InjectorGenome::kWalk] = 2; // random
    icfg.genome.genes[traffic::InjectorGenome::kOutstanding] = 3;
    icfg.write_base = 0x8000;
    icfg.span_bytes = 0x2000;
    traffic::InjectorEngine inj{ctx, "inj", ch, icfg};
    mem::AxiMemSlave slave{ctx, "mem", ch, std::make_unique<mem::SramBackend>(1, 1),
                           mem::AxiMemSlaveConfig{8, 8, 0}};
    for (auto _ : state) { ctx.step(); }
    benchmark::DoNotOptimize(inj.bytes_read() + inj.bytes_written());
    state.SetItemsProcessed(static_cast<std::int64_t>(ctx.now()));
    state.counters["cycles/s"] =
        benchmark::Counter(static_cast<double>(ctx.now()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InjectorTick);

void BM_FullSocCycle(benchmark::State& state) {
    sim::SimContext ctx;
    soc::CheshireSoc soc{ctx, soc::SocConfig{}};
    for (axi::Addr a = 0; a < 0x10000; a += 8) {
        soc.dram_image().write_u64(0x8000'0000 + a, a);
    }
    soc.warm_llc(0x8000'0000, 0x10000);
    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 64;
    traffic::DmaEngine dma{ctx, "dma", soc.dsa_port(0), dcfg};
    dma.push_job(traffic::DmaJob{0x8000'8000, 0x7000'0000, 0x4000, true});
    traffic::StreamWorkload wl{
        {.base = 0x8000'0000, .bytes = 0x8000, .op_bytes = 8, .stride_bytes = 8,
         .repeat = 1000000}};
    traffic::CoreModel core{ctx, "core", soc.core_port(), wl};
    for (auto _ : state) { ctx.step(); }
    state.counters["sim-cycles/s"] =
        benchmark::Counter(static_cast<double>(ctx.now()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullSocCycle);

void BM_RingNocCycle(benchmark::State& state) {
    // Simulation throughput of the ring fabric itself: a contended ring
    // scenario point, stepped cycle by cycle (substrate cost per node).
    sim::SimContext ctx;
    scenario::ScenarioConfig cfg;
    cfg.topology.kind = scenario::TopologyKind::kRing;
    cfg.topology.ring.num_nodes = static_cast<std::uint8_t>(state.range(0));
    cfg.topology.ring.nodes = scenario::make_ring_roles(
        static_cast<std::uint8_t>(state.range(0)), 1, 2);
    auto topo = scenario::make_topology(ctx, cfg);
    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 64;
    traffic::DmaEngine dma{ctx, "dma", topo->interference_port(0), dcfg};
    dma.push_job(traffic::DmaJob{0x0, 0x10'0000, 0x4000, true});
    for (auto _ : state) { ctx.step(); }
    state.counters["sim-cycles/s"] =
        benchmark::Counter(static_cast<double>(ctx.now()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RingNocCycle)->Arg(6)->Arg(24)->Arg(48);

void BM_MeshNocCycle(benchmark::State& state) {
    // Simulation throughput of the mesh fabric: a contended mesh scenario
    // point, stepped cycle by cycle (substrate cost per router). Sized to
    // match the ring points (6 / 24 / 48 nodes).
    static const std::pair<std::uint8_t, std::uint8_t> kDims[] = {
        {2, 3}, {4, 6}, {6, 8}};
    const auto [rows, cols] = kDims[state.range(0)];
    sim::SimContext ctx;
    scenario::ScenarioConfig cfg;
    cfg.topology.kind = scenario::TopologyKind::kMesh;
    cfg.topology.mesh.rows = rows;
    cfg.topology.mesh.cols = cols;
    cfg.topology.mesh.nodes = scenario::make_mesh_roles(rows, cols, 1, 2);
    auto topo = scenario::make_topology(ctx, cfg);
    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 64;
    traffic::DmaEngine dma{ctx, "dma", topo->interference_port(0), dcfg};
    dma.push_job(traffic::DmaJob{0x0, 0x10'0000, 0x4000, true});
    for (auto _ : state) { ctx.step(); }
    state.counters["sim-cycles/s"] =
        benchmark::Counter(static_cast<double>(ctx.now()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MeshNocCycle)->Arg(0)->Arg(1)->Arg(2);

void BM_MeshRoutePolicy(benchmark::State& state) {
    // Host-side cost of the routing decision itself, per policy: every
    // (cur, dest) pair of a 4x6 mesh through `permitted_hops`, with the
    // per-worm route-class hash on the O1TURN path. This is the function
    // every router calls for every packet it moves, so a slow policy here
    // taxes the whole fabric simulation.
    const auto policy = static_cast<noc::RoutingPolicy>(state.range(0));
    constexpr std::uint8_t kRows = 4;
    constexpr std::uint8_t kCols = 6;
    std::uint16_t seq = 0;
    std::uint64_t decisions = 0;
    for (auto _ : state) {
        for (std::uint8_t cur = 0; cur < kRows * kCols; ++cur) {
            for (std::uint8_t dest = 0; dest < kRows * kCols; ++dest) {
                const std::uint8_t vc = noc::route_class(policy, cur, dest, seq++);
                benchmark::DoNotOptimize(
                    noc::permitted_hops(policy, kCols, cur, dest, vc));
                ++decisions;
            }
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(decisions));
    state.SetLabel(noc::to_string(policy));
    state.counters["decisions/s"] =
        benchmark::Counter(static_cast<double>(decisions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MeshRoutePolicy)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_ShardedMeshCycle(benchmark::State& state) {
    // Simulation throughput of the sharded kernel on a 16x16 mesh under
    // heavy multi-manager contention, vs shard count (Arg). On a 1-core
    // runner every count degrades to sequential multiplexing; on the CI
    // perf runner shards tick concurrently and the >= 2x speedup of
    // `--shards 4` over `--shards 1` is the acceptance number.
    const auto shards = static_cast<unsigned>(state.range(0));
    sim::SimContext ctx;
    ctx.set_shards(shards);
    scenario::ScenarioConfig cfg;
    cfg.topology.kind = scenario::TopologyKind::kMesh;
    cfg.topology.mesh.rows = 16;
    cfg.topology.mesh.cols = 16;
    cfg.topology.mesh.nodes = scenario::make_mesh_roles(16, 16, 8, 2);
    auto topo = scenario::make_topology(ctx, cfg);
    std::vector<std::unique_ptr<traffic::DmaEngine>> dmas;
    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 64;
    for (std::size_t i = 0; i < topo->num_interference_ports(); ++i) {
        const sim::ShardScope scope{ctx, topo->interference_shard(i)};
        dmas.push_back(std::make_unique<traffic::DmaEngine>(
            ctx, "dma" + std::to_string(i), topo->interference_port(i), dcfg));
        dmas.back()->push_job(
            traffic::DmaJob{0x800 * i, 0x10'0000 + 0x800 * i, 0x4000, true});
    }
    for (auto _ : state) { ctx.step(); }
    state.SetLabel("shards=" + std::to_string(shards));
    state.counters["sim-cycles/s"] =
        benchmark::Counter(static_cast<double>(ctx.now()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedMeshCycle)->Arg(1)->Arg(2)->Arg(4);

void BM_ShardBarrier(benchmark::State& state) {
    // Barrier cost in isolation: the same contended 16x16 mesh as
    // BM_ShardedMeshCycle at four shards, vs link latency (Arg). Deeper
    // links raise the kernel's conservative lookahead, so workers run
    // `link_latency` cycles per barrier epoch instead of one — the
    // throughput delta between Arg(1) and Arg(4) is exactly the barrier
    // round-trips the batching amortized away.
    const auto latency = static_cast<std::uint32_t>(state.range(0));
    sim::SimContext ctx;
    ctx.set_shards(4);
    scenario::ScenarioConfig cfg;
    cfg.topology.kind = scenario::TopologyKind::kMesh;
    cfg.topology.mesh.rows = 16;
    cfg.topology.mesh.cols = 16;
    cfg.topology.mesh.nodes = scenario::make_mesh_roles(16, 16, 8, 2);
    cfg.topology.mesh.link_latency = latency;
    auto topo = scenario::make_topology(ctx, cfg);
    ctx.set_lookahead(topo->lookahead());
    std::vector<std::unique_ptr<traffic::DmaEngine>> dmas;
    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 64;
    for (std::size_t i = 0; i < topo->num_interference_ports(); ++i) {
        const sim::ShardScope scope{ctx, topo->interference_shard(i)};
        dmas.push_back(std::make_unique<traffic::DmaEngine>(
            ctx, "dma" + std::to_string(i), topo->interference_port(i), dcfg));
        dmas.back()->push_job(
            traffic::DmaJob{0x800 * i, 0x10'0000 + 0x800 * i, 0x4000, true});
    }
    const sim::Cycle batch = topo->lookahead();
    for (auto _ : state) { ctx.run(batch); }
    state.SetLabel("link_latency=" + std::to_string(latency));
    state.counters["sim-cycles/s"] =
        benchmark::Counter(static_cast<double>(ctx.now()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardBarrier)->Arg(1)->Arg(2)->Arg(4);

void BM_ArenaVsHeapPacket(benchmark::State& state) {
    // The stash allocation discipline in isolation: worm-sized bursts of
    // packet stash/unstash against either the contiguous slot arena
    // (Arg 0) or a plain heap-backed vector (Arg 1) — the layout the arena
    // replaced. The arena reaches its high-water mark once and then
    // recycles; the heap variant churns an allocation per stashed packet.
    const bool heap = state.range(0) != 0;
    noc::NocPacket pkt;
    pkt.flits = 4;
    pkt.flit = axi::RFlit{};
    constexpr std::size_t kBurst = 16;
    if (heap) {
        std::vector<std::unique_ptr<noc::NocPacket>> stash;
        for (auto _ : state) {
            for (std::size_t i = 0; i < kBurst; ++i) {
                stash.push_back(std::make_unique<noc::NocPacket>(pkt));
            }
            for (std::size_t i = 0; i < kBurst; ++i) {
                benchmark::DoNotOptimize(stash.back()->flits);
                stash.pop_back();
            }
        }
    } else {
        noc::PacketArena arena;
        std::vector<noc::PacketArena::Slot> slots;
        slots.reserve(kBurst);
        for (auto _ : state) {
            for (std::size_t i = 0; i < kBurst; ++i) {
                slots.push_back(arena.acquire(pkt));
            }
            for (std::size_t i = 0; i < kBurst; ++i) {
                benchmark::DoNotOptimize(arena[slots.back()].flits);
                arena.release(slots.back());
                slots.pop_back();
            }
        }
    }
    state.SetLabel(heap ? "heap" : "arena");
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kBurst));
}
BENCHMARK(BM_ArenaVsHeapPacket)->Arg(0)->Arg(1);

void BM_SusanTraceGeneration(benchmark::State& state) {
    traffic::SusanConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    for (auto _ : state) {
        traffic::SusanTraceGenerator gen{cfg};
        benchmark::DoNotOptimize(gen.ops().size());
    }
}
BENCHMARK(BM_SusanTraceGeneration);

} // namespace

BENCHMARK_MAIN();
