#include "axi/probe.hpp"

namespace realm::axi {

AxiLatencyProbe::AxiLatencyProbe(sim::SimContext& ctx, std::string name, AxiChannel& upstream,
                                 AxiChannel& downstream)
    : Component{ctx, std::move(name)}, up_{upstream}, down_{downstream} {
    upstream.wake_subordinate_on_request(*this);
    downstream.wake_manager_on_response(*this);
}

void AxiLatencyProbe::reset() {
    write_start_.clear();
    read_start_.clear();
    w_bytes_per_beat_.clear();
    write_lat_.reset();
    read_lat_.reset();
    write_sketch_.reset();
    read_sketch_.reset();
    bytes_read_ = 0;
    bytes_written_ = 0;
    aw_count_ = 0;
    ar_count_ = 0;
    current_w_bytes_ = 0;
}

void AxiLatencyProbe::tick() {
    if (up_.has_aw() && down_.can_send_aw()) {
        AwFlit f = up_.recv_aw();
        write_start_[f.id].push_back(now());
        current_w_bytes_ = f.descriptor().beat_bytes();
        ++aw_count_;
        down_.send_aw(f);
    }
    if (up_.has_w() && down_.can_send_w()) {
        WFlit f = up_.recv_w();
        bytes_written_ += current_w_bytes_ == 0 ? kMaxDataBytes : current_w_bytes_;
        down_.send_w(f);
    }
    if (up_.has_ar() && down_.can_send_ar()) {
        ArFlit f = up_.recv_ar();
        read_start_[f.id].push_back(now());
        w_bytes_per_beat_[f.id] = f.descriptor().beat_bytes();
        ++ar_count_;
        down_.send_ar(f);
    }
    if (down_.channel().b.can_pop() && up_.channel().b.can_push()) {
        BFlit f = down_.channel().b.pop();
        auto it = write_start_.find(f.id);
        if (it != write_start_.end() && !it->second.empty()) {
            write_lat_.record(now() - it->second.front());
            write_sketch_.record(now() - it->second.front());
            it->second.pop_front();
        }
        up_.channel().b.push(f);
    }
    if (down_.channel().r.can_pop() && up_.channel().r.can_push()) {
        RFlit f = down_.channel().r.pop();
        auto bytes_it = w_bytes_per_beat_.find(f.id);
        bytes_read_ += bytes_it == w_bytes_per_beat_.end() ? kMaxDataBytes : bytes_it->second;
        if (f.last) {
            auto it = read_start_.find(f.id);
            if (it != read_start_.end() && !it->second.empty()) {
                read_lat_.record(now() - it->second.front());
                read_sketch_.record(now() - it->second.front());
                it->second.pop_front();
            }
        }
        up_.channel().r.push(f);
    }
    update_activity();
}

void AxiLatencyProbe::update_activity() {
    // Conservative idle contract: a pure pass-through only makes progress
    // on buffered flits, and both sides wake us via the push hooks. Never
    // sleep while a flit is still held (downstream backpressure clears
    // without a wake hook, so we must keep polling until the hop drains).
    if (!up_.channel().requests_empty()) { return; }
    if (!down_.channel().responses_empty()) { return; }
    idle_forever();
}

} // namespace realm::axi
