/// \file
/// \brief Lightweight statistics primitives used by monitors and benches.
#pragma once

#include "sim/types.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace realm::sim {

/// Scalar running statistic over cycle counts (latencies, service times...).
/// Tracks count/sum/min/max plus a log2-bucketed histogram, enough to report
/// mean, worst case, and distribution shape without storing samples.
class LatencyStat {
public:
    static constexpr std::size_t kBuckets = 32; // bucket i covers [2^i, 2^(i+1))

    void record(Cycle value) noexcept {
        ++count_;
        sum_ += value;
        min_ = count_ == 1 ? value : std::min(min_, value);
        max_ = std::max(max_, value);
        ++histogram_[bucket_of(value)];
    }

    void reset() noexcept { *this = LatencyStat{}; }

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
    [[nodiscard]] Cycle min() const noexcept { return count_ == 0 ? 0 : min_; }
    [[nodiscard]] Cycle max() const noexcept { return max_; }
    [[nodiscard]] double mean() const noexcept {
        return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
    }
    [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
        return i < kBuckets ? histogram_[i] : 0;
    }

    /// Approximate p-quantile (by histogram bucket upper edge), q in [0,1].
    [[nodiscard]] Cycle quantile(double q) const noexcept {
        if (count_ == 0) { return 0; }
        const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_));
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            seen += histogram_[i];
            if (seen > target) { return (Cycle{2} << i) - 1; }
        }
        return max_;
    }

private:
    static std::size_t bucket_of(Cycle v) noexcept {
        std::size_t b = 0;
        while (v > 1 && b + 1 < kBuckets) {
            v >>= 1;
            ++b;
        }
        return b;
    }

    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    Cycle min_ = 0;
    Cycle max_ = 0;
    std::array<std::uint64_t, kBuckets> histogram_{};
};

/// Named counter bundle for human-readable stat dumps in examples/benches.
class StatSet {
public:
    /// Returns a reference to the named counter, creating it at zero.
    std::uint64_t& counter(const std::string& label) {
        for (auto& entry : counters_) {
            if (entry.label == label) { return entry.value; }
        }
        counters_.push_back({label, 0});
        return counters_.back().value;
    }

    [[nodiscard]] std::uint64_t get(const std::string& label) const noexcept {
        for (const auto& entry : counters_) {
            if (entry.label == label) { return entry.value; }
        }
        return 0;
    }

    struct Entry {
        std::string label;
        std::uint64_t value;
    };

    [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return counters_; }
    void reset() noexcept {
        for (auto& entry : counters_) { entry.value = 0; }
    }

private:
    std::vector<Entry> counters_;
};

} // namespace realm::sim
