#include "sim/context.hpp"

#include "sim/check.hpp"
#include "sim/component.hpp"

#include <algorithm>
#include <iostream>

namespace realm::sim {

void SimContext::register_component(Component& c) {
    components_.push_back(&c);
}

void SimContext::unregister_component(Component& c) noexcept {
    const auto it = std::find(components_.begin(), components_.end(), &c);
    if (it != components_.end()) { components_.erase(it); }
}

void SimContext::reset() {
    now_ = 0;
    for (Component* c : components_) { c->reset(); }
}

void SimContext::step() {
    for (Component* c : components_) { c->tick(); }
    ++now_;
}

void SimContext::run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) { step(); }
}

bool SimContext::run_until(const std::function<bool()>& done, Cycle max_cycles) {
    REALM_EXPECTS(done != nullptr, "run_until requires a predicate");
    for (Cycle i = 0; i < max_cycles; ++i) {
        if (done()) { return true; }
        step();
    }
    return done();
}

namespace {
const char* level_name(LogLevel level) {
    switch (level) {
    case LogLevel::kNone: return "none";
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
    }
    return "?";
}
} // namespace

void SimContext::log(LogLevel level, const std::string& who, const std::string& message) const {
    if (!log_enabled(level)) { return; }
    std::cerr << '[' << now_ << "] " << level_name(level) << ' ' << who << ": " << message
              << '\n';
}

} // namespace realm::sim
