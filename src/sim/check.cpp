#include "sim/check.hpp"

namespace realm::sim {

void contract_violation(const char* kind, const char* file, int line,
                        const std::string& message) {
    std::string what;
    what += kind;
    what += " violated at ";
    what += file;
    what += ':';
    what += std::to_string(line);
    what += ": ";
    what += message;
    throw ContractViolation{what};
}

} // namespace realm::sim
