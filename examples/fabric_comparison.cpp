/// \file
/// \brief One DoS cell, three fabrics, four mesh routing policies: the
///        interconnect-agnostic claim as a side-by-side table.
///
/// Runs the same 2-attacker hog cell — identical victim, identical attacker
/// DMAs, identical REALM programming — on the Cheshire crossbar, an 8-node
/// ring, and a 2x4 mesh, undefended and budget-defended, using the smoke
/// sweeps from the registry. The mesh runs each cell under *all four*
/// routing policies (XY / YX / O1TURN / west-first), so the worst-cell
/// latencies of the policies sit side by side: XY and YX concentrate the
/// merge contention on columns vs rows, O1TURN randomizes the path per
/// worm, west-first adapts by link occupancy. The absolute numbers differ
/// per fabric and per policy (an LLC in front of DRAM vs. flat SRAM NoC
/// nodes; different merge hotspots), but the *story* is the same
/// everywhere: the undefended cell wrecks the victim's tail latency, the
/// budgeted cell restores it. That is Figure 1 of the paper, executable —
/// with the routing-freedom axis the paper's evaluation methodology calls
/// for.
#include "noc/routing.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

#include <cstdio>
#include <utility>
#include <vector>

using namespace realm;
using namespace realm::scenario;

namespace {

void print_rows(const char* fabric, const char* routing,
                const std::vector<ScenarioResult>& results) {
    for (const ScenarioResult& r : results) {
        std::printf("%-10s %-12s %-18s %10.2f %10llu %12.2f %10llu\n", fabric,
                    routing, r.label.c_str(), r.load_lat_mean,
                    static_cast<unsigned long long>(worst_case_victim_latency(r)),
                    r.dma_read_bw, static_cast<unsigned long long>(r.fabric_hops));
    }
}

} // namespace

int main() {
    std::puts("== The same DoS cell on three fabrics, four mesh routing policies ==\n");
    std::printf("%-10s %-12s %-18s %10s %10s %12s %10s\n", "fabric", "routing",
                "cell", "lat_mean", "lat_max", "dma[B/cyc]", "hops");

    const ScenarioRunner runner{RunnerOptions{.threads = 2}};
    const std::pair<const char*, const char*> fabrics[] = {
        {"crossbar", "xbar-dos-smoke"},
        {"ring", "ring-dos-smoke"},
        {"mesh", "mesh-dos-smoke"},
    };
    for (const auto& [fabric, sweep_name] : fabrics) {
        Sweep sweep = make_sweep(sweep_name);
        // Points 4 and 5 of every smoke sweep: 2atk/hog/none and
        // 2atk/hog/budget (same labels across fabrics by construction).
        Sweep pair;
        pair.name = sweep.name;
        pair.points = {sweep.points.at(4), sweep.points.at(5)};
        if (pair.points[0].config.topology.kind != TopologyKind::kMesh) {
            // Only the mesh has a routing policy to vary; the crossbar and
            // the single-path ring say so instead of printing a fake axis.
            print_rows(fabric, "n/a", runner.run(pair));
            continue;
        }
        for (const noc::RoutingPolicy routing : noc::kAllRoutingPolicies) {
            Sweep variant = pair;
            for (SweepPoint& p : variant.points) {
                p.config.topology.mesh.routing = routing;
            }
            print_rows(fabric, noc::to_string(routing), runner.run(variant));
        }
    }

    std::puts("\nthe same RegionPlan tames the same attackers on a crossbar, a ring,");
    std::puts("and a 2D mesh under every routing policy — regulation composes with");
    std::puts("the fabric, not against it. Routing freedom moves the merge hotspot");
    std::puts("(XY: memory columns, YX: rows, O1TURN/west-first: spread) but only");
    std::puts("regulation bounds the victim's tail. Full matrices: scenario_sweep");
    std::puts("mesh-routing-dos-matrix --report PATH.md renders the per-policy");
    std::puts("attacker x mode tables; --diff BASELINE.json gates regressions.");
    return 0;
}
