/// \file
/// \brief Terminates traffic to unmapped address space with DECERR.
#pragma once

#include "axi/channel.hpp"

#include "sim/component.hpp"

#include <cstdint>
#include <deque>

namespace realm::mem {

/// AXI4 subordinate that accepts any transaction and answers every beat
/// with DECERR, per the AXI default-subordinate convention. Keeps the
/// interconnect live when a manager addresses a hole in the memory map.
class ErrorSlave : public sim::Component {
public:
    ErrorSlave(sim::SimContext& ctx, std::string name, axi::AxiChannel& channel);

    void reset() override;
    void tick() override;

    [[nodiscard]] std::uint64_t errors_returned() const noexcept { return errors_; }

private:
    struct PendingWrite {
        axi::IdT id = 0;
        std::uint32_t beats_left = 0;
    };
    struct PendingRead {
        axi::IdT id = 0;
        std::uint32_t beats_left = 0;
    };

    axi::SubordinateView port_;
    std::deque<PendingWrite> writes_;
    std::deque<PendingRead> reads_;
    std::uint64_t errors_ = 0;
};

} // namespace realm::mem
