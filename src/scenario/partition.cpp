#include "scenario/partition.hpp"

#include "sim/check.hpp"

#include <algorithm>
#include <numeric>
#include <string>

namespace realm::scenario {

TileWeightModel weight_model_from_profile(const std::vector<ProfileRow>& rows) {
    struct Acc {
        std::uint64_t nanos = 0;
        std::uint64_t ticks = 0;
    };
    Acc router, manager, subordinate, realm;
    for (const ProfileRow& r : rows) {
        // Substring matching keeps this robust to namespace qualification and
        // the demangler in use; muxes co-tick with their memory tile, so they
        // fold into the subordinate category.
        Acc* acc = nullptr;
        if (r.type.find("Router") != std::string::npos) {
            acc = &router;
        } else if (r.type.find("MemSlave") != std::string::npos ||
                   r.type.find("AxiMux") != std::string::npos) {
            acc = &subordinate;
        } else if (r.type.find("RealmUnit") != std::string::npos) {
            acc = &realm;
        } else if (r.type.find("DmaEngine") != std::string::npos ||
                   r.type.find("InjectorEngine") != std::string::npos ||
                   r.type.find("CoreModel") != std::string::npos) {
            acc = &manager;
        }
        if (acc != nullptr) {
            acc->nanos += r.nanos;
            acc->ticks += r.ticks;
        }
    }
    const auto per_tick = [](const Acc& a) -> double {
        return a.ticks == 0 ? 0.0
                            : static_cast<double>(a.nanos) / static_cast<double>(a.ticks);
    };
    TileWeightModel m; // static tile-degree defaults
    const double base = per_tick(router);
    if (base <= 0.0) { return m; } // no router rows: keep the static model
    m.router = 1.0;
    if (const double v = per_tick(manager); v > 0.0) { m.manager = v / base; }
    if (const double v = per_tick(subordinate); v > 0.0) { m.subordinate = v / base; }
    if (const double v = per_tick(realm); v > 0.0) { m.realm = v / base; }
    return m;
}

std::vector<double> tile_weights(const std::vector<RingNodeSpec>& specs,
                                 const TileWeightModel& model) {
    std::vector<double> weights(specs.size(), 0.0);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        double w = model.router;
        switch (specs[i].role) {
        case RingRole::kVictim:
        case RingRole::kInterference:
            w += model.manager;
            if (specs[i].realm) { w += model.realm; }
            break;
        case RingRole::kMemory: w += model.subordinate; break;
        case RingRole::kPassthrough: break;
        }
        weights[i] = w;
    }
    return weights;
}

std::vector<unsigned> balanced_partition(const std::vector<double>& weights,
                                         unsigned shards) {
    REALM_EXPECTS(shards >= 1, "balanced_partition needs at least one shard");
    std::vector<unsigned> map(weights.size(), 0);
    if (shards == 1) { return map; }
    // LPT order: weight descending, stable so equal weights keep node order.
    std::vector<std::size_t> order(weights.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return weights[a] > weights[b];
    });
    std::vector<double> load(shards, 0.0);
    for (const std::size_t n : order) {
        unsigned best = 0;
        for (unsigned s = 1; s < shards; ++s) {
            if (load[s] < load[best]) { best = s; }
        }
        map[n] = best;
        load[best] += weights[n];
    }
    return map;
}

std::vector<unsigned> mesh_tile_shards(const ScenarioConfig& cfg,
                                       const std::vector<RingNodeSpec>& specs,
                                       unsigned shards) {
    if (!cfg.tile_shards.empty()) { return cfg.tile_shards; }
    if (cfg.partition == PartitionPolicy::kStripe || shards <= 1) { return {}; }
    const TileWeightModel model = cfg.partition_profile.empty()
                                      ? TileWeightModel{}
                                      : weight_model_from_profile(cfg.partition_profile);
    return balanced_partition(tile_weights(specs, model), shards);
}

} // namespace realm::scenario
