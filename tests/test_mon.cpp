/// Tests for the monitoring plane: quantile-sketch accuracy and merge
/// determinism, the TxnMonitor FSM on crafted AXI traces, and scenario-level
/// detection (attack coverage, false-positive grounds, shard invariance).
#include "axi/builder.hpp"
#include "axi/channel.hpp"
#include "mon/detector.hpp"
#include "mon/quantile.hpp"
#include "mon/txn_monitor.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "sim/context.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace realm::mon {
namespace {

// --- QuantileSketch: bucket layout ------------------------------------------

TEST(QuantileSketch, SmallValuesAreExact) {
    // Below 2^kSubBits every value owns its own bucket.
    for (std::uint64_t v = 0; v < (1u << QuantileSketch::kSubBits); ++v) {
        EXPECT_EQ(QuantileSketch::bucket_index(v), v);
        EXPECT_EQ(QuantileSketch::bucket_upper_edge(v), v);
    }
}

TEST(QuantileSketch, BucketEdgesTileTheRange) {
    // Every bucket's upper edge maps back to that bucket, and the next value
    // maps to the next bucket: the buckets tile [0, 2^(kMaxExp+1)) exactly.
    for (std::size_t i = 0; i + 1 < QuantileSketch::kBuckets; ++i) {
        const std::uint64_t edge = QuantileSketch::bucket_upper_edge(i);
        EXPECT_EQ(QuantileSketch::bucket_index(edge), i) << "edge " << edge;
        EXPECT_EQ(QuantileSketch::bucket_index(edge + 1), i + 1) << "edge " << edge;
    }
}

TEST(QuantileSketch, RelativeBucketWidthIsBounded) {
    // Upper edge / lower edge stays below 1 + kRelativeErrorBound: that ratio
    // is the whole accuracy argument for quantile().
    for (std::size_t i = 1; i + 1 < QuantileSketch::kBuckets; ++i) {
        const double lo = static_cast<double>(QuantileSketch::bucket_upper_edge(i - 1)) + 1.0;
        const double hi = static_cast<double>(QuantileSketch::bucket_upper_edge(i));
        EXPECT_LT(hi / lo, 1.0 + QuantileSketch::kRelativeErrorBound) << "bucket " << i;
    }
}

// --- QuantileSketch: accuracy against exact quantiles ------------------------

/// Exact nearest-rank quantile (the definition quantile() approximates).
std::uint64_t exact_quantile(std::vector<std::uint64_t> samples, double q) {
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(q * static_cast<double>(samples.size()))));
    auto nth = samples.begin() + static_cast<std::ptrdiff_t>(rank - 1);
    std::nth_element(samples.begin(), nth, samples.end());
    return *nth;
}

void expect_within_documented_bounds(const std::vector<std::uint64_t>& samples,
                                     const char* what) {
    QuantileSketch sk;
    for (std::uint64_t v : samples) { sk.record(v); }
    ASSERT_EQ(sk.count(), samples.size());
    for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        const std::uint64_t exact = exact_quantile(samples, q);
        const std::uint64_t approx = sk.quantile(q);
        EXPECT_GE(approx, exact) << what << " q=" << q;
        EXPECT_LE(static_cast<double>(approx),
                  static_cast<double>(exact) *
                      (1.0 + QuantileSketch::kRelativeErrorBound))
            << what << " q=" << q;
    }
    EXPECT_EQ(sk.min(), *std::min_element(samples.begin(), samples.end()));
    EXPECT_EQ(sk.max(), *std::max_element(samples.begin(), samples.end()));
}

TEST(QuantileSketch, AccurateOnAdversarialDistributions) {
    // Deterministic LCG so the test is reproducible without <random>.
    std::uint64_t state = 0x9E3779B97F4A7C15ULL;
    const auto next = [&state] {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
    };

    std::vector<std::uint64_t> uniform;
    for (int i = 0; i < 20000; ++i) { uniform.push_back(next() % 100000); }
    expect_within_documented_bounds(uniform, "uniform");

    // Heavy tail: mostly fast hits with a 1% tail three decades out -- the
    // shape a DoS victim's latency distribution actually takes.
    std::vector<std::uint64_t> heavy;
    for (int i = 0; i < 20000; ++i) {
        heavy.push_back(i % 100 == 0 ? 50000 + next() % 500000 : 20 + next() % 80);
    }
    expect_within_documented_bounds(heavy, "heavy-tail");

    // Sorted input (ascending and descending): order must not matter.
    std::vector<std::uint64_t> asc = heavy;
    std::sort(asc.begin(), asc.end());
    expect_within_documented_bounds(asc, "ascending");
    std::vector<std::uint64_t> desc = asc;
    std::reverse(desc.begin(), desc.end());
    expect_within_documented_bounds(desc, "descending");

    // Bimodal with an extreme gap.
    std::vector<std::uint64_t> bimodal;
    for (int i = 0; i < 1000; ++i) { bimodal.push_back(i % 2 == 0 ? 3 : 1'000'000); }
    expect_within_documented_bounds(bimodal, "bimodal");
}

TEST(QuantileSketch, ConstantDistributionIsExactEverywhere) {
    QuantileSketch sk;
    for (int i = 0; i < 1000; ++i) { sk.record(17); }
    for (const double q : {0.0, 0.5, 0.99, 1.0}) { EXPECT_EQ(sk.quantile(q), 17U); }
    EXPECT_EQ(sk.min(), 17U);
    EXPECT_EQ(sk.max(), 17U);
    EXPECT_EQ(sk.sum(), 17000U);
}

TEST(QuantileSketch, EmptySketchReturnsZero) {
    const QuantileSketch sk;
    EXPECT_EQ(sk.count(), 0U);
    EXPECT_EQ(sk.quantile(0.5), 0U);
    EXPECT_EQ(sk.min(), 0U);
    EXPECT_EQ(sk.max(), 0U);
    EXPECT_EQ(sk.mean(), 0.0);
}

TEST(QuantileSketch, HugeSamplesClampToExactMax) {
    QuantileSketch sk;
    const std::uint64_t huge = std::uint64_t{1} << 50; // beyond kMaxExp octaves
    sk.record(huge);
    sk.record(10);
    EXPECT_EQ(sk.quantile(1.0), huge) << "clamped to the exact maximum";
    EXPECT_EQ(sk.max(), huge);
}

// --- QuantileSketch: merge = feed-all, any order -----------------------------

TEST(QuantileSketch, ShardMergeMatchesFeedAllInAnyOrder) {
    std::uint64_t state = 12345;
    const auto next = [&state] {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
    };
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 4096; ++i) { samples.push_back(next() % 1'000'000); }

    QuantileSketch all;
    for (std::uint64_t v : samples) { all.record(v); }

    // Deal the stream round-robin over 4 "shards".
    QuantileSketch shard[4];
    for (std::size_t i = 0; i < samples.size(); ++i) { shard[i % 4].record(samples[i]); }

    QuantileSketch fwd; // 0,1,2,3
    for (const auto& s : shard) { fwd.merge(s); }
    QuantileSketch rev; // 3,2,1,0
    for (int i = 3; i >= 0; --i) { rev.merge(shard[i]); }

    EXPECT_TRUE(fwd == all);
    EXPECT_TRUE(rev == all);
    EXPECT_EQ(fwd.count(), all.count());
    EXPECT_EQ(fwd.sum(), all.sum());
    EXPECT_EQ(fwd.min(), all.min());
    EXPECT_EQ(fwd.max(), all.max());
    EXPECT_EQ(fwd.quantile(0.999), all.quantile(0.999));
}

// --- Detector scoring --------------------------------------------------------

TEST(Detector, SignalNamesJoinWithPlus) {
    EXPECT_EQ(signal_names(kSignalNone), "-");
    EXPECT_EQ(signal_names(kSignalBandwidth), "bw");
    EXPECT_EQ(signal_names(kSignalBackpressure | kSignalWGap), "held+wgap");
    EXPECT_EQ(signal_names(kSignalBandwidth | kSignalBackpressure | kSignalWGap),
              "bw+held+wgap");
}

TEST(Detector, ScoreCountsConfusionAndFastestDetect) {
    const std::vector<Verdict> verdicts{
        {.hostile = true, .flagged = true, .signals = kSignalBandwidth, .time_to_detect = 900},
        {.hostile = true, .flagged = true, .signals = kSignalWGap, .time_to_detect = 120},
        {.hostile = true, .flagged = false},
        {.hostile = false, .flagged = true, .signals = kSignalBackpressure, .time_to_detect = 50},
        {.hostile = false, .flagged = false},
    };
    const DetectionScore score = score_verdicts(verdicts);
    EXPECT_EQ(score.true_positives, 2U);
    EXPECT_EQ(score.false_positives, 1U);
    EXPECT_EQ(score.false_negatives, 1U);
    EXPECT_EQ(score.first_detect, 120U) << "fastest TP, not the benign FP";
}

TEST(Detector, EmptyAndAllCleanScoreZero) {
    EXPECT_EQ(score_verdicts({}).true_positives, 0U);
    const std::vector<Verdict> clean{{.hostile = false, .flagged = false}};
    const DetectionScore score = score_verdicts(clean);
    EXPECT_EQ(score.true_positives + score.false_positives + score.false_negatives, 0U);
    EXPECT_EQ(score.first_detect, 0U);
}

// --- TxnMonitor FSM on crafted traces ----------------------------------------

/// The monitor spliced between a hand-driven manager (`up`) and a hand-driven
/// subordinate (`down`), in the style of test_axi's CheckerFixture.
class MonitorFixture : public ::testing::Test {
protected:
    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down"};
};

TEST_F(MonitorFixture, CleanWriteRecordsOneLatencySample) {
    TxnMonitor monitor{ctx, "mon", up, down};
    axi::ManagerView mgr{up};
    axi::SubordinateView sub{down};
    mgr.send_aw(axi::make_aw(1, 0x1000, 2, 3));
    ctx.step();
    axi::WFlit w0;
    w0.last = false;
    mgr.send_w(w0);
    ctx.step();
    axi::WFlit w1;
    w1.last = true;
    mgr.send_w(w1);
    ctx.run(3);
    // Drain the forwarded request and answer it.
    while (sub.has_aw()) { sub.recv_aw(); }
    while (sub.has_w()) { sub.recv_w(); }
    axi::BFlit b;
    b.id = 1;
    sub.send_b(b);
    ctx.run(3);

    EXPECT_EQ(monitor.aw_count(), 1U);
    EXPECT_EQ(monitor.write_sketch().count(), 1U);
    EXPECT_GT(monitor.write_sketch().min(), 0U);
    EXPECT_EQ(monitor.bytes_written(), 16U) << "2 beats x 8 B";
    EXPECT_EQ(monitor.orphan_responses(), 0U);
    EXPECT_EQ(monitor.timeouts(), 0U);
    EXPECT_FALSE(monitor.flagged());
    monitor.finalize();
    EXPECT_EQ(monitor.orphan_requests(), 0U);
    EXPECT_EQ(monitor.combined_sketch().count(), 1U);
}

TEST_F(MonitorFixture, CleanReadRecordsLatencyAndBytes) {
    TxnMonitor monitor{ctx, "mon", up, down};
    axi::ManagerView mgr{up};
    axi::SubordinateView sub{down};
    mgr.send_ar(axi::make_ar(5, 0x2000, 2, 3));
    ctx.run(3);
    while (sub.has_ar()) { sub.recv_ar(); }
    axi::RFlit r0;
    r0.id = 5;
    r0.last = false;
    sub.send_r(r0);
    ctx.step();
    axi::RFlit r1;
    r1.id = 5;
    r1.last = true;
    sub.send_r(r1);
    ctx.run(3);
    while (mgr.has_r()) { mgr.recv_r(); }

    EXPECT_EQ(monitor.ar_count(), 1U);
    EXPECT_EQ(monitor.read_sketch().count(), 1U);
    EXPECT_EQ(monitor.bytes_read(), 16U) << "2 beats x 8 B";
    EXPECT_EQ(monitor.orphan_responses(), 0U);
    EXPECT_FALSE(monitor.flagged());
}

TEST_F(MonitorFixture, OrphanResponsesAreCounted) {
    TxnMonitor monitor{ctx, "mon", up, down};
    axi::BFlit b;
    b.id = 9;
    down.b.push(b);
    axi::RFlit r;
    r.id = 9;
    r.last = true;
    down.r.push(r);
    ctx.run(3);
    EXPECT_EQ(monitor.orphan_responses(), 2U);
}

TEST_F(MonitorFixture, TimeoutFlagsOncePerBurstAndOrphansAtFinalize) {
    TxnMonitorConfig cfg;
    cfg.timeout_cycles = 20;
    TxnMonitor monitor{ctx, "mon", up, down, cfg};
    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(1, 0x1000, 1, 3));
    ctx.run(3);
    EXPECT_EQ(monitor.timeouts(), 0U) << "not yet aged past the deadline";
    ctx.run(40);
    EXPECT_EQ(monitor.timeouts(), 1U);
    ctx.run(100);
    EXPECT_EQ(monitor.timeouts(), 1U) << "a burst times out once, not per check";
    EXPECT_FALSE(monitor.flagged()) << "timeouts are telemetry, not a verdict";
    monitor.finalize();
    EXPECT_EQ(monitor.orphan_requests(), 1U) << "still outstanding at run end";
}

TEST_F(MonitorFixture, WGapFlagsStallingWriteProducer) {
    TxnMonitorConfig cfg;
    cfg.stall_cycles = 8;
    TxnMonitor monitor{ctx, "mon", up, down, cfg};
    axi::ManagerView mgr{up};
    // Open an 8-beat burst, supply a single beat, then go silent while the
    // downstream W channel stays ready -- the W-stall attack signature.
    mgr.send_aw(axi::make_aw(1, 0x1000, 8, 3));
    ctx.step();
    axi::WFlit w;
    w.last = false;
    mgr.send_w(w);
    ctx.run(40);

    EXPECT_EQ(monitor.w_gap_events(), 1U);
    EXPECT_TRUE(monitor.flagged());
    EXPECT_EQ(monitor.signals() & kSignalWGap, kSignalWGap);
    EXPECT_GT(monitor.time_to_detect(), 0U);
    ctx.run(100);
    EXPECT_EQ(monitor.w_gap_events(), 1U) << "one event per gap until a beat re-arms";
}

TEST_F(MonitorFixture, BackpressureFlagsHeldRequests) {
    TxnMonitorConfig cfg;
    cfg.stall_cycles = 8;
    cfg.window_cycles = 32;
    cfg.held_threshold = 0.5;
    cfg.bw_threshold = 1e9; // isolate the held signal
    TxnMonitor monitor{ctx, "mon", up, down, cfg};
    axi::ManagerView mgr{up};
    // Never drain `down`: after the monitor fills the downstream AR link the
    // manager's requests are held at the boundary every cycle.
    axi::IdT id = 0;
    for (int c = 0; c < 100; ++c) {
        if (mgr.can_send_ar()) { mgr.send_ar(axi::make_ar(++id, 0x1000, 1, 3)); }
        ctx.step();
    }
    EXPECT_GT(monitor.held_cycles(), 32U);
    EXPECT_GE(monitor.stall_events(), 1U) << "held streak crossed stall_cycles";
    EXPECT_TRUE(monitor.flagged());
    EXPECT_EQ(monitor.signals() & kSignalBackpressure, kSignalBackpressure);
}

TEST_F(MonitorFixture, BandwidthFlagsSaturatingReader) {
    TxnMonitorConfig cfg;
    cfg.window_cycles = 32;
    cfg.bw_threshold = 4.0; // 8 B/cycle of R traffic is well above this
    cfg.held_threshold = 1.1; // isolate the bandwidth signal
    TxnMonitor monitor{ctx, "mon", up, down, cfg};
    axi::ManagerView mgr{up};
    axi::SubordinateView sub{down};
    mgr.send_ar(axi::make_ar(7, 0x1000, 64, 3));
    std::uint32_t beats = 64;
    for (int c = 0; c < 120; ++c) {
        while (sub.has_ar()) { sub.recv_ar(); }
        if (beats > 0 && sub.can_send_r()) {
            axi::RFlit r;
            r.id = 7;
            r.last = (--beats == 0);
            sub.send_r(r);
        }
        while (mgr.has_r()) { mgr.recv_r(); }
        ctx.step();
    }
    EXPECT_EQ(monitor.bytes_read(), 64U * 8U);
    EXPECT_TRUE(monitor.flagged());
    EXPECT_EQ(monitor.signals() & kSignalBandwidth, kSignalBandwidth);
    EXPECT_EQ(monitor.read_sketch().count(), 1U);
}

TEST_F(MonitorFixture, OccupancyFlagsPipelinedReader) {
    TxnMonitorConfig cfg;
    cfg.window_cycles = 32;
    cfg.occ_threshold = 1.5;
    cfg.held_threshold = 1.1; // isolate the occupancy signal
    cfg.stall_cycles = 1000;
    TxnMonitor monitor{ctx, "mon", up, down, cfg};
    axi::ManagerView mgr{up};
    // Two reads forwarded downstream and never answered: in-demand occupancy
    // sits at 2 for every following window.
    mgr.send_ar(axi::make_ar(1, 0x1000, 1, 3));
    mgr.send_ar(axi::make_ar(2, 0x2000, 1, 3));
    ctx.run(100);
    // Windows are evaluated lazily (the idle monitor may be asleep at the
    // boundary); finalize() closes them, dated at the deterministic edges.
    monitor.finalize();
    EXPECT_TRUE(monitor.flagged());
    EXPECT_EQ(monitor.signals(), kSignalOccupancy) << "only the occupancy signal";
    EXPECT_GT(monitor.occupancy_milli(), 1500U);
}

TEST_F(MonitorFixture, OccupancyIgnoresResponseWait) {
    // A manager whose writes are fully produced but starved of B responses is
    // a congestion *victim*: its occupancy must not accumulate while waiting.
    TxnMonitorConfig cfg;
    cfg.window_cycles = 32;
    cfg.occ_threshold = 1.5;
    TxnMonitor monitor{ctx, "mon", up, down, cfg};
    axi::ManagerView mgr{up};
    axi::SubordinateView sub{down};
    for (axi::IdT id = 1; id <= 4; ++id) {
        mgr.send_aw(axi::make_aw(id, 0x1000 * id, 1, 3));
        ctx.step();
        axi::WFlit w;
        w.last = true;
        mgr.send_w(w);
        ctx.step();
        while (sub.has_aw()) { sub.recv_aw(); }
        while (sub.has_w()) { sub.recv_w(); }
    }
    // Four stores outstanding on the B channel for a long time.
    ctx.run(300);
    monitor.finalize();
    EXPECT_FALSE(monitor.flagged())
        << "waiting on late B responses is not fabric demand";
    EXPECT_LT(monitor.occupancy_milli(), 500U);
    EXPECT_EQ(monitor.orphan_requests(), 4U) << "the stores never completed";
}

TEST_F(MonitorFixture, QuietManagerStaysClean) {
    TxnMonitorConfig cfg;
    cfg.window_cycles = 16;
    TxnMonitor monitor{ctx, "mon", up, down, cfg};
    ctx.run(200);
    monitor.finalize();
    EXPECT_FALSE(monitor.flagged());
    EXPECT_EQ(monitor.timeouts() + monitor.orphan_requests() +
                  monitor.orphan_responses() + monitor.stall_events() +
                  monitor.w_gap_events() + monitor.held_cycles(),
              0U);
}

} // namespace
} // namespace realm::mon

// --- Scenario-level monitoring -----------------------------------------------

namespace realm::scenario {
namespace {

/// Finds one cell of a registered sweep by label and switches monitors on.
ScenarioConfig monitored_cell(const std::string& sweep_name, const std::string& label) {
    const Sweep sweep = make_sweep(sweep_name);
    for (const SweepPoint& p : sweep.points) {
        if (p.label == label) {
            ScenarioConfig cfg = p.config;
            cfg.monitors.enabled = true;
            return cfg;
        }
    }
    ADD_FAILURE() << "no cell " << label << " in " << sweep_name;
    return sweep.points.at(0).config;
}

TEST(MonitoredScenario, HogAttackerDetectedVictimClean) {
    const ScenarioConfig cfg = monitored_cell("mesh-dos-smoke", "1atk/hog/none");
    const ScenarioResult res = run_scenario(cfg, "1atk/hog/none");
    ASSERT_TRUE(res.mon_enabled);
    // Manager 0 is the victim core, manager 1 the single hog DMA.
    ASSERT_EQ(res.mgr_p99.size(), 2U);
    ASSERT_EQ(res.mgr_flagged.size(), 2U);
    ASSERT_EQ(res.mgr_hostile.size(), 2U);
    EXPECT_EQ(res.mgr_hostile[0], 0U);
    EXPECT_EQ(res.mgr_hostile[1], 1U);
    EXPECT_EQ(res.mgr_flagged[1], 1U) << "hog must be flagged";
    EXPECT_EQ(res.mgr_flagged[0], 0U) << "victim must stay clean";
    EXPECT_EQ(res.mon_true_positives, 1U);
    EXPECT_EQ(res.mon_false_positives, 0U);
    EXPECT_EQ(res.mon_false_negatives, 0U);
    EXPECT_GT(res.mon_first_detect, 0U);
    EXPECT_EQ(res.mgr_detect[1], res.mon_first_detect);
    // Percentiles are ordered and populated for every manager.
    for (std::size_t m = 0; m < res.mgr_p99.size(); ++m) {
        EXPECT_LE(res.mgr_p50[m], res.mgr_p99[m]) << "manager " << m;
        EXPECT_LE(res.mgr_p99[m], res.mgr_p999[m]) << "manager " << m;
    }
    EXPECT_LE(res.mon_lat_p50, res.mon_lat_p99);
    EXPECT_LE(res.mon_lat_p99, res.mon_lat_p999);
}

TEST(MonitoredScenario, WStallAttackerFlaggedViaWGap) {
    const ScenarioConfig cfg = monitored_cell("mesh-dos-smoke", "1atk/wstall/budget");
    const ScenarioResult res = run_scenario(cfg, "1atk/wstall/budget");
    ASSERT_TRUE(res.mon_enabled);
    ASSERT_EQ(res.mgr_signals.size(), 2U);
    EXPECT_EQ(res.mon_true_positives, 1U);
    EXPECT_EQ(res.mon_false_positives, 0U);
    EXPECT_EQ(res.mgr_signals[1] & mon::kSignalWGap, mon::kSignalWGap)
        << "the W-stall attack is caught by the W-production-gap signal";
    EXPECT_GT(res.mon_wgap_events, 0U);
}

TEST(MonitoredScenario, NoAttackCellsProduceZeroFalsePositives) {
    for (const char* sweep : {"mesh-dos-smoke", "ring-dos-smoke"}) {
        for (const char* label : {"0atk/hog/none", "0atk/hog/budget"}) {
            SCOPED_TRACE(std::string(sweep) + " " + label);
            const ScenarioResult res = run_scenario(monitored_cell(sweep, label), label);
            ASSERT_TRUE(res.mon_enabled);
            ASSERT_EQ(res.mgr_flagged.size(), 1U) << "victim only";
            EXPECT_EQ(res.mon_false_positives, 0U);
            EXPECT_EQ(res.mon_true_positives, 0U);
            EXPECT_EQ(res.mgr_flagged[0], 0U);
            EXPECT_EQ(res.mon_first_detect, 0U);
        }
    }
}

TEST(MonitoredScenario, RandomMixVictimCleanGreedyDmaScoredHonestly) {
    Sweep sweep = make_sweep("random-mix");
    ScenarioConfig cfg = sweep.points.at(0).config;
    cfg.victim.random.num_ops = 500; // keep the test quick
    cfg.monitors.enabled = true;
    const ScenarioResult res = run_scenario(cfg, sweep.points.at(0).label);
    ASSERT_TRUE(res.mon_enabled);
    ASSERT_EQ(res.mgr_flagged.size(), 2U);
    EXPECT_EQ(res.mgr_flagged[0], 0U) << "the random-access victim must stay clean";
    // The budgeted DMA is configured benign but pushes 16 KiB through a
    // 4 B/cycle contract as fast as the regulator allows: at the boundary it
    // is indistinguishable from an overdrafter (sustained backpressure, full
    // pipeline), so the detector flags it and the score records an honest
    // false positive against the benign ground truth.
    EXPECT_EQ(res.mgr_flagged[1], 1U);
    EXPECT_EQ(res.mgr_signals[1] & mon::kSignalBackpressure, mon::kSignalBackpressure);
    EXPECT_EQ(res.mon_false_positives, 1U);
    EXPECT_EQ(res.mon_true_positives + res.mon_false_negatives, 0U)
        << "random-mix configures no hostile manager";
}

TEST(MonitoredScenario, ShardCountDoesNotChangeMonitorResults) {
    ScenarioConfig base = monitored_cell("mesh-dos-smoke", "2atk/hog/budget");
    std::vector<ScenarioResult> runs;
    for (const unsigned shards : {1U, 2U, 4U}) {
        ScenarioConfig cfg = base;
        cfg.shards = shards;
        cfg.shard_workers = shards > 1 ? 2 : 0;
        runs.push_back(run_scenario(cfg, "2atk/hog/budget"));
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
        SCOPED_TRACE("shards run " + std::to_string(i));
        const ScenarioResult& a = runs[0];
        const ScenarioResult& b = runs[i];
        EXPECT_EQ(a.run_cycles, b.run_cycles);
        EXPECT_EQ(a.ops, b.ops);
        EXPECT_EQ(a.mon_lat_p50, b.mon_lat_p50);
        EXPECT_EQ(a.mon_lat_p99, b.mon_lat_p99);
        EXPECT_EQ(a.mon_lat_p999, b.mon_lat_p999);
        EXPECT_EQ(a.mon_timeouts, b.mon_timeouts);
        EXPECT_EQ(a.mon_orphan_rsp, b.mon_orphan_rsp);
        EXPECT_EQ(a.mon_orphan_req, b.mon_orphan_req);
        EXPECT_EQ(a.mon_stall_events, b.mon_stall_events);
        EXPECT_EQ(a.mon_wgap_events, b.mon_wgap_events);
        EXPECT_EQ(a.mon_true_positives, b.mon_true_positives);
        EXPECT_EQ(a.mon_false_positives, b.mon_false_positives);
        EXPECT_EQ(a.mon_false_negatives, b.mon_false_negatives);
        EXPECT_EQ(a.mon_first_detect, b.mon_first_detect);
        EXPECT_EQ(a.mgr_p50, b.mgr_p50);
        EXPECT_EQ(a.mgr_p99, b.mgr_p99);
        EXPECT_EQ(a.mgr_p999, b.mgr_p999);
        EXPECT_EQ(a.mgr_flagged, b.mgr_flagged);
        EXPECT_EQ(a.mgr_signals, b.mgr_signals);
        EXPECT_EQ(a.mgr_hostile, b.mgr_hostile);
        EXPECT_EQ(a.mgr_detect, b.mgr_detect);
        EXPECT_EQ(a.mgr_occ_milli, b.mgr_occ_milli);
    }
}

TEST(MonitoredScenario, SketchBacksLoadLatencyP99) {
    // Solo victim on the smoke mesh: load_lat_p99 now comes from the core's
    // QuantileSketch and must sit inside the exact [min, max] envelope within
    // the sketch's documented relative error bound.
    Sweep sweep = make_sweep("mesh-dos-smoke");
    const ScenarioConfig cfg = sweep.points.back().config; // 0atk cell
    const ScenarioResult res = run_scenario(cfg, "solo");
    ASSERT_GT(res.ops, 0U);
    EXPECT_GE(res.load_lat_p99, res.load_lat_min);
    EXPECT_LE(static_cast<double>(res.load_lat_p99),
              static_cast<double>(res.load_lat_max) *
                  (1.0 + mon::QuantileSketch::kRelativeErrorBound));
    if (res.load_lat_min == res.load_lat_max) {
        EXPECT_EQ(res.load_lat_p99, res.load_lat_max) << "degenerate distribution is exact";
    }
}

TEST(MonitoredScenario, MonitorsOffLeavesResultEmpty) {
    Sweep sweep = make_sweep("mesh-dos-smoke");
    const ScenarioResult res = run_scenario(sweep.points.at(0).config, "off");
    EXPECT_FALSE(res.mon_enabled);
    EXPECT_TRUE(res.mgr_p99.empty());
    EXPECT_EQ(res.mon_true_positives + res.mon_false_positives, 0U);
}

} // namespace
} // namespace realm::scenario
