/// \file
/// \brief Ablation: reservation-period selection at a fixed bandwidth share.
///
/// The paper's M&R unit exposes statistics "for optimal budget and period
/// selection" but evaluates one period; this bench fills in the design
/// space: the same 20 % DMA bandwidth share enforced with periods from 100
/// to 100 000 cycles. Short periods interleave the DMA finely (smooth core
/// latency, but replenishment overhead and tighter tracking); long periods
/// alternate long free/contended phases (the core sees bimodal latency and
/// a worse tail while the *average* DMA bandwidth is identical).
///
/// Runs through the scenario engine (`--threads N` parallelizes the sweep,
/// `--json PATH` dumps machine-readable results).
#include "scenario/cli.hpp"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace realm::scenario;
    BenchOptions opts = parse_bench_args(argc, argv);

    std::puts("== Ablation: period selection at a fixed 20 % DMA share ==");
    std::puts("(fragmentation 1; budget scales with period so budget/period = 1.6 B/cyc)\n");

    Sweep sweep = make_sweep("ablation-period");
    const auto results = run_with_options(opts, sweep);
    const ScenarioResult& base = results[*sweep.baseline_index];

    std::printf("%-12s %12s %8s %9s %9s %10s %11s\n", "period", "cycles", "perf%",
                "lat_mean", "lat_max", "dma[B/cyc]", "depletions");
    for (std::size_t i = 1; i < results.size(); ++i) {
        const ScenarioResult& r = results[i];
        const double perf = 100.0 * static_cast<double>(base.run_cycles) /
                            static_cast<double>(r.run_cycles);
        std::printf("%-12s %12llu %8.1f %9.2f %9llu %10.2f %11llu\n", r.label.c_str(),
                    static_cast<unsigned long long>(r.run_cycles), perf, r.load_lat_mean,
                    static_cast<unsigned long long>(r.load_lat_max), r.dma_read_bw,
                    static_cast<unsigned long long>(r.dma_depletions));
    }

    std::puts("\nsame average DMA bandwidth everywhere; the period picks where the");
    std::puts("interference lands: fine interleaving (short) vs long contended phases");
    std::puts("with a worse core latency tail (long). This is the trade the M&R");
    std::puts("statistics let an integrator make quantitatively.");
    return 0;
}
