/// Tests for the markdown report renderer: cell-label parsing, the
/// DoS-matrix golden rendering (format pinned byte for byte), the flat
/// fallback table, and the file writer.
#include "scenario/report.hpp"
#include "scenario/search.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace realm::scenario {
namespace {

// --- Cell-label parsing ------------------------------------------------------

TEST(DosCellLabel, ParsesTheMatrixConvention) {
    DosCellLabel cell;
    ASSERT_TRUE(parse_dos_cell_label("3atk/hog/budget", cell));
    EXPECT_EQ(cell.attackers, 3U);
    EXPECT_EQ(cell.attack, "hog");
    EXPECT_EQ(cell.defense, "budget");

    ASSERT_TRUE(parse_dos_cell_label("12atk/wstall/none", cell));
    EXPECT_EQ(cell.attackers, 12U);
}

TEST(DosCellLabel, ParsesTheRoutingPolicyAxis) {
    // A fourth segment is valid only when it names a registered routing
    // policy; the base three-segment convention leaves `policy` empty.
    DosCellLabel cell;
    ASSERT_TRUE(parse_dos_cell_label("3atk/hog/budget/o1turn", cell));
    EXPECT_EQ(cell.attackers, 3U);
    EXPECT_EQ(cell.attack, "hog");
    EXPECT_EQ(cell.defense, "budget");
    EXPECT_EQ(cell.policy, "o1turn");
    ASSERT_TRUE(parse_dos_cell_label("1atk/wstall/none/west-first", cell));
    EXPECT_EQ(cell.policy, "west-first");
    ASSERT_TRUE(parse_dos_cell_label("2atk/hog/none", cell));
    EXPECT_TRUE(cell.policy.empty());
}

TEST(DosCellLabel, RejectsEverythingElse) {
    DosCellLabel cell;
    EXPECT_FALSE(parse_dos_cell_label("baseline", cell));
    EXPECT_FALSE(parse_dos_cell_label("atk/hog/none", cell));
    EXPECT_FALSE(parse_dos_cell_label("3atk/hog", cell));
    EXPECT_FALSE(parse_dos_cell_label("3atk/hog/none/extra", cell))
        << "a fourth segment must name a routing policy";
    EXPECT_FALSE(parse_dos_cell_label("3atk/hog/none/xy/more", cell));
    EXPECT_FALSE(parse_dos_cell_label("3atk//none", cell));
    EXPECT_FALSE(parse_dos_cell_label("N=6 solo", cell));
}

// --- Matrix rendering (golden) -----------------------------------------------

ScenarioResult result_for(std::string label, std::uint64_t load_max,
                          std::uint64_t store_max) {
    ScenarioResult r;
    r.label = std::move(label);
    r.load_lat_max = load_max;
    r.store_lat_max = store_max;
    r.run_cycles = 1000;
    r.ops = 10;
    return r;
}

/// 2 attackers x 2 attacks x 2 defenses, fixed synthetic latencies.
std::pair<Sweep, std::vector<ScenarioResult>> matrix_fixture() {
    Sweep sweep;
    sweep.name = "golden-dos";
    sweep.title = "Golden DoS matrix";
    sweep.notes = {"synthetic fixture for the rendering golden test."};
    std::vector<ScenarioResult> results;
    const struct {
        const char* label;
        std::uint64_t load;
        std::uint64_t store;
    } cells[] = {
        {"1atk/hog/none", 500, 20},   {"1atk/wstall/none", 90, 700},
        {"2atk/hog/none", 800, 20},   {"2atk/wstall/none", 90, 1200},
        {"1atk/hog/budget", 30, 20},  {"1atk/wstall/budget", 25, 40},
        {"2atk/hog/budget", 35, 20},  {"2atk/wstall/budget", 25, 45},
    };
    for (const auto& c : cells) {
        sweep.points.push_back({c.label, ScenarioConfig{}});
        results.push_back(result_for(c.label, c.load, c.store));
    }
    return {sweep, results};
}

TEST(ReportRendering, DosMatrixGolden) {
    const auto [sweep, results] = matrix_fixture();
    std::ostringstream os;
    write_report(os, sweep, results);
    const std::string expected =
        "# Golden DoS matrix\n"
        "\n"
        "Sweep `golden-dos`, 8 points.\n"
        "> synthetic fixture for the rendering golden test.\n"
        "\n"
        "Cells report the worst-case victim latency in cycles (max of load / "
        "store latency); the worst cell per defense is **bold**.\n"
        "\n"
        "## Defense: `none`\n"
        "\n"
        "| attackers | hog | wstall |\n"
        "|---|---|---|\n"
        "| 1 | 500 | 700 |\n"
        "| 2 | 800 | **1200** |\n"
        "\n"
        "Worst cell: `2atk/wstall/none` at 1200 cycles.\n"
        "\n"
        "## Defense: `budget`\n"
        "\n"
        "| attackers | hog | wstall |\n"
        "|---|---|---|\n"
        "| 1 | 30 | 40 |\n"
        "| 2 | 35 | **45** |\n"
        "\n"
        "Worst cell: `2atk/wstall/budget` at 45 cycles.\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(ReportRendering, RoutingPolicyRendersAsARowDimension) {
    // Cells labelled with the routing axis render one row per
    // (attackers, policy) combination under each defense; sweeps without
    // the axis keep the legacy format (pinned by DosMatrixGolden above).
    Sweep sweep;
    sweep.name = "routing-dos";
    sweep.title = "Routing DoS matrix";
    std::vector<ScenarioResult> results;
    const struct {
        const char* label;
        std::uint64_t load;
    } cells[] = {
        {"1atk/hog/none/xy", 500},
        {"1atk/hog/none/yx", 520},
        {"2atk/hog/none/xy", 800},
        {"2atk/hog/none/yx", 900},
    };
    for (const auto& c : cells) {
        sweep.points.push_back({c.label, ScenarioConfig{}});
        results.push_back(result_for(c.label, c.load, 10));
    }
    std::ostringstream os;
    write_report(os, sweep, results);
    const std::string report = os.str();
    EXPECT_NE(report.find("| attackers · routing | hog |"), std::string::npos);
    EXPECT_NE(report.find("| 1 · xy | 500 |"), std::string::npos);
    EXPECT_NE(report.find("| 1 · yx | 520 |"), std::string::npos);
    EXPECT_NE(report.find("| 2 · xy | 800 |"), std::string::npos);
    EXPECT_NE(report.find("| 2 · yx | **900** |"), std::string::npos);
    EXPECT_NE(report.find("Worst cell: `2atk/hog/none/yx` at 900 cycles."),
              std::string::npos);
}

TEST(ReportRendering, FlagsBootFailuresAndTimeouts) {
    auto [sweep, results] = matrix_fixture();
    results[0].boot_ok = false;
    results[3].timed_out = true;
    std::ostringstream os;
    write_report(os, sweep, results);
    const std::string report = os.str();
    EXPECT_NE(report.find("boot failed"), std::string::npos);
    EXPECT_NE(report.find("1200 (timed out)"), std::string::npos);
    EXPECT_NE(report.find("**Flagged points:**"), std::string::npos);
    EXPECT_NE(report.find("- `1atk/hog/none`: boot script did not complete"),
              std::string::npos);
    EXPECT_NE(report.find("- `2atk/wstall/none`: timed out"), std::string::npos);
}

// --- Flat fallback -----------------------------------------------------------

TEST(ReportRendering, NonMatrixSweepsFallBackToFlatTableWithBaseline) {
    Sweep sweep;
    sweep.name = "flat";
    sweep.title = "Flat sweep";
    sweep.baseline_index = 0;
    sweep.points.push_back({"baseline", ScenarioConfig{}});
    sweep.points.push_back({"contended", ScenarioConfig{}});
    ScenarioResult base = result_for("baseline", 10, 5);
    base.run_cycles = 1000;
    base.load_lat_mean = 3.5;
    ScenarioResult slow = result_for("contended", 90, 40);
    slow.run_cycles = 4000;
    slow.fabric_hops = 77;

    std::ostringstream os;
    write_report(os, sweep, {base, slow});
    const std::string report = os.str();
    EXPECT_NE(report.find("| point | run cycles |"), std::string::npos);
    EXPECT_NE(report.find("| baseline | 1000 | 10 | 3.50 | 10 | 5 |"),
              std::string::npos);
    EXPECT_NE(report.find(" 100.0 % |"), std::string::npos) << "baseline vs itself";
    EXPECT_NE(report.find(" 25.0 % |"), std::string::npos) << "4x slower point";
    EXPECT_NE(report.find("| 77 |"), std::string::npos);
    EXPECT_EQ(report.find("## Defense"), std::string::npos);
}

// --- Monitoring-plane sections -----------------------------------------------

/// One attack cell (hostile dma1 flagged via occupancy) and one clean cell,
/// three managers each, with a row cap of 2 to exercise the loudest-first
/// ordering and the omission footer.
std::pair<Sweep, std::vector<ScenarioResult>> monitored_fixture() {
    auto [sweep, results] = matrix_fixture();
    sweep.points.resize(2);
    results.resize(2);
    sweep.points[1].label = "0atk/hog/none";
    results[1].label = "0atk/hog/none";
    for (SweepPoint& p : sweep.points) {
        p.config.monitors.enabled = true;
        p.config.monitors.report_managers = 2;
    }
    for (ScenarioResult& r : results) {
        r.mon_enabled = true;
        r.mgr_p50 = {40, 9, 11};
        r.mgr_p99 = {160, 30, 90};
        r.mgr_p999 = {200, 33, 120};
        r.mgr_occ_milli = {850, 400, 1990};
        r.mgr_flagged = {0, 0, 0};
        r.mgr_signals = {0, 0, 0};
        r.mgr_hostile = {0, 0, 0};
        r.mgr_detect = {0, 0, 0};
    }
    results[0].mgr_hostile[2] = 1;
    results[0].mgr_flagged[2] = 1;
    results[0].mgr_signals[2] = mon::kSignalOccupancy;
    results[0].mgr_detect[2] = 1024;
    results[0].mon_true_positives = 1;
    results[0].mon_first_detect = 1024;
    return {sweep, results};
}

TEST(ReportRendering, FlatTableGrowsASpeedColumnWhenWallTimeIsKnown) {
    // Synthetic results carry wall_seconds == 0, so the matrix/flat goldens
    // above never see this column; a measured run renders simulated cycles
    // per wall second next to the functional metrics.
    Sweep sweep;
    sweep.name = "flat-speed";
    sweep.title = "Flat sweep with host speed";
    sweep.points.push_back({"fast", ScenarioConfig{}});
    sweep.points.push_back({"replayed", ScenarioConfig{}});
    ScenarioResult fast = result_for("fast", 10, 5);
    fast.simulated_cycles = 50000;
    fast.wall_seconds = 0.5;
    ScenarioResult replayed = result_for("replayed", 20, 8);

    std::ostringstream os;
    write_report(os, sweep, {fast, replayed});
    const std::string report = os.str();
    EXPECT_NE(report.find("| hops | sim c/s |"), std::string::npos);
    EXPECT_NE(report.find(" 100000 |"), std::string::npos)
        << "50000 cycles / 0.5 s = 100000 c/s";
    EXPECT_NE(report.find(" – |"), std::string::npos)
        << "a point without wall time (resume reuse) renders a dash";
}

TEST(ReportRendering, ProfiledRunsRenderACycleAttributionSection) {
    Sweep sweep;
    sweep.name = "profiled";
    sweep.title = "Profiled sweep";
    sweep.points.push_back({"only", ScenarioConfig{}});
    ScenarioResult r = result_for("only", 10, 5);
    r.profile.push_back({"realm::noc::Router", 0, 16, 12000, 3000000});
    r.profile.push_back({"realm::axi::Dma", 1, 4, 4000, 1000000});

    std::ostringstream os;
    write_report(os, sweep, {r});
    const std::string report = os.str();
    EXPECT_NE(report.find("## Cycle attribution"), std::string::npos);
    EXPECT_NE(report.find("| `only` | realm::noc::Router | 0 | 16 | 12000 | "
                          "3.00 | 75.0 % |"),
              std::string::npos);
    EXPECT_NE(report.find("| `only` | realm::axi::Dma | 1 | 4 | 4000 | "
                          "1.00 | 25.0 % |"),
              std::string::npos);
}

TEST(ReportRendering, ShardedRunsRenderAPartitionBalanceSection) {
    Sweep sweep;
    sweep.name = "sharded";
    sweep.title = "Sharded sweep";
    sweep.points.push_back({"only", ScenarioConfig{}});
    ScenarioResult r = result_for("only", 10, 5);
    r.shard_ticks_executed = {6000, 2000};
    r.profile.push_back({"realm::noc::MeshRouter", 0, 16, 12000, 3000000});
    r.profile.push_back({"realm::mem::AxiMemSlave", 1, 4, 4000, 1000000});

    std::ostringstream os;
    write_report(os, sweep, {r});
    const std::string report = os.str();
    EXPECT_NE(report.find("## Partition balance"), std::string::npos);
    EXPECT_NE(report.find("| point | shard | ticks | tick share | wall share |"),
              std::string::npos);
    EXPECT_NE(report.find("| `only` | 0 | 6000 | 75.0 % | 75.0 % |"),
              std::string::npos);
    EXPECT_NE(report.find("| `only` | 1 | 2000 | 25.0 % | 25.0 % |"),
              std::string::npos);
}

TEST(ReportRendering, PartitionBalanceWithoutProfileRendersDashes) {
    Sweep sweep;
    sweep.name = "sharded-unprofiled";
    sweep.title = "Sharded sweep, no profiler";
    sweep.points.push_back({"only", ScenarioConfig{}});
    ScenarioResult r = result_for("only", 10, 5);
    r.shard_ticks_executed = {3000, 1000};

    std::ostringstream os;
    write_report(os, sweep, {r});
    const std::string report = os.str();
    EXPECT_NE(report.find("| `only` | 0 | 3000 | 75.0 % | – |"),
              std::string::npos);
    EXPECT_NE(report.find("| `only` | 1 | 1000 | 25.0 % | – |"),
              std::string::npos);
}

TEST(ReportRendering, UnshardedResultsRenderNoPartitionSection) {
    // Single-shard results carry one-element tick arrays; the section must
    // stay absent so legacy report bytes are untouched.
    auto [sweep, results] = matrix_fixture();
    for (ScenarioResult& r : results) { r.shard_ticks_executed = {1234}; }
    std::ostringstream os;
    write_report(os, sweep, results);
    EXPECT_EQ(os.str().find("Partition balance"), std::string::npos);
}

TEST(ReportRendering, UnprofiledResultsRenderNoAttributionSection) {
    const auto [sweep, results] = matrix_fixture();
    std::ostringstream os;
    write_report(os, sweep, results);
    EXPECT_EQ(os.str().find("Cycle attribution"), std::string::npos);
}

TEST(ReportRendering, MonitoredSweepsRenderCoverageAndDistributions) {
    const auto [sweep, results] = monitored_fixture();
    std::ostringstream os;
    write_report(os, sweep, results);
    const std::string report = os.str();

    EXPECT_NE(report.find("## Detection coverage"), std::string::npos);
    EXPECT_NE(report.find("| `1atk/hog/none` | 1 | 1 | 0 | 0 | 1024 | occ |"),
              std::string::npos)
        << "attack cell row: 1 hostile, detected, ttd, firing signal";
    EXPECT_NE(report.find("| `0atk/hog/none` | 0 | 0 | 0 | 0 | – | - |"),
              std::string::npos)
        << "clean cell row stays all-zero";
    EXPECT_NE(report.find("Detected 1/1 attack cells (100.0 %)"),
              std::string::npos);
    EXPECT_NE(report.find("0 on 1 no-attack points"), std::string::npos);

    EXPECT_NE(report.find("## Per-manager latency distributions"),
              std::string::npos);
    EXPECT_NE(report.find("| point | manager | p50 | p99 | p99.9 | occ | "
                          "flagged | signals | ttd [cyc] |"),
              std::string::npos);
    EXPECT_NE(
        report.find("| `1atk/hog/none` | core | 40 | 160 | 200 | 0.85 | no | - | – |"),
        std::string::npos)
        << "the victim row always renders first";
    EXPECT_NE(
        report.find("| `1atk/hog/none` | dma1 | 11 | 90 | 120 | 1.99 | yes | occ | 1024 |"),
        std::string::npos)
        << "the loudest (highest-P99) DMA fills the capped second row";
    EXPECT_EQ(report.find("| dma0 |"), std::string::npos)
        << "the quiet DMA falls to the report_managers cap";
    EXPECT_NE(report.find("2 manager rows omitted"), std::string::npos);
}

TEST(ReportRendering, UnmonitoredResultsRenderNoMonitorSections) {
    const auto [sweep, results] = matrix_fixture();
    std::ostringstream os;
    write_report(os, sweep, results);
    EXPECT_EQ(os.str().find("Detection coverage"), std::string::npos);
    EXPECT_EQ(os.str().find("Per-manager"), std::string::npos);
}

// --- Adversarial-search section (golden) -------------------------------------

TEST(SearchReport, WorstFoundVsWorstEnumeratedGolden) {
    SearchSummary summary;
    summary.sweep = "mesh-dos-smoke";
    summary.base_label = "2atk/hog/none";
    summary.worst_enumerated_label = "2atk/hog/none";
    summary.worst_enumerated_p99 = 1924;
    summary.budget = 2;
    summary.seed = 1;

    SearchOutcome outcome;
    SearchEval mild; // all-zeros genome: the gentlest decodable pattern
    mild.result = result_for(traffic::to_label(mild.genome), 120, 50);
    mild.result.load_lat_p99 = 100;
    mild.objective = 100;
    SearchEval harsh; // all-0xFF genome: every knob at its ceiling
    harsh.genome.genes.fill(0xFF);
    harsh.result = result_for(traffic::to_label(harsh.genome), 2100, 30);
    harsh.result.load_lat_p99 = 2000;
    harsh.objective = 2000;
    harsh.reused = true;
    outcome.history = {mild, harsh};
    outcome.best = 1;
    outcome.fresh = 1;
    outcome.reused = 1;

    std::ostringstream os;
    write_search_report(os, summary, outcome);
    EXPECT_EQ(os.str(),
              "## Adversarial search: 2atk/hog/none\n"
              "\n"
              "Sweep `mesh-dos-smoke`, budget 2 evaluations (1 replayed from "
              "checkpoint), search seed 1. Objective: victim P99 load latency.\n"
              "\n"
              "| attacker | victim P99 (cycles) | worst case (cycles) | point |\n"
              "|---|---:|---:|---|\n"
              "| worst enumerated | 1924 | - | `2atk/hog/none` |\n"
              "| **worst found** | **2000** | 2100 | "
              "`inj:ffffffffffffffffffffffff` |\n"
              "\n"
              "Winning genome `inj:ffffffffffffffffffffffff` decodes to: "
              "256-beat reads / 256-beat writes, 16/16 writes, strided walk "
              "(stride 8), duty 64/448, W stall 60, head delay 96, outstanding "
              "4, ramp 31, window span>>3. Replay: rerun the cell with this "
              "label as the genome.\n"
              "\n"
              "| rank | genome | victim P99 | worst case | source |\n"
              "|---:|---|---:|---:|---|\n"
              "| 1 | `inj:ffffffffffffffffffffffff` | 2000 | 2100 | checkpoint |\n"
              "| 2 | `inj:000000000000000000000000` | 100 | 120 | simulated |\n"
              "\n");
}

TEST(SearchReport, GridReportsAreUntouchedWhenSearchIsOff) {
    // The search section is a *separate* writer: rendering a sweep through
    // `write_report` must never emit it, so existing report bytes are
    // identical whether or not the search feature exists.
    const auto [sweep, results] = matrix_fixture();
    std::ostringstream os;
    write_report(os, sweep, results);
    EXPECT_EQ(os.str().find("Adversarial search"), std::string::npos);
    EXPECT_EQ(os.str().find("worst found"), std::string::npos);
}

// --- File writer -------------------------------------------------------------

TEST(ReportRendering, WriteReportFileRoundTrips) {
    const auto [sweep, results] = matrix_fixture();
    const std::string path = "report_roundtrip.md";
    ASSERT_TRUE(write_report_file(path, sweep, results));
    std::ifstream in{path};
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::ostringstream os;
    write_report(os, sweep, results);
    EXPECT_EQ(buf.str(), os.str());
    std::remove(path.c_str());
}

} // namespace
} // namespace realm::scenario
