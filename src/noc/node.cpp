#include "noc/node.hpp"

#include "sim/check.hpp"

#include <utility>

namespace realm::noc {

NocNode::NocNode(sim::SimContext& ctx, std::string name, NodeId node_id,
                 NodeId num_nodes, ic::AddrMap map, axi::AxiChannel* local_mgr,
                 std::vector<axi::AxiChannel*> egress, NocLink& req_in,
                 NocLink& req_out, NocLink& rsp_in, NocLink& rsp_out,
                 const NocFlowConfig& fc, CreditBook* book)
    : Component{ctx, std::move(name)},
      id_{node_id},
      map_{std::move(map)},
      local_mgr_{local_mgr},
      egress_{std::move(egress)},
      req_in_{&req_in},
      req_out_{&req_out},
      rsp_in_{&rsp_in},
      rsp_out_{&rsp_out},
      ni_{ctx, this->name(), num_nodes, fc, book} {
    // Activity-aware kernel wiring: everything this node consumes wakes it.
    // Each ring link has exactly one consumer (the next node downstream), so
    // claiming the push hook here is safe.
    req_in.set_wake_on_push(this);
    rsp_in.set_wake_on_push(this);
    if (local_mgr_ != nullptr) { local_mgr_->wake_subordinate_on_request(*this); }
    for (axi::AxiChannel* ch : egress_) {
        if (ch != nullptr) { ch->wake_manager_on_response(*this); }
    }
}

void NocNode::reset() {
    ni_.reset();
    injected_ = 0;
    ejected_ = 0;
    forwarded_ = 0;
    ring_stalls_ = 0;
}

void NocNode::ring_hop(NocLink& in, NocLink& out, bool request_ring) {
    if (!in.can_pop()) { return; }
    const NocPacket& pkt = in.front();
    if (pkt.dest == id_) {
        const bool ok = request_ring ? ni_.try_eject_request(pkt, egress_)
                                     : ni_.try_eject_response(pkt, local_mgr_);
        if (ok) {
            (void)in.pop();
            ++ejected_;
        } else {
            ++ring_stalls_;
        }
        return;
    }
    if (out.can_push(pkt)) {
        out.push(in.pop());
        ++forwarded_;
    } else {
        ++ring_stalls_;
    }
}

void NocNode::inject_requests() {
    if (local_mgr_ == nullptr) { return; }
    // Single-lane ring: every destination leaves through the one request
    // link; the NI supplies the worm length so the link can gate on
    // serialization and VC space.
    if (ni_.inject_requests(id_, *local_mgr_, map_,
                            [this](NodeId, std::uint32_t flits,
                                   std::uint8_t vc) {
                                return req_out_->can_push(flits, vc) ? req_out_
                                                                     : nullptr;
                            })) {
        ++injected_;
    }
}

void NocNode::inject_responses() {
    if (egress_.empty()) { return; }
    if (ni_.inject_responses(id_, egress_,
                             [this](NodeId, std::uint32_t flits,
                                    std::uint8_t vc) {
                                 return rsp_out_->can_push(flits, vc) ? rsp_out_
                                                                      : nullptr;
                             })) {
        ++injected_;
    }
}

void NocNode::tick() {
    ni_.drain_response_stash(local_mgr_);
    ring_hop(*rsp_in_, *rsp_out_, /*request_ring=*/false);
    ring_hop(*req_in_, *req_out_, /*request_ring=*/true);
    inject_responses();
    inject_requests();
    update_activity();
}

void NocNode::update_activity() {
    // Conservative idle contract: every tick is a no-op iff nothing this
    // node consumes holds a flit. Uses `empty()`, not `can_pop()`: a flit
    // pushed this cycle is not yet poppable but does need us next cycle.
    // Pending W routing state, same-ID ordering stalls, and credit waits
    // (owned by `ni_`) only progress while a flit is held somewhere we
    // drain from, all of which arrive through wired links; a link's
    // serialization window expiring enables no new work by itself.
    if (!req_in_->empty() || !rsp_in_->empty()) { return; }
    if (local_mgr_ != nullptr && !local_mgr_->requests_empty()) { return; }
    for (const axi::AxiChannel* ch : egress_) {
        if (ch != nullptr && !ch->responses_empty()) { return; }
    }
    if (ni_.has_stashed_responses()) { return; }
    idle_forever();
}

} // namespace realm::noc
