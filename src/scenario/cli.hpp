/// \file
/// \brief Shared command-line handling for the scenario-driven benches:
///        `--threads N`, `--json PATH`, `--report PATH`, `--resume`,
///        `--diff BASELINE.json [--diff-threshold F] [--diff-slack N]`
///        `[--speed-threshold F] [--speed-slack C]`,
///        `--scheduler tick-all|activity`, `--shards N`,
///        `--routing xy|yx|o1turn|west-first`, `--profile`, `--list`, and the
///        monitoring plane: `--monitors` with `--mon-timeout C`,
///        `--mon-stall C`, `--mon-window C`, `--mon-bw F`, `--mon-held F`,
///        `--mon-occ F`.
#pragma once

#include "noc/routing.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"

#include "sim/context.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace realm::scenario {

struct BenchOptions {
    RunnerOptions runner{};
    std::string json_path;
    /// Rendered markdown report (`--report PATH.md`) — the reviewable CI
    /// artifact complementing the machine-readable JSON dump.
    std::string report_path;
    /// With `--json`: reuse results from an existing dump at the same path
    /// for points whose config hash matches (sweep-level resume).
    bool resume = false;
    /// Report-to-report regression gate: compare each point's worst-case
    /// victim latency against a previous run's JSON dump (keyed by label)
    /// and make the bench exit non-zero past the threshold.
    std::string diff_path;
    double diff_threshold = 0.10;  ///< fractional growth allowed per cell
    std::uint64_t diff_slack = 50; ///< plus this many absolute cycles
    /// Host-speed gate on top of `--diff`: fail when a point simulates
    /// slower than `baseline_speed * (1 - speed_threshold)` and slower than
    /// `baseline_speed - speed_slack` cycles/sec. 0 disables the gate
    /// (default — CI enables it explicitly on dedicated runners, since
    /// host speed is meaningless to compare across machines).
    double speed_threshold = 0.0;
    double speed_slack = 50'000.0; ///< absolute cycles/sec jitter allowance
    sim::Scheduler scheduler = sim::Scheduler::kActivity;
    bool scheduler_forced = false; ///< --scheduler given on the command line
    /// `--shards N`: spatial shards of the simulation kernel, forced onto
    /// every point (bit-identical results for every value; see
    /// sim/context.hpp). 1 keeps the single-thread kernel.
    unsigned shards = 1;
    bool shards_forced = false; ///< --shards given on the command line
    /// `--routing`: force one mesh routing policy on every point (handy for
    /// re-running a whole matrix under one policy without a new sweep).
    std::optional<noc::RoutingPolicy> routing;
    /// `--link-latency L`: force a uniform L-cycle link pipeline on every
    /// NoC point (semantic — changes results and the config hash). On the
    /// mesh this is also the sharded kernel's barrier batch length.
    std::optional<std::uint32_t> link_latency;
    /// `--partition stripe|balanced`: tile -> shard policy for mesh points
    /// (host-side only; bit-identical either way).
    std::optional<PartitionPolicy> partition;
    /// `--partition-profile PATH`: feed a previous `--profile --json` dump's
    /// cycle-attribution rows to the balanced partitioner's weight model.
    std::string partition_profile_path;
    /// `--profile`: arm the cycle-attribution profiler on every point; the
    /// per-(type, shard) wall-time table lands in the JSON dump and the
    /// markdown report. Host-side observability only (excluded from
    /// `config_hash`), so it composes with `--resume` — though reused
    /// points carry no profile, having never re-run.
    bool profile = false;
    /// `--monitors`: enable the transaction-monitoring plane on every point.
    bool monitors = false;
    /// Threshold overrides applied to every point (with or without
    /// `--monitors`, so a sweep that enables monitors itself is tunable too).
    std::optional<sim::Cycle> mon_timeout;
    std::optional<sim::Cycle> mon_stall;
    std::optional<sim::Cycle> mon_window;
    std::optional<double> mon_bw;
    std::optional<double> mon_held;
    std::optional<double> mon_occ;
    /// Non-flag arguments, in order (e.g. sweep names for `scenario_sweep`).
    std::vector<std::string> positional;
};

/// Parses the common bench flags; prints usage and exits on error/--help,
/// lists registered sweeps and exits on --list. Non-flag arguments are
/// collected into `positional` only when `accept_positional` is set;
/// otherwise they are rejected as before.
inline BenchOptions parse_bench_args(int argc, char** argv,
                                     bool accept_positional = false) {
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto need_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--threads" || arg == "-j") {
            const char* value = need_value("--threads");
            char* end = nullptr;
            const unsigned long n = std::strtoul(value, &end, 10);
            if (end == value || *end != '\0') {
                std::fprintf(stderr, "--threads expects a number, got '%s'\n", value);
                std::exit(2);
            }
            opts.runner.threads = static_cast<unsigned>(n);
        } else if (arg == "--json") {
            opts.json_path = need_value("--json");
        } else if (arg == "--report") {
            opts.report_path = need_value("--report");
        } else if (arg == "--resume") {
            opts.resume = true;
        } else if (arg == "--diff") {
            opts.diff_path = need_value("--diff");
        } else if (arg == "--diff-threshold") {
            const char* value = need_value("--diff-threshold");
            char* end = nullptr;
            opts.diff_threshold = std::strtod(value, &end);
            if (end == value || *end != '\0' || opts.diff_threshold < 0.0) {
                std::fprintf(stderr, "--diff-threshold expects a non-negative "
                                     "fraction, got '%s'\n", value);
                std::exit(2);
            }
        } else if (arg == "--diff-slack") {
            const char* value = need_value("--diff-slack");
            char* end = nullptr;
            opts.diff_slack = std::strtoull(value, &end, 10);
            if (end == value || *end != '\0') {
                std::fprintf(stderr, "--diff-slack expects a cycle count, got '%s'\n",
                             value);
                std::exit(2);
            }
        } else if (arg == "--speed-threshold") {
            const char* value = need_value("--speed-threshold");
            char* end = nullptr;
            opts.speed_threshold = std::strtod(value, &end);
            if (end == value || *end != '\0' || opts.speed_threshold < 0.0 ||
                opts.speed_threshold >= 1.0) {
                std::fprintf(stderr, "--speed-threshold expects a fraction in "
                                     "[0, 1), got '%s'\n", value);
                std::exit(2);
            }
        } else if (arg == "--speed-slack") {
            const char* value = need_value("--speed-slack");
            char* end = nullptr;
            opts.speed_slack = std::strtod(value, &end);
            if (end == value || *end != '\0' || opts.speed_slack < 0.0) {
                std::fprintf(stderr, "--speed-slack expects a non-negative "
                                     "cycles/sec count, got '%s'\n", value);
                std::exit(2);
            }
        } else if (arg == "--shards") {
            const char* value = need_value("--shards");
            char* end = nullptr;
            const unsigned long n = std::strtoul(value, &end, 10);
            if (end == value || *end != '\0' || n == 0 || n > 64) {
                std::fprintf(stderr, "--shards expects a count in [1, 64], got '%s'\n",
                             value);
                std::exit(2);
            }
            opts.shards = static_cast<unsigned>(n);
            opts.shards_forced = true;
        } else if (arg == "--scheduler") {
            const std::string v = need_value("--scheduler");
            if (v == "tick-all" || v == "tickall") {
                opts.scheduler = sim::Scheduler::kTickAll;
            } else if (v == "activity") {
                opts.scheduler = sim::Scheduler::kActivity;
            } else {
                std::fprintf(stderr, "unknown scheduler '%s'\n", v.c_str());
                std::exit(2);
            }
            opts.scheduler_forced = true;
        } else if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--monitors") {
            opts.monitors = true;
        } else if (arg == "--mon-timeout" || arg == "--mon-stall" ||
                   arg == "--mon-window") {
            const std::string flag = arg;
            const char* value = need_value(flag.c_str());
            char* end = nullptr;
            const unsigned long long n = std::strtoull(value, &end, 10);
            if (end == value || *end != '\0' || n == 0) {
                std::fprintf(stderr, "%s expects a positive cycle count, got '%s'\n",
                             flag.c_str(), value);
                std::exit(2);
            }
            if (flag == "--mon-timeout") {
                opts.mon_timeout = n;
            } else if (flag == "--mon-stall") {
                opts.mon_stall = n;
            } else {
                opts.mon_window = n;
            }
        } else if (arg == "--mon-bw" || arg == "--mon-held" || arg == "--mon-occ") {
            const std::string flag = arg;
            const char* value = need_value(flag.c_str());
            char* end = nullptr;
            const double f = std::strtod(value, &end);
            if (end == value || *end != '\0' || f < 0.0) {
                std::fprintf(stderr, "%s expects a non-negative number, got '%s'\n",
                             flag.c_str(), value);
                std::exit(2);
            }
            if (flag == "--mon-bw") {
                opts.mon_bw = f;
            } else if (flag == "--mon-held") {
                opts.mon_held = f;
            } else {
                opts.mon_occ = f;
            }
        } else if (arg == "--link-latency") {
            const char* value = need_value("--link-latency");
            char* end = nullptr;
            const unsigned long n = std::strtoul(value, &end, 10);
            if (end == value || *end != '\0' || n == 0 || n > 64) {
                std::fprintf(stderr,
                             "--link-latency expects a cycle count in [1, 64], "
                             "got '%s'\n", value);
                std::exit(2);
            }
            opts.link_latency = static_cast<std::uint32_t>(n);
        } else if (arg == "--partition") {
            const std::string v = need_value("--partition");
            if (v == "stripe") {
                opts.partition = PartitionPolicy::kStripe;
            } else if (v == "balanced") {
                opts.partition = PartitionPolicy::kBalanced;
            } else {
                std::fprintf(stderr,
                             "unknown partition policy '%s' (stripe|balanced)\n",
                             v.c_str());
                std::exit(2);
            }
        } else if (arg == "--partition-profile") {
            opts.partition_profile_path = need_value("--partition-profile");
        } else if (arg == "--routing") {
            const std::string v = need_value("--routing");
            const auto policy = noc::parse_routing_policy(v);
            if (!policy.has_value()) {
                std::fprintf(stderr,
                             "unknown routing policy '%s' (xy|yx|o1turn|west-first)\n",
                             v.c_str());
                std::exit(2);
            }
            opts.routing = *policy;
        } else if (arg == "--list") {
            for (const std::string& name : sweep_names()) {
                std::printf("%s\n", name.c_str());
            }
            std::exit(0);
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s %s[--threads N] [--shards N] [--json PATH] "
                        "[--report PATH.md] [--resume] [--diff BASELINE.json] "
                        "[--diff-threshold F] [--diff-slack N] "
                        "[--speed-threshold F] [--speed-slack C] "
                        "[--scheduler tick-all|activity] "
                        "[--routing xy|yx|o1turn|west-first] [--link-latency L] "
                        "[--partition stripe|balanced] "
                        "[--partition-profile PROFILE.json] [--profile] "
                        "[--monitors] [--mon-timeout C] [--mon-stall C] "
                        "[--mon-window C] [--mon-bw F] [--mon-held F] [--mon-occ F] "
                        "[--list]\n",
                        argv[0], accept_positional ? "[sweep...] " : "");
            std::exit(0);
        } else if (accept_positional && !arg.empty() && arg[0] != '-') {
            opts.positional.push_back(arg);
        } else {
            std::fprintf(stderr, "unknown argument '%s' (try --help)\n", arg.c_str());
            std::exit(2);
        }
    }
    if (opts.resume && opts.json_path.empty()) {
        std::fprintf(stderr, "--resume requires --json PATH\n");
        std::exit(2);
    }
    return opts;
}

/// Applies CLI overrides (scheduler, shards, mesh routing policy) to every
/// point.
inline void apply_overrides(const BenchOptions& opts, Sweep& sweep) {
    // Loaded once per sweep: the rows feed every balanced point's weight
    // model (empty when the flag is absent or the file is unreadable).
    const std::vector<ProfileRow> profile_rows =
        opts.partition_profile_path.empty()
            ? std::vector<ProfileRow>{}
            : load_profile_rows(opts.partition_profile_path);
    if (!opts.partition_profile_path.empty() && profile_rows.empty()) {
        std::fprintf(stderr, "warning: --partition-profile %s has no profile "
                             "rows; balanced partition falls back to the "
                             "static weight model\n",
                     opts.partition_profile_path.c_str());
    }
    for (SweepPoint& p : sweep.points) {
        if (opts.scheduler_forced) { p.config.scheduler = opts.scheduler; }
        if (opts.shards_forced) { p.config.shards = opts.shards; }
        if (opts.routing.has_value()) {
            p.config.topology.mesh.routing = *opts.routing;
        }
        if (opts.link_latency.has_value()) {
            p.config.topology.ring.link_latency = *opts.link_latency;
            p.config.topology.mesh.link_latency = *opts.link_latency;
        }
        if (opts.partition.has_value()) { p.config.partition = *opts.partition; }
        if (!profile_rows.empty()) { p.config.partition_profile = profile_rows; }
        if (opts.profile) { p.config.profile = true; }
        if (opts.monitors) { p.config.monitors.enabled = true; }
        if (opts.mon_timeout) {
            p.config.monitors.thresholds.timeout_cycles = *opts.mon_timeout;
        }
        if (opts.mon_stall) {
            p.config.monitors.thresholds.stall_cycles = *opts.mon_stall;
        }
        if (opts.mon_window) {
            p.config.monitors.thresholds.window_cycles = *opts.mon_window;
        }
        if (opts.mon_bw) { p.config.monitors.thresholds.bw_threshold = *opts.mon_bw; }
        if (opts.mon_held) {
            p.config.monitors.thresholds.held_threshold = *opts.mon_held;
        }
        if (opts.mon_occ) { p.config.monitors.thresholds.occ_threshold = *opts.mon_occ; }
    }
}

/// Runs a sweep under the CLI options and optionally writes the JSON dump.
/// Points that failed to boot or timed out are flagged on stderr so a
/// garbage table row never passes silently.
inline std::vector<ScenarioResult> run_with_options(const BenchOptions& opts,
                                                    Sweep& sweep) {
    apply_overrides(opts, sweep);
    const ScenarioRunner runner{opts.runner};
    std::vector<ScenarioResult> results;
    if (opts.resume) {
        std::size_t reused = 0;
        results = runner.run_resumed(sweep, opts.json_path, &reused);
        std::fprintf(stderr, "%s: reused %zu/%zu points from %s\n",
                     sweep.name.c_str(), reused, sweep.points.size(),
                     opts.json_path.c_str());
    } else {
        results = runner.run(sweep);
    }
    for (const ScenarioResult& r : results) {
        if (!r.boot_ok) {
            std::fprintf(stderr, "%s: boot script did not complete\n", r.label.c_str());
        } else if (r.timed_out) {
            std::fprintf(stderr, "%s: experiment timed out after %llu cycles\n",
                         r.label.c_str(),
                         static_cast<unsigned long long>(r.run_cycles));
        }
    }
    if (!opts.json_path.empty() &&
        !write_json_file(opts.json_path, sweep, results)) {
        // The JSON artifact was explicitly requested; a consumer checking
        // only the exit code must not read a stale or missing file.
        std::fprintf(stderr, "failed to write JSON to %s\n", opts.json_path.c_str());
        std::exit(3);
    }
    if (!opts.report_path.empty() &&
        !write_report_file(opts.report_path, sweep, results)) {
        std::fprintf(stderr, "failed to write report to %s\n",
                     opts.report_path.c_str());
        std::exit(3);
    }
    return results;
}

/// Runs the `--diff` regression gate against the baseline dump and prints
/// one line per regressed (or new) cell. Returns the process exit code
/// contribution: 0 when clean, 4 when any cell regressed past the
/// threshold, 5 when the baseline had no comparable points at all (a diff
/// against nothing must not pass silently).
inline int check_diff(const BenchOptions& opts, const Sweep& sweep,
                      const std::vector<ScenarioResult>& results) {
    if (opts.diff_path.empty()) { return 0; }
    const DiffReport diff = diff_against_baseline(opts.diff_path, results,
                                                  opts.diff_threshold,
                                                  opts.diff_slack,
                                                  opts.speed_threshold,
                                                  opts.speed_slack);
    for (const DiffEntry& e : diff.entries) {
        if (e.missing_in_baseline) {
            std::fprintf(stderr, "%s: diff: '%s' not in baseline (new point)\n",
                         sweep.name.c_str(), e.label.c_str());
            continue;
        }
        if (e.regressed) {
            std::fprintf(stderr,
                         "%s: diff REGRESSION: '%s' worst-case victim latency "
                         "%llu -> %llu cycles (threshold %+.0f%% + %llu)\n",
                         sweep.name.c_str(), e.label.c_str(),
                         static_cast<unsigned long long>(e.baseline_worst),
                         static_cast<unsigned long long>(e.current_worst),
                         opts.diff_threshold * 100.0,
                         static_cast<unsigned long long>(opts.diff_slack));
        }
        if (e.speed_regressed) {
            std::fprintf(stderr,
                         "%s: diff SPEED REGRESSION: '%s' host speed "
                         "%.3g -> %.3g sim cycles/sec (threshold -%.0f%% - %.3g)\n",
                         sweep.name.c_str(), e.label.c_str(), e.baseline_speed,
                         e.current_speed, opts.speed_threshold * 100.0,
                         opts.speed_slack);
        }
    }
    if (diff.compared == 0) {
        std::fprintf(stderr, "%s: diff: baseline %s has no comparable points\n",
                     sweep.name.c_str(), opts.diff_path.c_str());
        return 5;
    }
    std::fprintf(stderr, "%s: diff vs %s: %zu/%zu cells compared, %zu regression%s\n",
                 sweep.name.c_str(), opts.diff_path.c_str(), diff.compared,
                 results.size(), diff.regressions,
                 diff.regressions == 1 ? "" : "s");
    if (opts.speed_threshold > 0.0) {
        if (diff.speed_compared == 0) {
            // A speed gate with nothing to compare must not read as a pass:
            // it degrades to a loud warning (the latency gate still ran, so
            // this is not the exit-5 "diff against nothing" case).
            std::fprintf(stderr,
                         "%s: diff speed gate WARNING: no usable baseline "
                         "speeds in %s — gate skipped, not passed\n",
                         sweep.name.c_str(), opts.diff_path.c_str());
        } else {
            std::fprintf(stderr,
                         "%s: diff speed gate: %zu/%zu cells compared, "
                         "%zu speed regression%s\n",
                         sweep.name.c_str(), diff.speed_compared, results.size(),
                         diff.speed_regressions,
                         diff.speed_regressions == 1 ? "" : "s");
        }
    }
    return diff.ok() && diff.speed_ok() ? 0 : 4;
}

} // namespace realm::scenario
