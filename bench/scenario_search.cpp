/// \file
/// \brief Adversarial interference search bench: runs an enumerated DoS
///        sweep, then searches `InjectorGenome` space against one of its
///        cells, maximizing victim P99 load latency.
///
/// The enumerated grid gives "worst enumerated"; the search prints "worst
/// found" beside it plus the winning genome's label, so any discovered
/// attack is replayable as a fixed scenario. The `--json` dump doubles as
/// the search checkpoint (`--resume` replays cached evaluations via
/// `config_hash`), `--report` appends the search section to the grid
/// report, and `--diff` gates the stable `worst-found` point against a
/// previous run — CI's proof that each defense still bounds the victim
/// under the *searched* worst case, not just the enumerated one.
///
/// Search flags (on top of the shared bench flags):
///   --search-budget N   total evaluations, cached hits included (default 32)
///   --search-seed N     search-RNG seed (default 1)
///   --population N      λ: candidates per generation (default 8)
///   --parents N         μ: elite pool bred from (default 4)
///   --cell LABEL        grid cell to attack (default: worst enumerated)
///   --grid-json PATH    enumerated grid dump, resumed when present
#include "scenario/cli.hpp"
#include "scenario/search.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace {

/// Splits the search-specific flags out of argv so the remainder can go
/// through the shared `parse_bench_args` (which rejects unknown flags).
struct SearchArgs {
    realm::scenario::SearchOptions search{};
    std::string cell;
    std::string grid_json;
    std::vector<char*> rest;
};

SearchArgs split_args(int argc, char** argv) {
    SearchArgs out;
    out.rest.push_back(argv[0]);
    const auto need_value = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s requires a value\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };
    const auto parse_count = [](const char* flag, const char* value) {
        char* end = nullptr;
        const unsigned long long n = std::strtoull(value, &end, 10);
        if (end == value || *end != '\0' || n == 0) {
            std::fprintf(stderr, "%s expects a positive count, got '%s'\n", flag,
                         value);
            std::exit(2);
        }
        return n;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--search-budget") {
            out.search.budget = parse_count("--search-budget",
                                            need_value(i, "--search-budget"));
        } else if (arg == "--search-seed") {
            out.search.seed = parse_count("--search-seed",
                                          need_value(i, "--search-seed"));
        } else if (arg == "--population") {
            out.search.population =
                parse_count("--population", need_value(i, "--population"));
        } else if (arg == "--parents") {
            out.search.parents = parse_count("--parents", need_value(i, "--parents"));
        } else if (arg == "--cell") {
            out.cell = need_value(i, "--cell");
        } else if (arg == "--grid-json") {
            out.grid_json = need_value(i, "--grid-json");
        } else {
            out.rest.push_back(argv[i]);
        }
    }
    return out;
}

} // namespace

int main(int argc, char** argv) {
    using namespace realm::scenario;
    SearchArgs sargs = split_args(argc, argv);
    const BenchOptions opts =
        parse_bench_args(static_cast<int>(sargs.rest.size()), sargs.rest.data(),
                         /*accept_positional=*/true);

    const std::string sweep_name =
        opts.positional.empty() ? "mesh-dos-smoke" : opts.positional.front();
    if (!has_sweep(sweep_name)) {
        std::fprintf(stderr, "unknown sweep '%s' (try --list)\n", sweep_name.c_str());
        return 2;
    }

    std::printf("== Adversarial interference search over '%s' ==\n",
                sweep_name.c_str());

    // Phase 1: the enumerated grid (resumable via its own dump).
    Sweep sweep = make_sweep(sweep_name);
    apply_overrides(opts, sweep);
    const ScenarioRunner runner{opts.runner};
    std::vector<ScenarioResult> grid;
    if (!sargs.grid_json.empty()) {
        std::size_t reused = 0;
        grid = runner.run_resumed(sweep, sargs.grid_json, &reused);
        std::fprintf(stderr, "%s: grid: reused %zu/%zu points from %s\n",
                     sweep_name.c_str(), reused, sweep.points.size(),
                     sargs.grid_json.c_str());
        if (!write_json_file(sargs.grid_json, sweep, grid)) {
            std::fprintf(stderr, "failed to write grid JSON to %s\n",
                         sargs.grid_json.c_str());
            return 3;
        }
    } else {
        grid = runner.run(sweep);
    }

    // Worst enumerated attack cell by the search objective; also the
    // default search target. Baselines (no interference) never qualify.
    std::size_t worst = sweep.points.size();
    std::size_t target = sweep.points.size();
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
        if (sweep.points[i].config.interference.empty()) { continue; }
        if (worst == sweep.points.size() ||
            search_objective(grid[i]) > search_objective(grid[worst])) {
            worst = i;
        }
        if (!sargs.cell.empty() && sweep.points[i].label == sargs.cell) {
            target = i;
        }
    }
    if (worst == sweep.points.size()) {
        std::fprintf(stderr, "sweep '%s' has no attack cells to search\n",
                     sweep_name.c_str());
        return 2;
    }
    if (sargs.cell.empty()) {
        target = worst;
    } else if (target == sweep.points.size()) {
        std::fprintf(stderr, "--cell '%s' does not name an attack cell of '%s'\n",
                     sargs.cell.c_str(), sweep_name.c_str());
        return 2;
    }

    // Phase 2: the search. The --json dump is the checkpoint; without
    // --resume any stale dump is discarded so the search starts fresh.
    SearchOptions search = sargs.search;
    search.threads = opts.runner.threads;
    search.checkpoint_path = opts.json_path;
    if (!opts.resume && !opts.json_path.empty()) {
        std::remove(opts.json_path.c_str());
    }
    std::printf("searching cell '%s' (budget %zu, seed %llu, %zu+%zu)\n",
                sweep.points[target].label.c_str(), search.budget,
                static_cast<unsigned long long>(search.seed), search.parents,
                search.population);
    const SearchOutcome outcome =
        search_worst_case(sweep.points[target].config, search);
    const SearchEval& win = outcome.winner();

    SearchSummary summary;
    summary.sweep = sweep_name;
    summary.base_label = sweep.points[target].label;
    summary.worst_enumerated_label = sweep.points[worst].label;
    summary.worst_enumerated_p99 = search_objective(grid[worst]);
    summary.budget = search.budget;
    summary.seed = search.seed;

    // Rewrite the checkpoint with the stable `worst-found` point appended —
    // the label the cross-run --diff gate keys on (genome labels churn
    // between runs; the gate must not).
    if (!opts.json_path.empty()) {
        Sweep ck;
        ck.name = "search";
        ck.title = "adversarial search checkpoint: " + summary.base_label;
        std::vector<ScenarioResult> results;
        for (const SearchEval& e : outcome.history) {
            ck.points.push_back({realm::traffic::to_label(e.genome),
                                 genome_scenario(sweep.points[target].config,
                                                 e.genome)});
            results.push_back(e.result);
        }
        ck.points.push_back({"worst-found",
                             genome_scenario(sweep.points[target].config,
                                             win.genome)});
        ScenarioResult relabeled = win.result;
        relabeled.label = "worst-found";
        results.push_back(relabeled);
        if (!write_json_file(opts.json_path, ck, results)) {
            std::fprintf(stderr, "failed to write JSON to %s\n",
                         opts.json_path.c_str());
            return 3;
        }
    }

    if (!opts.report_path.empty()) {
        std::ofstream os{opts.report_path};
        if (!os) {
            std::fprintf(stderr, "failed to write report to %s\n",
                         opts.report_path.c_str());
            return 3;
        }
        write_report(os, sweep, grid);
        write_search_report(os, summary, outcome);
    }

    std::printf("worst_enumerated_p99=%llu cell=%s\n",
                static_cast<unsigned long long>(summary.worst_enumerated_p99),
                summary.worst_enumerated_label.c_str());
    std::printf("worst_found_p99=%llu genome=%s (worst case %llu cycles, "
                "%zu simulated + %zu replayed)\n",
                static_cast<unsigned long long>(win.objective),
                realm::traffic::to_label(win.genome).c_str(),
                static_cast<unsigned long long>(
                    worst_case_victim_latency(win.result)),
                outcome.fresh, outcome.reused);

    // Cross-run regression gate on the searched worst case.
    ScenarioResult gated = win.result;
    gated.label = "worst-found";
    Sweep gate_sweep;
    gate_sweep.name = "search:" + summary.base_label;
    return check_diff(opts, gate_sweep, {gated});
}
