#include "mem/sparse_memory.hpp"

#include <algorithm>
#include <cstring>

namespace realm::mem {

const SparseMemory::Page* SparseMemory::find_page(axi::Addr page_index) const noexcept {
    const auto it = pages_.find(page_index);
    return it == pages_.end() ? nullptr : &it->second;
}

SparseMemory::Page& SparseMemory::touch_page(axi::Addr page_index) {
    return pages_[page_index]; // value-initialized (zeroed) on first touch
}

void SparseMemory::read(axi::Addr addr, std::span<std::uint8_t> out) const {
    std::size_t done = 0;
    while (done < out.size()) {
        const axi::Addr cur = addr + done;
        const axi::Addr page_index = cur / kPageBytes;
        const std::size_t offset = static_cast<std::size_t>(cur % kPageBytes);
        const std::size_t chunk = std::min(out.size() - done, kPageBytes - offset);
        if (const Page* page = find_page(page_index)) {
            std::memcpy(out.data() + done, page->data() + offset, chunk);
        } else {
            std::memset(out.data() + done, 0, chunk);
        }
        done += chunk;
    }
}

void SparseMemory::write(axi::Addr addr, std::span<const std::uint8_t> in, axi::Strb strb) {
    for (std::size_t i = 0; i < in.size(); ++i) {
        if ((strb >> (i % 64U)) & 1U) {
            const axi::Addr cur = addr + i;
            Page& page = touch_page(cur / kPageBytes);
            page[static_cast<std::size_t>(cur % kPageBytes)] = in[i];
        }
    }
}

std::uint64_t SparseMemory::read_u64(axi::Addr addr) const {
    std::array<std::uint8_t, 8> buf{};
    read(addr, buf);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) { v |= std::uint64_t{buf[i]} << (8 * i); }
    return v;
}

void SparseMemory::write_u64(axi::Addr addr, std::uint64_t value) {
    std::array<std::uint8_t, 8> buf{};
    for (std::size_t i = 0; i < 8; ++i) { buf[i] = static_cast<std::uint8_t>(value >> (8 * i)); }
    write(addr, buf);
}

std::uint8_t SparseMemory::read_u8(axi::Addr addr) const {
    std::uint8_t v = 0;
    read(addr, std::span{&v, 1});
    return v;
}

void SparseMemory::write_u8(axi::Addr addr, std::uint8_t value) {
    write(addr, std::span{&value, 1});
}

} // namespace realm::mem
