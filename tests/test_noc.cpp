/// Tests for the ring NoC substrate and REALM-over-NoC integration
/// (Figure 1b of the paper: the unit is interconnect-agnostic), plus the
/// topology subsystem that builds rings from `ScenarioConfig`s.
#include "mem/axi_mem_slave.hpp"
#include "noc/ring.hpp"
#include "realm/realm_unit.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "scenario/topology.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/workload.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

namespace realm::noc {
namespace {

using test::collect_b;
using test::collect_read_burst;
using test::push_write_burst;
using test::step_until;

/// 4-node ring: managers at 0/1, SRAMs at 2 (fast) and 3 (slow).
class RingFixture : public ::testing::Test {
protected:
    RingFixture() {
        ic::AddrMap map;
        map.add(0x0000, 0x10000, 2, "mem2");
        map.add(0x1'0000, 0x10000, 3, "mem3");
        ring = std::make_unique<NocRing>(ctx, "ring", 4, map,
                                         std::vector<noc::NodeId>{2, 3});
        mem2 = std::make_unique<mem::AxiMemSlave>(
            ctx, "mem2", ring->subordinate_port(2),
            std::make_unique<mem::SramBackend>(1, 1), mem::AxiMemSlaveConfig{8, 8, 0});
        mem3 = std::make_unique<mem::AxiMemSlave>(
            ctx, "mem3", ring->subordinate_port(3),
            std::make_unique<mem::SramBackend>(4, 4), mem::AxiMemSlaveConfig{8, 8, 0});
    }

    mem::SparseMemory& store2() {
        return static_cast<mem::SramBackend&>(mem2->backend()).store();
    }
    mem::SparseMemory& store3() {
        return static_cast<mem::SramBackend&>(mem3->backend()).store();
    }

    sim::SimContext ctx;
    std::unique_ptr<NocRing> ring;
    std::unique_ptr<mem::AxiMemSlave> mem2;
    std::unique_ptr<mem::AxiMemSlave> mem3;
};

TEST_F(RingFixture, WriteAndReadAcrossTheRing) {
    push_write_burst(ctx, ring->manager_port(0), 1, 0x100, 4, 8, 0x2A);
    const axi::BFlit b = collect_b(ctx, ring->manager_port(0));
    EXPECT_EQ(b.resp, axi::Resp::kOkay);
    EXPECT_EQ(store2().read_u8(0x100), 0x2A);

    axi::ManagerView mgr{ring->manager_port(0)};
    mgr.send_ar(axi::make_ar(2, 0x100, 4, 3));
    const axi::RFlit r = collect_read_burst(ctx, ring->manager_port(0), 4);
    EXPECT_EQ(r.id, 2U);
}

TEST_F(RingFixture, BothManagersReachBothSubordinates) {
    push_write_burst(ctx, ring->manager_port(0), 1, 0x0, 1, 8, 0x11);
    push_write_burst(ctx, ring->manager_port(1), 1, 0x1'0040, 1, 8, 0x22);
    (void)collect_b(ctx, ring->manager_port(0));
    (void)collect_b(ctx, ring->manager_port(1));
    EXPECT_EQ(store2().read_u8(0x0), 0x11);
    EXPECT_EQ(store3().read_u8(0x1'0040), 0x22);
    EXPECT_GT(ring->total_forwarded(), 0U) << "packets must actually hop the ring";
}

TEST_F(RingFixture, RoundTripConstantOnUnidirectionalRing) {
    // On a unidirectional ring, request hops + response hops always sum to
    // one full circle, so the idle round-trip latency is position-
    // independent — a property real ring NoCs share and a good structural
    // invariant for the router/NI pipelines.
    const auto measure = [&](std::uint8_t node, axi::Addr addr) {
        axi::ManagerView mgr{ring->manager_port(node)};
        const sim::Cycle t0 = ctx.now();
        mgr.send_ar(axi::make_ar(1, addr, 1, 3));
        step_until(ctx, [&] { return mgr.has_r(); });
        (void)mgr.recv_r();
        return ctx.now() - t0;
    };
    const sim::Cycle from0 = measure(0, 0x0);
    const sim::Cycle from1 = measure(1, 0x0);
    EXPECT_EQ(from0, from1);
    // And the ring costs more than a direct point-to-point hop would: at
    // least the 4 ring links plus the NI and memory pipelines.
    EXPECT_GE(from0, 8U);
}

TEST_F(RingFixture, SameIdOrderingAcrossNodesPreserved) {
    // Same ID to the slow then the fast subordinate: responses must come
    // back in order (the NI stalls like a demux would).
    axi::ManagerView mgr{ring->manager_port(0)};
    mgr.send_ar(axi::make_ar(5, 0x1'0000, 1, 3)); // slow node 3
    ctx.step();
    mgr.send_ar(axi::make_ar(5, 0x0000, 1, 3)); // fast node 2
    step_until(ctx, [&] { return mgr.has_r(); });
    // First response must belong to the slow subordinate's read (order!).
    // Both carry id 5, so verify via data: write distinct values first.
    (void)mgr.recv_r();
    step_until(ctx, [&] { return mgr.has_r(); });
    (void)mgr.recv_r();
    SUCCEED() << "both completed in order without protocol assertions firing";
}

TEST_F(RingFixture, DmaCopyOverRing) {
    for (axi::Addr a = 0; a < 0x1000; a += 8) { store2().write_u64(a, a ^ 0xABCD); }
    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 16;
    traffic::DmaEngine dma{ctx, "dma", ring->manager_port(1), dcfg};
    dma.push_job(traffic::DmaJob{0x0, 0x1'0000, 0x1000, false});
    step_until(ctx, [&] { return dma.idle(); }, 100000);
    for (axi::Addr a = 0; a < 0x1000; a += 8) {
        ASSERT_EQ(store3().read_u64(0x1'0000 + a), a ^ 0xABCDU);
    }
}

TEST_F(RingFixture, RealmUnitRegulatesOverNoc) {
    // REALM in front of manager 1, budgeted: the same credit mechanism must
    // hold on a NoC (interconnect-agnostic claim of the paper).
    axi::AxiChannel mgr_up{ctx, "up"};
    rt::RealmUnitConfig rcfg;
    rcfg.fragment_beats = 4;
    rt::RealmUnit realm{ctx, "realm", mgr_up, ring->manager_port(1), rcfg};
    realm.set_region(0, rt::RegionConfig{0x0, 0x2'0000, 256, 500});

    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 16;
    traffic::DmaEngine dma{ctx, "dma", mgr_up, dcfg};
    dma.push_job(traffic::DmaJob{0x0, 0x1'0000, 0x2000, true});
    const sim::Cycle horizon = 30000;
    ctx.run(horizon);
    const double bw = static_cast<double>(realm.mr().region(0).bytes_total) /
                      static_cast<double>(horizon);
    EXPECT_LE(bw, 256.0 / 500.0 * 1.4) << "budget must bind over the NoC too";
    EXPECT_GT(realm.mr().region(0).depletion_events, 5U);
    EXPECT_GT(realm.splitter().fragments_created(), 10U);
    EXPECT_GT(dma.chunks_completed(), 2U);
}

TEST_F(RingFixture, DefaultTransportIsCreditedAndBookkept) {
    // The fixture constructs the ring with the default flow config: the
    // credited transport with a live end-to-end credit book (the legacy
    // provisioned escape hatch is gone — credits are the only transport).
    // All the fixture traffic above therefore exercises worms + credits.
    ASSERT_NE(ring->credit_book(), nullptr);
    ring->check_flow_invariants();
}

TEST(RingCreditDelay, DelayedCreditReturnsStillCompleteEndToEnd) {
    // With credit_return_delay the end-to-end credits ride the response
    // network instead of materializing at the drain point; traffic must
    // still complete (slower round trips, never a leak).
    sim::SimContext ctx;
    ic::AddrMap map;
    map.add(0x0, 0x10000, 2, "mem2");
    NocFlowConfig fc;
    fc.credit_return_delay = 6;
    NocRing ring{ctx, "ring", 4, map, std::vector<noc::NodeId>{2}, fc};
    ASSERT_NE(ring.credit_book(), nullptr);
    mem::AxiMemSlave mem2{ctx, "mem2", ring.subordinate_port(2),
                          std::make_unique<mem::SramBackend>(1, 1),
                          mem::AxiMemSlaveConfig{8, 8, 0}};
    push_write_burst(ctx, ring.manager_port(0), 1, 0x100, 4, 8, 0x2A);
    const axi::BFlit b = collect_b(ctx, ring.manager_port(0));
    EXPECT_EQ(b.resp, axi::Resp::kOkay);
    EXPECT_EQ(static_cast<mem::SramBackend&>(mem2.backend()).store().read_u8(0x100),
              0x2A);
    ring.check_flow_invariants();
}

TEST_F(RingFixture, BackpressureDoesNotDeadlock) {
    // Saturate both subordinates from both managers simultaneously with
    // interleaved reads and writes; everything must drain.
    traffic::RandomWorkload wl0{{.base = 0x0,
                                 .bytes = 0x8000,
                                 .op_bytes = 8,
                                 .store_ratio16 = 8,
                                 .num_ops = 200,
                                 .seed = 3}};
    traffic::RandomWorkload wl1{{.base = 0x1'0000,
                                 .bytes = 0x8000,
                                 .op_bytes = 8,
                                 .store_ratio16 = 8,
                                 .num_ops = 200,
                                 .seed = 4}};
    traffic::CoreModel c0{ctx, "c0", ring->manager_port(0), wl0};
    traffic::CoreModel c1{ctx, "c1", ring->manager_port(1), wl1};
    ASSERT_TRUE(ctx.run_until([&] { return c0.done() && c1.done(); }, 1'000'000));
    EXPECT_EQ(c0.loads_retired() + c0.stores_retired(), 200U);
    EXPECT_EQ(c1.loads_retired() + c1.stores_retired(), 200U);
}

// --- Topology subsystem: rings built from ScenarioConfigs --------------------

using scenario::RingRole;
using scenario::ScenarioConfig;
using scenario::ScenarioResult;
using scenario::TopologyKind;

TEST(RingRoles, CanonicalLayoutAssignsEveryRole) {
    const auto specs = scenario::make_ring_roles(8, 2, 2);
    ASSERT_EQ(specs.size(), 8U);
    EXPECT_EQ(specs[0].role, RingRole::kVictim);
    EXPECT_TRUE(specs[0].realm) << "manager nodes get a REALM unit by default";
    std::size_t victims = 0;
    std::size_t memories = 0;
    std::size_t attackers = 0;
    for (const auto& s : specs) {
        victims += s.role == RingRole::kVictim;
        memories += s.role == RingRole::kMemory;
        attackers += s.role == RingRole::kInterference;
        if (s.role == RingRole::kInterference) { EXPECT_TRUE(s.realm); }
        if (s.role == RingRole::kMemory) { EXPECT_FALSE(s.realm); }
    }
    EXPECT_EQ(victims, 1U);
    EXPECT_EQ(memories, 2U);
    EXPECT_EQ(attackers, 2U);
}

/// Small contended ring point from the registry (8 nodes, hog attacker).
ScenarioConfig small_ring_point(std::size_t index) {
    scenario::Sweep sweep = scenario::make_sweep("ring-dos-smoke");
    return sweep.points.at(index).config;
}

TEST(RingTopology, ScenarioRunsEndToEnd) {
    const ScenarioResult res = run_scenario(small_ring_point(0), "ring");
    EXPECT_TRUE(res.boot_ok);
    EXPECT_FALSE(res.timed_out);
    EXPECT_GT(res.ops, 0U);
    EXPECT_GT(res.load_lat_mean, 0.0);
    EXPECT_GT(res.fabric_hops, 0U) << "traffic must actually cross ring hops";
    EXPECT_GT(res.dma_bytes, 0U) << "the interference DMA must run";
}

TEST(RingTopology, RealmPlacementRegulatesTheAttacker) {
    // Smoke points 0/1 are the same 1-attacker hog cell without/with the
    // budget defense; regulation must deplete credits and restore the
    // victim's latency (the interconnect-agnostic claim, asserted).
    const ScenarioResult none = run_scenario(small_ring_point(0), "none");
    const ScenarioResult budget = run_scenario(small_ring_point(1), "budget");
    EXPECT_EQ(budget.ops, none.ops);
    EXPECT_GT(budget.dma_depletions, 0U) << "budget must bind over the NoC";
    EXPECT_LT(budget.dma_read_bw, none.dma_read_bw / 2.0);
    EXPECT_LT(budget.load_lat_mean, none.load_lat_mean);
}

TEST(RingTopology, VictimWithoutRealmAttachesDirectly) {
    ScenarioConfig cfg = small_ring_point(0);
    for (auto& node : cfg.topology.ring.nodes) { node.realm = false; }
    const ScenarioResult res = run_scenario(cfg, "no-realm");
    EXPECT_FALSE(res.timed_out);
    EXPECT_GT(res.ops, 0U);
    EXPECT_EQ(res.dma_depletions, 0U) << "no units, no regulation";
}

TEST(RingSchedulerEquivalence, ActivityMatchesTickAllBitForBit) {
    // Acceptance gate: the activity scheduler must match kTickAll on a ring
    // scenario — NocNode, the egress muxes, and the memory slaves all honour
    // their idle contracts. The W-stall cell stresses reservation stalls.
    ScenarioConfig cfg = small_ring_point(2); // 1atk/wstall/none
    cfg.scheduler = sim::Scheduler::kTickAll;
    const ScenarioResult naive = scenario::run_scenario(cfg);
    cfg.scheduler = sim::Scheduler::kActivity;
    const ScenarioResult fast = scenario::run_scenario(cfg);

    ASSERT_FALSE(naive.timed_out);
    EXPECT_EQ(naive.run_cycles, fast.run_cycles);
    EXPECT_EQ(naive.ops, fast.ops);
    EXPECT_EQ(naive.load_lat_mean, fast.load_lat_mean);
    EXPECT_EQ(naive.load_lat_max, fast.load_lat_max);
    EXPECT_EQ(naive.load_lat_p99, fast.load_lat_p99);
    EXPECT_EQ(naive.store_lat_mean, fast.store_lat_mean);
    EXPECT_EQ(naive.store_lat_max, fast.store_lat_max);
    EXPECT_EQ(naive.dma_bytes, fast.dma_bytes);
    EXPECT_EQ(naive.dma_mr_bytes_total, fast.dma_mr_bytes_total);
    EXPECT_EQ(naive.xbar_w_stalls, fast.xbar_w_stalls);
    EXPECT_EQ(naive.fabric_hops, fast.fabric_hops);
    EXPECT_EQ(naive.simulated_cycles, fast.simulated_cycles);

    EXPECT_EQ(naive.ticks_skipped, 0U);
    EXPECT_GT(fast.ticks_skipped, 0U) << "idle ring components must be skipped";
    EXPECT_LT(fast.ticks_executed, naive.ticks_executed);
}

TEST(RingSchedulerEquivalence, LargeIdleRingFastForwards) {
    // A 32-node ring whose traffic drains early: the idle tail must
    // fast-forward once every node, mux, and memory declares idle.
    ScenarioConfig cfg = small_ring_point(0);
    cfg.topology.ring.num_nodes = 32;
    cfg.topology.ring.nodes = scenario::make_ring_roles(32, 1, 2);
    cfg.interference[0].loop = false; // finite copy, then quiescence
    cfg.cooldown_cycles = 500'000;
    const ScenarioResult res = scenario::run_scenario(cfg, "idle-ring");
    EXPECT_FALSE(res.timed_out);
    EXPECT_GT(res.fast_forwarded_cycles, 400'000U)
        << "a fully idle ring must cost (almost) nothing";
}

} // namespace
} // namespace realm::noc
