#include "mon/detector.hpp"

namespace realm::mon {

std::string signal_names(std::uint8_t mask) {
    if (mask == kSignalNone) { return "-"; }
    std::string out;
    const auto append = [&out](const char* name) {
        if (!out.empty()) { out += '+'; }
        out += name;
    };
    if (mask & kSignalBandwidth) { append("bw"); }
    if (mask & kSignalBackpressure) { append("held"); }
    if (mask & kSignalWGap) { append("wgap"); }
    if (mask & kSignalOccupancy) { append("occ"); }
    return out;
}

DetectionScore score_verdicts(const std::vector<Verdict>& verdicts) {
    DetectionScore s;
    for (const Verdict& v : verdicts) {
        if (v.hostile && v.flagged) {
            ++s.true_positives;
            if (s.first_detect == 0 || v.time_to_detect < s.first_detect) {
                s.first_detect = v.time_to_detect;
            }
        } else if (!v.hostile && v.flagged) {
            ++s.false_positives;
        } else if (v.hostile && !v.flagged) {
            ++s.false_negatives;
        }
    }
    return s;
}

} // namespace realm::mon
