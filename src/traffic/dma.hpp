/// \file
/// \brief DSA DMA engine: long-burst, deeply pipelined bulk copies.
///
/// Models the accelerator DMA of the paper's case study: double-buffered
/// chunk transfers of up to 256 beats that saturate the interconnect and —
/// through burst-granular arbitration — starve the core. Also provides the
/// *malicious* behaviours studied in the related work: reserving write
/// bandwidth before data is available and trickling the data out
/// (denial-of-service by stalling, cf. Cut&Forward [14]).
#pragma once

#include "axi/channel.hpp"

#include "sim/component.hpp"
#include "sim/stats.hpp"

#include <cstdint>
#include <deque>
#include <vector>

namespace realm::traffic {

struct DmaConfig {
    std::uint32_t bus_bytes = 8;
    std::uint32_t burst_beats = 256;       ///< chunk size issued per AR/AW
    std::uint32_t num_buffers = 2;         ///< double buffering by default
    std::uint32_t max_outstanding_reads = 2;
    std::uint32_t max_outstanding_writes = 2;
    /// Cycles inserted between W beats (0 = full rate). Large values with
    /// `reserve_before_data` model the stalling-manager DoS attack.
    std::uint32_t w_stall_cycles = 0;
    /// Issue AW as soon as the chunk *starts* reading instead of when its
    /// data is complete (cut-through). Well-behaved DMAs keep this off.
    bool reserve_before_data = false;
    /// AxQOS stamped on every transaction (QoS-arbitrated interconnects).
    std::uint8_t qos = 0;
};

/// One copy descriptor. With `loop` the job restarts for continuous
/// interference generation (the Fig. 6 disturbance pattern).
struct DmaJob {
    axi::Addr src = 0;
    axi::Addr dst = 0;
    std::uint64_t bytes = 0;
    bool loop = false;
};

class DmaEngine : public sim::Component {
public:
    DmaEngine(sim::SimContext& ctx, std::string name, axi::AxiChannel& port,
              DmaConfig config = {});

    void reset() override;
    void tick() override;

    /// Enqueues a copy job (FIFO).
    void push_job(const DmaJob& job);
    /// Stops a looping job after the in-flight chunks complete.
    void stop() noexcept { stop_requested_ = true; }

    /// All queued jobs complete and no chunks in flight.
    [[nodiscard]] bool idle() const noexcept;

    /// \name Statistics
    ///@{
    [[nodiscard]] std::uint64_t bytes_read() const noexcept { return bytes_read_; }
    [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_; }
    [[nodiscard]] std::uint64_t chunks_completed() const noexcept { return chunks_done_; }
    [[nodiscard]] const sim::LatencyStat& read_latency() const noexcept { return read_lat_; }
    [[nodiscard]] const sim::LatencyStat& write_latency() const noexcept { return write_lat_; }
    /// Average copy bandwidth in bytes/cycle over [first_activity, now].
    [[nodiscard]] double bandwidth() const noexcept;
    ///@}

private:
    enum class SlotState : std::uint8_t {
        kFree,
        kReading,  ///< AR issued, collecting R beats
        kFull,     ///< data complete, waiting to start the write
        kWriting,  ///< AW issued, streaming W beats
        kAwaitB,   ///< all data sent, waiting for the response
    };

    struct Slot {
        SlotState state = SlotState::kFree;
        axi::Addr src = 0;
        axi::Addr dst = 0;
        std::uint32_t beats = 0;
        std::uint32_t beats_read = 0;
        std::uint32_t beats_written = 0;
        bool aw_sent = false;
        sim::Cycle read_issued_at = 0;
        sim::Cycle write_issued_at = 0;
        sim::Cycle next_w_at = 0;
        std::vector<std::uint8_t> data;
    };

    void issue_reads();
    void collect_reads();
    void issue_writes();
    void stream_w_beats();
    void collect_b();

    [[nodiscard]] std::uint32_t reads_in_flight() const noexcept;
    [[nodiscard]] std::uint32_t writes_in_flight() const noexcept;

    axi::ManagerView port_;
    DmaConfig cfg_;

    std::deque<DmaJob> jobs_;
    std::uint64_t job_offset_ = 0;
    bool stop_requested_ = false;

    std::vector<Slot> slots_;
    std::deque<std::uint32_t> write_order_; ///< slots with AW sent, in AW order

    std::uint64_t bytes_read_ = 0;
    std::uint64_t bytes_written_ = 0;
    std::uint64_t chunks_done_ = 0;
    sim::LatencyStat read_lat_;
    sim::LatencyStat write_lat_;
    sim::Cycle first_activity_ = sim::kNoCycle;
};

} // namespace realm::traffic
