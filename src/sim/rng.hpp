/// \file
/// \brief Deterministic pseudo-random number generation (xoshiro256**).
///
/// Simulations must be bit-reproducible across platforms and standard-library
/// versions, so we avoid `std::mt19937`-with-`std::uniform_int_distribution`
/// (whose mapping is implementation-defined) and ship a fixed algorithm with
/// explicit range mapping.
#pragma once

#include "sim/check.hpp"

#include <cstdint>
#include <string_view>

namespace realm::sim {

/// Derives a per-run RNG seed from a scenario name and a sweep-point index.
///
/// Parallel sweep runners must not derive seeds from any shared or global
/// state (thread ids, launch order, a process-wide RNG): two runs of the
/// same sweep with different thread counts would then diverge. This mixes
/// only the *identity* of the point — FNV-1a over the name, then a
/// splitmix64 finalizer over the index — so seeds are stable across
/// platforms, thread counts, and execution order.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::string_view scenario_name,
                                                  std::uint64_t sweep_index) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a offset basis
    for (const char c : scenario_name) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL; // FNV-1a prime
    }
    std::uint64_t z = h + (sweep_index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
public:
    /// Seeds via splitmix64 so any 64-bit seed yields a well-mixed state.
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

    void reseed(std::uint64_t seed) noexcept {
        std::uint64_t x = seed;
        for (auto& word : state_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /// Next raw 64-bit value.
    std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform in [lo, hi] inclusive. Uses rejection-free Lemire mapping;
    /// bias is negligible for simulation purposes (< 2^-64 per draw).
    std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
        if (lo >= hi) { return lo; }
        const std::uint64_t span = hi - lo + 1;
        const auto wide =
            static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(span);
        return lo + static_cast<std::uint64_t>(wide >> 64);
    }

    /// Bernoulli draw with probability numerator/denominator.
    bool chance(std::uint32_t numerator, std::uint32_t denominator) noexcept {
        if (numerator == 0 || denominator == 0) { return false; }
        if (numerator >= denominator) { return true; }
        return uniform(0, denominator - 1) < numerator;
    }

    /// Uniform double in [0, 1).
    double uniform01() noexcept {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

} // namespace realm::sim
