/// \file
/// \brief Network-interface bookkeeping shared by every NoC router.
///
/// The ring node and the mesh router differ in how packets *move* (one lane
/// around a circle vs. policy-routed 2D hops), but their AXI network
/// interfaces are identical: requests are packetized with an AW-before-data
/// lane discipline and AXI same-ID ordering, ejected requests land in
/// per-source egress staging in front of an `ic::AxiMux`, and responses are
/// injected round-robin over the sources waiting at the local subordinate.
/// `NocNi` owns exactly that state so both fabrics share one flow-control
/// implementation (and one set of bugs).
///
/// The NI enforces end-to-end credits: a request worm is injected only
/// while the source holds credits from the target subordinate's pool
/// (returned when the target's staging drains into the egress mux), so
/// request ejection can never backpressure the network — asserted, not
/// provisioned. Responses draw on a separate pool per (manager,
/// subordinate) pair, bounding in-flight responses toward any manager;
/// those credits return when the response ejects into the local manager
/// channel. With `credit_return_delay > 0` every return additionally rides
/// the response network for that many cycles before the injector sees it.
///
/// **Ordering under multi-path routing.** Adaptive and randomized mesh
/// policies (O1TURN, west-first) can deliver two worms of one (src, dest)
/// pair out of injection order. The NI therefore stamps every worm with a
/// per-(pair, network) sequence number at injection, and the ejecting side
/// holds out-of-order arrivals in a reorder stash until the gap closes —
/// delivery into the egress lanes / the local manager is always in
/// injection order, which preserves the AW-before-data lane pairing and
/// the AXI same-ID rules under every routing policy. The stash is bounded
/// by the end-to-end credit pool (a stashed worm still holds its credits),
/// so it adds no unbounded buffer; under single-path policies (XY, YX, the
/// ring) arrivals are always in order and the stash stays empty.
///
/// **Hot-path layout.** Every per-cycle table is contiguous and indexed by
/// node id (sequence counters, reorder state) or scanned linearly over a
/// handful of live entries (same-ID tracking) — the former per-pair
/// `std::map` / `std::unordered_map` node churn is gone, which is what the
/// 16x16/32x32 fabrics tick millions of times.
#pragma once

#include "axi/channel.hpp"
#include "ic/addr_map.hpp"
#include "noc/arena.hpp"
#include "noc/credit.hpp"
#include "noc/packet.hpp"
#include "noc/routing.hpp"

#include "sim/context.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace realm::noc {

class NocNi {
public:
    /// \param ctx        Simulation clock (credit-return maturation).
    /// \param num_nodes  Fabric size — dimensions the per-node tables.
    /// \param book       End-to-end credit book of the fabric (required).
    /// \param routing    Routing policy of the fabric — the NI assigns each
    ///                   worm's route class / VC at injection (kXY for the
    ///                   ring and every other single-path fabric).
    /// \param deferred_credits  Stage credit releases for the cycle-edge
    ///                   flush instead of releasing inline — required when
    ///                   the fabric is spatially sharded (mesh), where the
    ///                   released pool's taker may live on another shard.
    NocNi(const sim::SimContext& ctx, std::string owner, NodeId num_nodes,
          const NocFlowConfig& fc, CreditBook* book,
          RoutingPolicy routing = RoutingPolicy::kXY,
          bool deferred_credits = false)
        : ctx_{&ctx}, owner_{std::move(owner)}, fc_{fc}, book_{book},
          routing_{routing}, deferred_credits_{deferred_credits},
          req_seq_(num_nodes, 0), rsp_seq_(num_nodes, 0),
          req_reorder_(num_nodes), rsp_reorder_(num_nodes) {
        REALM_EXPECTS(book_ != nullptr, owner_ + ": NoC NI needs a credit book");
        REALM_EXPECTS(!deferred_credits_ || fc_.credit_return_delay >= 1,
                      owner_ + ": deferred credit returns need delay >= 1");
    }

    void reset();

    /// \name Ejection (packets whose dest is the local node)
    ///@{
    /// Accepts a request packet: in-order packets are delivered into the
    /// per-source egress staging toward the local subordinate's mux (space
    /// guaranteed — the injector reserved it through the credit pool,
    /// asserted); out-of-order packets are stashed until the gap closes.
    /// Always succeeds (returns true) so the router can retire the link
    /// head unconditionally.
    bool try_eject_request(const NocPacket& pkt,
                           const std::vector<axi::AxiChannel*>& egress);
    /// Accepts a response packet: in-order packets are delivered to the
    /// local manager (retiring the same-ID bookkeeping on B / last R and
    /// returning the response's end-to-end credits); out-of-order packets
    /// are stashed. Returns false only when the in-order head cannot be
    /// delivered this cycle (manager channel backpressure).
    bool try_eject_response(const NocPacket& pkt, axi::AxiChannel* local_mgr);
    /// Retries delivering in-order stashed responses. Required every tick:
    /// after a drain stops on manager backpressure, the stash head *is*
    /// the expected packet, and no future arrival will carry that sequence
    /// number again — delivery must be retried as the manager drains, not
    /// on arrival. (Requests never need this: their delivery cannot
    /// backpressure, so a request drain never stops early.)
    void drain_response_stash(axi::AxiChannel* local_mgr);
    /// True while any response sits in the reorder stash — the owning
    /// router must stay awake (stash progress rides on the local manager
    /// draining, which raises no wake). O(1): tracked, not scanned.
    [[nodiscard]] bool has_stashed_responses() const noexcept {
        return !rsp_stash_srcs_.empty();
    }
    ///@}

    /// \name Injection (local manager / subordinate into the network)
    ///@{
    /// Injects at most one request packet from the local manager. `route`
    /// maps (destination node, worm flits, route class/VC) to the outgoing
    /// link able to accept that worm this cycle, or nullptr on backpressure
    /// (the flit is then held and retried, preserving the lane order). AW
    /// travels before its data; W continuation beats take priority over new
    /// reads; an AW or AR whose ID has in-flight transactions toward a
    /// *different* node stalls until they retire (the same rule
    /// `ic::AxiDemux` enforces). Every packet additionally needs end-to-end
    /// credits from the target subordinate's pool; a credit-starved head
    /// holds its lane exactly like link backpressure.
    template <typename RouteFn>
    bool inject_requests(NodeId self, axi::AxiChannel& mgr,
                         const ic::AddrMap& map, RouteFn&& route) {
        const std::uint32_t data_flits = fc_.packet_flits(/*data_carrying=*/true);
        if (mgr.aw.can_pop()) {
            const axi::AwFlit& head = mgr.aw.front();
            const auto dest_opt = map.decode(head.addr);
            REALM_EXPECTS(dest_opt.has_value(), owner_ + ": unmapped NoC address");
            const auto dest = static_cast<NodeId>(*dest_opt);
            const InFlight* fl = find_in_flight(w_in_flight_, head.id);
            const bool ordering_ok =
                fl == nullptr || fl->count == 0 || fl->dest == dest;
            if (ordering_ok) {
                if (NocLink* out = try_route(self, dest, 1, /*request_net=*/true,
                                             route)) {
                    axi::AwFlit aw = mgr.aw.pop();
                    InFlight& slot = in_flight_slot(w_in_flight_, aw.id);
                    slot.dest = dest;
                    ++slot.count;
                    w_dest_.push_back(dest);
                    w_beats_left_.push_back(aw.beats());
                    req_take(self, dest, 1);
                    out->push(make_packet(self, dest, 1, /*request_net=*/true, aw));
                    return true;
                }
                return false; // hold the AW; W/AR behind it wait their turn
            }
        }
        if (!w_dest_.empty() && mgr.w.can_pop()) {
            const NodeId dest = w_dest_.front();
            if (NocLink* out = try_route(self, dest, data_flits,
                                         /*request_net=*/true, route)) {
                axi::WFlit w = mgr.w.pop();
                req_take(self, dest, data_flits);
                out->push(make_packet(self, dest, data_flits, /*request_net=*/true,
                                      w));
                if (--w_beats_left_.front() == 0) {
                    REALM_ENSURES(w.last, owner_ + ": W burst ended without WLAST");
                    w_dest_.pop_front();
                    w_beats_left_.pop_front();
                }
                return true;
            }
            return false;
        }
        if (mgr.ar.can_pop()) {
            const axi::ArFlit& head = mgr.ar.front();
            const auto dest_opt = map.decode(head.addr);
            REALM_EXPECTS(dest_opt.has_value(), owner_ + ": unmapped NoC address");
            const auto dest = static_cast<NodeId>(*dest_opt);
            const InFlight* fl = find_in_flight(r_in_flight_, head.id);
            const bool ordering_ok =
                fl == nullptr || fl->count == 0 || fl->dest == dest;
            if (!ordering_ok) { return false; }
            if (NocLink* out = try_route(self, dest, 1, /*request_net=*/true,
                                         route)) {
                axi::ArFlit ar = mgr.ar.pop();
                InFlight& slot = in_flight_slot(r_in_flight_, ar.id);
                slot.dest = dest;
                ++slot.count;
                req_take(self, dest, 1);
                out->push(make_packet(self, dest, 1, /*request_net=*/true, ar));
                return true;
            }
        }
        return false;
    }

    /// Injects at most one response packet from the local subordinate,
    /// round-robin over the sources whose responses wait at the egress mux.
    /// `route` maps (response destination, worm flits, route class/VC) to
    /// the outgoing link, or nullptr on backpressure — a blocked or
    /// credit-starved source does not stop a routable one.
    template <typename RouteFn>
    bool inject_responses(NodeId self,
                          const std::vector<axi::AxiChannel*>& egress,
                          RouteFn&& route) {
        const std::uint32_t data_flits = fc_.packet_flits(/*data_carrying=*/true);
        const auto n = static_cast<std::uint32_t>(egress.size());
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t src = (rsp_rr_ + 1 + i) % n;
            axi::AxiChannel* ch = egress[src];
            if (ch == nullptr) { continue; }
            const auto dest = static_cast<NodeId>(src);
            if (ch->b.can_pop()) {
                if (NocLink* out = try_route(self, dest, 1, /*request_net=*/false,
                                             route)) {
                    rsp_take(self, dest, 1);
                    out->push(make_packet(self, dest, 1, /*request_net=*/false,
                                          ch->b.pop()));
                    rsp_rr_ = src;
                    return true;
                }
                continue;
            }
            if (ch->r.can_pop()) {
                if (NocLink* out = try_route(self, dest, data_flits,
                                             /*request_net=*/false, route)) {
                    rsp_take(self, dest, data_flits);
                    out->push(make_packet(self, dest, data_flits,
                                          /*request_net=*/false, ch->r.pop()));
                    rsp_rr_ = src;
                    return true;
                }
            }
        }
        return false;
    }
    ///@}

    [[nodiscard]] const NocFlowConfig& flow() const noexcept { return fc_; }
    [[nodiscard]] RoutingPolicy routing() const noexcept { return routing_; }

    /// \name Reorder-stash introspection (fabric invariant checkers)
    ///@{
    /// Flits stashed out of order for request packets from `src` (0 under
    /// single-path policies).
    [[nodiscard]] std::uint32_t stashed_request_flits(NodeId src) const {
        return stashed_flits(arena_, req_reorder_, src);
    }
    /// Flits stashed out of order for response packets from `src`.
    [[nodiscard]] std::uint32_t stashed_response_flits(NodeId src) const {
        return stashed_flits(arena_, rsp_reorder_, src);
    }
    ///@}

private:
    /// Per-(pair, network) reorder state at the ejecting side: the next
    /// expected sequence number and the stash of early arrivals. The stash
    /// is a small unsorted vector — only multi-path policies ever populate
    /// it, delivery always looks up the exact `expected` number, and its
    /// size is bounded by the end-to-end credit pool.
    struct Reorder {
        std::uint16_t expected = 0;
        /// (seq, arena slot) pairs — the packets themselves live in the
        /// NI's `PacketArena`, so the per-pair vector stays tiny and all
        /// stashed payloads share one contiguous slab.
        std::vector<std::pair<std::uint16_t, PacketArena::Slot>> stash;

        [[nodiscard]] bool stash_insert(PacketArena& arena, std::uint16_t seq,
                                        const NocPacket& pkt) {
            for (const auto& [s, slot] : stash) {
                if (s == seq) { return false; }
            }
            stash.emplace_back(seq, arena.acquire(pkt));
            return true;
        }
        /// Removes and returns the entry for `seq`, if stashed.
        [[nodiscard]] bool stash_take(PacketArena& arena, std::uint16_t seq,
                                      NocPacket& out) {
            for (auto it = stash.begin(); it != stash.end(); ++it) {
                if (it->first == seq) {
                    out = std::move(arena[it->second]);
                    arena.release(it->second);
                    stash.erase(it);
                    return true;
                }
            }
            return false;
        }
    };

    template <typename Flit>
    [[nodiscard]] NocPacket make_packet(NodeId self, NodeId dest,
                                        std::uint32_t flits, bool request_net,
                                        Flit&& flit) {
        std::uint16_t& seq = (request_net ? req_seq_ : rsp_seq_)[dest];
        NocPacket pkt;
        pkt.src = self;
        pkt.dest = dest;
        pkt.flits = static_cast<std::uint8_t>(flits);
        pkt.seq = seq++;
        pkt.vc = route_class(routing_, self, dest, pkt.seq);
        pkt.flit = std::forward<Flit>(flit);
        return pkt;
    }

    /// Credit gate + route lookup for one candidate worm. Matures pending
    /// credit returns first so a delayed return becomes visible the cycle
    /// it arrives.
    template <typename RouteFn>
    [[nodiscard]] NocLink* try_route(NodeId self, NodeId dest,
                                     std::uint32_t flits, bool request_net,
                                     RouteFn&& route) {
        CreditPool& pool = request_net ? book_->req(dest, self)
                                       : book_->rsp(dest, self);
        pool.settle(ctx_->now());
        if (!pool.can_take(flits)) { return nullptr; }
        const std::uint16_t seq = (request_net ? req_seq_ : rsp_seq_)[dest];
        return route(dest, flits, route_class(routing_, self, dest, seq));
    }

    void req_take(NodeId self, NodeId dest, std::uint32_t flits) {
        book_->req(dest, self).take(flits);
    }
    void rsp_take(NodeId self, NodeId dest, std::uint32_t flits) {
        book_->rsp(dest, self).take(flits);
    }

    /// Delivers consecutive stashed packets starting at `ro.expected`
    /// until the stash has a gap or `deliver` reports backpressure.
    template <typename Deliver>
    static void drain_stash(PacketArena& arena, Reorder& ro, Deliver&& deliver) {
        NocPacket pkt;
        while (ro.stash_take(arena, ro.expected, pkt)) {
            if (!deliver(pkt)) {
                // Put it back: delivery is retried next tick.
                ro.stash.emplace_back(ro.expected, arena.acquire(pkt));
                return;
            }
            ++ro.expected;
        }
    }

    /// Pushes one in-order request packet into its egress lane (space
    /// asserted — the injector held credits for it).
    void deliver_request(const NocPacket& pkt, axi::AxiChannel& ch);
    /// Delivers one in-order response packet to the local manager; returns
    /// false on manager-channel backpressure.
    bool deliver_response(const NocPacket& pkt, axi::AxiChannel& mgr);
    /// Returns the response's end-to-end credits (staged for the edge
    /// flush when the fabric is sharded).
    void release_response_credits(const NocPacket& pkt);

    /// Keeps `rsp_stash_srcs_` (the sorted list of sources with stashed
    /// responses) in sync after a stash mutation for `src`.
    void update_rsp_stash_index(NodeId src);

    [[nodiscard]] static std::uint32_t
    stashed_flits(const PacketArena& arena, const std::vector<Reorder>& reorder,
                  NodeId src) {
        if (src >= reorder.size()) { return 0; }
        std::uint32_t total = 0;
        for (const auto& [seq, slot] : reorder[src].stash) {
            total += arena[slot].flits;
        }
        return total;
    }

    /// Same-ID ordering at the ingress (same rule as `ic::AxiDemux`): a
    /// flat array scanned linearly — managers use a handful of distinct
    /// AXI IDs, and entries are recycled once their count drains.
    struct InFlight {
        axi::IdT id = 0;
        NodeId dest = 0;
        std::uint32_t count = 0;
    };
    [[nodiscard]] static const InFlight*
    find_in_flight(const std::vector<InFlight>& v, axi::IdT id) noexcept {
        for (const InFlight& fl : v) {
            if (fl.id == id) { return &fl; }
        }
        return nullptr;
    }
    [[nodiscard]] static InFlight& in_flight_slot(std::vector<InFlight>& v,
                                                  axi::IdT id) {
        for (InFlight& fl : v) {
            if (fl.id == id) { return fl; }
        }
        for (InFlight& fl : v) {
            if (fl.count == 0) {
                fl.id = id;
                fl.dest = 0;
                return fl;
            }
        }
        v.push_back(InFlight{id, 0, 0});
        return v.back();
    }
    [[nodiscard]] static InFlight* find_in_flight_mut(std::vector<InFlight>& v,
                                                      axi::IdT id) noexcept {
        for (InFlight& fl : v) {
            if (fl.id == id) { return &fl; }
        }
        return nullptr;
    }

    const sim::SimContext* ctx_;
    std::string owner_; ///< router name, for contract messages
    NocFlowConfig fc_;
    CreditBook* book_; ///< fabric-owned end-to-end pools
    RoutingPolicy routing_;
    bool deferred_credits_;

    /// Ingress W routing: dest node per accepted AW, in order.
    std::deque<NodeId> w_dest_;
    std::deque<std::uint32_t> w_beats_left_;
    std::vector<InFlight> w_in_flight_;
    std::vector<InFlight> r_in_flight_;
    /// Response injection round-robin over egress sources.
    std::uint32_t rsp_rr_ = 0;
    /// Per-destination injection sequence counters (requests / responses),
    /// indexed by node id.
    std::vector<std::uint16_t> req_seq_;
    std::vector<std::uint16_t> rsp_seq_;
    /// Per-source ejection reorder state (requests / responses), indexed by
    /// node id.
    std::vector<Reorder> req_reorder_;
    std::vector<Reorder> rsp_reorder_;
    /// Slot pool for every stashed packet of this NI (per shard by
    /// construction: one NI is ticked by exactly one shard). Lazy — stays
    /// empty under single-path policies.
    PacketArena arena_;
    /// Sources with a non-empty response stash, kept sorted ascending —
    /// the per-tick stash drain touches only these (delivery order must be
    /// deterministic: ascending source node, as the ordered map used to
    /// iterate).
    std::vector<NodeId> rsp_stash_srcs_;
};

} // namespace realm::noc
