/// \file
/// \brief Pass-through latency/bandwidth probe for a manager<->subordinate hop.
///
/// Measures, per transaction: AW-accept to B (write latency) and AR-accept
/// to last R (read latency), plus transported beat/byte counts. Being a
/// pipeline component it adds exactly one cycle per hop; place it
/// symmetrically in compared configurations (or rely on the traffic
/// generators' own end-to-end latency stats for absolute numbers).
/// Honours the activity-aware idle/wake contract: an empty hop costs
/// nothing, so instrumented scenarios fast-forward like bare ones.
#pragma once

#include "axi/channel.hpp"

#include "mon/quantile.hpp"
#include "sim/component.hpp"
#include "sim/stats.hpp"

#include <cstdint>
#include <deque>
#include <unordered_map>

namespace realm::axi {

class AxiLatencyProbe : public sim::Component {
public:
    AxiLatencyProbe(sim::SimContext& ctx, std::string name, AxiChannel& upstream,
                    AxiChannel& downstream);

    void reset() override;
    void tick() override;

    [[nodiscard]] const sim::LatencyStat& write_latency() const noexcept { return write_lat_; }
    [[nodiscard]] const sim::LatencyStat& read_latency() const noexcept { return read_lat_; }
    /// Fixed-memory quantile sketches over the same samples as the stats
    /// above; quantiles carry the documented <= 3.125% relative error bound
    /// instead of the LatencyStat histogram's power-of-two edges.
    [[nodiscard]] const mon::QuantileSketch& write_sketch() const noexcept { return write_sketch_; }
    [[nodiscard]] const mon::QuantileSketch& read_sketch() const noexcept { return read_sketch_; }
    [[nodiscard]] std::uint64_t bytes_read() const noexcept { return bytes_read_; }
    [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_; }
    [[nodiscard]] std::uint64_t aw_count() const noexcept { return aw_count_; }
    [[nodiscard]] std::uint64_t ar_count() const noexcept { return ar_count_; }

    /// Average bytes/cycle since reset (both directions).
    [[nodiscard]] double bandwidth(sim::Cycle elapsed) const noexcept {
        return elapsed == 0 ? 0.0
                            : static_cast<double>(bytes_read_ + bytes_written_) /
                                  static_cast<double>(elapsed);
    }

private:
    void update_activity();

    SubordinateView up_;
    ManagerView down_;

    std::unordered_map<IdT, std::deque<sim::Cycle>> write_start_;
    std::unordered_map<IdT, std::deque<sim::Cycle>> read_start_;
    std::unordered_map<IdT, std::uint32_t> w_bytes_per_beat_;

    sim::LatencyStat write_lat_;
    sim::LatencyStat read_lat_;
    mon::QuantileSketch write_sketch_;
    mon::QuantileSketch read_sketch_;
    std::uint64_t bytes_read_ = 0;
    std::uint64_t bytes_written_ = 0;
    std::uint64_t aw_count_ = 0;
    std::uint64_t ar_count_ = 0;
    std::uint32_t current_w_bytes_ = 0;
};

} // namespace realm::axi
