/// \file
/// \brief Closed-loop budget selection from M&R statistics — the paper's
///        "tracks each manager's access and interference statistics for
///        optimal budget and period selection" put to work.
///
/// A supervisor observes the core-side M&R read-latency statistics while a
/// DMA interferes. It then walks the DMA budget down, period by period,
/// until the core's observed mean latency meets a target — no bus analyzer,
/// no re-synthesis, just the REALM register file.
#include "soc/cheshire_soc.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/workload.hpp"

#include <cstdio>
#include <memory>

using namespace realm;

namespace {
constexpr axi::Addr kDram = 0x8000'0000;
constexpr axi::Addr kSpm = 0x7000'0000;
constexpr std::uint64_t kPeriod = 1000;

/// One observation window: run a fixed core kernel, return its mean latency
/// as seen by the core-side M&R unit.
double observe_window(sim::SimContext& ctx, soc::CheshireSoc& soc, int window) {
    traffic::StreamWorkload wl{{.base = kDram, .bytes = 0x4000, .op_bytes = 8,
                                .stride_bytes = 8}};
    traffic::CoreModel core{ctx, "probe" + std::to_string(window), soc.core_port(), wl};
    ctx.run_until([&] { return core.done(); }, 10'000'000);
    return core.load_latency().mean();
}
} // namespace

int main() {
    sim::SimContext ctx;
    soc::SocConfig scfg;
    scfg.llc.max_outstanding = 4;
    // A slower LLC descriptor pipeline: the DMA oversubscribes it, so the
    // core's latency genuinely depends on how much budget the DMA holds —
    // giving the supervisor something to tune.
    scfg.llc.request_interval = 2;
    soc::CheshireSoc soc{ctx, scfg};
    for (axi::Addr a = 0; a < 0x20000; a += 8) {
        soc.dram_image().write_u64(kDram + a, a);
    }
    soc.warm_llc(kDram, 0x20000);

    // Start with fragmentation 1 but an unconstrained DMA budget.
    soc.queue_boot_script({
        soc::CheshireSoc::BootRegionPlan{1ULL << 30, 1ULL << 20, 256},
        soc::CheshireSoc::BootRegionPlan{1ULL << 20, kPeriod, 1},
    });
    ctx.run_until([&] { return soc.boot_master().done(); }, 10000);

    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 256;
    dcfg.num_buffers = 4;
    dcfg.max_outstanding_reads = 4;
    traffic::DmaEngine dma{ctx, "dsa", soc.dsa_port(0), dcfg};
    dma.push_job(traffic::DmaJob{kDram + 0x10000, kSpm, 0x4000, true});
    ctx.run(3000);

    const double target = 9.0; // cycles: near single-source for this LLC
    std::printf("target core load latency: %.1f cycles\n\n", target);
    std::printf("%-8s %12s %14s %14s\n", "window", "DMA budget", "core lat[cyc]",
                "DMA bw[B/cyc]");

    std::uint64_t budget = 8192; // start at the full-bandwidth budget
    for (int window = 0; window < 8; ++window) {
        // Program the new budget through the register file (as the paper's
        // OS/hypervisor would).
        using RF = cfg::RealmRegFile;
        soc.boot_master().push_write(
            soc.config().cfg_base + RF::region_reg(1, 0, RF::kBudgetLo),
            static_cast<std::uint32_t>(budget));
        ctx.run_until([&] { return soc.boot_master().done(); }, 10000);

        const std::uint64_t dma_before = dma.bytes_read();
        const sim::Cycle t0 = ctx.now();
        const double lat = observe_window(ctx, soc, window);
        const double dma_bw = static_cast<double>(dma.bytes_read() - dma_before) /
                              static_cast<double>(ctx.now() - t0);
        std::printf("%-8d %12llu %14.2f %14.2f\n", window,
                    static_cast<unsigned long long>(budget), lat, dma_bw);

        if (lat <= target) {
            std::printf("\nconverged: budget %llu B per %llu cycles keeps the core at "
                        "%.2f cycles\n",
                        static_cast<unsigned long long>(budget),
                        static_cast<unsigned long long>(kPeriod), lat);
            std::printf("residual DMA bandwidth: %.2f B/cycle\n", dma_bw);
            return 0;
        }
        budget = budget * 3 / 4; // walk down 25 % per window
    }
    std::puts("\ndid not converge within 8 windows");
    return 1;
}
