#include "mon/quantile.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace realm::mon {

std::size_t QuantileSketch::bucket_index(std::uint64_t value) {
    constexpr std::uint64_t kLinearLimit = std::uint64_t{1} << kSubBits;
    if (value < kLinearLimit) { return static_cast<std::size_t>(value); }
    const unsigned exp = std::bit_width(value) - 1; // >= kSubBits
    if (exp > kMaxExp) { return kBuckets - 1; }
    const unsigned shift = exp - kSubBits;
    const std::size_t block = exp - kSubBits + 1; // 1..kMaxExp-kSubBits+1
    const std::size_t sub = static_cast<std::size_t>((value >> shift) & (kLinearLimit - 1));
    return (block << kSubBits) + sub;
}

std::uint64_t QuantileSketch::bucket_upper_edge(std::size_t index) {
    constexpr std::uint64_t kLinearLimit = std::uint64_t{1} << kSubBits;
    if (index < kLinearLimit) { return index; } // exact region: one value per bucket
    const std::size_t block = index >> kSubBits;
    const unsigned shift = static_cast<unsigned>(block - 1); // exp - kSubBits
    const std::uint64_t sub = index & (kLinearLimit - 1);
    return ((kLinearLimit + sub + 1) << shift) - 1;
}

void QuantileSketch::record(std::uint64_t value) {
    ++counts_[bucket_index(value)];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void QuantileSketch::merge(const QuantileSketch& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) { counts_[i] += other.counts_[i]; }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void QuantileSketch::reset() {
    counts_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
}

std::uint64_t QuantileSketch::quantile(double q) const {
    if (count_ == 0) { return 0; }
    q = std::clamp(q, 0.0, 1.0);
    // Nearest-rank: the smallest sample whose cumulative count reaches q*N.
    const std::uint64_t target =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(q * double(count_))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += counts_[i];
        if (seen >= target) {
            // The overflow bucket has no honest upper edge: report the exact
            // maximum rather than underestimate. Elsewhere the edge may only
            // overshoot the true max (last occupied bucket), so clamp down.
            if (i + 1 == kBuckets) { return max_; }
            return std::min(bucket_upper_edge(i), max_);
        }
    }
    return max_; // unreachable: counts_ sums to count_
}

bool QuantileSketch::operator==(const QuantileSketch& other) const {
    return counts_ == other.counts_ && count_ == other.count_ && sum_ == other.sum_ &&
           min_ == other.min_ && max_ == other.max_;
}

} // namespace realm::mon
