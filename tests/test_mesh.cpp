/// Tests for the 2D-mesh NoC: XY dimension-ordered routing invariants, the
/// mesh substrate and its NI, REALM-over-mesh regulation, the topology
/// subsystem's `kMesh` handle, and the fabric-comparative DoS-matrix
/// registry (same cells on crossbar, ring, and mesh).
#include "mem/axi_mem_slave.hpp"
#include "noc/mesh.hpp"
#include "realm/realm_unit.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "scenario/topology.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/workload.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>

namespace realm::noc {
namespace {

using test::collect_b;
using test::collect_read_burst;
using test::push_write_burst;
using test::step_until;

// --- XY routing invariants ---------------------------------------------------

/// Walks the XY route from `src` to `dest`, returning the node sequence.
std::vector<std::uint8_t> walk_route(std::uint8_t rows, std::uint8_t cols,
                                     std::uint8_t src, std::uint8_t dest) {
    std::vector<std::uint8_t> path{src};
    std::uint8_t cur = src;
    for (int guard = 0; guard < 256; ++guard) {
        const auto hop = xy_next_hop(cols, cur, dest);
        if (!hop.has_value()) { return path; }
        switch (*hop) {
        case MeshDir::kNorth: cur = static_cast<std::uint8_t>(cur - cols); break;
        case MeshDir::kEast: cur = static_cast<std::uint8_t>(cur + 1); break;
        case MeshDir::kSouth: cur = static_cast<std::uint8_t>(cur + cols); break;
        case MeshDir::kWest: cur = static_cast<std::uint8_t>(cur - 1); break;
        }
        EXPECT_LT(cur, rows * cols) << "route left the mesh";
        path.push_back(cur);
    }
    ADD_FAILURE() << "route did not terminate";
    return path;
}

TEST(XyRouting, PathsAreMinimalDeterministicAndTurnFree) {
    // Every pair on a 4x6 (24-node) mesh: the XY route terminates at the
    // destination, has exactly Manhattan length, never reverses direction
    // (no 180-degree turns), and corrects X strictly before Y.
    constexpr std::uint8_t rows = 4;
    constexpr std::uint8_t cols = 6;
    for (std::uint8_t src = 0; src < rows * cols; ++src) {
        for (std::uint8_t dest = 0; dest < rows * cols; ++dest) {
            const auto path = walk_route(rows, cols, src, dest);
            ASSERT_FALSE(path.empty());
            EXPECT_EQ(path.back(), dest);
            const int dr = std::abs(int(src / cols) - int(dest / cols));
            const int dc = std::abs(int(src % cols) - int(dest % cols));
            EXPECT_EQ(path.size(), static_cast<std::size_t>(dr + dc) + 1)
                << "route must be minimal";
            // Dimension order: once a hop changes the row, no later hop may
            // change the column.
            bool y_phase = false;
            std::optional<MeshDir> prev;
            for (std::size_t i = 0; i + 1 < path.size(); ++i) {
                const auto hop = xy_next_hop(cols, path[i], dest);
                ASSERT_TRUE(hop.has_value());
                if (prev) {
                    EXPECT_NE(*hop, opposite(*prev)) << "180-degree turn";
                }
                const bool vertical =
                    *hop == MeshDir::kNorth || *hop == MeshDir::kSouth;
                if (y_phase) { EXPECT_TRUE(vertical) << "X move after Y move"; }
                y_phase = y_phase || vertical;
                prev = hop;
            }
            // Determinism: re-walking produces the identical node sequence.
            EXPECT_EQ(walk_route(rows, cols, src, dest), path);
        }
    }
}

TEST(XyRouting, SelfIsEjection) {
    EXPECT_FALSE(xy_next_hop(6, 13, 13).has_value());
    EXPECT_EQ(opposite(MeshDir::kNorth), MeshDir::kSouth);
    EXPECT_EQ(opposite(MeshDir::kEast), MeshDir::kWest);
}

// --- Pluggable routing policies ----------------------------------------------

constexpr auto& kPolicies = kAllRoutingPolicies;

/// Applies one hop to a node id.
std::uint8_t step_dir(std::uint8_t cols, std::uint8_t cur, MeshDir d) {
    switch (d) {
    case MeshDir::kNorth: return static_cast<std::uint8_t>(cur - cols);
    case MeshDir::kEast: return static_cast<std::uint8_t>(cur + 1);
    case MeshDir::kSouth: return static_cast<std::uint8_t>(cur + cols);
    case MeshDir::kWest: return static_cast<std::uint8_t>(cur - 1);
    }
    return cur;
}

int manhattan(std::uint8_t cols, std::uint8_t a, std::uint8_t b) {
    return std::abs(int(a / cols) - int(b / cols)) +
           std::abs(int(a % cols) - int(b % cols));
}

TEST(RoutingPolicies, YxPathsAreMinimalDeterministicAndRowFirst) {
    // The YX mirror of the XY invariant: terminates, Manhattan-minimal,
    // never reverses, and corrects the row strictly before the column.
    constexpr std::uint8_t rows = 4;
    constexpr std::uint8_t cols = 6;
    for (std::uint8_t src = 0; src < rows * cols; ++src) {
        for (std::uint8_t dest = 0; dest < rows * cols; ++dest) {
            std::uint8_t cur = src;
            bool x_phase = false;
            std::optional<MeshDir> prev;
            int hops = 0;
            while (cur != dest) {
                const auto hop = yx_next_hop(cols, cur, dest);
                ASSERT_TRUE(hop.has_value());
                if (prev) { EXPECT_NE(*hop, opposite(*prev)) << "180-degree turn"; }
                const bool horizontal =
                    *hop == MeshDir::kEast || *hop == MeshDir::kWest;
                if (x_phase) { EXPECT_TRUE(horizontal) << "Y move after X move"; }
                x_phase = x_phase || horizontal;
                prev = hop;
                cur = step_dir(cols, cur, *hop);
                ASSERT_LT(cur, rows * cols);
                ASSERT_LE(++hops, manhattan(cols, src, dest)) << "not minimal";
            }
            EXPECT_EQ(hops, manhattan(cols, src, dest));
            EXPECT_FALSE(yx_next_hop(cols, dest, dest).has_value());
        }
    }
}

TEST(RoutingPolicies, EveryPolicyPermitsOnlyProductiveHops) {
    // Exhaustive over a 4x6 mesh, both route classes: permitted hops are
    // non-empty away from the destination, unique, strictly reduce the
    // Manhattan distance (minimality — which also rules out 180-degree
    // turns), and the set is empty exactly at the destination.
    constexpr std::uint8_t rows = 4;
    constexpr std::uint8_t cols = 6;
    for (const RoutingPolicy policy : kPolicies) {
        for (std::uint8_t cur = 0; cur < rows * cols; ++cur) {
            for (std::uint8_t dest = 0; dest < rows * cols; ++dest) {
                for (std::uint8_t cls = 0; cls < route_num_vcs(policy); ++cls) {
                    const HopSet hops = permitted_hops(policy, cols, cur, dest, cls);
                    if (cur == dest) {
                        EXPECT_TRUE(hops.empty());
                        continue;
                    }
                    ASSERT_GT(hops.count, 0U) << to_string(policy);
                    for (std::uint8_t k = 0; k < hops.count; ++k) {
                        const std::uint8_t next = step_dir(cols, cur, hops.dir[k]);
                        ASSERT_LT(next, rows * cols)
                            << to_string(policy) << " leaves the mesh";
                        EXPECT_EQ(manhattan(cols, next, dest),
                                  manhattan(cols, cur, dest) - 1)
                            << to_string(policy) << " permits a non-productive hop";
                    }
                    if (hops.count == 2) { EXPECT_NE(hops.dir[0], hops.dir[1]); }
                }
            }
        }
    }
}

TEST(RoutingPolicies, WestFirstProhibitsTurnsIntoWest) {
    // The Glass/Ni turn-model argument hinges on west hops coming first:
    // whenever the destination lies west, west is the *only* permitted hop,
    // so no N->W / S->W turn can ever be generated.
    constexpr std::uint8_t rows = 4;
    constexpr std::uint8_t cols = 6;
    for (std::uint8_t cur = 0; cur < rows * cols; ++cur) {
        for (std::uint8_t dest = 0; dest < rows * cols; ++dest) {
            if (cur == dest) { continue; }
            const HopSet hops =
                permitted_hops(RoutingPolicy::kWestFirst, cols, cur, dest, 0);
            const bool dest_west = dest % cols < cur % cols;
            bool has_west = false;
            for (std::uint8_t k = 0; k < hops.count; ++k) {
                has_west = has_west || hops.dir[k] == MeshDir::kWest;
            }
            if (dest_west) {
                EXPECT_EQ(hops.count, 1U);
                EXPECT_TRUE(has_west) << "westward distance must drain first";
            } else {
                EXPECT_FALSE(has_west) << "west is never an adaptive option";
            }
        }
    }
}

TEST(RoutingPolicies, O1TurnClassIsDeterministicPerWormAndUsesBothRails) {
    // The per-worm class is a pure function of (src, dest, seq) — replays
    // are deterministic — and over a window of worms both rails appear
    // (otherwise the policy degenerates to XY or YX). Class selects the VC.
    EXPECT_EQ(route_num_vcs(RoutingPolicy::kO1Turn), 2);
    EXPECT_EQ(route_num_vcs(RoutingPolicy::kXY), 1);
    bool saw[2] = {false, false};
    for (std::uint16_t seq = 0; seq < 64; ++seq) {
        const std::uint8_t cls = route_class(RoutingPolicy::kO1Turn, 3, 17, seq);
        ASSERT_LE(cls, 1);
        EXPECT_EQ(cls, route_class(RoutingPolicy::kO1Turn, 3, 17, seq))
            << "class must be replay-deterministic";
        saw[cls] = true;
        // Deterministic policies always ride class/VC 0.
        EXPECT_EQ(route_class(RoutingPolicy::kWestFirst, 3, 17, seq), 0);
    }
    EXPECT_TRUE(saw[0] && saw[1]) << "both rails must be exercised";
    // Class 0 follows the XY rails, class 1 the YX rails.
    const HopSet h0 = permitted_hops(RoutingPolicy::kO1Turn, 6, 0, 23, 0);
    const HopSet h1 = permitted_hops(RoutingPolicy::kO1Turn, 6, 0, 23, 1);
    ASSERT_EQ(h0.count, 1U);
    ASSERT_EQ(h1.count, 1U);
    EXPECT_EQ(h0.dir[0], *xy_next_hop(6, 0, 23));
    EXPECT_EQ(h1.dir[0], *yx_next_hop(6, 0, 23));
}

TEST(RoutingPolicies, NamesRoundTrip) {
    for (const RoutingPolicy policy : kPolicies) {
        const auto parsed = parse_routing_policy(to_string(policy));
        ASSERT_TRUE(parsed.has_value()) << to_string(policy);
        EXPECT_EQ(*parsed, policy);
    }
    EXPECT_FALSE(parse_routing_policy("extra").has_value());
}

// --- Mesh substrate ----------------------------------------------------------

/// 2x3 mesh: managers at 0 (NW corner) and 2 (NE corner), SRAMs at 3 (fast)
/// and 5 (slow).
class MeshFixture : public ::testing::Test {
protected:
    MeshFixture() {
        ic::AddrMap map;
        map.add(0x0000, 0x10000, 3, "mem3");
        map.add(0x1'0000, 0x10000, 5, "mem5");
        mesh = std::make_unique<NocMesh>(ctx, "mesh", 2, 3, map,
                                         std::vector<noc::NodeId>{3, 5});
        mem3 = std::make_unique<mem::AxiMemSlave>(
            ctx, "mem3", mesh->subordinate_port(3),
            std::make_unique<mem::SramBackend>(1, 1), mem::AxiMemSlaveConfig{8, 8, 0});
        mem5 = std::make_unique<mem::AxiMemSlave>(
            ctx, "mem5", mesh->subordinate_port(5),
            std::make_unique<mem::SramBackend>(4, 4), mem::AxiMemSlaveConfig{8, 8, 0});
    }

    mem::SparseMemory& store3() {
        return static_cast<mem::SramBackend&>(mem3->backend()).store();
    }
    mem::SparseMemory& store5() {
        return static_cast<mem::SramBackend&>(mem5->backend()).store();
    }

    sim::SimContext ctx;
    std::unique_ptr<NocMesh> mesh;
    std::unique_ptr<mem::AxiMemSlave> mem3;
    std::unique_ptr<mem::AxiMemSlave> mem5;
};

TEST_F(MeshFixture, WriteAndReadAcrossTheMesh) {
    push_write_burst(ctx, mesh->manager_port(0), 1, 0x100, 4, 8, 0x2A);
    const axi::BFlit b = collect_b(ctx, mesh->manager_port(0));
    EXPECT_EQ(b.resp, axi::Resp::kOkay);
    EXPECT_EQ(store3().read_u8(0x100), 0x2A);

    axi::ManagerView mgr{mesh->manager_port(0)};
    mgr.send_ar(axi::make_ar(2, 0x100, 4, 3));
    const axi::RFlit r = collect_read_burst(ctx, mesh->manager_port(0), 4);
    EXPECT_EQ(r.id, 2U);
    // Node 0 -> node 3 is a direct neighbor hop (inject, eject, nothing
    // forwarded); the far corner at node 5 takes 0 -> 1 -> 2 -> 5, so the
    // intermediate routers must forward.
    EXPECT_EQ(mesh->total_forwarded(), 0U);
    push_write_burst(ctx, mesh->manager_port(0), 3, 0x1'0000, 1, 8, 0x5C);
    (void)collect_b(ctx, mesh->manager_port(0));
    EXPECT_EQ(store5().read_u8(0x1'0000), 0x5C);
    EXPECT_GT(mesh->total_forwarded(), 0U) << "packets must actually hop the mesh";
}

TEST_F(MeshFixture, BothManagersReachBothSubordinates) {
    push_write_burst(ctx, mesh->manager_port(0), 1, 0x0, 1, 8, 0x11);
    push_write_burst(ctx, mesh->manager_port(2), 1, 0x1'0040, 1, 8, 0x22);
    (void)collect_b(ctx, mesh->manager_port(0));
    (void)collect_b(ctx, mesh->manager_port(2));
    EXPECT_EQ(store3().read_u8(0x0), 0x11);
    EXPECT_EQ(store5().read_u8(0x1'0040), 0x22);
}

TEST_F(MeshFixture, SameIdOrderingAcrossNodesPreserved) {
    // Same ID to the slow then the fast subordinate: the NI must stall the
    // second AR until the first retires (the demux rule, now over XY paths
    // of different length).
    axi::ManagerView mgr{mesh->manager_port(0)};
    mgr.send_ar(axi::make_ar(5, 0x1'0000, 1, 3)); // slow node 5, 3 hops
    ctx.step();
    mgr.send_ar(axi::make_ar(5, 0x0000, 1, 3)); // fast node 3, 2 hops
    step_until(ctx, [&] { return mgr.has_r(); });
    (void)mgr.recv_r();
    step_until(ctx, [&] { return mgr.has_r(); });
    (void)mgr.recv_r();
    SUCCEED() << "both completed in order without protocol assertions firing";
}

TEST_F(MeshFixture, DmaCopyOverMesh) {
    for (axi::Addr a = 0; a < 0x1000; a += 8) { store3().write_u64(a, a ^ 0xABCD); }
    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 16;
    traffic::DmaEngine dma{ctx, "dma", mesh->manager_port(2), dcfg};
    dma.push_job(traffic::DmaJob{0x0, 0x1'0000, 0x1000, false});
    step_until(ctx, [&] { return dma.idle(); }, 100000);
    for (axi::Addr a = 0; a < 0x1000; a += 8) {
        ASSERT_EQ(store5().read_u64(0x1'0000 + a), a ^ 0xABCDU);
    }
}

TEST_F(MeshFixture, RealmUnitRegulatesOverMesh) {
    // REALM in front of manager 2, budgeted: the same credit mechanism must
    // hold on a mesh (interconnect-agnostic claim of the paper).
    axi::AxiChannel mgr_up{ctx, "up"};
    rt::RealmUnitConfig rcfg;
    rcfg.fragment_beats = 4;
    rt::RealmUnit realm{ctx, "realm", mgr_up, mesh->manager_port(2), rcfg};
    realm.set_region(0, rt::RegionConfig{0x0, 0x2'0000, 256, 500});

    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 16;
    traffic::DmaEngine dma{ctx, "dma", mgr_up, dcfg};
    dma.push_job(traffic::DmaJob{0x0, 0x1'0000, 0x2000, true});
    const sim::Cycle horizon = 30000;
    ctx.run(horizon);
    const double bw = static_cast<double>(realm.mr().region(0).bytes_total) /
                      static_cast<double>(horizon);
    EXPECT_LE(bw, 256.0 / 500.0 * 1.4) << "budget must bind over the mesh too";
    EXPECT_GT(realm.mr().region(0).depletion_events, 5U);
    EXPECT_GT(dma.chunks_completed(), 2U);
}

TEST_F(MeshFixture, DefaultTransportIsCreditedAndBookkept) {
    // The fixture constructs the mesh with the default flow config: the
    // credited transport with a live end-to-end credit book (same default
    // as the ring — the flow-control layer is fabric-independent), routed
    // XY unless a policy is selected.
    ASSERT_NE(mesh->credit_book(), nullptr);
    EXPECT_EQ(mesh->routing(), RoutingPolicy::kXY);
    mesh->check_flow_invariants();
}

TEST_F(MeshFixture, CreditBookIsFrozenAndNeverGrowsAfterConstruction) {
    // Sharded ticks look pools up concurrently, so the book's shared maps
    // must be fully materialized (req: subordinate x any source, rsp:
    // manager x subordinate) by the single-threaded constructor and then
    // frozen — any lazy insertion from the hot path would be a data race.
    ASSERT_TRUE(mesh->credit_book()->frozen());
    const std::size_t pools = mesh->credit_book()->materialized();
    EXPECT_GT(pools, 0U);
    push_write_burst(ctx, mesh->manager_port(0), 1, 0x100, 4, 8, 0x2A);
    (void)collect_b(ctx, mesh->manager_port(0));
    push_write_burst(ctx, mesh->manager_port(2), 3, 0x1'0000, 1, 8, 0x5C);
    (void)collect_b(ctx, mesh->manager_port(2));
    EXPECT_EQ(mesh->credit_book()->materialized(), pools)
        << "traffic materialized a credit pool after the freeze";
    mesh->check_flow_invariants();
}

TEST_F(MeshFixture, BackpressureDoesNotDeadlock) {
    // Saturate both subordinates from both managers simultaneously with
    // interleaved reads and writes; everything must drain.
    traffic::RandomWorkload wl0{{.base = 0x0,
                                 .bytes = 0x8000,
                                 .op_bytes = 8,
                                 .store_ratio16 = 8,
                                 .num_ops = 200,
                                 .seed = 3}};
    traffic::RandomWorkload wl1{{.base = 0x1'0000,
                                 .bytes = 0x8000,
                                 .op_bytes = 8,
                                 .store_ratio16 = 8,
                                 .num_ops = 200,
                                 .seed = 4}};
    traffic::CoreModel c0{ctx, "c0", mesh->manager_port(0), wl0};
    traffic::CoreModel c1{ctx, "c1", mesh->manager_port(2), wl1};
    ASSERT_TRUE(ctx.run_until([&] { return c0.done() && c1.done(); }, 1'000'000));
    EXPECT_EQ(c0.loads_retired() + c0.stores_retired(), 200U);
    EXPECT_EQ(c1.loads_retired() + c1.stores_retired(), 200U);
}

// --- Topology subsystem: meshes built from ScenarioConfigs -------------------

using scenario::RingRole;
using scenario::ScenarioConfig;
using scenario::ScenarioResult;
using scenario::Sweep;
using scenario::SweepPoint;
using scenario::TopologyKind;

TEST(MeshRoles, CanonicalLayoutMatchesTheRingSpread) {
    const auto mesh_specs = scenario::make_mesh_roles(2, 4, 2, 2);
    const auto ring_specs = scenario::make_ring_roles(8, 2, 2);
    ASSERT_EQ(mesh_specs.size(), 8U);
    for (std::size_t i = 0; i < mesh_specs.size(); ++i) {
        EXPECT_EQ(mesh_specs[i].role, ring_specs[i].role)
            << "cells must be comparable across fabrics (node " << i << ")";
    }
    EXPECT_EQ(mesh_specs[0].role, RingRole::kVictim);
}

TEST(MeshRegistry, SameDosCellsOnAllThreeFabrics) {
    const Sweep ring = scenario::make_sweep("ring-dos-matrix");
    const Sweep mesh = scenario::make_sweep("mesh-dos-matrix");
    const Sweep xbar = scenario::make_sweep("xbar-dos-matrix");
    // 36 attack cells + 4 per-defense no-attack baselines for detector FP
    // scoring.
    ASSERT_EQ(ring.points.size(), 40U);
    ASSERT_EQ(mesh.points.size(), ring.points.size());
    ASSERT_EQ(xbar.points.size(), ring.points.size());
    for (std::size_t i = 0; i < ring.points.size(); ++i) {
        EXPECT_EQ(mesh.points[i].label, ring.points[i].label);
        EXPECT_EQ(xbar.points[i].label, ring.points[i].label);
        EXPECT_EQ(mesh.points[i].config.topology.kind, TopologyKind::kMesh);
        EXPECT_EQ(xbar.points[i].config.topology.kind, TopologyKind::kCheshire);
        // Identical traffic knobs per cell: same attackers, same victim.
        EXPECT_EQ(mesh.points[i].config.interference.size(),
                  ring.points[i].config.interference.size());
        EXPECT_EQ(mesh.points[i].config.victim.stream.bytes,
                  ring.points[i].config.victim.stream.bytes);
    }
    // 24 nodes on both NoC fabrics.
    EXPECT_EQ(mesh.points[0].config.topology.mesh.rows *
              mesh.points[0].config.topology.mesh.cols, 24);
    EXPECT_EQ(ring.points[0].config.topology.ring.num_nodes, 24);
}

TEST(MeshRegistry, KnowsTheMeshSweeps) {
    for (const char* name : {"mesh-contention", "mesh-dos-matrix", "mesh-dos-smoke",
                             "xbar-dos-matrix", "xbar-dos-smoke"}) {
        ASSERT_TRUE(scenario::has_sweep(name)) << name;
        const Sweep sweep = scenario::make_sweep(name);
        EXPECT_FALSE(sweep.points.empty()) << name;
    }
}

/// Small contended mesh point from the registry (2x4, smoke cells).
ScenarioConfig small_mesh_point(std::size_t index) {
    Sweep sweep = scenario::make_sweep("mesh-dos-smoke");
    return sweep.points.at(index).config;
}

TEST(MeshTopology, ScenarioRunsEndToEnd) {
    const ScenarioResult res = run_scenario(small_mesh_point(0), "mesh");
    EXPECT_TRUE(res.boot_ok);
    EXPECT_FALSE(res.timed_out);
    EXPECT_GT(res.ops, 0U);
    EXPECT_GT(res.load_lat_mean, 0.0);
    EXPECT_GT(res.fabric_hops, 0U) << "traffic must actually cross mesh hops";
    EXPECT_GT(res.dma_bytes, 0U) << "the interference DMA must run";
}

TEST(MeshTopology, RealmPlacementRegulatesTheAttacker) {
    // Smoke points 0/1 are the same 1-attacker hog cell without/with the
    // budget defense; regulation must deplete credits and restore the
    // victim's latency on the mesh exactly as on the ring.
    const ScenarioResult none = run_scenario(small_mesh_point(0), "none");
    const ScenarioResult budget = run_scenario(small_mesh_point(1), "budget");
    EXPECT_EQ(budget.ops, none.ops);
    EXPECT_GT(budget.dma_depletions, 0U) << "budget must bind over the mesh";
    EXPECT_LT(budget.dma_read_bw, none.dma_read_bw / 2.0);
    EXPECT_LT(budget.load_lat_mean, none.load_lat_mean);
}

TEST(MeshSchedulerEquivalence, ActivityMatchesTickAllBitForBit) {
    // Acceptance gate: the activity scheduler must match kTickAll on a mesh
    // scenario — MeshRouter, the egress muxes, and the memory slaves all
    // honour their idle contracts. The W-stall cell stresses reservation
    // stalls at the merge routers.
    ScenarioConfig cfg = small_mesh_point(2); // 1atk/wstall/none
    cfg.scheduler = sim::Scheduler::kTickAll;
    const ScenarioResult naive = scenario::run_scenario(cfg);
    cfg.scheduler = sim::Scheduler::kActivity;
    const ScenarioResult fast = scenario::run_scenario(cfg);

    ASSERT_FALSE(naive.timed_out);
    EXPECT_EQ(naive.run_cycles, fast.run_cycles);
    EXPECT_EQ(naive.ops, fast.ops);
    EXPECT_EQ(naive.load_lat_mean, fast.load_lat_mean);
    EXPECT_EQ(naive.load_lat_max, fast.load_lat_max);
    EXPECT_EQ(naive.load_lat_p99, fast.load_lat_p99);
    EXPECT_EQ(naive.store_lat_mean, fast.store_lat_mean);
    EXPECT_EQ(naive.store_lat_max, fast.store_lat_max);
    EXPECT_EQ(naive.dma_bytes, fast.dma_bytes);
    EXPECT_EQ(naive.dma_mr_bytes_total, fast.dma_mr_bytes_total);
    EXPECT_EQ(naive.xbar_w_stalls, fast.xbar_w_stalls);
    EXPECT_EQ(naive.fabric_hops, fast.fabric_hops);
    EXPECT_EQ(naive.simulated_cycles, fast.simulated_cycles);

    EXPECT_EQ(naive.ticks_skipped, 0U);
    EXPECT_GT(fast.ticks_skipped, 0U) << "idle mesh routers must be skipped";
    EXPECT_LT(fast.ticks_executed, naive.ticks_executed);
}

TEST(MeshSchedulerEquivalence, LargeIdleMeshFastForwards) {
    // A 4x6 mesh whose traffic drains early: the idle tail must
    // fast-forward once every router, mux, and memory declares idle.
    ScenarioConfig cfg = small_mesh_point(0);
    cfg.topology.mesh.rows = 4;
    cfg.topology.mesh.cols = 6;
    cfg.topology.mesh.nodes = scenario::make_mesh_roles(4, 6, 1, 2);
    cfg.interference[0].loop = false; // finite copy, then quiescence
    cfg.cooldown_cycles = 500'000;
    const ScenarioResult res = scenario::run_scenario(cfg, "idle-mesh");
    EXPECT_FALSE(res.timed_out);
    EXPECT_GT(res.fast_forwarded_cycles, 400'000U)
        << "a fully idle mesh must cost (almost) nothing";
}

TEST(MeshRunner, MatrixPointThreadInvariantOn24Nodes) {
    // Thread-count invariance on the 24-node mesh: a DoS-matrix point must
    // produce identical results through the runner at 1 and N threads.
    Sweep matrix = scenario::make_sweep("mesh-dos-matrix");
    Sweep sweep;
    sweep.name = matrix.name;
    sweep.points = {matrix.points[0], matrix.points[2]}; // hog: none + budget
    for (SweepPoint& p : sweep.points) {
        p.config.victim.stream.repeat = 1; // keep the test quick
    }
    const auto serial =
        scenario::ScenarioRunner{scenario::RunnerOptions{.threads = 1}}.run(sweep);
    const auto parallel =
        scenario::ScenarioRunner{scenario::RunnerOptions{.threads = 4}}.run(sweep);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(sweep.points[i].label);
        EXPECT_EQ(serial[i].run_cycles, parallel[i].run_cycles);
        EXPECT_EQ(serial[i].ops, parallel[i].ops);
        EXPECT_EQ(serial[i].load_lat_mean, parallel[i].load_lat_mean);
        EXPECT_EQ(serial[i].load_lat_max, parallel[i].load_lat_max);
        EXPECT_EQ(serial[i].store_lat_max, parallel[i].store_lat_max);
        EXPECT_EQ(serial[i].dma_bytes, parallel[i].dma_bytes);
        EXPECT_EQ(serial[i].xbar_w_stalls, parallel[i].xbar_w_stalls);
        EXPECT_EQ(serial[i].fabric_hops, parallel[i].fabric_hops);
        EXPECT_EQ(serial[i].ticks_executed, parallel[i].ticks_executed);
        EXPECT_GT(serial[i].fabric_hops, 0U);
    }
}

TEST(MeshConfigHash, MeshFieldsAreSemantic) {
    const ScenarioConfig base = small_mesh_point(0);
    ScenarioConfig c = base;
    c.topology.mesh.rows = 4;
    c.topology.mesh.cols = 2; // same node count, different shape
    EXPECT_NE(scenario::config_hash(base), scenario::config_hash(c));
    c = base;
    c.topology.kind = TopologyKind::kRing;
    EXPECT_NE(scenario::config_hash(base), scenario::config_hash(c));
}

TEST(MeshConfigHash, RoutingPoliciesNeverAlias) {
    // config_hash v4 mixes the routing knob: the same cell under two
    // policies must never be served from one `--resume` cache entry.
    const ScenarioConfig base = small_mesh_point(0);
    std::vector<std::uint64_t> hashes;
    for (const RoutingPolicy policy : kPolicies) {
        ScenarioConfig c = base;
        c.topology.mesh.routing = policy;
        hashes.push_back(scenario::config_hash(c));
    }
    for (std::size_t i = 0; i < hashes.size(); ++i) {
        for (std::size_t j = i + 1; j < hashes.size(); ++j) {
            EXPECT_NE(hashes[i], hashes[j])
                << to_string(kPolicies[i]) << " vs " << to_string(kPolicies[j]);
        }
    }
}

// --- Routing policies at scenario scale --------------------------------------

/// The named cell of `mesh-routing-dos-smoke` under one policy.
ScenarioConfig routing_smoke_cell(RoutingPolicy policy, const std::string& cell) {
    Sweep sweep = scenario::make_sweep("mesh-routing-dos-smoke");
    const std::string label = cell + "/" + to_string(policy);
    for (const SweepPoint& p : sweep.points) {
        if (p.label == label) { return p.config; }
    }
    ADD_FAILURE() << "no cell " << label;
    return {};
}

TEST(MeshRoutingRegistry, RoutingSweepsCoverEveryPolicyWithMatchingCells) {
    const Sweep matrix = scenario::make_sweep("mesh-routing-dos-matrix");
    const Sweep base = scenario::make_sweep("mesh-dos-matrix");
    ASSERT_EQ(matrix.points.size(), base.points.size() * 4);
    for (std::size_t k = 0; k < kNumRoutingPolicies; ++k) {
        const RoutingPolicy policy = kPolicies[k];
        for (std::size_t i = 0; i < base.points.size(); ++i) {
            const SweepPoint& p = matrix.points[k * base.points.size() + i];
            EXPECT_EQ(p.label,
                      base.points[i].label + "/" + to_string(policy));
            EXPECT_EQ(p.config.topology.mesh.routing, policy);
            // Identical traffic knobs per cell: only the policy varies.
            EXPECT_EQ(p.config.interference.size(),
                      base.points[i].config.interference.size());
        }
    }
    for (const char* name :
         {"mesh-routing-dos-smoke", "mesh-routing-contention"}) {
        ASSERT_TRUE(scenario::has_sweep(name)) << name;
        EXPECT_FALSE(scenario::make_sweep(name).points.empty()) << name;
    }
}

TEST(MeshRoutingPolicies, WorstSmokeCellCompletesUnderEveryPolicy) {
    // The acceptance gate in miniature: the heaviest smoke cell (two
    // stalling writers, no regulation, write buffers stripped) must finish
    // without deadlock or timeout under all four policies — the reorder
    // stash closes every multi-path gap, and the per-class VCs keep O1TURN
    // deadlock-free.
    for (const RoutingPolicy policy : kPolicies) {
        SCOPED_TRACE(to_string(policy));
        const ScenarioResult res = run_scenario(
            routing_smoke_cell(policy, "2atk/wstall/none"), to_string(policy));
        EXPECT_TRUE(res.boot_ok);
        EXPECT_FALSE(res.timed_out);
        EXPECT_GT(res.ops, 0U);
        EXPECT_GT(res.fabric_hops, 0U);
    }
}

TEST(MeshRoutingPolicies, BudgetDefenseHoldsUnderEveryPolicy) {
    // Regulation is routing-agnostic: under each policy the budgeted cell
    // must restore the victim relative to the undefended one.
    for (const RoutingPolicy policy : kPolicies) {
        SCOPED_TRACE(to_string(policy));
        const ScenarioResult none = run_scenario(
            routing_smoke_cell(policy, "2atk/hog/none"), "none");
        const ScenarioResult budget = run_scenario(
            routing_smoke_cell(policy, "2atk/hog/budget"), "budget");
        EXPECT_EQ(budget.ops, none.ops);
        EXPECT_LT(budget.load_lat_mean, none.load_lat_mean);
    }
}

TEST(MeshRoutingPolicies, SameIdOrderingHoldsUnderEveryPolicy) {
    // Same ID to the slow then the fast subordinate under each policy: the
    // NI ordering rule plus the ejection-side reorder stash must keep the
    // responses in order even when the paths differ (O1TURN / west-first).
    for (const RoutingPolicy policy : kPolicies) {
        SCOPED_TRACE(to_string(policy));
        sim::SimContext ctx;
        ic::AddrMap map;
        map.add(0x0000, 0x10000, 3, "mem3");
        map.add(0x1'0000, 0x10000, 5, "mem5");
        NocMesh mesh{ctx, "mesh", 2, 3, map, std::vector<noc::NodeId>{3, 5},
                     NocFlowConfig{}, policy};
        mem::AxiMemSlave mem3{ctx, "mem3", mesh.subordinate_port(3),
                              std::make_unique<mem::SramBackend>(1, 1),
                              mem::AxiMemSlaveConfig{8, 8, 0}};
        mem::AxiMemSlave mem5{ctx, "mem5", mesh.subordinate_port(5),
                              std::make_unique<mem::SramBackend>(4, 4),
                              mem::AxiMemSlaveConfig{8, 8, 0}};
        axi::ManagerView mgr{mesh.manager_port(0)};
        mgr.send_ar(axi::make_ar(5, 0x1'0000, 1, 3)); // slow node 5
        ctx.step();
        mgr.send_ar(axi::make_ar(5, 0x0000, 1, 3)); // fast node 3
        step_until(ctx, [&] { return mgr.has_r(); });
        (void)mgr.recv_r();
        step_until(ctx, [&] { return mgr.has_r(); });
        (void)mgr.recv_r();
        mesh.check_flow_invariants();
    }
}

TEST(MeshRoutingPolicies, DmaCopyPreservesDataUnderEveryPolicy) {
    // End-to-end data integrity per policy: a DMA copy across the mesh
    // must land byte-exact — this is what the reorder stash protects (an
    // in-network overtake would otherwise scramble the AW/W lane pairing).
    for (const RoutingPolicy policy : kPolicies) {
        SCOPED_TRACE(to_string(policy));
        sim::SimContext ctx;
        ic::AddrMap map;
        map.add(0x0000, 0x10000, 3, "mem3");
        map.add(0x1'0000, 0x10000, 5, "mem5");
        NocMesh mesh{ctx, "mesh", 2, 3, map, std::vector<noc::NodeId>{3, 5},
                     NocFlowConfig{}, policy};
        mem::AxiMemSlave mem3{ctx, "mem3", mesh.subordinate_port(3),
                              std::make_unique<mem::SramBackend>(1, 1),
                              mem::AxiMemSlaveConfig{8, 8, 0}};
        mem::AxiMemSlave mem5{ctx, "mem5", mesh.subordinate_port(5),
                              std::make_unique<mem::SramBackend>(4, 4),
                              mem::AxiMemSlaveConfig{8, 8, 0}};
        auto& store3 = static_cast<mem::SramBackend&>(mem3.backend()).store();
        auto& store5 = static_cast<mem::SramBackend&>(mem5.backend()).store();
        for (axi::Addr a = 0; a < 0x1000; a += 8) { store3.write_u64(a, a ^ 0xABCD); }
        traffic::DmaConfig dcfg;
        dcfg.burst_beats = 16;
        traffic::DmaEngine dma{ctx, "dma", mesh.manager_port(2), dcfg};
        dma.push_job(traffic::DmaJob{0x0, 0x1'0000, 0x1000, false});
        step_until(ctx, [&] { return dma.idle(); }, 200000);
        for (axi::Addr a = 0; a < 0x1000; a += 8) {
            ASSERT_EQ(store5.read_u64(0x1'0000 + a), a ^ 0xABCDU)
                << "corruption at offset " << a;
        }
        mesh.check_flow_invariants();
    }
}

TEST(MeshRoutingSchedulerEquivalence, ActivityMatchesTickAllPerPolicy) {
    // The idle/wake contract must hold under every policy — including the
    // reorder-stash rule (never sleep on a stashed response) and the
    // two-VC O1TURN links.
    for (const RoutingPolicy policy : kPolicies) {
        SCOPED_TRACE(to_string(policy));
        ScenarioConfig cfg = routing_smoke_cell(policy, "1atk/wstall/none");
        cfg.scheduler = sim::Scheduler::kTickAll;
        const ScenarioResult naive = scenario::run_scenario(cfg);
        cfg.scheduler = sim::Scheduler::kActivity;
        const ScenarioResult fast = scenario::run_scenario(cfg);
        ASSERT_FALSE(naive.timed_out);
        EXPECT_EQ(naive.run_cycles, fast.run_cycles);
        EXPECT_EQ(naive.ops, fast.ops);
        EXPECT_EQ(naive.load_lat_mean, fast.load_lat_mean);
        EXPECT_EQ(naive.load_lat_max, fast.load_lat_max);
        EXPECT_EQ(naive.store_lat_max, fast.store_lat_max);
        EXPECT_EQ(naive.dma_bytes, fast.dma_bytes);
        EXPECT_EQ(naive.xbar_w_stalls, fast.xbar_w_stalls);
        EXPECT_EQ(naive.fabric_hops, fast.fabric_hops);
        EXPECT_EQ(naive.simulated_cycles, fast.simulated_cycles);
        EXPECT_EQ(naive.ticks_skipped, 0U);
        EXPECT_GT(fast.ticks_skipped, 0U) << "idle routers must be skipped";
    }
}

} // namespace
} // namespace realm::noc
