/// \file
/// \brief Packet format of the AXI-carrying ring NoC (Figure 1b of the
///        paper shows REALM units in front of a NoC with AXI4 interfaces).
#pragma once

#include "axi/flit.hpp"
#include "noc/node_id.hpp"

#include <cstdint>
#include <variant>

namespace realm::noc {

/// One AXI channel beat in flight on the network. Request packets (AW/W/AR)
/// travel on the request network, response packets (B/R) on the response
/// network; the two-network split makes the request-response protocol
/// deadlock-free under backpressure.
///
/// A packet is a wormhole *worm* of `flits` flits: data-carrying beats
/// (W / R) serialize into `NocFlowConfig::flits_per_packet` flits (header +
/// payload sized from the AXI beat width), address/response beats
/// (AW / AR / B) are single-flit headers. A link transmits one flit per
/// cycle, so `flits` is also the channel occupancy of the packet.
///
/// `seq` numbers the worms of one (src, dest) pair per network in injection
/// order; the ejecting NI restores that order, so multi-path routing
/// policies (O1TURN, west-first) cannot reorder a pair's stream in a way
/// the AXI same-ID rules or the AW-before-data lane discipline would
/// observe. `vc` is the route class assigned at injection (O1TURN: 0 = XY
/// rails, 1 = YX rails; every other policy uses 0) and selects the link
/// virtual channel the worm rides end to end.
struct NocPacket {
    NodeId src = 0;         ///< injecting node
    NodeId dest = 0;        ///< ejecting node
    std::uint8_t flits = 1; ///< worm length in flits (1 = bare header)
    std::uint8_t vc = 0;    ///< route class == link virtual channel
    std::uint16_t seq = 0;  ///< per-(src, dest, network) injection order
    std::variant<axi::AwFlit, axi::WFlit, axi::BFlit, axi::ArFlit, axi::RFlit> flit;

    [[nodiscard]] bool is_request() const noexcept {
        return std::holds_alternative<axi::AwFlit>(flit) ||
               std::holds_alternative<axi::WFlit>(flit) ||
               std::holds_alternative<axi::ArFlit>(flit);
    }
    /// True for the beats that carry bus data (and therefore serialize into
    /// multi-flit worms under credited flow control).
    [[nodiscard]] bool data_carrying() const noexcept {
        return std::holds_alternative<axi::WFlit>(flit) ||
               std::holds_alternative<axi::RFlit>(flit);
    }
};

} // namespace realm::noc
