#include "traffic/injector.hpp"

#include "axi/builder.hpp"
#include "sim/check.hpp"

#include <algorithm>
#include <utility>

namespace realm::traffic {

InjectorParams decode_genome(const InjectorGenome& g) noexcept {
    const auto gene = [&](InjectorGenome::Gene i) {
        return static_cast<std::uint32_t>(g.genes[i]);
    };
    InjectorParams p;
    p.read_beats = 1 + gene(InjectorGenome::kReadBeats);
    p.write_beats = 1 + gene(InjectorGenome::kWriteBeats);
    p.write_ratio16 = gene(InjectorGenome::kWriteRatio) * 17 / 256;
    p.walk = static_cast<InjectorWalk>(gene(InjectorGenome::kWalk) % 3);
    p.stride_beats = 1U << (gene(InjectorGenome::kStride) % 9);
    p.on_cycles = 64U << (gene(InjectorGenome::kDutyOn) % 5);
    p.off_cycles = (gene(InjectorGenome::kDutyOff) % 8) * 64;
    p.w_stall_cycles = gene(InjectorGenome::kWStall) % 65;
    p.head_delay = (gene(InjectorGenome::kHeadDelay) % 4) * 32;
    p.max_outstanding = 1 + gene(InjectorGenome::kOutstanding) % 4;
    p.ramp_step = gene(InjectorGenome::kRamp) % 32;
    p.span_shift = gene(InjectorGenome::kSpanShift) % 4;
    return p;
}

std::string to_label(const InjectorGenome& g) {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string label = "inj:";
    label.reserve(4 + 2 * InjectorGenome::kGenes);
    for (const std::uint8_t b : g.genes) {
        label.push_back(kHex[b >> 4]);
        label.push_back(kHex[b & 0xF]);
    }
    return label;
}

std::optional<InjectorGenome> parse_injector_label(std::string_view label) {
    constexpr std::string_view kPrefix = "inj:";
    if (label.size() != kPrefix.size() + 2 * InjectorGenome::kGenes ||
        label.substr(0, kPrefix.size()) != kPrefix) {
        return std::nullopt;
    }
    const auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') { return c - '0'; }
        if (c >= 'a' && c <= 'f') { return c - 'a' + 10; }
        return -1;
    };
    InjectorGenome g;
    for (std::size_t i = 0; i < InjectorGenome::kGenes; ++i) {
        const int hi = nibble(label[kPrefix.size() + 2 * i]);
        const int lo = nibble(label[kPrefix.size() + 2 * i + 1]);
        if (hi < 0 || lo < 0) { return std::nullopt; }
        g.genes[i] = static_cast<std::uint8_t>((hi << 4) | lo);
    }
    return g;
}

InjectorEngine::InjectorEngine(sim::SimContext& ctx, std::string name,
                               axi::AxiChannel& port, InjectorConfig config)
    : Component{ctx, std::move(name)}, port_{port}, cfg_{config},
      params_{decode_genome(config.genome)}, rng_{config.seed},
      read_left_(params_.max_outstanding, 0),
      write_slot_(params_.max_outstanding, WSlot::kFree) {
    REALM_EXPECTS(cfg_.bus_bytes >= 1 && cfg_.bus_bytes <= axi::kMaxDataBytes,
                  "injector bus width out of range");
    REALM_EXPECTS(cfg_.span_bytes >= cfg_.bus_bytes,
                  "injector span must hold at least one beat");
    REALM_EXPECTS(cfg_.read_base % cfg_.bus_bytes == 0 &&
                      cfg_.write_base % cfg_.bus_bytes == 0 &&
                      cfg_.span_bytes % cfg_.bus_bytes == 0,
                  "injector spans must be bus-aligned");
    cur_read_beats_ = params_.read_beats;
    cur_write_beats_ = params_.write_beats;
    redraw_kind();
}

void InjectorEngine::reset() {
    rng_.reseed(cfg_.seed);
    start_cycle_ = sim::kNoCycle;
    std::fill(read_left_.begin(), read_left_.end(), 0U);
    std::fill(write_slot_.begin(), write_slot_.end(), WSlot::kFree);
    w_queue_.clear();
    next_w_at_ = 0;
    read_offset_ = 0;
    write_offset_ = 0;
    cur_read_beats_ = params_.read_beats;
    cur_write_beats_ = params_.write_beats;
    bytes_read_ = 0;
    bytes_written_ = 0;
    reads_issued_ = 0;
    writes_issued_ = 0;
    redraw_kind();
    wake();
}

void InjectorEngine::redraw_kind() {
    next_is_write_ = rng_.chance(params_.write_ratio16, 16);
}

bool InjectorEngine::duty_on() const noexcept {
    if (params_.off_cycles == 0 || start_cycle_ == sim::kNoCycle) { return true; }
    const sim::Cycle period = params_.on_cycles + params_.off_cycles;
    return (now() - start_cycle_) % period < params_.on_cycles;
}

axi::Addr InjectorEngine::next_addr(bool write, std::uint32_t& beats) {
    const std::uint64_t bus = cfg_.bus_bytes;
    std::uint64_t window = cfg_.span_bytes >> params_.span_shift;
    window -= window % bus;
    if (window < bus) { window = bus; }
    const std::uint64_t slots = window / bus;

    std::uint64_t& offset = write ? write_offset_ : read_offset_;
    if (offset >= window) { offset %= window; }
    const axi::Addr base = write ? cfg_.write_base : cfg_.read_base;
    const axi::Addr addr = base + offset;

    // Legality clamps: stay inside the window and never cross a 4 KiB
    // boundary (AXI4 burst rule, enforced by AxiChecker).
    const std::uint64_t window_room = (window - offset) / bus;
    const std::uint64_t page_room = (4096 - (addr & 4095)) / bus;
    beats = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        beats, std::min(window_room, page_room)));
    if (beats == 0) { beats = 1; }

    // Advance the walk for the next burst.
    switch (params_.walk) {
    case InjectorWalk::kStrided:
        offset = (offset + std::uint64_t{params_.stride_beats} * bus) % window;
        break;
    case InjectorWalk::kChase: {
        // Deterministic pseudo-chase: an odd-increment LCG over the beat
        // slots — dependent-looking hops without a stored permutation.
        const std::uint64_t idx = offset / bus;
        offset = ((idx * 5 + (params_.stride_beats | 1)) % slots) * bus;
        break;
    }
    case InjectorWalk::kRandom:
        offset = rng_.uniform(0, slots - 1) * bus;
        break;
    }
    return addr;
}

void InjectorEngine::collect_r() {
    if (!port_.has_r()) { return; }
    const axi::RFlit r = port_.recv_r();
    REALM_ENSURES(r.id < read_left_.size(), name() + ": R beat with foreign ID");
    std::uint32_t& left = read_left_[r.id];
    REALM_ENSURES(left > 0, name() + ": R beat for idle read slot");
    --left;
    bytes_read_ += cfg_.bus_bytes;
    REALM_ENSURES(r.last == (left == 0), name() + ": RLAST out of place");
}

void InjectorEngine::collect_b() {
    if (!port_.has_b()) { return; }
    const axi::BFlit b = port_.recv_b();
    REALM_ENSURES(b.id < write_slot_.size(), name() + ": B with foreign ID");
    REALM_ENSURES(write_slot_[b.id] == WSlot::kAwaitB,
                  name() + ": B for slot not awaiting it");
    write_slot_[b.id] = WSlot::kFree;
}

void InjectorEngine::stream_w() {
    if (w_queue_.empty() || !port_.can_send_w()) { return; }
    PendingWrite& pw = w_queue_.front();
    if (now() < pw.first_w_at || now() < next_w_at_) { return; }

    axi::WFlit w;
    // Synthesized payload: a cheap per-beat pattern (the fabric never
    // inspects interference data; determinism is what matters).
    const std::uint64_t stamp = bytes_written_ ^ cfg_.seed;
    for (std::uint32_t i = 0; i < cfg_.bus_bytes; ++i) {
        w.data.bytes[i] = static_cast<std::uint8_t>(stamp + i);
    }
    ++pw.sent;
    w.last = pw.sent == pw.beats;
    port_.send_w(w);
    bytes_written_ += cfg_.bus_bytes;
    next_w_at_ = now() + 1 + params_.w_stall_cycles;
    if (w.last) {
        write_slot_[pw.id] = WSlot::kAwaitB;
        w_queue_.pop_front();
    }
}

void InjectorEngine::issue() {
    if (!duty_on()) { return; }
    if (next_is_write_) {
        if (!port_.can_send_aw()) { return; }
        const auto it = std::find(write_slot_.begin(), write_slot_.end(), WSlot::kFree);
        if (it == write_slot_.end()) { return; }
        const auto id = static_cast<std::uint32_t>(it - write_slot_.begin());
        std::uint32_t beats = cur_write_beats_;
        const axi::Addr addr = next_addr(true, beats);
        axi::AwFlit aw = axi::make_aw(id, addr, beats,
                                      axi::size_of_bus(cfg_.bus_bytes), now());
        aw.qos = cfg_.qos;
        port_.send_aw(aw);
        *it = WSlot::kStreaming;
        w_queue_.push_back({id, beats, 0, now() + params_.head_delay});
        ++writes_issued_;
        cur_write_beats_ =
            1 + (cur_write_beats_ - 1 + params_.ramp_step) % axi::kMaxBurstBeats;
    } else {
        if (!port_.can_send_ar()) { return; }
        const auto it = std::find(read_left_.begin(), read_left_.end(), 0U);
        if (it == read_left_.end()) { return; }
        const auto id = static_cast<std::uint32_t>(it - read_left_.begin());
        std::uint32_t beats = cur_read_beats_;
        const axi::Addr addr = next_addr(false, beats);
        axi::ArFlit ar = axi::make_ar(id, addr, beats,
                                      axi::size_of_bus(cfg_.bus_bytes), now());
        ar.qos = cfg_.qos;
        port_.send_ar(ar);
        *it = beats;
        ++reads_issued_;
        cur_read_beats_ =
            1 + (cur_read_beats_ - 1 + params_.ramp_step) % axi::kMaxBurstBeats;
    }
    redraw_kind();
}

void InjectorEngine::tick() {
    if (start_cycle_ == sim::kNoCycle) { start_cycle_ = now(); }
    collect_r();
    collect_b();
    stream_w();
    issue();

    // Off-phase with nothing in flight: sleep until the next on-phase (the
    // activity kernel then fast-forwards the quiet stretch). Conservative:
    // any response or W beat still owed keeps the engine ticking.
    if (!duty_on() && w_queue_.empty() &&
        std::all_of(read_left_.begin(), read_left_.end(),
                    [](std::uint32_t n) { return n == 0; }) &&
        std::all_of(write_slot_.begin(), write_slot_.end(),
                    [](WSlot s) { return s == WSlot::kFree; })) {
        const sim::Cycle period = params_.on_cycles + params_.off_cycles;
        const sim::Cycle pos = (now() - start_cycle_) % period;
        idle_until(now() + (period - pos));
    }
}

} // namespace realm::traffic
