/// \file
/// \brief Cycle-driven simulation context: clock, component registry, run loop,
///        and the sharded (spatially partitioned) parallel scheduler.
#pragma once

#include "sim/types.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace realm::sim {

class Component;
class Profiler;

/// Severity levels for the cycle-stamped simulation log.
enum class LogLevel { kNone = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Scheduling policy of the run loop.
enum class Scheduler {
    kTickAll,  ///< legacy: tick every component every cycle
    kActivity, ///< skip idle components; fast-forward when all are idle
};

/// Cross-shard work staged during a cycle and applied at the cycle edge.
///
/// Objects that carry state between shards (cross-stripe `NocLink`s, credit
/// pools) buffer their producer-side writes in shard-private staging storage
/// during the parallel tick phase and register themselves dirty with the
/// context; after all shards finish the cycle, the kernel calls
/// `flush_edge(now)` on every dirty object from a single thread, in
/// deterministic (shard-major, registration) order. Because every staged
/// effect only becomes observable at cycle N+1 — the registered-`Link`
/// contract — deferring it to the edge is bit-identical to applying it
/// inline, for any shard count including 1.
///
/// An object may be registered more than once per edge (e.g. a link's
/// producer and consumer shards both register it), so `flush_edge` must be
/// idempotent within one edge.
class EdgeFlushable {
public:
    /// Applies the staged work. The kernel advances the clock *before*
    /// flushing, so `now` is the first cycle of the next batch: work staged
    /// during batch [B, B + k) is flushed with `now == B + k`. Staged
    /// effects must carry their own visible-cycle stamps — an effect staged
    /// at cycle N matures at N + L for a channel latency L >= k, which is
    /// at or after this flush, never before (the conservative-lookahead
    /// safety argument). `NocLink` stamps entries with their staging cycle
    /// and exposes them once `stamp + link_latency <= now`; `CreditPool`
    /// stages releases with an explicit ready cycle. With the default
    /// lookahead of 1 this is the historical per-cycle edge flush.
    virtual void flush_edge(Cycle now) = 0;

protected:
    ~EdgeFlushable() = default;
};

/// Owns simulation time and the (non-owning) list of components to evaluate
/// each cycle.
///
/// Timing contract: during `step()` every component observes `now() == N`;
/// values pushed into a `Link` at cycle N become visible to consumers at
/// N+1 (registered semantics). After all components ticked, time advances.
///
/// Components register themselves on construction (in construction order,
/// which fixes the intra-cycle evaluation order and makes runs fully
/// deterministic) and must outlive no longer than the context.
///
/// With the default `Scheduler::kActivity`, components that declared
/// themselves idle (see `Component::idle_until`) are skipped — still in
/// registration order for the active ones, so runs remain bit-identical to
/// `kTickAll` as long as idle declarations honour their no-op contract.
/// When *every* component is idle until some future cycle, `run` /
/// `run_until` fast-forward the clock to the earliest wake-up instead of
/// stepping cycle by cycle.
///
/// Sharded execution: `set_shards(S)` partitions components into S spatial
/// shards (each component is tagged with the context's *build shard* at
/// registration; topologies set it around per-tile construction). Each
/// cycle, shards tick concurrently on worker threads — components within a
/// shard keep registration order — and cross-shard state (see
/// `EdgeFlushable`) is exchanged at a barrier on the cycle edge. Runs are
/// bit-identical for every shard count because (a) intra-shard relative
/// order equals the single-thread order (stable partition of one
/// construction order) and (b) every cross-shard interaction is
/// edge-registered, hence order-independent within a cycle.
class SimContext {
public:
    SimContext();
    ~SimContext();
    SimContext(const SimContext&) = delete;
    SimContext& operator=(const SimContext&) = delete;

    /// Current simulation time in cycles. During the tick phase of a
    /// lookahead batch this is the *per-thread* batch clock — the cycle the
    /// calling shard walk is evaluating — so components always observe the
    /// cycle they are being ticked at, even while `now_` still holds the
    /// batch base. Guarded by the owning-context check: a bare thread-local
    /// would leak a stale clock across sequentially-used contexts on one
    /// thread.
    [[nodiscard]] Cycle now() const noexcept {
        return this == tl_tick_ctx_ ? tl_tick_now_ : now_;
    }

    /// Adds a component to the per-cycle evaluation list (tagging it with
    /// the current build shard).
    void register_component(Component& c);

    /// Removes a component (called from Component's destructor).
    void unregister_component(Component& c) noexcept;

    /// Resets simulation time to zero and calls `reset()` on every component.
    void reset();

    /// Advances the simulation by exactly one cycle (no fast-forward; idle
    /// components are still skipped under `kActivity`). A single-cycle
    /// batch: cross-shard state flushes at the cycle edge regardless of the
    /// configured lookahead.
    void step();

    /// Advances the simulation by `cycles` cycles.
    void run(Cycle cycles);

    /// \name Conservative lookahead (barrier batching)
    ///@{
    /// Declares that every cross-shard channel carries at least `k` cycles
    /// of modeled latency (classic conservative PDES lookahead), so `run` /
    /// `run_until` may execute up to `k` consecutive cycles per barrier
    /// epoch: each shard walks the whole batch on its own thread and staged
    /// cross-shard effects commit at the batch edge — exactly when they
    /// would become visible anyway (effects staged at cycle N mature at
    /// N + L >= batch end for k <= L). The flush/snapshot cadence is part of
    /// the modeled semantics (edge-link capacity snapshots refresh at
    /// barriers), so the batch length is a pure function of configuration:
    /// the *same* batching runs at every shard count, including 1, which is
    /// what keeps results bit-identical across shard counts and partitions.
    /// Default 1 reproduces the historical cycle-by-cycle schedule exactly.
    void set_lookahead(Cycle k) noexcept { lookahead_ = k < 1 ? 1 : k; }
    [[nodiscard]] Cycle lookahead() const noexcept { return lookahead_; }
    ///@}

    /// Runs until `done()` returns true or `max_cycles` elapsed.
    /// \returns true iff the predicate fired (i.e. no timeout).
    ///
    /// The predicate must be a function of *component state* only. Under
    /// `kActivity` the clock fast-forwards across fully-idle stretches, so
    /// a predicate reading `now()` directly may first be evaluated past its
    /// trigger cycle; use `run(cycles)` to advance to a specific time.
    bool run_until(const std::function<bool()>& done, Cycle max_cycles);

    /// \name Scheduler selection & introspection
    ///@{
    void set_scheduler(Scheduler s) noexcept {
        scheduler_ = s;
        // Discard any hint computed under the old policy.
        next_active_hint_.store(0, std::memory_order_relaxed);
    }
    [[nodiscard]] Scheduler scheduler() const noexcept { return scheduler_; }
    /// Folds an asynchronous wake-up into the fast-forward hint (called by
    /// `Component::wake`; a lower hint is always safe — it only means less
    /// fast-forwarding). Lock-free so shards can wake components mid-cycle;
    /// const because edge-mode links lower the hint through the const
    /// context references producers hold (the hint is scheduler
    /// bookkeeping, not simulation state).
    void note_wake(Cycle cycle) const noexcept {
        Cycle cur = next_active_hint_.load(std::memory_order_relaxed);
        while (cycle < cur && !next_active_hint_.compare_exchange_weak(
                                  cur, cycle, std::memory_order_relaxed)) {}
    }
    /// Component evaluations actually executed (all shards).
    [[nodiscard]] std::uint64_t ticks_executed() const noexcept;
    /// Component evaluations skipped because the component was idle.
    [[nodiscard]] std::uint64_t ticks_skipped() const noexcept;
    /// Cycles crossed by fast-forward jumps (no component evaluated).
    [[nodiscard]] Cycle fast_forwarded_cycles() const noexcept { return fast_forwarded_; }
    ///@}

    /// \name Sharded execution
    ///@{
    /// Partitions execution into `n` spatial shards (>= 1). Call before
    /// building the topology so components pick up their shard tags; the
    /// tags themselves come from `set_build_shard`.
    void set_shards(unsigned n);
    [[nodiscard]] unsigned shards() const noexcept { return shards_; }
    /// Shard tag applied to components registered from now on (clamped to
    /// `shards() - 1`). Topologies bracket per-tile construction with this;
    /// everything else lands on shard 0. Prefer the `ShardScope` guard.
    void set_build_shard(unsigned s) noexcept {
        build_shard_ = shards_ == 0 ? 0 : (s < shards_ ? s : shards_ - 1);
    }
    [[nodiscard]] unsigned build_shard() const noexcept { return build_shard_; }
    /// Overrides the worker-thread count used when `shards() > 1`
    /// (0 = auto: `hardware_concurrency()`). Tests force > 1 to exercise
    /// the concurrent path on single-core hosts; effective workers are
    /// always capped by the shard count.
    void set_shard_workers(unsigned n) noexcept { shard_workers_override_ = n; }
    /// Registers staged cross-shard work for the end-of-cycle flush. Called
    /// from the shard currently ticking (or the main thread outside a
    /// step); each *side* of an object guards its own registration on state
    /// only it mutates during the tick phase (e.g. "my staging was empty"),
    /// so an object may land in two shards' dirty lists in one cycle —
    /// `flush_edge` must be idempotent to absorb that. Const because
    /// producers frequently hold const context references; the dirty lists
    /// are scheduler bookkeeping.
    void note_edge_dirty(EdgeFlushable& e) const;
    /// Per-shard slice of `ticks_executed()` / `ticks_skipped()` — the
    /// parallel-efficiency counters exported into the sweep JSON.
    [[nodiscard]] std::uint64_t shard_ticks_executed(unsigned shard) const noexcept;
    [[nodiscard]] std::uint64_t shard_ticks_skipped(unsigned shard) const noexcept;
    ///@}

    /// \name Profiling
    ///@{
    /// Attaches a tick-attribution profiler (nullptr detaches). With a
    /// profiler armed, every executed tick is timed and charged to a
    /// (component type, shard) bucket — see `sim::Profiler`. With none,
    /// the tick loop takes one predictable branch per shard per cycle and
    /// is otherwise unchanged (the "zero overhead when off" contract).
    /// Buckets are (re)interned at the next partition.
    void set_profiler(Profiler* p) noexcept {
        profiler_ = p;
        partition_dirty_ = true;
    }
    [[nodiscard]] Profiler* profiler() const noexcept { return profiler_; }
    ///@}

    /// \name Logging
    ///@{
    void set_log_level(LogLevel level) noexcept { log_level_ = level; }
    [[nodiscard]] LogLevel log_level() const noexcept { return log_level_; }
    [[nodiscard]] bool log_enabled(LogLevel level) const noexcept {
        return static_cast<int>(level) <= static_cast<int>(log_level_);
    }
    /// Writes a cycle-stamped line to stderr if `level` is enabled.
    void log(LogLevel level, const std::string& who, const std::string& message) const;
    ///@}

    /// Number of registered components (introspection for tests).
    [[nodiscard]] std::size_t component_count() const noexcept { return components_.size(); }

private:
    struct Workers; // worker pool + barrier state (context.cpp)

    /// Fast-forwards to `min(next_active_hint_, limit)` if the hint says no
    /// component needs the current cycle; returns true if time advanced.
    bool try_fast_forward(Cycle limit);

    /// Rebuilds the per-shard component lists (stable partition of
    /// `components_` by shard tag) when stale.
    void ensure_partition();
    /// Advances the simulation by `count` cycles under one barrier epoch:
    /// every shard walks cycles [now_, now_ + count) on its own thread,
    /// then cross-shard state flushes once at the batch edge. `count` must
    /// not exceed the configured lookahead (callers pass
    /// `min(lookahead_, remaining)`).
    void step_batch(Cycle count);
    /// Ticks every component of one shard (registration order) across
    /// `count` consecutive cycles, folding skip logic and counters; runs on
    /// a worker or the main thread. Publishes the per-cycle clock through
    /// the thread-local tick clock (see `now()`); a walk that executes
    /// nothing jumps the local clock to the shard's earliest wake (exact:
    /// within a batch a shard's components are only woken by the shard
    /// itself — cross-shard wakes land at the batch-edge flush).
    void tick_shard_span(unsigned shard, Cycle count);
    /// Same walk with per-tick wall-time attribution into `profiler_`
    /// (chained clock samples; see sim/profiler.hpp). Split out so the
    /// unprofiled loop carries no timing code at all.
    void tick_shard_span_profiled(unsigned shard, Cycle count);
    /// Applies all staged cross-shard work, single-threaded, in shard-major
    /// registration order. Runs on every cycle edge in every mode.
    void flush_edges();
    void start_workers(unsigned count);
    void stop_workers() noexcept;
    void worker_main(unsigned worker_index, unsigned worker_count);

    Cycle now_ = 0;
    /// Conservative lookahead: max cycles per barrier epoch (see
    /// `set_lookahead`).
    Cycle lookahead_ = 1;
    /// Batch length of the epoch being published to the worker pool;
    /// written by the main thread before the release increment of the epoch
    /// counter, read by workers after its acquire.
    Cycle batch_len_ = 1;
    /// Per-thread tick clock: the cycle the current shard walk is
    /// evaluating, owned by `tl_tick_ctx_`. `inline static thread_local`
    /// with an owner pointer so two contexts used from one thread never see
    /// each other's clock.
    inline static thread_local const SimContext* tl_tick_ctx_ = nullptr;
    inline static thread_local Cycle tl_tick_now_ = 0;
    std::vector<Component*> components_;
    LogLevel log_level_ = LogLevel::kNone;
    Scheduler scheduler_ = Scheduler::kActivity;
    /// Earliest cycle at which any component may need evaluation, maintained
    /// incrementally by `step()` and `note_wake` so the run loop never has
    /// to rescan the component list; always <= the true next-active cycle.
    /// 0 (always "active now") until the first activity-mode step. Atomic:
    /// concurrently lowered by shards waking components mid-cycle.
    mutable std::atomic<Cycle> next_active_hint_{0};
    Cycle fast_forwarded_ = 0;

    unsigned shards_ = 1;
    unsigned build_shard_ = 0;
    unsigned shard_workers_override_ = 0;
    bool partition_dirty_ = true;
    std::vector<std::vector<Component*>> shard_lists_;
    std::vector<std::uint64_t> shard_ticks_executed_{0};
    std::vector<std::uint64_t> shard_ticks_skipped_{0};
    /// Per-shard dirty lists of staged cross-shard work (mutable: filled
    /// through const references on the producer hot path).
    mutable std::vector<std::vector<EdgeFlushable*>> edge_dirty_{1};
    /// True iff any dirty list is non-empty, so the twice-per-cycle
    /// `flush_edges` walk collapses to one load in the (common) clean
    /// case. Relaxed stores suffice: the flag is only *read* at the cycle
    /// edge, after the join barrier has ordered every shard's writes.
    mutable std::atomic<bool> edge_any_dirty_{false};
    Profiler* profiler_ = nullptr;
    /// Parallel to `shard_lists_`: the profiler bucket of each component
    /// (empty when no profiler is attached).
    std::vector<std::vector<std::uint32_t>> shard_buckets_;
    std::unique_ptr<Workers> workers_;
};

/// RAII build-shard scope: components constructed while alive are tagged
/// with `shard`.
class ShardScope {
public:
    ShardScope(SimContext& ctx, unsigned shard) : ctx_{ctx}, prev_{ctx.build_shard()} {
        ctx_.set_build_shard(shard);
    }
    ~ShardScope() { ctx_.set_build_shard(prev_); }
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;

private:
    SimContext& ctx_;
    unsigned prev_;
};

} // namespace realm::sim
