#include "mem/axi_mem_slave.hpp"

#include "axi/burst.hpp"
#include "sim/check.hpp"

#include <algorithm>
#include <span>
#include <utility>

namespace realm::mem {

AxiMemSlave::AxiMemSlave(sim::SimContext& ctx, std::string name, axi::AxiChannel& channel,
                         std::unique_ptr<MemoryBackend> backend, AxiMemSlaveConfig config)
    : Component{ctx, std::move(name)},
      port_{channel},
      backend_{std::move(backend)},
      config_{config} {
    REALM_EXPECTS(backend_ != nullptr, "AxiMemSlave needs a backend");
    REALM_EXPECTS(config_.max_outstanding_reads >= 1 && config_.max_outstanding_writes >= 1,
                  "outstanding limits must be at least 1");
    channel.wake_subordinate_on_request(*this);
}

void AxiMemSlave::reset() {
    read_jobs_.clear();
    write_jobs_.clear();
    backend_->reset_timing();
    reads_served_ = 0;
    writes_served_ = 0;
    beats_served_ = 0;
}

void AxiMemSlave::accept_requests() {
    if (port_.has_ar() && read_jobs_.size() < config_.max_outstanding_reads) {
        ReadJob job;
        job.ar = port_.recv_ar();
        job.ready_at =
            now() + backend_->access_latency(job.ar.addr - config_.base, job.ar.beats(),
                                             /*is_write=*/false, now());
        read_jobs_.push_back(job);
    }
    if (port_.has_aw() && write_jobs_.size() < config_.max_outstanding_writes) {
        WriteJob job;
        job.aw = port_.recv_aw();
        write_jobs_.push_back(job);
    }
}

void AxiMemSlave::serve_reads() {
    if (read_jobs_.empty()) { return; }
    ReadJob& job = read_jobs_.front();
    if (now() < job.ready_at || !port_.can_send_r()) { return; }

    const axi::BurstDescriptor desc = job.ar.descriptor();
    axi::RFlit beat;
    beat.id = job.ar.id;
    const axi::Addr addr = axi::beat_address(desc, job.next_beat) - config_.base;
    backend_->read(addr, std::span{beat.data.bytes.data(), desc.beat_bytes()});
    beat.last = job.next_beat + 1 == desc.beats();
    beat.resp = axi::Resp::kOkay;
    port_.send_r(beat);
    ++beats_served_;
    ++job.next_beat;
    if (beat.last) {
        ++reads_served_;
        read_jobs_.pop_front();
    }
}

void AxiMemSlave::serve_writes() {
    // Apply at most one W beat per cycle to the oldest data-incomplete job.
    for (auto& job : write_jobs_) {
        if (job.data_complete) { continue; }
        if (!port_.has_w()) { break; }
        const axi::BurstDescriptor desc = job.aw.descriptor();
        axi::WFlit beat = port_.recv_w();
        const axi::Addr addr = axi::beat_address(desc, job.beats_seen) - config_.base;
        backend_->write(addr, std::span{beat.data.bytes.data(), desc.beat_bytes()}, beat.strb);
        ++beats_served_;
        ++job.beats_seen;
        if (job.beats_seen == desc.beats()) {
            REALM_ENSURES(beat.last, name() + ": W burst longer than AWLEN");
            job.data_complete = true;
            job.resp_ready_at = now() + backend_->access_latency(job.aw.addr - config_.base,
                                                                 desc.beats(),
                                                                 /*is_write=*/true, now());
        } else {
            REALM_ENSURES(!beat.last, name() + ": premature WLAST");
        }
        break;
    }
    // Responses complete in acceptance order.
    if (!write_jobs_.empty()) {
        WriteJob& job = write_jobs_.front();
        if (job.data_complete && now() >= job.resp_ready_at && port_.can_send_b()) {
            axi::BFlit resp;
            resp.id = job.aw.id;
            resp.resp = axi::Resp::kOkay;
            port_.send_b(resp);
            ++writes_served_;
            write_jobs_.pop_front();
        }
    }
}

void AxiMemSlave::tick() {
    accept_requests();
    serve_reads();
    serve_writes();
    update_activity();
}

void AxiMemSlave::update_activity() {
    // Buffered request flits always demand evaluation (acceptance happens
    // the cycle they become poppable).
    if (!port_.channel().requests_empty()) { return; }
    sim::Cycle next = sim::kNoCycle;
    if (!read_jobs_.empty()) {
        const ReadJob& job = read_jobs_.front();
        // Ready to stream (or backpressured on R): stay awake.
        if (now() >= job.ready_at) { return; }
        next = std::min(next, job.ready_at);
    }
    if (!write_jobs_.empty()) {
        const WriteJob& job = write_jobs_.front();
        if (job.data_complete) {
            if (now() >= job.resp_ready_at) { return; }
            next = std::min(next, job.resp_ready_at);
        }
        // Data-incomplete jobs progress only on W beats; the W link push
        // wakes us.
    }
    idle_until(next);
}

} // namespace realm::mem
