#include "noc/routing.hpp"

namespace realm::noc {

std::optional<RoutingPolicy> parse_routing_policy(std::string_view s) {
    if (s == "xy") { return RoutingPolicy::kXY; }
    if (s == "yx") { return RoutingPolicy::kYX; }
    if (s == "o1turn") { return RoutingPolicy::kO1Turn; }
    if (s == "west-first") { return RoutingPolicy::kWestFirst; }
    return std::nullopt;
}

std::uint8_t route_class(RoutingPolicy p, NodeId src, NodeId dest,
                         std::uint16_t seq) noexcept {
    if (p != RoutingPolicy::kO1Turn) { return 0; }
    // splitmix64 finalizer over the packet identity: a cheap, well-mixed
    // bit that is stable across replays because it depends on nothing but
    // the packet itself.
    std::uint64_t x = (static_cast<std::uint64_t>(src) << 32) ^
                      (static_cast<std::uint64_t>(dest) << 16) ^ seq;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::uint8_t>(x & 1U);
}

std::optional<MeshDir> xy_next_hop(NodeId cols, NodeId cur,
                                   NodeId dest) noexcept {
    if (cur == dest) { return std::nullopt; }
    const NodeId cur_col = static_cast<NodeId>(cur % cols);
    const NodeId dest_col = static_cast<NodeId>(dest % cols);
    if (dest_col > cur_col) { return MeshDir::kEast; }
    if (dest_col < cur_col) { return MeshDir::kWest; }
    return dest / cols > cur / cols ? MeshDir::kSouth : MeshDir::kNorth;
}

std::optional<MeshDir> yx_next_hop(NodeId cols, NodeId cur,
                                   NodeId dest) noexcept {
    if (cur == dest) { return std::nullopt; }
    const NodeId cur_row = static_cast<NodeId>(cur / cols);
    const NodeId dest_row = static_cast<NodeId>(dest / cols);
    if (dest_row > cur_row) { return MeshDir::kSouth; }
    if (dest_row < cur_row) { return MeshDir::kNorth; }
    return dest % cols > cur % cols ? MeshDir::kEast : MeshDir::kWest;
}

HopSet permitted_hops(RoutingPolicy p, NodeId cols, NodeId cur,
                      NodeId dest, std::uint8_t vc_class) noexcept {
    HopSet hops;
    if (cur == dest) { return hops; }
    switch (p) {
    case RoutingPolicy::kXY:
        hops.add(*xy_next_hop(cols, cur, dest));
        return hops;
    case RoutingPolicy::kYX:
        hops.add(*yx_next_hop(cols, cur, dest));
        return hops;
    case RoutingPolicy::kO1Turn:
        // Class 0 rides the XY rails (VC 0), class 1 the YX rails (VC 1).
        hops.add(vc_class == 0 ? *xy_next_hop(cols, cur, dest)
                               : *yx_next_hop(cols, cur, dest));
        return hops;
    case RoutingPolicy::kWestFirst: {
        const int dcol = static_cast<int>(dest % cols) - static_cast<int>(cur % cols);
        const int drow = static_cast<int>(dest / cols) - static_cast<int>(cur / cols);
        if (dcol < 0) {
            // Turns *into* west are prohibited, so every west hop must come
            // before any vertical hop: deterministic while west of target.
            hops.add(MeshDir::kWest);
            return hops;
        }
        // East of (or aligned with) the target column: fully adaptive among
        // the productive directions — all remaining turns are legal.
        if (dcol > 0) { hops.add(MeshDir::kEast); }
        if (drow > 0) {
            hops.add(MeshDir::kSouth);
        } else if (drow < 0) {
            hops.add(MeshDir::kNorth);
        }
        return hops;
    }
    }
    return hops;
}

} // namespace realm::noc
