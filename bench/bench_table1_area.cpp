/// \file
/// \brief Reproduces **Table I**: area decomposition of the Cheshire SoC
///        with the AXI-REALM extension (kGE, GF 12 nm, 1 GHz).
///
/// The non-REALM rows are the paper's synthesis results (we cannot run a
/// 12 nm flow here; see DESIGN.md's substitution table). The REALM rows are
/// additionally *recomputed* from the Table II analytical model at the
/// paper's configuration, so the model and the reported decomposition can
/// be compared directly.
#include "area/area_model.hpp"

#include <cstdio>

int main() {
    using namespace realm::area;

    std::puts("== Table I: area decomposition of the Cheshire SoC ==\n");
    std::printf("%-14s %10s %8s\n", "unit", "area[kGE]", "share%");
    for (const CheshireBlock& b : kTable1) {
        std::printf("%-14s %10.1f %8.2f\n", b.name, b.kge, b.percent);
    }

    RealmParams p; // the paper's configuration (Table I footnote b)
    p.addr_width_bits = 64;
    p.data_width_bits = 64;
    p.num_pending = 8;
    p.buffer_depth = 16;
    p.num_regions = 2;
    p.num_units = 3;

    const double unit_kge = realm_unit_ge(p) / 1000.0;
    const double units3_kge = 3 * unit_kge;
    const double cfg_kge = config_file_ge(p) / 1000.0;

    std::puts("\n-- AXI-REALM rows recomputed from the Table II model --");
    std::printf("%-22s %12s %12s %9s\n", "block", "model[kGE]", "paper[kGE]", "delta%");
    std::printf("%-22s %12.1f %12.1f %+9.1f\n", "3 RT units", units3_kge, 83.6,
                100.0 * (units3_kge - 83.6) / 83.6);
    std::printf("%-22s %12.1f %12.1f %+9.1f\n", "RT CFG", cfg_kge, 9.8,
                100.0 * (cfg_kge - 9.8) / 9.8);

    std::printf("\npaper overhead:  %.2f %% of the SoC (paper reports 2.45 %%)\n",
                paper_overhead_percent());
    std::printf("model overhead:  %.2f %% (Table II model on the Cheshire base area)\n",
                model_overhead_percent(p));
    std::puts("\nNote: the per-unit model matches the reported RT-unit area within a few");
    std::puts("percent; the config-file row overshoots because Table II's per-unit-and-");
    std::puts("region register constants do not reconcile exactly with Table I's 9.8 kGE");
    std::puts("(see EXPERIMENTS.md).");
    return 0;
}
