/// \file
/// \brief Reproduces **Figure 6b**: performance achieved by varying the
///        budget imbalance between the core and the DMA.
///
/// Setup per the paper: fragmentation fixed at one beat (the most fair
/// setting of Figure 6a), a short period of 1000 clock cycles, and the DMA
/// budget reduced from 8 KiB (1/1 -- the full 64-bit-bus bandwidth of the
/// period) down to 1.6 KiB (1/5) in equal steps. Paper result: near-ideal
/// (> 95 %) core performance at 1/5, with the worst-case memory access
/// latency dropping from 264 to below eight cycles.
#include "fig6_common.hpp"

#include <cstdio>
#include <vector>

int main() {
    using namespace realm::bench;
    const auto susan = fig6_susan();

    std::puts("== Figure 6b: Susan performance vs core/DMA budget imbalance ==");
    std::puts("(fragmentation 1, period 1000 cycles, DMA budget 8.0 -> 1.6 KiB)\n");

    Fig6Config base_cfg;
    base_cfg.dma_active = false;
    const Fig6Result base = run_fig6_point(base_cfg, susan);

    std::printf("%-10s %10s %12s %8s %9s %9s %10s %11s\n", "budget", "DMA[B]", "cycles",
                "perf%", "lat_mean", "lat_max", "dma[B/cyc]", "depletions");
    std::printf("%-10s %10s %12llu %8.1f %9.2f %9llu %10s %11s\n", "baseline", "-",
                static_cast<unsigned long long>(base.run_cycles), 100.0,
                base.load_lat_mean, static_cast<unsigned long long>(base.load_lat_max),
                "-", "-");

    const std::vector<std::pair<const char*, std::uint64_t>> points = {
        {"1/1", 8192}, {"1/2", 6554}, {"1/3", 4915}, {"1/4", 3277}, {"1/5", 1638},
    };
    for (const auto& [label, budget] : points) {
        Fig6Config cfg;
        cfg.dma_fragment = 1;
        cfg.dma_budget_bytes = budget;
        cfg.period_cycles = 1000;
        const Fig6Result r = run_fig6_point(cfg, susan);
        const double perf = 100.0 * static_cast<double>(base.run_cycles) /
                            static_cast<double>(r.run_cycles);
        std::printf("%-10s %10llu %12llu %8.1f %9.2f %9llu %10.2f %11llu\n", label,
                    static_cast<unsigned long long>(budget),
                    static_cast<unsigned long long>(r.run_cycles), perf, r.load_lat_mean,
                    static_cast<unsigned long long>(r.load_lat_max), r.dma_read_bw,
                    static_cast<unsigned long long>(r.dma_depletions));
    }

    std::puts("\npaper reference: reducing the DMA budget from 1/1 to 1/5 closes the");
    std::puts("gap to the single-source scenario: > 95 % performance, worst-case");
    std::puts("access latency below eight cycles.");
    return 0;
}
