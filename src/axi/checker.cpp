#include "axi/checker.hpp"

#include "sim/check.hpp"

namespace realm::axi {

AxiChecker::AxiChecker(sim::SimContext& ctx, std::string name, AxiChannel& upstream,
                       AxiChannel& downstream, bool throw_on_violation)
    : Component{ctx, std::move(name)},
      up_{upstream},
      down_{downstream},
      throw_on_violation_{throw_on_violation} {
    upstream.wake_subordinate_on_request(*this);
    downstream.wake_manager_on_response(*this);
}

void AxiChecker::reset() {
    w_queue_.clear();
    awaiting_b_.clear();
    r_remaining_.clear();
    violations_.clear();
    completed_writes_ = 0;
    completed_reads_ = 0;
}

void AxiChecker::violation(const std::string& message) {
    violations_.push_back('[' + std::to_string(now()) + "] " + name() + ": " + message);
    if (throw_on_violation_) {
        REALM_ENSURES(false, violations_.back());
    }
}

void AxiChecker::check_aw(const AwFlit& f) {
    if (!is_legal(f.descriptor())) {
        violation("illegal AW burst: addr=" + std::to_string(f.addr) +
                  " len=" + std::to_string(int{f.len}) + " burst=" + to_string(f.burst));
    }
    w_queue_.push_back(PendingWrite{f.id, f.beats(), 0});
}

void AxiChecker::check_w(const WFlit& f) {
    if (w_queue_.empty()) {
        violation("W beat without a preceding AW");
        return;
    }
    PendingWrite& pw = w_queue_.front();
    ++pw.beats_seen;
    const bool is_final = pw.beats_seen == pw.beats_total;
    if (f.last != is_final) {
        violation("WLAST mismatch: beat " + std::to_string(pw.beats_seen) + "/" +
                  std::to_string(pw.beats_total) + " last=" + (f.last ? "1" : "0"));
    }
    if (is_final) {
        ++awaiting_b_[pw.id];
        w_queue_.pop_front();
    }
}

void AxiChecker::check_b(const BFlit& f) {
    auto it = awaiting_b_.find(f.id);
    if (it == awaiting_b_.end() || it->second == 0) {
        violation("B for ID " + std::to_string(f.id) + " with no completed write burst");
        return;
    }
    --it->second;
    ++completed_writes_;
}

void AxiChecker::check_ar(const ArFlit& f) {
    if (!is_legal(f.descriptor())) {
        violation("illegal AR burst: addr=" + std::to_string(f.addr) +
                  " len=" + std::to_string(int{f.len}) + " burst=" + to_string(f.burst));
    }
    r_remaining_[f.id].push_back(f.beats());
}

void AxiChecker::check_r(const RFlit& f) {
    auto it = r_remaining_.find(f.id);
    if (it == r_remaining_.end() || it->second.empty()) {
        violation("R beat for ID " + std::to_string(f.id) + " with no outstanding AR");
        return;
    }
    std::uint32_t& remaining = it->second.front();
    REALM_ENSURES(remaining > 0, "checker internal: zero remaining R beats");
    --remaining;
    const bool is_final = remaining == 0;
    if (f.last != is_final) {
        violation("RLAST mismatch for ID " + std::to_string(f.id));
    }
    if (is_final) {
        it->second.pop_front();
        ++completed_reads_;
    }
}

void AxiChecker::tick() {
    // Requests: upstream -> downstream. AW before W so the bookkeeping sees
    // the address before its data (producers in this repo follow the same
    // convention).
    if (up_.has_aw() && down_.can_send_aw()) {
        AwFlit f = up_.recv_aw();
        check_aw(f);
        down_.send_aw(f);
    }
    if (up_.has_w() && down_.can_send_w()) {
        WFlit f = up_.recv_w();
        check_w(f);
        down_.send_w(f);
    }
    if (up_.has_ar() && down_.can_send_ar()) {
        ArFlit f = up_.recv_ar();
        check_ar(f);
        down_.send_ar(f);
    }
    // Responses: downstream -> upstream.
    if (down_.channel().b.can_pop() && up_.channel().b.can_push()) {
        BFlit f = down_.channel().b.pop();
        check_b(f);
        up_.channel().b.push(f);
    }
    if (down_.channel().r.can_pop() && up_.channel().r.can_push()) {
        RFlit f = down_.channel().r.pop();
        check_r(f);
        up_.channel().r.push(f);
    }
    update_activity();
}

void AxiChecker::update_activity() {
    // Conservative idle contract: the checker's bookkeeping (w_queue_,
    // awaiting_b_, r_remaining_) only advances on flits, and every flit it
    // consumes arrives through the wake-wired channels. A held flit
    // (downstream backpressure) forbids sleeping — draining raises no wake.
    if (!up_.channel().requests_empty()) { return; }
    if (!down_.channel().responses_empty()) { return; }
    idle_forever();
}

} // namespace realm::axi
