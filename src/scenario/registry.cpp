#include "scenario/registry.hpp"

#include "sim/check.hpp"
#include "sim/rng.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <utility>

namespace realm::scenario {

namespace {

constexpr axi::Addr kDram = 0x8000'0000;
constexpr axi::Addr kSpm = 0x7000'0000;
constexpr axi::Addr kFigDmaSrc = 0x8010'0000;
constexpr std::uint64_t kFigDmaBlock = 0x4000; // 16 KiB double-buffered block

/// Shared skeleton of the Figure 6 experiments: Susan on the core under a
/// double-buffered 256-beat DSA-DMA on the Cheshire-like SoC with a hot LLC
/// (formerly `bench/fig6_common.hpp`).
struct Fig6Knobs {
    bool dma_active = true;
    std::uint32_t dma_fragment = 256;
    std::uint64_t dma_budget_bytes = 1ULL << 30;
    std::uint64_t core_budget_bytes = 1ULL << 30;
    std::uint64_t period_cycles = 1ULL << 20;
    bool throttle = false;
    sim::Cycle llc_request_interval = 1;
};

ScenarioConfig fig6_point(const Fig6Knobs& k) {
    ScenarioConfig cfg;
    cfg.soc.llc.max_outstanding = 4;
    cfg.soc.llc.request_interval = k.llc_request_interval;

    cfg.victim.kind = VictimConfig::Kind::kSusan;
    cfg.victim.susan.width = 64;
    cfg.victim.susan.height = 48;
    cfg.victim.susan.mask_radius = 2;

    cfg.preload.push_back(PreloadSpan{kFigDmaSrc, kFigDmaBlock, 0x9E3779B9ULL, true});

    cfg.boot_plans.push_back(RegionPlan{k.core_budget_bytes, k.period_cycles, 256});
    cfg.boot_plans.push_back(
        RegionPlan{k.dma_budget_bytes, k.period_cycles, k.dma_fragment});
    cfg.throttle_dsa = k.throttle;

    if (k.dma_active) {
        InterferenceConfig irq;
        irq.dma.burst_beats = 256;
        irq.dma.num_buffers = 4;
        irq.dma.max_outstanding_reads = 4;
        irq.dma.max_outstanding_writes = 4;
        irq.src = kFigDmaSrc;
        irq.dst = kSpm;
        irq.bytes = kFigDmaBlock;
        irq.loop = true;
        cfg.interference.push_back(irq);
    }
    cfg.warmup_cycles = 3000;
    cfg.max_cycles = 60'000'000;
    return cfg;
}

std::string frag_label(std::uint32_t frag) {
    char buf[32];
    std::snprintf(buf, sizeof buf, frag == 256 ? "no-reserv. (256)" : "frag %u", frag);
    return buf;
}

Sweep make_fig6a() {
    Sweep s;
    s.name = "fig6a";
    s.title = "Figure 6a: Susan under DSA-DMA contention vs fragmentation size";
    s.notes = {"paper reference: without reservation < 0.7 % @ >= 264 cycles/access;",
               "fragmentation 1 -> 68.2 % of single-source @ < 10 cycles/access."};
    s.baseline_index = 0;
    Fig6Knobs base;
    base.dma_active = false;
    s.points.push_back({"single-source", fig6_point(base)});
    for (const std::uint32_t frag : {256U, 128U, 64U, 32U, 16U, 8U, 4U, 2U, 1U}) {
        Fig6Knobs k;
        k.dma_fragment = frag;
        s.points.push_back({frag_label(frag), fig6_point(k)});
    }
    return s;
}

Sweep make_fig6a_llc2() {
    Sweep s;
    s.name = "fig6a-llc2";
    s.title = "Figure 6a, alternative LLC calibration (descriptor interval 2)";
    s.baseline_index = 0;
    Fig6Knobs base;
    base.dma_active = false;
    base.llc_request_interval = 2;
    s.points.push_back({"single-source", fig6_point(base)});
    for (const std::uint32_t frag : {256U, 8U, 2U, 1U}) {
        Fig6Knobs k;
        k.dma_fragment = frag;
        k.llc_request_interval = 2;
        s.points.push_back({frag_label(frag), fig6_point(k)});
    }
    return s;
}

Sweep make_fig6b() {
    Sweep s;
    s.name = "fig6b";
    s.title = "Figure 6b: Susan performance vs core/DMA budget imbalance";
    s.notes = {"paper reference: reducing the DMA budget from 1/1 to 1/5 closes the",
               "gap to the single-source scenario: > 95 % performance, worst-case",
               "access latency below eight cycles."};
    s.baseline_index = 0;
    Fig6Knobs base;
    base.dma_active = false;
    s.points.push_back({"baseline", fig6_point(base)});
    const std::pair<const char*, std::uint64_t> points[] = {
        {"1/1", 8192}, {"1/2", 6554}, {"1/3", 4915}, {"1/4", 3277}, {"1/5", 1638},
    };
    for (const auto& [label, budget] : points) {
        Fig6Knobs k;
        k.dma_fragment = 1;
        k.dma_budget_bytes = budget;
        k.period_cycles = 1000;
        s.points.push_back({label, fig6_point(k)});
    }
    return s;
}

Sweep make_ablation_period() {
    Sweep s;
    s.name = "ablation-period";
    s.title = "Ablation: period selection at a fixed 20 % DMA share";
    s.notes = {"same average DMA bandwidth everywhere; the period picks where the",
               "interference lands: fine interleaving (short) vs long contended phases",
               "with a worse core latency tail (long)."};
    s.baseline_index = 0;
    Fig6Knobs base;
    base.dma_active = false;
    s.points.push_back({"baseline", fig6_point(base)});
    for (const std::uint64_t period : {100ULL, 1000ULL, 10000ULL, 100000ULL}) {
        Fig6Knobs k;
        k.dma_fragment = 1;
        k.period_cycles = period;
        k.dma_budget_bytes = period * 16 / 10; // 1.6 B/cycle share
        s.points.push_back({std::to_string(period), fig6_point(k)});
    }
    return s;
}

ScenarioConfig throttle_point(bool throttle) {
    ScenarioConfig cfg;
    cfg.soc.llc.max_outstanding = 4;
    cfg.preload.push_back(PreloadSpan{kDram, 0x20000, 1, true});
    cfg.boot_plans.push_back(RegionPlan{1ULL << 30, 1ULL << 20, 256}); // core: free
    cfg.boot_plans.push_back(RegionPlan{4096, 2000, 8});               // DMA: budgeted
    cfg.throttle_dsa = throttle;

    InterferenceConfig irq;
    irq.dma.burst_beats = 64;
    irq.dma.num_buffers = 4;
    irq.dma.max_outstanding_reads = 4;
    irq.src = kDram + 0x10000;
    irq.dst = kSpm;
    irq.bytes = 0x4000;
    cfg.interference.push_back(irq);

    cfg.victim.kind = VictimConfig::Kind::kStream;
    cfg.victim.stream = {.base = kDram, .bytes = 0x8000, .op_bytes = 8,
                         .stride_bytes = 8, .repeat = 12};
    cfg.warmup_cycles = 0; // the original bench starts the victim immediately
    cfg.max_cycles = 10'000'000;
    return cfg;
}

Sweep make_ablation_throttle() {
    Sweep s;
    s.name = "ablation-throttle";
    s.title = "Ablation: throttling unit on a budgeted DMA (4 KiB / 2000 cycles)";
    s.notes = {"throttling converts hard isolation time into early backpressure",
               "(stalls) at equal average DMA bandwidth, smoothing the interference",
               "the core observes."};
    s.points.push_back({"throttle off", throttle_point(false)});
    s.points.push_back({"throttle on", throttle_point(true)});
    return s;
}

ScenarioConfig dos_point(bool write_buffer_enabled) {
    ScenarioConfig cfg;
    cfg.soc.realm.write_buffer_enabled = write_buffer_enabled;
    cfg.soc.realm.write_buffer_depth = 16;
    cfg.preload.push_back(PreloadSpan{kDram, 0x10000, 1, true});
    // No boot script: the attack needs no regulation programmed, only the
    // write buffer's structural protection.

    InterferenceConfig attacker;
    attacker.hostile = true; // detector ground truth
    attacker.dma.burst_beats = 8;
    attacker.dma.reserve_before_data = true;
    attacker.dma.w_stall_cycles = 64;
    attacker.src = kDram + 0x8000;
    attacker.dst = kDram + 0xC000;
    attacker.bytes = 0x4000;
    cfg.interference.push_back(attacker);

    cfg.victim.kind = VictimConfig::Kind::kStream;
    cfg.victim.stream = {.base = kDram, .bytes = 0x2000, .op_bytes = 8,
                         .stride_bytes = 8, .store_ratio16 = 16};
    cfg.warmup_cycles = 500;
    cfg.max_cycles = 10'000'000;
    return cfg;
}

Sweep make_ablation_dos() {
    Sweep s;
    s.name = "ablation-dos";
    s.title = "Ablation: write buffer vs the stalling-manager DoS attack";
    s.notes = {"paper: the buffer forwards AW and W only once the write data is",
               "fully contained within the buffer."};
    s.points.push_back({"wbuf disabled", dos_point(false)});
    s.points.push_back({"wbuf enabled", dos_point(true)});
    return s;
}

Sweep make_random_mix() {
    Sweep s;
    s.name = "random-mix";
    s.title = "Random-access victim under budgeted DMA interference";
    s.notes = {"per-point workloads are seeded from derive_seed(sweep, index), so",
               "results are identical regardless of runner thread count."};
    s.baseline_index = 0;
    for (const std::uint32_t frag : {256U, 16U, 1U}) {
        ScenarioConfig cfg;
        cfg.soc.llc.max_outstanding = 4;
        cfg.preload.push_back(PreloadSpan{kDram, 0x20000, 3, true});
        cfg.boot_plans.push_back(RegionPlan{1ULL << 30, 1ULL << 20, 256});
        cfg.boot_plans.push_back(RegionPlan{4000, 1000, frag});
        InterferenceConfig irq;
        irq.dma.burst_beats = 256;
        irq.dma.num_buffers = 4;
        irq.dma.max_outstanding_reads = 4;
        irq.src = kDram + 0x10000;
        irq.dst = kSpm;
        irq.bytes = 0x4000;
        cfg.interference.push_back(irq);
        cfg.victim.kind = VictimConfig::Kind::kRandom;
        // No .seed here: run_scenario always seeds the random victim from
        // the derived per-point seed.
        cfg.victim.random = {.base = kDram, .bytes = 0x10000, .op_bytes = 8,
                             .compute_cycles = 0, .store_ratio16 = 4,
                             .num_ops = 4000};
        cfg.max_cycles = 10'000'000;
        s.points.push_back({frag_label(frag), cfg});
    }
    return s;
}

Sweep make_idle_tail() {
    Sweep s;
    s.name = "idle-tail";
    s.title = "Idle-heavy scenario: short Susan burst, long quiescent tail";
    s.notes = {"the victim finishes early and the simulation idles for 2M cycles;",
               "the activity-aware kernel fast-forwards the tail."};
    for (const bool activity : {false, true}) {
        ScenarioConfig cfg;
        cfg.victim.kind = VictimConfig::Kind::kSusan;
        cfg.victim.susan.width = 32;
        cfg.victim.susan.height = 24;
        cfg.victim.susan.mask_radius = 2;
        InterferenceConfig irq; // finite copy: drains, then everything sleeps
        irq.dma.burst_beats = 64;
        irq.src = kDram + 0x10000;
        irq.dst = kSpm;
        irq.bytes = 0x2000;
        irq.loop = false;
        cfg.interference.push_back(irq);
        cfg.preload.push_back(PreloadSpan{kDram + 0x10000, 0x2000, 5, true});
        cfg.boot_plans.push_back(RegionPlan{1ULL << 30, 1ULL << 20, 256});
        cfg.boot_plans.push_back(RegionPlan{1ULL << 30, 1ULL << 20, 16});
        cfg.warmup_cycles = 100;
        cfg.max_cycles = 10'000'000;
        cfg.cooldown_cycles = 2'000'000;
        cfg.scheduler = activity ? sim::Scheduler::kActivity : sim::Scheduler::kTickAll;
        s.points.push_back({activity ? "activity kernel" : "tick-all kernel", cfg});
    }
    return s;
}

// ---------------------------------------------------------------------------
// NoC sweeps: multi-manager contention cells, shared across all three
// fabrics (crossbar / ring / mesh) so the DoS matrix is fabric-comparative.
// ---------------------------------------------------------------------------

/// How an attacker DMA misbehaves.
enum class DosAttack : std::uint8_t {
    kHog,       ///< 256-beat bursts: burst-granular arbitration damage
    kOverdraft, ///< deeply pipelined sustained demand far beyond any budget
    kWStall,    ///< AW first, data trickled: reserves the memory-side W
                ///< channel (the stalling-manager DoS)
};

/// What the REALM units on the attacker ports are programmed to do.
enum class DosDefense : std::uint8_t { kNone, kFragmentation, kBudget, kThrottle };

constexpr const char* dos_attack_name(DosAttack a) {
    switch (a) {
    case DosAttack::kHog: return "hog";
    case DosAttack::kOverdraft: return "overdraft";
    case DosAttack::kWStall: return "wstall";
    }
    return "?";
}

constexpr const char* dos_defense_name(DosDefense d) {
    switch (d) {
    case DosDefense::kNone: return "none";
    case DosDefense::kFragmentation: return "frag";
    case DosDefense::kBudget: return "budget";
    case DosDefense::kThrottle: return "throttle";
    }
    return "?";
}

struct DosKnobs {
    TopologyKind fabric = TopologyKind::kRing;
    noc::NodeId num_nodes = 24;  ///< ring size (ignored by mesh/crossbar)
    noc::NodeId mesh_rows = 4;   ///< mesh dimensions (kMesh only)
    noc::NodeId mesh_cols = 6;
    noc::NodeId attackers = 1;
    DosAttack attack = DosAttack::kHog;
    DosDefense defense = DosDefense::kNone;
    std::uint64_t victim_bytes = 0x1000;
    /// Mesh routing policy (kMesh only); labelled only by the routing
    /// sweeps so the legacy matrices keep their labels (and resume keys).
    noc::RoutingPolicy routing = noc::RoutingPolicy::kXY;
    bool label_routing = false;
};

/// One DoS cell: a stream victim reading (and lightly writing) the shared
/// memory while `attackers` DMAs interfere, every manager port behind a
/// REALM unit. On the NoC fabrics the roles follow the canonical
/// `make_ring_roles` / `make_mesh_roles` layout — two memory nodes, the
/// shared one at 0x0 and a spill node at 0x10'0000; on the crossbar the
/// same access pattern lands in DRAM behind the LLC, shifted to the DRAM
/// base. Cell labels and traffic knobs are identical across fabrics, so the
/// three matrices compare one regulation story on three interconnects.
ScenarioConfig dos_point(const DosKnobs& k) {
    const bool xbar = k.fabric == TopologyKind::kCheshire;
    const axi::Addr fabric_base = xbar ? 0x8000'0000 : 0x0;
    const axi::Addr kShared = fabric_base;
    const axi::Addr kSpill = fabric_base + 0x10'0000;

    ScenarioConfig cfg;
    cfg.topology.kind = k.fabric;
    std::vector<RingNodeSpec>* nodes = nullptr;
    switch (k.fabric) {
    case TopologyKind::kRing:
        cfg.topology.ring.num_nodes = k.num_nodes;
        cfg.topology.ring.nodes = make_ring_roles(k.num_nodes, k.attackers, 2);
        nodes = &cfg.topology.ring.nodes;
        break;
    case TopologyKind::kMesh:
        cfg.topology.mesh.rows = k.mesh_rows;
        cfg.topology.mesh.cols = k.mesh_cols;
        cfg.topology.mesh.routing = k.routing;
        cfg.topology.mesh.nodes =
            make_mesh_roles(k.mesh_rows, k.mesh_cols, k.attackers, 2);
        nodes = &cfg.topology.mesh.nodes;
        break;
    case TopologyKind::kCheshire:
        cfg.soc.num_dsa = std::max<std::uint32_t>(k.attackers, 1);
        cfg.soc.llc.max_outstanding = 4;
        break;
    }
    // Defense "none" exposes the structural W-reservation vector too: the
    // write buffer is the unit's always-on protection, so strip it from the
    // *attackers'* units to model an unprotected fabric (cf. the
    // `ablation-dos` pair). On the NoC fabrics the victim's unit stays
    // constant across cells so defense columns compare the same victim
    // configuration; the crossbar SoC has one unit template, so there the
    // strip applies to every unit (noted per sweep).
    if (k.defense == DosDefense::kNone) {
        if (nodes != nullptr) {
            rt::RealmUnitConfig unprotected = k.fabric == TopologyKind::kMesh
                                                  ? cfg.topology.mesh.realm
                                                  : cfg.topology.ring.realm;
            unprotected.write_buffer_enabled = false;
            for (auto& node : *nodes) {
                if (node.role == RingRole::kInterference) {
                    node.realm_config = unprotected;
                }
            }
        } else {
            cfg.soc.realm.write_buffer_enabled = false;
        }
    }

    cfg.victim.kind = VictimConfig::Kind::kStream;
    cfg.victim.stream = {.base = kShared, .bytes = k.victim_bytes, .op_bytes = 8,
                         .stride_bytes = 8, .store_ratio16 = 4, .repeat = 2};

    // Victim working set plus the attacker read blocks on the shared node;
    // a smaller pattern block on the spill node feeds the W-stall attack.
    cfg.preload.push_back(PreloadSpan{kShared, 0x10000, 1, false});
    cfg.preload.push_back(PreloadSpan{kSpill, 0x4000, 7, false});

    for (noc::NodeId i = 0; i < k.attackers; ++i) {
        // Hundreds of attackers (mesh-contention-large) reuse 24 distinct
        // stream offsets so every src/dst stays inside the 128 KiB memory
        // spans; the legacy matrices never exceed 9 attackers, so their
        // addresses are unchanged.
        const axi::Addr slot = i % 24;
        InterferenceConfig irq;
        irq.hostile = true; // detector ground truth: every DoS cell attacker
        switch (k.attack) {
        case DosAttack::kHog:
            irq.dma.burst_beats = 256;
            irq.dma.num_buffers = 2;
            irq.src = kShared + 0x8000 + slot * 0x800;
            irq.dst = kSpill + 0x4000 + slot * 0x1000;
            break;
        case DosAttack::kOverdraft:
            irq.dma.burst_beats = 64;
            irq.dma.num_buffers = 4;
            irq.dma.max_outstanding_reads = 4;
            irq.dma.max_outstanding_writes = 4;
            irq.src = kShared + 0x8000 + slot * 0x800;
            irq.dst = kSpill + 0x4000 + slot * 0x1000;
            break;
        case DosAttack::kWStall:
            irq.dma.burst_beats = 8;
            irq.dma.reserve_before_data = true;
            irq.dma.w_stall_cycles = 64;
            irq.src = kSpill + slot * 0x400;
            irq.dst = kShared + 0xC000 + slot * 0x400;
            break;
        }
        irq.bytes = 0x1000;
        irq.loop = true;
        cfg.interference.push_back(irq);
    }

    // Config path: plan 0 = victim unit (always free), plan 1+i = attacker i.
    const auto plan_attackers = [&](const RegionPlan& plan) {
        cfg.boot_plans.push_back(RegionPlan{1ULL << 30, 1ULL << 20, 256}); // victim
        for (noc::NodeId i = 0; i < k.attackers; ++i) { cfg.boot_plans.push_back(plan); }
    };
    switch (k.defense) {
    case DosDefense::kNone: break; // unregulated (and no write buffer)
    case DosDefense::kFragmentation:
        plan_attackers(RegionPlan{1ULL << 30, 1ULL << 20, 2});
        break;
    case DosDefense::kBudget:
        plan_attackers(RegionPlan{1024, 2000, 2});
        break;
    case DosDefense::kThrottle:
        plan_attackers(RegionPlan{1024, 2000, 2});
        cfg.throttle_dsa = true;
        break;
    }

    cfg.warmup_cycles = 2000;
    cfg.max_cycles = 5'000'000;
    return cfg;
}

std::string dos_cell_label(const DosKnobs& k) {
    char buf[64];
    if (k.label_routing) {
        std::snprintf(buf, sizeof buf, "%uatk/%s/%s/%s",
                      static_cast<unsigned>(k.attackers), dos_attack_name(k.attack),
                      dos_defense_name(k.defense), noc::to_string(k.routing));
    } else {
        std::snprintf(buf, sizeof buf, "%uatk/%s/%s",
                      static_cast<unsigned>(k.attackers), dos_attack_name(k.attack),
                      dos_defense_name(k.defense));
    }
    return buf;
}


/// The single source of truth for the full-matrix cell grid (attackers x
/// attack mode x defense). Both the per-fabric matrices and the
/// routing-policy study iterate this grid, so the cells can never drift
/// apart.
template <typename Emit>
void for_each_matrix_cell(Emit&& emit) {
    for (const std::uint8_t attackers :
         {std::uint8_t{1}, std::uint8_t{3}, std::uint8_t{9}}) {
        for (const DosAttack attack :
             {DosAttack::kHog, DosAttack::kOverdraft, DosAttack::kWStall}) {
            for (const DosDefense defense :
                 {DosDefense::kNone, DosDefense::kFragmentation, DosDefense::kBudget,
                  DosDefense::kThrottle}) {
                emit(attackers, attack, defense);
            }
        }
    }
    // No-attack baselines, one per defense (appended so the legacy cells
    // keep their point order). The attack knob is irrelevant with zero
    // attackers and stays "hog" only to satisfy the label grammar; these
    // points are the false-positive ground for the monitoring plane.
    for (const DosDefense defense :
         {DosDefense::kNone, DosDefense::kFragmentation, DosDefense::kBudget,
          DosDefense::kThrottle}) {
        emit(std::uint8_t{0}, DosAttack::kHog, defense);
    }
}

/// The CI-sized 2x2x2 smoke cell grid, shared the same way.
template <typename Emit>
void for_each_smoke_cell(Emit&& emit) {
    for (const std::uint8_t attackers : {std::uint8_t{1}, std::uint8_t{2}}) {
        for (const DosAttack attack : {DosAttack::kHog, DosAttack::kWStall}) {
            for (const DosDefense defense : {DosDefense::kNone, DosDefense::kBudget}) {
                emit(attackers, attack, defense);
            }
        }
    }
    // No-attack baselines (cf. for_each_matrix_cell).
    for (const DosDefense defense : {DosDefense::kNone, DosDefense::kBudget}) {
        emit(std::uint8_t{0}, DosAttack::kHog, defense);
    }
}

/// Smoke-grid knobs on one fabric (small fabrics, small victim working set).
DosKnobs smoke_knobs(TopologyKind fabric, std::uint8_t ring_nodes,
                     std::uint8_t mesh_rows, std::uint8_t mesh_cols,
                     std::uint8_t attackers, DosAttack attack, DosDefense defense) {
    DosKnobs k{.fabric = fabric, .num_nodes = ring_nodes, .mesh_rows = mesh_rows,
               .mesh_cols = mesh_cols, .attackers = attackers, .attack = attack,
               .defense = defense};
    k.victim_bytes = 0x800;
    return k;
}

/// The full 3x3x4 DoS matrix (attackers x attack mode x defense) on one
/// fabric; every fabric runs the same cells with the same labels.
Sweep make_dos_matrix(TopologyKind fabric, std::string name, std::string title,
                      std::vector<std::string> notes) {
    Sweep s;
    s.name = std::move(name);
    s.title = std::move(title);
    s.notes = std::move(notes);
    for_each_matrix_cell([&](std::uint8_t attackers, DosAttack attack,
                             DosDefense defense) {
        const DosKnobs k{.fabric = fabric, .attackers = attackers,
                         .attack = attack, .defense = defense};
        s.points.push_back({dos_cell_label(k), dos_point(k)});
    });
    return s;
}

/// CI-sized 2x2x2 cross-section of the matrix on one fabric.
Sweep make_dos_smoke(TopologyKind fabric, std::string name, std::string title,
                     std::vector<std::string> notes, std::uint8_t ring_nodes = 8,
                     std::uint8_t mesh_rows = 2, std::uint8_t mesh_cols = 4) {
    Sweep s;
    s.name = std::move(name);
    s.title = std::move(title);
    s.notes = std::move(notes);
    for_each_smoke_cell([&](std::uint8_t attackers, DosAttack attack,
                            DosDefense defense) {
        const DosKnobs k = smoke_knobs(fabric, ring_nodes, mesh_rows, mesh_cols,
                                       attackers, attack, defense);
        s.points.push_back({dos_cell_label(k), dos_point(k)});
    });
    return s;
}

Sweep make_ring_contention() {
    Sweep s;
    s.name = "ring-contention";
    s.title = "Ring NoC scaling: victim latency vs ring size under 2-attacker contention";
    s.notes = {"per size: uncontended reference, 256-beat hog attackers, and the",
               "same attackers budgeted to 0.5 B/cycle each. Idle hops cost nothing",
               "under the activity-aware kernel, so rings scale to dozens of nodes."};
    s.baseline_index = 0;
    for (const std::uint8_t nodes : {std::uint8_t{6}, std::uint8_t{12}, std::uint8_t{24},
                                     std::uint8_t{48}}) {
        char label[32];
        DosKnobs solo{.num_nodes = nodes, .attackers = 0};
        std::snprintf(label, sizeof label, "N=%u solo", static_cast<unsigned>(nodes));
        s.points.push_back({label, dos_point(solo)});
        DosKnobs hog{.num_nodes = nodes, .attackers = 2, .attack = DosAttack::kHog};
        std::snprintf(label, sizeof label, "N=%u hog", static_cast<unsigned>(nodes));
        s.points.push_back({label, dos_point(hog)});
        DosKnobs def = hog;
        def.defense = DosDefense::kBudget;
        std::snprintf(label, sizeof label, "N=%u budget", static_cast<unsigned>(nodes));
        s.points.push_back({label, dos_point(def)});
    }
    return s;
}

Sweep make_mesh_contention() {
    Sweep s;
    s.name = "mesh-contention";
    s.title = "Mesh NoC scaling: victim latency vs mesh size under 2-attacker contention";
    s.notes = {"same cells as ring-contention on 2x3 ... 6x8 meshes (6-48 nodes):",
               "uncontended reference, 256-beat hog attackers, and the same attackers",
               "budgeted. XY routing spreads the flows over multiple paths, so the",
               "contention the victim sees concentrates at the memory-column merge."};
    s.baseline_index = 0;
    const std::pair<std::uint8_t, std::uint8_t> sizes[] = {
        {2, 3}, {3, 4}, {4, 6}, {6, 8}};
    for (const auto& [rows, cols] : sizes) {
        char label[32];
        DosKnobs solo{.fabric = TopologyKind::kMesh, .mesh_rows = rows,
                      .mesh_cols = cols, .attackers = 0};
        std::snprintf(label, sizeof label, "%ux%u solo", static_cast<unsigned>(rows),
                      static_cast<unsigned>(cols));
        s.points.push_back({label, dos_point(solo)});
        DosKnobs hog = solo;
        hog.attackers = 2;
        hog.attack = DosAttack::kHog;
        std::snprintf(label, sizeof label, "%ux%u hog", static_cast<unsigned>(rows),
                      static_cast<unsigned>(cols));
        s.points.push_back({label, dos_point(hog)});
        DosKnobs def = hog;
        def.defense = DosDefense::kBudget;
        std::snprintf(label, sizeof label, "%ux%u budget", static_cast<unsigned>(rows),
                      static_cast<unsigned>(cols));
        s.points.push_back({label, dos_point(def)});
    }
    return s;
}

/// The sharded-kernel stress extension of `mesh-contention`: 16x16 and
/// 32x32 fabrics where *hundreds* of nodes host interference managers, the
/// regime the column-stripe shards exist for (run with `--shards N` to
/// split the tick work across workers; results are bit-identical for every
/// shard count). A separate sweep so the legacy 2x3..6x8 baselines and CI
/// budgets stay untouched.
Sweep make_mesh_contention_large() {
    Sweep s;
    s.name = "mesh-contention-large";
    s.title = "Large-mesh contention: 16x16 / 32x32 fabrics, hundreds of managers";
    s.notes = {"per size: uncontended reference, hog attackers on roughly half the",
               "nodes (128 / 256 managers), and the same attackers budgeted. The",
               "attackers reuse 24 stream offsets, so the cells measure fabric-scale",
               "contention, not working-set growth. Sized for the sharded kernel:",
               "--shards 4 on a 16x16 splits the column stripes across workers."};
    s.baseline_index = 0;
    struct LargeSize {
        noc::NodeId rows, cols, attackers;
    };
    const LargeSize sizes[] = {{16, 16, 128}, {32, 32, 256}};
    for (const auto& [rows, cols, attackers] : sizes) {
        char label[48];
        DosKnobs solo{.fabric = TopologyKind::kMesh, .mesh_rows = rows,
                      .mesh_cols = cols, .attackers = 0};
        solo.victim_bytes = 0x800;
        std::snprintf(label, sizeof label, "%ux%u solo", static_cast<unsigned>(rows),
                      static_cast<unsigned>(cols));
        ScenarioConfig cfg = dos_point(solo);
        cfg.max_cycles = 600'000;
        s.points.push_back({label, cfg});
        DosKnobs hog = solo;
        hog.attackers = attackers;
        hog.attack = DosAttack::kHog;
        std::snprintf(label, sizeof label, "%ux%u hog%u", static_cast<unsigned>(rows),
                      static_cast<unsigned>(cols), static_cast<unsigned>(attackers));
        cfg = dos_point(hog);
        cfg.max_cycles = 600'000;
        s.points.push_back({label, cfg});
        DosKnobs def = hog;
        def.defense = DosDefense::kBudget;
        std::snprintf(label, sizeof label, "%ux%u budget%u",
                      static_cast<unsigned>(rows), static_cast<unsigned>(cols),
                      static_cast<unsigned>(attackers));
        cfg = dos_point(def);
        cfg.max_cycles = 600'000;
        s.points.push_back({label, cfg});
    }
    return s;
}

Sweep make_ring_dos_matrix() {
    return make_dos_matrix(
        TopologyKind::kRing, "ring-dos-matrix",
        "Multi-manager DoS matrix on a 24-node ring: attackers x attack mode x defense",
        {"cells report the worst-case victim latency (load_lat_max /",
         "store_lat_max in the JSON dump); 'none' also strips the attackers'",
         "write buffers, so wstall shows the raw W-reservation DoS of [14]."});
}

Sweep make_mesh_dos_matrix() {
    return make_dos_matrix(
        TopologyKind::kMesh, "mesh-dos-matrix",
        "Multi-manager DoS matrix on a 4x6 mesh: attackers x attack mode x defense",
        {"same cells as ring-dos-matrix on a 24-node XY-routed mesh; multi-path",
         "contention concentrates at the memory nodes' merge routers, the regime",
         "where per-manager budgets and burst fragmentation matter most."});
}

Sweep make_xbar_dos_matrix() {
    return make_dos_matrix(
        TopologyKind::kCheshire, "xbar-dos-matrix",
        "Multi-manager DoS matrix on the Cheshire crossbar: "
        "attackers x attack mode x defense",
        {"same cells as ring-dos-matrix on the crossbar SoC (attackers on DSA",
         "ports, shared span in DRAM behind the LLC). The SoC has one unit",
         "template, so 'none' strips the write buffer on every unit, victim",
         "included."});
}

Sweep make_ring_dos_smoke() {
    return make_dos_smoke(TopologyKind::kRing, "ring-dos-smoke",
                          "Ring DoS matrix, CI-sized: 8 nodes, 2x2x2 cells",
                          {"small cross-section of ring-dos-matrix for CI and tests."});
}

/// The smoke cells re-run with deliberately tight credited-transport knobs:
/// a VC barely holding one worm, a small end-to-end pool, and a non-zero
/// credit-return delay (returns ride the response network). This is the
/// regime where wormhole serialization and credit exhaustion dominate —
/// head-of-line blocking, back-pressured injection — and where a
/// flow-control bug would deadlock. CI runs these next to the default
/// smokes precisely because the bounds are enforced by assertion: a credit
/// leak or buffer overrun aborts the run instead of skewing a number.
Sweep make_credit_smoke(TopologyKind fabric, std::string name, std::string title) {
    Sweep s = make_dos_smoke(
        fabric, std::move(name), std::move(title),
        {"tight credited flow control: flits_per_packet 4, vc_depth 4 (one",
         "worm), e2e_credits 8, credit_return_delay 4 — worst-case",
         "serialization and credit back-pressure; every buffer bound",
         "asserted, deadlock-free required."});
    for (SweepPoint& p : s.points) {
        NocTopologyConfig& noc = fabric == TopologyKind::kMesh
                                     ? static_cast<NocTopologyConfig&>(p.config.topology.mesh)
                                     : static_cast<NocTopologyConfig&>(p.config.topology.ring);
        noc.flits_per_packet = 4;
        noc.vc_depth = 4;
        noc.e2e_credits = 8;
        noc.credit_return_delay = 4;
    }
    return s;
}

Sweep make_ring_credit_smoke() {
    return make_credit_smoke(TopologyKind::kRing, "ring-credit-dos-smoke",
                             "Ring DoS smoke under tight credits: 8 nodes, "
                             "vc_depth=4, e2e_credits=8");
}

Sweep make_mesh_credit_smoke() {
    return make_credit_smoke(TopologyKind::kMesh, "mesh-credit-dos-smoke",
                             "Mesh DoS smoke under tight credits: 2x4 mesh, "
                             "vc_depth=4, e2e_credits=8");
}

Sweep make_mesh_dos_smoke() {
    return make_dos_smoke(TopologyKind::kMesh, "mesh-dos-smoke",
                          "Mesh DoS matrix, CI-sized: 2x4 mesh, 2x2x2 cells",
                          {"small cross-section of mesh-dos-matrix for CI and tests."});
}

Sweep make_xbar_dos_smoke() {
    return make_dos_smoke(TopologyKind::kCheshire, "xbar-dos-smoke",
                          "Crossbar DoS matrix, CI-sized: 2x2x2 cells",
                          {"small cross-section of xbar-dos-matrix for CI and tests."});
}

Sweep make_mesh_search_smoke() {
    return make_dos_smoke(
        TopologyKind::kMesh, "mesh-search-smoke",
        "Mesh DoS matrix for adversarial search, CI-sized: 4x4 mesh, 2x2x2 cells",
        {"the mesh-dos-smoke cells on a square 4x4 mesh — the enumerated grid",
         "the scenario_search bench compares its searched attackers against."},
        8, 4, 4);
}

// ---------------------------------------------------------------------------
// Routing-policy sweeps: every mesh DoS cell under all four routing
// policies (XY / YX / O1TURN / west-first), labelled
// <N>atk/<attack>/<defense>/<policy> so the matrix report renders the
// policy as a row dimension. This converts the single-fabric DoS matrix
// into a routing-freedom study: how much does fabric freedom buy the
// victim under the same regulation budget?
// ---------------------------------------------------------------------------

/// The full 3x3x4 DoS matrix x 4 routing policies on the 4x6 mesh.
Sweep make_mesh_routing_dos_matrix() {
    Sweep s;
    s.name = "mesh-routing-dos-matrix";
    s.title = "Mesh DoS matrix x routing policy (XY / YX / O1TURN / west-first)";
    s.notes = {"the same attackers x attack x defense cells as mesh-dos-matrix,",
               "run under all four routing policies on the same 4x6 mesh: XY/YX",
               "concentrate merges on columns/rows, O1TURN randomizes per worm",
               "(two VCs), west-first adapts by link occupancy. Cells report the",
               "worst-case victim latency; per-policy rows are comparable cell",
               "by cell."};
    for (const noc::RoutingPolicy routing : noc::kAllRoutingPolicies) {
        for_each_matrix_cell([&](std::uint8_t attackers, DosAttack attack,
                                 DosDefense defense) {
            DosKnobs k{.fabric = TopologyKind::kMesh, .attackers = attackers,
                       .attack = attack, .defense = defense};
            k.routing = routing;
            k.label_routing = true;
            ScenarioConfig cfg = dos_point(k);
            // The undefended 9-attacker cells are legitimately an order of
            // magnitude slower under the multi-path policies (reorder
            // round trips, row/column spread); give them headroom so a
            // harness timeout never reads as a deadlock.
            cfg.max_cycles = 30'000'000;
            s.points.push_back({dos_cell_label(k), std::move(cfg)});
        });
    }
    return s;
}

/// CI-sized cross-section: the 2x2x2 smoke cells under all four policies.
Sweep make_mesh_routing_dos_smoke() {
    Sweep s;
    s.name = "mesh-routing-dos-smoke";
    s.title = "Mesh routing-policy DoS smoke: 2x4 mesh, 2x2x2 cells x 4 policies";
    s.notes = {"small cross-section of mesh-routing-dos-matrix for CI: every",
               "policy must complete the same cells without deadlock, and the",
               "defended cells must beat the undefended ones under each policy."};
    for (const noc::RoutingPolicy routing : noc::kAllRoutingPolicies) {
        for_each_smoke_cell([&](std::uint8_t attackers, DosAttack attack,
                                DosDefense defense) {
            DosKnobs k = smoke_knobs(TopologyKind::kMesh, /*ring_nodes=*/8,
                                     /*mesh_rows=*/2, /*mesh_cols=*/4, attackers,
                                     attack, defense);
            k.routing = routing;
            k.label_routing = true;
            s.points.push_back({dos_cell_label(k), dos_point(k)});
        });
    }
    return s;
}

/// Contention scaling x routing policy: how each policy spreads two hog
/// attackers as the mesh grows.
Sweep make_mesh_routing_contention() {
    Sweep s;
    s.name = "mesh-routing-contention";
    s.title = "Mesh contention scaling x routing policy (2 hog attackers)";
    s.notes = {"per size and policy: uncontended reference, 256-beat hog",
               "attackers, and the same attackers budgeted — mesh-contention",
               "with the routing policy as an extra axis. The flat report",
               "carries the policy in the point label."};
    s.baseline_index = 0;
    const std::pair<std::uint8_t, std::uint8_t> sizes[] = {{2, 3}, {4, 6}};
    for (const noc::RoutingPolicy routing : noc::kAllRoutingPolicies) {
        for (const auto& [rows, cols] : sizes) {
            char label[48];
            DosKnobs solo{.fabric = TopologyKind::kMesh, .mesh_rows = rows,
                          .mesh_cols = cols, .attackers = 0, .routing = routing};
            std::snprintf(label, sizeof label, "%ux%u solo %s",
                          static_cast<unsigned>(rows), static_cast<unsigned>(cols),
                          noc::to_string(routing));
            s.points.push_back({label, dos_point(solo)});
            DosKnobs hog = solo;
            hog.attackers = 2;
            hog.attack = DosAttack::kHog;
            std::snprintf(label, sizeof label, "%ux%u hog %s",
                          static_cast<unsigned>(rows), static_cast<unsigned>(cols),
                          noc::to_string(routing));
            s.points.push_back({label, dos_point(hog)});
            DosKnobs def = hog;
            def.defense = DosDefense::kBudget;
            std::snprintf(label, sizeof label, "%ux%u budget %s",
                          static_cast<unsigned>(rows), static_cast<unsigned>(cols),
                          noc::to_string(routing));
            s.points.push_back({label, dos_point(def)});
        }
    }
    return s;
}

using Factory = Sweep (*)();

const std::vector<std::pair<std::string, Factory>>& factories() {
    static const std::vector<std::pair<std::string, Factory>> kFactories = {
        {"fig6a", &make_fig6a},
        {"fig6a-llc2", &make_fig6a_llc2},
        {"fig6b", &make_fig6b},
        {"ablation-period", &make_ablation_period},
        {"ablation-throttle", &make_ablation_throttle},
        {"ablation-dos", &make_ablation_dos},
        {"random-mix", &make_random_mix},
        {"idle-tail", &make_idle_tail},
        {"ring-contention", &make_ring_contention},
        {"ring-dos-matrix", &make_ring_dos_matrix},
        {"ring-dos-smoke", &make_ring_dos_smoke},
        {"ring-credit-dos-smoke", &make_ring_credit_smoke},
        {"mesh-credit-dos-smoke", &make_mesh_credit_smoke},
        {"mesh-contention", &make_mesh_contention},
        {"mesh-contention-large", &make_mesh_contention_large},
        {"mesh-dos-matrix", &make_mesh_dos_matrix},
        {"mesh-dos-smoke", &make_mesh_dos_smoke},
        {"mesh-search-smoke", &make_mesh_search_smoke},
        {"mesh-routing-dos-matrix", &make_mesh_routing_dos_matrix},
        {"mesh-routing-dos-smoke", &make_mesh_routing_dos_smoke},
        {"mesh-routing-contention", &make_mesh_routing_contention},
        {"xbar-dos-matrix", &make_xbar_dos_matrix},
        {"xbar-dos-smoke", &make_xbar_dos_smoke},
    };
    return kFactories;
}

} // namespace

std::vector<std::string> sweep_names() {
    std::vector<std::string> names;
    names.reserve(factories().size());
    for (const auto& [name, factory] : factories()) { names.push_back(name); }
    return names;
}

bool has_sweep(const std::string& name) {
    for (const auto& [known, factory] : factories()) {
        if (known == name) { return true; }
    }
    return false;
}

Sweep make_sweep(const std::string& name) {
    for (const auto& [known, factory] : factories()) {
        if (known != name) { continue; }
        Sweep sweep = factory();
        for (std::size_t i = 0; i < sweep.points.size(); ++i) {
            sweep.points[i].config.seed = sim::derive_seed(sweep.name, i);
            if (sweep.points[i].config.name == "scenario") {
                sweep.points[i].config.name = sweep.name + "/" + sweep.points[i].label;
            }
        }
        return sweep;
    }
    REALM_EXPECTS(false, "unknown sweep: " + name);
    return {};
}

} // namespace realm::scenario
