/// Unit tests for workloads, the Susan kernel/trace, the core model, and the
/// DMA engine.
#include "axi/checker.hpp"
#include "mem/axi_mem_slave.hpp"
#include "mem/backend.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/susan.hpp"
#include "traffic/workload.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace realm::traffic {
namespace {

using test::step_until;

TEST(StreamWorkload, SweepsRangeInOrder) {
    StreamWorkload wl{{.base = 0x100, .bytes = 64, .op_bytes = 8, .stride_bytes = 8}};
    std::vector<axi::Addr> addrs;
    while (auto op = wl.next()) { addrs.push_back(op->addr); }
    ASSERT_EQ(addrs.size(), 8U);
    EXPECT_EQ(addrs.front(), 0x100U);
    EXPECT_EQ(addrs.back(), 0x138U);
}

TEST(StreamWorkload, StoreRatioRespected) {
    StreamWorkload wl{
        {.base = 0, .bytes = 1280, .op_bytes = 8, .stride_bytes = 8, .store_ratio16 = 4}};
    int stores = 0;
    int total = 0;
    while (auto op = wl.next()) {
        stores += op->kind == MemOp::Kind::kStore ? 1 : 0;
        ++total;
    }
    EXPECT_EQ(total, 160);
    EXPECT_EQ(stores, 40); // 4 of every 16
}

TEST(RandomWorkload, DeterministicPerSeed) {
    RandomWorkload a{{.num_ops = 100, .seed = 5}};
    RandomWorkload b{{.num_ops = 100, .seed = 5}};
    for (int i = 0; i < 100; ++i) {
        const auto oa = a.next();
        const auto ob = b.next();
        ASSERT_TRUE(oa && ob);
        EXPECT_EQ(oa->addr, ob->addr);
        EXPECT_EQ(oa->kind, ob->kind);
    }
}

TEST(RandomWorkload, RestartReproducesStream) {
    RandomWorkload wl{{.num_ops = 50, .seed = 9}};
    std::vector<axi::Addr> first;
    while (auto op = wl.next()) { first.push_back(op->addr); }
    wl.restart();
    std::vector<axi::Addr> second;
    while (auto op = wl.next()) { second.push_back(op->addr); }
    EXPECT_EQ(first, second);
}

TEST(PointerChaseWorkload, ChainVisitsAllSlots) {
    PointerChaseWorkload wl{{.base = 0, .slots = 64, .hops = 64, .seed = 3}};
    std::set<std::uint64_t> visited;
    while (auto op = wl.next()) { visited.insert(op->addr / 8); }
    EXPECT_EQ(visited.size(), 64U) << "Sattolo cycle must visit every slot";
}

// --- Susan ------------------------------------------------------------------

TEST(Susan, ReferenceSmoothingReducesNoiseVariance) {
    const std::uint32_t w = 48;
    const std::uint32_t h = 36;
    const auto img = SusanTraceGenerator::make_image(w, h, 7);
    const auto out = SusanTraceGenerator::smooth_reference(img, w, h, 2, 20);

    // Compare local variance (mean squared difference of horizontal
    // neighbours) in a flat region away from the synthetic rectangles —
    // USAN deliberately preserves the rectangle edges, so variance there
    // must NOT be used to judge noise removal.
    const auto local_var = [&](const std::vector<std::uint8_t>& im) {
        double acc = 0;
        int n = 0;
        for (std::uint32_t y = 4; y < h / 4 - 2; ++y) {
            for (std::uint32_t x = 4; x + 1 < w / 2; ++x) {
                const double d = static_cast<double>(im[y * w + x]) -
                                 static_cast<double>(im[y * w + x + 1]);
                acc += d * d;
                ++n;
            }
        }
        return acc / n;
    };
    EXPECT_LT(local_var(out), local_var(img) * 0.5);
}

TEST(Susan, EdgePreservedBetterThanMeanFilter) {
    // USAN smoothing must not blur across the bright rectangle's edge as a
    // plain box filter would: check the edge contrast survives.
    const std::uint32_t w = 48;
    const std::uint32_t h = 36;
    auto img = SusanTraceGenerator::make_image(w, h, 7);
    const auto out = SusanTraceGenerator::smooth_reference(img, w, h, 2, 20);
    // The rectangle spans x in (w/5, w/2), y in (h/4, h/2): sample across
    // its left edge.
    const std::uint32_t y = h / 3;
    const std::uint32_t x_in = w / 5 + 2;
    const std::uint32_t x_out = w / 5 - 2;
    const int contrast_out =
        std::abs(int{out[y * w + x_in]} - int{out[y * w + x_out]});
    EXPECT_GT(contrast_out, 60) << "edge must survive USAN smoothing";
}

TEST(Susan, TraceIsMemoryIntense) {
    SusanConfig cfg;
    cfg.width = 48;
    cfg.height = 36;
    SusanTraceGenerator gen{cfg};
    ASSERT_GT(gen.ops().size(), 100U);
    // Compute gaps must be small: Susan is the paper's memory-bound pick.
    std::uint64_t compute = 0;
    for (const MemOp& op : gen.ops()) { compute += op.compute_cycles; }
    const double compute_per_op =
        static_cast<double>(compute) / static_cast<double>(gen.ops().size());
    EXPECT_LT(compute_per_op, 30.0);
    EXPECT_GT(gen.emitted_stores(), 0U);
    EXPECT_GT(gen.filtered_loads(), gen.emitted_loads())
        << "the L1 filter should absorb most neighbourhood re-reads";
}

TEST(Susan, TraceMatchesKernelOutput) {
    SusanConfig cfg;
    cfg.width = 40;
    cfg.height = 30;
    SusanTraceGenerator gen{cfg};
    const auto ref = SusanTraceGenerator::smooth_reference(gen.input_image(), cfg.width,
                                                           cfg.height, cfg.mask_radius,
                                                           cfg.threshold);
    EXPECT_EQ(gen.output_image(), ref)
        << "trace generation must execute the same arithmetic as the reference";
}

TEST(Susan, OpsCapRespected) {
    SusanConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.max_ops = 500;
    SusanTraceGenerator gen{cfg};
    EXPECT_LE(gen.ops().size(), 500U);
}

// --- CoreModel ---------------------------------------------------------------

class CoreFixture : public ::testing::Test {
protected:
    CoreFixture() {
        slave = std::make_unique<mem::AxiMemSlave>(
            ctx, "mem", ch, std::make_unique<mem::SramBackend>(1, 1),
            mem::AxiMemSlaveConfig{8, 8, 0});
    }
    sim::SimContext ctx;
    axi::AxiChannel ch{ctx, "core"};
    std::unique_ptr<mem::AxiMemSlave> slave;
};

TEST_F(CoreFixture, RunsStreamWorkloadToCompletion) {
    StreamWorkload wl{{.base = 0, .bytes = 512, .op_bytes = 8, .stride_bytes = 8,
                       .store_ratio16 = 4}};
    CoreModel core{ctx, "core", ch, wl};
    step_until(ctx, [&] { return core.done(); }, 5000);
    EXPECT_EQ(core.loads_retired() + core.stores_retired(), 64U);
    EXPECT_GT(core.load_latency().count(), 0U);
    EXPECT_GT(core.load_latency().mean(), 2.0);
}

TEST_F(CoreFixture, BlockingLoadsSerializeOnLatency) {
    // With 1-cycle SRAM and blocking loads, run time scales with the
    // per-load round trip, not the op count alone.
    StreamWorkload wl{{.base = 0, .bytes = 160, .op_bytes = 8, .stride_bytes = 8}};
    CoreModel core{ctx, "core", ch, wl};
    step_until(ctx, [&] { return core.done(); }, 5000);
    const double per_load = static_cast<double>(core.finish_cycle()) / 20.0;
    EXPECT_GE(per_load, 3.0) << "blocking loads cannot complete in one cycle";
    EXPECT_GT(core.load_stall_cycles(), 20U);
}

TEST_F(CoreFixture, ComputeCyclesAddRunTime) {
    StreamWorkload fast{{.base = 0, .bytes = 80, .op_bytes = 8, .stride_bytes = 8}};
    CoreModel core_fast{ctx, "core", ch, fast};
    step_until(ctx, [&] { return core_fast.done(); }, 5000);
    const sim::Cycle t_fast = core_fast.finish_cycle();

    ctx.reset();
    StreamWorkload slow{{.base = 0, .bytes = 80, .op_bytes = 8, .stride_bytes = 8,
                         .compute_cycles = 10}};
    // Reuse the channel/slave; a second core on the same port is fine since
    // the first one is done (and reset cleared everything).
    CoreModel core_slow{ctx, "core2", ch, slow};
    step_until(ctx, [&] { return core_slow.done(); }, 5000);
    EXPECT_GT(core_slow.finish_cycle(), t_fast + 80)
        << "10 compute cycles per op must lengthen execution";
    EXPECT_EQ(core_slow.compute_cycles(), 100U);
}

TEST_F(CoreFixture, StoreBufferAbsorbsStores) {
    // Stores only: with a 4-deep buffer the core retires them without
    // blocking on each response.
    StreamWorkload wl{{.base = 0,
                       .bytes = 160,
                       .op_bytes = 8,
                       .stride_bytes = 8,
                       .store_ratio16 = 16}};
    CoreModel core{ctx, "core", ch, wl};
    step_until(ctx, [&] { return core.done(); }, 5000);
    EXPECT_EQ(core.stores_retired(), 20U);
    EXPECT_GT(core.store_latency().count(), 0U);
}

// --- DmaEngine ----------------------------------------------------------------

class DmaFixture : public ::testing::Test {
protected:
    DmaFixture() {
        slave = std::make_unique<mem::AxiMemSlave>(
            ctx, "mem", ch, std::make_unique<mem::SramBackend>(1, 1),
            mem::AxiMemSlaveConfig{8, 8, 0});
    }
    mem::SparseMemory& store() {
        return static_cast<mem::SramBackend&>(slave->backend()).store();
    }
    sim::SimContext ctx;
    axi::AxiChannel ch{ctx, "dma"};
    std::unique_ptr<mem::AxiMemSlave> slave;
};

TEST_F(DmaFixture, CopiesDataCorrectly) {
    for (axi::Addr a = 0; a < 4096; a += 8) { store().write_u64(a, a * 31 + 7); }
    DmaConfig cfg;
    cfg.burst_beats = 16;
    DmaEngine dma{ctx, "dma", ch, cfg};
    dma.push_job(DmaJob{0x0, 0x10000, 4096, false});
    step_until(ctx, [&] { return dma.idle(); }, 20000);
    for (axi::Addr a = 0; a < 4096; a += 8) {
        ASSERT_EQ(store().read_u64(0x10000 + a), a * 31 + 7) << "at offset " << a;
    }
    EXPECT_EQ(dma.bytes_read(), 4096U);
    EXPECT_EQ(dma.bytes_written(), 4096U);
    EXPECT_EQ(dma.chunks_completed(), 32U);
}

TEST_F(DmaFixture, TailChunkSmallerThanBurst) {
    DmaConfig cfg;
    cfg.burst_beats = 16; // 128 B chunks
    DmaEngine dma{ctx, "dma", ch, cfg};
    dma.push_job(DmaJob{0x0, 0x10000, 128 + 64, false}); // 1.5 chunks
    step_until(ctx, [&] { return dma.idle(); }, 10000);
    EXPECT_EQ(dma.bytes_written(), 192U);
    EXPECT_EQ(dma.chunks_completed(), 2U);
}

TEST_F(DmaFixture, LoopModeRunsUntilStopped) {
    DmaConfig cfg;
    cfg.burst_beats = 8;
    DmaEngine dma{ctx, "dma", ch, cfg};
    dma.push_job(DmaJob{0x0, 0x10000, 256, true});
    ctx.run(2000);
    EXPECT_GT(dma.chunks_completed(), 10U) << "looping job must keep copying";
    dma.stop();
    step_until(ctx, [&] { return dma.idle(); }, 20000);
}

TEST_F(DmaFixture, SustainsHighBandwidth) {
    DmaConfig cfg;
    cfg.burst_beats = 64;
    cfg.max_outstanding_reads = 2;
    DmaEngine dma{ctx, "dma", ch, cfg};
    dma.push_job(DmaJob{0x0, 0x20000, 16384, false});
    step_until(ctx, [&] { return dma.idle(); }, 40000);
    // Reads and writes stream concurrently: total moved bytes per cycle
    // should approach 2 x 8 B both directions combined.
    EXPECT_GT(dma.bandwidth(), 6.0) << "double-buffering should overlap R and W";
}

TEST_F(DmaFixture, ProtocolCleanUnderChecker) {
    // Run the DMA through a protocol checker to prove it emits legal AXI4.
    sim::SimContext ctx2;
    axi::AxiChannel up{ctx2, "up"};
    axi::AxiChannel down{ctx2, "down"};
    axi::AxiChecker checker{ctx2, "chk", up, down, /*throw=*/true};
    mem::AxiMemSlave slave2{ctx2, "mem", down, std::make_unique<mem::SramBackend>(1, 1),
                            mem::AxiMemSlaveConfig{8, 8, 0}};
    DmaConfig cfg;
    cfg.burst_beats = 32;
    DmaEngine dma{ctx2, "dma", up, cfg};
    dma.push_job(DmaJob{0x0, 0x8000, 2048, false});
    ASSERT_TRUE(ctx2.run_until([&] { return dma.idle(); }, 20000));
    EXPECT_EQ(checker.violation_count(), 0U);
    EXPECT_EQ(checker.completed_writes(), 8U);
    EXPECT_EQ(checker.completed_reads(), 8U);
}

TEST_F(DmaFixture, StallModeTrickleWrites) {
    DmaConfig cfg;
    cfg.burst_beats = 8;
    cfg.w_stall_cycles = 20;
    DmaEngine dma{ctx, "dma", ch, cfg};
    dma.push_job(DmaJob{0x0, 0x10000, 64, false});
    step_until(ctx, [&] { return dma.idle(); }, 20000);
    EXPECT_GT(dma.write_latency().max(), 7U * 20U)
        << "stall cycles must stretch the write burst (7 inter-beat gaps)";
}

} // namespace
} // namespace realm::traffic
