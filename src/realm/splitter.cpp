#include "realm/splitter.hpp"

#include "sim/check.hpp"

namespace realm::rt {

GranularBurstSplitter::GranularBurstSplitter(std::uint32_t granularity_beats,
                                             std::uint32_t max_parents)
    : granularity_{granularity_beats}, max_parents_{max_parents} {
    REALM_EXPECTS(granularity_ >= 1 && granularity_ <= axi::kMaxBurstBeats,
                  "splitter granularity out of [1,256]");
    REALM_EXPECTS(max_parents_ >= 1, "splitter needs at least one parent slot");
}

void GranularBurstSplitter::reset() {
    reads_.clear();
    writes_.clear();
    child_ar_queue_.clear();
    reads_in_flight_ = 0;
    writes_in_flight_ = 0;
    fragments_created_ = 0;
    passed_intact_ = 0;
}

void GranularBurstSplitter::set_granularity(std::uint32_t beats) {
    REALM_EXPECTS(beats >= 1 && beats <= axi::kMaxBurstBeats,
                  "splitter granularity out of [1,256]");
    REALM_EXPECTS(reads_in_flight_ == 0 && writes_in_flight_ == 0,
                  "granularity is an intrusive parameter: drain before reconfiguring");
    granularity_ = beats;
}

std::vector<axi::BurstDescriptor> GranularBurstSplitter::fragment(
    const axi::BurstDescriptor& desc, std::uint8_t cache, bool lock) {
    if (!axi::is_fragmentable(desc, cache, lock) || desc.beats() <= granularity_) {
        ++passed_intact_;
        return {desc};
    }
    auto children = axi::fragment_burst(desc, granularity_);
    fragments_created_ += children.size();
    return children;
}

bool GranularBurstSplitter::can_accept_read() const noexcept {
    return reads_in_flight_ < max_parents_;
}

void GranularBurstSplitter::accept_read(const axi::ArFlit& parent) {
    REALM_EXPECTS(can_accept_read(), "splitter read parent table full");
    ParentRead pr;
    pr.parent = parent;
    pr.children = fragment(parent.descriptor(), parent.cache, parent.lock);
    for (const axi::BurstDescriptor& child : pr.children) {
        axi::ArFlit f = parent;
        f.addr = child.addr;
        f.len = child.len;
        child_ar_queue_.push_back(f);
    }
    reads_[parent.id].push_back(std::move(pr));
    ++reads_in_flight_;
}

axi::ArFlit GranularBurstSplitter::pop_child_ar() {
    REALM_EXPECTS(!child_ar_queue_.empty(), "no child AR pending");
    axi::ArFlit f = child_ar_queue_.front();
    child_ar_queue_.pop_front();
    return f;
}

GranularBurstSplitter::ProcessedR GranularBurstSplitter::process_r(const axi::RFlit& beat) {
    auto it = reads_.find(beat.id);
    REALM_EXPECTS(it != reads_.end() && !it->second.empty(),
                  "R beat for unknown parent read");
    ParentRead& pr = it->second.front();
    const axi::BurstDescriptor& child = pr.children[pr.child_index];
    ++pr.beat_in_child;
    const bool child_last = pr.beat_in_child == child.beats();
    REALM_ENSURES(beat.last == child_last, "child RLAST out of position");
    bool parent_done = false;
    if (child_last) {
        pr.beat_in_child = 0;
        ++pr.child_index;
        parent_done = pr.child_index == pr.children.size();
    }
    ProcessedR out;
    out.flit = beat;
    out.flit.last = parent_done; // gate child last flags, keep only the final one
    out.parent_completed = parent_done;
    if (parent_done) {
        it->second.pop_front();
        if (it->second.empty()) { reads_.erase(it); }
        --reads_in_flight_;
    }
    return out;
}

bool GranularBurstSplitter::can_accept_write() const noexcept {
    return writes_in_flight_ < max_parents_;
}

std::vector<axi::BurstDescriptor> GranularBurstSplitter::accept_write(
    const axi::AwFlit& parent) {
    REALM_EXPECTS(can_accept_write(), "splitter write parent table full");
    auto children = fragment(parent.descriptor(), parent.cache, parent.lock);
    ParentWrite pw;
    pw.parent = parent;
    pw.children_total = static_cast<std::uint32_t>(children.size());
    writes_[parent.id].push_back(pw);
    ++writes_in_flight_;
    return children;
}

std::optional<axi::BFlit> GranularBurstSplitter::process_b(const axi::BFlit& child) {
    auto it = writes_.find(child.id);
    REALM_EXPECTS(it != writes_.end() && !it->second.empty(),
                  "B for unknown parent write");
    ParentWrite& pw = it->second.front();
    ++pw.children_done;
    pw.merged = axi::merge_resp(pw.merged, child.resp);
    if (pw.children_done < pw.children_total) { return std::nullopt; }
    axi::BFlit parent_b;
    parent_b.id = pw.parent.id;
    parent_b.resp = pw.merged;
    parent_b.user = pw.parent.user;
    it->second.pop_front();
    if (it->second.empty()) { writes_.erase(it); }
    --writes_in_flight_;
    return parent_b;
}

} // namespace realm::rt
