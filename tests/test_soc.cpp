/// Integration tests on the full Cheshire-like SoC: boot-flow configuration
/// through the guarded register file, interference between the core and the
/// DSA DMA, and the regulation behaviours behind Figure 6.
#include "soc/cheshire_soc.hpp"
#include "traffic/core.hpp"
#include "traffic/dma.hpp"
#include "traffic/workload.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

namespace realm::soc {
namespace {

using test::step_until;

constexpr axi::Addr kDram = 0x8000'0000;
constexpr axi::Addr kSpm = 0x7000'0000;

/// Core workload: fine-granular single-beat reads over a warm LLC range.
traffic::StreamWorkload::Config core_stream(std::uint64_t ops) {
    traffic::StreamWorkload::Config c;
    c.base = kDram;
    c.bytes = 16384;
    c.op_bytes = 8;
    c.stride_bytes = 8;
    c.repeat = static_cast<std::uint32_t>(1 + ops * 8 / c.bytes);
    return c;
}

class SocFixture : public ::testing::Test {
protected:
    SocFixture() : soc{ctx, make_config()} {
        // Seed DRAM and warm the LLC for both the core's and the DMA's spans.
        for (axi::Addr a = 0; a < 0x20000; a += 8) {
            soc.dram_image().write_u64(kDram + a, a ^ 0x1234'5678);
        }
        soc.warm_llc(kDram, 0x20000);
    }

    static SocConfig make_config() {
        SocConfig cfg;
        cfg.num_dsa = 1;
        return cfg;
    }

    /// Runs the HWRoT boot script and waits for completion.
    void boot(std::uint64_t core_budget, std::uint64_t dma_budget, std::uint64_t period,
              std::uint32_t core_frag = 256, std::uint32_t dma_frag = 256) {
        soc.queue_boot_script({
            CheshireSoc::BootRegionPlan{core_budget, period, core_frag},
            CheshireSoc::BootRegionPlan{dma_budget, period, dma_frag},
        });
        step_until(ctx, [&] { return soc.boot_master().done(); }, 5000);
        ASSERT_EQ(soc.boot_master().unexpected_responses(), 0U);
    }

    void start_interference_dma(std::uint32_t burst_beats = 256) {
        traffic::DmaConfig dcfg;
        dcfg.burst_beats = burst_beats;
        dcfg.max_outstanding_reads = 2;
        dma = std::make_unique<traffic::DmaEngine>(ctx, "dsa_dma", soc.dsa_port(0), dcfg);
        // Double-buffer a 16 KiB block LLC -> SPM forever (Fig. 6 pattern).
        dma->push_job(traffic::DmaJob{kDram + 0x10000, kSpm, 0x4000, /*loop=*/true});
    }

    sim::SimContext ctx;
    CheshireSoc soc;
    std::unique_ptr<traffic::DmaEngine> dma;
    std::unique_ptr<traffic::CoreModel> core;
    std::unique_ptr<traffic::StreamWorkload> wl;

    void start_core(std::uint64_t ops) {
        wl = std::make_unique<traffic::StreamWorkload>(core_stream(ops));
        core = std::make_unique<traffic::CoreModel>(ctx, "cva6", soc.core_port(), *wl);
    }
};

TEST_F(SocFixture, BootScriptProgramsAllUnits) {
    boot(/*core_budget=*/1 << 20, /*dma_budget=*/8192, /*period=*/1000,
         /*core_frag=*/256, /*dma_frag=*/4);
    EXPECT_TRUE(soc.guard().claimed());
    EXPECT_EQ(soc.core_realm().fragmentation(), 256U);
    EXPECT_EQ(soc.dsa_realm(0).fragmentation(), 4U);
    const rt::RegionState& core_r = soc.core_realm().mr().region(0);
    EXPECT_EQ(core_r.config.start, kDram);
    EXPECT_EQ(core_r.config.budget_bytes, 1U << 20);
    const rt::RegionState& dma_r = soc.dsa_realm(0).mr().region(0);
    EXPECT_EQ(dma_r.config.budget_bytes, 8192U);
    EXPECT_EQ(dma_r.config.period_cycles, 1000U);
}

TEST_F(SocFixture, SingleSourceCoreLatencyMatchesPaperBound) {
    // Paper: "accesses by CVA6 take at most eight cycles ... LLC hot".
    start_core(200);
    step_until(ctx, [&] { return core->done(); }, 50000);
    EXPECT_LE(core->load_latency().max(), 9U);
    EXPECT_GE(core->load_latency().mean(), 5.0);
    EXPECT_EQ(soc.llc().misses(), 0U) << "warm LLC must not miss";
}

TEST_F(SocFixture, UncontrolledContentionDelaysCore) {
    // No reservation: 256-beat DMA bursts + burst-granular RR. Paper: the
    // core waits at least 264 cycles per access.
    start_interference_dma(256);
    ctx.run(2000); // let the DMA saturate the LLC
    start_core(30);
    step_until(ctx, [&] { return core->done(); }, 2'000'000);
    EXPECT_GT(core->load_latency().max(), 250U);
    EXPECT_GT(core->load_latency().mean(), 100.0);
}

TEST_F(SocFixture, FragmentationRestoresLatency) {
    // Fragmentation 1 on the DMA, ample budgets: the core's latency must
    // collapse from hundreds of cycles to near single-source (paper: < 10).
    boot(1 << 30, 1 << 30, 1 << 20, 256, 1);
    start_interference_dma(256);
    ctx.run(2000);
    start_core(200);
    step_until(ctx, [&] { return core->done(); }, 2'000'000);
    EXPECT_LE(core->load_latency().mean(), 14.0);
    EXPECT_LE(core->load_latency().max(), 25U);
    EXPECT_GT(dma->chunks_completed(), 0U) << "DMA must still make progress";
}

TEST_F(SocFixture, BudgetThrottlesDmaBandwidth) {
    // DMA limited to 1.6 KiB per 1000 cycles (Fig. 6b's 1/5 point); its
    // achieved read bandwidth must respect the credit.
    boot(1 << 30, 1600, 1000, 256, 1);
    start_interference_dma(256);
    const sim::Cycle t0 = ctx.now();
    ctx.run(50000);
    const double dma_read_bw = static_cast<double>(dma->bytes_read()) /
                               static_cast<double>(ctx.now() - t0);
    EXPECT_LE(dma_read_bw, 1.8) << "1600 B / 1000 cycles plus slack";
    EXPECT_GE(dma_read_bw, 1.0) << "credit must replenish every period";
    EXPECT_GT(soc.dsa_realm(0).mr().region(0).depletion_events, 10U);
}

TEST_F(SocFixture, CoreNearBaselineWhenDmaBudgeted) {
    boot(1 << 30, 1600, 1000, 256, 1);
    start_interference_dma(256);
    ctx.run(2000);
    start_core(200);
    step_until(ctx, [&] { return core->done(); }, 2'000'000);
    EXPECT_LE(core->load_latency().mean(), 9.0)
        << "with the DMA throttled the core should run near single-source";
}

TEST_F(SocFixture, DmaCopyIntegrityThroughRealm) {
    boot(1 << 30, 1 << 30, 1 << 20, 256, 4);
    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 64;
    dma = std::make_unique<traffic::DmaEngine>(ctx, "dsa_dma", soc.dsa_port(0), dcfg);
    dma->push_job(traffic::DmaJob{kDram, kSpm, 4096, false});
    step_until(ctx, [&] { return dma->idle(); }, 100000);
    for (axi::Addr a = 0; a < 4096; a += 8) {
        ASSERT_EQ(soc.spm_image().read_u64(kSpm + a), a ^ 0x1234'5678U)
            << "at offset " << a;
    }
    EXPECT_GT(soc.dsa_realm(0).splitter().fragments_created(), 0U);
}

TEST_F(SocFixture, MonitoringSeesInterference) {
    boot(1 << 30, 1 << 30, 1000, 256, 256);
    start_interference_dma(256);
    ctx.run(2000);
    start_core(50);
    step_until(ctx, [&] { return core->done(); }, 2'000'000);
    // The M&R units expose what happened: DMA moved data, core suffered.
    const rt::RegionState& dma_r = soc.dsa_realm(0).mr().region(0);
    const rt::RegionState& core_r = soc.core_realm().mr().region(0);
    EXPECT_GT(dma_r.bytes_total, 100000U);
    EXPECT_GT(core_r.read_latency.max(), 250U)
        << "core-side M&R must capture the contention latency";
    EXPECT_GT(dma_r.read_latency.mean(), 1.0);
}

TEST_F(SocFixture, UnmappedAddressReturnsDecErr) {
    traffic::StreamWorkload bad_wl{{.base = 0x1000'0000, .bytes = 64, .op_bytes = 8,
                                    .stride_bytes = 8}};
    traffic::CoreModel bad_core{ctx, "core", soc.core_port(), bad_wl};
    step_until(ctx, [&] { return bad_core.done(); }, 50000);
    EXPECT_GT(soc.error_slave().errors_returned(), 0U);
}

TEST(SocNoRealm, DirectWiringHasNoRealmOverhead) {
    sim::SimContext ctx;
    SocConfig cfg;
    cfg.realm_present = false;
    CheshireSoc soc{ctx, cfg};
    for (axi::Addr a = 0; a < 0x8000; a += 8) {
        soc.dram_image().write_u64(kDram + a, a);
    }
    soc.warm_llc(kDram, 0x8000);
    traffic::StreamWorkload wl{{.base = kDram, .bytes = 0x2000, .op_bytes = 8,
                                .stride_bytes = 8}};
    traffic::CoreModel core{ctx, "cva6", soc.core_port(), wl};
    ASSERT_TRUE(ctx.run_until([&] { return core.done(); }, 100000));
    EXPECT_LE(core.load_latency().max(), 8U)
        << "without REALM the single-source path is one cycle shorter";
}

TEST(SocGuard, ForeignManagerCannotConfigure) {
    // The HWRoT claims the space; a rogue manager (the core port, distinct
    // TID after crossbar ID-widening) must be rejected.
    sim::SimContext ctx;
    CheshireSoc soc{ctx, SocConfig{}};
    soc.queue_boot_script({CheshireSoc::BootRegionPlan{1 << 20, 0, 256},
                           CheshireSoc::BootRegionPlan{1 << 20, 0, 256}});
    ASSERT_TRUE(ctx.run_until([&] { return soc.boot_master().done(); }, 5000));
    ASSERT_TRUE(soc.guard().claimed());

    // Drive a config write from the core port: expect SLVERR.
    axi::ManagerView mgr{soc.core_port()};
    mgr.send_aw(axi::make_aw(1, soc.config().cfg_base + 0x104, 1, 3));
    ctx.step();
    axi::WFlit w;
    w.last = true;
    mgr.send_w(w);
    test::step_until(ctx, [&] { return mgr.has_b(); }, 1000);
    EXPECT_EQ(mgr.recv_b().resp, axi::Resp::kSlvErr);
    EXPECT_GT(soc.guard().rejected_accesses(), 0U);
}

} // namespace
} // namespace realm::soc

namespace realm::soc {
namespace {

TEST(SocMultiRegion, IndependentBudgetsPerSubordinateRegion) {
    // The paper: "budget and period are assigned to a configurable number of
    // subordinate regions associated with each manager". Give the DSA's
    // REALM unit two regions — LLC-backed DRAM and the SPM — with very
    // different budgets, and check each is enforced independently.
    sim::SimContext ctx;
    SocConfig cfg;
    CheshireSoc soc{ctx, cfg};
    for (axi::Addr a = 0; a < 0x10000; a += 8) {
        soc.dram_image().write_u64(kDram + a, a);
    }
    soc.warm_llc(kDram, 0x10000);

    // Region 0: DRAM reads capped at 1 KiB / 1000 cycles.
    soc.dsa_realm(0).set_region(0, rt::RegionConfig{kDram, kDram + 0x1000'0000,
                                                    1024, 1000});
    // Region 1: SPM writes capped at 4 KiB / 1000 cycles.
    soc.dsa_realm(0).set_region(1, rt::RegionConfig{kSpm, kSpm + 0x8'0000,
                                                    4096, 1000});

    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 16;
    traffic::DmaEngine dma{ctx, "dma", soc.dsa_port(0), dcfg};
    dma.push_job(traffic::DmaJob{kDram, kSpm, 0x4000, true});
    const sim::Cycle horizon = 40000;
    ctx.run(horizon);

    const rt::RegionState& dram_r = soc.dsa_realm(0).mr().region(0);
    const rt::RegionState& spm_r = soc.dsa_realm(0).mr().region(1);
    const double dram_bw =
        static_cast<double>(dram_r.bytes_total) / static_cast<double>(horizon);
    // The copy is read-bound: the tighter DRAM budget must bind (~1.0 B/cyc)
    // and the SPM region must stay under its own, looser cap.
    EXPECT_LE(dram_bw, 1.2);
    EXPECT_GE(dram_bw, 0.8);
    EXPECT_GT(dram_r.depletion_events, 10U);
    EXPECT_LE(spm_r.bytes_total, dram_r.bytes_total + 0x4000)
        << "writes only move what reads supplied";
    EXPECT_EQ(spm_r.depletion_events, 0U)
        << "the SPM region's looser budget must never bind on read-bound copy";
}

TEST(SocMultiRegion, RegionOutsideBudgetUnaffected) {
    // Depleting the DRAM region must not block the manager's SPM traffic
    // once the DRAM transactions drain... (paper: isolation triggers on the
    // *manager* when any region depletes — verify that semantic).
    sim::SimContext ctx;
    CheshireSoc soc{ctx, SocConfig{}};
    for (axi::Addr a = 0; a < 0x1000; a += 8) {
        soc.dram_image().write_u64(kDram + a, a);
    }
    soc.warm_llc(kDram, 0x1000);
    soc.dsa_realm(0).set_region(0, rt::RegionConfig{kDram, kDram + 0x1000'0000,
                                                    256, 100000}); // tiny budget
    traffic::DmaConfig dcfg;
    dcfg.burst_beats = 16;
    traffic::DmaEngine dma{ctx, "dma", soc.dsa_port(0), dcfg};
    dma.push_job(traffic::DmaJob{kDram, kSpm, 0x1000, false});
    ctx.run(5000);
    // The DRAM budget (256 B) depletes after two 128-B chunks; the manager
    // is isolated (paper semantics: any depleted region isolates the
    // manager as a whole).
    EXPECT_TRUE(soc.dsa_realm(0).isolation().cause_active(rt::IsolationCause::kBudget));
    EXPECT_LT(dma.bytes_read(), 0x1000U);
    EXPECT_EQ(soc.dsa_realm(0).state(), rt::RealmState::kIsolatedBudget);
}

} // namespace
} // namespace realm::soc
