/// Randomized model check of the ring-buffer `sim::Link` and
/// `sim::TimedQueue` against straightforward deque reference models with
/// per-entry cycle stamps. The production classes dropped the stamps (a
/// recent-count pair for `Link`, a `FlatRing` for `TimedQueue`) to flatten
/// the hot path; these sweeps pin the observable behaviour to the naive
/// semantics across capacities, timing disciplines, and drain hooks.
#include "sim/context.hpp"
#include "sim/link.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <random>
#include <string>
#include <tuple>
#include <vector>

namespace realm::sim {
namespace {

// --- Link vs a stamped-deque reference ---------------------------------------

/// The pre-flattening semantics, verbatim: a deque of (value, push cycle)
/// pairs where a registered entry is poppable strictly after its push cycle.
struct RefLink {
    struct Entry {
        int value;
        Cycle pushed_at;
    };
    std::deque<Entry> q;
    std::size_t capacity;
    bool registered;

    [[nodiscard]] bool can_push() const { return q.size() < capacity; }
    void push(int v, Cycle now) { q.push_back({v, now}); }
    [[nodiscard]] bool can_pop(Cycle now) const {
        return !q.empty() && (!registered || q.front().pushed_at < now);
    }
    int pop() {
        const int v = q.front().value;
        q.pop_front();
        return v;
    }
    void clear() { q.clear(); }
};

/// Hook log: every fired drain hook records the link's state *at firing
/// time*, proving the hook runs after the entry has left the buffer.
struct HookLog {
    const Link<int>* link = nullptr;
    std::uint32_t expected_arg = 0;
    std::vector<std::pair<std::uint64_t, std::size_t>> fired; // (popped, occ)

    static void on_pop(void* user, std::uint32_t arg) {
        auto* self = static_cast<HookLog*>(user);
        EXPECT_EQ(arg, self->expected_arg);
        self->fired.emplace_back(self->link->total_popped(),
                                 self->link->occupancy());
    }
};

class LinkModelSweep
    : public ::testing::TestWithParam<std::tuple<int, bool, unsigned>> {};

TEST_P(LinkModelSweep, AgreesWithTheStampedDequeModel) {
    const auto [capacity, registered, seed] = GetParam();
    SimContext ctx;
    Link<int> link{ctx, static_cast<std::size_t>(capacity), "dut",
                   registered ? Link<int>::Timing::kRegistered
                              : Link<int>::Timing::kPassthrough};
    RefLink ref{{}, static_cast<std::size_t>(capacity), registered};
    HookLog log;
    log.link = &link;
    log.expected_arg = 7;
    link.set_on_pop(PopHook{&HookLog::on_pop, &log, 7});

    std::mt19937 rng{seed};
    std::uniform_int_distribution<int> action{0, 99};
    int next_value = 0;
    std::uint64_t pops = 0;

    for (int step = 0; step < 2000; ++step) {
        const Cycle now = ctx.now();
        ASSERT_EQ(link.can_push(), ref.can_push()) << "step " << step;
        ASSERT_EQ(link.can_pop(), ref.can_pop(now)) << "step " << step;
        ASSERT_EQ(link.occupancy(), ref.q.size()) << "step " << step;
        if (link.can_pop()) {
            ASSERT_EQ(link.front(), ref.q.front().value) << "step " << step;
        }

        const int a = action(rng);
        if (a < 45) { // push (producers hold flits under backpressure)
            if (link.can_push()) {
                link.push(next_value);
                ref.push(next_value, now);
                ++next_value;
            }
        } else if (a < 85) { // pop
            if (link.can_pop()) {
                const int got = link.pop();
                ASSERT_EQ(got, ref.pop()) << "step " << step;
                ++pops;
                // Hook fired exactly once, after the entry left the ring.
                ASSERT_EQ(log.fired.size(), pops);
                EXPECT_EQ(log.fired.back().first, pops);
                EXPECT_EQ(log.fired.back().second, link.occupancy());
            }
        } else if (a < 97) { // advance the clock
            ctx.step();
        } else { // reset both FIFOs; clear() bypasses the drain hook
            link.clear();
            ref.clear();
            ASSERT_EQ(log.fired.size(), pops);
        }
    }
    EXPECT_EQ(link.total_popped(), pops);
    EXPECT_EQ(link.total_pushed(), static_cast<std::uint64_t>(next_value));
}

INSTANTIATE_TEST_SUITE_P(
    CapacitiesTimingsSeeds, LinkModelSweep,
    ::testing::Combine(::testing::Values(1, 2, 5), // inline ring + heap ring
                       ::testing::Bool(),          // registered / passthrough
                       ::testing::Values(0xC0FFEEU, 1U, 20260807U)));

// --- TimedQueue vs a stamped-deque reference ---------------------------------

struct RefTimedQueue {
    struct Entry {
        int value;
        Cycle ready_at;
    };
    std::deque<Entry> q;

    [[nodiscard]] bool can_pop(Cycle now) const {
        return !q.empty() && q.front().ready_at <= now;
    }
};

class TimedQueueModelSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(TimedQueueModelSweep, AgreesWithTheStampedDequeModel) {
    SimContext ctx;
    TimedQueue<int> dut{ctx, "dut"};
    RefTimedQueue ref;

    std::mt19937 rng{GetParam()};
    std::uniform_int_distribution<int> action{0, 99};
    std::uniform_int_distribution<int> delay{0, 5};
    int next_value = 0;

    for (int step = 0; step < 2000; ++step) {
        const Cycle now = ctx.now();
        ASSERT_EQ(dut.can_pop(), ref.can_pop(now)) << "step " << step;
        ASSERT_EQ(dut.size(), ref.q.size()) << "step " << step;
        ASSERT_EQ(dut.empty(), ref.q.empty()) << "step " << step;
        if (dut.can_pop()) {
            ASSERT_EQ(dut.front(), ref.q.front().value) << "step " << step;
        }

        const int a = action(rng);
        if (a < 40) { // enqueue with a service delay; completion is in-order
            const Cycle ready = now + static_cast<Cycle>(delay(rng));
            dut.push(next_value, ready);
            ref.q.push_back({next_value, ready});
            ++next_value;
        } else if (a < 80) { // pop when the head has matured
            if (dut.can_pop()) {
                ASSERT_EQ(dut.pop(), ref.q.front().value) << "step " << step;
                ref.q.pop_front();
            }
        } else if (a < 97) {
            ctx.step();
        } else {
            dut.clear();
            ref.q.clear();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimedQueueModelSweep,
                         ::testing::Values(0xC0FFEEU, 1U, 20260807U));

// --- Head-of-line blocking (the one place the models could diverge) ----------

TEST(TimedQueueModel, YoungerReadyEntriesWaitBehindAnUnreadyHead) {
    SimContext ctx;
    TimedQueue<int> q{ctx, "hol"};
    q.push(1, 5);           // head matures late
    q.push(2, ctx.now());   // already mature, but behind the head
    EXPECT_FALSE(q.can_pop());
    while (ctx.now() < 5) { ctx.step(); }
    ASSERT_TRUE(q.can_pop());
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
}

} // namespace
} // namespace realm::sim
