#include "scenario/search.hpp"

#include "scenario/report.hpp"
#include "sim/check.hpp"
#include "sim/rng.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace realm::scenario {

namespace {

/// Ranking key: exact integer fields only, so evaluations parsed back from
/// a checkpoint rank identically to freshly simulated ones.
bool better(const SearchEval& a, const SearchEval& b) {
    if (a.objective != b.objective) { return a.objective > b.objective; }
    if (a.result.load_lat_max != b.result.load_lat_max) {
        return a.result.load_lat_max > b.result.load_lat_max;
    }
    return traffic::to_label(a.genome) < traffic::to_label(b.genome);
}

/// Indices of `history` from best to worst under `better`.
std::vector<std::size_t> rank(const std::vector<SearchEval>& history) {
    std::vector<std::size_t> order(history.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return better(history[a], history[b]);
    });
    return order;
}

} // namespace

ScenarioConfig genome_scenario(const ScenarioConfig& base,
                               const traffic::InjectorGenome& g) {
    REALM_EXPECTS(!base.interference.empty(),
                  "genome_scenario: base cell has no interference ports");
    ScenarioConfig cfg = base;
    cfg.name = traffic::to_label(g);
    for (InterferenceConfig& irq : cfg.interference) { irq.genome = g; }
    return cfg;
}

std::vector<traffic::InjectorGenome> attack_seed_genomes() {
    using G = traffic::InjectorGenome;
    // Transcriptions of the enumerated aggressors (registry.cpp dos_point):
    // search starts from the grid's own repertoire and mutates outward.
    G hog;       // 256-beat read storms, a little write traffic, wide strides
    hog.genes[G::kReadBeats] = 255;
    hog.genes[G::kWriteBeats] = 255;
    hog.genes[G::kWriteRatio] = 68; // 4 writes per 16 bursts
    hog.genes[G::kStride] = 8;      // 256 bus-widths: new window region per burst
    hog.genes[G::kOutstanding] = 1; // 2 in flight
    G overdraft; // many short bursts, maximum outstanding
    overdraft.genes[G::kReadBeats] = 63;
    overdraft.genes[G::kWriteBeats] = 63;
    overdraft.genes[G::kWriteRatio] = 68;
    overdraft.genes[G::kOutstanding] = 3; // 4 in flight
    G wstall;    // write-only, AW reserved early, W data trickled
    wstall.genes[G::kWriteBeats] = 7; // 8-beat writes
    wstall.genes[G::kWriteRatio] = 255; // 16/16: all writes
    wstall.genes[G::kWStall] = 64;      // 64 idle cycles between W beats
    wstall.genes[G::kHeadDelay] = 3;    // AW 96 cycles before data
    wstall.genes[G::kOutstanding] = 3;
    return {hog, overdraft, wstall};
}

SearchOutcome search_worst_case(const ScenarioConfig& base,
                                const SearchOptions& options) {
    REALM_EXPECTS(options.budget > 0, "search budget must be positive");
    REALM_EXPECTS(options.population > 0 && options.parents > 0,
                  "search population and parent pool must be positive");

    const std::unordered_map<std::uint64_t, ScenarioResult> cache =
        options.checkpoint_path.empty()
            ? std::unordered_map<std::uint64_t, ScenarioResult>{}
            : load_json_results(options.checkpoint_path);

    sim::Rng rng{sim::derive_seed("scenario-search", options.seed)};
    const std::vector<traffic::InjectorGenome> seeds = attack_seed_genomes();
    SearchOutcome out;
    std::unordered_set<std::string> tried; // genome labels already scheduled

    const auto random_genome = [&rng] {
        traffic::InjectorGenome g;
        for (std::uint8_t& gene : g.genes) {
            gene = static_cast<std::uint8_t>(rng.uniform(0, 255));
        }
        return g;
    };

    // Breeds one offspring from the current elite pool. Draws depend only on
    // the seed and on (exact-integer) objectives of prior evaluations, so a
    // resumed search replays the very same candidate sequence.
    const auto breed = [&](const std::vector<std::size_t>& order) {
        const std::size_t pool = std::min(options.parents, order.size());
        traffic::InjectorGenome g =
            out.history[order[rng.uniform(0, pool - 1)]].genome;
        if (rng.chance(1, 2)) { // uniform crossover with a second parent
            const traffic::InjectorGenome& mate =
                out.history[order[rng.uniform(0, pool - 1)]].genome;
            for (std::size_t i = 0; i < traffic::InjectorGenome::kGenes; ++i) {
                if (rng.chance(1, 2)) { g.genes[i] = mate.genes[i]; }
            }
        }
        for (std::uint8_t& gene : g.genes) { // point mutation
            if (rng.chance(1, 4)) {
                gene = static_cast<std::uint8_t>(rng.uniform(0, 255));
            }
        }
        return g;
    };

    ScenarioRunner runner{RunnerOptions{options.threads}};
    std::size_t seeded = 0; // attack-seed genomes consumed (generation 0)

    while (out.history.size() < options.budget) {
        const std::size_t want =
            std::min(options.population, options.budget - out.history.size());
        const std::vector<std::size_t> order = rank(out.history);

        // Generate `want` distinct candidates, one at a time, so a run cut
        // short by the budget is an exact prefix of a longer run.
        std::vector<traffic::InjectorGenome> generation;
        while (generation.size() < want) {
            traffic::InjectorGenome g;
            if (seeded < seeds.size()) {
                g = seeds[seeded++];
            } else if (out.history.empty()) {
                g = random_genome();
            } else {
                g = breed(order);
                for (int retry = 0; retry < 16 && tried.count(traffic::to_label(g));
                     ++retry) {
                    g = breed(order);
                }
            }
            for (int retry = 0; retry < 64 && tried.count(traffic::to_label(g));
                 ++retry) {
                g = random_genome();
            }
            tried.insert(traffic::to_label(g));
            generation.push_back(g);
        }

        // Score the generation: checkpoint hits replay, the rest simulate
        // on the runner pool (order-preserving, thread-count invariant).
        std::vector<SearchEval> evals(generation.size());
        std::vector<ScenarioConfig> to_run;
        std::vector<std::size_t> to_run_at;
        for (std::size_t i = 0; i < generation.size(); ++i) {
            evals[i].genome = generation[i];
            const ScenarioConfig cfg = genome_scenario(base, generation[i]);
            const auto hit = cache.find(config_hash(cfg));
            if (hit != cache.end()) {
                evals[i].result = hit->second;
                evals[i].result.label = cfg.name;
                evals[i].reused = true;
            } else {
                to_run.push_back(cfg);
                to_run_at.push_back(i);
            }
        }
        const std::vector<ScenarioResult> fresh = runner.run(to_run);
        for (std::size_t i = 0; i < fresh.size(); ++i) {
            evals[to_run_at[i]].result = fresh[i];
        }
        for (SearchEval& e : evals) {
            e.objective = search_objective(e.result);
            (e.reused ? out.reused : out.fresh) += 1;
            out.history.push_back(std::move(e));
        }

        if (!options.checkpoint_path.empty()) {
            Sweep ck;
            ck.name = "search";
            ck.title = "adversarial search checkpoint: " + base.name;
            std::vector<ScenarioResult> results;
            ck.points.reserve(out.history.size());
            results.reserve(out.history.size());
            for (const SearchEval& e : out.history) {
                ck.points.push_back(
                    {traffic::to_label(e.genome), genome_scenario(base, e.genome)});
                results.push_back(e.result);
            }
            write_json_file(options.checkpoint_path, ck, results);
        }
    }

    out.best = rank(out.history).front();
    REALM_ENSURES(out.history.size() == options.budget &&
                      out.fresh + out.reused == options.budget,
                  "search bookkeeping out of balance");
    return out;
}

void write_search_report(std::ostream& os, const SearchSummary& summary,
                         const SearchOutcome& outcome) {
    const SearchEval& win = outcome.winner();
    const std::string win_label = traffic::to_label(win.genome);

    os << "## Adversarial search: " << summary.base_label << "\n\n";
    os << "Sweep `" << summary.sweep << "`, budget " << summary.budget
       << " evaluations (" << outcome.reused << " replayed from checkpoint), "
       << "search seed " << summary.seed << ". Objective: victim P99 load "
       << "latency.\n\n";

    os << "| attacker | victim P99 (cycles) | worst case (cycles) | point |\n";
    os << "|---|---:|---:|---|\n";
    os << "| worst enumerated | " << summary.worst_enumerated_p99 << " | - | `"
       << summary.worst_enumerated_label << "` |\n";
    os << "| **worst found** | **" << win.objective << "** | "
       << worst_case_victim_latency(win.result) << " | `" << win_label
       << "` |\n\n";

    const traffic::InjectorParams p = traffic::decode_genome(win.genome);
    os << "Winning genome `" << win_label << "` decodes to: " << p.read_beats
       << "-beat reads / " << p.write_beats << "-beat writes, "
       << p.write_ratio16 << "/16 writes, " << to_string(p.walk)
       << " walk (stride " << p.stride_beats << "), duty " << p.on_cycles << "/"
       << p.off_cycles << ", W stall " << p.w_stall_cycles << ", head delay "
       << p.head_delay << ", outstanding " << p.max_outstanding << ", ramp "
       << p.ramp_step << ", window span>>" << p.span_shift
       << ". Replay: rerun the cell with this label as the genome.\n\n";

    os << "| rank | genome | victim P99 | worst case | source |\n";
    os << "|---:|---|---:|---:|---|\n";
    const std::vector<std::size_t> order = rank(outcome.history);
    const std::size_t top = std::min<std::size_t>(order.size(), 8);
    for (std::size_t i = 0; i < top; ++i) {
        const SearchEval& e = outcome.history[order[i]];
        os << "| " << (i + 1) << " | `" << traffic::to_label(e.genome) << "` | "
           << e.objective << " | " << worst_case_victim_latency(e.result)
           << " | " << (e.reused ? "checkpoint" : "simulated") << " |\n";
    }
    os << "\n";
}

} // namespace realm::scenario
