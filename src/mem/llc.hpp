/// \file
/// \brief Last-level cache: set-associative, write-back, write-allocate,
///        with an AXI subordinate port (from the crossbar) and an AXI
///        manager port (to DRAM) for refills and writebacks.
///
/// Mirrors the role of Cheshire's LLC in the paper's evaluation: the hot
/// shared subordinate both the core and the DSA DMA hammer. The R and W
/// datapaths are independent pipelines (as the AXI channels are), each
/// streaming one beat per cycle; hits are pipelined across bursts so
/// back-to-back single-beat transactions sustain full bandwidth. Service
/// within each direction is in-order and burst-granular — so a long burst
/// ahead in the queue delays a later fine-granular request by its full
/// length, which (with the crossbar's burst-granular round-robin) produces
/// the uncontrolled-contention worst case of Figure 6a. Misses are handled
/// by a single blocking miss engine (refill + optional writeback).
#pragma once

#include "axi/channel.hpp"
#include "mem/sparse_memory.hpp"

#include "sim/component.hpp"

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace realm::mem {

struct LlcConfig {
    std::uint32_t line_bytes = 64;
    std::uint32_t ways = 8;
    std::uint32_t sets = 512;     ///< 8 x 512 x 64 B = 256 KiB default
    std::uint32_t bus_bytes = 8;  ///< both ports, 64-bit
    sim::Cycle hit_latency = 2;   ///< request initiation -> first beat on a hit
    /// Minimum spacing between successive request *initiations* (descriptor
    /// processing rate: tag lookup and hit computation are shared between
    /// the read and write pipelines and are not fully pipelined, as in
    /// axi_llc). Long bursts amortize it; back-to-back single-beat requests
    /// are initiation-limited.
    sim::Cycle request_interval = 1;
    std::uint32_t max_outstanding = 8;

    [[nodiscard]] std::uint64_t capacity_bytes() const noexcept {
        return std::uint64_t{line_bytes} * ways * sets;
    }
    [[nodiscard]] std::uint32_t line_beats() const noexcept { return line_bytes / bus_bytes; }
};

class Llc : public sim::Component {
public:
    /// \param upstream   channel whose manager side is the crossbar.
    /// \param downstream channel whose subordinate side is the DRAM slave.
    Llc(sim::SimContext& ctx, std::string name, axi::AxiChannel& upstream,
        axi::AxiChannel& downstream, LlcConfig config = {});

    void reset() override;
    void tick() override;

    /// Installs every line covering [base, base+bytes) as valid and clean,
    /// with data pulled from `image`. Zero-time warm-up used by benches to
    /// reproduce the paper's "LLC is hot" precondition.
    void warm_range(axi::Addr base, std::uint64_t bytes, const SparseMemory& image);

    /// True when a line holding `addr` is currently resident.
    [[nodiscard]] bool contains(axi::Addr addr) const noexcept;

    /// \name Statistics
    ///@{
    [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
    [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
    [[nodiscard]] std::uint64_t writebacks() const noexcept { return writebacks_; }
    [[nodiscard]] std::uint64_t reads_served() const noexcept { return reads_served_; }
    [[nodiscard]] std::uint64_t writes_served() const noexcept { return writes_served_; }
    ///@}

    [[nodiscard]] const LlcConfig& config() const noexcept { return config_; }

private:
    /// Miss-engine phases (one miss handled at a time).
    enum class MissState : std::uint8_t {
        kIdle,
        kWbAw,     ///< writeback: address phase
        kWbW,      ///< writeback: data phase
        kWbB,      ///< writeback: wait for DRAM response
        kRefillAr, ///< refill: address phase
        kRefillR,  ///< refill: collecting beats
    };

    struct WayState {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t last_use = 0;
    };

    struct ReadJob {
        axi::ArFlit ar;
        sim::Cycle accepted_at = 0;
        std::uint32_t next_beat = 0;
        sim::Cycle first_beat_at = sim::kNoCycle; ///< set when reaching the head
    };
    struct WriteJob {
        axi::AwFlit aw;
        sim::Cycle accepted_at = 0;
        std::uint32_t beats_seen = 0;
        sim::Cycle ready_at = sim::kNoCycle; ///< set at initiation
    };
    struct PendingB {
        axi::IdT id = 0;
        sim::Cycle ready_at = 0;
    };

    /// \name Geometry helpers
    ///@{
    [[nodiscard]] std::uint64_t line_index(axi::Addr addr) const noexcept {
        return addr / config_.line_bytes;
    }
    [[nodiscard]] std::uint32_t set_of(std::uint64_t line) const noexcept {
        return static_cast<std::uint32_t>(line % config_.sets);
    }
    [[nodiscard]] std::uint64_t tag_of(std::uint64_t line) const noexcept {
        return line / config_.sets;
    }
    [[nodiscard]] int find_way(std::uint32_t set, std::uint64_t tag) const noexcept;
    [[nodiscard]] std::uint32_t victim_way(std::uint32_t set) const noexcept;
    [[nodiscard]] std::uint8_t* line_data(std::uint32_t set, std::uint32_t way) noexcept;
    ///@}

    void accept_requests();
    void serve_read();
    void serve_write();
    void send_b();
    void advance_miss_engine();
    void update_activity();
    /// Requests miss handling for the line containing `addr`; returns true
    /// if the engine accepted (it handles one miss at a time).
    bool start_miss(axi::Addr addr);

    axi::SubordinateView up_;
    axi::ManagerView down_;
    LlcConfig config_;

    std::vector<WayState> tags_;       ///< sets x ways
    std::vector<std::uint8_t> data_;   ///< sets x ways x line_bytes
    std::uint64_t use_tick_ = 0;

    std::deque<ReadJob> read_jobs_;
    std::deque<WriteJob> write_jobs_;
    std::deque<PendingB> b_queue_;
    sim::Cycle read_stream_free_at_ = 0;
    sim::Cycle next_init_at_ = 0; ///< shared request-initiation pipeline

    MissState miss_state_ = MissState::kIdle;
    std::uint64_t miss_line_ = 0;
    std::uint32_t miss_set_ = 0;
    std::uint32_t miss_way_ = 0;
    std::uint32_t refill_beats_seen_ = 0;
    std::uint32_t wb_beats_sent_ = 0;
    axi::Addr wb_addr_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t reads_served_ = 0;
    std::uint64_t writes_served_ = 0;
};

} // namespace realm::mem
