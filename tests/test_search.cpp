/// Tests for the adversarial interference search: fixed seed => identical
/// generation history and winner, checkpoint resume replays cached
/// evaluations without re-running them (including from a truncated file,
/// mirroring the `test_diff.cpp` fixture), and — the acceptance bar — on a
/// defense-off smoke cell the search finds a genome at least as damaging as
/// the enumerated grid's worst cell, bit-identically replayable from its
/// reported genome + seed across shard counts.
#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/search.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace realm::scenario {
namespace {

/// The first defense-off attack cell of the mesh smoke matrix, shrunk for
/// unit-test wall-clock (the full-size acceptance run lives in CI).
ScenarioConfig tiny_cell() {
    Sweep sweep = make_sweep("mesh-dos-smoke");
    for (SweepPoint& p : sweep.points) {
        if (p.config.interference.empty()) { continue; }
        p.config.victim.stream.repeat = 1;
        return p.config;
    }
    ADD_FAILURE() << "mesh-dos-smoke has no attack cells";
    return ScenarioConfig{};
}

SearchOptions tiny_options() {
    SearchOptions opts;
    opts.budget = 6;
    opts.population = 3;
    opts.parents = 2;
    opts.seed = 7;
    opts.threads = 2;
    return opts;
}

std::vector<std::string> history_labels(const SearchOutcome& o) {
    std::vector<std::string> labels;
    labels.reserve(o.history.size());
    for (const SearchEval& e : o.history) {
        labels.push_back(traffic::to_label(e.genome));
    }
    return labels;
}

class SearchFixture : public ::testing::Test {
protected:
    void TearDown() override { std::remove(path_.c_str()); }
    std::string path_ = "search_checkpoint_test.json";
};

TEST_F(SearchFixture, FixedSeedGivesIdenticalHistoryAndWinner) {
    const ScenarioConfig base = tiny_cell();
    const SearchOptions opts = tiny_options();
    const SearchOutcome a = search_worst_case(base, opts);
    const SearchOutcome b = search_worst_case(base, opts);
    ASSERT_EQ(a.history.size(), opts.budget);
    EXPECT_EQ(history_labels(a), history_labels(b));
    EXPECT_EQ(a.best, b.best);
    EXPECT_EQ(a.winner().objective, b.winner().objective);
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_EQ(a.history[i].objective, b.history[i].objective) << i;
        EXPECT_EQ(a.history[i].result.run_cycles, b.history[i].result.run_cycles)
            << i;
    }
}

TEST_F(SearchFixture, GenerationZeroStartsFromTheEnumeratedRepertoire) {
    const ScenarioConfig base = tiny_cell();
    SearchOptions opts = tiny_options();
    opts.budget = 4;
    const SearchOutcome out = search_worst_case(base, opts);
    const std::vector<traffic::InjectorGenome> seeds = attack_seed_genomes();
    ASSERT_GE(out.history.size(), seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        EXPECT_TRUE(out.history[i].genome == seeds[i])
            << "seed genome " << i << " must open the search";
    }
}

TEST_F(SearchFixture, ResumeReplaysEveryCachedEvaluation) {
    const ScenarioConfig base = tiny_cell();
    SearchOptions opts = tiny_options();
    opts.checkpoint_path = path_;
    const SearchOutcome first = search_worst_case(base, opts);
    EXPECT_EQ(first.fresh, opts.budget);
    EXPECT_EQ(first.reused, 0U);

    const SearchOutcome again = search_worst_case(base, opts);
    EXPECT_EQ(again.fresh, 0U);
    EXPECT_EQ(again.reused, opts.budget);
    EXPECT_EQ(history_labels(first), history_labels(again));
    EXPECT_EQ(first.best, again.best);
    EXPECT_EQ(first.winner().objective, again.winner().objective);
}

TEST_F(SearchFixture, TruncatedCheckpointResumesItsPrefixOnly) {
    const ScenarioConfig base = tiny_cell();
    SearchOptions opts = tiny_options();
    opts.checkpoint_path = path_;
    const SearchOutcome full = search_worst_case(base, opts);

    // Keep the header and the first 2 point lines — the prefix of a search
    // killed mid-run (point lines are the ones carrying "config_hash").
    std::ifstream in{path_};
    ASSERT_TRUE(in.good());
    std::ostringstream kept;
    std::string line;
    std::size_t points_kept = 0;
    while (std::getline(in, line)) {
        if (line.find("\"config_hash\"") != std::string::npos) {
            if (points_kept == 2) { break; }
            ++points_kept;
        }
        kept << line << "\n";
    }
    in.close();
    ASSERT_EQ(points_kept, 2U);
    std::ofstream{path_} << kept.str();

    const SearchOutcome resumed = search_worst_case(base, opts);
    EXPECT_EQ(resumed.reused, 2U) << "exactly the surviving prefix replays";
    EXPECT_EQ(resumed.fresh, opts.budget - 2);
    EXPECT_EQ(history_labels(full), history_labels(resumed))
        << "resume must converge to the straight-through history";
    EXPECT_EQ(full.winner().objective, resumed.winner().objective);
}

TEST_F(SearchFixture, SearchMatchesOrBeatsTheEnumeratedGridAndReplaysExactly) {
    // Acceptance bar, smoke-sized: with defenses off the searched worst case
    // must be at least the enumerated grid's worst cell, and the winner must
    // replay bit-identically from its genome + seed under shards 1 vs 4.
    Sweep sweep = make_sweep("mesh-dos-smoke");
    for (SweepPoint& p : sweep.points) { p.config.victim.stream.repeat = 1; }
    const ScenarioRunner runner{RunnerOptions{.threads = 2}};
    const std::vector<ScenarioResult> grid = runner.run(sweep);

    std::size_t worst = sweep.points.size();
    std::size_t target = sweep.points.size();
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
        if (sweep.points[i].config.interference.empty()) { continue; }
        if (worst == sweep.points.size() ||
            search_objective(grid[i]) > search_objective(grid[worst])) {
            worst = i;
        }
        const DosCellLabel parsed = [&] {
            DosCellLabel c;
            parse_dos_cell_label(sweep.points[i].label, c);
            return c;
        }();
        if (target == sweep.points.size() && parsed.defense == "none") {
            target = i;
        }
    }
    ASSERT_LT(worst, sweep.points.size());
    ASSERT_LT(target, sweep.points.size());

    SearchOptions opts = tiny_options();
    const SearchOutcome out = search_worst_case(sweep.points[target].config, opts);
    EXPECT_GE(out.winner().objective, search_objective(grid[worst]))
        << "searched worst case fell below the enumerated grid";

    ScenarioConfig replay =
        genome_scenario(sweep.points[target].config, out.winner().genome);
    ScenarioConfig replay4 = replay;
    replay4.shards = 4;
    const ScenarioResult r1 = run_scenario(replay);
    const ScenarioResult r4 = run_scenario(replay4);
    EXPECT_EQ(r1.load_lat_p99, out.winner().objective);
    EXPECT_EQ(r1.load_lat_p99, r4.load_lat_p99);
    EXPECT_EQ(r1.load_lat_max, r4.load_lat_max);
    EXPECT_EQ(r1.store_lat_max, r4.store_lat_max);
    EXPECT_EQ(r1.run_cycles, r4.run_cycles);
    EXPECT_EQ(r1.ops, r4.ops);
    EXPECT_EQ(r1.dma_bytes, r4.dma_bytes);
    EXPECT_EQ(r1.fabric_hops, r4.fabric_hops);
}

} // namespace
} // namespace realm::scenario
