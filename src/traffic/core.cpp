#include "traffic/core.hpp"

#include "axi/builder.hpp"
#include "sim/check.hpp"

#include <utility>

namespace realm::traffic {

CoreModel::CoreModel(sim::SimContext& ctx, std::string name, axi::AxiChannel& port,
                     Workload& workload, CoreConfig config)
    : Component{ctx, std::move(name)}, port_{port}, workload_{&workload}, cfg_{config} {
    REALM_EXPECTS(cfg_.bus_bytes >= 1 && cfg_.bus_bytes <= axi::kMaxDataBytes,
                  "illegal core bus width");
    REALM_EXPECTS(cfg_.store_buffer_depth >= 1, "store buffer needs at least one slot");
}

void CoreModel::reset() {
    workload_->restart();
    current_.reset();
    compute_left_ = 0;
    waiting_load_ = false;
    load_beats_left_ = 0;
    store_buffer_.clear();
    stores_awaiting_b_.clear();
    program_done_ = false;
    done_ = false;
    finish_cycle_ = 0;
    load_lat_.reset();
    store_lat_.reset();
    load_sketch_.reset();
    loads_ = 0;
    stores_ = 0;
    compute_cycles_ = 0;
    load_stalls_ = 0;
    store_stalls_ = 0;
}

void CoreModel::drain_stores() {
    if (store_buffer_.empty()) { return; }
    PendingStore& ps = store_buffer_.front();
    if (!ps.aw_sent) {
        if (!port_.can_send_aw()) { return; }
        const std::uint32_t beats = (ps.op.bytes + cfg_.bus_bytes - 1) / cfg_.bus_bytes;
        const axi::Addr addr = ps.op.addr & ~axi::Addr{cfg_.bus_bytes - 1};
        axi::AwFlit aw = axi::make_aw(cfg_.write_id, addr, beats,
                                      axi::size_of_bus(cfg_.bus_bytes), ps.issued_at);
        aw.qos = cfg_.qos;
        port_.send_aw(aw);
        ps.aw_sent = true;
        ps.beats_left = beats;
        return; // AW and first W in distinct cycles keeps the model simple
    }
    if (ps.beats_left > 0 && port_.can_send_w()) {
        axi::WFlit w;
        w.strb = ~axi::Strb{0};
        // Deterministic pattern derived from the address: real data motion
        // is exercised by the DMA; the core's store *values* don't affect
        // timing but must still be well-defined.
        const axi::Addr beat_addr = ps.op.addr + (std::uint64_t{ps.beats_left} - 1) * cfg_.bus_bytes;
        for (std::uint32_t i = 0; i < cfg_.bus_bytes; ++i) {
            w.data.bytes[i] = static_cast<std::uint8_t>((beat_addr >> (i % 8)) & 0xFF);
        }
        --ps.beats_left;
        w.last = ps.beats_left == 0;
        port_.send_w(w);
        if (w.last) {
            stores_awaiting_b_.push_back(ps.issued_at);
            store_buffer_.pop_front();
        }
    }
}

void CoreModel::collect_responses() {
    if (port_.has_b()) {
        port_.recv_b();
        REALM_ENSURES(!stores_awaiting_b_.empty(), name() + ": B with no outstanding store");
        store_lat_.record(now() - stores_awaiting_b_.front());
        stores_awaiting_b_.pop_front();
        ++stores_;
    }
    if (waiting_load_ && port_.has_r()) {
        const axi::RFlit r = port_.recv_r();
        REALM_ENSURES(load_beats_left_ > 0, name() + ": unexpected R beat");
        --load_beats_left_;
        if (r.last) {
            REALM_ENSURES(load_beats_left_ == 0, name() + ": RLAST before final beat");
            load_lat_.record(now() - load_issued_at_);
            load_sketch_.record(now() - load_issued_at_);
            waiting_load_ = false;
            ++loads_;
        }
    }
}

void CoreModel::advance_program() {
    if (waiting_load_) {
        ++load_stalls_;
        return; // blocking load in flight
    }
    if (!current_) {
        if (program_done_) { return; }
        current_ = workload_->next();
        if (!current_) {
            program_done_ = true;
            return;
        }
        compute_left_ = current_->compute_cycles;
    }
    if (compute_left_ > 0) {
        --compute_left_;
        ++compute_cycles_;
        return;
    }
    // Issue the operation.
    if (current_->kind == MemOp::Kind::kLoad) {
        if (!port_.can_send_ar()) {
            ++load_stalls_;
            return;
        }
        const std::uint32_t beats = (current_->bytes + cfg_.bus_bytes - 1) / cfg_.bus_bytes;
        const axi::Addr addr = current_->addr & ~axi::Addr{cfg_.bus_bytes - 1};
        axi::ArFlit ar = axi::make_ar(cfg_.read_id, addr, beats,
                                      axi::size_of_bus(cfg_.bus_bytes), now());
        ar.qos = cfg_.qos;
        port_.send_ar(ar);
        waiting_load_ = true;
        load_issued_at_ = now();
        load_beats_left_ = beats;
        current_.reset();
    } else {
        if (store_buffer_.size() >= cfg_.store_buffer_depth) {
            ++store_stalls_;
            return; // retire stalls until the buffer drains
        }
        PendingStore ps;
        ps.op = *current_;
        ps.issued_at = now();
        store_buffer_.push_back(ps);
        current_.reset();
    }
}

void CoreModel::tick() {
    if (done_) { return; }
    collect_responses();
    drain_stores();
    advance_program();
    if (program_done_ && !waiting_load_ && store_buffer_.empty() && stores_awaiting_b_.empty()) {
        done_ = true;
        finish_cycle_ = now();
        idle_forever(); // every further tick is the no-op early return above
    }
}

} // namespace realm::traffic
