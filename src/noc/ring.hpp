/// \file
/// \brief Ring NoC assembly: nodes, ring links, and per-node egress muxes.
///
/// The "more scalable network-on-chip" integration of Figure 1b: every node
/// may host one AXI manager; nodes named in `subordinate_nodes` also host a
/// subordinate, reached through per-source egress channels and an
/// `ic::AxiMux` (which provides the burst-granular W ordering a real NI
/// needs). REALM units drop in front of any manager port unchanged —
/// regulation is interconnect-agnostic, which this module exists to prove.
#pragma once

#include "axi/channel.hpp"
#include "ic/addr_map.hpp"
#include "ic/mux.hpp"
#include "noc/node.hpp"

#include "sim/context.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace realm::noc {

class NocRing {
public:
    /// \param node_map          decodes addresses to node ids.
    /// \param subordinate_nodes nodes hosting a local subordinate.
    NocRing(sim::SimContext& ctx, std::string name, std::uint8_t num_nodes,
            ic::AddrMap node_map, std::vector<std::uint8_t> subordinate_nodes);

    NocRing(const NocRing&) = delete;
    NocRing& operator=(const NocRing&) = delete;

    /// Channel a manager at `node` drives (requests in, responses out).
    [[nodiscard]] axi::AxiChannel& manager_port(std::uint8_t node) {
        return *mgr_ports_.at(node);
    }
    /// Channel to attach a subordinate model at `node`.
    [[nodiscard]] axi::AxiChannel& subordinate_port(std::uint8_t node);

    [[nodiscard]] NocNode& node(std::uint8_t i) { return *nodes_.at(i); }
    [[nodiscard]] std::uint8_t num_nodes() const noexcept {
        return static_cast<std::uint8_t>(nodes_.size());
    }

    /// Aggregate ring statistics (hops forwarded across all nodes).
    [[nodiscard]] std::uint64_t total_forwarded() const noexcept;

private:
    std::vector<std::unique_ptr<axi::AxiChannel>> mgr_ports_;
    std::vector<std::unique_ptr<sim::Link<NocPacket>>> req_links_;
    std::vector<std::unique_ptr<sim::Link<NocPacket>>> rsp_links_;
    /// egress_[node][src] (nullptr when `node` hosts no subordinate).
    std::vector<std::vector<std::unique_ptr<axi::AxiChannel>>> egress_;
    std::vector<std::unique_ptr<axi::AxiChannel>> sub_ports_;
    std::vector<std::unique_ptr<ic::AxiMux>> muxes_;
    std::vector<std::unique_ptr<NocNode>> nodes_;
    std::vector<int> sub_index_; ///< node -> index into sub_ports_ or -1
};

} // namespace realm::noc
