/// \file
/// \brief Convenience constructors for well-formed AXI4 flits.
#pragma once

#include "axi/flit.hpp"

#include "sim/check.hpp"
#include "sim/types.hpp"

#include <cstring>
#include <span>
#include <vector>

namespace realm::axi {

/// Computes AxSIZE for a bus of `bus_bytes` (must be a power of two <= 64).
[[nodiscard]] constexpr std::uint8_t size_of_bus(std::uint32_t bus_bytes) noexcept {
    std::uint8_t s = 0;
    while ((std::uint32_t{1} << s) < bus_bytes) { ++s; }
    return s;
}

/// Builds an INCR write-address flit covering `beats` full-width beats.
[[nodiscard]] inline AwFlit make_aw(IdT id, Addr addr, std::uint32_t beats, std::uint8_t size,
                                    sim::Cycle issued_at = sim::kNoCycle) {
    REALM_EXPECTS(beats >= 1 && beats <= kMaxBurstBeats, "AW beats out of [1,256]");
    AwFlit f;
    f.id = id;
    f.addr = addr;
    f.len = static_cast<std::uint8_t>(beats - 1);
    f.size = size;
    f.burst = Burst::kIncr;
    f.issued_at = issued_at;
    return f;
}

/// Builds an INCR read-address flit covering `beats` full-width beats.
[[nodiscard]] inline ArFlit make_ar(IdT id, Addr addr, std::uint32_t beats, std::uint8_t size,
                                    sim::Cycle issued_at = sim::kNoCycle) {
    REALM_EXPECTS(beats >= 1 && beats <= kMaxBurstBeats, "AR beats out of [1,256]");
    ArFlit f;
    f.id = id;
    f.addr = addr;
    f.len = static_cast<std::uint8_t>(beats - 1);
    f.size = size;
    f.burst = Burst::kIncr;
    f.issued_at = issued_at;
    return f;
}

/// Builds a data beat from raw bytes (at most one bus width).
[[nodiscard]] inline WFlit make_w(std::span<const std::uint8_t> bytes, bool last,
                                  Strb strb = ~Strb{0}) {
    REALM_EXPECTS(bytes.size() <= kMaxDataBytes, "beat wider than the maximum bus");
    WFlit f;
    if (!bytes.empty()) { std::memcpy(f.data.bytes.data(), bytes.data(), bytes.size()); }
    f.strb = strb;
    f.last = last;
    return f;
}

/// Builds the full W-beat sequence for a write burst whose payload is
/// `bytes` (padded with zeros to whole beats).
[[nodiscard]] std::vector<WFlit> make_write_beats(std::span<const std::uint8_t> bytes,
                                                  std::uint32_t beats,
                                                  std::uint32_t beat_bytes);

} // namespace realm::axi
