/// \file
/// \brief Markdown report renderer: turns a sweep's results into a document
///        a reviewer can read at a glance.
///
/// The JSON dump (`runner.hpp`) is the machine-readable artifact; this is
/// the human-readable one. DoS-matrix sweeps — every point labelled
/// `<N>atk/<attack>/<defense>` — render as one table per defense with
/// attackers x attack-mode cells holding the worst-case victim latency
/// (max of `load_lat_max` / `store_lat_max`), the worst cell of each table
/// bolded; any other sweep renders as a flat metrics table with
/// baseline-relative performance when the sweep names a baseline. Output is
/// a pure function of (sweep, results), so CI can diff reports across runs
/// and the golden test pins the format.
#pragma once

#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"

#include <ostream>
#include <string>
#include <vector>

namespace realm::scenario {

/// Writes the markdown report for one sweep.
void write_report(std::ostream& os, const Sweep& sweep,
                  const std::vector<ScenarioResult>& results);

/// Convenience: `write_report` to a file; returns false on I/O failure.
bool write_report_file(const std::string& path, const Sweep& sweep,
                       const std::vector<ScenarioResult>& results);

/// One parsed DoS-matrix cell label (`"3atk/hog/budget"`, or with the
/// routing-policy axis `"3atk/hog/budget/o1turn"`).
struct DosCellLabel {
    unsigned attackers = 0;
    std::string attack;
    std::string defense;
    /// Mesh routing policy of the cell (empty when the sweep has no
    /// routing axis). Only valid policy names parse — see
    /// `noc::parse_routing_policy`.
    std::string policy;
};

/// Parses a matrix cell label; returns false when `label` does not follow
/// the `<N>atk/<attack>/<defense>[/<policy>]` convention (the report then
/// falls back to the flat table). The optional fourth segment must name a
/// registered routing policy.
[[nodiscard]] bool parse_dos_cell_label(const std::string& label, DosCellLabel& out);

/// The scalar a matrix cell reports: the worst-case latency the victim
/// observed in that cell (stores included — the wstall damage lands there).
[[nodiscard]] inline std::uint64_t worst_case_victim_latency(
    const ScenarioResult& r) noexcept {
    return r.load_lat_max > r.store_lat_max ? r.load_lat_max : r.store_lat_max;
}

} // namespace realm::scenario
