#include "scenario/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

namespace realm::scenario {

std::vector<ScenarioResult> ScenarioRunner::run(const Sweep& sweep) const {
    std::vector<const ScenarioConfig*> configs;
    std::vector<std::string> labels;
    configs.reserve(sweep.points.size());
    labels.reserve(sweep.points.size());
    for (const SweepPoint& p : sweep.points) {
        configs.push_back(&p.config);
        labels.push_back(p.label);
    }
    return run_points(configs, labels);
}

std::vector<ScenarioResult>
ScenarioRunner::run(const std::vector<ScenarioConfig>& configs) const {
    std::vector<const ScenarioConfig*> ptrs;
    std::vector<std::string> labels;
    ptrs.reserve(configs.size());
    labels.reserve(configs.size());
    for (const ScenarioConfig& cfg : configs) {
        ptrs.push_back(&cfg);
        labels.push_back(cfg.name);
    }
    return run_points(ptrs, labels);
}

std::vector<ScenarioResult>
ScenarioRunner::run_points(const std::vector<const ScenarioConfig*>& configs,
                           const std::vector<std::string>& labels) const {
    std::vector<ScenarioResult> results(configs.size());
    if (configs.empty()) { return results; }

    unsigned threads = options_.threads;
    if (threads == 0) { threads = std::max(1U, std::thread::hardware_concurrency()); }
    threads = std::min<unsigned>(threads, static_cast<unsigned>(configs.size()));

    if (threads <= 1) {
        for (std::size_t i = 0; i < configs.size(); ++i) {
            results[i] = run_scenario(*configs[i], labels[i]);
        }
        return results;
    }

    // Work-stealing over an atomic index: points differ wildly in cost
    // (baseline vs fully-contended), so static partitioning wastes workers.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (std::size_t i = next.fetch_add(1); i < configs.size();
                 i = next.fetch_add(1)) {
                results[i] = run_scenario(*configs[i], labels[i]);
            }
        });
    }
    for (std::thread& th : pool) { th.join(); }
    return results;
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void json_number(std::ostream& os, double v) {
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os << buf;
}

} // namespace

void write_json(std::ostream& os, const Sweep& sweep,
                const std::vector<ScenarioResult>& results) {
    os << "{\n  \"sweep\": ";
    json_escape(os, sweep.name);
    os << ",\n  \"title\": ";
    json_escape(os, sweep.title);
    os << ",\n  \"baseline_index\": ";
    if (sweep.baseline_index) {
        os << *sweep.baseline_index;
    } else {
        os << "null";
    }
    os << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult& r = results[i];
        os << "    {\"label\": ";
        json_escape(os, r.label);
        os << ", \"seed\": " << r.seed;
        os << ", \"boot_ok\": " << (r.boot_ok ? "true" : "false");
        os << ", \"timed_out\": " << (r.timed_out ? "true" : "false");
        os << ", \"run_cycles\": " << r.run_cycles;
        os << ", \"ops\": " << r.ops;
        os << ", \"load_lat_mean\": ";
        json_number(os, r.load_lat_mean);
        os << ", \"load_lat_min\": " << r.load_lat_min;
        os << ", \"load_lat_max\": " << r.load_lat_max;
        os << ", \"load_lat_p99\": " << r.load_lat_p99;
        os << ", \"store_lat_mean\": ";
        json_number(os, r.store_lat_mean);
        os << ", \"store_lat_max\": " << r.store_lat_max;
        os << ", \"dma_bytes\": " << r.dma_bytes;
        os << ", \"dma_read_bw\": ";
        json_number(os, r.dma_read_bw);
        os << ", \"dma_depletions\": " << r.dma_depletions;
        os << ", \"dma_isolation_cycles\": " << r.dma_isolation_cycles;
        os << ", \"dma_throttle_stalls\": " << r.dma_throttle_stalls;
        os << ", \"dma_cut_through\": " << r.dma_cut_through;
        os << ", \"xbar_w_stalls\": " << r.xbar_w_stalls;
        os << ", \"ticks_executed\": " << r.ticks_executed;
        os << ", \"ticks_skipped\": " << r.ticks_skipped;
        os << ", \"fast_forwarded_cycles\": " << r.fast_forwarded_cycles;
        os << ", \"simulated_cycles\": " << r.simulated_cycles;
        os << ", \"wall_seconds\": ";
        json_number(os, r.wall_seconds);
        os << '}' << (i + 1 < results.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

bool write_json_file(const std::string& path, const Sweep& sweep,
                     const std::vector<ScenarioResult>& results) {
    std::ofstream out{path};
    if (!out) { return false; }
    write_json(out, sweep, results);
    return out.good();
}

} // namespace realm::scenario
