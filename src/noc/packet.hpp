/// \file
/// \brief Packet format of the AXI-carrying ring NoC (Figure 1b of the
///        paper shows REALM units in front of a NoC with AXI4 interfaces).
#pragma once

#include "axi/flit.hpp"

#include <cstdint>
#include <variant>

namespace realm::noc {

/// One AXI channel beat in flight on the network. Request packets (AW/W/AR)
/// travel on the request network, response packets (B/R) on the response
/// network; the two-network split makes the request-response protocol
/// deadlock-free under backpressure.
///
/// Under `FlowControl::kCredited` a packet is a wormhole *worm* of `flits`
/// flits: data-carrying beats (W / R) serialize into
/// `NocFlowConfig::flits_per_packet` flits (header + payload sized from the
/// AXI beat width), address/response beats (AW / AR / B) are single-flit
/// headers. A link transmits one flit per cycle, so `flits` is also the
/// channel occupancy of the packet. Legacy provisioned transport keeps
/// `flits == 1` everywhere.
struct NocPacket {
    std::uint8_t src = 0;   ///< injecting node
    std::uint8_t dest = 0;  ///< ejecting node
    std::uint8_t flits = 1; ///< worm length in flits (1 = bare header)
    std::variant<axi::AwFlit, axi::WFlit, axi::BFlit, axi::ArFlit, axi::RFlit> flit;

    [[nodiscard]] bool is_request() const noexcept {
        return std::holds_alternative<axi::AwFlit>(flit) ||
               std::holds_alternative<axi::WFlit>(flit) ||
               std::holds_alternative<axi::ArFlit>(flit);
    }
    /// True for the beats that carry bus data (and therefore serialize into
    /// multi-flit worms under credited flow control).
    [[nodiscard]] bool data_carrying() const noexcept {
        return std::holds_alternative<axi::WFlit>(flit) ||
               std::holds_alternative<axi::RFlit>(flit);
    }
};

} // namespace realm::noc
