/// Tests for the scenario engine: registry integrity, seed derivation,
/// thread-count-invariant parallel sweeps, and the JSON emitter.
#include "scenario/cli.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace realm::scenario {
namespace {

// --- Seed derivation (reproducible parallel runs) ----------------------------

TEST(DeriveSeed, StableAndDistinct) {
    EXPECT_EQ(sim::derive_seed("fig6a", 0), sim::derive_seed("fig6a", 0));
    EXPECT_NE(sim::derive_seed("fig6a", 0), sim::derive_seed("fig6a", 1));
    EXPECT_NE(sim::derive_seed("fig6a", 0), sim::derive_seed("fig6b", 0));
    // No degenerate zero seeds for the registered sweeps.
    for (const std::string& name : sweep_names()) {
        for (std::uint64_t i = 0; i < 16; ++i) {
            EXPECT_NE(sim::derive_seed(name, i), 0U);
        }
    }
}

// --- Registry ----------------------------------------------------------------

TEST(Registry, KnowsTheFigureAndAblationSweeps) {
    for (const char* name : {"fig6a", "fig6b", "ablation-period", "ablation-throttle",
                             "ablation-dos", "random-mix", "idle-tail"}) {
        EXPECT_TRUE(has_sweep(name)) << name;
    }
    EXPECT_FALSE(has_sweep("nope"));
}

TEST(Registry, KnowsTheRingSweeps) {
    for (const char* name : {"ring-contention", "ring-dos-matrix", "ring-dos-smoke"}) {
        ASSERT_TRUE(has_sweep(name)) << name;
        const Sweep sweep = make_sweep(name);
        EXPECT_FALSE(sweep.points.empty());
        for (const SweepPoint& p : sweep.points) {
            EXPECT_EQ(p.config.topology.kind, TopologyKind::kRing) << p.label;
        }
    }
    // The DoS matrix crosses 3 attacker counts x 3 modes x 4 defenses on a
    // 24-node ring, plus one no-attack baseline per defense for detector
    // false-positive scoring.
    const Sweep matrix = make_sweep("ring-dos-matrix");
    EXPECT_EQ(matrix.points.size(), 40U);
    for (const SweepPoint& p : matrix.points) {
        EXPECT_EQ(p.config.topology.ring.num_nodes, 24U);
    }
}

TEST(Registry, SweepPointsCarryDerivedSeeds) {
    const Sweep sweep = make_sweep("fig6b");
    ASSERT_EQ(sweep.points.size(), 6U);
    ASSERT_TRUE(sweep.baseline_index.has_value());
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
        EXPECT_EQ(sweep.points[i].config.seed, sim::derive_seed("fig6b", i));
    }
    // Budget points: fragmentation 1, short period, decreasing budgets.
    EXPECT_EQ(sweep.points[1].config.boot_plans[1].fragment_beats, 1U);
    EXPECT_GT(sweep.points[1].config.boot_plans[1].budget_bytes,
              sweep.points[5].config.boot_plans[1].budget_bytes);
}

// --- End-to-end scenario run -------------------------------------------------

ScenarioConfig tiny_scenario() {
    Sweep sweep = make_sweep("random-mix");
    ScenarioConfig cfg = sweep.points[1].config; // frag 16, budgeted DMA
    cfg.victim.random.num_ops = 500;
    return cfg;
}

TEST(RunScenario, CompletesAndReportsVictimMetrics) {
    ScenarioConfig cfg = tiny_scenario();
    const ScenarioResult res = run_scenario(cfg, "tiny");
    EXPECT_EQ(res.label, "tiny");
    EXPECT_TRUE(res.boot_ok);
    EXPECT_FALSE(res.timed_out);
    EXPECT_EQ(res.ops, 500U);
    EXPECT_GT(res.run_cycles, 0U);
    EXPECT_GT(res.load_lat_mean, 0.0);
    EXPECT_GT(res.dma_bytes, 0U);
}

TEST(RunScenario, SeedSelectsTheRandomWorkload) {
    ScenarioConfig cfg = tiny_scenario();
    const ScenarioResult a = run_scenario(cfg);
    cfg.seed ^= 0xDEADBEEF;
    const ScenarioResult b = run_scenario(cfg);
    EXPECT_NE(a.run_cycles, b.run_cycles)
        << "different derived seeds must produce different random traffic";
    cfg.seed ^= 0xDEADBEEF;
    const ScenarioResult c = run_scenario(cfg);
    EXPECT_EQ(a.run_cycles, c.run_cycles) << "same seed must reproduce exactly";
}

// --- Parallel runner ---------------------------------------------------------

void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.run_cycles, b.run_cycles);
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.load_lat_mean, b.load_lat_mean);
    EXPECT_EQ(a.load_lat_max, b.load_lat_max);
    EXPECT_EQ(a.store_lat_mean, b.store_lat_mean);
    EXPECT_EQ(a.dma_bytes, b.dma_bytes);
    EXPECT_EQ(a.dma_depletions, b.dma_depletions);
    EXPECT_EQ(a.dma_isolation_cycles, b.dma_isolation_cycles);
    EXPECT_EQ(a.xbar_w_stalls, b.xbar_w_stalls);
    // Same scheduler on both sides: even the host-side evaluation counts
    // must line up, or the runs were not bit-identical.
    EXPECT_EQ(a.ticks_executed, b.ticks_executed);
    EXPECT_EQ(a.ticks_skipped, b.ticks_skipped);
    EXPECT_EQ(a.fast_forwarded_cycles, b.fast_forwarded_cycles);
}

TEST(ScenarioRunner, ThreadCountDoesNotChangeResults) {
    Sweep sweep = make_sweep("random-mix");
    for (SweepPoint& p : sweep.points) {
        p.config.victim.random.num_ops = 500; // keep the test quick
    }
    const std::vector<ScenarioResult> serial =
        ScenarioRunner{RunnerOptions{.threads = 1}}.run(sweep);
    const std::vector<ScenarioResult> parallel =
        ScenarioRunner{RunnerOptions{.threads = 4}}.run(sweep);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(sweep.points[i].label);
        expect_identical(serial[i], parallel[i]);
    }
}

TEST(ScenarioRunner, ResultsKeepPointOrder) {
    Sweep sweep = make_sweep("random-mix");
    for (SweepPoint& p : sweep.points) { p.config.victim.random.num_ops = 200; }
    const auto results = ScenarioRunner{RunnerOptions{.threads = 3}}.run(sweep);
    ASSERT_EQ(results.size(), sweep.points.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].label, sweep.points[i].label);
        EXPECT_EQ(results[i].seed, sweep.points[i].config.seed);
    }
}

// --- Config digest (sweep-level resume) --------------------------------------

TEST(ConfigHash, StableAndSensitiveToSemanticFields) {
    const ScenarioConfig base = tiny_scenario();
    EXPECT_EQ(config_hash(base), config_hash(base)) << "digest must be deterministic";

    ScenarioConfig renamed = base;
    renamed.name = "cosmetic";
    EXPECT_EQ(config_hash(base), config_hash(renamed))
        << "names are presentational, not semantic";

    ScenarioConfig c = base;
    c.seed ^= 1;
    EXPECT_NE(config_hash(base), config_hash(c));
    c = base;
    c.scheduler = sim::Scheduler::kTickAll;
    EXPECT_NE(config_hash(base), config_hash(c));
    c = base;
    c.topology.kind = TopologyKind::kRing;
    EXPECT_NE(config_hash(base), config_hash(c));
    c = base;
    c.boot_plans[1].budget_bytes += 1;
    EXPECT_NE(config_hash(base), config_hash(c));
    c = base;
    c.victim.random.num_ops += 1;
    EXPECT_NE(config_hash(base), config_hash(c));
    // Shard count is result-identical but still hashed: a shard-sweep's
    // points must not alias each other in a resume cache (each point's
    // host-speed numbers are what the sweep exists to compare).
    c = base;
    c.shards += 1;
    EXPECT_NE(config_hash(base), config_hash(c));
    // ... while the worker override is pure host policy and must NOT split
    // the cache.
    c = base;
    c.shard_workers = 7;
    EXPECT_EQ(config_hash(base), config_hash(c));

    ScenarioConfig ring = make_sweep("ring-dos-smoke").points[0].config;
    ScenarioConfig ring2 = ring;
    ring2.topology.ring.num_nodes = 12;
    ring2.topology.ring.nodes = make_ring_roles(12, 1, 2);
    EXPECT_NE(config_hash(ring), config_hash(ring2));
}

TEST(ConfigHash, MonitorKnobsAreSemanticDisplayKnobsAreNot) {
    const ScenarioConfig base = tiny_scenario();

    // The monitor hop adds one cycle each way, so enabling it changes
    // results: a monitored point must never alias an unmonitored one in a
    // resume cache.
    ScenarioConfig c = base;
    c.monitors.enabled = true;
    EXPECT_NE(config_hash(base), config_hash(c));

    // Every detection threshold is result-affecting (verdicts, counters).
    const ScenarioConfig mon_base = c;
    c.monitors.thresholds.timeout_cycles += 1;
    EXPECT_NE(config_hash(mon_base), config_hash(c));
    c = mon_base;
    c.monitors.thresholds.stall_cycles += 1;
    EXPECT_NE(config_hash(mon_base), config_hash(c));
    c = mon_base;
    c.monitors.thresholds.window_cycles += 1;
    EXPECT_NE(config_hash(mon_base), config_hash(c));
    c = mon_base;
    c.monitors.thresholds.bw_threshold += 0.5;
    EXPECT_NE(config_hash(mon_base), config_hash(c));
    c = mon_base;
    c.monitors.thresholds.held_threshold += 0.05;
    EXPECT_NE(config_hash(mon_base), config_hash(c));
    c = mon_base;
    c.monitors.thresholds.occ_threshold += 0.25;
    EXPECT_NE(config_hash(mon_base), config_hash(c));

    // Detector ground truth must split attack cells from benign twins.
    ScenarioConfig hostile = base;
    ASSERT_FALSE(hostile.interference.empty());
    hostile.interference[0].hostile = true;
    EXPECT_NE(config_hash(base), config_hash(hostile));

    // ... while the report row cap is pure display policy.
    c = mon_base;
    c.monitors.report_managers = 3;
    EXPECT_EQ(config_hash(mon_base), config_hash(c));
}

// --- Resume ------------------------------------------------------------------

Sweep quick_smoke_sweep() {
    Sweep sweep = make_sweep("ring-dos-smoke");
    sweep.points.resize(4); // the 1-attacker cells keep the test fast
    return sweep;
}

TEST(Resume, JsonRoundTripRestoresEveryEmittedField) {
    Sweep sweep = quick_smoke_sweep();
    const auto results = ScenarioRunner{RunnerOptions{.threads = 2}}.run(sweep);
    const std::string path = "scenario_resume_roundtrip.json";
    ASSERT_TRUE(write_json_file(path, sweep, results));

    const auto cache = load_json_results(path);
    ASSERT_EQ(cache.size(), results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto it = cache.find(config_hash(sweep.points[i].config));
        ASSERT_NE(it, cache.end()) << sweep.points[i].label;
        const ScenarioResult& a = results[i];
        const ScenarioResult& b = it->second;
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_EQ(a.boot_ok, b.boot_ok);
        EXPECT_EQ(a.timed_out, b.timed_out);
        EXPECT_EQ(a.run_cycles, b.run_cycles);
        EXPECT_EQ(a.ops, b.ops);
        EXPECT_EQ(a.load_lat_max, b.load_lat_max);
        EXPECT_EQ(a.store_lat_max, b.store_lat_max);
        EXPECT_EQ(a.dma_bytes, b.dma_bytes);
        EXPECT_EQ(a.xbar_w_stalls, b.xbar_w_stalls);
        EXPECT_EQ(a.fabric_hops, b.fabric_hops);
        EXPECT_EQ(a.ticks_executed, b.ticks_executed);
        EXPECT_EQ(a.simulated_cycles, b.simulated_cycles);
        // Doubles survive the %.6g round trip only approximately.
        EXPECT_NEAR(a.load_lat_mean, b.load_lat_mean, 1e-4 * (1.0 + a.load_lat_mean));
    }
    std::remove(path.c_str());
}

TEST(Resume, RunResumedSkipsMatchingPointsAndRerunsChangedOnes) {
    Sweep sweep = quick_smoke_sweep();
    const ScenarioRunner runner{RunnerOptions{.threads = 2}};
    const auto first = runner.run(sweep);
    const std::string path = "scenario_resume_skip.json";
    ASSERT_TRUE(write_json_file(path, sweep, first));

    // Unchanged sweep: every point is served from the dump.
    std::size_t reused = 0;
    const auto resumed = runner.run_resumed(sweep, path, &reused);
    EXPECT_EQ(reused, sweep.points.size());
    ASSERT_EQ(resumed.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(resumed[i].run_cycles, first[i].run_cycles);
        EXPECT_EQ(resumed[i].label, sweep.points[i].label);
    }

    // Changing one point's semantics re-runs exactly that point.
    sweep.points[1].config.seed ^= 0xBEEF;
    const auto partial = runner.run_resumed(sweep, path, &reused);
    EXPECT_EQ(reused, sweep.points.size() - 1);
    EXPECT_EQ(partial[0].run_cycles, first[0].run_cycles);
    // A missing file degrades to a full run, never an error.
    const auto cold = runner.run_resumed(sweep, "does_not_exist.json", &reused);
    EXPECT_EQ(reused, 0U);
    EXPECT_EQ(cold.size(), sweep.points.size());
    std::remove(path.c_str());
}

TEST(Resume, MonitoredPointsNeverAliasUnmonitoredCaches) {
    // A dump written without --monitors must not satisfy a monitored resume:
    // the monitor hop shifts timing and the cached line has no telemetry.
    Sweep sweep = quick_smoke_sweep();
    sweep.points.resize(2);
    const ScenarioRunner runner{RunnerOptions{.threads = 2}};
    const auto plain = runner.run(sweep);
    const std::string path = "scenario_resume_monitored.json";
    ASSERT_TRUE(write_json_file(path, sweep, plain));

    Sweep monitored = sweep;
    for (SweepPoint& p : monitored.points) { p.config.monitors.enabled = true; }
    std::size_t reused = 0;
    const auto results = runner.run_resumed(monitored, path, &reused);
    EXPECT_EQ(reused, 0U) << "monitored configs must re-run, not reuse";
    ASSERT_EQ(results.size(), monitored.points.size());
    for (const ScenarioResult& r : results) { EXPECT_TRUE(r.mon_enabled); }

    // And the monitored dump round-trips: a second monitored pass is all hits.
    ASSERT_TRUE(write_json_file(path, monitored, results));
    const auto again = runner.run_resumed(monitored, path, &reused);
    EXPECT_EQ(reused, monitored.points.size());
    std::remove(path.c_str());
}

TEST(Resume, MonitoredJsonRoundTripRestoresTelemetry) {
    Sweep sweep = quick_smoke_sweep();
    sweep.points.resize(2);
    for (SweepPoint& p : sweep.points) { p.config.monitors.enabled = true; }
    const auto results = ScenarioRunner{RunnerOptions{.threads = 2}}.run(sweep);
    const std::string path = "scenario_monitored_roundtrip.json";
    ASSERT_TRUE(write_json_file(path, sweep, results));

    const auto cache = load_json_results(path);
    ASSERT_EQ(cache.size(), results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE(sweep.points[i].label);
        const auto it = cache.find(config_hash(sweep.points[i].config));
        ASSERT_NE(it, cache.end());
        const ScenarioResult& a = results[i];
        const ScenarioResult& b = it->second;
        ASSERT_TRUE(b.mon_enabled);
        EXPECT_EQ(a.mon_lat_p50, b.mon_lat_p50);
        EXPECT_EQ(a.mon_lat_p99, b.mon_lat_p99);
        EXPECT_EQ(a.mon_lat_p999, b.mon_lat_p999);
        EXPECT_EQ(a.mon_timeouts, b.mon_timeouts);
        EXPECT_EQ(a.mon_orphan_rsp, b.mon_orphan_rsp);
        EXPECT_EQ(a.mon_orphan_req, b.mon_orphan_req);
        EXPECT_EQ(a.mon_stall_events, b.mon_stall_events);
        EXPECT_EQ(a.mon_wgap_events, b.mon_wgap_events);
        EXPECT_EQ(a.mon_true_positives, b.mon_true_positives);
        EXPECT_EQ(a.mon_false_positives, b.mon_false_positives);
        EXPECT_EQ(a.mon_false_negatives, b.mon_false_negatives);
        EXPECT_EQ(a.mon_first_detect, b.mon_first_detect);
        EXPECT_EQ(a.mgr_p50, b.mgr_p50);
        EXPECT_EQ(a.mgr_p99, b.mgr_p99);
        EXPECT_EQ(a.mgr_p999, b.mgr_p999);
        EXPECT_EQ(a.mgr_flagged, b.mgr_flagged);
        EXPECT_EQ(a.mgr_signals, b.mgr_signals);
        EXPECT_EQ(a.mgr_hostile, b.mgr_hostile);
        EXPECT_EQ(a.mgr_detect, b.mgr_detect);
        EXPECT_EQ(a.mgr_occ_milli, b.mgr_occ_milli);
        EXPECT_FALSE(b.mgr_p99.empty());
    }
    std::remove(path.c_str());
}

// --- 24-node DoS-matrix point through the parallel runner --------------------

TEST(ScenarioRunner, RingMatrixPointThreadInvariant) {
    // Acceptance gate: a 24-node ring DoS-matrix point must produce
    // identical results through the runner at --threads 1 and --threads N.
    Sweep matrix = make_sweep("ring-dos-matrix");
    Sweep sweep;
    sweep.name = matrix.name;
    sweep.points = {matrix.points[0], matrix.points[2]}; // hog: none + budget
    for (SweepPoint& p : sweep.points) {
        p.config.victim.stream.repeat = 1; // keep the test quick
    }
    const auto serial = ScenarioRunner{RunnerOptions{.threads = 1}}.run(sweep);
    const auto parallel = ScenarioRunner{RunnerOptions{.threads = 4}}.run(sweep);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(sweep.points[i].label);
        expect_identical(serial[i], parallel[i]);
        EXPECT_GT(serial[i].fabric_hops, 0U);
    }
}

// --- JSON emitter ------------------------------------------------------------

TEST(JsonOutput, EmitsOnePointPerResultWithEscaping) {
    Sweep sweep = make_sweep("random-mix");
    for (SweepPoint& p : sweep.points) { p.config.victim.random.num_ops = 100; }
    sweep.points[0].label = "weird \"label\"\n";
    const auto results = ScenarioRunner{}.run(sweep);
    std::ostringstream os;
    write_json(os, sweep, results);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"sweep\": \"random-mix\""), std::string::npos);
    EXPECT_NE(json.find("\\\"label\\\"\\n"), std::string::npos);
    EXPECT_NE(json.find("\"run_cycles\""), std::string::npos);
    std::size_t points = 0;
    for (std::size_t pos = json.find("\"label\""); pos != std::string::npos;
         pos = json.find("\"label\"", pos + 1)) {
        ++points;
    }
    EXPECT_EQ(points, results.size());
    // Balanced braces/brackets: a cheap structural sanity check (the CI
    // smoke run validates against a real JSON parser).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

} // namespace
} // namespace realm::scenario
