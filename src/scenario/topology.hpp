/// \file
/// \brief Topology subsystem: scenarios polymorphic over the fabric.
///
/// The paper's Figure 1b argues REALM regulation is interconnect-agnostic —
/// the same unit drops in front of a NoC manager port unchanged. This module
/// makes that claim executable at scenario scale: a `TopologyConfig` selects
/// the Cheshire-like crossbar SoC (`kCheshire`), an N-node ring NoC
/// (`kRing`), or an R x C 2D mesh with a pluggable routing policy
/// (`kMesh`, XY / YX / O1TURN / west-first; see noc/routing.hpp) — the NoC
/// fabrics with per-node role assignment and optional REALM placement per
/// manager node — and a `TopologyHandle` presents all of them behind one
/// interface — victim port, interference ports, memory preconditioning,
/// boot/config path, and observable counters — so `run_scenario` and
/// `ScenarioResult` work unchanged across fabrics.
#pragma once

#include "axi/channel.hpp"
#include "mem/axi_mem_slave.hpp"
#include "noc/mesh.hpp"
#include "noc/ring.hpp"
#include "realm/realm_unit.hpp"
#include "soc/cheshire_soc.hpp"

#include "sim/context.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace realm::scenario {

struct ScenarioConfig; // scenario.hpp includes this header
struct RegionPlan;

/// Which fabric a scenario instantiates.
enum class TopologyKind : std::uint8_t {
    kCheshire, ///< crossbar SoC of Figure 5 (`soc::CheshireSoc`)
    kRing,     ///< N-node unidirectional ring NoC of Figure 1b
    kMesh,     ///< R x C 2D mesh, routing policy per `NocTopologyConfig`
};

[[nodiscard]] constexpr const char* to_string(TopologyKind k) noexcept {
    switch (k) {
    case TopologyKind::kCheshire: return "cheshire";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kMesh: return "mesh";
    }
    return "?";
}

/// What one NoC node hosts (ring and mesh share the role vocabulary).
enum class RingRole : std::uint8_t {
    kPassthrough,  ///< router only, no local manager or subordinate
    kVictim,       ///< the latency-sensitive core (exactly one per fabric)
    kInterference, ///< one interference DMA manager
    kMemory,       ///< one memory subordinate (an address span of the map)
};

[[nodiscard]] constexpr const char* to_string(RingRole r) noexcept {
    switch (r) {
    case RingRole::kPassthrough: return "passthrough";
    case RingRole::kVictim: return "victim";
    case RingRole::kInterference: return "interference";
    case RingRole::kMemory: return "memory";
    }
    return "?";
}

/// Role and REALM placement of one NoC node.
struct RingNodeSpec {
    RingRole role = RingRole::kPassthrough;
    /// Place a REALM unit in front of this node's manager port (only
    /// meaningful for kVictim / kInterference nodes).
    bool realm = false;
    /// Per-node unit parameters; nullopt uses the topology config's `realm`.
    /// Lets a sweep vary one manager's unit (e.g. strip the attackers'
    /// write buffers) while every other unit stays constant across cells.
    std::optional<rt::RealmUnitConfig> realm_config;
};

/// Parameters shared by every NoC fabric. Memory node `k` (k-th kMemory
/// node in node order) serves `[mem_base + k * mem_stride, + mem_span_bytes)`.
struct NocTopologyConfig {
    /// Explicit per-node roles; empty resolves to the fabric's canonical
    /// layout (`make_ring_roles` / `make_mesh_roles` with 1 attacker and 2
    /// memories). When non-empty, the size must equal the fabric's node
    /// count and exactly one node must be the victim.
    std::vector<RingNodeSpec> nodes;

    axi::Addr mem_base = 0x0;
    std::uint64_t mem_span_bytes = 0x2'0000; ///< 128 KiB per memory node
    axi::Addr mem_stride = 0x10'0000;
    std::uint32_t mem_access_latency = 1;
    std::uint32_t mem_max_outstanding = 8;

    /// \name Transport flow control (see noc/credit.hpp)
    ///@{
    /// Wormhole flit links with per-VC credits and end-to-end NI credits —
    /// every buffer bound enforced, not provisioned.
    /// Flits per data-carrying packet (W / R beat worm length).
    std::uint32_t flits_per_packet = 4;
    /// Link VC buffer depth in flits (must hold one whole worm).
    std::uint32_t vc_depth = 8;
    /// End-to-end credit pool per (source, target NI) pair, in flits.
    std::uint32_t e2e_credits = 32;
    /// Cycles a returning end-to-end credit rides the response network
    /// before the injector may reuse it (0 = instantaneous release at the
    /// drain point, the historical behaviour).
    std::uint32_t credit_return_delay = 0;
    /// Uniform pipeline depth of every fabric link in cycles: a flit pushed
    /// at cycle N becomes visible to the consumer at N + link_latency
    /// (1 = the historical single-register link). Doubles as the sharded
    /// kernel's conservative lookahead on the mesh — shard barriers run
    /// every link_latency cycles instead of every cycle.
    std::uint32_t link_latency = 1;
    ///@}

    /// Mesh routing policy (see noc/routing.hpp): deterministic XY
    /// (default) / YX dimension order, per-worm randomized O1TURN, or
    /// turn-model adaptive west-first. Ignored by the single-path ring.
    noc::RoutingPolicy routing = noc::RoutingPolicy::kXY;

    [[nodiscard]] noc::NocFlowConfig flow() const noexcept {
        return noc::NocFlowConfig{flits_per_packet, vc_depth, e2e_credits,
                                  credit_return_delay, link_latency};
    }

    /// Template applied to every placed REALM unit.
    rt::RealmUnitConfig realm;
};

/// Ring fabric parameters.
struct RingTopologyConfig : NocTopologyConfig {
    noc::NodeId num_nodes = 6;
};

/// Mesh fabric parameters. Node ids are row-major (`node = row * cols + col`)
/// and 16-bit, so `rows * cols` must not exceed 65535 (checked on
/// construction) — 32 x 32 fabrics fit comfortably.
struct MeshTopologyConfig : NocTopologyConfig {
    noc::NodeId rows = 2;
    noc::NodeId cols = 3;

    [[nodiscard]] std::uint32_t num_nodes() const noexcept {
        return static_cast<std::uint32_t>(rows) * cols;
    }
};

/// Fabric selector carried by `ScenarioConfig`. For `kCheshire` the SoC
/// parameters stay in `ScenarioConfig::soc` (unchanged legacy layout).
struct TopologyConfig {
    TopologyKind kind = TopologyKind::kCheshire;
    RingTopologyConfig ring{};
    MeshTopologyConfig mesh{};
};

/// Canonical ring layout: victim at node 0, `num_memories` memory nodes
/// spread evenly over the ring, `num_attackers` interference nodes filling
/// the lowest free positions, the rest pass-through hops. Every manager node
/// gets a REALM unit.
[[nodiscard]] std::vector<RingNodeSpec>
make_ring_roles(noc::NodeId num_nodes, noc::NodeId num_attackers,
                noc::NodeId num_memories = 2);

/// Canonical mesh layout: the same victim/memory/attacker spread as
/// `make_ring_roles` applied to the row-major node order — the victim sits
/// in the north-west corner, memories land spread across rows and columns,
/// attackers fill the lowest free positions. Sharing the linear layout keeps
/// DoS-matrix cells comparable across fabrics (same roles at the same node
/// indices), while XY routing turns the linear spread into genuinely
/// distinct multi-hop paths.
[[nodiscard]] std::vector<RingNodeSpec>
make_mesh_roles(noc::NodeId rows, noc::NodeId cols, noc::NodeId num_attackers,
                noc::NodeId num_memories = 2);

/// One constructed fabric, presented uniformly to `run_scenario`: where the
/// victim and the interference DMAs attach, how memory is preconditioned,
/// how regulation is programmed (boot/config path), and which counters are
/// observable. Implementations own every component of the fabric.
class TopologyHandle {
public:
    virtual ~TopologyHandle() = default;

    /// \name Manager attachment points
    ///@{
    /// Channel the victim core model drives (upstream of its REALM unit).
    [[nodiscard]] virtual axi::AxiChannel& victim_port() = 0;
    /// Interference manager ports available on this fabric.
    [[nodiscard]] virtual std::size_t num_interference_ports() const = 0;
    [[nodiscard]] virtual axi::AxiChannel& interference_port(std::size_t i) = 0;
    /// Spatial shard of the tile behind each attachment point — the models
    /// driving a port must be built (and hence ticked) on the same shard as
    /// the tile they talk to, since that path is not edge-registered.
    /// Fabrics without spatial sharding keep everything on shard 0.
    [[nodiscard]] virtual unsigned victim_shard() const { return 0; }
    [[nodiscard]] virtual unsigned interference_shard(std::size_t) const { return 0; }
    ///@}

    /// \name Memory preconditioning (by bus address)
    ///@{
    virtual void write_u8(axi::Addr addr, std::uint8_t value) = 0;
    virtual void write_u64(axi::Addr addr, std::uint64_t value) = 0;
    /// Installs the span hot in whatever cache the fabric has (no-op when
    /// it has none, e.g. the NoC fabrics' flat SRAM nodes).
    virtual void warm(axi::Addr base, std::uint64_t bytes) = 0;
    ///@}

    /// \name Boot / configuration path
    ///@{
    /// Programs per-unit regulation (plan 0: victim unit, plan 1+i:
    /// interference unit i) and returns false if the configuration path did
    /// not complete. The Cheshire fabric runs the paper's guarded boot-flow
    /// script on the HWRoT master; the NoC fabrics program their units
    /// directly.
    virtual bool boot(const std::vector<RegionPlan>& plans) = 0;
    /// Enables the throttling unit on every interference-side REALM unit.
    virtual void set_interference_throttle(bool enabled) = 0;
    /// Programs a monitor-only (unregulated) region over the fabric's main
    /// memory span on the victim-side REALM unit.
    virtual void set_victim_monitor() = 0;
    ///@}

    /// \name Observable counters
    ///@{
    /// Victim-side REALM unit, or nullptr when none is placed.
    [[nodiscard]] virtual const rt::RealmUnit* victim_realm() const = 0;
    /// REALM unit in front of interference manager `i`, or nullptr.
    [[nodiscard]] virtual const rt::RealmUnit* interference_realm(std::size_t i) const = 0;
    /// Cycles the fabric's memory-side W channel stalled on a granted
    /// manager withholding data (the DoS exposure metric; crossbar: LLC
    /// port, NoC: sum over the memory-node egress muxes).
    [[nodiscard]] virtual std::uint64_t fabric_w_stalls() const = 0;
    /// Packets forwarded across fabric hops (0 on the crossbar).
    [[nodiscard]] virtual std::uint64_t fabric_hops() const = 0;
    /// Asserts the fabric's flow-control invariants (credit conservation,
    /// bounded NI staging, bounded link VCs). No-op on fabrics without
    /// credited flow control; tests call it every cycle.
    virtual void check_flow_invariants() const {}
    /// Conservative lookahead the fabric guarantees: every cross-shard
    /// effect staged at cycle N is invisible before N + lookahead, so the
    /// sharded kernel may batch that many cycles per barrier epoch
    /// (`sim::SimContext::set_lookahead`). Fabrics without that guarantee
    /// keep the per-cycle barrier (1).
    [[nodiscard]] virtual sim::Cycle lookahead() const { return 1; }
    ///@}
};

/// Builds the fabric selected by `cfg.topology` inside `ctx`.
[[nodiscard]] std::unique_ptr<TopologyHandle> make_topology(sim::SimContext& ctx,
                                                            const ScenarioConfig& cfg);

} // namespace realm::scenario
