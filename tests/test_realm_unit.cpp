/// Integration tests for the composed REALM unit sitting between a manager
/// and a memory subordinate.
#include "axi/builder.hpp"
#include "axi/checker.hpp"
#include "mem/axi_mem_slave.hpp"
#include "realm/realm_unit.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

namespace realm::rt {
namespace {

using test::collect_b;
using test::collect_read_burst;
using test::push_write_burst;
using test::step_until;

/// Manager -> [REALM] -> checker -> memory. The checker downstream of the
/// unit both validates protocol legality of the unit's output and exposes
/// how many child bursts actually reached the memory side.
class RealmFixture : public ::testing::Test {
protected:
    explicit RealmFixture(RealmUnitConfig cfg = {}) {
        slave = std::make_unique<mem::AxiMemSlave>(
            ctx, "mem", mem_ch, std::make_unique<mem::SramBackend>(1, 1),
            mem::AxiMemSlaveConfig{16, 16, 0});
        checker = std::make_unique<axi::AxiChecker>(ctx, "chk", down, mem_ch, true);
        unit = std::make_unique<RealmUnit>(ctx, "realm", up, down, cfg);
    }

    sim::SimContext ctx;
    axi::AxiChannel up{ctx, "up"};
    axi::AxiChannel down{ctx, "down", 2, /*resp_passthrough=*/true};
    axi::AxiChannel mem_ch{ctx, "mem"};
    std::unique_ptr<mem::AxiMemSlave> slave;
    std::unique_ptr<axi::AxiChecker> checker;
    std::unique_ptr<RealmUnit> unit;
};

RegionConfig region(axi::Addr start, axi::Addr end, std::uint64_t budget,
                    sim::Cycle period) {
    RegionConfig r;
    r.start = start;
    r.end = end;
    r.budget_bytes = budget;
    r.period_cycles = period;
    return r;
}

TEST_F(RealmFixture, ReadPassesThroughUnregulated) {
    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(1, 0x100, 4, 3));
    const axi::RFlit last = collect_read_burst(ctx, up, 4);
    EXPECT_EQ(last.id, 1U);
    EXPECT_EQ(checker->completed_reads(), 1U);
    EXPECT_EQ(unit->reads_accepted(), 1U);
}

TEST_F(RealmFixture, WriteRoundTripWithData) {
    push_write_burst(ctx, up, 2, 0x200, 4, 8, 0x30);
    const axi::BFlit b = collect_b(ctx, up);
    EXPECT_EQ(b.id, 2U);
    EXPECT_EQ(b.resp, axi::Resp::kOkay);
    // Data must have reached the memory (pattern fill + beat + lane).
    EXPECT_EQ(static_cast<mem::SramBackend&>(slave->backend()).store().read_u8(0x200), 0x30);
}

class RealmFrag4 : public RealmFixture {
protected:
    RealmFrag4()
        : RealmFixture([] {
              RealmUnitConfig c;
              c.fragment_beats = 4;
              c.write_buffer_depth = 16;
              return c;
          }()) {}
};

TEST_F(RealmFrag4, ReadFragmentsDownstreamSingleUpstreamCompletion) {
    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(1, 0x0, 16, 3));
    const axi::RFlit last = collect_read_burst(ctx, up, 16);
    EXPECT_TRUE(last.last);
    EXPECT_EQ(checker->completed_reads(), 4U) << "16 beats at granularity 4 = 4 children";
    EXPECT_EQ(unit->splitter().fragments_created(), 4U);
}

TEST_F(RealmFrag4, WriteFragmentsAndCoalescesResponse) {
    push_write_burst(ctx, up, 1, 0x0, 16, 8, 0x40);
    const axi::BFlit b = collect_b(ctx, up);
    EXPECT_EQ(b.resp, axi::Resp::kOkay);
    EXPECT_EQ(checker->completed_writes(), 4U) << "4 child writes downstream";
    // All 16 beats must have landed contiguously.
    auto& store = static_cast<mem::SramBackend&>(slave->backend()).store();
    EXPECT_EQ(store.read_u8(0x0), 0x40);
    EXPECT_EQ(store.read_u8(15 * 8), 0x40 + 15);
}

TEST_F(RealmFixture, ExactlyOneCycleRequestOverhead) {
    // Reference: identical topology without the REALM unit.
    sim::SimContext ref_ctx;
    axi::AxiChannel ref_down{ref_ctx, "down"};
    axi::AxiChannel ref_mem{ref_ctx, "mem"};
    mem::AxiMemSlave ref_slave{ref_ctx, "mem", ref_mem,
                               std::make_unique<mem::SramBackend>(1, 1),
                               mem::AxiMemSlaveConfig{16, 16, 0}};
    axi::AxiChecker ref_checker{ref_ctx, "chk", ref_down, ref_mem, true};

    const auto measure = [](sim::SimContext& c, axi::AxiChannel& port) {
        axi::ManagerView mgr{port};
        const sim::Cycle t0 = c.now();
        mgr.send_ar(axi::make_ar(1, 0x0, 1, 3));
        while (!mgr.has_r()) { c.step(); }
        (void)mgr.recv_r();
        return c.now() - t0;
    };

    const sim::Cycle with_realm = measure(ctx, up);
    const sim::Cycle without = measure(ref_ctx, ref_down);
    EXPECT_EQ(with_realm, without + 1)
        << "the REALM unit must add exactly one cycle (paper Section III)";
}

TEST_F(RealmFixture, BudgetDepletionIsolatesUntilPeriod) {
    unit->set_region(0, region(0x0, 0x100000, /*budget=*/64, /*period=*/200));
    axi::ManagerView mgr{up};
    // First read (64 B) consumes the whole budget.
    mgr.send_ar(axi::make_ar(1, 0x0, 8, 3));
    (void)collect_read_burst(ctx, up, 8);
    EXPECT_EQ(unit->state(), RealmState::kIsolatedBudget);

    // Second read must be stalled until the period replenishes.
    const sim::Cycle t0 = ctx.now();
    mgr.send_ar(axi::make_ar(1, 0x80, 1, 3));
    (void)collect_read_burst(ctx, up, 1);
    EXPECT_GT(ctx.now() - t0, 100U) << "read must wait for budget replenishment";
    EXPECT_GT(unit->isolation_stalls(), 0U);
    EXPECT_GT(unit->mr().isolation_cycles(), 0U);
}

TEST_F(RealmFixture, ThroughputLimitedToBudgetPerPeriod) {
    // Budget 64 B per 100-cycle period => max 0.64 B/cycle long-run.
    unit->set_region(0, region(0x0, 0x100000, 64, 100));
    axi::ManagerView mgr{up};
    std::uint64_t bytes_done = 0;
    const sim::Cycle horizon = 2000;
    while (ctx.now() < horizon) {
        if (mgr.can_send_ar()) { mgr.send_ar(axi::make_ar(1, bytes_done % 0x1000, 1, 3)); }
        if (mgr.has_r()) {
            (void)mgr.recv_r();
            bytes_done += 8;
        }
        ctx.step();
    }
    const double bw = static_cast<double>(bytes_done) / static_cast<double>(horizon);
    EXPECT_LE(bw, 0.70) << "regulated bandwidth must respect budget/period";
    EXPECT_GE(bw, 0.40) << "regulation must not starve the manager either";
}

TEST_F(RealmFixture, UserIsolationDrainsOutstandingFirst) {
    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(1, 0x0, 32, 3)); // long burst in flight
    ctx.run(6);
    unit->set_user_isolation(true);
    EXPECT_EQ(unit->state(), RealmState::kDraining);
    (void)collect_read_burst(ctx, up, 32); // outstanding completes
    ctx.run(2);
    EXPECT_EQ(unit->state(), RealmState::kIsolatedUser);
    EXPECT_TRUE(unit->fully_isolated());

    // New transaction is blocked while isolated.
    mgr.send_ar(axi::make_ar(1, 0x40, 1, 3));
    ctx.run(50);
    EXPECT_FALSE(mgr.has_r());
    unit->set_user_isolation(false);
    (void)collect_read_burst(ctx, up, 1);
}

TEST_F(RealmFixture, WriteBufferHoldsAwWhileManagerStalls) {
    // The manager issues AW but delays the data: downstream must see no AW,
    // so the interconnect's W channel is never reserved (DoS prevention).
    axi::ManagerView mgr{up};
    mgr.send_aw(axi::make_aw(1, 0x0, 4, 3));
    ctx.run(30);
    EXPECT_EQ(mem_ch.aw.total_pushed(), 0U)
        << "AW must be withheld until the data is buffered";
    // Data arrives; the write then completes normally.
    for (int i = 0; i < 4; ++i) {
        step_until(ctx, [&] { return mgr.can_send_w(); });
        axi::WFlit w;
        w.last = i == 3;
        mgr.send_w(w);
    }
    (void)collect_b(ctx, up);
    EXPECT_EQ(checker->completed_writes(), 1U);
}

TEST_F(RealmFixture, IntrusiveReconfigDrainsThenApplies) {
    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(1, 0x0, 32, 3));
    ctx.run(4);
    EXPECT_FALSE(unit->set_fragmentation(2)) << "busy: must defer";
    EXPECT_EQ(unit->state(), RealmState::kDraining);
    (void)collect_read_burst(ctx, up, 32);
    ctx.run(3); // drain + apply
    EXPECT_EQ(unit->fragmentation(), 2U);
    EXPECT_EQ(unit->state(), RealmState::kReady);
    // And the new granularity takes effect.
    mgr.send_ar(axi::make_ar(1, 0x0, 8, 3));
    (void)collect_read_burst(ctx, up, 8);
    EXPECT_EQ(unit->splitter().fragments_created(), 4U);
}

TEST_F(RealmFixture, BypassModeForwardsUnmodified) {
    ASSERT_TRUE(unit->set_enabled(false));
    EXPECT_EQ(unit->state(), RealmState::kBypass);
    axi::ManagerView mgr{up};
    // A WRAP burst (never fragmentable) round-trips untouched.
    axi::ArFlit ar = axi::make_ar(1, 0x100, 4, 3);
    ar.burst = axi::Burst::kWrap;
    mgr.send_ar(ar);
    (void)collect_read_burst(ctx, up, 4);
    EXPECT_EQ(unit->reads_accepted(), 0U) << "bypass does not account traffic";
}

TEST_F(RealmFixture, MrLatencyStatisticsPopulated) {
    unit->set_region(0, region(0x0, 0x100000, 0, 0)); // monitor-only region
    axi::ManagerView mgr{up};
    mgr.send_ar(axi::make_ar(1, 0x0, 4, 3));
    (void)collect_read_burst(ctx, up, 4);
    push_write_burst(ctx, up, 1, 0x40, 2, 8);
    (void)collect_b(ctx, up);
    const RegionState& r0 = unit->mr().region(0);
    EXPECT_EQ(r0.read_latency.count(), 1U);
    EXPECT_EQ(r0.write_latency.count(), 1U);
    EXPECT_GT(r0.read_latency.mean(), 3.0);
    EXPECT_EQ(r0.bytes_total, 4 * 8U + 2 * 8U);
}

TEST_F(RealmFixture, ThrottleLimitsOutstanding) {
    RealmUnitConfig cfg;
    cfg.throttle_enabled = true;
    sim::SimContext c2;
    axi::AxiChannel up2{c2, "up"};
    axi::AxiChannel down2{c2, "down", 2, true};
    axi::AxiChannel mem2{c2, "mem"};
    mem::AxiMemSlave slave2{c2, "mem", mem2, std::make_unique<mem::SramBackend>(30, 30),
                            mem::AxiMemSlaveConfig{16, 16, 0}};
    axi::AxiChecker chk2{c2, "chk", down2, mem2, true};
    RealmUnit unit2{c2, "realm", up2, down2, cfg};
    unit2.set_region(0, region(0x0, 0x100000, 1000, 10000));

    axi::ManagerView mgr{up2};
    // Burn most of the budget, then observe the outstanding cap shrink.
    std::uint64_t sent = 0;
    for (int i = 0; i < 2000 && sent < 900; ++i) {
        if (mgr.can_send_ar()) {
            mgr.send_ar(axi::make_ar(1, sent, 1, 3));
            sent += 8;
        }
        if (mgr.has_r()) { (void)mgr.recv_r(); }
        c2.step();
    }
    EXPECT_LT(unit2.mr().allowed_outstanding(8), 3U);
    EXPECT_GT(unit2.throttle_stalls(), 0U);
}

} // namespace
} // namespace realm::rt
