/// \file
/// \brief MiBench *Susan* smoothing kernel and its interconnect trace.
///
/// Susan (Smallest Univalue Segment Assimilating Nucleus) smoothing is the
/// paper's stress benchmark: the most memory-intensive MiBench automotive
/// kernel. We implement the actual algorithm (brightness LUT x spatial
/// Gaussian window, center-excluded normalization) over a synthetic image
/// and record the *interconnect-visible* access stream: loads that miss a
/// small private filter cache (standing in for the core's L1 under OS
/// pressure) and write-through stores merged to bus words.
#pragma once

#include "axi/types.hpp"
#include "traffic/workload.hpp"

#include <cstdint>
#include <vector>

namespace realm::traffic {

struct SusanConfig {
    std::uint32_t width = 64;
    std::uint32_t height = 48;
    std::uint32_t mask_radius = 2;     ///< window = (2r+1)^2 taps
    std::uint8_t threshold = 20;       ///< brightness threshold `t`
    axi::Addr image_base = 0x8000'0000;
    axi::Addr out_base = 0x8004'0000;
    axi::Addr lut_base = 0x8008'0000;
    /// Private filter cache modeling the effective L1 locality capture under
    /// OS pressure: direct-mapped, word-granular lines. Smaller = more
    /// interconnect traffic.
    ///
    /// Calibration note: the paper's Figure 6 numbers (0.7 % of baseline at
    /// a ~264-cycle worst-case access latency, 68.2 % at fragmentation 1)
    /// imply that Susan's *interconnect-visible* stream on CVA6 is memory-
    /// latency dominated — execution time scales almost linearly with access
    /// latency. The defaults below (small filter cache, sub-cycle per-tap
    /// cost) put the generated trace in that regime; they are knobs, not
    /// measurements.
    std::uint32_t filter_cache_bytes = 512;
    std::uint32_t filter_line_bytes = 8;
    /// Compute cost per window tap, in quarter cycles (1 = 0.25 cycles/tap).
    std::uint32_t compute_quarter_cycles_per_tap = 1;
    /// Cost of a load absorbed by the filter cache, in quarter cycles.
    std::uint32_t filtered_load_quarter_cycles = 1;
    std::uint64_t image_seed = 42;
    /// Safety cap on emitted operations (0 = unlimited).
    std::uint64_t max_ops = 0;
};

/// Runs the kernel once at construction; exposes the trace and both images.
class SusanTraceGenerator {
public:
    explicit SusanTraceGenerator(SusanConfig config);

    [[nodiscard]] const std::vector<MemOp>& ops() const noexcept { return ops_; }
    [[nodiscard]] std::vector<MemOp> take_ops() noexcept { return std::move(ops_); }
    [[nodiscard]] const std::vector<std::uint8_t>& input_image() const noexcept {
        return input_;
    }
    [[nodiscard]] const std::vector<std::uint8_t>& output_image() const noexcept {
        return output_;
    }
    [[nodiscard]] const SusanConfig& config() const noexcept { return cfg_; }

    /// \name Trace statistics
    ///@{
    [[nodiscard]] std::uint64_t total_taps() const noexcept { return taps_; }
    [[nodiscard]] std::uint64_t filtered_loads() const noexcept { return filtered_loads_; }
    [[nodiscard]] std::uint64_t emitted_loads() const noexcept { return emitted_loads_; }
    [[nodiscard]] std::uint64_t emitted_stores() const noexcept { return emitted_stores_; }
    ///@}

    /// Reference smoothing (pure function of the input), used by tests.
    static std::vector<std::uint8_t> smooth_reference(const std::vector<std::uint8_t>& image,
                                                      std::uint32_t width, std::uint32_t height,
                                                      std::uint32_t radius,
                                                      std::uint8_t threshold);

    /// Deterministic synthetic test image: gradient + rectangles + noise.
    static std::vector<std::uint8_t> make_image(std::uint32_t width, std::uint32_t height,
                                                std::uint64_t seed);

private:
    void run_kernel();

    SusanConfig cfg_;
    std::vector<std::uint8_t> input_;
    std::vector<std::uint8_t> output_;
    std::vector<MemOp> ops_;
    std::uint64_t taps_ = 0;
    std::uint64_t filtered_loads_ = 0;
    std::uint64_t emitted_loads_ = 0;
    std::uint64_t emitted_stores_ = 0;
};

/// Convenience: build the replayable workload in one call.
[[nodiscard]] TraceWorkload make_susan_workload(const SusanConfig& config);

} // namespace realm::traffic
