/// \file
/// \brief Generic sweep runner: executes any registered sweep by name.
///
/// `scenario_sweep --list` prints every registered sweep (the figure/table
/// reproductions plus the ring and mesh NoC families); `scenario_sweep
/// NAME...` runs them with the shared bench flags — `--threads N`
/// parallelizes points, `--json PATH` dumps machine-readable results (one
/// sweep per invocation), `--report PATH.md` renders the reviewable
/// markdown report (DoS matrices become attackers x attack-mode tables per
/// defense), `--json PATH --resume` skips points whose config hash already
/// exists in the dump, enabling cheap incremental re-runs of the big DoS
/// matrices, and `--diff BASELINE.json` compares each cell's worst-case
/// victim latency against a previous run's dump, exiting non-zero past
/// `--diff-threshold`/`--diff-slack` — the CI latency-regression gate.
#include "scenario/cli.hpp"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace realm::scenario;
    BenchOptions opts = parse_bench_args(argc, argv, /*accept_positional=*/true);
    if (opts.positional.empty()) {
        std::fprintf(stderr, "usage: %s [options] SWEEP...  (try --list)\n", argv[0]);
        return 2;
    }
    if (!opts.json_path.empty() && opts.positional.size() > 1) {
        std::fprintf(stderr, "--json supports exactly one sweep per invocation\n");
        return 2;
    }
    if (!opts.report_path.empty() && opts.positional.size() > 1) {
        std::fprintf(stderr, "--report supports exactly one sweep per invocation\n");
        return 2;
    }
    if (!opts.diff_path.empty() && opts.positional.size() > 1) {
        std::fprintf(stderr, "--diff supports exactly one sweep per invocation\n");
        return 2;
    }
    for (const std::string& name : opts.positional) {
        if (!has_sweep(name)) {
            std::fprintf(stderr, "unknown sweep '%s' (try --list)\n", name.c_str());
            return 2;
        }
    }

    int exit_code = 0;
    for (const std::string& name : opts.positional) {
        Sweep sweep = make_sweep(name);
        std::printf("== %s ==\n", sweep.title.c_str());
        const auto results = run_with_options(opts, sweep);
        if (const int diff_rc = check_diff(opts, sweep, results); diff_rc != 0) {
            exit_code = diff_rc;
        }

        std::printf("%-22s %12s %8s %9s %9s %9s %10s %9s\n", "label", "cycles", "ops",
                    "lat_mean", "lat_max", "st_max", "dma[B/cyc]", "hops");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const ScenarioResult& r = results[i];
            std::printf("%-22s %12llu %8llu %9.2f %9llu %9llu %10.2f %9llu\n",
                        r.label.c_str(), static_cast<unsigned long long>(r.run_cycles),
                        static_cast<unsigned long long>(r.ops), r.load_lat_mean,
                        static_cast<unsigned long long>(r.load_lat_max),
                        static_cast<unsigned long long>(r.store_lat_max), r.dma_read_bw,
                        static_cast<unsigned long long>(r.fabric_hops));
        }
        for (const std::string& note : sweep.notes) {
            std::printf("note: %s\n", note.c_str());
        }
        std::printf("\n");
    }
    return exit_code;
}
