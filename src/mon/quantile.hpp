/// \file
/// \brief Fixed-memory streaming quantile sketch for cycle-latency samples.
///
/// The monitoring plane needs P50/P99/P999 for *every* manager on 16x16 and
/// 32x32 fabrics, with sketches living per-shard inside the sharded kernel
/// and merged once at run end. That rules out the classic P-squared estimator
/// (its marker positions depend on arrival order, so two shards cannot be
/// merged deterministically) and picks an HDR-style log-linear histogram:
///
///  - values below 2^kSubBits are counted exactly (one bucket per value);
///  - above that, each power-of-two octave is split into 2^kSubBits linear
///    sub-buckets, bounding the relative quantile error by 2^-kSubBits;
///  - merging is an element-wise counter add -- commutative, associative and
///    bit-exact, so any shard partitioning yields the identical merged sketch.
///
/// Memory is a fixed ~9 KiB of counters per sketch, O(1) per sample
/// (a bit-scan plus one increment), no allocation after construction.
#pragma once

#include "sim/types.hpp"

#include <array>
#include <cstdint>

namespace realm::mon {

/// Streaming quantile sketch over non-negative integer samples (cycles).
class QuantileSketch {
public:
    /// Linear sub-bucket resolution per octave: 2^kSubBits sub-buckets.
    static constexpr unsigned kSubBits = 5;
    /// Largest exponent tracked with full resolution; samples at or above
    /// 2^(kMaxExp+1) collapse into the top bucket (min/max stay exact).
    static constexpr unsigned kMaxExp = 40;
    /// Quantiles never underestimate and overestimate by less than this
    /// relative bound (for samples below 2^(kMaxExp+1)).
    static constexpr double kRelativeErrorBound = 1.0 / double(1u << kSubBits);
    /// Bucket count: the exact region [0, 2^kSubBits) plus one 2^kSubBits-wide
    /// block per octave kSubBits..kMaxExp, plus one overflow block.
    static constexpr std::size_t kBuckets =
        std::size_t{1u << kSubBits} * (kMaxExp - kSubBits + 2);

    /// Record one sample. O(1): bucket index is a bit-scan.
    void record(std::uint64_t value);

    /// Fold another sketch into this one (element-wise add). Commutative and
    /// associative, so per-shard sketches merge bit-identically in any order.
    void merge(const QuantileSketch& other);

    /// Drop all samples.
    void reset();

    /// Nearest-rank quantile, q in [0, 1]. Returns the upper edge of the
    /// bucket holding the rank-q sample, clamped to the exact maximum: the
    /// result is >= the exact quantile and < exact * (1 + kRelativeErrorBound).
    /// Returns 0 when the sketch is empty.
    std::uint64_t quantile(double q) const;

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    /// Exact extrema (0 when empty).
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return max_; }
    double mean() const { return count_ == 0 ? 0.0 : double(sum_) / double(count_); }

    /// Bucket index for a value -- exposed for tests pinning the layout.
    static std::size_t bucket_index(std::uint64_t value);
    /// Largest value mapping to bucket `index` (inclusive upper edge).
    static std::uint64_t bucket_upper_edge(std::size_t index);

    /// Exact bucket-level equality (used by shard-determinism tests).
    bool operator==(const QuantileSketch& other) const;

private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

} // namespace realm::mon
