/// \file
/// \brief Memory-mapped register file configuring and observing REALM units.
///
/// Layout (32-bit registers, byte offsets; mirrors the grouping of the
/// paper's Table II: per-system, per-unit, and per-unit-and-region):
///
/// ```
/// 0x000  GUARD           (owned by the BusGuard wrapping this file)
/// 0x004  NUM_UNITS       RO
/// 0x008  NUM_REGIONS     RO
/// unit u at 0x100 + u*0x100:
///   +0x00  CTRL          bit0 enable | bit1 user isolate | bit2 throttle
///   +0x04  FRAGMENT      splitting granularity in beats [1,256]
///   +0x08  STATUS        RO: [3:0] FSM state, [4] fully isolated,
///                            [15:8] outstanding transactions
///   +0x0C  READS_ACC     RO  accepted read transactions
///   +0x10  WRITES_ACC    RO  accepted write transactions
///   +0x14  ISO_CYCLES    RO  cycles spent isolated with traffic pending
///   region r at +0x40 + r*0x40:
///     +0x00/+0x04  START_LO/HI
///     +0x08/+0x0C  END_LO/HI       (exclusive)
///     +0x10/+0x14  BUDGET_LO/HI    bytes per period
///     +0x18/+0x1C  PERIOD_LO/HI    cycles
///     +0x20  BYTES_PERIOD  RO  bytes transferred this period
///     +0x24  TXN_COUNT     RO
///     +0x28  RD_LAT_AVG    RO  average read latency (cycles)
///     +0x2C  RD_LAT_MAX    RO
///     +0x30  WR_LAT_AVG    RO
///     +0x34  WR_LAT_MAX    RO
///     +0x38  CREDIT        RO  remaining budget (saturated at 0)
/// ```
///
/// Address-range/budget/period writes are staged per 32-bit half and applied
/// to the unit on every write (idempotent during the boot-time init
/// sequence the paper describes).
#pragma once

#include "cfg/regbus.hpp"
#include "realm/realm_unit.hpp"

#include <cstdint>
#include <vector>

namespace realm::cfg {

class RealmRegFile final : public RegTarget {
public:
    static constexpr axi::Addr kNumUnitsOffset = 0x004;
    static constexpr axi::Addr kNumRegionsOffset = 0x008;
    static constexpr axi::Addr kUnitBase = 0x100;
    static constexpr axi::Addr kUnitStride = 0x100;
    static constexpr axi::Addr kRegionBase = 0x40;
    static constexpr axi::Addr kRegionStride = 0x40;

    /// \name Per-unit register offsets
    ///@{
    static constexpr axi::Addr kCtrl = 0x00;
    static constexpr axi::Addr kFragment = 0x04;
    static constexpr axi::Addr kStatus = 0x08;
    static constexpr axi::Addr kReadsAcc = 0x0C;
    static constexpr axi::Addr kWritesAcc = 0x10;
    static constexpr axi::Addr kIsoCycles = 0x14;
    ///@}

    /// \name Per-region register offsets
    ///@{
    static constexpr axi::Addr kStartLo = 0x00;
    static constexpr axi::Addr kStartHi = 0x04;
    static constexpr axi::Addr kEndLo = 0x08;
    static constexpr axi::Addr kEndHi = 0x0C;
    static constexpr axi::Addr kBudgetLo = 0x10;
    static constexpr axi::Addr kBudgetHi = 0x14;
    static constexpr axi::Addr kPeriodLo = 0x18;
    static constexpr axi::Addr kPeriodHi = 0x1C;
    static constexpr axi::Addr kBytesPeriod = 0x20;
    static constexpr axi::Addr kTxnCount = 0x24;
    static constexpr axi::Addr kRdLatAvg = 0x28;
    static constexpr axi::Addr kRdLatMax = 0x2C;
    static constexpr axi::Addr kWrLatAvg = 0x30;
    static constexpr axi::Addr kWrLatMax = 0x34;
    static constexpr axi::Addr kCredit = 0x38;
    ///@}

    /// \name CTRL bits
    ///@{
    static constexpr std::uint32_t kCtrlEnable = 1U << 0;
    static constexpr std::uint32_t kCtrlIsolate = 1U << 1;
    static constexpr std::uint32_t kCtrlThrottle = 1U << 2;
    ///@}

    explicit RealmRegFile(std::vector<rt::RealmUnit*> units);

    RegRsp reg_access(const RegReq& req) override;

    /// Address of unit `u`'s register `offset` (helper for drivers/tests).
    [[nodiscard]] static axi::Addr unit_reg(std::uint32_t unit, axi::Addr offset) noexcept {
        return kUnitBase + axi::Addr{unit} * kUnitStride + offset;
    }
    /// Address of unit `u`, region `r`'s register `offset`.
    [[nodiscard]] static axi::Addr region_reg(std::uint32_t unit, std::uint32_t region,
                                              axi::Addr offset) noexcept {
        return unit_reg(unit, kRegionBase + axi::Addr{region} * kRegionStride + offset);
    }

    [[nodiscard]] std::uint32_t num_units() const noexcept {
        return static_cast<std::uint32_t>(units_.size());
    }

private:
    RegRsp unit_access(std::uint32_t unit, axi::Addr offset, const RegReq& req);
    RegRsp region_access(std::uint32_t unit, std::uint32_t region, axi::Addr offset,
                         const RegReq& req);
    /// Staged 64-bit region fields, written in 32-bit halves.
    struct RegionShadow {
        std::uint64_t start = 0;
        std::uint64_t end = ~std::uint64_t{0};
        std::uint64_t budget = 0;
        std::uint64_t period = 0;
    };

    std::vector<rt::RealmUnit*> units_;
    std::vector<std::vector<RegionShadow>> shadows_; ///< [unit][region]
};

} // namespace realm::cfg
