#include "scenario/report.hpp"

#include "mon/detector.hpp"
#include "noc/routing.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string_view>

namespace realm::scenario {

bool parse_dos_cell_label(const std::string& label, DosCellLabel& out) {
    // <N>atk/<attack>/<defense>[/<policy>], e.g. "3atk/hog/budget" or
    // "3atk/hog/budget/o1turn".
    const char* s = label.c_str();
    char* end = nullptr;
    const unsigned long n = std::strtoul(s, &end, 10);
    if (end == s || std::string_view{end}.substr(0, 4) != "atk/") { return false; }
    const std::string rest{end + 4};
    const std::size_t slash = rest.find('/');
    if (slash == std::string::npos || slash == 0 || slash + 1 >= rest.size()) {
        return false;
    }
    std::string defense = rest.substr(slash + 1);
    std::string policy;
    if (const std::size_t slash2 = defense.find('/'); slash2 != std::string::npos) {
        policy = defense.substr(slash2 + 1);
        defense.resize(slash2);
        // Only a registered routing policy makes a fourth segment valid —
        // anything else is not a matrix label.
        if (defense.empty() || !noc::parse_routing_policy(policy).has_value()) {
            return false;
        }
    }
    out.attackers = static_cast<unsigned>(n);
    out.attack = rest.substr(0, slash);
    out.defense = std::move(defense);
    out.policy = std::move(policy);
    return true;
}

namespace {

/// Appends `v` to `order` unless already present (first-appearance order).
template <typename T>
void note_order(std::vector<T>& order, const T& v) {
    if (std::find(order.begin(), order.end(), v) == order.end()) {
        order.push_back(v);
    }
}

std::string format_count(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return buf;
}

/// Cell text: the worst-case victim latency in cycles, flagged when the
/// point produced no trustworthy number.
std::string cell_text(const ScenarioResult& r) {
    if (!r.boot_ok) { return "boot failed"; }
    std::string text = std::to_string(worst_case_victim_latency(r));
    if (r.timed_out) { text += " (timed out)"; }
    return text;
}

void write_matrix_report(std::ostream& os, const Sweep& sweep,
                         const std::vector<ScenarioResult>& results,
                         const std::vector<DosCellLabel>& cells) {
    std::vector<unsigned> attacker_counts;
    std::vector<std::string> attacks;
    std::vector<std::string> defenses;
    std::vector<std::string> policies;
    for (const DosCellLabel& c : cells) {
        note_order(attacker_counts, c.attackers);
        note_order(attacks, c.attack);
        note_order(defenses, c.defense);
        note_order(policies, c.policy);
    }
    std::sort(attacker_counts.begin(), attacker_counts.end());
    // Sweeps without a routing axis carry one empty policy; keep the row
    // dimension collapsed (and the rendered format byte-identical) there.
    const bool has_policy = policies.size() > 1 || !policies.front().empty();

    os << "Cells report the worst-case victim latency in cycles "
          "(max of load / store latency); the worst cell per defense is "
          "**bold**.\n";

    for (const std::string& defense : defenses) {
        // Locate the worst (defined) cell of this defense's table.
        std::size_t worst_index = results.size();
        std::uint64_t worst = 0;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (cells[i].defense != defense || !results[i].boot_ok) { continue; }
            const std::uint64_t v = worst_case_victim_latency(results[i]);
            if (worst_index == results.size() || v > worst) {
                worst_index = i;
                worst = v;
            }
        }

        os << "\n## Defense: `" << defense << "`\n\n";
        os << "| " << (has_policy ? "attackers · routing" : "attackers") << " |";
        for (const std::string& a : attacks) { os << ' ' << a << " |"; }
        os << "\n|---|";
        for (std::size_t i = 0; i < attacks.size(); ++i) { os << "---|"; }
        os << '\n';
        for (const unsigned n : attacker_counts) {
            for (const std::string& policy : policies) {
                os << "| " << n;
                if (has_policy) { os << " · " << policy; }
                os << " |";
                for (const std::string& a : attacks) {
                    std::size_t found = results.size();
                    for (std::size_t i = 0; i < cells.size(); ++i) {
                        if (cells[i].defense == defense && cells[i].attack == a &&
                            cells[i].attackers == n && cells[i].policy == policy) {
                            found = i;
                            break;
                        }
                    }
                    if (found == results.size()) {
                        os << " – |";
                    } else if (found == worst_index) {
                        os << " **" << cell_text(results[found]) << "** |";
                    } else {
                        os << ' ' << cell_text(results[found]) << " |";
                    }
                }
                os << '\n';
            }
        }
        if (worst_index < results.size()) {
            os << "\nWorst cell: `" << sweep.points[worst_index].label << "` at "
               << worst << " cycles.\n";
        }
    }
}

void write_flat_report(std::ostream& os, const Sweep& sweep,
                       const std::vector<ScenarioResult>& results) {
    const ScenarioResult* baseline =
        sweep.baseline_index && *sweep.baseline_index < results.size()
            ? &results[*sweep.baseline_index]
            : nullptr;
    // The host-speed column only renders when some point actually measured
    // wall time, so reports built from synthetic results (tests, replayed
    // dumps) stay byte-identical to the pre-speed format.
    bool any_speed = false;
    for (const ScenarioResult& r : results) {
        any_speed = any_speed || r.wall_seconds > 0.0;
    }
    os << "| point | run cycles | ops | load lat mean | load lat max "
          "| store lat max | DMA B/cyc | hops |";
    if (any_speed) { os << " sim c/s |"; }
    if (baseline != nullptr) { os << " perf vs baseline |"; }
    os << "\n|---|---|---|---|---|---|---|---|";
    if (any_speed) { os << "---|"; }
    if (baseline != nullptr) { os << "---|"; }
    os << '\n';
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult& r = results[i];
        os << "| " << r.label << " | " << r.run_cycles << " | " << r.ops << " | "
           << format_count(r.load_lat_mean) << " | " << r.load_lat_max << " | "
           << r.store_lat_max << " | " << format_count(r.dma_read_bw) << " | "
           << r.fabric_hops << " |";
        if (any_speed) {
            if (r.wall_seconds > 0.0) {
                char buf[32];
                std::snprintf(buf, sizeof buf, " %.0f |",
                              static_cast<double>(r.simulated_cycles) /
                                  r.wall_seconds);
                os << buf;
            } else {
                os << " – |";
            }
        }
        if (baseline != nullptr) {
            if (r.run_cycles == 0) {
                os << " – |";
            } else {
                const double pct = 100.0 * static_cast<double>(baseline->run_cycles) /
                                   static_cast<double>(r.run_cycles);
                char buf[32];
                std::snprintf(buf, sizeof buf, " %.1f %% |", pct);
                os << buf;
            }
        }
        os << '\n';
    }
}

/// Monitoring-plane sections: rendered only when at least one point carries
/// monitor telemetry, so reports of unmonitored sweeps stay byte-identical.
void write_monitor_report(std::ostream& os, const Sweep& sweep,
                          const std::vector<ScenarioResult>& results) {
    bool any = false;
    for (const ScenarioResult& r : results) { any = any || r.mon_enabled; }
    if (!any) { return; }

    // --- Detection coverage ----------------------------------------------
    std::size_t attack_cells = 0;
    std::size_t detected_cells = 0;
    std::size_t clean_cells = 0;
    std::uint64_t fp_attack = 0;
    std::uint64_t fp_clean = 0;
    os << "\n## Detection coverage\n\n";
    os << "| cell | hostile | detected | false pos | missed | first detect "
          "[cyc] | signals |\n";
    os << "|---|---|---|---|---|---|---|\n";
    for (const ScenarioResult& r : results) {
        if (!r.mon_enabled) { continue; }
        std::uint64_t hostile = 0;
        for (const std::uint64_t h : r.mgr_hostile) { hostile += h; }
        std::uint8_t signals = 0;
        for (std::size_t m = 0;
             m < r.mgr_flagged.size() && m < r.mgr_signals.size() &&
             m < r.mgr_hostile.size();
             ++m) {
            if (r.mgr_flagged[m] != 0 && r.mgr_hostile[m] != 0) {
                signals |= static_cast<std::uint8_t>(r.mgr_signals[m]);
            }
        }
        if (hostile > 0) {
            ++attack_cells;
            if (r.mon_true_positives > 0) { ++detected_cells; }
            fp_attack += r.mon_false_positives;
        } else {
            ++clean_cells;
            fp_clean += r.mon_false_positives;
        }
        os << "| `" << r.label << "` | " << hostile << " | "
           << r.mon_true_positives << " | " << r.mon_false_positives << " | "
           << r.mon_false_negatives << " | ";
        if (r.mon_first_detect > 0) {
            os << r.mon_first_detect;
        } else {
            os << "–";
        }
        os << " | " << mon::signal_names(signals) << " |\n";
    }
    os << "\nDetected " << detected_cells << "/" << attack_cells
       << " attack cells";
    if (attack_cells > 0) {
        char buf[32];
        std::snprintf(buf, sizeof buf, " (%.1f %%)",
                      100.0 * static_cast<double>(detected_cells) /
                          static_cast<double>(attack_cells));
        os << buf;
    }
    os << "; false positives: " << fp_attack << " on attack cells, " << fp_clean
       << " on " << clean_cells << " no-attack points.\n";

    // --- Per-manager latency distributions -------------------------------
    os << "\n## Per-manager latency distributions\n\n";
    os << "| point | manager | p50 | p99 | p99.9 | occ | flagged | signals | "
          "ttd [cyc] |\n";
    os << "|---|---|---|---|---|---|---|---|---|\n";
    std::size_t omitted = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult& r = results[i];
        if (!r.mon_enabled) { continue; }
        const std::size_t managers = r.mgr_p99.size();
        const std::size_t cap = std::max<std::size_t>(
            1, i < sweep.points.size()
                   ? sweep.points[i].config.monitors.report_managers
                   : 8);
        // Victim first, then the loudest managers by P99 (stable by index).
        std::vector<std::size_t> order;
        for (std::size_t m = 1; m < managers; ++m) { order.push_back(m); }
        std::stable_sort(order.begin(), order.end(),
                         [&r](std::size_t a, std::size_t b) {
                             return r.mgr_p99[a] > r.mgr_p99[b];
                         });
        order.insert(order.begin(), 0);
        if (order.size() > cap) {
            omitted += order.size() - cap;
            order.resize(cap);
        }
        for (const std::size_t m : order) {
            if (m >= managers) { continue; }
            os << "| `" << r.label << "` | "
               << (m == 0 ? std::string{"core"}
                          : "dma" + std::to_string(m - 1))
               << " | " << r.mgr_p50[m] << " | " << r.mgr_p99[m] << " | "
               << r.mgr_p999[m] << " | ";
            if (m < r.mgr_occ_milli.size()) {
                char occ[16];
                std::snprintf(occ, sizeof occ, "%.2f",
                              static_cast<double>(r.mgr_occ_milli[m]) / 1000.0);
                os << occ;
            } else {
                os << "–";
            }
            os << " | "
               << (m < r.mgr_flagged.size() && r.mgr_flagged[m] != 0 ? "yes"
                                                                     : "no")
               << " | "
               << mon::signal_names(m < r.mgr_signals.size()
                                        ? static_cast<std::uint8_t>(
                                              r.mgr_signals[m])
                                        : 0)
               << " | ";
            if (m < r.mgr_detect.size() && r.mgr_detect[m] > 0) {
                os << r.mgr_detect[m];
            } else {
                os << "–";
            }
            os << " |\n";
        }
    }
    if (omitted > 0) {
        os << "\nShowing the victim plus the highest-P99 managers per point "
              "(row cap is the `report_managers` display knob); "
           << omitted << " manager rows omitted.\n";
    }
}

/// Partition-balance section: per-shard share of executed ticks (and, when
/// profiled, of attributed wall time) — the load-balance picture of the
/// sharded kernel next to the cycle-attribution table. Rendered only when at
/// least one point ran with more than one shard, so unsharded reports stay
/// byte-identical.
void write_partition_report(std::ostream& os,
                            const std::vector<ScenarioResult>& results) {
    bool any = false;
    for (const ScenarioResult& r : results) {
        any = any || r.shard_ticks_executed.size() > 1;
    }
    if (!any) { return; }

    os << "\n## Partition balance\n\n";
    os << "Per-shard share of executed ticks (and, when profiled, of "
          "attributed wall time) within each sharded point — the slowest "
          "shard paces every barrier epoch, so an imbalanced column is "
          "wall-clock lost.\n\n";
    os << "| point | shard | ticks | tick share | wall share |\n";
    os << "|---|---|---|---|---|\n";
    for (const ScenarioResult& r : results) {
        if (r.shard_ticks_executed.size() <= 1) { continue; }
        std::uint64_t total_ticks = 0;
        for (const std::uint64_t t : r.shard_ticks_executed) { total_ticks += t; }
        std::vector<std::uint64_t> shard_nanos(r.shard_ticks_executed.size(), 0);
        std::uint64_t total_nanos = 0;
        for (const ProfileRow& row : r.profile) {
            if (row.shard < shard_nanos.size()) {
                shard_nanos[row.shard] += row.nanos;
                total_nanos += row.nanos;
            }
        }
        for (std::size_t s = 0; s < r.shard_ticks_executed.size(); ++s) {
            char tick_share[32];
            std::snprintf(tick_share, sizeof tick_share, "%.1f %%",
                          total_ticks == 0
                              ? 0.0
                              : 100.0 *
                                    static_cast<double>(r.shard_ticks_executed[s]) /
                                    static_cast<double>(total_ticks));
            os << "| `" << r.label << "` | " << s << " | "
               << r.shard_ticks_executed[s] << " | " << tick_share << " | ";
            if (total_nanos > 0) {
                char wall_share[32];
                std::snprintf(wall_share, sizeof wall_share, "%.1f %%",
                              100.0 * static_cast<double>(shard_nanos[s]) /
                                  static_cast<double>(total_nanos));
                os << wall_share;
            } else {
                os << "–";
            }
            os << " |\n";
        }
    }
}

/// Cycle-attribution section: rendered only when at least one point ran with
/// `--profile`, so reports of unprofiled sweeps stay byte-identical.
void write_profile_report(std::ostream& os,
                          const std::vector<ScenarioResult>& results) {
    bool any = false;
    for (const ScenarioResult& r : results) { any = any || !r.profile.empty(); }
    if (!any) { return; }

    os << "\n## Cycle attribution\n\n";
    os << "Wall-time share of each (component type, shard) bucket within its "
          "point, heaviest first (`--profile`).\n\n";
    os << "| point | component type | shard | components | ticks | wall [ms] "
          "| share |\n";
    os << "|---|---|---|---|---|---|---|\n";
    for (const ScenarioResult& r : results) {
        if (r.profile.empty()) { continue; }
        std::uint64_t total_nanos = 0;
        for (const ProfileRow& row : r.profile) { total_nanos += row.nanos; }
        for (const ProfileRow& row : r.profile) {
            char ms[32];
            std::snprintf(ms, sizeof ms, "%.2f",
                          static_cast<double>(row.nanos) / 1e6);
            char share[32];
            std::snprintf(share, sizeof share, "%.1f %%",
                          total_nanos == 0
                              ? 0.0
                              : 100.0 * static_cast<double>(row.nanos) /
                                    static_cast<double>(total_nanos));
            os << "| `" << r.label << "` | " << row.type << " | " << row.shard
               << " | " << row.components << " | " << row.ticks << " | " << ms
               << " | " << share << " |\n";
        }
    }
}

} // namespace

void write_report(std::ostream& os, const Sweep& sweep,
                  const std::vector<ScenarioResult>& results) {
    os << "# " << sweep.title << "\n\n";
    os << "Sweep `" << sweep.name << "`, " << results.size() << " points.\n";
    for (const std::string& note : sweep.notes) { os << "> " << note << '\n'; }
    os << '\n';

    // Matrix mode only when every point follows the cell-label convention.
    std::vector<DosCellLabel> cells(results.size());
    bool matrix = !results.empty() && results.size() == sweep.points.size();
    for (std::size_t i = 0; matrix && i < results.size(); ++i) {
        matrix = parse_dos_cell_label(results[i].label, cells[i]);
    }
    if (matrix) {
        write_matrix_report(os, sweep, results, cells);
    } else {
        write_flat_report(os, sweep, results);
    }
    write_monitor_report(os, sweep, results);
    write_partition_report(os, results);
    write_profile_report(os, results);

    // Flag degenerate points loudly; a green CI job must not hide them.
    bool flagged = false;
    for (const ScenarioResult& r : results) {
        if (r.boot_ok && !r.timed_out) { continue; }
        if (!flagged) {
            os << "\n**Flagged points:**\n";
            flagged = true;
        }
        os << "- `" << r.label << "`: "
           << (!r.boot_ok ? "boot script did not complete" : "timed out") << '\n';
    }
}

bool write_report_file(const std::string& path, const Sweep& sweep,
                       const std::vector<ScenarioResult>& results) {
    std::ofstream out{path};
    if (!out) { return false; }
    write_report(out, sweep, results);
    return out.good();
}

} // namespace realm::scenario
