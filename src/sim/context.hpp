/// \file
/// \brief Cycle-driven simulation context: clock, component registry, run loop.
#pragma once

#include "sim/types.hpp"

#include <functional>
#include <string>
#include <vector>

namespace realm::sim {

class Component;

/// Severity levels for the cycle-stamped simulation log.
enum class LogLevel { kNone = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Scheduling policy of the run loop.
enum class Scheduler {
    kTickAll,  ///< legacy: tick every component every cycle
    kActivity, ///< skip idle components; fast-forward when all are idle
};

/// Owns simulation time and the (non-owning) list of components to evaluate
/// each cycle.
///
/// Timing contract: during `step()` every component observes `now() == N`;
/// values pushed into a `Link` at cycle N become visible to consumers at
/// N+1 (registered semantics). After all components ticked, time advances.
///
/// Components register themselves on construction (in construction order,
/// which fixes the intra-cycle evaluation order and makes runs fully
/// deterministic) and must outlive no longer than the context.
///
/// With the default `Scheduler::kActivity`, components that declared
/// themselves idle (see `Component::idle_until`) are skipped — still in
/// registration order for the active ones, so runs remain bit-identical to
/// `kTickAll` as long as idle declarations honour their no-op contract.
/// When *every* component is idle until some future cycle, `run` /
/// `run_until` fast-forward the clock to the earliest wake-up instead of
/// stepping cycle by cycle.
class SimContext {
public:
    SimContext() = default;
    SimContext(const SimContext&) = delete;
    SimContext& operator=(const SimContext&) = delete;

    /// Current simulation time in cycles.
    [[nodiscard]] Cycle now() const noexcept { return now_; }

    /// Adds a component to the per-cycle evaluation list.
    void register_component(Component& c);

    /// Removes a component (called from Component's destructor).
    void unregister_component(Component& c) noexcept;

    /// Resets simulation time to zero and calls `reset()` on every component.
    void reset();

    /// Advances the simulation by exactly one cycle (no fast-forward; idle
    /// components are still skipped under `kActivity`).
    void step();

    /// Advances the simulation by `cycles` cycles.
    void run(Cycle cycles);

    /// Runs until `done()` returns true or `max_cycles` elapsed.
    /// \returns true iff the predicate fired (i.e. no timeout).
    ///
    /// The predicate must be a function of *component state* only. Under
    /// `kActivity` the clock fast-forwards across fully-idle stretches, so
    /// a predicate reading `now()` directly may first be evaluated past its
    /// trigger cycle; use `run(cycles)` to advance to a specific time.
    bool run_until(const std::function<bool()>& done, Cycle max_cycles);

    /// \name Scheduler selection & introspection
    ///@{
    void set_scheduler(Scheduler s) noexcept {
        scheduler_ = s;
        next_active_hint_ = 0; // discard any hint computed under the old policy
    }
    [[nodiscard]] Scheduler scheduler() const noexcept { return scheduler_; }
    /// Folds an asynchronous wake-up into the fast-forward hint (called by
    /// `Component::wake`; a lower hint is always safe — it only means less
    /// fast-forwarding).
    void note_wake(Cycle cycle) noexcept {
        next_active_hint_ = std::min(next_active_hint_, cycle);
    }
    /// Component evaluations actually executed.
    [[nodiscard]] std::uint64_t ticks_executed() const noexcept { return ticks_executed_; }
    /// Component evaluations skipped because the component was idle.
    [[nodiscard]] std::uint64_t ticks_skipped() const noexcept { return ticks_skipped_; }
    /// Cycles crossed by fast-forward jumps (no component evaluated).
    [[nodiscard]] Cycle fast_forwarded_cycles() const noexcept { return fast_forwarded_; }
    ///@}

    /// \name Logging
    ///@{
    void set_log_level(LogLevel level) noexcept { log_level_ = level; }
    [[nodiscard]] LogLevel log_level() const noexcept { return log_level_; }
    [[nodiscard]] bool log_enabled(LogLevel level) const noexcept {
        return static_cast<int>(level) <= static_cast<int>(log_level_);
    }
    /// Writes a cycle-stamped line to stderr if `level` is enabled.
    void log(LogLevel level, const std::string& who, const std::string& message) const;
    ///@}

    /// Number of registered components (introspection for tests).
    [[nodiscard]] std::size_t component_count() const noexcept { return components_.size(); }

private:
    /// Fast-forwards to `min(next_active_hint_, limit)` if the hint says no
    /// component needs the current cycle; returns true if time advanced.
    bool try_fast_forward(Cycle limit);

    Cycle now_ = 0;
    std::vector<Component*> components_;
    LogLevel log_level_ = LogLevel::kNone;
    Scheduler scheduler_ = Scheduler::kActivity;
    /// Earliest cycle at which any component may need evaluation, maintained
    /// incrementally by `step()` and `note_wake` so the run loop never has
    /// to rescan the component list; always <= the true next-active cycle.
    /// 0 (always "active now") until the first activity-mode step.
    Cycle next_active_hint_ = 0;
    std::uint64_t ticks_executed_ = 0;
    std::uint64_t ticks_skipped_ = 0;
    Cycle fast_forwarded_ = 0;
};

} // namespace realm::sim
