/// \file
/// \brief Figure 1b of the paper: REALM units in front of a NoC.
///
/// The same scenario engine that drives the crossbar SoC experiments builds
/// a 6-node unidirectional ring here — `TopologyKind::kRing` with per-node
/// role assignment — and regulates a bulk DMA's long bursts in front of its
/// manager port. Regulation is interconnect-agnostic: the `ScenarioConfig`
/// differs from the crossbar ones only in its `topology` field.
#include "scenario/scenario.hpp"
#include "scenario/topology.hpp"

#include <cstdio>

using namespace realm;
using namespace realm::scenario;

namespace {

/// 6-node ring, canonical layout: victim core at node 0, one interference
/// DMA, two memory nodes (shared at 0x0, spill at 0x10'0000), pass-through
/// hops elsewhere; every manager node behind a REALM unit.
ScenarioConfig ring_scenario(bool regulate_dsa) {
    ScenarioConfig cfg;
    cfg.name = regulate_dsa ? "ring/regulated" : "ring/uncontrolled";
    cfg.topology.kind = TopologyKind::kRing;
    cfg.topology.ring.num_nodes = 6;
    cfg.topology.ring.nodes = make_ring_roles(6, /*num_attackers=*/1);

    cfg.victim.kind = VictimConfig::Kind::kStream;
    cfg.victim.stream = {.base = 0x0, .bytes = 0x2000, .op_bytes = 8,
                         .stride_bytes = 8};
    cfg.preload.push_back(PreloadSpan{0x0, 0x10000, 1, false});

    InterferenceConfig dma; // 128-beat bulk copy hammering the shared node
    dma.dma.burst_beats = 128;
    dma.src = 0x8000;
    dma.dst = 0x10'0000;
    dma.bytes = 0x4000;
    dma.loop = true;
    cfg.interference.push_back(dma);

    if (regulate_dsa) {
        // Config path: plan 0 = victim (free), plan 1 = the DSA — fragment
        // to 2 beats and cap at 2 B/cycle of the shared memory bandwidth.
        cfg.boot_plans.push_back(RegionPlan{1ULL << 30, 1ULL << 20, 256});
        cfg.boot_plans.push_back(RegionPlan{2000, 1000, 2});
    }
    cfg.warmup_cycles = 2000;
    cfg.max_cycles = 10'000'000;
    return cfg;
}

} // namespace

int main() {
    std::puts("== REALM over a 6-node ring NoC (Figure 1b) ==\n");

    for (const bool regulated : {false, true}) {
        const ScenarioResult res = run_scenario(ring_scenario(regulated));
        std::printf("%-28s load latency mean %.1f, max %llu cycles\n",
                    regulated ? "fragmented + budgeted DSA" : "uncontrolled (128-beat DMA)",
                    res.load_lat_mean,
                    static_cast<unsigned long long>(res.load_lat_max));
        std::printf("%-28s ring forwarded %llu packets, DMA %.2f B/cycle, "
                    "%llu depletions\n\n",
                    "", static_cast<unsigned long long>(res.fabric_hops),
                    res.dma_read_bw,
                    static_cast<unsigned long long>(res.dma_depletions));
    }

    std::puts("the same REALM unit regulates a NoC exactly as it does a crossbar —");
    std::puts("the paper's implementation-agnostic claim, now one ScenarioConfig field.");
    return 0;
}
