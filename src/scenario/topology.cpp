#include "scenario/topology.hpp"

#include "scenario/partition.hpp"
#include "scenario/scenario.hpp"
#include "sim/check.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace realm::scenario {

std::vector<RingNodeSpec> make_ring_roles(noc::NodeId num_nodes,
                                          noc::NodeId num_attackers,
                                          noc::NodeId num_memories) {
    REALM_EXPECTS(num_memories >= 1, "a NoC needs at least one memory node");
    REALM_EXPECTS(num_nodes >= 2 + num_memories + num_attackers,
                  "fabric too small for the requested roles");
    std::vector<RingNodeSpec> specs(num_nodes);
    specs[0] = RingNodeSpec{RingRole::kVictim, true, {}};
    // Memories spread evenly over the node order (never node 0): memory k
    // sits at (k+1) * N / (M+1), nudged forward past any collision.
    for (noc::NodeId k = 0; k < num_memories; ++k) {
        noc::NodeId pos = static_cast<noc::NodeId>(
            (static_cast<std::uint32_t>(k + 1) * num_nodes) / (num_memories + 1U));
        while (pos == 0 || specs[pos].role != RingRole::kPassthrough) {
            pos = static_cast<noc::NodeId>((pos + 1) % num_nodes);
        }
        specs[pos] = RingNodeSpec{RingRole::kMemory, false, {}};
    }
    // Attackers fill the lowest free positions (interleaved with the
    // memories on larger fabrics, like DSAs scattered across a real die).
    noc::NodeId placed = 0;
    for (noc::NodeId i = 1; i < num_nodes && placed < num_attackers; ++i) {
        if (specs[i].role != RingRole::kPassthrough) { continue; }
        specs[i] = RingNodeSpec{RingRole::kInterference, true, {}};
        ++placed;
    }
    REALM_ENSURES(placed == num_attackers, "attacker placement failed");
    return specs;
}

std::vector<RingNodeSpec> make_mesh_roles(noc::NodeId rows, noc::NodeId cols,
                                          noc::NodeId num_attackers,
                                          noc::NodeId num_memories) {
    REALM_EXPECTS(static_cast<std::uint32_t>(rows) * cols <= 65535,
                  "node ids are 16-bit: rows * cols must not exceed 65535");
    // Same linear spread as the ring over the row-major order: identical
    // role-to-node-index assignment keeps DoS cells comparable across
    // fabrics while XY routing maps the indices onto 2D paths.
    return make_ring_roles(static_cast<noc::NodeId>(rows * cols), num_attackers,
                           num_memories);
}

namespace {

// ---------------------------------------------------------------------------
// Cheshire crossbar SoC (the legacy — and still default — fabric).
// ---------------------------------------------------------------------------

class CheshireTopology final : public TopologyHandle {
public:
    CheshireTopology(sim::SimContext& ctx, const ScenarioConfig& cfg)
        : ctx_{&ctx}, soc_cfg_{cfg.soc}, soc_{ctx, cfg.soc} {}

    axi::AxiChannel& victim_port() override { return soc_.core_port(); }
    std::size_t num_interference_ports() const override { return soc_cfg_.num_dsa; }
    axi::AxiChannel& interference_port(std::size_t i) override {
        return soc_.dsa_port(i);
    }

    void write_u8(axi::Addr addr, std::uint8_t value) override {
        soc_.dram_image().write_u8(addr, value);
    }
    void write_u64(axi::Addr addr, std::uint64_t value) override {
        soc_.dram_image().write_u64(addr, value);
    }
    void warm(axi::Addr base, std::uint64_t bytes) override {
        soc_.warm_llc(base, bytes);
    }

    bool boot(const std::vector<RegionPlan>& plans) override {
        if (plans.empty()) { return true; }
        std::vector<soc::CheshireSoc::BootRegionPlan> boot_plans;
        boot_plans.reserve(plans.size());
        for (const RegionPlan& p : plans) {
            boot_plans.push_back({p.budget_bytes, p.period_cycles, p.fragment_beats});
        }
        soc_.queue_boot_script(boot_plans);
        return ctx_->run_until([&] { return soc_.boot_master().done(); }, 10000);
    }
    void set_interference_throttle(bool enabled) override {
        if (!soc_.realm_present()) { return; }
        for (std::uint32_t i = 0; i < soc_cfg_.num_dsa; ++i) {
            soc_.dsa_realm(i).set_throttle(enabled);
        }
    }
    void set_victim_monitor() override {
        if (!soc_.realm_present()) { return; }
        soc_.core_realm().set_region(
            0, rt::RegionConfig{soc_cfg_.dram_base, soc_cfg_.dram_base + soc_cfg_.dram_size,
                                /*budget=*/0, /*period=*/0});
    }

    const rt::RealmUnit* victim_realm() const override {
        return soc_.realm_present() ? &soc_.core_realm() : nullptr;
    }
    const rt::RealmUnit* interference_realm(std::size_t i) const override {
        return soc_.realm_present() ? &soc_.dsa_realm(i) : nullptr;
    }
    std::uint64_t fabric_w_stalls() const override {
        return soc_.xbar().w_stall_cycles(0);
    }
    std::uint64_t fabric_hops() const override { return 0; }

private:
    sim::SimContext* ctx_;
    soc::SocConfig soc_cfg_;
    /// `CheshireSoc` exposes its units non-const only.
    mutable soc::CheshireSoc soc_;
};

// ---------------------------------------------------------------------------
// NoC fabrics (ring of Figure 1b, 2D mesh) at scenario scale. Everything
// except fabric construction is shared: role resolution, the node-level
// address map, memory-slave attachment, REALM placement, and the direct
// config path. `Fabric` provides `manager_port` / `subordinate_port` /
// `total_forwarded` / `total_mux_w_stalls`.
// ---------------------------------------------------------------------------

template <typename Fabric>
class NocTopologyBase : public TopologyHandle {
protected:
    /// \param make_fabric  (ctx, node_map, subordinate_nodes) -> Fabric ptr.
    template <typename MakeFabric>
    NocTopologyBase(sim::SimContext& ctx, const NocTopologyConfig& cfg,
                    std::vector<RingNodeSpec> specs, MakeFabric&& make_fabric)
        : cfg_{cfg}, specs_{std::move(specs)} {
        cfg_.nodes.clear(); // `specs_` is the resolved list; keep one copy
        const auto num_nodes = static_cast<noc::NodeId>(specs_.size());

        // Resolve roles and build the node-level address map: memory node k
        // serves [mem_base + k*stride, + span).
        ic::AddrMap map;
        std::size_t mem_count = 0;
        bool victim_seen = false;
        for (noc::NodeId n = 0; n < num_nodes; ++n) {
            switch (specs_[n].role) {
            case RingRole::kVictim:
                REALM_EXPECTS(!victim_seen, "a NoC hosts exactly one victim node");
                victim_seen = true;
                victim_node_ = n;
                break;
            case RingRole::kInterference: interference_nodes_.push_back(n); break;
            case RingRole::kMemory: {
                const axi::Addr base =
                    cfg_.mem_base + static_cast<axi::Addr>(mem_count) * cfg_.mem_stride;
                map.add(base, cfg_.mem_span_bytes, n, "mem" + std::to_string(n));
                spans_.push_back(Span{base, cfg_.mem_span_bytes, n});
                ++mem_count;
                break;
            }
            case RingRole::kPassthrough: break;
            }
        }
        REALM_EXPECTS(victim_seen, "NoC topology needs a victim node");
        REALM_EXPECTS(mem_count > 0, "NoC topology needs a memory node");
        mem_lo_ = spans_.front().base;
        mem_hi_ = spans_.back().base + spans_.back().bytes;

        std::vector<noc::NodeId> sub_nodes;
        for (const Span& s : spans_) { sub_nodes.push_back(s.node); }
        fabric_ = make_fabric(ctx, std::move(map), std::move(sub_nodes));
        // Tile-local models co-shard with their tile: the memory slave talks
        // to its egress mux (and the REALM unit to its router NI) through
        // plain registered channels, which are only race-free within one
        // shard. The fabric decides the spatial partition.
        for (Span& s : spans_) {
            const sim::ShardScope scope{ctx, fabric_->shard_of_node(s.node)};
            mems_.push_back(std::make_unique<mem::AxiMemSlave>(
                ctx, "mem" + std::to_string(s.node), fabric_->subordinate_port(s.node),
                std::make_unique<mem::SramBackend>(cfg_.mem_access_latency,
                                                   cfg_.mem_access_latency),
                mem::AxiMemSlaveConfig{cfg_.mem_max_outstanding,
                                       cfg_.mem_max_outstanding, s.base}));
            s.store = &static_cast<mem::SramBackend&>(mems_.back()->backend()).store();
        }

        // REALM units last: their response pass-through must observe pushes
        // from the fabric routers in the same cycle (construction order
        // fixes evaluation order, as in the crossbar SoC).
        realm_of_node_.assign(num_nodes, -1);
        for (noc::NodeId n = 0; n < num_nodes; ++n) {
            const bool manager = specs_[n].role == RingRole::kVictim ||
                                 specs_[n].role == RingRole::kInterference;
            if (!manager || !specs_[n].realm) { continue; }
            const sim::ShardScope scope{ctx, fabric_->shard_of_node(n)};
            realm_of_node_[n] = static_cast<int>(realms_.size());
            realm_up_.push_back(std::make_unique<axi::AxiChannel>(
                ctx, "noc.up" + std::to_string(n)));
            realms_.push_back(std::make_unique<rt::RealmUnit>(
                ctx, "noc.realm" + std::to_string(n), *realm_up_.back(),
                fabric_->manager_port(n), specs_[n].realm_config.value_or(cfg_.realm)));
        }
    }

public:
    axi::AxiChannel& victim_port() override { return manager_attach(victim_node_); }
    std::size_t num_interference_ports() const override {
        return interference_nodes_.size();
    }
    axi::AxiChannel& interference_port(std::size_t i) override {
        return manager_attach(interference_nodes_.at(i));
    }
    unsigned victim_shard() const override {
        return fabric_->shard_of_node(victim_node_);
    }
    unsigned interference_shard(std::size_t i) const override {
        return fabric_->shard_of_node(interference_nodes_.at(i));
    }

    void write_u8(axi::Addr addr, std::uint8_t value) override {
        const Span& s = span_for(addr);
        s.store->write_u8(addr - s.base, value);
    }
    void write_u64(axi::Addr addr, std::uint64_t value) override {
        const Span& s = span_for(addr);
        s.store->write_u64(addr - s.base, value);
    }
    void warm(axi::Addr, std::uint64_t) override {} // flat SRAM nodes: no cache

    bool boot(const std::vector<RegionPlan>& plans) override {
        // The NoC fabrics have no HWRoT boot master (yet); the config path
        // programs the placed units directly, covering the whole mapped
        // memory span.
        for (std::size_t p = 0; p < plans.size(); ++p) {
            rt::RealmUnit* unit = unit_for_plan(p);
            if (unit == nullptr) { continue; }
            unit->set_fragmentation(plans[p].fragment_beats);
            unit->set_region(0, rt::RegionConfig{mem_lo_, mem_hi_, plans[p].budget_bytes,
                                                 plans[p].period_cycles});
        }
        return true;
    }
    void set_interference_throttle(bool enabled) override {
        for (const noc::NodeId n : interference_nodes_) {
            if (realm_of_node_[n] >= 0) { realms_[realm_of_node_[n]]->set_throttle(enabled); }
        }
    }
    void set_victim_monitor() override {
        if (realm_of_node_[victim_node_] < 0) { return; }
        realms_[realm_of_node_[victim_node_]]->set_region(
            0, rt::RegionConfig{mem_lo_, mem_hi_, /*budget=*/0, /*period=*/0});
    }

    const rt::RealmUnit* victim_realm() const override { return unit_at(victim_node_); }
    const rt::RealmUnit* interference_realm(std::size_t i) const override {
        return i < interference_nodes_.size() ? unit_at(interference_nodes_[i]) : nullptr;
    }
    std::uint64_t fabric_w_stalls() const override {
        return fabric_->total_mux_w_stalls();
    }
    std::uint64_t fabric_hops() const override { return fabric_->total_forwarded(); }
    void check_flow_invariants() const override { fabric_->check_flow_invariants(); }

private:
    struct Span {
        axi::Addr base = 0;
        std::uint64_t bytes = 0;
        noc::NodeId node = 0;
        mem::SparseMemory* store = nullptr;
    };

    [[nodiscard]] const Span& span_for(axi::Addr addr) const {
        for (const Span& s : spans_) {
            if (addr >= s.base && addr < s.base + s.bytes) { return s; }
        }
        REALM_EXPECTS(false, "address outside every NoC memory span");
        return spans_.front();
    }
    [[nodiscard]] axi::AxiChannel& manager_attach(noc::NodeId node) {
        return realm_of_node_[node] >= 0 ? *realm_up_[realm_of_node_[node]]
                                         : fabric_->manager_port(node);
    }
    [[nodiscard]] const rt::RealmUnit* unit_at(noc::NodeId node) const {
        return realm_of_node_[node] >= 0 ? realms_[realm_of_node_[node]].get() : nullptr;
    }
    [[nodiscard]] rt::RealmUnit* unit_for_plan(std::size_t p) {
        if (p > interference_nodes_.size()) { return nullptr; }
        const noc::NodeId node = p == 0 ? victim_node_ : interference_nodes_[p - 1];
        return realm_of_node_[node] >= 0 ? realms_[realm_of_node_[node]].get() : nullptr;
    }

    NocTopologyConfig cfg_;
    std::vector<RingNodeSpec> specs_;
    std::unique_ptr<Fabric> fabric_;
    std::vector<std::unique_ptr<mem::AxiMemSlave>> mems_;
    std::vector<Span> spans_;
    std::vector<std::unique_ptr<axi::AxiChannel>> realm_up_;
    std::vector<std::unique_ptr<rt::RealmUnit>> realms_;
    std::vector<int> realm_of_node_;
    noc::NodeId victim_node_ = 0;
    std::vector<noc::NodeId> interference_nodes_;
    axi::Addr mem_lo_ = 0;
    axi::Addr mem_hi_ = 0;
};

class RingTopology final : public NocTopologyBase<noc::NocRing> {
public:
    RingTopology(sim::SimContext& ctx, const ScenarioConfig& cfg)
        : NocTopologyBase{ctx, cfg.topology.ring, resolve(cfg.topology.ring),
                          [&cfg](sim::SimContext& c, ic::AddrMap map,
                                 std::vector<noc::NodeId> subs) {
                              return std::make_unique<noc::NocRing>(
                                  c, "ring", cfg.topology.ring.num_nodes,
                                  std::move(map), std::move(subs),
                                  cfg.topology.ring.flow());
                          }} {}

private:
    static std::vector<RingNodeSpec> resolve(const RingTopologyConfig& cfg) {
        std::vector<RingNodeSpec> specs =
            cfg.nodes.empty() ? make_ring_roles(cfg.num_nodes, 1, 2) : cfg.nodes;
        REALM_EXPECTS(specs.size() == cfg.num_nodes,
                      "ring node spec count must equal num_nodes");
        return specs;
    }
};

class MeshTopology final : public NocTopologyBase<noc::NocMesh> {
public:
    MeshTopology(sim::SimContext& ctx, const ScenarioConfig& cfg)
        : NocTopologyBase{ctx, cfg.topology.mesh, resolve(cfg.topology.mesh),
                          [&cfg](sim::SimContext& c, ic::AddrMap map,
                                 std::vector<noc::NodeId> subs) {
                              return std::make_unique<noc::NocMesh>(
                                  c, "mesh", cfg.topology.mesh.rows,
                                  cfg.topology.mesh.cols, std::move(map),
                                  std::move(subs), cfg.topology.mesh.flow(),
                                  cfg.topology.mesh.routing,
                                  mesh_tile_shards(cfg, resolve(cfg.topology.mesh),
                                                   c.shards()));
                          }},
          lookahead_{cfg.topology.mesh.link_latency} {}

    // The mesh guarantees `link_latency` cycles on every cross-shard path:
    // neighbor links pipeline flits and wakes by exactly that much, and the
    // fabric forces `credit_return_delay >= link_latency` (see NocMesh), so
    // deferred end-to-end credit releases mature no earlier either.
    [[nodiscard]] sim::Cycle lookahead() const override { return lookahead_; }

private:
    sim::Cycle lookahead_ = 1;

    static std::vector<RingNodeSpec> resolve(const MeshTopologyConfig& cfg) {
        std::vector<RingNodeSpec> specs =
            cfg.nodes.empty() ? make_mesh_roles(cfg.rows, cfg.cols, 1, 2) : cfg.nodes;
        REALM_EXPECTS(specs.size() == cfg.num_nodes(),
                      "mesh node spec count must equal rows * cols");
        return specs;
    }
};

} // namespace

std::unique_ptr<TopologyHandle> make_topology(sim::SimContext& ctx,
                                              const ScenarioConfig& cfg) {
    switch (cfg.topology.kind) {
    case TopologyKind::kCheshire:
        return std::make_unique<CheshireTopology>(ctx, cfg);
    case TopologyKind::kRing: return std::make_unique<RingTopology>(ctx, cfg);
    case TopologyKind::kMesh: return std::make_unique<MeshTopology>(ctx, cfg);
    }
    REALM_EXPECTS(false, "unknown topology kind");
    return nullptr;
}

} // namespace realm::scenario
