/// \file
/// \brief Round-robin arbitration primitive.
#pragma once

#include "sim/check.hpp"

#include <cstdint>

namespace realm::ic {

/// Work-conserving round-robin arbiter over N requesters.
///
/// The pointer advances past the winner on every grant, so under sustained
/// load each requester receives an equal share of grants. The interconnect
/// applies it at *burst* granularity (a grant locks the data channel until
/// the burst's last beat) — the fairness problem AXI-REALM's granular burst
/// splitter exists to fix.
class RoundRobinArbiter {
public:
    explicit RoundRobinArbiter(std::uint32_t num_requesters = 1)
        : num_{num_requesters} {
        REALM_EXPECTS(num_ >= 1, "arbiter needs at least one requester");
    }

    /// Picks the next requester for which `requesting(index)` is true,
    /// starting the scan one past the previous winner. Returns -1 when no
    /// requester is active. Does not advance the pointer (call `commit`).
    template <typename Pred>
    [[nodiscard]] int pick(Pred&& requesting) const {
        for (std::uint32_t i = 0; i < num_; ++i) {
            const std::uint32_t idx = (last_ + 1 + i) % num_;
            if (requesting(idx)) { return static_cast<int>(idx); }
        }
        return -1;
    }

    /// Records `winner` as granted, advancing the round-robin pointer.
    void commit(std::uint32_t winner) {
        REALM_EXPECTS(winner < num_, "winner out of range");
        last_ = winner;
        ++grants_;
    }

    void reset() noexcept {
        last_ = num_ - 1;
        grants_ = 0;
    }

    [[nodiscard]] std::uint32_t size() const noexcept { return num_; }
    [[nodiscard]] std::uint64_t grants() const noexcept { return grants_; }
    /// Most recent winner (the rotation anchor for external schedulers).
    [[nodiscard]] std::uint32_t last_winner() const noexcept { return last_; }

private:
    std::uint32_t num_;
    std::uint32_t last_ = num_ - 1;
    std::uint64_t grants_ = 0;
};

} // namespace realm::ic
