/// \file
/// \brief Parallel sweep runner: executes independent scenario points on a
///        thread pool and renders text tables / machine-readable JSON.
///
/// Each point runs in its own `SimContext` (a scenario owns all simulation
/// state) with an RNG seed derived from the sweep name and point index, so
/// results are bit-identical for every thread count, including 1.
#pragma once

#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace realm::scenario {

struct RunnerOptions {
    /// Worker threads; 0 picks `std::thread::hardware_concurrency()`,
    /// divided by the widest per-point shard count so `threads x shards`
    /// never oversubscribes the host (each point spins up its own shard
    /// workers inside its private `SimContext`).
    unsigned threads = 1;
};

class ScenarioRunner {
public:
    explicit ScenarioRunner(RunnerOptions options = {}) : options_{options} {}

    /// Runs every point of the sweep; results are returned in point order
    /// regardless of completion order.
    [[nodiscard]] std::vector<ScenarioResult> run(const Sweep& sweep) const;

    /// Runs a bare list of configs (labels default to each config's name).
    [[nodiscard]] std::vector<ScenarioResult>
    run(const std::vector<ScenarioConfig>& configs) const;

    /// Sweep-level resume: reuses results parsed from `resume_path` (a
    /// previous `write_json` dump) for points whose `config_hash` matches,
    /// and simulates only the rest. Cheap incremental re-runs of big
    /// matrices: add points, tweak one cell, re-emit the whole file.
    /// \param reused_out  If non-null, receives the number of reused points.
    [[nodiscard]] std::vector<ScenarioResult>
    run_resumed(const Sweep& sweep, const std::string& resume_path,
                std::size_t* reused_out = nullptr) const;

    [[nodiscard]] const RunnerOptions& options() const noexcept { return options_; }

private:
    [[nodiscard]] std::vector<ScenarioResult>
    run_points(const std::vector<const ScenarioConfig*>& configs,
               const std::vector<std::string>& labels) const;

    RunnerOptions options_;
};

/// Writes the sweep's results as a JSON document:
/// `{"sweep": ..., "points": [{label, config_hash, seed, metrics...}, ...]}`.
/// Each point carries the `config_hash` of its config (resume key) and
/// `sim_cycles_per_sec`, the host-side simulation speed CI tracks.
void write_json(std::ostream& os, const Sweep& sweep,
                const std::vector<ScenarioResult>& results);

/// Convenience: `write_json` to a file; returns false on I/O failure.
bool write_json_file(const std::string& path, const Sweep& sweep,
                     const std::vector<ScenarioResult>& results);

/// Parses a previous `write_json` dump back into results keyed by
/// `config_hash`. Tolerant: a missing/unreadable file or malformed points
/// yield an empty/partial map, never an error — resume then simply re-runs.
[[nodiscard]] std::unordered_map<std::uint64_t, ScenarioResult>
load_json_results(const std::string& path);

/// Parses a previous `write_json` dump back into results keyed by point
/// *label* — the report-to-report key: labels are stable across code
/// changes that move `config_hash` (that is the point of the differ),
/// while hashes are stable across label renames (that is the point of
/// resume). Same tolerance as `load_json_results`.
[[nodiscard]] std::unordered_map<std::string, ScenarioResult>
load_json_results_by_label(const std::string& path);

/// Parses the cycle-attribution profile rows out of a previous `--profile
/// --json` dump, concatenated across every point that carries them (the
/// balanced partitioner's weight model aggregates per component type, so
/// merging points is the intended use). Same tolerance as the other
/// loaders: missing file or absent profiles yield an empty vector.
[[nodiscard]] std::vector<ProfileRow>
load_profile_rows(const std::string& path);

/// \name Report-to-report regression diffing
///@{
/// One compared point of `diff_against_baseline`.
struct DiffEntry {
    std::string label;
    std::uint64_t baseline_worst = 0; ///< worst-case victim latency, baseline
    std::uint64_t current_worst = 0;  ///< worst-case victim latency, this run
    bool missing_in_baseline = false; ///< new point (informational)
    bool regressed = false;
    /// \name Host-speed gate (filled only when `speed_threshold > 0`)
    ///@{
    double baseline_speed = 0; ///< sim cycles / wall second, baseline
    double current_speed = 0;  ///< sim cycles / wall second, this run
    bool speed_regressed = false;
    ///@}
};

struct DiffReport {
    std::vector<DiffEntry> entries; ///< in result order
    std::size_t compared = 0;       ///< points present in both runs
    std::size_t regressions = 0;
    std::size_t speed_compared = 0; ///< points with a usable speed on both sides
    std::size_t speed_regressions = 0;
    [[nodiscard]] bool ok() const noexcept { return regressions == 0; }
    [[nodiscard]] bool speed_ok() const noexcept { return speed_regressions == 0; }
};

/// Compares each result's worst-case victim latency (max of load/store
/// latency maxima, the DoS-matrix cell metric) against a previous run's
/// JSON dump at `baseline_path`, keyed by label. A point regresses when it
/// exceeds the baseline by more than `rel_threshold` (fractional) *and*
/// more than `abs_slack` cycles — the slack keeps single-digit-latency
/// cells from tripping on one-cycle jitter — or when it times out / fails
/// to boot where the baseline did not. Points absent from the baseline are
/// reported as new, never as regressions.
///
/// A non-zero `speed_threshold` additionally gates the host-side simulation
/// speed (`simulated_cycles / wall_seconds`, recomputed from the baseline's
/// stored fields): a point speed-regresses when it runs slower than
/// `baseline * (1 - speed_threshold)` *and* slower than
/// `baseline - speed_slack` cycles/sec — an absolute slack that keeps
/// millisecond-scale points from tripping on scheduler jitter. Speed
/// regressions are tallied separately (`speed_regressions` / `speed_ok()`)
/// so the latency gate's verdict is unchanged by the speed gate and CI can
/// report them as distinct failures.
[[nodiscard]] DiffReport diff_against_baseline(const std::string& baseline_path,
                                               const std::vector<ScenarioResult>& results,
                                               double rel_threshold = 0.10,
                                               std::uint64_t abs_slack = 50,
                                               double speed_threshold = 0.0,
                                               double speed_slack = 50'000.0);
///@}

} // namespace realm::scenario
