/// \file
/// \brief Base class for all simulated hardware blocks.
#pragma once

#include "sim/context.hpp"
#include "sim/types.hpp"

#include <string>
#include <utility>

namespace realm::sim {

/// A clocked hardware block. Each simulation cycle the kernel calls
/// `tick()` exactly once, in construction order.
///
/// Model style: components are Moore machines communicating through
/// registered `Link`s, so evaluation order between components never changes
/// observable behaviour (only capacity visibility, which is benign and
/// deterministic).
class Component {
public:
    Component(SimContext& ctx, std::string name) : ctx_{&ctx}, name_{std::move(name)} {
        ctx_->register_component(*this);
    }
    virtual ~Component() { ctx_->unregister_component(*this); }

    Component(const Component&) = delete;
    Component& operator=(const Component&) = delete;

    /// Block instance name, used in logs and contract messages.
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// The owning simulation context.
    [[nodiscard]] SimContext& ctx() noexcept { return *ctx_; }
    [[nodiscard]] const SimContext& ctx() const noexcept { return *ctx_; }

    /// Current cycle, convenience shorthand.
    [[nodiscard]] Cycle now() const noexcept { return ctx_->now(); }

    /// Returns the block to its post-reset state.
    virtual void reset() {}

    /// Evaluates one clock cycle.
    virtual void tick() = 0;

protected:
    /// Cycle-stamped log line attributed to this component.
    void log(LogLevel level, const std::string& message) const {
        if (ctx_->log_enabled(level)) { ctx_->log(level, name_, message); }
    }

private:
    SimContext* ctx_;
    std::string name_;
};

} // namespace realm::sim
