#include "realm/burst_equalizer.hpp"

#include "sim/check.hpp"

#include <utility>

namespace realm::rt {

BurstEqualizer::BurstEqualizer(sim::SimContext& ctx, std::string name,
                               axi::AxiChannel& upstream, axi::AxiChannel& downstream,
                               BurstEqualizerConfig config)
    : Component{ctx, std::move(name)},
      up_{upstream},
      down_{downstream},
      cfg_{config},
      splitter_{config.nominal_beats, config.max_outstanding} {
    upstream.wake_subordinate_on_request(*this);
    downstream.wake_manager_on_response(*this);
}

void BurstEqualizer::reset() {
    splitter_.reset();
    w_child_beats_.clear();
    w_beat_in_child_ = 0;
    outstanding_ = 0;
}

void BurstEqualizer::tick() {
    // Responses: coalesce child Bs, re-gate child R lasts (same splitter
    // bookkeeping the REALM unit uses).
    if (down_.has_b() && up_.can_send_b()) {
        if (const auto parent = splitter_.process_b(down_.recv_b())) {
            up_.send_b(*parent);
            --outstanding_;
        }
    }
    if (down_.has_r() && up_.can_send_r()) {
        const auto processed = splitter_.process_r(down_.recv_r());
        if (processed.parent_completed) { --outstanding_; }
        up_.send_r(processed.flit);
    }

    // Accept new bursts under the outstanding cap.
    if (up_.has_ar() && outstanding_ < cfg_.max_outstanding &&
        splitter_.can_accept_read()) {
        splitter_.accept_read(up_.recv_ar());
        ++outstanding_;
    }
    if (up_.has_aw() && outstanding_ < cfg_.max_outstanding &&
        splitter_.can_accept_write()) {
        const axi::AwFlit parent = up_.recv_aw();
        const auto children = splitter_.accept_write(parent);
        for (const axi::BurstDescriptor& child : children) {
            axi::AwFlit f = parent;
            f.addr = child.addr;
            f.len = child.len;
            child_aw_queue_.push_back(f);
            w_child_beats_.push_back(child.beats());
        }
        ++outstanding_;
    }

    // Emit child requests and pass W data straight through (no write
    // buffer: the ABE does not close the stall-DoS vector).
    if (splitter_.has_child_ar() && down_.can_send_ar()) {
        down_.send_ar(splitter_.pop_child_ar());
    }
    if (!child_aw_queue_.empty() && down_.can_send_aw()) {
        down_.send_aw(child_aw_queue_.front());
        child_aw_queue_.pop_front();
    }
    if (!w_child_beats_.empty() && up_.has_w() && down_.can_send_w()) {
        axi::WFlit w = up_.recv_w();
        ++w_beat_in_child_;
        const bool child_last = w_beat_in_child_ == w_child_beats_.front();
        w.last = child_last;
        down_.send_w(w);
        if (child_last) {
            w_child_beats_.pop_front();
            w_beat_in_child_ = 0;
        }
    }
    update_activity();
}

void BurstEqualizer::update_activity() {
    // Idle iff no buffered work: upstream requests and downstream responses
    // wake us via the push hooks; child requests already split but not yet
    // emitted (backpressure) forbid sleeping — a producer must never sleep
    // while it still owes flits downstream.
    if (!up_.channel().requests_empty()) { return; }
    if (!down_.channel().responses_empty()) { return; }
    if (!child_aw_queue_.empty() || splitter_.has_child_ar()) { return; }
    idle_forever();
}

} // namespace realm::rt
