/// \file
/// \brief The five-channel AXI4 wire bundle and directional views.
#pragma once

#include "axi/flit.hpp"

#include "sim/context.hpp"
#include "sim/link.hpp"

#include <string>

namespace realm::axi {

/// One manager <-> subordinate AXI4 connection: five registered links.
/// Request channels (AW/W/AR) flow manager -> subordinate; response channels
/// (B/R) flow subordinate -> manager. Each link is a depth-2 spill register,
/// so one hop costs one cycle and sustains one beat per cycle per channel.
class AxiChannel {
public:
    /// \param resp_passthrough  When true, the response channels (B/R) are
    ///        combinational (zero-cycle) wires; the consumer component must
    ///        be constructed *after* the producer. Used by the REALM unit so
    ///        it adds exactly one cycle of request latency and none on the
    ///        response path, as the paper specifies.
    explicit AxiChannel(const sim::SimContext& ctx, std::string name = "axi",
                        std::size_t depth = 2, bool resp_passthrough = false)
        : aw{ctx, depth, name + ".aw"},
          w{ctx, depth, name + ".w"},
          b{ctx, depth, name + ".b",
            resp_passthrough ? sim::Link<BFlit>::Timing::kPassthrough
                             : sim::Link<BFlit>::Timing::kRegistered},
          ar{ctx, depth, name + ".ar"},
          r{ctx, depth, name + ".r",
            resp_passthrough ? sim::Link<RFlit>::Timing::kPassthrough
                             : sim::Link<RFlit>::Timing::kRegistered},
          name_{std::move(name)} {}

    AxiChannel(const AxiChannel&) = delete;
    AxiChannel& operator=(const AxiChannel&) = delete;

    sim::Link<AwFlit> aw;
    sim::Link<WFlit> w;
    sim::Link<BFlit> b;
    sim::Link<ArFlit> ar;
    sim::Link<RFlit> r;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Drops all in-flight flits (reset).
    void clear() noexcept {
        aw.clear();
        w.clear();
        b.clear();
        ar.clear();
        r.clear();
    }

    /// True when no flit is buffered on any channel.
    [[nodiscard]] bool idle() const noexcept {
        return aw.empty() && w.empty() && b.empty() && ar.empty() && r.empty();
    }

    /// True when no request flit (AW/W/AR) is buffered.
    [[nodiscard]] bool requests_empty() const noexcept {
        return aw.empty() && w.empty() && ar.empty();
    }

    /// True when no response flit (B/R) is buffered.
    [[nodiscard]] bool responses_empty() const noexcept {
        return b.empty() && r.empty();
    }

    /// \name Scheduler wake-up wiring (activity-aware kernel)
    ///@{
    /// Wakes `sub` whenever a request flit (AW/W/AR) is pushed; call from
    /// the subordinate-side component if it idles on an empty channel.
    void wake_subordinate_on_request(sim::Component& sub) noexcept {
        aw.set_wake_on_push(&sub);
        w.set_wake_on_push(&sub);
        ar.set_wake_on_push(&sub);
    }
    /// Wakes `mgr` whenever a response flit (B/R) is pushed.
    void wake_manager_on_response(sim::Component& mgr) noexcept {
        b.set_wake_on_push(&mgr);
        r.set_wake_on_push(&mgr);
    }
    ///@}

private:
    std::string name_;
};

/// Manager-side accessors: push requests, pop responses.
class ManagerView {
public:
    explicit ManagerView(AxiChannel& ch) noexcept : ch_{&ch} {}

    [[nodiscard]] bool can_send_aw() const noexcept { return ch_->aw.can_push(); }
    void send_aw(AwFlit f) { ch_->aw.push(f); }
    [[nodiscard]] bool can_send_w() const noexcept { return ch_->w.can_push(); }
    void send_w(WFlit f) { ch_->w.push(f); }
    [[nodiscard]] bool can_send_ar() const noexcept { return ch_->ar.can_push(); }
    void send_ar(ArFlit f) { ch_->ar.push(f); }

    [[nodiscard]] bool has_b() const noexcept { return ch_->b.can_pop(); }
    [[nodiscard]] const BFlit& peek_b() const { return ch_->b.front(); }
    BFlit recv_b() { return ch_->b.pop(); }
    [[nodiscard]] bool has_r() const noexcept { return ch_->r.can_pop(); }
    [[nodiscard]] const RFlit& peek_r() const { return ch_->r.front(); }
    RFlit recv_r() { return ch_->r.pop(); }

    [[nodiscard]] AxiChannel& channel() noexcept { return *ch_; }

private:
    AxiChannel* ch_;
};

/// Subordinate-side accessors: pop requests, push responses.
class SubordinateView {
public:
    explicit SubordinateView(AxiChannel& ch) noexcept : ch_{&ch} {}

    [[nodiscard]] bool has_aw() const noexcept { return ch_->aw.can_pop(); }
    [[nodiscard]] const AwFlit& peek_aw() const { return ch_->aw.front(); }
    AwFlit recv_aw() { return ch_->aw.pop(); }
    [[nodiscard]] bool has_w() const noexcept { return ch_->w.can_pop(); }
    [[nodiscard]] const WFlit& peek_w() const { return ch_->w.front(); }
    WFlit recv_w() { return ch_->w.pop(); }
    [[nodiscard]] bool has_ar() const noexcept { return ch_->ar.can_pop(); }
    [[nodiscard]] const ArFlit& peek_ar() const { return ch_->ar.front(); }
    ArFlit recv_ar() { return ch_->ar.pop(); }

    [[nodiscard]] bool can_send_b() const noexcept { return ch_->b.can_push(); }
    void send_b(BFlit f) { ch_->b.push(f); }
    [[nodiscard]] bool can_send_r() const noexcept { return ch_->r.can_push(); }
    void send_r(RFlit f) { ch_->r.push(f); }

    [[nodiscard]] AxiChannel& channel() noexcept { return *ch_; }

private:
    AxiChannel* ch_;
};

} // namespace realm::axi
